// Reproduces paper Figure 8a: epoch time of GDP/NFP/SNP/DNP when training
// GraphSAGE on a single 8-GPU machine, sweeping the hidden dimension over
// {8, 32, 128, 512} on the PS-, FS-, and IM-like graphs. The strategy APT
// selects is starred.
//
// Expected shape (paper §5.2): all strategies slow down as the hidden dim
// grows; GDP becomes optimal at large hidden dims because it is the only
// strategy that never shuffles hidden embeddings; at small hidden dims the
// cache-friendly strategies (SNP/DNP on FS, GDP/DNP on the skewed PS) win.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace apt;
  using namespace apt::bench;
  SetLogLevel(LogLevel::kWarn);
  BenchInit("fig08a_hidden_dim", &argc, argv);

  std::printf("=== Figure 8a: epoch time vs hidden dimension (GraphSAGE, 8 GPUs) ===\n");
  for (const Dataset* ds : {&PsLike(), &FsLike(), &ImLike()}) {
    PrintTableHeader(ds->name + " hidden");
    for (std::int64_t hidden : {8, 32, 128, 512}) {
      CaseConfig cfg;
      cfg.label = ds->name + " d'=" + std::to_string(hidden);
      cfg.dataset = ds;
      cfg.cluster = SingleMachineCluster(8);
      cfg.model = SageConfig(*ds, hidden);
      cfg.opts = PaperDefaults();
      cfg.opts.cache_bytes_per_device = DefaultCacheBytes(*ds);
      PrintCaseRow(RunCase(cfg));
    }
  }
  return BenchFinish();
}
