// Ablation of the pipelined execution engine: the four strategies on a
// comm-heavy multi-machine configuration as EngineOptions::pipeline_depth
// sweeps 1 (serial) -> 8. Depth changes only WHEN simulated charges land
// (micro-batched comm/compute overlap), never the arithmetic, so every row
// trains the identical model and the sweep isolates the timing win.
//
// The headline record ("scenario":"headline") carries the two acceptance
// numbers: the depth-4 GDP epoch-time saving over serial (the ISSUE bar is
// >= 15% on a comm-heavy config) and the planner's relative estimate error
// at depth 4 (bar: within 10% — the overlap-aware estimate models the whole
// stacked epoch, which for a one-epoch run is EpochStats::sim_seconds).
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace apt;
  using namespace apt::bench;
  SetLogLevel(LogLevel::kWarn);
  BenchInit("pipeline", &argc, argv);

  // Comm-heavy on the FEATURE-GATHER axis, the pattern pipelining targets:
  // fat features (1024 floats/node), a nearly cold cache, and cross-machine
  // links put most of each step's bytes on the comm stream AHEAD of the
  // layer compute that hides them. (Strategy-trailing collectives — e.g.
  // NFP's loss allreduce — are sync points the pipeline cannot reorder
  // across, so configs dominated by those see little depth benefit.)
  const Dataset ds = MakeDataset(WithFeatureDim(PsLikeParams(0.25), 1024));
  CaseConfig cfg;
  cfg.dataset = &ds;
  cfg.cluster = MultiMachineCluster(2, 2);
  cfg.model = SageConfig(ds, 192);
  cfg.model.num_layers = 2;
  cfg.opts = PaperDefaults();
  cfg.opts.fanouts = {5, 5};
  cfg.opts.cache_bytes_per_device = ds.FeatureBytes() / 128;

  PrintTableHeader("pipeline depth (2x2 machines, GraphSAGE, fat features)");
  double gdp_serial = 0.0, gdp_d4 = 0.0, est_d4 = 0.0;
  for (const int depth : {1, 2, 4, 8}) {
    cfg.opts.pipeline_depth = depth;
    cfg.label = "pipeline_d" + std::to_string(depth);
    const CaseResult r = RunCase(cfg);
    PrintCaseRow(r);
    const StrategyResult& gdp = r.of(Strategy::kGDP);
    if (depth == 1) gdp_serial = gdp.epoch.sim_seconds;
    if (depth == 4) {
      gdp_d4 = gdp.epoch.sim_seconds;
      est_d4 = gdp.estimate.Comparable();
    }
  }

  const double saving = gdp_serial > 0.0 ? 1.0 - gdp_d4 / gdp_serial : 0.0;
  const double est_rel_err = gdp_d4 > 0.0 ? (est_d4 - gdp_d4) / gdp_d4 : 0.0;
  std::printf("\nGDP depth-4 epoch saving vs serial: %.1f%%\n", saving * 100.0);
  std::printf("planner estimate at depth 4: %.4fs vs measured %.4fs (%+.1f%%)\n",
              est_d4, gdp_d4, est_rel_err * 100.0);
  {
    std::ostringstream os;
    os << "{\"scenario\":\"headline\",\"gdp_depth4_saving\":" << saving
       << ",\"gdp_estimate_rel_err\":" << est_rel_err << "}";
    AddRecord(os.str());
  }
  return BenchFinish();
}
