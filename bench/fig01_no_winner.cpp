// Reproduces paper Figure 1 (the motivating "no consistent winner" plot):
//   (a) GraphSAGE on the PS-like graph, sweeping the INPUT feature
//       dimension {64, 128, 256, 512} at hidden dim 32;
//   (b) GraphSAGE on the FS-like graph, sweeping the HIDDEN dimension
//       {8, 32, 128, 512}.
//
// Expected shape: in (a) the optimum drifts away from GDP as the input
// dimension grows (feature loading dominates, favoring the strategies that
// localize feature reads); in (b) SNP wins at small hidden dims and
// GDP/DNP take over at large ones.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace apt;
  using namespace apt::bench;
  SetLogLevel(LogLevel::kWarn);
  BenchInit("fig01_no_winner", &argc, argv);

  std::printf("=== Figure 1a: PS-like, epoch time vs INPUT dimension (d'=32) ===\n");
  PrintTableHeader("input dim");
  std::vector<Dataset> variants;
  for (std::int64_t dim : {64, 128, 256, 512}) {
    variants.push_back(MakeDataset(WithFeatureDim(PsLikeParams(0.25), dim)));
  }
  for (const Dataset& ds : variants) {
    CaseConfig cfg;
    cfg.label = "ps_like d=" + std::to_string(ds.feature_dim());
    cfg.dataset = &ds;
    cfg.cluster = SingleMachineCluster(8);
    cfg.model = SageConfig(ds, 32);
    cfg.opts = PaperDefaults();
    // Fixed byte budget across input dims (the paper fixes 4 GB): larger
    // features squeeze the hit rate.
    cfg.opts.cache_bytes_per_device = MakeDataset(PsLikeParams(0.25)).FeatureBytes() / 12;
    PrintCaseRow(RunCase(cfg));
  }

  std::printf("\n=== Figure 1b: FS-like, epoch time vs HIDDEN dimension ===\n");
  PrintTableHeader("hidden dim");
  for (std::int64_t hidden : {8, 32, 128, 512}) {
    CaseConfig cfg;
    cfg.label = "fs_like d'=" + std::to_string(hidden);
    cfg.dataset = &FsLike();
    cfg.cluster = SingleMachineCluster(8);
    cfg.model = SageConfig(FsLike(), hidden);
    cfg.opts = PaperDefaults();
    cfg.opts.cache_bytes_per_device = DefaultCacheBytes(FsLike());
    PrintCaseRow(RunCase(cfg));
  }
  return BenchFinish();
}
