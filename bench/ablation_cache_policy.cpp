// Ablation of the per-strategy cache-configuration rules (paper §3.2):
// what happens if SNP/DNP use the *global* hottest-node cache (GDP's rule)
// instead of their partition-aware rules? Measures the simulated
// feature-loading phase per epoch.
//
// Expected shape: the partition-aware rules load less — a device running
// SNP/DNP mostly reads nodes of its own partition (plus 1-hop for DNP), so
// spending its budget on globally-hot-but-remote nodes wastes cache.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace apt;
  using namespace apt::bench;
  SetLogLevel(LogLevel::kWarn);
  BenchInit("ablation_cache_policy", &argc, argv);

  std::printf("=== Ablation: strategy-aware vs global-hot cache policies ===\n");
  std::printf("%-24s | %16s | %16s\n", "config", "paper rule (ms)", "global-hot (ms)");
  std::printf("%s\n", std::string(64, '-').c_str());
  for (const Dataset* ds : {&PsLike(), &FsLike()}) {
    const ClusterSpec cluster = SingleMachineCluster(8);
    const ModelConfig model = SageConfig(*ds, 32);
    EngineOptions opts = PaperDefaults();
    opts.cache_bytes_per_device = DefaultCacheBytes(*ds);

    MultilevelPartitioner ml;
    const std::vector<PartId> partition = ml.Partition(ds->graph, cluster.num_devices());
    const DryRunResult dry = DryRun(*ds, cluster, partition, opts, model);

    for (Strategy s : {Strategy::kSNP, Strategy::kDNP}) {
      // Paper rule: the strategy's own cache config from the dry-run.
      TrainerSetup own = BuildTrainerSetup(cluster, model, opts, partition, dry, s);
      ParallelTrainer own_trainer(*ds, std::move(own));
      const double own_load = own_trainer.TrainEpoch(0).load_seconds * 1e3;
      // Ablated: borrow GDP's global-hot cache.
      TrainerSetup global = BuildTrainerSetup(cluster, model, opts, partition, dry, s);
      global.cache = dry.caches[static_cast<std::size_t>(Strategy::kGDP)];
      ParallelTrainer global_trainer(*ds, std::move(global));
      const double global_load = global_trainer.TrainEpoch(0).load_seconds * 1e3;
      std::printf("%-24s | %16.3f | %16.3f\n",
                  (ds->name + " " + ToString(s)).c_str(), own_load, global_load);
    }
  }
  return BenchFinish();
}
