// Shared harness for the figure/table reproduction benches.
//
// Every figure bench runs the four strategies on a configuration, prints the
// per-strategy epoch time with the paper's sampling/loading/training
// decomposition, and stars the strategy APT's planner selects. Epoch times
// are SIMULATED seconds on the modeled cluster (see DESIGN.md): absolute
// values are not comparable to the paper's testbed, the relative shape is.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apt/adapter.h"
#include "core/logging.h"
#include "apt/planner.h"
#include "engine/trainer.h"
#include "graph/dataset.h"
#include "partition/partitioner.h"
#include "sim/hardware.h"

namespace apt::bench {

/// One benchmark configuration (a cell group in a paper figure).
struct CaseConfig {
  std::string label;
  const Dataset* dataset = nullptr;
  ClusterSpec cluster;
  ModelConfig model;
  EngineOptions opts;
  Partitioner* partitioner = nullptr;  ///< default: multilevel
  int epochs = 1;                      ///< measured epochs (averaged)
};

/// Per-strategy outcome for one case.
struct StrategyResult {
  Strategy strategy = Strategy::kGDP;
  EpochStats epoch;       ///< averaged over measured epochs
  bool oom = false;       ///< simulated device memory exceeded
  CostEstimate estimate;  ///< planner's view
  /// Simulated traffic over the whole run (all classes, all epochs):
  /// logical fp32 bytes and what actually crossed the links after the wire /
  /// storage / gradient codecs. Equal when no codec is configured.
  std::int64_t traffic_bytes = 0;
  std::int64_t traffic_wire_bytes = 0;
};

struct CaseResult {
  std::string label;
  std::vector<StrategyResult> per_strategy;
  Strategy selected = Strategy::kGDP;  ///< APT's pick
  double dryrun_wall_seconds = 0.0;

  const StrategyResult& of(Strategy s) const {
    return per_strategy[static_cast<std::size_t>(s)];
  }
  /// Simulated epoch seconds of the fastest non-OOM strategy.
  double BestSeconds() const;
  /// Epoch seconds of APT's selection.
  double SelectedSeconds() const { return of(selected).epoch.sim_seconds; }
};

/// Runs planner + all four strategies for one case.
CaseResult RunCase(const CaseConfig& config);

/// Prints the header / one row of the standard figure table. Columns per
/// strategy: total epoch seconds with (sample/load/train) breakdown; the
/// APT selection is starred. PrintCaseRow also appends the case as a
/// machine-readable record (see BenchFinish).
void PrintTableHeader(const std::string& sweep_name);
void PrintCaseRow(const CaseResult& result);

// --- shared run harness: obs wiring + machine-readable output -------------
//
// Every bench main brackets its work with BenchInit/BenchFinish:
//
//   int main(int argc, char** argv) {
//     bench::BenchInit("fig01_no_winner", &argc, argv);
//     ... PrintCaseRow(RunCase(cfg)) ...
//     return bench::BenchFinish();
//   }

/// Parses and strips the shared flags from argv (unrecognized arguments are
/// left in place, so google-benchmark flags pass through):
///   --trace-out=<file>    enable apt::obs tracing; export a Chrome/Perfetto
///                         trace on finish
///   --metrics-out=<file>  dump the metrics registry as JSON on finish
///   --records-out=<file>  records file (default BENCH_<name>.json)
///   --telemetry-out=<file> windowed telemetry timeline JSONL on finish
///                          (feed to `aptperf timeline` / `aptperf slo`)
///   --prom-out=<file>     Prometheus-style text snapshot on finish
///   --scale-mode          run with SimOptions::scale_mode = kScale (sampled
///                         execution + analytic fast-forward collectives);
///                         PaperDefaults() picks it up, records are flagged
void BenchInit(const std::string& name, int* argc = nullptr, char** argv = nullptr);

/// True when --scale-mode was passed to BenchInit (stripped from argv).
bool ScaleModeRequested();

/// Appends one pre-serialized JSON object to the run's records.
void AddRecord(std::string json_object);

/// Writes the records file — {"meta": {git sha, build flags, threads, ...},
/// "records": [...]} — plus the trace / metrics files when requested.
/// Returns 0 (the bench's exit code) or 1 on an IO error.
int BenchFinish();

/// The three paper-graph stand-ins at bench scale (cached per process).
const Dataset& PsLike();
const Dataset& FsLike();
const Dataset& ImLike();

/// Default engine options used by the paper's main experiments
/// (fanout [10,10,10], per-GPU batch, 4 GB cache scaled to our graphs).
EngineOptions PaperDefaults();

/// Default GraphSAGE config (3 layers, hidden 32) for dataset `ds`.
ModelConfig SageConfig(const Dataset& ds, std::int64_t hidden = 32);
/// Default GAT config (3 layers, hidden 8, 4 heads).
ModelConfig GatConfig(const Dataset& ds, std::int64_t hidden = 8);

/// Scaled stand-in for the paper's 4 GB GPU cache: enough for ~1/6 of the
/// bench dataset's features, mirroring 4 GB vs the paper's 53-128 GB.
std::int64_t DefaultCacheBytes(const Dataset& ds);

}  // namespace apt::bench
