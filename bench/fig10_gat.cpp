// Reproduces paper Figure 10: training GAT (attention-based model) on a
// single 8-GPU machine, sweeping the hidden dimension.
//
// Expected shape: GDP and DNP do well because each destination sees all its
// sources locally; SNP and NFP pay extra communication (they must move
// projected source embeddings / allreduce projections before the softmax);
// NFP's intermediate tensors exceed GPU memory at large hidden dims (rows
// marked OOM, from the simulator's per-device memory accounting).
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace apt;
  using namespace apt::bench;
  SetLogLevel(LogLevel::kWarn);
  BenchInit("fig10_gat", &argc, argv);

  std::printf("=== Figure 10: epoch time for GAT (8 GPUs, 4 heads) ===\n");
  for (const Dataset* ds : {&PsLike(), &FsLike(), &ImLike()}) {
    PrintTableHeader(ds->name + " GAT d'");
    for (std::int64_t hidden : {8, 32, 128}) {
      CaseConfig cfg;
      cfg.label = ds->name + " d'=" + std::to_string(hidden);
      cfg.dataset = ds;
      cfg.cluster = SingleMachineCluster(8);
      cfg.model = GatConfig(*ds, hidden);
      cfg.opts = PaperDefaults();
      cfg.opts.cache_bytes_per_device = DefaultCacheBytes(*ds);
      PrintCaseRow(RunCase(cfg));
    }
  }

  // The paper observes NFP's intermediate tensors exceeding GPU memory at
  // large hidden dims. Our graphs are ~1000x smaller than the paper's, so
  // 16 GB never fills; this variant scales the device memory down by the
  // same factor (16 MB) to expose the relative memory pressure.
  std::printf(
      "\n--- memory-pressure variant: device memory scaled to graph scale (24 MB) ---\n");
  PrintTableHeader("fs_like GAT d' (24MB)");
  for (std::int64_t hidden : {32, 128}) {
    CaseConfig cfg;
    cfg.label = "fs_like d'=" + std::to_string(hidden);
    cfg.dataset = &FsLike();
    cfg.cluster = SingleMachineCluster(8);
    cfg.cluster.machines[0].gpu.memory_bytes = 24LL << 20;
    cfg.model = GatConfig(FsLike(), hidden);
    cfg.opts = PaperDefaults();
    cfg.opts.cache_bytes_per_device = DefaultCacheBytes(FsLike());
    PrintCaseRow(RunCase(cfg));
  }
  return BenchFinish();
}
