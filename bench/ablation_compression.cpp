// Ablation of feature/gradient compression: the four strategies on the
// comm-bound fat-feature configuration (the ablation_pipeline config) as the
// wire/storage/gradient codec sweeps identity -> bf16 -> int8, plus a
// delta+bitmask row that compresses only the gradient allreduce. Codecs
// change per-row VALUES (bf16/int8 quantization) but quantization rounds in
// a canonical producer-side order, so quantized GDP and DNP still train the
// identical model — the sweep isolates the wire-byte and epoch-time win.
//
// The headline record carries the three acceptance numbers on SNP — the
// strategy the planner itself selects once codecs are on:
//   * bf16 wire-byte saving vs fp32 over the whole epoch's traffic
//     (shuffle + load + allreduce; bar: >= 45%),
//   * bf16 epoch sim-time saving at depth 1, where every wire byte is on
//     the critical path (bar: >= 10%),
//   * the planner's compression-aware estimate error at pipeline depth 4
//     under bf16 (bar: within 10% — the overlap-aware estimate models the
//     whole stacked epoch, directly comparable to sim_seconds).
// GDP and DNP additionally pay the quantized-parity tax: under a lossy wire
// codec their layer-0 gradient sync runs in exact double precision (the
// price of the GDP==DNP bit-parity guarantee, DESIGN.md invariant 8), which
// more than cancels their wire saving on this config. The bench prints that
// tax; the planner sees it through quantized_sync_seconds and correctly
// routes around it by picking SNP.
#include <cstdio>
#include <sstream>
#include <string>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace apt;
  using namespace apt::bench;
  SetLogLevel(LogLevel::kWarn);
  BenchInit("compression", &argc, argv);

  // Fat features (1024 floats/node) and a nearly cold cache put most bytes
  // on the feature-load and embedding-shuffle paths the codecs compress.
  const Dataset ds = MakeDataset(WithFeatureDim(PsLikeParams(0.25), 1024));
  CaseConfig cfg;
  cfg.dataset = &ds;
  cfg.cluster = MultiMachineCluster(2, 2);
  cfg.model = SageConfig(ds, 192);
  cfg.model.num_layers = 2;
  cfg.opts = PaperDefaults();
  cfg.opts.fanouts = {5, 5};
  cfg.opts.cache_bytes_per_device = ds.FeatureBytes() / 128;

  struct Row {
    const char* name;
    Codec wire, storage, grad;
  };
  const Row rows[] = {
      {"identity", Codec::kIdentity, Codec::kIdentity, Codec::kIdentity},
      {"bf16", Codec::kBf16, Codec::kBf16, Codec::kBf16},
      {"int8", Codec::kInt8, Codec::kInt8, Codec::kInt8},
      // Lossless sparse gradients only; features stay fp32.
      {"delta_grad", Codec::kIdentity, Codec::kIdentity, Codec::kDeltaBitmask},
  };

  PrintTableHeader("codec (2x2 machines, GraphSAGE, fat features)");
  double id_wire = 0.0, id_time = 0.0, id_loss = 0.0;
  double bf16_wire = 0.0, bf16_time = 0.0;
  double gdp_id_time = 0.0, gdp_bf16_time = 0.0;
  for (const Row& row : rows) {
    cfg.opts.pipeline_depth = 1;
    cfg.opts.wire_codec = row.wire;
    cfg.opts.storage_codec = row.storage;
    cfg.opts.grad_codec = row.grad;
    cfg.label = std::string("compression_") + row.name;
    const CaseResult r = RunCase(cfg);
    PrintCaseRow(r);
    const StrategyResult& gdp = r.of(Strategy::kGDP);
    const StrategyResult& snp = r.of(Strategy::kSNP);
    if (std::string(row.name) == "identity") {
      id_wire = static_cast<double>(snp.traffic_wire_bytes);
      id_time = snp.epoch.sim_seconds;
      id_loss = gdp.epoch.loss;
      gdp_id_time = gdp.epoch.sim_seconds;
    } else if (std::string(row.name) == "bf16") {
      bf16_wire = static_cast<double>(snp.traffic_wire_bytes);
      bf16_time = snp.epoch.sim_seconds;
      gdp_bf16_time = gdp.epoch.sim_seconds;
      std::printf("  bf16 GDP loss %.4f vs fp32 %.4f\n", gdp.epoch.loss, id_loss);
    }
  }

  // Planner acceptance at depth 4, where Comparable() models the stacked
  // epoch and is directly comparable to the measured sim_seconds. Measured
  // on the planner's own pick under bf16 (SNP on this config).
  cfg.opts.pipeline_depth = 4;
  cfg.opts.wire_codec = Codec::kBf16;
  cfg.opts.storage_codec = Codec::kBf16;
  cfg.opts.grad_codec = Codec::kBf16;
  cfg.label = "compression_bf16_d4";
  const CaseResult d4 = RunCase(cfg);
  PrintCaseRow(d4);
  const StrategyResult& snp_d4 = d4.of(Strategy::kSNP);
  const double est_rel_err =
      snp_d4.epoch.sim_seconds > 0.0
          ? (snp_d4.estimate.Comparable() - snp_d4.epoch.sim_seconds) /
                snp_d4.epoch.sim_seconds
          : 0.0;

  const double wire_saving = id_wire > 0.0 ? 1.0 - bf16_wire / id_wire : 0.0;
  const double time_saving = id_time > 0.0 ? 1.0 - bf16_time / id_time : 0.0;
  std::printf("\nSNP bf16 wire-byte saving vs fp32: %.1f%%\n", wire_saving * 100.0);
  std::printf("SNP bf16 epoch sim-time saving vs fp32: %.1f%%\n",
              time_saving * 100.0);
  std::printf(
      "GDP quantized-parity tax (double layer-0 sync): %.2fms -> %.2fms under "
      "bf16; planner routes around it via SNP\n",
      gdp_id_time * 1e3, gdp_bf16_time * 1e3);
  std::printf(
      "planner estimate (SNP, bf16, depth 4): %.4fs vs measured %.4fs (%+.1f%%)\n",
      snp_d4.estimate.Comparable(), snp_d4.epoch.sim_seconds,
      est_rel_err * 100.0);
  {
    std::ostringstream os;
    os << "{\"scenario\":\"headline\",\"bf16_wire_saving\":" << wire_saving
       << ",\"bf16_time_saving\":" << time_saving
       << ",\"bf16_estimate_rel_err\":" << est_rel_err << "}";
    AddRecord(os.str());
  }
  return BenchFinish();
}
