// Reproduces paper Figures 6 and 7 (sanity checks):
//   Fig 6 — test accuracy vs EPOCH for the four APT strategies plus a plain
//           GDP reference ("DGL" role): curves must coincide, since the
//           strategies are semantically equivalent.
//   Fig 7 — test accuracy vs simulated TIME: APT's GDP (with cache
//           disabled, as the paper does for the DGL comparison) tracks the
//           reference; also reports the dry-run overhead against the time
//           to reach the target accuracy.
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace apt;
  using namespace apt::bench;
  SetLogLevel(LogLevel::kWarn);
  BenchInit("fig06_fig07_accuracy", &argc, argv);

  const Dataset& ds = PsLike();
  const ClusterSpec cluster = SingleMachineCluster(8);
  const ModelConfig model = SageConfig(ds, 32);
  EngineOptions opts = PaperDefaults();
  opts.cache_bytes_per_device = DefaultCacheBytes(ds);
  const int epochs = 10;

  MultilevelPartitioner ml;
  const std::vector<PartId> partition = ml.Partition(ds.graph, cluster.num_devices());
  const PlanReport plan = MakePlan(ds, cluster, partition, opts, model);

  std::printf("=== Figure 6: test accuracy vs epoch (GraphSAGE on %s) ===\n",
              ds.name.c_str());
  std::printf("%-8s", "epoch");
  for (Strategy s : kAllStrategies) std::printf("  %8s", ToString(s));
  std::printf("\n");

  std::vector<std::unique_ptr<ParallelTrainer>> trainers;
  for (Strategy s : kAllStrategies) {
    trainers.push_back(std::make_unique<ParallelTrainer>(
        ds, BuildTrainerSetup(cluster, model, opts, partition, plan.dryrun, s)));
  }
  std::vector<std::vector<double>> acc(kNumStrategies);
  std::vector<std::vector<double>> time_s(kNumStrategies);
  for (int e = 0; e < epochs; ++e) {
    std::printf("%-8d", e + 1);
    for (std::size_t i = 0; i < trainers.size(); ++i) {
      trainers[i]->TrainEpoch(e);
      const double a = trainers[i]->EvaluateAccuracy(ds.test_nodes);
      acc[i].push_back(a);
      time_s[i].push_back(trainers[i]->sim().MaxNow());
      std::printf("  %8.3f", a);
    }
    std::printf("\n");
  }
  // Equivalence check: curves should agree closely epoch by epoch.
  double max_gap = 0.0;
  for (int e = 0; e < epochs; ++e) {
    for (int i = 1; i < kNumStrategies; ++i) {
      max_gap = std::max(max_gap, std::abs(acc[static_cast<std::size_t>(i)]
                                              [static_cast<std::size_t>(e)] -
                                           acc[0][static_cast<std::size_t>(e)]));
    }
  }
  std::printf("max accuracy gap vs GDP across strategies/epochs: %.4f\n", max_gap);

  std::printf("\n=== Figure 7: test accuracy vs simulated time ===\n");
  std::printf("%-10s", "strategy");
  for (int e = 0; e < epochs; ++e) std::printf("  ep%-2d(ms/acc)  ", e + 1);
  std::printf("\n");
  for (Strategy s : kAllStrategies) {
    const auto i = static_cast<std::size_t>(s);
    std::printf("%-10s", ToString(s));
    for (int e = 0; e < epochs; ++e) {
      std::printf("  %6.1f/%.3f", time_s[i][static_cast<std::size_t>(e)] * 1e3,
                  acc[i][static_cast<std::size_t>(e)]);
    }
    std::printf("\n");
  }

  // Compression accuracy check: GDP under lossy wire/storage codecs must
  // land within a small end-task tolerance of the fp32 run — quantization
  // perturbs the arithmetic, unlike the strategy sweep above, so the curves
  // are close but not identical.
  std::printf("\n=== Quantized accuracy (GDP, %d epochs) ===\n", epochs);
  const double fp32_final = acc[0].back();
  for (Codec codec : {Codec::kBf16, Codec::kInt8}) {
    EngineOptions qopts = opts;
    qopts.wire_codec = codec;
    qopts.storage_codec = codec;
    qopts.grad_codec = codec;
    ParallelTrainer trainer(
        ds, BuildTrainerSetup(cluster, model, qopts, partition, plan.dryrun,
                              Strategy::kGDP));
    double q_acc = 0.0, q_loss = 0.0;
    for (int e = 0; e < epochs; ++e) {
      q_loss = trainer.TrainEpoch(e).loss;
      q_acc = trainer.EvaluateAccuracy(ds.test_nodes);
    }
    const double gap = q_acc - fp32_final;
    std::printf("%-10s final acc %.3f (fp32 %.3f, gap %+.4f) loss %.4f\n",
                ToString(codec), q_acc, fp32_final, gap, q_loss);
    std::ostringstream os;
    os << "{\"scenario\":\"quantized_accuracy\",\"codec\":\"" << ToString(codec)
       << "\",\"final_accuracy\":" << q_acc << ",\"fp32_accuracy\":" << fp32_final
       << ",\"accuracy_gap\":" << gap << ",\"final_loss\":" << q_loss << "}";
    AddRecord(os.str());
  }

  // Dry-run overhead vs training time (the paper reports 25s vs 449s).
  const double train_to_end =
      time_s[static_cast<std::size_t>(plan.selected)].back();
  std::printf(
      "\nAPT dry-run host overhead: %.3fs; simulated %d-epoch training with %s: %.1fms\n",
      plan.dryrun.wall_seconds, epochs, ToString(plan.selected), train_to_end * 1e3);
  std::printf(
      "(the dry-run samples one epoch per seed-assignment family and skips feature "
      "loading, embedding shuffles, and all model computation)\n");
  return BenchFinish();
}
