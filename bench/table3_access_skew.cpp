// Reproduces paper Table 3: node-access skew under fanout-[10,10,10]
// neighbor sampling. Nodes are ranked by access frequency; each row reports
// the share of all input-feature accesses carried by that rank bucket.
//
// Expected shape (paper): PS is extremely head-heavy (top 1% of nodes take
// ~50% of accesses), FS is the most scattered (large tail shares), IM sits
// between them.
#include <cstdio>

#include "bench_util.h"
#include "graph/stats.h"
#include "sampling/frequency.h"
#include "sampling/minibatch.h"
#include "sampling/neighbor_sampler.h"

int main(int argc, char** argv) {
  using namespace apt;
  using namespace apt::bench;
  SetLogLevel(LogLevel::kWarn);
  BenchInit("table3_access_skew", &argc, argv);

  std::printf("=== Table 3: node access skew (fanout [10,10,10]) ===\n");
  std::printf("%-10s | %8s %8s %8s %8s %8s %8s\n", "rank", "<1%", "1~5%", "5~10%",
              "10~20%", "20~50%", "50~100%");
  std::printf("-----------------------------------------------------------------\n");
  for (const Dataset* ds : {&PsLike(), &FsLike(), &ImLike()}) {
    NeighborSampler sampler(ds->graph, {10, 10, 10});
    MinibatchPlan plan(ds->train_nodes, 128, 8);
    FrequencyCollector freq(ds->graph.num_nodes());
    const auto seeds = plan.EpochSeeds(0);
    Rng rng(42);
    for (std::int64_t step = 0; step < plan.StepsPerEpoch(); ++step) {
      const auto step_seeds = plan.StepSeeds(seeds, step);
      freq.Record(sampler.Sample(step_seeds, rng));
    }
    const auto buckets = ComputeAccessSkew(freq.counts());
    std::printf("%-10s |", ds->name.c_str());
    for (const SkewBucket& b : buckets) {
      std::printf(" %7.1f%%", 100.0 * b.access_share);
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper Table 3 reference: PS 50.1/34.8/8.8/4.7/1.7/0.0  "
      "FS 17.7/29.4/19.1/18.8/13.5/1.6  IM 31.1/39.0/19.7/9.3/0.9/0.0\n");
  return BenchFinish();
}
