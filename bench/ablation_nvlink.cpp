// Ablation of the feature map's peer-GPU rule (paper §4.2, rule 1): with
// fast inter-GPU links (NVLink), a device may read a feature cached on a
// PEER GPU instead of going to CPU memory. GDP/NFP cache the same global-hot
// set on every device, so peer reads never trigger for them; SNP/DNP keep
// DISJOINT partition caches, so with NVLink the union of all GPU caches
// becomes one large shared cache.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace apt;
  using namespace apt::bench;
  SetLogLevel(LogLevel::kWarn);
  BenchInit("ablation_nvlink", &argc, argv);

  std::printf("=== Ablation: NVLink peer-GPU feature reads (GraphSAGE, 8 GPUs) ===\n");
  std::printf("%-24s | %18s | %18s\n", "config", "PCIe-only load(ms)",
              "NVLink load(ms)");
  std::printf("%s\n", std::string(68, '-').c_str());
  for (const Dataset* ds : {&PsLike(), &FsLike()}) {
    for (Strategy s : {Strategy::kGDP, Strategy::kSNP, Strategy::kDNP}) {
      double loads[2];
      for (const bool nvlink : {false, true}) {
        CaseConfig cfg;
        cfg.dataset = ds;
        cfg.cluster = SingleMachineCluster(8, nvlink);
        cfg.model = SageConfig(*ds, 32);
        cfg.opts = PaperDefaults();
        cfg.opts.cache_bytes_per_device = DefaultCacheBytes(*ds);
        const CaseResult r = RunCase(cfg);
        loads[nvlink ? 1 : 0] = r.of(s).epoch.load_seconds * 1e3;
      }
      std::printf("%-24s | %18.3f | %18.3f\n",
                  (ds->name + " " + ToString(s)).c_str(), loads[0], loads[1]);
    }
  }
  return BenchFinish();
}
