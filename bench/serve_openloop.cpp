// Open-loop tail-latency benchmark of the serving engine (ROADMAP item 1).
//
// Sweeps offered load (Poisson arrivals, Zipf-popular seeds) through two
// configurations of the same 4-GPU serving cluster — the dynamic
// micro-batcher (close on 32 requests or 1 ms) and a batch-1 strawman — and
// reports the latency percentiles, shed rate, and completed throughput at
// each point. The headline is SUSTAINED QPS under a p99 budget: the highest
// completed throughput among sweep points whose p99 stays under 2 ms. The
// micro-batcher must sustain >= 2x the batch-1 configuration at the same
// budget (amortized kernel launches and per-tier link latencies); the ratio
// is recorded as a gated sim_* metric so CI catches a batching regression.
//
// Every number is simulated seconds on the modeled cluster — deterministic
// cost-model arithmetic, so the records gate tightly on any machine.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/telemetry.h"
#include "serve/serve_engine.h"
#include "serve/traffic.h"

namespace {

using namespace apt;
using serve::ServeEngine;
using serve::ServeOptions;
using serve::ServeReport;

constexpr double kP99BudgetS = 2e-3;

ModelConfig ServingModel(const Dataset& ds) {
  ModelConfig m;
  m.kind = ModelKind::kSage;
  m.num_layers = 2;  // matches the serving fanout depth
  m.input_dim = ds.feature_dim();
  m.hidden_dim = 32;
  m.num_classes = ds.num_classes;
  return m;
}

ServeOptions ServingOptions(const Dataset& ds, int max_batch) {
  ServeOptions o;
  o.fanouts = {10, 10};
  o.batch.max_batch = max_batch;
  o.batch.max_delay_s = 1e-3;
  o.batch.queue_bound = 256;
  o.cache_bytes_per_device = apt::bench::DefaultCacheBytes(ds);
  o.collect_logits = false;
  return o;
}

serve::TrafficConfig Load(const Dataset& ds, double qps,
                          serve::ArrivalKind kind) {
  serve::TrafficConfig t;
  t.kind = kind;
  t.rate_qps = qps;
  t.duration_s = 0.01;
  t.num_nodes = ds.graph.num_nodes();
  t.zipf_alpha = 0.8;
  t.seed = 41;
  return t;
}

ServeReport RunPoint(const Dataset& ds, double qps, int max_batch,
                     serve::ArrivalKind kind) {
  ServeEngine engine(ds, SingleMachineCluster(4), ServingModel(ds),
                     ServingOptions(ds, max_batch));
  return engine.Run(serve::GenerateTraffic(Load(ds, qps, kind)));
}

void PrintRow(const char* config, double offered_qps, const ServeReport& r) {
  std::printf("%-10s | %9.0f | %9.0f | %6.1f%% | %8.0f | %8.0f | %8.0f | %6.1f\n",
              config, offered_qps, r.completed_qps, r.shed_rate * 100.0,
              r.p50_s * 1e6, r.p99_s * 1e6, r.max_latency_s * 1e6,
              r.mean_batch_rows);
}

void RecordPoint(const std::string& shape, const ServeReport& r) {
  // Latency and inverse-throughput metrics only: for every gated sim_*
  // number "bigger" must mean "worse" (the gate flags increases).
  std::ostringstream os;
  os << "{\"op\":\"serve_openloop\",\"shape\":\"" << shape << "\""
     << ",\"sim_p50_s\":" << r.p50_s << ",\"sim_p99_s\":" << r.p99_s
     << ",\"sim_us_per_request\":" << 1e6 / r.completed_qps
     << ",\"shed_rate\":" << r.shed_rate
     << ",\"mean_batch_rows\":" << r.mean_batch_rows << "}";
  apt::bench::AddRecord(os.str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace apt::bench;
  SetLogLevel(LogLevel::kWarn);
  BenchInit("serve", &argc, argv);

  const Dataset& ds = PsLike();
  const std::vector<double> loads_qps = {25e3, 50e3, 100e3, 200e3, 400e3, 800e3};

  std::printf("=== Open-loop serving: dynamic micro-batching vs batch-1 "
              "(ps_like, 4 GPUs, p99 budget %.1f ms) ===\n", kP99BudgetS * 1e3);
  std::printf("%-10s | %9s | %9s | %7s | %8s | %8s | %8s | %6s\n", "config",
              "offered", "completed", "shed", "p50(us)", "p99(us)", "max(us)",
              "rows");
  std::printf("%s\n", std::string(86, '-').c_str());

  double sustained_batched = 0.0;
  double sustained_batch1 = 0.0;
  for (const double qps : loads_qps) {
    const ServeReport batched =
        RunPoint(ds, qps, 32, serve::ArrivalKind::kPoisson);
    PrintRow("batch32", qps, batched);
    if (batched.p99_s <= kP99BudgetS) {
      sustained_batched = std::max(sustained_batched, batched.completed_qps);
      // Only in-budget points gate: overloaded points' percentiles sit on
      // the shed cliff and would make the baseline needlessly brittle.
      RecordPoint("b32_" + std::to_string(static_cast<int>(qps / 1000)) + "k",
                  batched);
    }

    const ServeReport solo = RunPoint(ds, qps, 1, serve::ArrivalKind::kPoisson);
    PrintRow("batch1", qps, solo);
    if (solo.p99_s <= kP99BudgetS) {
      sustained_batch1 = std::max(sustained_batch1, solo.completed_qps);
      RecordPoint("b1_" + std::to_string(static_cast<int>(qps / 1000)) + "k",
                  solo);
    }
  }

  // Bursty arrivals at half the batched sustained load: the same mean rate
  // arrives in on/off waves, so the tail absorbs the burst backlog.
  const double bursty_qps = sustained_batched / 2.0;
  ServeEngine bursty_engine(ds, SingleMachineCluster(4), ServingModel(ds),
                            ServingOptions(ds, 32));
  serve::TrafficConfig bursty =
      Load(ds, bursty_qps, serve::ArrivalKind::kBursty);
  bursty.burst_period_s = 2e-3;
  bursty.burst_duty = 0.25;
  const ServeReport bursty_r =
      bursty_engine.Run(serve::GenerateTraffic(bursty));
  PrintRow("bursty32", bursty_qps, bursty_r);
  RecordPoint("bursty_half_load", bursty_r);

  std::printf("%s\n", std::string(86, '-').c_str());
  const double ratio =
      sustained_batch1 > 0.0 ? sustained_batched / sustained_batch1 : 0.0;
  std::printf("sustained under p99 <= %.1f ms: batch32 %.0f qps, batch1 %.0f "
              "qps -> %.2fx from micro-batching\n",
              kP99BudgetS * 1e3, sustained_batched, sustained_batch1, ratio);

  // Headline gate: the batching advantage (recorded inverted — the gate
  // flags increases, and a SHRINKING advantage is the regression).
  std::ostringstream os;
  os << "{\"op\":\"serve_headline\",\"shape\":\"\""
     << ",\"sim_batch1_over_batch32_qps\":"
     << (sustained_batched > 0.0 ? sustained_batch1 / sustained_batched : 1.0)
     << ",\"sim_sustained_us_per_request\":"
     << (sustained_batched > 0.0 ? 1e6 / sustained_batched : 1e9)
     << ",\"qps_ratio\":" << ratio << "}";
  AddRecord(os.str());

  // Dedicated telemetry point for the --telemetry-out export (the CI
  // `aptperf slo` check): the sweep points above share the process-global
  // telemetry registry with clocks that restart at 0 every run, so their
  // windows pile on top of each other. Reset and run ONE comfortably
  // in-budget configuration so the exported timeline is deterministic and
  // its p99 rule is meaningful.
  obs::Telemetry::Global().ResetAll();
  const ServeReport telem_point =
      RunPoint(ds, 50e3, 32, serve::ArrivalKind::kPoisson);
  std::printf("telemetry point: batch32 @ 50k qps, p99 %.0f us over %lld "
              "requests\n",
              telem_point.p99_s * 1e6,
              static_cast<long long>(telem_point.served));
  return BenchFinish();
}
