#include "bench_util.h"

#include <cstdio>

#include "core/logging.h"

namespace apt::bench {

namespace {

constexpr double kBenchScale = 0.25;

Dataset MakeCached(DatasetParams params) { return MakeDataset(params); }

}  // namespace

const Dataset& PsLike() {
  static const Dataset ds = MakeCached(PsLikeParams(kBenchScale));
  return ds;
}

const Dataset& FsLike() {
  static const Dataset ds = MakeCached(FsLikeParams(kBenchScale));
  return ds;
}

const Dataset& ImLike() {
  static const Dataset ds = MakeCached(ImLikeParams(kBenchScale));
  return ds;
}

EngineOptions PaperDefaults() {
  EngineOptions opts;
  opts.fanouts = {10, 10, 10};
  opts.batch_size_per_device = 128;  // paper: 1024/GPU at 100x our graph size
  return opts;
}

ModelConfig SageConfig(const Dataset& ds, std::int64_t hidden) {
  ModelConfig m;
  m.kind = ModelKind::kSage;
  m.num_layers = 3;
  m.hidden_dim = hidden;
  m.input_dim = ds.feature_dim();
  m.num_classes = ds.num_classes;
  return m;
}

ModelConfig GatConfig(const Dataset& ds, std::int64_t hidden) {
  ModelConfig m;
  m.kind = ModelKind::kGat;
  m.num_layers = 3;
  m.hidden_dim = hidden;
  m.gat_heads = 4;
  m.input_dim = ds.feature_dim();
  m.num_classes = ds.num_classes;
  return m;
}

std::int64_t DefaultCacheBytes(const Dataset& ds) {
  // The paper uses a 4 GB cache against 53-128 GB feature stores (~4-8%).
  return ds.FeatureBytes() / 16;
}

double CaseResult::BestSeconds() const {
  double best = 0.0;
  bool found = false;
  for (const StrategyResult& r : per_strategy) {
    if (r.oom) continue;
    if (!found || r.epoch.sim_seconds < best) {
      best = r.epoch.sim_seconds;
      found = true;
    }
  }
  return best;
}

CaseResult RunCase(const CaseConfig& config) {
  APT_CHECK(config.dataset != nullptr);
  const Dataset& ds = *config.dataset;
  CaseResult result;
  result.label = config.label;

  MultilevelPartitioner default_part;
  Partitioner* partitioner =
      config.partitioner != nullptr ? config.partitioner : &default_part;
  const std::vector<PartId> partition =
      partitioner->Partition(ds.graph, config.cluster.num_devices());

  ModelConfig model = config.model;
  if (model.input_dim == 0) model.input_dim = ds.feature_dim();
  if (model.num_classes == 0) model.num_classes = ds.num_classes;

  const PlanReport plan = MakePlan(ds, config.cluster, partition, config.opts, model);
  result.selected = plan.selected;
  result.dryrun_wall_seconds = plan.dryrun.wall_seconds;

  result.per_strategy.resize(kNumStrategies);
  for (Strategy s : kAllStrategies) {
    StrategyResult& sr = result.per_strategy[static_cast<std::size_t>(s)];
    sr.strategy = s;
    sr.estimate = plan.estimates[static_cast<std::size_t>(s)];
    TrainerSetup setup = BuildTrainerSetup(config.cluster, model, config.opts,
                                           partition, plan.dryrun, s);
    ParallelTrainer trainer(ds, std::move(setup));
    EpochStats sum{};
    for (int e = 0; e < config.epochs; ++e) {
      const EpochStats st = trainer.TrainEpoch(e);
      sum.loss += st.loss;
      sum.sim_seconds += st.sim_seconds;
      sum.wall_seconds += st.wall_seconds;
      sum.sample_seconds += st.sample_seconds;
      sum.load_seconds += st.load_seconds;
      sum.train_seconds += st.train_seconds;
    }
    const double inv = 1.0 / config.epochs;
    sr.epoch.loss = sum.loss * inv;
    sr.epoch.sim_seconds = sum.sim_seconds * inv;
    sr.epoch.wall_seconds = sum.wall_seconds * inv;
    sr.epoch.sample_seconds = sum.sample_seconds * inv;
    sr.epoch.load_seconds = sum.load_seconds * inv;
    sr.epoch.train_seconds = sum.train_seconds * inv;
    sr.oom = trainer.sim().AnyOom();
  }
  return result;
}

void PrintTableHeader(const std::string& sweep_name) {
  std::printf("\n%-24s | %-26s | %-26s | %-26s | %-26s\n", sweep_name.c_str(),
              "GDP  total (smp/ld/trn)", "NFP  total (smp/ld/trn)",
              "SNP  total (smp/ld/trn)", "DNP  total (smp/ld/trn)");
  std::printf("%s\n", std::string(24 + 4 * 29, '-').c_str());
}

void PrintCaseRow(const CaseResult& result) {
  std::printf("%-24s |", result.label.c_str());
  for (Strategy s : kAllStrategies) {
    const StrategyResult& r = result.of(s);
    const char star = result.selected == s ? '*' : ' ';
    if (r.oom) {
      std::printf("%c %7.2fms OOM             |", star,
                  r.epoch.sim_seconds * 1e3);
    } else {
      std::printf("%c %7.2fms (%5.2f/%5.2f/%5.2f)|", star,
                  r.epoch.sim_seconds * 1e3, r.epoch.sample_seconds * 1e3,
                  r.epoch.load_seconds * 1e3, r.epoch.train_seconds * 1e3);
    }
  }
  std::printf("\n");
}

}  // namespace apt::bench
