#include "bench_util.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/logging.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"

// Build metadata injected by bench/CMakeLists.txt; the fallbacks keep
// bench_util compilable standalone.
#ifndef APT_GIT_SHA
#define APT_GIT_SHA "unknown"
#endif
#ifndef APT_BUILD_TYPE
#define APT_BUILD_TYPE "unknown"
#endif
#ifndef APT_SANITIZE_FLAG
#define APT_SANITIZE_FLAG ""
#endif

namespace apt::bench {

namespace {

constexpr double kBenchScale = 0.25;

Dataset MakeCached(DatasetParams params) { return MakeDataset(params); }

/// State of the current bench run (one per process).
struct BenchRun {
  bool initialized = false;
  std::string name = "bench";
  std::string trace_out;
  std::string metrics_out;
  std::string records_out;
  std::string telemetry_out;
  std::string prom_out;
  bool scale_mode = false;
  std::vector<std::string> records;
};

BenchRun& Run() {
  static BenchRun run;
  return run;
}

/// If `arg` is `<prefix><value>`, stores value and returns true.
bool TakeFlag(const char* arg, const char* prefix, std::string* out) {
  const std::size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return false;
  *out = arg + n;
  return true;
}

void WriteEpochJson(obs::JsonWriter& w, const EpochStats& e) {
  w.KV("sim_seconds", e.sim_seconds);
  w.KV("wall_seconds", e.wall_seconds);
  w.KV("sample_seconds", e.sample_seconds);
  w.KV("load_seconds", e.load_seconds);
  w.KV("train_seconds", e.train_seconds);
  w.KV("comm_sample_seconds", e.comm_sample_seconds);
  w.KV("comm_train_seconds", e.comm_train_seconds);
  w.KV("loss", e.loss);
  // Scale mode: fast-forwarded steps mark loss (and accuracy) as
  // EXTRAPOLATED from the probe steps; the timing metrics above stay
  // exact-model. Both counts are deterministic, so the gate holds them tight.
  if (e.steps_fast_forwarded > 0) {
    w.KV("steps_executed", e.steps_executed);
    w.KV("steps_fast_forwarded", e.steps_fast_forwarded);
    w.KV("extrapolated", true);
  }
}

/// One record per case: the full per-strategy breakdown plus the planner's
/// estimates, keyed the way downstream tooling plots the figures.
void RecordCase(const CaseResult& result) {
  if (!Run().initialized) return;
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.BeginObject();
  w.KV("case", result.label);
  w.KV("selected", ToString(result.selected));
  w.KV("dryrun_wall_seconds", result.dryrun_wall_seconds);
  w.Key("strategies");
  w.BeginObject();
  for (Strategy s : kAllStrategies) {
    const StrategyResult& r = result.of(s);
    w.Key(ToString(s));
    w.BeginObject();
    WriteEpochJson(w, r.epoch);
    w.KV("oom", r.oom);
    w.KV("estimate_comparable_seconds", r.estimate.Comparable());
    // sim_* byte counts are deterministic and gate at a near-zero threshold.
    w.KV("sim_traffic_bytes", r.traffic_bytes);
    w.KV("sim_compressed_bytes", r.traffic_wire_bytes);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  AddRecord(os.str());
}

}  // namespace

void BenchInit(const std::string& name, int* argc, char** argv) {
  BenchRun& run = Run();
  run.initialized = true;
  run.name = name;
  run.records_out = "BENCH_" + name + ".json";
  if (argc != nullptr && argv != nullptr) {
    int w = 1;
    for (int i = 1; i < *argc; ++i) {
      if (TakeFlag(argv[i], "--trace-out=", &run.trace_out) ||
          TakeFlag(argv[i], "--metrics-out=", &run.metrics_out) ||
          TakeFlag(argv[i], "--records-out=", &run.records_out) ||
          TakeFlag(argv[i], "--telemetry-out=", &run.telemetry_out) ||
          TakeFlag(argv[i], "--prom-out=", &run.prom_out)) {
        continue;
      }
      if (std::strcmp(argv[i], "--scale-mode") == 0) {
        run.scale_mode = true;
        continue;
      }
      argv[w++] = argv[i];
    }
    *argc = w;
  }
  if (!run.trace_out.empty()) obs::SetTracingEnabled(true);
}

void AddRecord(std::string json_object) {
  Run().records.push_back(std::move(json_object));
}

int BenchFinish() {
  BenchRun& run = Run();
  int rc = 0;
  {
    std::ofstream os(run.records_out);
    obs::JsonWriter w(os);
    w.BeginObject();
    w.KV("schema_version", obs::kObsSchemaVersion);
    w.Key("meta");
    w.BeginObject();
    w.KV("kind", "bench_records");
    w.KV("bench", run.name);
    w.KV("git_sha", APT_GIT_SHA);
    w.KV("build_type", APT_BUILD_TYPE);
    w.KV("sanitizer", APT_SANITIZE_FLAG);
    w.KV("compiler", __VERSION__);
    w.KV("threads",
         static_cast<std::int64_t>(ThreadPool::Global().ParallelismDegree()));
    w.KV("scale_mode", run.scale_mode);
    w.EndObject();
    w.Key("records");
    w.BeginArray();
    for (const std::string& r : run.records) w.RawValue(r);
    w.EndArray();
    w.EndObject();
    os << "\n";
    if (!os) {
      std::fprintf(stderr, "failed to write %s\n", run.records_out.c_str());
      rc = 1;
    } else {
      std::printf("wrote %s (%zu records)\n", run.records_out.c_str(),
                  run.records.size());
    }
  }
  if (!run.metrics_out.empty()) {
    if (obs::Metrics::Global().WriteJsonFile(run.metrics_out)) {
      std::printf("wrote %s\n", run.metrics_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", run.metrics_out.c_str());
      rc = 1;
    }
  }
  if (!run.trace_out.empty()) {
    if (obs::ExportChromeTrace(run.trace_out)) {
      std::printf("wrote %s (open in https://ui.perfetto.dev)\n",
                  run.trace_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", run.trace_out.c_str());
      rc = 1;
    }
  }
  if (!run.telemetry_out.empty()) {
    if (obs::Telemetry::Global().WriteTimelineFile(run.telemetry_out)) {
      std::printf("wrote %s\n", run.telemetry_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", run.telemetry_out.c_str());
      rc = 1;
    }
  }
  if (!run.prom_out.empty()) {
    std::ofstream os(run.prom_out);
    if (os) obs::WritePrometheusText(os);
    if (os) {
      std::printf("wrote %s\n", run.prom_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", run.prom_out.c_str());
      rc = 1;
    }
  }
  run.records.clear();
  return rc;
}

const Dataset& PsLike() {
  static const Dataset ds = MakeCached(PsLikeParams(kBenchScale));
  return ds;
}

const Dataset& FsLike() {
  static const Dataset ds = MakeCached(FsLikeParams(kBenchScale));
  return ds;
}

const Dataset& ImLike() {
  static const Dataset ds = MakeCached(ImLikeParams(kBenchScale));
  return ds;
}

bool ScaleModeRequested() { return Run().scale_mode; }

EngineOptions PaperDefaults() {
  EngineOptions opts;
  opts.fanouts = {10, 10, 10};
  opts.batch_size_per_device = 128;  // paper: 1024/GPU at 100x our graph size
  // --scale-mode flips every figure bench into sampled execution + analytic
  // fast-forward (timing metrics stay exact-model; loss is extrapolated and
  // the records flag it).
  if (ScaleModeRequested()) opts.sim.scale_mode = ScaleMode::kScale;
  return opts;
}

ModelConfig SageConfig(const Dataset& ds, std::int64_t hidden) {
  ModelConfig m;
  m.kind = ModelKind::kSage;
  m.num_layers = 3;
  m.hidden_dim = hidden;
  m.input_dim = ds.feature_dim();
  m.num_classes = ds.num_classes;
  return m;
}

ModelConfig GatConfig(const Dataset& ds, std::int64_t hidden) {
  ModelConfig m;
  m.kind = ModelKind::kGat;
  m.num_layers = 3;
  m.hidden_dim = hidden;
  m.gat_heads = 4;
  m.input_dim = ds.feature_dim();
  m.num_classes = ds.num_classes;
  return m;
}

std::int64_t DefaultCacheBytes(const Dataset& ds) {
  // The paper uses a 4 GB cache against 53-128 GB feature stores (~4-8%).
  return ds.FeatureBytes() / 16;
}

double CaseResult::BestSeconds() const {
  double best = 0.0;
  bool found = false;
  for (const StrategyResult& r : per_strategy) {
    if (r.oom) continue;
    if (!found || r.epoch.sim_seconds < best) {
      best = r.epoch.sim_seconds;
      found = true;
    }
  }
  return best;
}

CaseResult RunCase(const CaseConfig& config) {
  APT_CHECK(config.dataset != nullptr);
  const Dataset& ds = *config.dataset;
  CaseResult result;
  result.label = config.label;

  MultilevelPartitioner default_part;
  Partitioner* partitioner =
      config.partitioner != nullptr ? config.partitioner : &default_part;
  const std::vector<PartId> partition =
      partitioner->Partition(ds.graph, config.cluster.num_devices());

  ModelConfig model = config.model;
  if (model.input_dim == 0) model.input_dim = ds.feature_dim();
  if (model.num_classes == 0) model.num_classes = ds.num_classes;

  const PlanReport plan = MakePlan(ds, config.cluster, partition, config.opts, model);
  result.selected = plan.selected;
  result.dryrun_wall_seconds = plan.dryrun.wall_seconds;

  result.per_strategy.resize(kNumStrategies);
  for (Strategy s : kAllStrategies) {
    StrategyResult& sr = result.per_strategy[static_cast<std::size_t>(s)];
    sr.strategy = s;
    sr.estimate = plan.estimates[static_cast<std::size_t>(s)];
    TrainerSetup setup = BuildTrainerSetup(config.cluster, model, config.opts,
                                           partition, plan.dryrun, s);
    ParallelTrainer trainer(ds, std::move(setup));
    EpochStats sum{};
    for (int e = 0; e < config.epochs; ++e) {
      const EpochStats st = trainer.TrainEpoch(e);
      sum.loss += st.loss;
      sum.sim_seconds += st.sim_seconds;
      sum.wall_seconds += st.wall_seconds;
      sum.sample_seconds += st.sample_seconds;
      sum.load_seconds += st.load_seconds;
      sum.train_seconds += st.train_seconds;
      sum.comm_sample_seconds += st.comm_sample_seconds;
      sum.comm_train_seconds += st.comm_train_seconds;
      sum.steps_executed += st.steps_executed;
      sum.steps_fast_forwarded += st.steps_fast_forwarded;
    }
    const double inv = 1.0 / config.epochs;
    sr.epoch.loss = sum.loss * inv;
    sr.epoch.sim_seconds = sum.sim_seconds * inv;
    sr.epoch.wall_seconds = sum.wall_seconds * inv;
    sr.epoch.sample_seconds = sum.sample_seconds * inv;
    sr.epoch.load_seconds = sum.load_seconds * inv;
    sr.epoch.train_seconds = sum.train_seconds * inv;
    sr.epoch.comm_sample_seconds = sum.comm_sample_seconds * inv;
    sr.epoch.comm_train_seconds = sum.comm_train_seconds * inv;
    // Counts, not seconds: totals over the measured epochs.
    sr.epoch.steps_executed = sum.steps_executed;
    sr.epoch.steps_fast_forwarded = sum.steps_fast_forwarded;
    sr.oom = trainer.sim().AnyOom();
    for (std::size_t c = 0; c < static_cast<std::size_t>(TrafficClass::kNumClasses);
         ++c) {
      sr.traffic_bytes += trainer.sim().TrafficBytes(static_cast<TrafficClass>(c));
      sr.traffic_wire_bytes +=
          trainer.sim().TrafficWireBytes(static_cast<TrafficClass>(c));
    }
  }
  return result;
}

void PrintTableHeader(const std::string& sweep_name) {
  std::printf("\n%-24s | %-26s | %-26s | %-26s | %-26s\n", sweep_name.c_str(),
              "GDP  total (smp/ld/trn)", "NFP  total (smp/ld/trn)",
              "SNP  total (smp/ld/trn)", "DNP  total (smp/ld/trn)");
  std::printf("%s\n", std::string(24 + 4 * 29, '-').c_str());
}

void PrintCaseRow(const CaseResult& result) {
  std::printf("%-24s |", result.label.c_str());
  for (Strategy s : kAllStrategies) {
    const StrategyResult& r = result.of(s);
    const char star = result.selected == s ? '*' : ' ';
    if (r.oom) {
      std::printf("%c %7.2fms OOM             |", star,
                  r.epoch.sim_seconds * 1e3);
    } else {
      std::printf("%c %7.2fms (%5.2f/%5.2f/%5.2f)|", star,
                  r.epoch.sim_seconds * 1e3, r.epoch.sample_seconds * 1e3,
                  r.epoch.load_seconds * 1e3, r.epoch.train_seconds * 1e3);
    }
  }
  std::printf("\n");
  RecordCase(result);
}

}  // namespace apt::bench
