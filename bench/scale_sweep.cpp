// Scale-mode sweep: the deviation-D1 experiment at paper scale.
//
// EXPERIMENTS.md D1 records that the bench-scale FS stand-in mutes the
// paper's hidden-dim crossover: at ~30k nodes the per-device frontiers are
// small enough that (a) feature loading is a minor epoch fraction and
// (c) SNP's fixed per-collective latencies never amortize, so GDP wins
// every cell. Scale mode removes the reason to shrink the experiment:
// analytic fast-forward collectives + sampled execution train a 100M-node-
// class RMAT graph on simulated clusters up to 100 machines / 1000 devices
// in minutes on one workstation.
//
// The full run builds ONE RMAT scale-27 graph (~134M nodes, 2^28 edges,
// procedural dim-256 features — FS's feature dim, nothing O(N x dim) is
// materialized) and sweeps two cluster blocks:
//
//   * paper32 — 4 machines x 8 GPUs, batch 2048, fanout [10,10]: the
//     paper-testbed-shaped block. Per-device frontiers reach ~5e4 unique
//     nodes, loading dominates GDP's epoch exactly as at Friendster scale,
//     and the FS hidden-dim crossover appears: SNP wins at hidden 32, GDP
//     at hidden 512 (deviation D1 disappears).
//   * xl1000 — 100 machines x 10 GPUs, batch 16: the scale-demonstration
//     block. At 1000 flat ranks every SNP all-to-all pays ~1000 per-lane
//     injection latencies per step, which no loading advantage can buy
//     back, so GDP stays optimal at every hidden dim — a real property of
//     flat collectives at that fan-out, reported as such.
//
// Both use a modulo node partition (no multilevel partition is available at
// 134M nodes — fig11's random-partition regime, which is also FS's
// poor-partitionability story) and an empty feature cache.
//
// Emits BENCH_scale.json rows (gated by `aptperf gate`): every sim_* metric
// is a deterministic simulated quantity, bit-stable across thread counts;
// rows carry steps_executed / steps_fast_forwarded and extrapolated=true.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/logging.h"
#include "engine/trainer.h"
#include "feature/feature_store.h"
#include "graph/generators.h"
#include "obs/json.h"
#include "sim/hardware.h"
#include "sim/scale.h"

namespace {

using namespace apt;

/// One simulated-cluster block swept over hidden dims on the shared graph.
struct ClusterBlock {
  std::string name;
  int machines = 4;
  int gpus_per_machine = 8;
  std::int64_t batch_per_device = 2048;
  std::vector<int> fanouts = {10, 10};
  std::int64_t sample_period = 8;
  std::int64_t max_steps = 8;
  std::vector<std::int64_t> hidden_dims = {32, 512};
};

struct SweepConfig {
  int rmat_scale = 27;  // ~134M nodes: the 100M-node class
  EdgeId rmat_edges = 1LL << 28;
  std::int64_t feature_dim = 256;  // FS feature dim
  std::int64_t num_classes = 16;
  std::int64_t train_nodes = 1LL << 19;
  std::vector<ClusterBlock> blocks;
};

SweepConfig FullConfig() {
  SweepConfig c;
  ClusterBlock paper;
  paper.name = "paper32";
  c.blocks.push_back(paper);
  ClusterBlock xl;
  xl.name = "xl1000";
  xl.machines = 100;
  xl.gpus_per_machine = 10;
  xl.batch_per_device = 16;
  xl.sample_period = 16;
  xl.max_steps = 16;
  c.blocks.push_back(xl);
  return c;
}

SweepConfig SmokeConfig() {
  SweepConfig c;
  c.rmat_scale = 16;  // 65536 nodes
  c.rmat_edges = 1LL << 18;
  c.feature_dim = 64;
  c.train_nodes = 4096;
  ClusterBlock b;
  b.name = "smoke32";
  b.machines = 8;
  b.gpus_per_machine = 4;
  b.batch_per_device = 4;
  b.fanouts = {4, 4};
  b.sample_period = 4;
  b.max_steps = 8;
  b.hidden_dims = {32, 256};
  c.blocks.push_back(b);
  return c;
}

std::vector<std::int64_t> ParseInt64List(const char* s) {
  std::vector<std::int64_t> out;
  std::int64_t v = 0;
  bool have = false;
  for (;; ++s) {
    if (*s >= '0' && *s <= '9') {
      v = v * 10 + (*s - '0');
      have = true;
    } else {
      if (have) out.push_back(v);
      v = 0;
      have = false;
      if (*s == '\0') break;
    }
  }
  return out;
}

/// Exploration overrides (`--dim=...`). Graph flags apply to the shared
/// graph; block flags replace the default blocks with one custom block.
/// The checked-in defaults are the full and --smoke configurations above.
bool ApplyFlag(SweepConfig* cfg, ClusterBlock* custom, const char* arg) {
  const auto eat = [&](const char* prefix, const char** rest) {
    const std::size_t n = std::strlen(prefix);
    if (std::strncmp(arg, prefix, n) != 0) return false;
    *rest = arg + n;
    return true;
  };
  const char* v = nullptr;
  // Graph flags (shared dataset) — do not imply a custom block.
  if (eat("--rmat-scale=", &v)) cfg->rmat_scale = std::atoi(v);
  else if (eat("--edges-log2=", &v)) cfg->rmat_edges = 1LL << std::atoi(v);
  else if (eat("--dim=", &v)) cfg->feature_dim = std::atoll(v);
  else if (eat("--train-nodes=", &v)) cfg->train_nodes = std::atoll(v);
  // Block flags — any of these replaces the default blocks with `custom`.
  else if (eat("--machines=", &v)) custom->machines = std::atoi(v);
  else if (eat("--gpus=", &v)) custom->gpus_per_machine = std::atoi(v);
  else if (eat("--batch=", &v)) custom->batch_per_device = std::atoll(v);
  else if (eat("--period=", &v)) custom->sample_period = std::atoll(v);
  else if (eat("--steps=", &v)) custom->max_steps = std::atoll(v);
  else if (eat("--hiddens=", &v)) custom->hidden_dims = ParseInt64List(v);
  else if (eat("--fanout=", &v)) {
    custom->fanouts.clear();
    for (std::int64_t f : ParseInt64List(v)) {
      custom->fanouts.push_back(static_cast<int>(f));
    }
  } else {
    return false;
  }
  return eat("--machines=", &v) || eat("--gpus=", &v) || eat("--batch=", &v) ||
         eat("--period=", &v) || eat("--steps=", &v) || eat("--hiddens=", &v) ||
         eat("--fanout=", &v);
}

/// RMAT topology + procedural features + hashed labels + strided train set.
Dataset MakeRmatDataset(const SweepConfig& cfg) {
  Dataset ds;
  ds.name = "rmat" + std::to_string(cfg.rmat_scale);
  ds.graph = Rmat(cfg.rmat_scale, cfg.rmat_edges, 0.57, 0.19, 0.19, Rng(12));
  ds.num_classes = cfg.num_classes;
  ds.procedural_feature_dim = cfg.feature_dim;
  ds.procedural_feature_seed = 0xA77EA57ULL;
  const NodeId n = ds.graph.num_nodes();
  ds.labels.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    ds.labels[static_cast<std::size_t>(v)] = static_cast<std::int64_t>(
        Rng(0xB0A7 ^ static_cast<std::uint64_t>(v)).NextBelow(
            static_cast<std::uint64_t>(cfg.num_classes)));
  }
  const NodeId stride = std::max<NodeId>(1, n / cfg.train_nodes);
  ds.train_nodes.reserve(static_cast<std::size_t>(cfg.train_nodes));
  for (NodeId v = 0; v < n && static_cast<std::int64_t>(ds.train_nodes.size()) <
                                  cfg.train_nodes;
       v += stride) {
    ds.train_nodes.push_back(v);
  }
  return ds;
}

struct CellResult {
  Strategy strategy = Strategy::kGDP;
  EpochStats epoch;
  std::int64_t traffic_bytes = 0;
  std::int64_t traffic_wire_bytes = 0;
  double build_wall_s = 0.0;
  double train_wall_s = 0.0;
};

CellResult RunCell(const Dataset& ds, const ClusterSpec& cluster,
                   const ClusterBlock& block, Strategy strategy,
                   std::int64_t hidden) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::int32_t num_devices = cluster.num_devices();

  EngineOptions opts;
  opts.strategy = strategy;
  opts.fanouts = block.fanouts;
  opts.batch_size_per_device = block.batch_per_device;
  opts.cache_bytes_per_device = 0;  // cold cache: the crossover is loads-vs-shuffles
  opts.seed_assignment = EngineOptions::DefaultAssignment(strategy);
  opts.sim.scale_mode = ScaleMode::kScale;
  opts.scale_sample_period = block.sample_period;
  opts.max_steps_per_epoch = block.max_steps;

  ModelConfig model;
  model.kind = ModelKind::kSage;
  model.num_layers = static_cast<int>(opts.fanouts.size());
  model.hidden_dim = hidden;
  model.input_dim = ds.feature_dim();
  model.num_classes = ds.num_classes;

  // Modulo partition: the no-quality-partition regime (see header comment).
  // The planner/dry-run pipeline is deliberately skipped — at 134M nodes the
  // multilevel partitioner is part of what scale mode routes around.
  TrainerSetup setup;
  setup.cluster = cluster;
  setup.model = model;
  setup.engine = opts;
  const NodeId n = ds.graph.num_nodes();
  setup.partition.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    setup.partition[static_cast<std::size_t>(v)] =
        static_cast<PartId>(v % num_devices);
  }
  setup.cache.cache_nodes.resize(static_cast<std::size_t>(num_devices));
  setup.cache.bytes_per_cached_row = ds.feature_dim() * 4;
  setup.feature_placement = FeaturePlacementFromPartition(setup.partition, cluster);

  ParallelTrainer trainer(ds, std::move(setup));
  const auto t1 = std::chrono::steady_clock::now();

  CellResult r;
  r.strategy = strategy;
  r.epoch = trainer.TrainEpoch(0);
  const auto t2 = std::chrono::steady_clock::now();
  for (int c = 0; c < static_cast<int>(TrafficClass::kNumClasses); ++c) {
    r.traffic_bytes += trainer.sim().TrafficBytes(static_cast<TrafficClass>(c));
    r.traffic_wire_bytes +=
        trainer.sim().TrafficWireBytes(static_cast<TrafficClass>(c));
  }
  r.build_wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.train_wall_s = std::chrono::duration<double>(t2 - t1).count();
  return r;
}

void RecordCase(const std::string& label, const std::vector<CellResult>& cells) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.BeginObject();
  w.KV("case", label);
  w.Key("strategies");
  w.BeginObject();
  for (const CellResult& r : cells) {
    w.Key(ToString(r.strategy));
    w.BeginObject();
    w.KV("sim_seconds", r.epoch.sim_seconds);
    w.KV("sim_wall_clock_seconds", r.epoch.wall_seconds);
    w.KV("sim_sample_seconds", r.epoch.sample_seconds);
    w.KV("sim_load_seconds", r.epoch.load_seconds);
    w.KV("sim_train_seconds", r.epoch.train_seconds);
    w.KV("sim_traffic_bytes", r.traffic_bytes);
    w.KV("sim_compressed_bytes", r.traffic_wire_bytes);
    w.KV("steps_executed", r.epoch.steps_executed);
    w.KV("steps_fast_forwarded", r.epoch.steps_fast_forwarded);
    w.KV("extrapolated", r.epoch.steps_fast_forwarded > 0);
    w.KV("harness_wall_seconds", r.build_wall_s + r.train_wall_s);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  bench::AddRecord(os.str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace apt;
  SetLogLevel(LogLevel::kWarn);
  // Named "scale" so the records land in BENCH_scale.json (the gate file).
  bench::BenchInit("scale", &argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  SweepConfig cfg = smoke ? SmokeConfig() : FullConfig();
  ClusterBlock custom;
  custom.name = "custom";
  bool have_custom = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0 || std::strcmp(argv[i], "--smoke") == 0)
      continue;
    have_custom |= ApplyFlag(&cfg, &custom, argv[i]);
  }
  if (have_custom) cfg.blocks = {custom};

  const auto g0 = std::chrono::steady_clock::now();
  const Dataset ds = MakeRmatDataset(cfg);
  const double graph_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - g0).count();
  std::printf(
      "=== Scale sweep (deviation D1): %s, %lld nodes / %lld edges, dim %lld "
      "[graph build %.1fs] ===\n",
      ds.name.c_str(), static_cast<long long>(ds.graph.num_nodes()),
      static_cast<long long>(ds.graph.num_edges()),
      static_cast<long long>(cfg.feature_dim), graph_wall);
  std::printf("%-26s %-5s %12s %12s %12s %12s %10s %14s\n", "case", "strat",
              "epoch_s", "sample_s", "load_s", "train_s", "steps", "harness_s");

  bool paper_low_snp = false, paper_high_gdp = false;
  for (const ClusterBlock& block : cfg.blocks) {
    const ClusterSpec cluster =
        MultiMachineCluster(block.machines, block.gpus_per_machine);
    std::printf("--- %s: %d machines x %d GPUs, batch %lld/device ---\n",
                block.name.c_str(), block.machines, block.gpus_per_machine,
                static_cast<long long>(block.batch_per_device));
    for (std::size_t hi = 0; hi < block.hidden_dims.size(); ++hi) {
      const std::int64_t hidden = block.hidden_dims[hi];
      const std::string label = ds.name + "_" + block.name + "_d" +
                                std::to_string(cfg.feature_dim) + "_h" +
                                std::to_string(hidden);
      std::vector<CellResult> cells;
      for (Strategy s : {Strategy::kGDP, Strategy::kSNP}) {
        cells.push_back(RunCell(ds, cluster, block, s, hidden));
        const CellResult& r = cells.back();
        std::printf(
            "%-26s %-5s %12.3f %12.3f %12.3f %12.3f %5lld+%-4lld %13.1fs\n",
            label.c_str(), ToString(s), r.epoch.sim_seconds,
            r.epoch.sample_seconds, r.epoch.load_seconds, r.epoch.train_seconds,
            static_cast<long long>(r.epoch.steps_executed),
            static_cast<long long>(r.epoch.steps_fast_forwarded),
            r.build_wall_s + r.train_wall_s);
      }
      RecordCase(label, cells);
      const bool snp_wins =
          cells[1].epoch.sim_seconds < cells[0].epoch.sim_seconds;
      std::printf("  -> hidden %-5lld winner: %s\n",
                  static_cast<long long>(hidden), snp_wins ? "SNP" : "GDP");
      // The crossover claim is evaluated on the paper-testbed-shaped block
      // (and on the single block of a --smoke / custom run).
      if (block.name != "xl1000") {
        if (hi == 0 && snp_wins) paper_low_snp = true;
        if (hi + 1 == block.hidden_dims.size() && !snp_wins)
          paper_high_gdp = true;
      }
    }
  }
  std::printf("crossover (SNP at low hidden -> GDP at high hidden): %s\n",
              paper_low_snp && paper_high_gdp ? "RECOVERED" : "NOT SEEN");
  return bench::BenchFinish();
}
