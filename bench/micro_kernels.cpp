// google-benchmark microbenchmarks for the numeric substrate: GEMM,
// SpMM/SDDMM/segment-softmax kernels, and the neighbor sampler.
#include <benchmark/benchmark.h>

#include "core/random.h"
#include "graph/generators.h"
#include "sampling/neighbor_sampler.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/segment_ops.h"

namespace apt {
namespace {

Tensor RandTensor(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  Tensor t(r, c);
  Rng rng(seed);
  UniformInit(t, rng, -1.0f, 1.0f);
  return t;
}

void BM_Matmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Tensor a = RandTensor(n, n, 1);
  const Tensor b = RandTensor(n, n, 2);
  Tensor c(n, n);
  for (auto _ : state) {
    Matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulTallSkinny(benchmark::State& state) {
  // The engine's dominant shape: many rows x feature dim x hidden dim.
  const std::int64_t rows = state.range(0);
  const Tensor a = RandTensor(rows, 128, 3);
  const Tensor b = RandTensor(128, 32, 4);
  Tensor c(rows, 32);
  for (auto _ : state) {
    Matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * rows * 128 * 32);
}
BENCHMARK(BM_MatmulTallSkinny)->Arg(1024)->Arg(8192);

struct SpmmFixture {
  std::vector<std::int64_t> indptr;
  std::vector<std::int64_t> col;
  Tensor src;

  explicit SpmmFixture(std::int64_t num_dst, int fanout, std::int64_t dim) {
    Rng rng(5);
    indptr.push_back(0);
    const std::int64_t num_src = num_dst * 4;
    for (std::int64_t d = 0; d < num_dst; ++d) {
      for (int f = 0; f < fanout; ++f) {
        col.push_back(static_cast<std::int64_t>(
            rng.NextBelow(static_cast<std::uint64_t>(num_src))));
      }
      indptr.push_back(static_cast<std::int64_t>(col.size()));
    }
    src = RandTensor(num_src, dim, 6);
  }
  CsrView csr() const { return {indptr, col}; }
};

void BM_SpmmMean(benchmark::State& state) {
  SpmmFixture f(state.range(0), 10, 64);
  Tensor out(state.range(0), 64);
  for (auto _ : state) {
    SpmmMean(f.csr(), f.src, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * f.csr().num_edges() * 64);
}
BENCHMARK(BM_SpmmMean)->Arg(1024)->Arg(8192);

void BM_SegmentSoftmax(benchmark::State& state) {
  SpmmFixture f(state.range(0), 10, 1);
  std::vector<float> score(static_cast<std::size_t>(f.csr().num_edges()));
  Rng rng(7);
  for (auto& s : score) s = rng.NextUniform(-2.0f, 2.0f);
  std::vector<float> out(score.size());
  for (auto _ : state) {
    SegmentSoftmax(f.csr(), score, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * f.csr().num_edges());
}
BENCHMARK(BM_SegmentSoftmax)->Arg(8192);

void BM_NeighborSampling(benchmark::State& state) {
  static const CsrGraph graph = [] {
    ZipfCommunityParams p;
    p.num_nodes = 20000;
    p.num_edges = 300000;
    p.zipf_exponent = 0.8;
    return ZipfCommunityGraph(p);
  }();
  NeighborSampler sampler(graph, {10, 10, 10});
  Rng rng(8);
  std::vector<NodeId> seeds(static_cast<std::size_t>(state.range(0)));
  for (auto& s : seeds) {
    s = static_cast<NodeId>(rng.NextBelow(static_cast<std::uint64_t>(graph.num_nodes())));
  }
  for (auto _ : state) {
    const SampledBatch batch = sampler.Sample(seeds, rng);
    benchmark::DoNotOptimize(batch.blocks.front().num_edges());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NeighborSampling)->Arg(128)->Arg(1024);

}  // namespace
}  // namespace apt

BENCHMARK_MAIN();
