// google-benchmark microbenchmarks for the numeric substrate: GEMM,
// SpMM/SDDMM/segment-softmax kernels, and the neighbor sampler.
//
// Besides the human-readable console table, the run writes one JSON record
// per benchmark to BENCH_micro_kernels.json (op, shape, threads, flops_per_s
// / bytes_per_s, plus the shared run metadata — see bench_gbench.h) so the
// perf trajectory is machine-trackable across PRs. Thread-scaling variants
// pin the fork-join width in-process with ScopedParallelismLimit; their
// names carry the lane count as the last /N.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench_gbench.h"
#include "core/random.h"
#include "graph/generators.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"
#include "sampling/block.h"
#include "sampling/neighbor_sampler.h"
#include "tensor/codec.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/segment_ops.h"

namespace apt {
namespace {

// Effective fork-join lanes for a requested limit (0 = unlimited).
std::int64_t EffectiveLanes(std::int64_t limit) {
  const std::int64_t degree = ThreadPool::Global().ParallelismDegree();
  return limit <= 0 ? degree : std::min(limit, degree);
}

void SetRate(benchmark::State& state, const char* name, double per_iteration) {
  state.counters[name] = benchmark::Counter(
      per_iteration * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

void SetThreadsCounter(benchmark::State& state, std::int64_t lanes) {
  state.counters["threads"] = benchmark::Counter(static_cast<double>(lanes));
}

Tensor RandTensor(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  Tensor t(r, c);
  Rng rng(seed);
  UniformInit(t, rng, -1.0f, 1.0f);
  return t;
}

void BM_Matmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Tensor a = RandTensor(n, n, 1);
  const Tensor b = RandTensor(n, n, 2);
  Tensor c(n, n);
  for (auto _ : state) {
    Matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  SetRate(state, "flops_per_s", 2.0 * static_cast<double>(n) * n * n);
  SetThreadsCounter(state, EffectiveLanes(0));
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulHidden(benchmark::State& state) {
  // The hidden-dim-scale GEMM the executors spend their compute phase in:
  // [batch x in_dim] x [in_dim x hidden]. Last arg = fork-join lane limit
  // (0 = all lanes) for in-process thread-scaling curves.
  const std::int64_t m = 4096, k = 256, n = 256;
  ScopedParallelismLimit limit(state.range(0) == 0
                                   ? ThreadPool::Global().ParallelismDegree()
                                   : state.range(0));
  const Tensor a = RandTensor(m, k, 1);
  const Tensor b = RandTensor(k, n, 2);
  Tensor c(m, n);
  for (auto _ : state) {
    Matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
  SetRate(state, "flops_per_s", 2.0 * static_cast<double>(m) * k * n);
  SetThreadsCounter(state, EffectiveLanes(state.range(0)));
}
BENCHMARK(BM_MatmulHidden)->Arg(1)->Arg(2)->Arg(4)->Arg(0);

void BM_MatmulTallSkinny(benchmark::State& state) {
  // The engine's dominant shape: many rows x feature dim x hidden dim.
  const std::int64_t rows = state.range(0);
  const Tensor a = RandTensor(rows, 128, 3);
  const Tensor b = RandTensor(128, 32, 4);
  Tensor c(rows, 32);
  for (auto _ : state) {
    Matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * rows * 128 * 32);
  SetRate(state, "flops_per_s", 2.0 * static_cast<double>(rows) * 128 * 32);
  SetThreadsCounter(state, EffectiveLanes(0));
}
BENCHMARK(BM_MatmulTallSkinny)->Arg(1024)->Arg(8192);

void BM_MatmulTN(benchmark::State& state) {
  // Weight-gradient shape: [rows x dim]^T x [rows x hidden].
  const std::int64_t rows = state.range(0), dim = 256, hidden = 64;
  const Tensor a = RandTensor(rows, dim, 11);
  const Tensor b = RandTensor(rows, hidden, 12);
  Tensor c(dim, hidden);
  for (auto _ : state) {
    MatmulTN(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * rows * dim * hidden);
  SetRate(state, "flops_per_s", 2.0 * static_cast<double>(rows) * dim * hidden);
  SetThreadsCounter(state, EffectiveLanes(0));
}
BENCHMARK(BM_MatmulTN)->Arg(4096);

void BM_MatmulNT(benchmark::State& state) {
  // Input-gradient shape: [rows x hidden] x [dim x hidden]^T.
  const std::int64_t rows = state.range(0), dim = 256, hidden = 64;
  const Tensor a = RandTensor(rows, hidden, 13);
  const Tensor b = RandTensor(dim, hidden, 14);
  Tensor c(rows, dim);
  for (auto _ : state) {
    MatmulNT(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * rows * dim * hidden);
  SetRate(state, "flops_per_s", 2.0 * static_cast<double>(rows) * dim * hidden);
  SetThreadsCounter(state, EffectiveLanes(0));
}
BENCHMARK(BM_MatmulNT)->Arg(4096);

struct SpmmFixture {
  std::vector<std::int64_t> indptr;
  std::vector<std::int64_t> col;
  Tensor src;

  explicit SpmmFixture(std::int64_t num_dst, int fanout, std::int64_t dim) {
    Rng rng(5);
    indptr.push_back(0);
    const std::int64_t num_src = num_dst * 4;
    for (std::int64_t d = 0; d < num_dst; ++d) {
      for (int f = 0; f < fanout; ++f) {
        col.push_back(static_cast<std::int64_t>(
            rng.NextBelow(static_cast<std::uint64_t>(num_src))));
      }
      indptr.push_back(static_cast<std::int64_t>(col.size()));
    }
    src = RandTensor(num_src, dim, 6);
  }
  CsrView csr() const { return {indptr, col}; }
};

void BM_SpmmMean(benchmark::State& state) {
  SpmmFixture f(state.range(0), 10, 64);
  Tensor out(state.range(0), 64);
  for (auto _ : state) {
    SpmmMean(f.csr(), f.src, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * f.csr().num_edges() * 64);
  SetRate(state, "bytes_per_s",
          static_cast<double>(f.csr().num_edges()) * 64 * 2 * sizeof(float));
  SetThreadsCounter(state, EffectiveLanes(0));
}
BENCHMARK(BM_SpmmMean)->Arg(1024)->Arg(8192);

void BM_SpmmMeanBackward(benchmark::State& state) {
  // Gradient scatter through a Block, so the cached transpose path runs —
  // the kernel that used to be fully serial. Last arg = lane limit.
  const std::int64_t num_dst = 8192, dim = 64;
  ScopedParallelismLimit limit(state.range(0) == 0
                                   ? ThreadPool::Global().ParallelismDegree()
                                   : state.range(0));
  SpmmFixture f(num_dst, 10, dim);
  Block blk;
  blk.num_dst = num_dst;
  blk.indptr = f.indptr;
  blk.col = f.col;
  blk.src_nodes.assign(static_cast<std::size_t>(num_dst * 4), 0);
  const Tensor grad_out = RandTensor(num_dst, dim, 9);
  Tensor grad_src(num_dst * 4, dim);
  for (auto _ : state) {
    SpmmMeanBackward(blk.csr(), grad_out, grad_src);
    benchmark::DoNotOptimize(grad_src.data());
  }
  state.SetItemsProcessed(state.iterations() * blk.num_edges() * dim);
  SetRate(state, "bytes_per_s",
          static_cast<double>(blk.num_edges()) * dim * 3 * sizeof(float));
  SetThreadsCounter(state, EffectiveLanes(state.range(0)));
}
BENCHMARK(BM_SpmmMeanBackward)->Arg(1)->Arg(2)->Arg(4)->Arg(0);

void BM_SegmentSoftmax(benchmark::State& state) {
  SpmmFixture f(state.range(0), 10, 1);
  std::vector<float> score(static_cast<std::size_t>(f.csr().num_edges()));
  Rng rng(7);
  for (auto& s : score) s = rng.NextUniform(-2.0f, 2.0f);
  std::vector<float> out(score.size());
  for (auto _ : state) {
    SegmentSoftmax(f.csr(), score, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * f.csr().num_edges());
  SetRate(state, "bytes_per_s",
          static_cast<double>(f.csr().num_edges()) * 2 * sizeof(float));
  SetThreadsCounter(state, EffectiveLanes(0));
}
BENCHMARK(BM_SegmentSoftmax)->Arg(8192);

void BM_CodecRoundBf16(benchmark::State& state) {
  // bf16 encode+decode round trip over a feature-gather-sized payload
  // (rows x 1024 floats). Last arg = fork-join lane limit (0 = all lanes).
  const std::int64_t rows = 4096, cols = 1024;
  ScopedParallelismLimit limit(state.range(0) == 0
                                   ? ThreadPool::Global().ParallelismDegree()
                                   : state.range(0));
  Tensor t = RandTensor(rows, cols, 21);
  for (auto _ : state) {
    CodecRoundRows(Codec::kBf16, t);
    benchmark::DoNotOptimize(t.data());
  }
  const double bytes = static_cast<double>(rows) * cols * sizeof(float);
  state.SetItemsProcessed(state.iterations() * rows * cols);
  SetRate(state, "bytes_per_s", bytes);
  SetThreadsCounter(state, EffectiveLanes(state.range(0)));
}
BENCHMARK(BM_CodecRoundBf16)->Arg(1)->Arg(2)->Arg(4)->Arg(0);

void BM_CodecRoundInt8(benchmark::State& state) {
  // int8 per-row symmetric quantization: register-blocked maxabs reduction
  // plus the scale/clamp pass. Same payload/lane sweep as the bf16 row.
  const std::int64_t rows = 4096, cols = 1024;
  ScopedParallelismLimit limit(state.range(0) == 0
                                   ? ThreadPool::Global().ParallelismDegree()
                                   : state.range(0));
  Tensor t = RandTensor(rows, cols, 22);
  for (auto _ : state) {
    CodecRoundRows(Codec::kInt8, t);
    benchmark::DoNotOptimize(t.data());
  }
  const double bytes = static_cast<double>(rows) * cols * sizeof(float);
  state.SetItemsProcessed(state.iterations() * rows * cols);
  SetRate(state, "bytes_per_s", bytes);
  SetThreadsCounter(state, EffectiveLanes(state.range(0)));
}
BENCHMARK(BM_CodecRoundInt8)->Arg(1)->Arg(2)->Arg(4)->Arg(0);

void BM_NeighborSampling(benchmark::State& state) {
  static const CsrGraph graph = [] {
    ZipfCommunityParams p;
    p.num_nodes = 20000;
    p.num_edges = 300000;
    p.zipf_exponent = 0.8;
    return ZipfCommunityGraph(p);
  }();
  NeighborSampler sampler(graph, {10, 10, 10});
  Rng rng(8);
  std::vector<NodeId> seeds(static_cast<std::size_t>(state.range(0)));
  for (auto& s : seeds) {
    s = static_cast<NodeId>(rng.NextBelow(static_cast<std::uint64_t>(graph.num_nodes())));
  }
  for (auto _ : state) {
    const SampledBatch batch = sampler.Sample(seeds, rng);
    benchmark::DoNotOptimize(batch.blocks.front().num_edges());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  SetThreadsCounter(state, 1);
}
BENCHMARK(BM_NeighborSampling)->Arg(128)->Arg(1024);

}  // namespace
}  // namespace apt

int main(int argc, char** argv) {
  return apt::bench::RunGoogleBench("micro_kernels", argc, argv);
}
