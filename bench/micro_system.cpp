// google-benchmark microbenchmarks for the system layers: the multilevel
// partitioner, the simulated collectives, and the dry-run planner itself
// (the paper's "strategy selection must be fast" requirement). Each run
// also lands as a JSON record in BENCH_micro_system.json (see bench_gbench.h).
#include <benchmark/benchmark.h>

#include "apt/adapter.h"
#include "apt/planner.h"
#include "bench_gbench.h"
#include "core/logging.h"
#include "comm/collectives.h"
#include "engine/trainer.h"
#include "graph/generators.h"
#include "obs/histogram.h"
#include "obs/telemetry.h"
#include "partition/partitioner.h"

namespace apt {
namespace {

const CsrGraph& BenchGraph() {
  static const CsrGraph g = [] {
    ZipfCommunityParams p;
    p.num_nodes = 20000;
    p.num_edges = 200000;
    p.num_communities = 8;
    return ZipfCommunityGraph(p);
  }();
  return g;
}

void BM_MultilevelPartition(benchmark::State& state) {
  const CsrGraph& g = BenchGraph();
  for (auto _ : state) {
    MultilevelPartitioner ml;
    benchmark::DoNotOptimize(ml.Partition(g, static_cast<PartId>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_MultilevelPartition)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_AllToAllTensors(benchmark::State& state) {
  const std::int32_t c = 8;
  SimContext sim(SingleMachineCluster(c));
  Communicator comm(sim);
  std::vector<std::vector<Tensor>> parts(static_cast<std::size_t>(c));
  for (auto& row : parts) {
    for (std::int32_t j = 0; j < c; ++j) {
      row.emplace_back(state.range(0), 32);
    }
  }
  const double sim0 = sim.MaxNow();
  for (auto _ : state) {
    benchmark::DoNotOptimize(comm.AllToAllTensors(parts, Phase::kTrain));
  }
  state.SetBytesProcessed(state.iterations() * c * c * state.range(0) * 32 * 4);
  // Simulated cost per collective: pure cost-model arithmetic, so this
  // counter is bit-identical across machines — the perf gate's tight metric
  // (wall time_ns gets the loose machine-dependent tolerance).
  state.counters["sim_seconds_per_op"] =
      (sim.MaxNow() - sim0) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_AllToAllTensors)->Arg(256)->Arg(2048);

void BM_AllReduce(benchmark::State& state) {
  const std::int32_t c = 8;
  SimContext sim(SingleMachineCluster(c));
  Communicator comm(sim);
  std::vector<Tensor> bufs(static_cast<std::size_t>(c),
                           Tensor(state.range(0), 32));
  const double sim0 = sim.MaxNow();
  for (auto _ : state) {
    std::vector<Tensor*> ptrs;
    for (auto& b : bufs) ptrs.push_back(&b);
    comm.AllReduceSum(ptrs, Phase::kTrain);
    benchmark::DoNotOptimize(bufs[0].data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 32 * 4);
  state.counters["sim_seconds_per_op"] =
      (sim.MaxNow() - sim0) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_AllReduce)->Arg(1024)->Arg(8192);

void BM_DryRunPlanner(benchmark::State& state) {
  static const Dataset ds = MakeDataset(PsLikeParams(0.1));
  const ClusterSpec cluster = SingleMachineCluster(8);
  ModelConfig model;
  model.kind = ModelKind::kSage;
  model.num_layers = 3;
  model.hidden_dim = 32;
  model.input_dim = ds.feature_dim();
  model.num_classes = ds.num_classes;
  EngineOptions opts;
  opts.fanouts = {10, 10, 10};
  opts.batch_size_per_device = 128;
  opts.cache_bytes_per_device = ds.FeatureBytes() / 12;
  MultilevelPartitioner ml;
  const std::vector<PartId> partition = ml.Partition(ds.graph, 8);
  SetLogLevel(LogLevel::kWarn);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakePlan(ds, cluster, partition, opts, model));
  }
  // The planner's chosen comparable time is deterministic (dry-run volumes
  // over modeled bandwidths): a cost-model drift shows up here even when the
  // planner itself got neither faster nor slower.
  const PlanReport plan = MakePlan(ds, cluster, partition, opts, model);
  state.counters["sim_selected_comparable_s"] =
      plan.estimates[static_cast<std::size_t>(plan.selected)].Comparable();
}
BENCHMARK(BM_DryRunPlanner)->Unit(benchmark::kMillisecond);

// --- telemetry overhead ----------------------------------------------------

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram h;
  double v = 1e-6;
  for (auto _ : state) {
    h.Record(v);
    v = v < 1.0 ? v * 1.001 : 1e-6;  // sweep buckets, stay in range
  }
  benchmark::DoNotOptimize(h.Count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_TelemetryRecord(benchmark::State& state) {
  obs::TimeSeries& ts = obs::Telemetry::Global().series("bench.record", 1e-3);
  double t = 0.0;
  for (auto _ : state) {
    ts.Record(t, 1.5e-4);
    t += 1e-6;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryRecord);

/// One GDP training epoch with trainer telemetry off (/0) and on (/1). The
/// on-case also runs a telemetry-off epoch and records the simulated-seconds
/// difference: telemetry must never advance the virtual clocks, so the
/// baseline pins sim_telemetry_overhead_s at EXACTLY zero and the perf gate
/// fails on any nonzero value (rel against a 0 baseline is unbounded). The
/// wall-clock overhead is the ratio of the two time_ns rows (<1%,
/// EXPERIMENTS.md).
void BM_GdpEpochTelemetry(benchmark::State& state) {
  static const Dataset ds = MakeDataset(PsLikeParams(0.05));
  const ClusterSpec cluster = SingleMachineCluster(4);
  ModelConfig model;
  model.kind = ModelKind::kSage;
  model.num_layers = 2;
  model.hidden_dim = 16;
  model.input_dim = ds.feature_dim();
  model.num_classes = ds.num_classes;
  EngineOptions opts;
  opts.fanouts = {5, 5};
  opts.batch_size_per_device = 64;
  opts.cache_bytes_per_device = ds.FeatureBytes() / 12;
  MultilevelPartitioner ml;
  const std::vector<PartId> partition = ml.Partition(ds.graph, 4);
  SetLogLevel(LogLevel::kWarn);
  const PlanReport plan = MakePlan(ds, cluster, partition, opts, model);
  const auto run_epoch = [&](double window_s) {
    EngineOptions o = opts;
    o.telemetry_window_s = window_s;
    TrainerSetup setup = BuildTrainerSetup(cluster, model, o, partition,
                                           plan.dryrun, Strategy::kGDP);
    ParallelTrainer trainer(ds, std::move(setup));
    return trainer.TrainEpoch(0).sim_seconds;
  };
  const bool telemetry_on = state.range(0) != 0;
  double sim_s = 0.0;
  for (auto _ : state) {
    sim_s = run_epoch(telemetry_on ? 1e-3 : 0.0);
    benchmark::DoNotOptimize(sim_s);
  }
  if (telemetry_on) {
    state.counters["sim_telemetry_overhead_s"] = sim_s - run_epoch(0.0);
  }
}
BENCHMARK(BM_GdpEpochTelemetry)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace apt

int main(int argc, char** argv) {
  return apt::bench::RunGoogleBench("micro_system", argc, argv);
}
