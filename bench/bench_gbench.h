// Shared google-benchmark wiring for the micro benches: a console reporter
// that also appends one flat JSON record per benchmark run to the bench
// harness, so BENCH_<name>.json carries the same run metadata as the figure
// benches (git SHA, threads, build flags — see bench_util BenchFinish).
//
// Record schema: {"op": ..., "shape": ..., <counters...>, "time_ns": ...}
// where "BM_Matmul/256" splits into op "BM_Matmul" and shape "256".
#pragma once

#include <benchmark/benchmark.h>

#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/json.h"

namespace apt::bench {

class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      const std::size_t slash = name.find('/');
      std::ostringstream os;
      obs::JsonWriter w(os);
      w.BeginObject();
      w.KV("op", name.substr(0, slash));
      w.KV("shape",
           slash == std::string::npos ? std::string() : name.substr(slash + 1));
      for (const auto& [key, counter] : run.counters) {
        w.KV(key, counter.value);
      }
      w.KV("time_ns", run.GetAdjustedRealTime());
      w.EndObject();
      AddRecord(os.str());
    }
  }
};

/// Drop-in main body: BenchInit (shared --trace-out/--metrics-out flags are
/// stripped before google-benchmark sees argv), run everything through the
/// recording reporter, BenchFinish.
inline int RunGoogleBench(const char* name, int argc, char** argv) {
  BenchInit(name, &argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  RecordingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return BenchFinish();
}

}  // namespace apt::bench
