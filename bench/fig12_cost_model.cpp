// Reproduces paper Figure 12: cost-model-estimated vs actual epoch time for
// GraphSAGE on the FS-like graph (single machine, 8 GPUs).
//
// Following the paper's methodology: the cost models estimate the
// strategy-DEPENDENT terms (T_build + T_load + T_shuffle); the shared
// computation term T_train is taken from a GDP measurement (GDP performs no
// hidden-embedding shuffling, so its training phase is pure computation)
// and added to each strategy's estimate. The paper reports a maximum error
// of ~5.5%.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace apt;
  using namespace apt::bench;
  SetLogLevel(LogLevel::kWarn);
  BenchInit("fig12_cost_model", &argc, argv);

  const Dataset& ds = FsLike();
  std::printf("=== Figure 12: estimated vs actual epoch time (GraphSAGE on %s) ===\n",
              ds.name.c_str());
  std::printf("%-10s | %12s | %12s | %8s\n", "strategy", "actual(ms)", "estimated(ms)",
              "err(%)");
  std::printf("-------------------------------------------------\n");

  double worst_err = 0.0;
  for (std::int64_t hidden : {32, 128}) {
    CaseConfig cfg;
    cfg.dataset = &ds;
    cfg.cluster = SingleMachineCluster(8);
    cfg.model = SageConfig(ds, hidden);
    cfg.opts = PaperDefaults();
    cfg.opts.cache_bytes_per_device = DefaultCacheBytes(ds);
    const CaseResult result = RunCase(cfg);

    // Shared computation term: GDP's measured training phase (no shuffles).
    const double t_train = result.of(Strategy::kGDP).epoch.train_seconds;
    // "Actual" is the true simulated wall clock: the stacked per-phase bars
    // double-count barrier waits for the shuffling strategies.
    std::printf("--- hidden dim %lld ---\n", static_cast<long long>(hidden));
    for (Strategy s : kAllStrategies) {
      const StrategyResult& r = result.of(s);
      const double actual = r.epoch.wall_seconds;
      const double estimated = r.estimate.Comparable() + t_train;
      const double err = 100.0 * std::abs(estimated - actual) / actual;
      worst_err = std::max(worst_err, err);
      std::printf("%-10s | %12.3f | %12.3f | %7.1f%%\n", ToString(s), actual * 1e3,
                  estimated * 1e3, err);
    }
  }
  std::printf("\nmax estimation error: %.1f%% (paper reports 5.5%%)\n", worst_err);
  return BenchFinish();
}
