// Reproduces paper Figure 11: what happens when no quality graph partition
// is available — every strategy rerun with a RANDOM node partition instead
// of the multilevel (METIS-role) edge-cut partition.
//
// Expected shape: GDP and NFP are unaffected (neither depends on the
// partition); SNP and DNP degrade substantially because their cache
// locality and shuffle volumes rely on a low edge-cut.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace apt;
  using namespace apt::bench;
  SetLogLevel(LogLevel::kWarn);
  BenchInit("fig11_random_partition", &argc, argv);

  std::printf("=== Figure 11: multilevel vs random partitioning (GraphSAGE, 8 GPUs) ===\n");
  for (const Dataset* ds : {&PsLike(), &FsLike(), &ImLike()}) {
    PrintTableHeader(ds->name + " partition");
    for (const bool random : {false, true}) {
      CaseConfig cfg;
      cfg.label = ds->name + (random ? " random" : " multilevel");
      cfg.dataset = ds;
      cfg.cluster = SingleMachineCluster(8);
      cfg.model = SageConfig(*ds, 32);
      cfg.opts = PaperDefaults();
      cfg.opts.cache_bytes_per_device = DefaultCacheBytes(*ds);
      RandomPartitioner rnd(17);
      cfg.partitioner = random ? &rnd : nullptr;
      PrintCaseRow(RunCase(cfg));
    }
  }
  return BenchFinish();
}
