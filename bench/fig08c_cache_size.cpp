// Reproduces paper Figure 8c: epoch time vs per-GPU cache size (GraphSAGE,
// 8 GPUs, single machine). Cache sizes are expressed as fractions of the
// dataset's feature table (the paper's absolute 0-8 GB against 53-128 GB
// feature stores spans the same relative range).
//
// Expected shape: with the cache disabled GDP is optimal (everyone loads
// everything from CPU, and only GDP skips the shuffles); with a cache the
// skewed PS-like graph favors GDP while the scattered FS-like graph favors
// SNP; all strategies see diminishing returns as the cache grows.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace apt;
  using namespace apt::bench;
  SetLogLevel(LogLevel::kWarn);
  BenchInit("fig08c_cache_size", &argc, argv);

  std::printf("=== Figure 8c: epoch time vs GPU cache size (GraphSAGE, 8 GPUs) ===\n");
  const std::pair<const char*, double> fractions[] = {
      {"cache=0", 0.0}, {"cache=1/24", 1.0 / 24}, {"cache=1/12", 1.0 / 12},
      {"cache=1/6", 1.0 / 6}, {"cache=1/3", 1.0 / 3}};
  for (const Dataset* ds : {&PsLike(), &FsLike(), &ImLike()}) {
    PrintTableHeader(ds->name + " cache");
    for (const auto& [name, fraction] : fractions) {
      CaseConfig cfg;
      cfg.label = ds->name + " " + name;
      cfg.dataset = ds;
      cfg.cluster = SingleMachineCluster(8);
      cfg.model = SageConfig(*ds, 32);
      cfg.opts = PaperDefaults();
      cfg.opts.cache_bytes_per_device =
          static_cast<std::int64_t>(fraction * ds->FeatureBytes());
      PrintCaseRow(RunCase(cfg));
    }
  }
  return BenchFinish();
}
