// Ablation of the fault-injection layer: epoch cost under each fault class
// versus the fault-free baseline, plus the cost of having the layer compiled
// in at all. The "empty_plan" row installs a FaultPlan with no faults — its
// delta against "baseline" is the zero-fault injection overhead, which the
// chaos suite asserts is bit-exact zero (ZeroFaultInjectionHasZeroOverhead);
// here it is printed and recorded so regressions show up in BENCH_faults.json.
#include <cmath>
#include <cstdio>
#include <sstream>

#include "apt/apt_system.h"
#include "apt/resilience.h"
#include "bench_util.h"
#include "sim/fault.h"

namespace {

using namespace apt;

struct ScenarioResult {
  double sim_seconds = 0.0;
  double loss = 0.0;
  std::int64_t retries = 0;
  std::int64_t faults_observed = 0;
};

ScenarioResult RunScenario(const Dataset& ds, const ClusterSpec& cluster,
                           const ModelConfig& model, const EngineOptions& opts,
                           const FaultPlan* plan, bool retry) {
  AptSystem system(ds, cluster, model, opts);
  const PlanReport& report = system.Plan();
  if (retry) system.options().recovery.retry_collectives = true;
  auto trainer = system.MakeTrainer(report.selected);
  if (plan != nullptr) trainer->sim().InstallFaults(*plan);
  const EpochStats e = trainer->TrainEpoch(0);
  ScenarioResult r;
  r.sim_seconds = e.sim_seconds;
  r.loss = e.loss;
  r.retries = trainer->recovery_stats().retries;
  r.faults_observed = trainer->sim().FaultsObserved();
  return r;
}

void Record(const char* scenario, const ScenarioResult& r) {
  std::ostringstream os;
  os << "{\"scenario\":\"" << scenario << "\",\"sim_seconds\":" << r.sim_seconds
     << ",\"loss\":" << r.loss << ",\"retries\":" << r.retries
     << ",\"faults_observed\":" << r.faults_observed << "}";
  bench::AddRecord(os.str());
}

void PrintRow(const char* scenario, const ScenarioResult& r, double baseline_s) {
  std::printf("%-26s | %12.3f | %8.2fx | %7.4f | %7lld | %6lld\n", scenario,
              r.sim_seconds * 1e3, r.sim_seconds / baseline_s, r.loss,
              static_cast<long long>(r.retries),
              static_cast<long long>(r.faults_observed));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace apt::bench;
  SetLogLevel(LogLevel::kWarn);
  BenchInit("faults", &argc, argv);

  const Dataset& ds = PsLike();
  const ClusterSpec cluster = SingleMachineCluster(4);
  const ModelConfig model = SageConfig(ds, 32);
  EngineOptions opts = PaperDefaults();
  opts.cache_bytes_per_device = DefaultCacheBytes(ds);

  std::printf("=== Ablation: fault injection & recovery (GraphSAGE, 4 GPUs) ===\n");
  std::printf("%-26s | %12s | %9s | %7s | %7s | %6s\n", "scenario",
              "epoch(ms)", "vs clean", "loss", "retries", "faults");
  std::printf("%s\n", std::string(82, '-').c_str());

  const ScenarioResult baseline =
      RunScenario(ds, cluster, model, opts, nullptr, false);
  PrintRow("baseline", baseline, baseline.sim_seconds);
  Record("baseline", baseline);

  const FaultPlan empty;
  const ScenarioResult empty_plan =
      RunScenario(ds, cluster, model, opts, &empty, false);
  PrintRow("empty_plan", empty_plan, baseline.sim_seconds);
  Record("empty_plan", empty_plan);

  FaultPlan straggler;
  straggler.stragglers.push_back(
      {.device = 0, .start_s = 0.0, .end_s = 1e9, .slowdown = 3.0});
  const ScenarioResult straggler_r =
      RunScenario(ds, cluster, model, opts, &straggler, false);
  PrintRow("straggler_3x", straggler_r, baseline.sim_seconds);
  Record("straggler_3x", straggler_r);

  FaultPlan flap;
  flap.links.push_back({.link_class = static_cast<int>(TrafficClass::kPeerGpu),
                        .start_s = 0.0,
                        .end_s = 1e9,
                        .bandwidth_factor = 0.1,
                        .extra_latency_s = 0.0,
                        .flap_period_s = 1e-4,
                        .flap_duty = 0.5});
  const ScenarioResult flap_r =
      RunScenario(ds, cluster, model, opts, &flap, false);
  PrintRow("flapping_peer_link", flap_r, baseline.sim_seconds);
  Record("flapping_peer_link", flap_r);

  FaultPlan collective;
  collective.collectives.push_back({.after_bytes = 10'000});
  const ScenarioResult collective_r =
      RunScenario(ds, cluster, model, opts, &collective, true);
  PrintRow("collective_fail_retry", collective_r, baseline.sim_seconds);
  Record("collective_fail_retry", collective_r);

  // The headline number: relative epoch-time cost of compiling the fault
  // hooks in but injecting nothing. Must stay ~0 (the hot paths short-circuit
  // on an empty plan); the acceptance bar is < 1%.
  const double overhead =
      (empty_plan.sim_seconds - baseline.sim_seconds) / baseline.sim_seconds;
  std::printf("%s\n", std::string(82, '-').c_str());
  std::printf("zero-fault injection overhead: %+.6f%% (loss delta %.1e)\n",
              overhead * 100.0, std::fabs(empty_plan.loss - baseline.loss));
  {
    std::ostringstream os;
    os << "{\"scenario\":\"overhead\",\"zero_fault_overhead\":" << overhead << "}";
    AddRecord(os.str());
  }
  return BenchFinish();
}
