// Ablation (paper §5.2 conjecture / §7 future work): HYBRID strategies for
// distributed training — GDP to coordinate between machines (no hidden
// embeddings cross the network) combined with SNP among the GPUs of each
// machine (to exploit the GPU caches). Compares pure GDP, pure SNP, pure
// DNP, and the hybrid on the 4-machine platform.
//
// Expected shape: on the scattered FS-like graph the hybrid beats pure SNP
// (whose virtual-node shuffles cross the slow network) while retaining most
// of SNP's cache-locality advantage over GDP.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace apt;
  using namespace apt::bench;
  SetLogLevel(LogLevel::kWarn);
  BenchInit("ablation_hybrid", &argc, argv);

  std::printf("=== Ablation: hybrid (inter-machine GDP + intra-machine SNP) ===\n");
  std::printf("%-22s | %10s | %10s | %10s | %10s\n", "config", "GDP(ms)", "SNP(ms)",
              "DNP(ms)", "hybrid(ms)");
  std::printf("%s\n", std::string(76, '-').c_str());
  for (const Dataset* ds : {&PsLike(), &FsLike()}) {
    for (std::int64_t hidden : {32, 128}) {
      const ClusterSpec cluster = MultiMachineCluster(4, 4);
      const ModelConfig model = SageConfig(*ds, hidden);
      EngineOptions opts = PaperDefaults();
      opts.cache_bytes_per_device = DefaultCacheBytes(*ds);

      MultilevelPartitioner ml;
      const std::vector<PartId> partition =
          ml.Partition(ds->graph, cluster.num_devices());
      const DryRunResult dry = DryRun(*ds, cluster, partition, opts, model);

      auto run = [&](Strategy s, bool hybrid) {
        TrainerSetup setup =
            BuildTrainerSetup(cluster, model, opts, partition, dry, s);
        setup.engine.hybrid_intra_machine = hybrid;
        ParallelTrainer trainer(*ds, std::move(setup));
        return trainer.TrainEpoch(0).sim_seconds * 1e3;
      };
      std::printf("%-22s | %10.2f | %10.2f | %10.2f | %10.2f\n",
                  (ds->name + " d'=" + std::to_string(hidden)).c_str(),
                  run(Strategy::kGDP, false), run(Strategy::kSNP, false),
                  run(Strategy::kDNP, false), run(Strategy::kSNP, true));
    }
  }
  return BenchFinish();
}
