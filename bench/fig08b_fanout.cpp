// Reproduces paper Figure 8b: epoch time vs sampling fanout (GraphSAGE,
// 8 GPUs, single machine). Fanouts [10,5] and [15,10] train 2-layer models;
// [10,10,10] and [20,15,10] train 3-layer models.
//
// Expected shape: with light fanouts GDP is (near-)optimal because the
// shuffling overheads of NFP/SNP/DNP are not amortized; with heavy fanouts
// the graphs diverge — the skewed PS-like graph keeps favoring GDP while
// the scattered FS-like graph favors SNP (paper §5.2 "Fanout").
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace apt;
  using namespace apt::bench;
  SetLogLevel(LogLevel::kWarn);
  BenchInit("fig08b_fanout", &argc, argv);

  const std::vector<std::vector<int>> fanouts{
      {10, 5}, {15, 10}, {10, 10, 10}, {20, 15, 10}};
  auto label_of = [](const std::vector<int>& f) {
    std::string s = "[";
    for (std::size_t i = 0; i < f.size(); ++i) {
      s += (i ? "," : "") + std::to_string(f[i]);
    }
    return s + "]";
  };

  std::printf("=== Figure 8b: epoch time vs fanout (GraphSAGE, 8 GPUs) ===\n");
  for (const Dataset* ds : {&PsLike(), &FsLike(), &ImLike()}) {
    PrintTableHeader(ds->name + " fanout");
    for (const auto& f : fanouts) {
      CaseConfig cfg;
      cfg.label = ds->name + " " + label_of(f);
      cfg.dataset = ds;
      cfg.cluster = SingleMachineCluster(8);
      cfg.model = SageConfig(*ds, 32);
      cfg.model.num_layers = static_cast<int>(f.size());
      cfg.opts = PaperDefaults();
      cfg.opts.fanouts = f;
      cfg.opts.cache_bytes_per_device = DefaultCacheBytes(*ds);
      PrintCaseRow(RunCase(cfg));
    }
  }
  return BenchFinish();
}
