// Reproduces paper Figure 9: distributed training with 16 GPUs on 4
// machines (100 Gbps Ethernet between machines), sweeping the hidden
// dimension. Node features are partitioned across the machines (each
// machine's CPU holds the features of the partitions its GPUs own).
//
// Expected shape: GDP and DNP perform well — GDP never shuffles hidden
// embeddings across machines and DNP shuffles the fewest; SNP degrades
// badly relative to its single-machine showing because its (many) hidden
// embedding shuffles now cross the slow inter-machine network; NFP is worst.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace apt;
  using namespace apt::bench;
  SetLogLevel(LogLevel::kWarn);
  BenchInit("fig09_multi_machine", &argc, argv);

  std::printf(
      "=== Figure 9: epoch time vs hidden dim (GraphSAGE, 4 machines x 4 GPUs) ===\n");
  for (const Dataset* ds : {&PsLike(), &FsLike(), &ImLike()}) {
    PrintTableHeader(ds->name + " hidden");
    for (std::int64_t hidden : {8, 32, 128, 512}) {
      CaseConfig cfg;
      cfg.label = ds->name + " d'=" + std::to_string(hidden);
      cfg.dataset = ds;
      cfg.cluster = MultiMachineCluster(4, 4);
      cfg.model = SageConfig(*ds, hidden);
      cfg.opts = PaperDefaults();
      cfg.opts.cache_bytes_per_device = DefaultCacheBytes(*ds);
      PrintCaseRow(RunCase(cfg));
    }
  }
  return BenchFinish();
}
