// Reproduces paper Table 4: the maximum speedup of APT's adaptive selection
// over ALWAYS using a single fixed strategy, maximized over a grid of
// configurations per dataset (hidden dims, fanouts, cache sizes — the
// Figure 8 sweep — plus the multi-machine hidden sweep of Figure 9).
//
// speedup(strategy) = max over configs of
//     epoch_time(strategy, config) / epoch_time(APT-selected, config).
//
// Expected shape (paper): NFP has the largest penalty (4-8x), SNP 2-3x,
// GDP 1.2-2.6x, DNP smallest (1.3-1.6x) — i.e. no single strategy is safe,
// and DNP is the best single choice but still loses to adaptive selection.
#include <array>
#include <cstdio>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace apt;
  using namespace apt::bench;
  SetLogLevel(LogLevel::kWarn);
  BenchInit("table4_apt_speedup", &argc, argv);

  std::printf("=== Table 4: max speedup of APT vs always-single-strategy ===\n");
  std::printf("(grid: d' in {8,32,128,512} x {1 machine, 4 machines}, plus fanout\n");
  std::printf(" [10,5] and cache-off single-machine variants; 1 epoch each)\n\n");
  std::printf("%-12s | %6s %6s %6s %6s\n", "dataset", "GDP", "NFP", "SNP", "DNP");
  std::printf("------------------------------------------\n");

  for (const Dataset* ds : {&PsLike(), &FsLike(), &ImLike()}) {
    std::array<double, kNumStrategies> max_speedup{1.0, 1.0, 1.0, 1.0};
    std::vector<CaseConfig> grid;
    for (std::int64_t hidden : {8, 32, 128, 512}) {
      for (const bool multi : {false, true}) {
        CaseConfig cfg;
        cfg.dataset = ds;
        cfg.cluster = multi ? MultiMachineCluster(4, 4) : SingleMachineCluster(8);
        cfg.model = SageConfig(*ds, hidden);
        cfg.opts = PaperDefaults();
        cfg.opts.cache_bytes_per_device = DefaultCacheBytes(*ds);
        grid.push_back(cfg);
      }
    }
    {
      CaseConfig light;  // light fanout, 2 layers
      light.dataset = ds;
      light.cluster = SingleMachineCluster(8);
      light.model = SageConfig(*ds, 32);
      light.model.num_layers = 2;
      light.opts = PaperDefaults();
      light.opts.fanouts = {10, 5};
      light.opts.cache_bytes_per_device = DefaultCacheBytes(*ds);
      grid.push_back(light);

      CaseConfig nocache;
      nocache.dataset = ds;
      nocache.cluster = SingleMachineCluster(8);
      nocache.model = SageConfig(*ds, 32);
      nocache.opts = PaperDefaults();
      nocache.opts.cache_bytes_per_device = 0;
      grid.push_back(nocache);
    }
    for (CaseConfig& cfg : grid) {
      const CaseResult r = RunCase(cfg);
      const double apt_time = r.SelectedSeconds();
      for (Strategy s : kAllStrategies) {
        if (r.of(s).oom) continue;  // an OOM run is an infinite slowdown
        max_speedup[static_cast<std::size_t>(s)] =
            std::max(max_speedup[static_cast<std::size_t>(s)],
                     r.of(s).epoch.sim_seconds / apt_time);
      }
    }
    std::printf("%-12s |", ds->name.c_str());
    for (Strategy s : kAllStrategies) {
      std::printf(" %6.2f", max_speedup[static_cast<std::size_t>(s)]);
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper Table 4 reference: PS 1.18/7.57/3.33/1.59  FS 2.13/4.25/2.35/1.36  "
      "IM 2.60/5.88/2.09/1.55\n");
  return BenchFinish();
}
