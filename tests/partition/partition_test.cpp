// Partitioner tests: correctness, balance, and the quality gap between the
// multilevel partitioner and random assignment (the premise of Fig 11).
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "partition/partitioner.h"

namespace apt {
namespace {

CsrGraph CommunityGraph(std::uint64_t seed = 21) {
  ZipfCommunityParams p;
  p.num_nodes = 4000;
  p.num_edges = 30000;
  p.num_communities = 8;
  p.zipf_exponent = 0.4;
  p.intra_prob = 0.92;
  p.seed = seed;
  return ZipfCommunityGraph(p);
}

class PartitionerTest : public ::testing::TestWithParam<PartId> {};

TEST_P(PartitionerTest, AssignsEveryNodeInRange) {
  const CsrGraph g = CommunityGraph();
  MultilevelPartitioner ml;
  const PartitionAssignment part = ml.Partition(g, GetParam());
  ASSERT_EQ(static_cast<NodeId>(part.size()), g.num_nodes());
  for (PartId p : part) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, GetParam());
  }
}

TEST_P(PartitionerTest, BalanceWithinTolerance) {
  const CsrGraph g = CommunityGraph();
  MultilevelPartitioner ml;
  const PartitionAssignment part = ml.Partition(g, GetParam());
  EXPECT_LT(PartitionBalance(part, GetParam()), 1.35);
}

TEST_P(PartitionerTest, BeatsRandomOnEdgeCut) {
  const CsrGraph g = CommunityGraph();
  MultilevelPartitioner ml;
  RandomPartitioner rnd;
  const EdgeId ml_cut = EdgeCut(g, ml.Partition(g, GetParam()));
  const EdgeId rnd_cut = EdgeCut(g, rnd.Partition(g, GetParam()));
  // On planted-community graphs the multilevel cut should be dramatically
  // smaller than random (random cuts ~ (k-1)/k of all edges).
  EXPECT_LT(ml_cut * 2, rnd_cut);
}

INSTANTIATE_TEST_SUITE_P(PartCounts, PartitionerTest, ::testing::Values(2, 4, 8),
                         [](const ::testing::TestParamInfo<PartId>& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(PartitionerTest, SinglePartTrivial) {
  const CsrGraph g = ErdosRenyi(100, 300, Rng(4));
  MultilevelPartitioner ml;
  const PartitionAssignment part = ml.Partition(g, 1);
  for (PartId p : part) EXPECT_EQ(p, 0);
  EXPECT_EQ(EdgeCut(g, part), 0);
}

TEST(PartitionerTest, RandomIsDeterministicPerSeed) {
  const CsrGraph g = ErdosRenyi(200, 600, Rng(6));
  RandomPartitioner a(5), b(5), c(6);
  EXPECT_EQ(a.Partition(g, 4), b.Partition(g, 4));
  EXPECT_NE(a.Partition(g, 4), c.Partition(g, 4));
}

TEST(PartitionerTest, EdgeCutCountsCrossEdgesOnce) {
  // Path 0-1-2 with partition {0}, {1, 2}: exactly one cut edge.
  const std::vector<NodeId> src{0, 1};
  const std::vector<NodeId> dst{1, 2};
  const CsrGraph g = BuildCsr(3, src, dst, /*symmetrize=*/true);
  const PartitionAssignment part{0, 1, 1};
  EXPECT_EQ(EdgeCut(g, part), 1);
}

TEST(PartitionerTest, PartitionMembersRoundTrip) {
  const PartitionAssignment part{1, 0, 1, 0, 2};
  const auto members = PartitionMembers(part, 3);
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0], (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(members[1], (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(members[2], (std::vector<NodeId>{4}));
}

TEST(PartitionerTest, RecoversPlantedCommunitiesApproximately) {
  // With k == number of planted communities and strong intra-probability,
  // the cut should be close to the number of inter-community edges.
  const CsrGraph g = CommunityGraph(33);
  MultilevelPartitioner ml;
  const PartitionAssignment part = ml.Partition(g, 8);
  EdgeId inter = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.Neighbors(v)) {
      inter += CommunityOf(u, 4000, 8) != CommunityOf(v, 4000, 8);
    }
  }
  inter /= 2;
  EXPECT_LT(EdgeCut(g, part), inter * 3);
}

TEST(PartitionerTest, BalanceMetricExactValues) {
  const PartitionAssignment perfect{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(PartitionBalance(perfect, 2), 1.0);
  const PartitionAssignment skewed{0, 0, 0, 1};
  EXPECT_DOUBLE_EQ(PartitionBalance(skewed, 2), 1.5);
}

}  // namespace
}  // namespace apt
