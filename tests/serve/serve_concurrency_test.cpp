// Thread-safety coverage for the serving path, meant to run under
// -DAPT_SANITIZE=thread: N workers hammer the shared read-mostly
// FeatureStore concurrently (real threads via ParallelFor), and the full
// engine executes its round-robin waves concurrently. Races would show up
// in the cache-hit accounting (metrics counters), the per-device clocks, or
// the gathered bytes themselves; the assertions double as a determinism
// check on the accounting totals.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "feature/feature_store.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "runtime/parallel_for.h"
#include "serve/serve_engine.h"
#include "serve/traffic.h"
#include "test_util.h"

namespace apt::serve {
namespace {

using apt::testing::SmallDataset;

TEST(ServeConcurrency, ConcurrentGathersAccountConsistently) {
  obs::Metrics::ResetForTest();
  const Dataset ds = SmallDataset(16, 4000);
  const ClusterSpec cluster = SingleMachineCluster(4);
  SimContext sim(cluster);

  const std::int64_t n = ds.graph.num_nodes();
  std::vector<PartId> part(static_cast<std::size_t>(n));
  for (std::int64_t v = 0; v < n; ++v) {
    part[static_cast<std::size_t>(v)] =
        static_cast<PartId>((v * cluster.num_devices()) / n);
  }
  FeatureStore store(ds.features, FeaturePlacementFromPartition(part, cluster),
                     sim);
  // Each device caches the head of its own shard: gathers hit a mix of
  // gpu-cache and local-cpu tiers, so the hit accounting is non-trivial.
  std::vector<std::vector<NodeId>> cache_nodes(
      static_cast<std::size_t>(cluster.num_devices()));
  for (std::int32_t d = 0; d < cluster.num_devices(); ++d) {
    const NodeId lo = (n * d) / cluster.num_devices();
    const NodeId hi = (n * (d + 1)) / cluster.num_devices();
    for (NodeId v = lo; v < lo + (hi - lo) / 2; ++v) {
      cache_nodes[static_cast<std::size_t>(d)].push_back(v);
    }
  }
  store.ConfigureCaches(cache_nodes, store.CachedRowBytes(ds.feature_dim()));

  constexpr int kRounds = 50;
  constexpr std::int64_t kRows = 64;
  const std::int64_t dim = ds.feature_dim();
  std::vector<double> checksum(static_cast<std::size_t>(cluster.num_devices()));

  // One real thread per device (grain 1), every thread gathering from the
  // shared store at once, repeatedly. Per-device clocks, cache bitmaps, and
  // the global metrics registry are all touched concurrently here.
  ParallelFor(
      0, cluster.num_devices(),
      [&](std::int64_t d) {
        Rng rng(static_cast<std::uint64_t>(977 + d));
        Tensor out(kRows, dim);
        double local = 0.0;
        for (int round = 0; round < kRounds; ++round) {
          std::vector<NodeId> nodes(static_cast<std::size_t>(kRows));
          for (auto& v : nodes) {
            v = static_cast<NodeId>(rng.NextBelow(static_cast<std::uint64_t>(n)));
          }
          const LoadVolume vol = store.Gather(static_cast<DeviceId>(d), nodes,
                                              0, dim, out);
          EXPECT_EQ(vol.rows[0] + vol.rows[1] + vol.rows[2] + vol.rows[3],
                    kRows);
          local += out.data()[0] + out.data()[out.numel() - 1];
        }
        checksum[static_cast<std::size_t>(d)] = local;
      },
      /*grain=*/1);

  // Accounting totals must be exact despite the concurrency.
  auto& m = obs::Metrics::Global();
  const std::int64_t total_rows =
      m.counter("feature.rows.gpu_cache").Get() +
      m.counter("feature.rows.peer_gpu").Get() +
      m.counter("feature.rows.local_cpu").Get() +
      m.counter("feature.rows.remote_cpu").Get();
  EXPECT_EQ(total_rows, static_cast<std::int64_t>(cluster.num_devices()) *
                            kRounds * kRows);
  EXPECT_EQ(m.counter("feature.gathers").Get(),
            static_cast<std::int64_t>(cluster.num_devices()) * kRounds);
  EXPECT_GT(m.counter("feature.rows.gpu_cache").Get(), 0);
  const double hit_rate = m.gauge("feature.cache.hit_rate").Get();
  EXPECT_GE(hit_rate, 0.0);
  EXPECT_LE(hit_rate, 1.0);
  sim.DebugCheckClockInvariant();

  // Re-running the same per-device access pattern serially reproduces the
  // same gathered values: the shared store really is read-mostly.
  for (std::int64_t d = 0; d < cluster.num_devices(); ++d) {
    Rng rng(static_cast<std::uint64_t>(977 + d));
    Tensor out(kRows, dim);
    double local = 0.0;
    for (int round = 0; round < kRounds; ++round) {
      std::vector<NodeId> nodes(static_cast<std::size_t>(kRows));
      for (auto& v : nodes) {
        v = static_cast<NodeId>(rng.NextBelow(static_cast<std::uint64_t>(n)));
      }
      store.Gather(static_cast<DeviceId>(d), nodes, 0, dim, out);
      local += out.data()[0] + out.data()[out.numel() - 1];
    }
    EXPECT_EQ(local, checksum[static_cast<std::size_t>(d)]) << "device " << d;
  }
}

TEST(ServeConcurrency, ConcurrentWavesMatchReportAccounting) {
  // Full engine under enough load that every wave has all workers busy:
  // the concurrent ExecuteBatch calls share the FeatureStore, the sampler,
  // and the metrics registry. The report's totals must balance exactly and
  // repeat bit-identically across runs (TSan verifies the absence of races;
  // this verifies their observable effects).
  obs::Metrics::ResetForTest();
  const Dataset ds = SmallDataset(16, 2000);
  ModelConfig model;
  model.num_layers = 2;
  model.hidden_dim = 8;
  ServeOptions opts;
  opts.fanouts = {4, 4};
  opts.batch.max_batch = 16;
  opts.batch.max_delay_s = 2e-4;
  opts.cache_bytes_per_device = 1 << 18;
  opts.collect_logits = false;

  TrafficConfig traffic;
  traffic.rate_qps = 60000.0;
  traffic.duration_s = 0.01;
  traffic.num_nodes = ds.graph.num_nodes();
  const std::vector<Request> reqs = GenerateTraffic(traffic);

  ServeEngine a(ds, SingleMachineCluster(4), model, opts);
  const ServeReport ra = a.Run(reqs);
  EXPECT_EQ(ra.served + ra.shed, ra.offered);
  EXPECT_GT(ra.batches, static_cast<std::int64_t>(a.num_workers()));
  a.sim().DebugCheckClockInvariant();

  auto& m = obs::Metrics::Global();
  EXPECT_EQ(m.counter("serve.requests.served").Get(), ra.served);
  EXPECT_EQ(m.counter("serve.batch.rows").Get(),
            static_cast<std::int64_t>(ra.mean_batch_rows *
                                          static_cast<double>(ra.batches) +
                                      0.5));

  ServeEngine b(ds, SingleMachineCluster(4), model, opts);
  const ServeReport rb = b.Run(reqs);
  EXPECT_EQ(ra.served, rb.served);
  EXPECT_EQ(ra.p99_s, rb.p99_s);
  EXPECT_EQ(ra.completed_qps, rb.completed_qps);
}

}  // namespace
}  // namespace apt::serve
