// Unit coverage for the serving subsystem: traffic generation, the
// micro-batcher's close/shed rules, engine end-to-end behaviour, and the
// trace analyzer's Serving section.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/analysis.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/batcher.h"
#include "serve/serve_engine.h"
#include "serve/traffic.h"
#include "test_util.h"

namespace apt::serve {
namespace {

using apt::testing::SmallDataset;

ModelConfig SmallModel() {
  ModelConfig m;
  m.kind = ModelKind::kSage;
  m.num_layers = 2;
  m.hidden_dim = 8;
  return m;  // input_dim/num_classes filled from the dataset by the engine
}

ServeOptions SmallOptions() {
  ServeOptions o;
  o.fanouts = {4, 4};
  o.batch.max_batch = 16;
  o.batch.max_delay_s = 2e-4;
  o.batch.queue_bound = 256;
  o.cache_bytes_per_device = 1 << 18;
  return o;
}

TrafficConfig SmallTraffic(NodeId num_nodes, double qps, double duration_s) {
  TrafficConfig t;
  t.rate_qps = qps;
  t.duration_s = duration_s;
  t.num_nodes = num_nodes;
  t.seed = 11;
  return t;
}

// --- traffic ---------------------------------------------------------------

TEST(Traffic, PoissonIsDeterministicSortedAndBounded) {
  const TrafficConfig config = SmallTraffic(1000, 5000.0, 0.1);
  const std::vector<Request> a = GenerateTraffic(config);
  const std::vector<Request> b = GenerateTraffic(config);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, static_cast<RequestId>(i));
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_GE(a[i].arrival_s, 0.0);
    EXPECT_LT(a[i].arrival_s, config.duration_s);
    if (i > 0) EXPECT_GE(a[i].arrival_s, a[i - 1].arrival_s);
    EXPECT_GE(a[i].seed, 0);
    EXPECT_LT(a[i].seed, config.num_nodes);
  }
  // Mean rate lands near the configured load.
  EXPECT_GT(static_cast<double>(a.size()), 0.6 * config.rate_qps * config.duration_s);
  EXPECT_LT(static_cast<double>(a.size()), 1.5 * config.rate_qps * config.duration_s);
}

TEST(Traffic, BurstyArrivalsStayInsideOnWindows) {
  TrafficConfig config = SmallTraffic(1000, 5000.0, 0.1);
  config.kind = ArrivalKind::kBursty;
  config.burst_period_s = 0.01;
  config.burst_duty = 0.2;
  const std::vector<Request> reqs = GenerateTraffic(config);
  ASSERT_FALSE(reqs.empty());
  const double on_s = config.burst_period_s * config.burst_duty;
  for (const Request& r : reqs) {
    EXPECT_LT(std::fmod(r.arrival_s, config.burst_period_s), on_s);
  }
  // Same mean rate as Poisson, within tolerance.
  EXPECT_GT(static_cast<double>(reqs.size()),
            0.5 * config.rate_qps * config.duration_s);
}

TEST(Traffic, ZipfPopularityIsHeadHeavy) {
  TrafficConfig config = SmallTraffic(10000, 20000.0, 0.1);
  config.zipf_alpha = 1.0;
  const std::vector<Request> reqs = GenerateTraffic(config);
  std::int64_t head = 0;
  for (const Request& r : reqs) {
    if (r.seed < config.num_nodes / 100) ++head;  // hottest 1% of ranks
  }
  // Under uniform popularity the head would get ~1% of requests; the Zipf
  // head must get far more.
  EXPECT_GT(static_cast<double>(head), 0.1 * static_cast<double>(reqs.size()));
}

// --- batcher ---------------------------------------------------------------

std::vector<Request> ArrivalsAt(const std::vector<double>& times) {
  std::vector<Request> out;
  for (std::size_t i = 0; i < times.size(); ++i) {
    out.push_back({static_cast<RequestId>(i), static_cast<NodeId>(i), times[i]});
  }
  return out;
}

TEST(Batcher, ClosesOnSize) {
  std::vector<double> times;
  for (int i = 0; i < 70; ++i) times.push_back(1e-6 * i);
  BatchPolicy policy;
  policy.max_batch = 32;
  policy.max_delay_s = 1.0;  // deadline never fires
  const BatchPlan plan = PlanBatches(ArrivalsAt(times), policy);
  ASSERT_EQ(plan.batches.size(), 3u);
  EXPECT_EQ(plan.batches[0].requests.size(), 32u);
  EXPECT_EQ(plan.batches[1].requests.size(), 32u);
  EXPECT_EQ(plan.batches[2].requests.size(), 6u);
  EXPECT_TRUE(plan.shed.empty());
  // A size-closed batch is ready when its last request arrives.
  EXPECT_DOUBLE_EQ(plan.batches[0].close_s, times[31]);
  // The final deadline-closed batch waits out the oldest request's budget.
  EXPECT_DOUBLE_EQ(plan.batches[2].close_s, times[64] + policy.max_delay_s);
}

TEST(Batcher, ClosesOnDeadline) {
  BatchPolicy policy;
  policy.max_batch = 32;
  policy.max_delay_s = 1e-3;
  const BatchPlan plan =
      PlanBatches(ArrivalsAt({0.0, 1e-4, 2e-4, 5e-3}), policy);
  ASSERT_EQ(plan.batches.size(), 2u);
  EXPECT_EQ(plan.batches[0].requests.size(), 3u);
  EXPECT_DOUBLE_EQ(plan.batches[0].close_s, 1e-3);
  EXPECT_EQ(plan.batches[1].requests.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.batches[1].close_s, 5e-3 + 1e-3);
}

TEST(Batcher, CloseTimesAreMonotone) {
  TrafficConfig config;
  config.rate_qps = 20000.0;
  config.duration_s = 0.05;
  config.num_nodes = 100;
  const std::vector<Request> reqs = GenerateTraffic(config);
  BatchPolicy policy;
  policy.max_batch = 8;
  policy.max_delay_s = 1e-4;
  const BatchPlan plan = PlanBatches(reqs, policy);
  ASSERT_GT(plan.batches.size(), 1u);
  std::size_t total = plan.shed.size();
  for (std::size_t i = 0; i < plan.batches.size(); ++i) {
    total += plan.batches[i].requests.size();
    EXPECT_LE(plan.batches[i].requests.size(),
              static_cast<std::size_t>(policy.max_batch));
    if (i > 0) EXPECT_GE(plan.batches[i].close_s, plan.batches[i - 1].close_s);
  }
  EXPECT_EQ(total, reqs.size());  // every request lands somewhere
}

TEST(Batcher, ShedsOnDispatchBacklog) {
  // 100 arrivals in a burst; workers report start times far in the future,
  // so the closed-but-unstarted backlog crosses the bound and admission
  // sheds the overflow.
  std::vector<double> times;
  for (int i = 0; i < 100; ++i) times.push_back(1e-6 * i);
  BatchPolicy policy;
  policy.max_batch = 8;
  policy.max_delay_s = 1e-3;
  policy.queue_bound = 32;
  const DispatchFn slow_workers = [](const PlannedBatch& b) {
    return b.close_s + 1.0;  // nothing starts within the burst
  };
  const BatchPlan plan = PlanBatches(ArrivalsAt(times), policy, slow_workers);
  EXPECT_FALSE(plan.shed.empty());
  std::size_t admitted = 0;
  for (const PlannedBatch& b : plan.batches) admitted += b.requests.size();
  // Backlog never exceeds bound + one open batch.
  EXPECT_LE(admitted, static_cast<std::size_t>(policy.queue_bound +
                                               policy.max_batch));
  EXPECT_EQ(admitted + plan.shed.size(), times.size());
}

TEST(Batcher, NoShedWithoutDispatchFeedback) {
  // Without a dispatch callback every batch starts at close: zero backlog,
  // nothing shed, however tight the bound.
  std::vector<double> times;
  for (int i = 0; i < 500; ++i) times.push_back(1e-7 * i);
  BatchPolicy policy;
  policy.max_batch = 4;
  policy.max_delay_s = 1e-3;
  policy.queue_bound = 8;
  const BatchPlan plan = PlanBatches(ArrivalsAt(times), policy);
  EXPECT_TRUE(plan.shed.empty());
}

// --- engine ----------------------------------------------------------------

TEST(ServeEngine, ServesEveryRequestAndReportsConsistently) {
  const Dataset ds = SmallDataset(16, 1200);
  ServeEngine engine(ds, SingleMachineCluster(2), SmallModel(), SmallOptions());
  const std::vector<Request> reqs =
      GenerateTraffic(SmallTraffic(ds.graph.num_nodes(), 5000.0, 0.02));
  const ServeReport report = engine.Run(reqs);

  EXPECT_EQ(report.offered, static_cast<std::int64_t>(reqs.size()));
  EXPECT_EQ(report.served + report.shed, report.offered);
  EXPECT_EQ(report.shed, report.shed_queue_full + report.shed_poisoned);
  EXPECT_EQ(report.responses.size(), reqs.size());
  EXPECT_GT(report.batches, 0);
  EXPECT_GT(report.served, 0);
  EXPECT_GT(report.completed_qps, 0.0);
  EXPECT_LE(report.p50_s, report.p95_s);
  EXPECT_LE(report.p95_s, report.p99_s);
  EXPECT_LE(report.p99_s, report.max_latency_s);

  for (const Response& r : report.responses) {
    if (r.shed) {
      EXPECT_NE(r.shed_reason, ShedReason::kNone);
      EXPECT_TRUE(r.logits.empty());
      continue;
    }
    EXPECT_GE(r.latency_s, 0.0);
    EXPECT_GE(r.done_s, r.arrival_s);
    EXPECT_GE(r.batch_rows, 1);
    EXPECT_LE(r.batch_rows, SmallOptions().batch.max_batch);
    EXPECT_GE(r.worker, 0);
    EXPECT_LT(r.worker, engine.num_workers());
    ASSERT_EQ(r.logits.size(), static_cast<std::size_t>(ds.num_classes));
  }
}

TEST(ServeEngine, RunIsBitDeterministicAcrossEngines) {
  const Dataset ds = SmallDataset(16, 1200);
  const std::vector<Request> reqs =
      GenerateTraffic(SmallTraffic(ds.graph.num_nodes(), 8000.0, 0.01));

  ServeEngine a(ds, SingleMachineCluster(2), SmallModel(), SmallOptions());
  ServeEngine b(ds, SingleMachineCluster(2), SmallModel(), SmallOptions());
  const ServeReport ra = a.Run(reqs);
  const ServeReport rb = b.Run(reqs);

  ASSERT_EQ(ra.responses.size(), rb.responses.size());
  EXPECT_EQ(ra.served, rb.served);
  EXPECT_EQ(ra.shed, rb.shed);
  EXPECT_DOUBLE_EQ(ra.p99_s, rb.p99_s);
  EXPECT_DOUBLE_EQ(ra.completed_qps, rb.completed_qps);
  for (std::size_t i = 0; i < ra.responses.size(); ++i) {
    EXPECT_EQ(ra.responses[i].id, rb.responses[i].id);
    EXPECT_DOUBLE_EQ(ra.responses[i].done_s, rb.responses[i].done_s);
    ASSERT_EQ(ra.responses[i].logits.size(), rb.responses[i].logits.size());
    if (!ra.responses[i].logits.empty()) {
      EXPECT_EQ(std::memcmp(ra.responses[i].logits.data(),
                            rb.responses[i].logits.data(),
                            ra.responses[i].logits.size() * sizeof(float)),
                0);
    }
  }
}

TEST(ServeEngine, MicroBatchingAmortizesFixedOverheads) {
  const Dataset ds = SmallDataset(16, 1200);
  // Overload: offered rate far beyond single-request service capacity.
  const std::vector<Request> reqs =
      GenerateTraffic(SmallTraffic(ds.graph.num_nodes(), 200000.0, 0.01));

  ServeOptions batched = SmallOptions();
  batched.collect_logits = false;
  ServeOptions unbatched = batched;
  unbatched.batch.max_batch = 1;

  ServeEngine a(ds, SingleMachineCluster(2), SmallModel(), batched);
  ServeEngine b(ds, SingleMachineCluster(2), SmallModel(), unbatched);
  const ServeReport ra = a.Run(reqs);
  const ServeReport rb = b.Run(reqs);

  EXPECT_GT(ra.mean_batch_rows, 4.0);
  EXPECT_DOUBLE_EQ(rb.mean_batch_rows, 1.0);
  // The per-request kernel-launch / link-latency overheads amortize across
  // the batch: sustained throughput must rise well beyond batch-1.
  EXPECT_GT(ra.completed_qps, 1.5 * rb.completed_qps);
}

TEST(ServeEngine, ShedsUnderOverloadWithTypedReason) {
  const Dataset ds = SmallDataset(16, 1200);
  ServeOptions opts = SmallOptions();
  opts.collect_logits = false;
  opts.batch.queue_bound = 32;
  // Deeper fanout + a single worker lowers capacity; the offered rate sits
  // far above it so admission control must engage.
  opts.fanouts = {10, 10};
  ServeEngine engine(ds, SingleMachineCluster(1), SmallModel(), opts);
  const std::vector<Request> reqs =
      GenerateTraffic(SmallTraffic(ds.graph.num_nodes(), 2e6, 0.002));
  const ServeReport report = engine.Run(reqs);

  EXPECT_GT(report.shed_queue_full, 0);
  EXPECT_EQ(report.shed_poisoned, 0);
  EXPECT_GT(report.served, 0);  // admitted requests still complete
  for (const Response& r : report.responses) {
    if (r.shed) EXPECT_EQ(r.shed_reason, ShedReason::kQueueFull);
  }
  // Admission control bounds the latency of admitted requests: everything
  // served waited at most the backlog bound's worth of service, not the
  // whole overload backlog.
  EXPECT_LT(report.max_latency_s, 0.05);
}

TEST(ServeEngine, ClockInvariantHoldsAfterConcurrentRun) {
  const Dataset ds = SmallDataset(16, 1200);
  ServeOptions opts = SmallOptions();
  opts.collect_logits = false;
  ServeEngine engine(ds, SingleMachineCluster(4), SmallModel(), opts);
  const std::vector<Request> reqs =
      GenerateTraffic(SmallTraffic(ds.graph.num_nodes(), 50000.0, 0.01));
  engine.Run(reqs);
  engine.sim().DebugCheckClockInvariant();
  for (DeviceId d = 0; d < engine.num_workers(); ++d) {
    EXPECT_GT(engine.sim().Now(d), 0.0);  // every worker did real work
  }
}

TEST(ServeEngine, LoadParamsCopiesTrainedWeightsToAllReplicas) {
  const Dataset ds = SmallDataset(16, 1200);
  ModelConfig cfg = SmallModel();
  cfg.input_dim = ds.feature_dim();
  cfg.num_classes = ds.num_classes;
  GnnModel trained(cfg);
  for (Param* p : trained.Params()) p->value.Fill(0.125f);

  ServeEngine engine(ds, SingleMachineCluster(2), SmallModel(), SmallOptions());
  engine.LoadParams(trained);
  for (DeviceId d = 0; d < engine.num_workers(); ++d) {
    for (Param* p : engine.model(d).Params()) {
      for (std::int64_t i = 0; i < p->value.numel(); ++i) {
        ASSERT_EQ(p->value.data()[i], 0.125f);
      }
    }
  }
}

// --- metrics + trace analysis ---------------------------------------------

TEST(ServeObs, MetricsAndServingReportSection) {
  obs::Metrics::ResetForTest();
  obs::Tracer::Global().Clear();
  obs::SetTracingEnabled(true);

  const Dataset ds = SmallDataset(16, 1200);
  ServeOptions opts = SmallOptions();
  opts.collect_logits = false;
  ServeEngine engine(ds, SingleMachineCluster(2), SmallModel(), opts);
  const std::vector<Request> reqs =
      GenerateTraffic(SmallTraffic(ds.graph.num_nodes(), 20000.0, 0.01));
  const ServeReport report = engine.Run(reqs);

  obs::SetTracingEnabled(false);
  auto& m = obs::Metrics::Global();
  EXPECT_EQ(m.counter("serve.requests.offered").Get(), report.offered);
  EXPECT_EQ(m.counter("serve.requests.served").Get(), report.served);
  EXPECT_EQ(m.counter("serve.requests.shed").Get(), report.shed);
  EXPECT_EQ(m.counter("serve.batches.closed").Get(), report.batches);
  EXPECT_DOUBLE_EQ(m.gauge("serve.latency.p99_s").Get(), report.p99_s);
  EXPECT_DOUBLE_EQ(m.gauge("serve.qps.completed").Get(), report.completed_qps);

  const std::vector<obs::TraceEvent> events = obs::Tracer::Global().Drain();
  const obs::TraceSet set =
      obs::AnalyzeEvents(events, obs::Tracer::Global().SimTracks());
  const obs::TraceAnalysis* track = nullptr;
  for (const obs::TraceAnalysis& t : set.tracks) {
    if (t.serve.Any()) track = &t;
  }
  ASSERT_NE(track, nullptr);
  EXPECT_EQ(track->serve.latency.count, report.served);
  EXPECT_EQ(track->serve.shed, report.shed);
  EXPECT_EQ(track->serve.batches, report.batches);
  EXPECT_DOUBLE_EQ(track->serve.mean_batch_rows, report.mean_batch_rows);
  EXPECT_DOUBLE_EQ(track->serve.latency.p99_s, report.p99_s);
  // Serving spans are their own bucket: the device phase accounting must
  // only carry the sample/load/train busy phases, and the phase maxima must
  // match the per-device clocks (serve spans excluded from the window).
  for (const auto& [cat, v] : track->phase_max_s) {
    EXPECT_TRUE(cat == "sample" || cat == "load" || cat == "train") << cat;
    EXPECT_GT(v, 0.0);
  }

  std::ostringstream os;
  obs::WriteReport(os, set, /*all_tracks=*/true);
  EXPECT_NE(os.str().find("serving: requests"), std::string::npos);
  EXPECT_NE(os.str().find("request latency"), std::string::npos);
}

}  // namespace
}  // namespace apt::serve
