// Serving SLO tests: the online serve.latency_s histogram agrees with the
// exact trace-analysis percentiles to within one log-bucket width, and the
// engine's SLO watchdog tightens admission control under a sustained latency
// breach — deterministically.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/analysis.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "serve/serve_engine.h"
#include "serve/traffic.h"
#include "test_util.h"

namespace apt::serve {
namespace {

using apt::testing::SmallDataset;
using obs::Histogram;

ModelConfig ServingModel(const Dataset& ds) {
  ModelConfig m;
  m.kind = ModelKind::kSage;
  m.num_layers = 2;
  m.input_dim = ds.feature_dim();
  m.hidden_dim = 16;
  m.num_classes = ds.num_classes;
  return m;
}

ServeOptions BaseOptions() {
  ServeOptions o;
  o.fanouts = {3, 3};
  o.batch.max_batch = 16;
  o.batch.max_delay_s = 5e-4;
  o.batch.queue_bound = 256;
  o.collect_logits = false;
  o.telemetry_window_s = 1e-3;
  return o;
}

TrafficConfig Load(const Dataset& ds, double qps) {
  TrafficConfig t;
  t.rate_qps = qps;
  t.duration_s = 0.01;
  t.num_nodes = ds.graph.num_nodes();
  t.seed = 41;
  return t;
}

TEST(ServeSlo, OnlineHistogramMatchesTraceAnalysisWithinOneBucket) {
  // The online histogram is bucketed; the trace analyzer computes exact
  // percentiles over the same "request" spans. Nearest-rank over bucket
  // UPPER bounds must bracket the exact value from above by at most the
  // bucket's width (~12.5%).
  obs::Metrics::ResetForTest();
  obs::SetTracingEnabled(true);
  obs::Tracer::Global().Clear();
  const Dataset ds = SmallDataset();
  ServeEngine engine(ds, SingleMachineCluster(4), ServingModel(ds),
                     BaseOptions());
  const ServeReport report =
      engine.Run(GenerateTraffic(Load(ds, 100e3)));
  ASSERT_GT(report.served, 100);
  ASSERT_EQ(report.shed, 0);  // same multiset on both sides

  const std::string path = ::testing::TempDir() + "serve_slo_trace.json";
  ASSERT_TRUE(obs::ExportChromeTrace(path));
  obs::SetTracingEnabled(false);
  obs::Tracer::Global().Clear();
  obs::TraceSet set;
  std::string error;
  ASSERT_TRUE(obs::AnalyzeTraceFile(path, &set, &error)) << error;
  const obs::TraceAnalysis* track = nullptr;
  for (const obs::TraceAnalysis& a : set.tracks) {
    if (a.serve.Any()) track = &a;
  }
  ASSERT_NE(track, nullptr);
  ASSERT_EQ(track->serve.latency.count, report.served);

  const Histogram& hist = obs::Metrics::Global().histogram("serve.latency_s");
  ASSERT_EQ(hist.Count(), report.served);
  const struct {
    double q;
    double exact;
  } checks[] = {{0.50, track->serve.latency.p50_s},
                {0.95, track->serve.latency.p95_s},
                {0.99, track->serve.latency.p99_s}};
  for (const auto& c : checks) {
    const double online = hist.ValueAtQuantile(c.q);
    EXPECT_GE(online, c.exact) << "q=" << c.q;
    EXPECT_LE(online - c.exact,
              Histogram::BucketWidth(Histogram::BucketIndexOf(c.exact)) * 1.0001)
        << "q=" << c.q << " online=" << online << " exact=" << c.exact;
  }
  // The engine's report percentiles come from the same exact latencies.
  EXPECT_DOUBLE_EQ(track->serve.latency.p99_s, report.p99_s);
}

TEST(ServeSlo, WatchdogTightensQueueBoundDeterministically) {
  // An unmeetable latency SLO: every closed window violates, so the
  // watchdog halves queue_bound at each wave-boundary evaluation until the
  // floor. Both the tightening and the resulting report must be
  // bit-reproducible across runs.
  const Dataset ds = SmallDataset();
  ServeOptions opts = BaseOptions();
  obs::SloRule rule;
  ASSERT_TRUE(obs::ParseSloRule("serve.latency_s p99 < 1us", &rule));
  opts.slo_rules = {rule};
  const std::vector<Request> arrivals = GenerateTraffic(Load(ds, 200e3));

  const auto run_once = [&]() {
    obs::Metrics::ResetForTest();
    ServeEngine engine(ds, SingleMachineCluster(4), ServingModel(ds), opts);
    return engine.Run(arrivals);
  };

  const ServeReport r1 = run_once();
  const std::int64_t tightened1 =
      obs::Metrics::Global().counter("serve.slo.queue_bound_tightened").Get();
  const double bound1 = obs::Metrics::Global().gauge("serve.queue_bound").Get();
  EXPECT_GE(obs::Metrics::Global().counter("slo.violations").Get(), 1);
  EXPECT_GE(tightened1, 1);
  EXPECT_GE(bound1, static_cast<double>(opts.slo_queue_bound_floor));
  EXPECT_LT(bound1, static_cast<double>(opts.batch.queue_bound));

  const ServeReport r2 = run_once();
  const std::int64_t tightened2 =
      obs::Metrics::Global().counter("serve.slo.queue_bound_tightened").Get();
  EXPECT_EQ(tightened1, tightened2);
  EXPECT_EQ(r1.served, r2.served);
  EXPECT_EQ(r1.shed, r2.shed);
  EXPECT_EQ(r1.batches, r2.batches);
  EXPECT_DOUBLE_EQ(r1.p99_s, r2.p99_s);
  EXPECT_DOUBLE_EQ(r1.mean_latency_s, r2.mean_latency_s);
}

TEST(ServeSlo, NoRulesMeansNoBehaviorChange) {
  // The watchdog is opt-in: with no rules, a run with telemetry on and a
  // run with telemetry off produce identical reports.
  const Dataset ds = SmallDataset();
  const std::vector<Request> arrivals = GenerateTraffic(Load(ds, 200e3));
  const auto run_with_window = [&](double window_s) {
    obs::Metrics::ResetForTest();
    ServeOptions opts = BaseOptions();
    opts.telemetry_window_s = window_s;
    ServeEngine engine(ds, SingleMachineCluster(4), ServingModel(ds), opts);
    return engine.Run(arrivals);
  };
  const ServeReport on = run_with_window(1e-3);
  const ServeReport off = run_with_window(0.0);
  EXPECT_EQ(on.served, off.served);
  EXPECT_EQ(on.shed, off.shed);
  EXPECT_DOUBLE_EQ(on.p99_s, off.p99_s);
  EXPECT_DOUBLE_EQ(on.completed_qps, off.completed_qps);
  // The telemetry-off run recorded nothing.
  const obs::TimeSeries* lat = obs::Telemetry::Global().Find("serve.latency_s");
  ASSERT_NE(lat, nullptr);  // created by the telemetry-on run...
  EXPECT_TRUE(lat->AllWindows().empty());  // ...but reset + off-run left it empty
}

}  // namespace
}  // namespace apt::serve
