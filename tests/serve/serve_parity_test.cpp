// Batch-invariance parity: a request's logits must be bit-identical whether
// it is served alone or inside any micro-batch. This is the serving twin of
// the trainer's strategy-equivalence invariant, and it holds because (a)
// each request's subgraph is sampled from an RNG stream keyed by the request
// id, (b) MergeSampledBatches preserves per-destination-row edge order, and
// (c) the forward kernels are per-row. Any dedup across requests, shared
// sampling state, or row-order-dependent reduction breaks it bitwise.
#include <gtest/gtest.h>

#include <cstring>

#include "serve/serve_engine.h"
#include "serve/traffic.h"
#include "test_util.h"

namespace apt::serve {
namespace {

using apt::testing::SmallDataset;

ModelConfig ParityModel() {
  ModelConfig m;
  m.kind = ModelKind::kSage;
  m.num_layers = 2;
  m.hidden_dim = 16;
  return m;
}

ServeOptions ParityOptions(int max_batch) {
  ServeOptions o;
  o.fanouts = {5, 5};
  o.batch.max_batch = max_batch;
  o.batch.max_delay_s = 1e-3;
  o.batch.queue_bound = 1 << 20;  // nothing shed: every request must appear
  o.cache_bytes_per_device = 1 << 18;
  return o;
}

std::vector<Request> ParityTraffic(const Dataset& ds) {
  TrafficConfig t;
  t.rate_qps = 100000.0;  // dense arrivals so batches actually fill
  t.duration_s = 0.005;
  t.num_nodes = ds.graph.num_nodes();
  t.zipf_alpha = 0.9;  // repeated hot seeds: same seed in one batch twice
  t.seed = 17;
  return GenerateTraffic(t);
}

TEST(ServeParity, BatchOf32MatchesSoloBitwise) {
  const Dataset ds = SmallDataset(16, 1500);
  ServeEngine engine(ds, SingleMachineCluster(2), ParityModel(),
                     ParityOptions(32));
  const std::vector<Request> reqs = ParityTraffic(ds);
  const ServeReport report = engine.Run(reqs);

  ASSERT_EQ(report.shed, 0);
  ASSERT_EQ(report.responses.size(), reqs.size());
  ASSERT_GT(report.max_batch_rows, 16);  // the load really batched

  // Solo-serve every request on the worker that served it in the batch and
  // demand bitwise identity. ServeSolo advances the worker's clock but
  // cannot change values.
  for (const Response& r : report.responses) {
    const Request request{r.id, r.seed, r.arrival_s};
    const Tensor solo = engine.ServeSolo(request, r.worker);
    ASSERT_EQ(static_cast<std::size_t>(solo.numel()), r.logits.size())
        << "request " << r.id;
    ASSERT_EQ(std::memcmp(solo.data(), r.logits.data(),
                          r.logits.size() * sizeof(float)),
              0)
        << "request " << r.id << " (seed " << r.seed << ", batch of "
        << r.batch_rows << ")";
  }
}

TEST(ServeParity, BatchSizeDoesNotChangeAnyLogit) {
  // Same traffic through a batch-32 engine and a batch-1 engine: every
  // per-request logit vector must match bitwise even though the batch
  // compositions are completely different.
  const Dataset ds = SmallDataset(16, 1500);
  const std::vector<Request> reqs = ParityTraffic(ds);

  ServeEngine batched(ds, SingleMachineCluster(2), ParityModel(),
                      ParityOptions(32));
  ServeEngine solo(ds, SingleMachineCluster(2), ParityModel(),
                   ParityOptions(1));
  const ServeReport ra = batched.Run(reqs);
  const ServeReport rb = solo.Run(reqs);

  ASSERT_EQ(ra.responses.size(), rb.responses.size());
  for (std::size_t i = 0; i < ra.responses.size(); ++i) {
    ASSERT_EQ(ra.responses[i].id, rb.responses[i].id);
    ASSERT_EQ(ra.responses[i].logits.size(), rb.responses[i].logits.size());
    ASSERT_EQ(std::memcmp(ra.responses[i].logits.data(),
                          rb.responses[i].logits.data(),
                          ra.responses[i].logits.size() * sizeof(float)),
              0)
        << "request " << ra.responses[i].id;
  }
  // Timing, by contrast, must differ: batching trades queueing delay for
  // amortized service.
  EXPECT_NE(ra.p99_s, rb.p99_s);
}

TEST(ServeParity, LoadedParamsPropagateToServing) {
  // Logits must reflect loaded (non-init) parameters on every worker, and
  // parity must survive the reload.
  const Dataset ds = SmallDataset(16, 1500);
  ModelConfig cfg = ParityModel();
  cfg.input_dim = ds.feature_dim();
  cfg.num_classes = ds.num_classes;
  cfg.init_seed = 4321;  // different stream than the serving replicas
  GnnModel trained(cfg);

  ServeEngine engine(ds, SingleMachineCluster(2), ParityModel(),
                     ParityOptions(32));
  const Request probe{0, 7, 0.0};
  const Tensor before = engine.ServeSolo(probe, 0);
  engine.LoadParams(trained);
  const Tensor after0 = engine.ServeSolo(probe, 0);
  const Tensor after1 = engine.ServeSolo(probe, 1);

  ASSERT_EQ(before.numel(), after0.numel());
  EXPECT_NE(std::memcmp(before.data(), after0.data(),
                        static_cast<std::size_t>(before.numel()) *
                            sizeof(float)),
            0)
      << "loading new params must change the logits";
  // Both workers serve identical values from the loaded params.
  ASSERT_EQ(after0.numel(), after1.numel());
  EXPECT_EQ(std::memcmp(after0.data(), after1.data(),
                        static_cast<std::size_t>(after0.numel()) *
                            sizeof(float)),
            0);
}

}  // namespace
}  // namespace apt::serve
