// Chaos coverage for the serving engine: injected faults may inflate tail
// latency but must NEVER corrupt a response, and a poisoned cluster sheds
// with a typed reason instead of hanging — the serving twin of the
// trainer's fail-fast barrier semantics.
#include <gtest/gtest.h>

#include <cstring>

#include "serve/serve_engine.h"
#include "serve/traffic.h"
#include "sim/fault.h"
#include "test_util.h"

namespace apt::serve {
namespace {

using apt::testing::SmallDataset;

ModelConfig ChaosModel() {
  ModelConfig m;
  m.num_layers = 2;
  m.hidden_dim = 8;
  return m;
}

ServeOptions ChaosOptions() {
  ServeOptions o;
  o.fanouts = {4, 4};
  o.batch.max_batch = 16;
  o.batch.max_delay_s = 2e-4;
  o.batch.queue_bound = 1 << 20;  // no shedding: compare full response sets
  o.cache_bytes_per_device = 1 << 18;
  return o;
}

std::vector<Request> ChaosTraffic(const Dataset& ds) {
  TrafficConfig t;
  t.rate_qps = 30000.0;
  t.duration_s = 0.01;
  t.num_nodes = ds.graph.num_nodes();
  t.seed = 23;
  return GenerateTraffic(t);
}

TEST(ServeChaos, StragglerInflatesTailButNeverCorruptsResponses) {
  const Dataset ds = SmallDataset(16, 1500);
  const std::vector<Request> reqs = ChaosTraffic(ds);

  ServeEngine clean(ds, SingleMachineCluster(2), ChaosModel(), ChaosOptions());
  const ServeReport healthy = clean.Run(reqs);

  ServeEngine faulty(ds, SingleMachineCluster(2), ChaosModel(), ChaosOptions());
  FaultPlan plan;
  plan.stragglers.push_back(
      {/*device=*/0, /*start_s=*/0.0, /*end_s=*/1.0, /*slowdown=*/8.0});
  faulty.sim().InstallFaults(plan);
  const ServeReport degraded = faulty.Run(reqs);

  // Same work served; only the clock suffered.
  EXPECT_EQ(healthy.served, degraded.served);
  EXPECT_EQ(degraded.shed, 0);
  EXPECT_GT(degraded.p99_s, healthy.p99_s);
  EXPECT_LT(degraded.completed_qps, healthy.completed_qps);

  // Every logit bit-identical: faults perturb time, never values.
  ASSERT_EQ(healthy.responses.size(), degraded.responses.size());
  for (std::size_t i = 0; i < healthy.responses.size(); ++i) {
    const Response& h = healthy.responses[i];
    const Response& d = degraded.responses[i];
    ASSERT_EQ(h.id, d.id);
    ASSERT_EQ(h.logits.size(), d.logits.size());
    ASSERT_EQ(std::memcmp(h.logits.data(), d.logits.data(),
                          h.logits.size() * sizeof(float)),
              0)
        << "request " << h.id;
  }
}

TEST(ServeChaos, DegradedFeatureLinksOnlySlowTheClock) {
  const Dataset ds = SmallDataset(16, 1500);
  const std::vector<Request> reqs = ChaosTraffic(ds);

  // No GPU cache: with one the whole (small) feature table fits and every
  // gather is a cache hit, immune to link faults by design.
  ServeOptions opts = ChaosOptions();
  opts.cache_bytes_per_device = 0;

  ServeEngine clean(ds, MultiMachineCluster(2, 2), ChaosModel(), opts);
  const ServeReport healthy = clean.Run(reqs);

  ServeEngine faulty(ds, MultiMachineCluster(2, 2), ChaosModel(), opts);
  FaultPlan plan;
  LinkFault slow_pcie;
  slow_pcie.link_class = 0;  // TrafficClass::kLocalCpuGpu: the gather path
  slow_pcie.bandwidth_factor = 0.1;
  slow_pcie.extra_latency_s = 50e-6;
  plan.links.push_back(slow_pcie);
  LinkFault flaky_eth;
  flaky_eth.link_class = 2;  // kCrossMachine: remote feature shards
  flaky_eth.bandwidth_factor = 0.25;
  flaky_eth.flap_period_s = 1e-3;
  flaky_eth.flap_duty = 0.5;
  plan.links.push_back(flaky_eth);
  faulty.sim().InstallFaults(plan);
  const ServeReport degraded = faulty.Run(reqs);

  EXPECT_EQ(healthy.served, degraded.served);
  EXPECT_GT(degraded.p99_s, healthy.p99_s);
  ASSERT_EQ(healthy.responses.size(), degraded.responses.size());
  for (std::size_t i = 0; i < healthy.responses.size(); ++i) {
    ASSERT_EQ(std::memcmp(healthy.responses[i].logits.data(),
                          degraded.responses[i].logits.data(),
                          healthy.responses[i].logits.size() * sizeof(float)),
              0);
  }
}

TEST(ServeChaos, PoisonedClusterShedsTypedAndNeverHangs) {
  const Dataset ds = SmallDataset(16, 1500);
  ServeEngine engine(ds, SingleMachineCluster(2), ChaosModel(),
                     ChaosOptions());
  engine.sim().PoisonBarrier("collective failure elsewhere on the cluster");

  const std::vector<Request> reqs = ChaosTraffic(ds);
  const ServeReport report = engine.Run(reqs);  // must return, not hang

  EXPECT_EQ(report.served, 0);
  EXPECT_EQ(report.shed, report.offered);
  EXPECT_EQ(report.shed_poisoned, report.offered);
  EXPECT_EQ(report.shed_queue_full, 0);
  EXPECT_EQ(report.responses.size(), reqs.size());
  for (const Response& r : report.responses) {
    EXPECT_TRUE(r.shed);
    EXPECT_EQ(r.shed_reason, ShedReason::kPoisoned);
    EXPECT_TRUE(r.logits.empty());
  }

  // Recovery restores service on the same engine.
  engine.sim().ClearBarrierPoison();
  const ServeReport recovered = engine.Run(reqs);
  EXPECT_EQ(recovered.served, recovered.offered);
  EXPECT_EQ(recovered.shed, 0);
}

}  // namespace
}  // namespace apt::serve
