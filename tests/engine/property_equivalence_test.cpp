// Property-based strategy equivalence: for RANDOM (graph, fanout,
// hidden-dim, cluster) configurations — not hand-picked shapes — GDP, NFP,
// SNP, and DNP trained on identical mini-batches produce the same loss and
// parameters up to float32 reassociation. Each case derives every knob from
// a single seed, so a failure reproduces from the test name alone.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/random.h"
#include "test_util.h"

namespace apt {
namespace {

using ::apt::testing::ExpectStrategyParity;
using ::apt::testing::SmallDataset;

class PropertyEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertyEquivalence, RandomConfigMatchesGdp) {
  Rng rng(GetParam());
  // Draw a small but genuinely varied configuration. Bounds keep one case
  // under ~2s: <=1000 nodes, {3,3} fanouts, batch 64.
  const NodeId nodes = 400 + static_cast<NodeId>(rng.NextBelow(601));  // 400..1000
  const std::int64_t feature_dim = 8 << rng.NextBelow(3);              // 8/16/32
  const std::int64_t hidden = 4 << rng.NextBelow(3);                   // 4/8/16
  const int fanout = 2 + static_cast<int>(rng.NextBelow(3));           // 2..4
  const std::int32_t devices = 2 + static_cast<std::int32_t>(rng.NextBelow(3));
  const bool multi_machine = rng.NextBelow(2) == 1;

  const Dataset ds = SmallDataset(feature_dim, nodes, /*seed=*/GetParam());
  const ClusterSpec cluster = multi_machine
                                  ? MultiMachineCluster(2, devices)
                                  : SingleMachineCluster(2 * devices);
  SCOPED_TRACE("seed=" + std::to_string(GetParam()) + " nodes=" +
               std::to_string(nodes) + " d=" + std::to_string(feature_dim) +
               " h=" + std::to_string(hidden) + " f=" + std::to_string(fanout) +
               " c=" + std::to_string(2 * devices) +
               (multi_machine ? " multi" : " single"));
  ExpectStrategyParity(ds, cluster, {fanout, fanout}, /*batch=*/64, hidden);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyEquivalence,
                         ::testing::Range<std::uint64_t>(1000, 1020),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Pipelined execution is purely a timing-model feature: the arithmetic still
// runs serially, so for EVERY strategy and EVERY depth the trained parameters
// must be BIT-identical (== 0, no tolerance) to the serial engine on the same
// random configuration — and overlap must never make the simulated epoch
// slower.
class PipelineDepthParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineDepthParity, EveryDepthBitExactAcrossStrategies) {
  Rng rng(GetParam());
  const NodeId nodes = 300 + static_cast<NodeId>(rng.NextBelow(301));  // 300..600
  const std::int64_t feature_dim = 8 << rng.NextBelow(2);              // 8/16
  const std::int64_t hidden = 4 << rng.NextBelow(2);                   // 4/8
  const int fanout = 2 + static_cast<int>(rng.NextBelow(2));           // 2..3
  const std::int32_t devices = 2 + static_cast<std::int32_t>(rng.NextBelow(2));
  const bool multi_machine = rng.NextBelow(2) == 1;

  const Dataset ds = SmallDataset(feature_dim, nodes, /*seed=*/GetParam());
  const ClusterSpec cluster = multi_machine
                                  ? MultiMachineCluster(2, devices)
                                  : SingleMachineCluster(2 * devices);
  SCOPED_TRACE("seed=" + std::to_string(GetParam()) + " nodes=" +
               std::to_string(nodes) + " d=" + std::to_string(feature_dim) +
               " h=" + std::to_string(hidden) + " f=" + std::to_string(fanout) +
               " c=" + std::to_string(2 * devices) +
               (multi_machine ? " multi" : " single"));
  for (Strategy s :
       {Strategy::kGDP, Strategy::kNFP, Strategy::kSNP, Strategy::kDNP}) {
    auto ref = apt::testing::MakeTrainer(ds, cluster, s, ModelKind::kSage,
                                         /*force_chunked=*/true, 1 << 18,
                                         {fanout, fanout}, /*batch=*/64, hidden);
    const EpochStats ref_stats = ref->TrainEpoch(0);
    for (int depth : {2, 4}) {
      auto piped = apt::testing::MakeTrainer(
          ds, cluster, s, ModelKind::kSage, /*force_chunked=*/true, 1 << 18,
          {fanout, fanout}, /*batch=*/64, hidden, /*recovery=*/{}, depth);
      const EpochStats piped_stats = piped->TrainEpoch(0);
      SCOPED_TRACE(std::string(ToString(s)) + " depth=" + std::to_string(depth));
      EXPECT_EQ(ref_stats.loss, piped_stats.loss);
      EXPECT_EQ(ref_stats.train_accuracy, piped_stats.train_accuracy);
      EXPECT_EQ(apt::testing::MaxParamDiff(ref->model0(), piped->model0()), 0.0);
      // Overlap can only hide communication, never add simulated time.
      EXPECT_LE(piped_stats.wall_seconds,
                ref_stats.wall_seconds * (1.0 + 1e-9) + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineDepthParity,
                         ::testing::Range<std::uint64_t>(2000, 2020),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace apt
