// Property-based strategy equivalence: for RANDOM (graph, fanout,
// hidden-dim, cluster) configurations — not hand-picked shapes — GDP, NFP,
// SNP, and DNP trained on identical mini-batches produce the same loss and
// parameters up to float32 reassociation. Each case derives every knob from
// a single seed, so a failure reproduces from the test name alone.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/random.h"
#include "test_util.h"

namespace apt {
namespace {

using ::apt::testing::ExpectStrategyParity;
using ::apt::testing::SmallDataset;

class PropertyEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertyEquivalence, RandomConfigMatchesGdp) {
  Rng rng(GetParam());
  // Draw a small but genuinely varied configuration. Bounds keep one case
  // under ~2s: <=1000 nodes, {3,3} fanouts, batch 64.
  const NodeId nodes = 400 + static_cast<NodeId>(rng.NextBelow(601));  // 400..1000
  const std::int64_t feature_dim = 8 << rng.NextBelow(3);              // 8/16/32
  const std::int64_t hidden = 4 << rng.NextBelow(3);                   // 4/8/16
  const int fanout = 2 + static_cast<int>(rng.NextBelow(3));           // 2..4
  const std::int32_t devices = 2 + static_cast<std::int32_t>(rng.NextBelow(3));
  const bool multi_machine = rng.NextBelow(2) == 1;

  const Dataset ds = SmallDataset(feature_dim, nodes, /*seed=*/GetParam());
  const ClusterSpec cluster = multi_machine
                                  ? MultiMachineCluster(2, devices)
                                  : SingleMachineCluster(2 * devices);
  SCOPED_TRACE("seed=" + std::to_string(GetParam()) + " nodes=" +
               std::to_string(nodes) + " d=" + std::to_string(feature_dim) +
               " h=" + std::to_string(hidden) + " f=" + std::to_string(fanout) +
               " c=" + std::to_string(2 * devices) +
               (multi_machine ? " multi" : " single"));
  ExpectStrategyParity(ds, cluster, {fanout, fanout}, /*batch=*/64, hidden);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyEquivalence,
                         ::testing::Range<std::uint64_t>(1000, 1020),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace apt
