// Engine behaviour tests beyond equivalence: traffic patterns, phase
// accounting, OOM detection, seed assignment, and DDP invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "engine/exec_common.h"
#include "sampling/neighbor_sampler.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace apt {
namespace {

using ::apt::testing::MakeTrainer;
using ::apt::testing::SmallDataset;

TEST(EngineTrafficTest, GdpMovesNoPeerTraffic) {
  // GDP's only inter-device communication is the DDP gradient allreduce.
  const Dataset ds = SmallDataset();
  const ClusterSpec cluster = SingleMachineCluster(4);
  auto trainer = MakeTrainer(ds, cluster, Strategy::kGDP);
  trainer->sim().ResetTraffic();
  trainer->TrainEpoch(0);
  const std::int64_t peer = trainer->sim().TrafficBytes(TrafficClass::kPeerGpu);
  // Exactly the packed-gradient ring volume per step (2(C-1)/C * bytes).
  const std::int64_t param_bytes = trainer->model0().ParamBytes();
  const std::int64_t steps = trainer->StepsPerEpoch();
  EXPECT_LE(peer, steps * 2 * param_bytes);
  EXPECT_GT(peer, 0);
}

TEST(EngineTrafficTest, PartitionedStrategiesMovePeerTraffic) {
  const Dataset ds = SmallDataset();
  const ClusterSpec cluster = SingleMachineCluster(4);
  auto gdp = MakeTrainer(ds, cluster, Strategy::kGDP);
  gdp->sim().ResetTraffic();
  gdp->TrainEpoch(0);
  const std::int64_t gdp_peer = gdp->sim().TrafficBytes(TrafficClass::kPeerGpu);
  for (Strategy s : {Strategy::kNFP, Strategy::kSNP, Strategy::kDNP}) {
    auto t = MakeTrainer(ds, cluster, s);
    t->sim().ResetTraffic();
    t->TrainEpoch(0);
    EXPECT_GT(t->sim().TrafficBytes(TrafficClass::kPeerGpu), gdp_peer) << ToString(s);
  }
}

TEST(EngineTrafficTest, MultiMachineCrossTrafficOnlyWhenDistributed) {
  const Dataset ds = SmallDataset();
  auto single = MakeTrainer(ds, SingleMachineCluster(4), Strategy::kDNP);
  single->sim().ResetTraffic();
  single->TrainEpoch(0);
  EXPECT_EQ(single->sim().TrafficBytes(TrafficClass::kCrossMachine), 0);

  auto multi = MakeTrainer(ds, MultiMachineCluster(2, 2), Strategy::kDNP);
  multi->sim().ResetTraffic();
  multi->TrainEpoch(0);
  EXPECT_GT(multi->sim().TrafficBytes(TrafficClass::kCrossMachine), 0);
}

TEST(EnginePhaseTest, BreakdownIsConsistent) {
  const Dataset ds = SmallDataset();
  for (Strategy s : kAllStrategies) {
    auto t = MakeTrainer(ds, SingleMachineCluster(4), s);
    const EpochStats e = t->TrainEpoch(0);
    EXPECT_GT(e.sample_seconds, 0.0) << ToString(s);
    EXPECT_GT(e.load_seconds, 0.0) << ToString(s);
    EXPECT_GT(e.train_seconds, 0.0) << ToString(s);
    EXPECT_NEAR(e.sim_seconds, e.sample_seconds + e.load_seconds + e.train_seconds,
                1e-12);
  }
}

TEST(EnginePhaseTest, EpochTimeIsReproducible) {
  // Simulated time is a pure function of the configuration.
  const Dataset ds = SmallDataset();
  auto a = MakeTrainer(ds, SingleMachineCluster(4), Strategy::kSNP);
  auto b = MakeTrainer(ds, SingleMachineCluster(4), Strategy::kSNP);
  const EpochStats ea = a->TrainEpoch(0);
  const EpochStats eb = b->TrainEpoch(0);
  EXPECT_DOUBLE_EQ(ea.sim_seconds, eb.sim_seconds);
  EXPECT_DOUBLE_EQ(ea.loss, eb.loss);
}

TEST(EngineMemoryTest, NfpGatPeaksAboveGdpGat) {
  // The paper's Fig 10 OOM observation: NFP+attention materializes a
  // projection row for every layer-1 source of EVERY device's graph.
  const Dataset ds = SmallDataset();
  const ClusterSpec cluster = SingleMachineCluster(4);
  // A large hidden dim makes the per-source projection rows dominate.
  auto gdp = MakeTrainer(ds, cluster, Strategy::kGDP, ModelKind::kGat,
                         /*force_chunked=*/true, 1 << 20, {5, 5}, 128,
                         /*hidden=*/32);
  auto nfp = MakeTrainer(ds, cluster, Strategy::kNFP, ModelKind::kGat,
                         /*force_chunked=*/true, 1 << 20, {5, 5}, 128,
                         /*hidden=*/32);
  gdp->TrainEpoch(0);
  nfp->TrainEpoch(0);
  std::int64_t gdp_peak = 0, nfp_peak = 0;
  for (DeviceId d = 0; d < 4; ++d) {
    gdp_peak = std::max(gdp_peak, gdp->sim().PeakMemory(d));
    nfp_peak = std::max(nfp_peak, nfp->sim().PeakMemory(d));
  }
  EXPECT_GT(nfp_peak, gdp_peak);
}

TEST(EngineMemoryTest, TinyDeviceMemoryTriggersOom) {
  const Dataset ds = SmallDataset();
  ClusterSpec cluster = SingleMachineCluster(4);
  cluster.machines[0].gpu.memory_bytes = 1 << 10;  // 1 KB GPU
  auto t = MakeTrainer(ds, cluster, Strategy::kGDP);
  t->TrainEpoch(0);
  EXPECT_TRUE(t->sim().AnyOom());
}

TEST(EngineAccuracyTest, EvaluationImprovesWithTraining) {
  const Dataset ds = SmallDataset();
  auto t = MakeTrainer(ds, SingleMachineCluster(4), Strategy::kDNP,
                       ModelKind::kSage, /*force_chunked=*/false);
  const double before = t->EvaluateAccuracy(ds.val_nodes);
  for (int e = 0; e < 5; ++e) t->TrainEpoch(e);
  const double after = t->EvaluateAccuracy(ds.val_nodes);
  EXPECT_GT(after, before + 0.1);
}

// ---------------------------------------------------------------------------
// exec_common helpers.
// ---------------------------------------------------------------------------

struct CommonFixture {
  Dataset ds = SmallDataset();
  SimContext sim{SingleMachineCluster(4)};
  Communicator comm{sim};
  std::vector<PartId> partition;
  std::vector<std::unique_ptr<GnnModel>> models;
  EngineCtx ctx;

  CommonFixture() {
    MultilevelPartitioner ml;
    partition = ml.Partition(ds.graph, 4);
    ModelConfig cfg;
    cfg.kind = ModelKind::kSage;
    cfg.num_layers = 2;
    cfg.input_dim = ds.feature_dim();
    cfg.hidden_dim = 8;
    cfg.num_classes = ds.num_classes;
    for (int i = 0; i < 4; ++i) models.push_back(std::make_unique<GnnModel>(cfg));
    ctx.sim = &sim;
    ctx.comm = &comm;
    ctx.dataset = &ds;
    ctx.partition = &partition;
    ctx.models = &models;
    ctx.opts.fanouts = {3, 3};
  }
};

TEST(ExecCommonTest, ChunkedAssignmentBalanced) {
  CommonFixture f;
  f.ctx.opts.seed_assignment = SeedAssignment::kChunked;
  std::vector<NodeId> seeds(103);
  std::iota(seeds.begin(), seeds.end(), NodeId{0});
  const auto per_dev = AssignSeeds(f.ctx, seeds);
  ASSERT_EQ(per_dev.size(), 4u);
  std::size_t total = 0;
  for (const auto& v : per_dev) {
    EXPECT_LE(v.size(), 26u);
    total += v.size();
  }
  EXPECT_EQ(total, 103u);
}

TEST(ExecCommonTest, PartitionAssignmentFollowsOwnership) {
  CommonFixture f;
  f.ctx.opts.seed_assignment = SeedAssignment::kPartition;
  std::vector<NodeId> seeds{0, 1, 2, 500, 1000, 1500, 1999};
  const auto per_dev = AssignSeeds(f.ctx, seeds);
  for (std::size_t d = 0; d < per_dev.size(); ++d) {
    for (NodeId s : per_dev[d]) {
      EXPECT_EQ(f.partition[static_cast<std::size_t>(s)], static_cast<PartId>(d));
    }
  }
}

TEST(ExecCommonTest, GradientAllReduceEqualizesReplicas) {
  CommonFixture f;
  // Perturb each replica's gradients differently.
  for (std::size_t d = 0; d < f.models.size(); ++d) {
    for (Param* p : f.models[d]->Params()) {
      p->grad.Fill(static_cast<float>(d + 1));
    }
  }
  AllReduceGradients(f.ctx);
  // Sum over devices = 1 + 2 + 3 + 4 = 10 for every element, on every device.
  for (auto& m : f.models) {
    for (Param* p : m->Params()) {
      EXPECT_FLOAT_EQ(p->grad.data()[0], 10.0f);
      EXPECT_FLOAT_EQ(p->grad.data()[p->grad.numel() - 1], 10.0f);
    }
  }
}

TEST(ExecCommonTest, SeedLossGradScalesByDeviceShare) {
  CommonFixture f;
  DeviceBatch batch;
  batch.labels = {1, 2};
  Tensor logits(2, static_cast<std::int64_t>(f.ds.num_classes));
  logits.Fill(0.1f);
  Tensor grad;
  const StepStats s = SeedLossAndGrad(f.ctx, 0, batch, logits, /*total_seeds=*/8, grad);
  EXPECT_EQ(s.num_seeds, 2);
  // Loss is weighted by 2/8 of the device-mean loss.
  EXPECT_NEAR(s.loss, std::log(static_cast<double>(f.ds.num_classes)) * 0.25, 1e-5);
  // Gradient rows sum to ~0 per row (softmax property) and are scaled.
  double row_sum = 0.0;
  for (std::int64_t j = 0; j < grad.cols(); ++j) row_sum += grad(0, j);
  EXPECT_NEAR(row_sum, 0.0, 1e-6);
}

TEST(ExecCommonTest, EmptyBatchYieldsZeroStats) {
  CommonFixture f;
  DeviceBatch batch;
  Tensor logits(0, 4);
  Tensor grad;
  const StepStats s = SeedLossAndGrad(f.ctx, 0, batch, logits, 8, grad);
  EXPECT_EQ(s.num_seeds, 0);
  EXPECT_EQ(s.loss, 0.0);
  EXPECT_EQ(grad.rows(), 0);
}

TEST(ExecCommonTest, SampleSecondsGrowWithFanout) {
  CommonFixture f;
  NeighborSampler light(f.ds.graph, {2, 2});
  NeighborSampler heavy(f.ds.graph, {8, 8});
  Rng rng(3);
  std::vector<NodeId> seeds(64);
  std::iota(seeds.begin(), seeds.end(), NodeId{100});
  const SampledBatch lb = light.Sample(seeds, rng);
  const SampledBatch hb = heavy.Sample(seeds, rng);
  EXPECT_GT(SampleSeconds(f.ctx, 0, hb), 2 * SampleSeconds(f.ctx, 0, lb));
}

}  // namespace
}  // namespace apt
