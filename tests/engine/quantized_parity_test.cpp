// Quantized strategy equivalence: with a LOSSY wire codec (bf16 or int8),
// GDP and DNP still train BIT-identical models (loss EXPECT_EQ, MaxParamDiff
// == 0) on identical mini-batches, at every pipeline depth. This is the
// canonical-rounding-order guarantee (DESIGN.md invariant 8): boundary
// tensors are rounded exactly once at the producer, and the layer-0
// parameter gradient is accumulated on a power-of-two grid whose partial
// sums are exact in double — so the reduction is grouping-invariant and the
// two strategies' different row batchings cannot diverge.
//
// NFP/SNP ship dimension slices / partial aggregates instead of whole rows,
// so they keep the float path and match GDP only within a quantization
// tolerance. The identity codec must leave everything bit-identical to a
// codec-free build.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/random.h"
#include "test_util.h"

namespace apt {
namespace {

using ::apt::testing::MakeTrainer;
using ::apt::testing::MaxParamDiff;
using ::apt::testing::SmallDataset;

struct SeedConfig {
  Dataset ds;
  ClusterSpec cluster;
  int fanout;
  std::int64_t hidden;
};

SeedConfig DrawConfig(std::uint64_t seed) {
  Rng rng(seed);
  const NodeId nodes = 300 + static_cast<NodeId>(rng.NextBelow(301));  // 300..600
  const std::int64_t feature_dim = 8 << rng.NextBelow(2);              // 8/16
  const std::int64_t hidden = 4 << rng.NextBelow(2);                   // 4/8
  const int fanout = 2 + static_cast<int>(rng.NextBelow(2));           // 2..3
  const std::int32_t devices = 2 + static_cast<std::int32_t>(rng.NextBelow(2));
  const bool multi_machine = rng.NextBelow(2) == 1;
  SeedConfig cfg{SmallDataset(feature_dim, nodes, seed),
                 multi_machine ? MultiMachineCluster(2, devices)
                               : SingleMachineCluster(2 * devices),
                 fanout, hidden};
  return cfg;
}

class QuantizedParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantizedParity, GdpDnpBitIdenticalUnderLossyCodecs) {
  const SeedConfig cfg = DrawConfig(GetParam());
  for (Codec codec : {Codec::kBf16, Codec::kInt8}) {
    EpochStats ref_stats;
    bool have_ref = false;
    for (int depth : {1, 2, 4}) {
      auto gdp = MakeTrainer(cfg.ds, cfg.cluster, Strategy::kGDP,
                             ModelKind::kSage, /*force_chunked=*/true, 1 << 18,
                             {cfg.fanout, cfg.fanout}, /*batch=*/64, cfg.hidden,
                             /*recovery=*/{}, depth, codec, codec, codec);
      auto dnp = MakeTrainer(cfg.ds, cfg.cluster, Strategy::kDNP,
                             ModelKind::kSage, /*force_chunked=*/true, 1 << 18,
                             {cfg.fanout, cfg.fanout}, /*batch=*/64, cfg.hidden,
                             /*recovery=*/{}, depth, codec, codec, codec);
      const EpochStats gdp_stats = gdp->TrainEpoch(0);
      const EpochStats dnp_stats = dnp->TrainEpoch(0);
      SCOPED_TRACE(std::string(ToString(codec)) + " depth=" +
                   std::to_string(depth));
      EXPECT_EQ(gdp_stats.loss, dnp_stats.loss);
      EXPECT_EQ(MaxParamDiff(gdp->model0(), dnp->model0()), 0.0);
      // Pipelining stays a pure timing-model feature under quantization.
      if (!have_ref) {
        ref_stats = gdp_stats;
        have_ref = true;
      } else {
        EXPECT_EQ(ref_stats.loss, gdp_stats.loss);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantizedParity,
                         ::testing::Range<std::uint64_t>(3000, 3020),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// NFP and SNP keep the standard float backward; their boundary traffic is
// charged compressed bytes but the partial sums are NOT grid-rounded, so
// they track quantized GDP only within a quantization-noise tolerance.
class QuantizedSliceParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantizedSliceParity, NfpSnpTrackGdpWithinTolerance) {
  const SeedConfig cfg = DrawConfig(GetParam());
  for (Codec codec : {Codec::kBf16, Codec::kInt8}) {
    auto ref = MakeTrainer(cfg.ds, cfg.cluster, Strategy::kGDP, ModelKind::kSage,
                           /*force_chunked=*/true, 1 << 18,
                           {cfg.fanout, cfg.fanout}, /*batch=*/64, cfg.hidden,
                           /*recovery=*/{}, 1, codec, codec, codec);
    const EpochStats ref_stats = ref->TrainEpoch(0);
    // int8 injects up to maxabs/254 of absolute error per boundary element;
    // bf16 about 2^-9 relative. The bounds below absorb one epoch of that.
    const double loss_tol = codec == Codec::kInt8 ? 0.15 : 0.02;
    const double param_tol = codec == Codec::kInt8 ? 0.25 : 0.05;
    for (Strategy s : {Strategy::kNFP, Strategy::kSNP}) {
      auto alt = MakeTrainer(cfg.ds, cfg.cluster, s, ModelKind::kSage,
                             /*force_chunked=*/true, 1 << 18,
                             {cfg.fanout, cfg.fanout}, /*batch=*/64, cfg.hidden,
                             /*recovery=*/{}, 1, codec, codec, codec);
      const EpochStats alt_stats = alt->TrainEpoch(0);
      SCOPED_TRACE(std::string(ToString(codec)) + " " + ToString(s));
      EXPECT_NEAR(ref_stats.loss, alt_stats.loss, loss_tol);
      EXPECT_LT(MaxParamDiff(ref->model0(), alt->model0()), param_tol);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantizedSliceParity,
                         ::testing::Range<std::uint64_t>(3000, 3005),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// The zero-compression path: explicitly passing the identity codec must be
// bit-identical to a build that never mentions codecs at all — for every
// strategy. This pins the invariant that codec plumbing is inert when off.
TEST(QuantizedParityIdentity, IdentityCodecIsBitInert) {
  const SeedConfig cfg = DrawConfig(/*seed=*/3042);
  for (Strategy s :
       {Strategy::kGDP, Strategy::kNFP, Strategy::kSNP, Strategy::kDNP}) {
    auto plain = MakeTrainer(cfg.ds, cfg.cluster, s, ModelKind::kSage,
                             /*force_chunked=*/true, 1 << 18,
                             {cfg.fanout, cfg.fanout}, /*batch=*/64, cfg.hidden);
    auto with_codec = MakeTrainer(
        cfg.ds, cfg.cluster, s, ModelKind::kSage, /*force_chunked=*/true,
        1 << 18, {cfg.fanout, cfg.fanout}, /*batch=*/64, cfg.hidden,
        /*recovery=*/{}, 1, Codec::kIdentity, Codec::kIdentity,
        Codec::kIdentity);
    const EpochStats a = plain->TrainEpoch(0);
    const EpochStats b = with_codec->TrainEpoch(0);
    SCOPED_TRACE(ToString(s));
    EXPECT_EQ(a.loss, b.loss);
    EXPECT_EQ(a.wall_seconds, b.wall_seconds);
    EXPECT_EQ(MaxParamDiff(plain->model0(), with_codec->model0()), 0.0);
  }
}

// Lossless gradient compression (delta+bitmask on the allreduce) never
// changes values — only wire bytes — so training is bit-identical to fp32.
TEST(QuantizedParityIdentity, DeltaGradCodecIsLossless) {
  const SeedConfig cfg = DrawConfig(/*seed=*/3043);
  auto plain = MakeTrainer(cfg.ds, cfg.cluster, Strategy::kGDP, ModelKind::kSage,
                           /*force_chunked=*/true, 1 << 18,
                           {cfg.fanout, cfg.fanout}, /*batch=*/64, cfg.hidden);
  auto delta = MakeTrainer(cfg.ds, cfg.cluster, Strategy::kGDP, ModelKind::kSage,
                           /*force_chunked=*/true, 1 << 18,
                           {cfg.fanout, cfg.fanout}, /*batch=*/64, cfg.hidden,
                           /*recovery=*/{}, 1, Codec::kIdentity,
                           Codec::kIdentity, Codec::kDeltaBitmask);
  const EpochStats a = plain->TrainEpoch(0);
  const EpochStats b = delta->TrainEpoch(0);
  EXPECT_EQ(a.loss, b.loss);
  EXPECT_EQ(MaxParamDiff(plain->model0(), delta->model0()), 0.0);
}

// End-task sanity: one epoch under bf16 lands close to the fp32 loss.
TEST(QuantizedParityIdentity, Bf16LossNearFp32) {
  const SeedConfig cfg = DrawConfig(/*seed=*/3044);
  auto fp32 = MakeTrainer(cfg.ds, cfg.cluster, Strategy::kGDP, ModelKind::kSage,
                          /*force_chunked=*/true, 1 << 18,
                          {cfg.fanout, cfg.fanout}, /*batch=*/64, cfg.hidden);
  auto bf16 = MakeTrainer(cfg.ds, cfg.cluster, Strategy::kGDP, ModelKind::kSage,
                          /*force_chunked=*/true, 1 << 18,
                          {cfg.fanout, cfg.fanout}, /*batch=*/64, cfg.hidden,
                          /*recovery=*/{}, 1, Codec::kBf16, Codec::kBf16,
                          Codec::kBf16);
  const EpochStats a = fp32->TrainEpoch(0);
  const EpochStats b = bf16->TrainEpoch(0);
  EXPECT_NEAR(a.loss, b.loss, 0.05);
}

}  // namespace
}  // namespace apt
