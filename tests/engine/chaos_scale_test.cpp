// Chaos-at-scale regression tests: FaultPlan semantics must fire
// identically in scale mode. Fast-forwarded steps replay the probe's tape
// through the REAL charging code, so wire-byte collective-failure
// thresholds, straggler inflation, and barrier poisoning behave exactly as
// in live execution — and a giveup mid-fast-forward still leaves a
// parseable flight dump whose step events carry the fast_forward flag.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "comm/collectives.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "sim/fault.h"
#include "sim/scale.h"
#include "test_util.h"

namespace apt {
namespace {

using ::apt::testing::MakeTrainerWithOptions;
using ::apt::testing::MaxParamDiff;
using ::apt::testing::SmallDataset;

std::int64_t ScaleCounter(const char* name) {
  return obs::Metrics::Global().counter(name).Get();
}

/// Scale-mode options: probe step 0 only, fast-forward the remaining 7
/// steps of the epoch. One step of this config moves ~10KB of collective
/// wire bytes, so an `after_bytes` threshold in the tens of KB fires while
/// the epoch is fast-forwarding, not during the probe.
EngineOptions ScaleChaosOptions(RecoveryOptions recovery = {}) {
  EngineOptions opts;
  opts.strategy = Strategy::kGDP;
  opts.fanouts = {4, 4};
  opts.batch_size_per_device = 8;
  opts.cache_bytes_per_device = 1 << 18;
  opts.seed_assignment = SeedAssignment::kChunked;
  opts.recovery = recovery;
  opts.sim.scale_mode = ScaleMode::kScale;
  opts.scale_sample_period = 1000;
  opts.max_steps_per_epoch = 8;
  return opts;
}

std::unique_ptr<ParallelTrainer> ScaleChaosTrainer(const Dataset& ds,
                                                   const FaultPlan& plan,
                                                   RecoveryOptions recovery = {}) {
  auto trainer = MakeTrainerWithOptions(ds, SingleMachineCluster(4),
                                        ScaleChaosOptions(recovery));
  trainer->sim().InstallFaults(plan);
  return trainer;
}

TEST(ChaosScaleTest, CollectiveFailureDuringFastForwardIsRetriedToTheSameModel) {
  const Dataset ds = SmallDataset(/*feature_dim=*/32, /*nodes=*/8000);
  auto clean = ScaleChaosTrainer(ds, FaultPlan{});

  // Fires a few fast-forwarded steps in (cumulative wire bytes cross the
  // threshold mid-replay). The failed replay consumed the threshold, so the
  // retry replays clean — same semantics as a live retry.
  FaultPlan plan;
  plan.collectives.push_back({.after_bytes = 30000});
  RecoveryOptions recovery;
  recovery.retry_collectives = true;
  const std::int64_t attempts0 = ScaleCounter("retry.collective.attempts");
  auto chaotic = ScaleChaosTrainer(ds, plan, recovery);

  const EpochStats a = clean->TrainEpoch(0);
  const EpochStats b = chaotic->TrainEpoch(0);
  EXPECT_DOUBLE_EQ(a.loss, b.loss);
  EXPECT_EQ(MaxParamDiff(clean->model0(), chaotic->model0()), 0.0);
  EXPECT_GT(b.sim_seconds, a.sim_seconds);  // the failure + backoff cost time
  EXPECT_EQ(b.steps_fast_forwarded, 7);
  EXPECT_GE(ScaleCounter("retry.collective.attempts") - attempts0, 1);
  EXPECT_GE(chaotic->recovery_stats().retries, 1);
  EXPECT_GE(chaotic->sim().FaultsObserved(), 1);
}

TEST(ChaosScaleTest, StragglerInflatesFastForwardedTimeButNotParams) {
  const Dataset ds = SmallDataset(/*feature_dim=*/32, /*nodes=*/8000);
  auto clean = ScaleChaosTrainer(ds, FaultPlan{});

  // Active for the whole run: every fast-forwarded replay must re-evaluate
  // the straggler at the replay-time clocks and charge the inflated time.
  FaultPlan plan;
  plan.stragglers.push_back(
      {.device = 2, .start_s = 0.0, .end_s = 1e9, .slowdown = 4.0});
  auto chaotic = ScaleChaosTrainer(ds, plan);

  const EpochStats a = clean->TrainEpoch(0);
  const EpochStats b = chaotic->TrainEpoch(0);
  EXPECT_DOUBLE_EQ(a.loss, b.loss);
  EXPECT_EQ(MaxParamDiff(clean->model0(), chaotic->model0()), 0.0);
  EXPECT_EQ(b.steps_fast_forwarded, a.steps_fast_forwarded);
  // The inflation must scale with the fast-forwarded fraction, not just the
  // probe: 7 of 8 steps replay under the straggler.
  EXPECT_GT(b.wall_seconds, 1.5 * a.wall_seconds);
}

// FaultPlan parity between scale-off and period-1 scale mode: probing every
// step with recording on must consume thresholds and charge failures at
// bit-identical times.
TEST(ChaosScaleTest, FaultPlanFiresIdenticallyAtPeriodOne) {
  const Dataset ds = SmallDataset(/*feature_dim=*/32, /*nodes=*/8000);
  FaultPlan plan;
  plan.collectives.push_back({.after_bytes = 20000});
  RecoveryOptions recovery;
  recovery.retry_collectives = true;

  EngineOptions scale_opts = ScaleChaosOptions(recovery);
  scale_opts.scale_sample_period = 1;
  auto scale = MakeTrainerWithOptions(ds, SingleMachineCluster(4), scale_opts);
  scale->sim().InstallFaults(plan);

  EngineOptions off_opts = ScaleChaosOptions(recovery);
  off_opts.sim.scale_mode = ScaleMode::kOff;
  auto off = MakeTrainerWithOptions(ds, SingleMachineCluster(4), off_opts);
  off->sim().InstallFaults(plan);

  const EpochStats s = scale->TrainEpoch(0);
  const EpochStats o = off->TrainEpoch(0);
  EXPECT_EQ(s.loss, o.loss);
  EXPECT_EQ(s.wall_seconds, o.wall_seconds);
  EXPECT_EQ(s.sim_seconds, o.sim_seconds);
  EXPECT_EQ(MaxParamDiff(scale->model0(), off->model0()), 0.0);
  EXPECT_EQ(scale->recovery_stats().retries, off->recovery_stats().retries);
  EXPECT_EQ(scale->sim().FaultsObserved(), off->sim().FaultsObserved());
}

TEST(ChaosScaleTest, GiveupDuringFastForwardLeavesAParseableFlightDump) {
  const std::string dir = ::testing::TempDir() + "chaos_scale_flight";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  obs::Flight().SetDumpDir(dir);
  obs::Flight().Clear();

  const Dataset ds = SmallDataset(/*feature_dim=*/32, /*nodes=*/8000);
  FaultPlan plan;
  plan.collectives.push_back({.after_bytes = 30000});
  // Retries disabled: the first mid-fast-forward failure gives up and dumps.
  auto chaotic = ScaleChaosTrainer(ds, plan);
  EXPECT_THROW(chaotic->TrainEpoch(0), CollectiveError);

  std::vector<std::string> dumps;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("flight_", 0) == 0) dumps.push_back(entry.path().string());
  }
  ASSERT_EQ(dumps.size(), 1u);

  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::ParseJsonFile(dumps[0], &doc, &error)) << error;
  ASSERT_NE(doc.StrOrNull("reason"), nullptr);
  EXPECT_NE(doc.StrOrNull("reason")->find("retry budget exhausted"),
            std::string::npos);

  // The dump must tell the scale-mode story: the failing collective AND
  // completed fast-forwarded steps (flagged fast_forward=1) before it.
  const obs::JsonValue* events = doc.Find("events");
  ASSERT_NE(events, nullptr);
  bool saw_fail = false, saw_fast_forwarded_step = false;
  for (const obs::JsonValue& e : events->arr) {
    const std::string* kind = e.StrOrNull("kind");
    if (kind == nullptr) continue;
    if (*kind == "collective.fail") saw_fail = true;
    if (*kind == "step") {
      const obs::JsonValue* args = e.Find("args");
      if (args != nullptr && args->NumOr("fast_forward", 0.0) == 1.0) {
        saw_fast_forwarded_step = true;
      }
    }
  }
  EXPECT_TRUE(saw_fail);
  EXPECT_TRUE(saw_fast_forwarded_step);

  std::filesystem::remove_all(dir);
  obs::Flight().SetDumpDir(::testing::TempDir());
}

}  // namespace
}  // namespace apt
