// Property-style equivalence sweep: the strategy-equivalence invariant must
// hold across device counts, layer counts, feature dims, and cluster shapes
// — not just the single configuration of equivalence_test.cpp.
#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "test_util.h"

namespace apt {
namespace {

using ::apt::testing::MakeTrainer;
using ::apt::testing::MaxParamDiff;
using ::apt::testing::SmallDataset;

struct SweepParam {
  std::int32_t devices;
  std::int32_t machines;  // 1 => single machine
  int layers;
  std::int64_t feature_dim;

  std::string Name() const {
    return "c" + std::to_string(devices) + "_m" + std::to_string(machines) + "_l" +
           std::to_string(layers) + "_d" + std::to_string(feature_dim);
  }
};

class EquivalenceSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EquivalenceSweep, AllStrategiesMatchGdp) {
  const SweepParam p = GetParam();
  const Dataset ds = SmallDataset(p.feature_dim, /*nodes=*/1500);
  const ClusterSpec cluster =
      p.machines == 1 ? SingleMachineCluster(p.devices)
                      : MultiMachineCluster(p.machines, p.devices / p.machines);
  std::vector<int> fanouts(static_cast<std::size_t>(p.layers), 4);
  auto ref = MakeTrainer(ds, cluster, Strategy::kGDP, ModelKind::kSage,
                         /*force_chunked=*/true, 1 << 18, fanouts, 64);
  const EpochStats ref_stats = ref->TrainEpoch(0);
  for (Strategy s : {Strategy::kNFP, Strategy::kSNP, Strategy::kDNP}) {
    auto alt = MakeTrainer(ds, cluster, s, ModelKind::kSage,
                           /*force_chunked=*/true, 1 << 18, fanouts, 64);
    const EpochStats alt_stats = alt->TrainEpoch(0);
    EXPECT_NEAR(ref_stats.loss, alt_stats.loss, 1e-3) << ToString(s);
    EXPECT_LT(MaxParamDiff(ref->model0(), alt->model0()), 2e-3) << ToString(s);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EquivalenceSweep,
    ::testing::Values(SweepParam{2, 1, 2, 32},   // minimal device count
                      SweepParam{3, 1, 2, 32},   // odd C: uneven dim slices
                      SweepParam{8, 1, 2, 32},   // wide single machine
                      SweepParam{4, 2, 2, 32},   // cross-machine collectives
                      SweepParam{4, 1, 1, 32},   // single layer (= layer 0 only)
                      SweepParam{4, 1, 3, 32},   // deep stack
                      SweepParam{4, 1, 2, 13}),  // dim not divisible by C
    [](const ::testing::TestParamInfo<SweepParam>& info) { return info.param.Name(); });

}  // namespace
}  // namespace apt
