// Chaos regression tests: seeded fault scenarios (straggler GPU, flapping
// link, mid-epoch collective failure) against the full training stack.
// The invariants, per scenario:
//   (a) training completes (retry/backoff absorbs collective failures),
//   (b) the learned model is IDENTICAL to the fault-free run — faults
//       inflate simulated time, never the arithmetic,
//   (c) fault.* / retry.* observability counters record the activity,
//   (d) the whole run is bit-reproducible for a fixed seed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "apt/resilience.h"
#include "comm/collectives.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "test_util.h"

namespace apt {
namespace {

using ::apt::testing::MakeTrainer;
using ::apt::testing::MaxParamDiff;
using ::apt::testing::SmallDataset;

// Several scenarios below let a FaultError escape the trainer, which dumps a
// flight recording; point those dumps at the test temp dir instead of cwd.
class FlightDumpDirEnvironment : public ::testing::Environment {
 public:
  void SetUp() override { obs::Flight().SetDumpDir(::testing::TempDir()); }
};
const ::testing::Environment* const kFlightDumpDirEnvironment =
    ::testing::AddGlobalTestEnvironment(new FlightDumpDirEnvironment);

std::int64_t Counter(const char* name) {
  return obs::Metrics::Global().counter(name).Get();
}

/// A trainer over the shared small dataset with the given fault plan
/// installed (chunked seeds so runs with different plans stay comparable).
std::unique_ptr<ParallelTrainer> ChaosTrainer(const Dataset& ds,
                                              const FaultPlan& plan,
                                              RecoveryOptions recovery = {}) {
  auto trainer = MakeTrainer(ds, SingleMachineCluster(4), Strategy::kGDP,
                             ModelKind::kSage, /*force_chunked=*/true, 1 << 20,
                             {5, 5}, 128, 0, recovery);
  trainer->sim().InstallFaults(plan);
  return trainer;
}

TEST(ChaosTest, StragglerInflatesTimeButNotLoss) {
  const Dataset ds = SmallDataset();
  auto clean = ChaosTrainer(ds, FaultPlan{});

  FaultPlan plan;
  plan.stragglers.push_back(
      {.device = 1, .start_s = 0.0, .end_s = 1e9, .slowdown = 5.0});
  const std::int64_t observed0 = Counter("fault.straggler.observed");
  auto chaotic = ChaosTrainer(ds, plan);

  const EpochStats a = clean->TrainEpoch(0);
  const EpochStats b = chaotic->TrainEpoch(0);
  EXPECT_DOUBLE_EQ(a.loss, b.loss);  // arithmetic untouched
  EXPECT_EQ(MaxParamDiff(clean->model0(), chaotic->model0()), 0.0);
  EXPECT_GT(b.sim_seconds, a.sim_seconds);  // the straggler costs time
  EXPECT_GE(Counter("fault.straggler.observed") - observed0, 1);
  EXPECT_GE(chaotic->sim().FaultsObserved(), 1);
}

TEST(ChaosTest, FlappingLinkInflatesTimeButNotLoss) {
  const Dataset ds = SmallDataset();
  auto clean = ChaosTrainer(ds, FaultPlan{});

  // Heavily degraded peer-GPU link, flapping at 0.1 ms with 90% duty: hits
  // the ring allreduce and peer-cache reads many times per epoch.
  FaultPlan plan;
  plan.links.push_back({.link_class = static_cast<int>(TrafficClass::kPeerGpu),
                        .start_s = 0.0,
                        .end_s = 1e9,
                        .bandwidth_factor = 0.05,
                        .extra_latency_s = 0.0,
                        .flap_period_s = 1e-4,
                        .flap_duty = 0.9});
  const std::int64_t observed0 = Counter("fault.link.observed");
  auto chaotic = ChaosTrainer(ds, plan);

  const EpochStats a = clean->TrainEpoch(0);
  const EpochStats b = chaotic->TrainEpoch(0);
  EXPECT_DOUBLE_EQ(a.loss, b.loss);
  EXPECT_EQ(MaxParamDiff(clean->model0(), chaotic->model0()), 0.0);
  EXPECT_GT(b.sim_seconds, a.sim_seconds);
  EXPECT_GE(Counter("fault.link.observed") - observed0, 1);
}

TEST(ChaosTest, CollectiveFailureIsRetriedToTheSameModel) {
  const Dataset ds = SmallDataset();
  auto clean = ChaosTrainer(ds, FaultPlan{});

  // One training step moves ~7.4KB of allreduce wire bytes: the first fault
  // fires on the initial attempt, the second mid-way through its retry, so
  // a single step absorbs two consecutive failures.
  FaultPlan plan;
  plan.collectives.push_back({.after_bytes = 1000});
  plan.collectives.push_back({.after_bytes = 8000});
  RecoveryOptions recovery;
  recovery.retry_collectives = true;
  const std::int64_t attempts0 = Counter("retry.collective.attempts");
  const std::int64_t injected0 = Counter("fault.collective.injected");
  auto chaotic = ChaosTrainer(ds, plan, recovery);

  const EpochStats a = clean->TrainEpoch(0);
  const EpochStats b = chaotic->TrainEpoch(0);
  // Retried steps re-fork the same rng stream: the run is bit-identical to
  // the undisturbed one, only slower (failed fraction + backoff).
  EXPECT_DOUBLE_EQ(a.loss, b.loss);
  EXPECT_EQ(MaxParamDiff(clean->model0(), chaotic->model0()), 0.0);
  EXPECT_GT(b.sim_seconds, a.sim_seconds);

  const RecoveryStats& rs = chaotic->recovery_stats();
  EXPECT_EQ(rs.collective_failures, 2);
  EXPECT_EQ(rs.retries, 2);
  EXPECT_EQ(rs.giveups, 0);
  EXPECT_EQ(Counter("retry.collective.attempts") - attempts0, 2);
  EXPECT_EQ(Counter("fault.collective.injected") - injected0, 2);
}

TEST(ChaosTest, CollectiveFailureWithoutRetryPropagates) {
  const Dataset ds = SmallDataset();
  FaultPlan plan;
  plan.collectives.push_back({.after_bytes = 0});
  const std::int64_t giveups0 = Counter("retry.collective.giveups");
  auto chaotic = ChaosTrainer(ds, plan);  // retries disabled by default
  EXPECT_THROW(chaotic->TrainEpoch(0), CollectiveError);
  EXPECT_EQ(Counter("retry.collective.giveups") - giveups0, 1);
  EXPECT_EQ(chaotic->recovery_stats().giveups, 1);
}

TEST(ChaosTest, RetryBudgetExhaustionRethrows) {
  const Dataset ds = SmallDataset();
  // More consecutive faults on the same step than the retry budget allows:
  // thresholds at 0 bytes fire on the first collective of every attempt.
  FaultPlan plan;
  for (int i = 0; i < 5; ++i) plan.collectives.push_back({.after_bytes = 0});
  RecoveryOptions recovery;
  recovery.retry_collectives = true;
  recovery.max_retries_per_step = 3;
  auto chaotic = ChaosTrainer(ds, plan, recovery);
  EXPECT_THROW(chaotic->TrainEpoch(0), CollectiveError);
  const RecoveryStats& rs = chaotic->recovery_stats();
  EXPECT_EQ(rs.retries, 3);
  EXPECT_EQ(rs.giveups, 1);
}

TEST(ChaosTest, ExhaustedRetryBudgetLeavesAFlightRecording) {
  // The ISSUE's flight-recorder acceptance scenario: a chaos run whose retry
  // budget is exhausted must leave a parseable flight_*.json containing the
  // failing collective's event — WITHOUT tracing ever being enabled.
  const std::string dir = ::testing::TempDir() + "chaos_flight";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  obs::Flight().SetDumpDir(dir);
  obs::Flight().Clear();

  const Dataset ds = SmallDataset();
  FaultPlan plan;
  for (int i = 0; i < 5; ++i) plan.collectives.push_back({.after_bytes = 0});
  RecoveryOptions recovery;
  recovery.retry_collectives = true;
  recovery.max_retries_per_step = 3;
  auto chaotic = ChaosTrainer(ds, plan, recovery);
  EXPECT_THROW(chaotic->TrainEpoch(0), CollectiveError);

  std::vector<std::string> dumps;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("flight_", 0) == 0) dumps.push_back(entry.path().string());
  }
  ASSERT_EQ(dumps.size(), 1u);

  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::ParseJsonFile(dumps[0], &doc, &error)) << error;
  EXPECT_DOUBLE_EQ(doc.NumOr("schema_version", 0.0),
                   static_cast<double>(obs::kObsSchemaVersion));
  ASSERT_NE(doc.StrOrNull("reason"), nullptr);
  EXPECT_NE(doc.StrOrNull("reason")->find("retry budget exhausted"),
            std::string::npos);

  // The recording must tell the failure story: the failing collective (with
  // its wire bytes and traffic class), the retries, and the final giveup.
  const obs::JsonValue* events = doc.Find("events");
  ASSERT_NE(events, nullptr);
  bool saw_fail = false, saw_retry = false, saw_giveup = false;
  for (const obs::JsonValue& e : events->arr) {
    const std::string* kind = e.StrOrNull("kind");
    if (kind == nullptr) continue;
    if (*kind == "collective.fail") {
      const obs::JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_GE(args->NumOr("bytes", -1.0), 0.0);
      EXPECT_NE(args->StrOrNull("class"), nullptr);
      saw_fail = true;
    }
    if (*kind == "retry") saw_retry = true;
    if (*kind == "giveup") saw_giveup = true;
  }
  EXPECT_TRUE(saw_fail);
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(saw_giveup);

  std::filesystem::remove_all(dir);
  obs::Flight().SetDumpDir(::testing::TempDir());
}

TEST(ChaosTest, StepTimeoutsAreDetected) {
  const Dataset ds = SmallDataset();
  RecoveryOptions recovery;
  recovery.step_timeout_s = 1e-12;  // every step exceeds this
  const std::int64_t timeouts0 = Counter("fault.step_timeouts");
  auto trainer = ChaosTrainer(ds, FaultPlan{}, recovery);
  trainer->TrainEpoch(0);
  EXPECT_EQ(trainer->recovery_stats().step_timeouts, trainer->StepsPerEpoch());
  EXPECT_EQ(Counter("fault.step_timeouts") - timeouts0, trainer->StepsPerEpoch());
}

TEST(ChaosTest, ZeroFaultInjectionHasZeroOverhead) {
  // The acceptance bar for the whole subsystem: with no faults installed
  // (or an empty plan), every simulated quantity is BIT-identical to the
  // pre-fault-layer arithmetic — not "within 1%", exactly equal.
  const Dataset ds = SmallDataset();
  auto plain = MakeTrainer(ds, SingleMachineCluster(4), Strategy::kGDP);
  auto empty_plan = ChaosTrainer(ds, FaultPlan{});
  const EpochStats a = plain->TrainEpoch(0);
  const EpochStats b = empty_plan->TrainEpoch(0);
  EXPECT_DOUBLE_EQ(a.loss, b.loss);
  EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_DOUBLE_EQ(a.wall_seconds, b.wall_seconds);
  EXPECT_DOUBLE_EQ(a.comm_train_seconds, b.comm_train_seconds);
  EXPECT_EQ(MaxParamDiff(plain->model0(), empty_plan->model0()), 0.0);
}

TEST(ChaosTest, SeededChaosIsBitReproducibleAndTraced) {
  const Dataset ds = SmallDataset();
  // Default seed 7; override with APT_CHAOS_SEED=<n> to explore other
  // schedules (any seed must satisfy the same invariants).
  std::uint64_t seed = 7;
  if (const char* env = std::getenv("APT_CHAOS_SEED")) {
    seed = static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  }
  SCOPED_TRACE("chaos seed " + std::to_string(seed));
  FaultPlan plan = RandomFaultPlan(seed, SingleMachineCluster(4),
                                   /*horizon_s=*/1.0, /*intensity=*/1.0);
  // Random fault windows may fall beyond this tiny epoch's simulated span;
  // pin one always-on straggler so a fault.* span is guaranteed to appear.
  plan.stragglers.push_back(
      {.device = 0, .start_s = 0.0, .end_s = 1e9, .slowdown = 2.0});
  RecoveryOptions recovery;
  recovery.retry_collectives = true;

  obs::SetTracingEnabled(true);
  obs::Tracer::Global().Clear();
  auto run1 = ChaosTrainer(ds, plan, recovery);
  const EpochStats s1 = run1->TrainEpoch(0);
  const std::vector<obs::TraceEvent> events = obs::Tracer::Global().Drain();
  obs::SetTracingEnabled(false);

  // The Perfetto stream must carry the fault story: fault.* slices in the
  // "fault" category on the simulated lanes.
  bool saw_fault_span = false;
  for (const obs::TraceEvent& e : events) {
    if (e.cat != nullptr && std::string(e.cat) == "fault" && e.name != nullptr &&
        std::string(e.name).rfind("fault.", 0) == 0) {
      saw_fault_span = true;
      break;
    }
  }
  EXPECT_TRUE(saw_fault_span);

  auto run2 = ChaosTrainer(ds, plan, recovery);
  const EpochStats s2 = run2->TrainEpoch(0);
  EXPECT_DOUBLE_EQ(s1.loss, s2.loss);
  EXPECT_DOUBLE_EQ(s1.sim_seconds, s2.sim_seconds);
  EXPECT_DOUBLE_EQ(s1.wall_seconds, s2.wall_seconds);
  EXPECT_EQ(MaxParamDiff(run1->model0(), run2->model0()), 0.0);
  EXPECT_EQ(run1->recovery_stats().retries, run2->recovery_stats().retries);
}

TEST(ChaosTest, PipelinedStepRetryIsBitIdenticalAfterMidPipelineFailure) {
  // Pipelined execution changes WHEN charges land (capture + overlapped
  // replay), not WHAT runs: a collective fault that unwinds mid-pipeline
  // must replay the partial tape, back off, re-fork the SAME per-step rng
  // stream, and leave the model bit-identical to the undisturbed pipelined
  // run — and to the serial engine.
  const Dataset ds = SmallDataset();
  const ClusterSpec cluster = SingleMachineCluster(4);
  // NFP keeps its broadcast + gathers + loss allreduce INSIDE the pipelined
  // step scope, so the injected faults genuinely strike mid-pipeline.
  auto piped = [&](const FaultPlan& plan, RecoveryOptions recovery = {}) {
    auto t = MakeTrainer(ds, cluster, Strategy::kNFP, ModelKind::kSage,
                         /*force_chunked=*/true, 1 << 20, {5, 5}, 128, 0,
                         recovery, /*pipeline_depth=*/4);
    t->sim().InstallFaults(plan);
    return t;
  };
  auto serial = MakeTrainer(ds, cluster, Strategy::kNFP);
  auto clean = piped(FaultPlan{});

  FaultPlan plan;
  plan.collectives.push_back({.after_bytes = 1000});
  plan.collectives.push_back({.after_bytes = 50000});
  RecoveryOptions recovery;
  recovery.retry_collectives = true;
  auto chaotic = piped(plan, recovery);

  const EpochStats s0 = serial->TrainEpoch(0);
  const EpochStats a = clean->TrainEpoch(0);
  const EpochStats b = chaotic->TrainEpoch(0);
  EXPECT_DOUBLE_EQ(a.loss, b.loss);
  EXPECT_DOUBLE_EQ(s0.loss, b.loss);
  EXPECT_EQ(MaxParamDiff(clean->model0(), chaotic->model0()), 0.0);
  EXPECT_EQ(MaxParamDiff(serial->model0(), chaotic->model0()), 0.0);
  EXPECT_GT(b.sim_seconds, a.sim_seconds);  // failed fraction + backoff

  const RecoveryStats& rs = chaotic->recovery_stats();
  EXPECT_EQ(rs.collective_failures, 2);
  EXPECT_EQ(rs.retries, 2);
  EXPECT_EQ(rs.giveups, 0);
}

TEST(ChaosTest, PipelinedGiveupFlightDumpRecordsInFlightMicrobatch) {
  // When a pipelined run's retry budget is exhausted, the post-mortem
  // flight dump must pin down WHICH micro-batch's collective was in flight
  // ("microbatch" arg on every collective.fail event, in [0, depth-1]).
  const std::string dir = ::testing::TempDir() + "pipeline_flight";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  obs::Flight().SetDumpDir(dir);
  obs::Flight().Clear();

  const Dataset ds = SmallDataset();
  constexpr int kDepth = 4;
  FaultPlan plan;
  for (int i = 0; i < 5; ++i) plan.collectives.push_back({.after_bytes = 0});
  RecoveryOptions recovery;
  recovery.retry_collectives = true;
  recovery.max_retries_per_step = 3;
  auto chaotic = MakeTrainer(ds, SingleMachineCluster(4), Strategy::kNFP,
                             ModelKind::kSage, /*force_chunked=*/true, 1 << 20,
                             {5, 5}, 128, 0, recovery, kDepth);
  chaotic->sim().InstallFaults(plan);
  EXPECT_THROW(chaotic->TrainEpoch(0), CollectiveError);

  std::vector<std::string> dumps;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("flight_", 0) == 0) dumps.push_back(entry.path().string());
  }
  ASSERT_EQ(dumps.size(), 1u);

  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::ParseJsonFile(dumps[0], &doc, &error)) << error;
  const obs::JsonValue* events = doc.Find("events");
  ASSERT_NE(events, nullptr);
  int fails_seen = 0;
  for (const obs::JsonValue& e : events->arr) {
    const std::string* kind = e.StrOrNull("kind");
    if (kind == nullptr || *kind != "collective.fail") continue;
    const obs::JsonValue* args = e.Find("args");
    ASSERT_NE(args, nullptr);
    const double mb = args->NumOr("microbatch", -1.0);
    EXPECT_GE(mb, 0.0);
    EXPECT_LE(mb, static_cast<double>(kDepth - 1));
    ++fails_seen;
  }
  EXPECT_GE(fails_seen, 1);

  std::filesystem::remove_all(dir);
  obs::Flight().SetDumpDir(::testing::TempDir());
}

TEST(ChaosTest, CollectiveFaultThresholdsCountWireBytesNotLogical) {
  // "Fail after N bytes" means bytes that actually crossed links. With a
  // bf16 gradient codec a 400-logical-byte allreduce puts only 200 bytes on
  // the wire (ring factor 2*(c-1)/c = 1 at c = 2), so a 300-byte threshold
  // must NOT fire on the first call — it would under logical counting — and
  // must fire once the second call's wire bytes push the total past it.
  SimContext sim(SingleMachineCluster(2));
  FaultPlan plan;
  plan.collectives.push_back({.after_bytes = 300});
  sim.InstallFaults(plan);
  Communicator comm(sim);
  comm.set_grad_codec(Codec::kBf16);

  const auto reduce = [&] {
    std::vector<Tensor> bufs(2, Tensor(1, 100));
    for (Tensor& t : bufs) t.Fill(1.0f);
    std::vector<Tensor*> ptrs{&bufs[0], &bufs[1]};
    comm.AllReduceSum(ptrs, Phase::kTrain, /*gradient_sync=*/true);
  };
  EXPECT_NO_THROW(reduce());  // 200 wire bytes < 300
  EXPECT_THROW(reduce(), CollectiveError);  // cumulative 400 > 300
}

TEST(ChaosTest, ChaosWithWireCodecsIsRetriedAndBitReproducible) {
  // The full chaos invariants with compression on: collective faults (whose
  // thresholds now see compressed bytes) are retried to the SAME model as a
  // fault-free quantized run, and the whole run is bit-reproducible.
  const Dataset ds = SmallDataset();
  const auto quantized = [&](const FaultPlan& plan, RecoveryOptions recovery = {}) {
    auto t = MakeTrainer(ds, SingleMachineCluster(4), Strategy::kGDP,
                         ModelKind::kSage, /*force_chunked=*/true, 1 << 20,
                         {5, 5}, 128, 0, recovery, /*pipeline_depth=*/1,
                         Codec::kBf16, Codec::kBf16, Codec::kBf16);
    t->sim().InstallFaults(plan);
    return t;
  };
  auto clean = quantized(FaultPlan{});

  FaultPlan plan;
  plan.collectives.push_back({.after_bytes = 1000});
  plan.collectives.push_back({.after_bytes = 8000});
  RecoveryOptions recovery;
  recovery.retry_collectives = true;
  auto chaotic = quantized(plan, recovery);

  const EpochStats a = clean->TrainEpoch(0);
  const EpochStats b = chaotic->TrainEpoch(0);
  EXPECT_DOUBLE_EQ(a.loss, b.loss);
  EXPECT_EQ(MaxParamDiff(clean->model0(), chaotic->model0()), 0.0);
  EXPECT_GT(b.sim_seconds, a.sim_seconds);
  EXPECT_GE(chaotic->recovery_stats().collective_failures, 1);
  EXPECT_EQ(chaotic->recovery_stats().giveups, 0);

  auto chaotic2 = quantized(plan, recovery);
  const EpochStats b2 = chaotic2->TrainEpoch(0);
  EXPECT_DOUBLE_EQ(b.loss, b2.loss);
  EXPECT_DOUBLE_EQ(b.sim_seconds, b2.sim_seconds);
  EXPECT_EQ(MaxParamDiff(chaotic->model0(), chaotic2->model0()), 0.0);
  EXPECT_EQ(chaotic->recovery_stats().retries, chaotic2->recovery_stats().retries);
}

TEST(ChaosTest, ResilientRunnerSurvivesAndReplans) {
  // The ISSUE's acceptance scenario: straggler + flapping link + a mid-run
  // collective failure, driven through the full Plan -> Run workflow. The
  // run must complete, re-plan at least once (re-confirming or switching),
  // keep the loss on the fault-free trajectory, and be bit-reproducible.
  const Dataset ds = SmallDataset();
  const ClusterSpec cluster = SingleMachineCluster(4);
  ModelConfig model;
  model.kind = ModelKind::kSage;
  model.num_layers = 2;
  model.hidden_dim = 16;
  EngineOptions opts;
  opts.fanouts = {3, 3};
  opts.batch_size_per_device = 64;
  opts.cache_bytes_per_device = 1 << 20;

  ResilienceOptions chaos;
  chaos.faults.stragglers.push_back(
      {.device = 0, .start_s = 0.0, .end_s = 1e9, .slowdown = 3.0});
  chaos.faults.links.push_back(
      {.link_class = static_cast<int>(TrafficClass::kPeerGpu),
       .start_s = 0.0,
       .end_s = 1e9,
       .bandwidth_factor = 0.2,
       .extra_latency_s = 0.0,
       .flap_period_s = 1e-4,
       .flap_duty = 0.5});
  chaos.faults.collectives.push_back({.after_bytes = 2000});
  chaos.recovery.retry_collectives = true;

  const std::int64_t replans0 = Counter("replan.count");
  AptSystem faulty(ds, cluster, model, opts);
  ResilientRunner runner(faulty, chaos);
  const ResilienceReport report = runner.Run(3);

  ASSERT_EQ(report.epochs.size(), 3u);
  ASSERT_EQ(report.strategy_per_epoch.size(), 3u);
  EXPECT_GE(report.replans, 1);  // degradation was seen and re-evaluated
  EXPECT_GE(Counter("replan.count") - replans0, 1);
  EXPECT_GE(report.recovery.collective_failures, 1);
  EXPECT_GE(report.recovery.retries, 1);
  EXPECT_EQ(report.recovery.giveups, 0);
  EXPECT_GT(report.final_sim_seconds, 0.0);

  // Loss continuity: the chaos run's learning curve tracks the fault-free
  // run (bit-identical without a strategy switch; within the Fig 6 parity
  // tolerance if the re-planner switched strategies mid-run).
  AptSystem fault_free(ds, cluster, model, opts);
  const std::vector<EpochStats> clean = fault_free.Run(3);
  for (std::size_t e = 0; e < clean.size(); ++e) {
    EXPECT_NEAR(clean[e].loss, report.epochs[e].loss, 5e-3) << "epoch " << e;
  }

  // Bit-reproducibility of the entire chaotic workflow under the same seed.
  AptSystem faulty2(ds, cluster, model, opts);
  ResilientRunner runner2(faulty2, chaos);
  const ResilienceReport report2 = runner2.Run(3);
  ASSERT_EQ(report2.epochs.size(), report.epochs.size());
  for (std::size_t e = 0; e < report.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(report.epochs[e].loss, report2.epochs[e].loss);
    EXPECT_DOUBLE_EQ(report.epochs[e].sim_seconds, report2.epochs[e].sim_seconds);
    EXPECT_EQ(report.strategy_per_epoch[e], report2.strategy_per_epoch[e]);
  }
  EXPECT_EQ(report.replans, report2.replans);
  EXPECT_EQ(report.switches, report2.switches);
  EXPECT_DOUBLE_EQ(report.final_sim_seconds, report2.final_sim_seconds);
}

TEST(ChaosTest, SloWatchdogTriggersReplanWithoutFaultSignal) {
  // A silent straggler: device 0 runs 3x slow but nothing ERRORS — no
  // collective failure, no retry, no step timeout — so the fault-signal
  // re-plan path is blind (and disabled below to prove it). The runner's
  // SLO watchdog must still see the drift in the windowed per-device
  // busy-skew telemetry and force a re-plan evaluation, bit-reproducibly.
  const Dataset ds = SmallDataset();
  const ClusterSpec cluster = SingleMachineCluster(4);
  ModelConfig model;
  model.kind = ModelKind::kSage;
  model.num_layers = 2;
  model.hidden_dim = 16;
  EngineOptions opts;
  opts.fanouts = {3, 3};
  opts.batch_size_per_device = 64;
  opts.cache_bytes_per_device = 1 << 20;
  // Steps are ~100us of simulated time at this scale; windows must be
  // narrower than an epoch for skew to close mid-run.
  opts.telemetry_window_s = 1e-4;

  ResilienceOptions chaos;
  // 8x: only the device-side share of busy time scales with the slowdown
  // (host sampling does not), so 8x compute puts the windowed busy skew at
  // ~2.1x — comfortably past the default 1.5x bound.
  chaos.faults.stragglers.push_back(
      {.device = 0, .start_s = 0.0, .end_s = 1e9, .slowdown = 8.0});
  chaos.replan_on_degradation = false;  // ONLY the SLO path may re-plan
  chaos.recovery.retry_collectives = true;
  // chaos.slo_rules stays empty -> default busy-skew < 1.5x rule.

  const auto run_once = [&]() {
    obs::Metrics::ResetForTest();  // fresh telemetry windows + counters
    AptSystem system(ds, cluster, model, opts);
    ResilientRunner runner(system, chaos);
    return runner.Run(3);
  };

  const ResilienceReport report = run_once();
  ASSERT_EQ(report.epochs.size(), 3u);
  EXPECT_GE(report.replans, 1);  // the watchdog forced an evaluation
  EXPECT_GE(Counter("replan.slo_trigger"), 1);
  EXPECT_GE(Counter("slo.violations"), 1);
  // ...and it truly fired before any fault/timeout signal existed.
  EXPECT_EQ(report.recovery.collective_failures, 0);
  EXPECT_EQ(report.recovery.retries, 0);
  EXPECT_EQ(report.recovery.step_timeouts, 0);

  // Bit-reproducible under the fixed chaos seed: same windows close at the
  // same virtual instants, same violations fire, same re-plan decisions.
  const ResilienceReport report2 = run_once();
  ASSERT_EQ(report2.epochs.size(), report.epochs.size());
  for (std::size_t e = 0; e < report.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(report.epochs[e].loss, report2.epochs[e].loss);
    EXPECT_DOUBLE_EQ(report.epochs[e].sim_seconds, report2.epochs[e].sim_seconds);
    EXPECT_EQ(report.strategy_per_epoch[e], report2.strategy_per_epoch[e]);
  }
  EXPECT_EQ(report.replans, report2.replans);
  EXPECT_EQ(report.switches, report2.switches);
  EXPECT_DOUBLE_EQ(report.final_sim_seconds, report2.final_sim_seconds);
}

}  // namespace
}  // namespace apt
