// Sampled-execution parity suite for scale mode (DESIGN.md "Scale mode").
//
// The invariant under test: fast-forwarding never changes trained
// parameters or charged seconds of the steps that DO run. Probe steps
// consume sequential mini-batch indices and fork their own rng streams, so
// probe j of a scale run is bit-identical to step j of an unsampled run;
// fast-forwarded steps replay the last probe's step tape through the
// virtual clocks, so timing stays exact-model while loss/accuracy become
// EXTRAPOLATED (flagged via EpochStats::steps_fast_forwarded).
#include <gtest/gtest.h>

#include <cmath>

#include "engine/trainer.h"
#include "sim/scale.h"
#include "test_util.h"

namespace apt {
namespace {

using ::apt::testing::MakeTrainerWithOptions;
using ::apt::testing::MaxParamDiff;
using ::apt::testing::SmallDataset;

EngineOptions BaseOptions(Strategy strategy, int pipeline_depth = 1) {
  EngineOptions opts;
  opts.strategy = strategy;
  opts.fanouts = {4, 4};
  opts.batch_size_per_device = 8;
  opts.cache_bytes_per_device = 1 << 18;
  opts.seed_assignment = EngineOptions::DefaultAssignment(strategy);
  opts.pipeline_depth = pipeline_depth;
  return opts;
}

constexpr Strategy kAllStrategies[] = {Strategy::kGDP, Strategy::kNFP,
                                       Strategy::kSNP, Strategy::kDNP};

// Probe steps must be BIT-identical to the same steps of an unsampled run:
// a scale run with period 4 over 16 steps executes probes 0..3, which see
// exactly the mini-batches and rng streams of steps 0..3 of a scale-off run
// capped at 4 steps. Trained parameters therefore match exactly.
TEST(ScaleSampledTest, ProbesAreBitIdenticalToUnsampledRun) {
  const Dataset ds = SmallDataset(/*feature_dim=*/32, /*nodes=*/8000);
  const ClusterSpec cluster = SingleMachineCluster(4);
  for (const Strategy strategy : kAllStrategies) {
    SCOPED_TRACE(ToString(strategy));
    EngineOptions scale_opts = BaseOptions(strategy);
    scale_opts.sim.scale_mode = ScaleMode::kScale;
    scale_opts.scale_sample_period = 4;
    scale_opts.max_steps_per_epoch = 16;
    auto scale = MakeTrainerWithOptions(ds, cluster, scale_opts);
    const EpochStats scale_stats = scale->TrainEpoch(0);
    EXPECT_EQ(scale_stats.steps_executed, 4);
    EXPECT_EQ(scale_stats.steps_fast_forwarded, 12);

    EngineOptions ref_opts = BaseOptions(strategy);
    ref_opts.max_steps_per_epoch = 4;  // exactly the probes
    auto ref = MakeTrainerWithOptions(ds, cluster, ref_opts);
    const EpochStats ref_stats = ref->TrainEpoch(0);
    EXPECT_EQ(ref_stats.steps_executed, 4);
    EXPECT_EQ(ref_stats.steps_fast_forwarded, 0);

    EXPECT_EQ(MaxParamDiff(scale->model0(), ref->model0()), 0.0);
  }
}

// period = 1 probes every step: scale mode ON must be bit-identical to
// scale mode OFF in params, loss, AND charged seconds (nothing is ever
// fast-forwarded; recording a tape must not perturb the clocks).
TEST(ScaleSampledTest, PeriodOneIsBitIdenticalToScaleOff) {
  const Dataset ds = SmallDataset(/*feature_dim=*/32, /*nodes=*/8000);
  const ClusterSpec cluster = SingleMachineCluster(4);
  for (const Strategy strategy : {Strategy::kGDP, Strategy::kSNP}) {
    SCOPED_TRACE(ToString(strategy));
    EngineOptions scale_opts = BaseOptions(strategy);
    scale_opts.sim.scale_mode = ScaleMode::kScale;
    scale_opts.scale_sample_period = 1;
    scale_opts.max_steps_per_epoch = 8;
    auto scale = MakeTrainerWithOptions(ds, cluster, scale_opts);
    const EpochStats scale_stats = scale->TrainEpoch(0);

    EngineOptions off_opts = BaseOptions(strategy);
    off_opts.max_steps_per_epoch = 8;
    auto off = MakeTrainerWithOptions(ds, cluster, off_opts);
    const EpochStats off_stats = off->TrainEpoch(0);

    EXPECT_EQ(scale_stats.steps_executed, 8);
    EXPECT_EQ(scale_stats.steps_fast_forwarded, 0);
    EXPECT_EQ(scale_stats.loss, off_stats.loss);
    EXPECT_EQ(scale_stats.wall_seconds, off_stats.wall_seconds);
    EXPECT_EQ(scale_stats.sim_seconds, off_stats.sim_seconds);
    EXPECT_EQ(MaxParamDiff(scale->model0(), off->model0()), 0.0);
  }
}

// Pipelined execution records kBeginPipelined/kEndPipelined ops; replaying
// them must preserve probe parity exactly like the depth-1 path.
TEST(ScaleSampledTest, ProbeParityHoldsUnderPipelining) {
  const Dataset ds = SmallDataset(/*feature_dim=*/32, /*nodes=*/8000);
  const ClusterSpec cluster = SingleMachineCluster(4);
  EngineOptions scale_opts = BaseOptions(Strategy::kSNP, /*pipeline_depth=*/4);
  scale_opts.sim.scale_mode = ScaleMode::kScale;
  scale_opts.scale_sample_period = 3;
  scale_opts.max_steps_per_epoch = 9;
  auto scale = MakeTrainerWithOptions(ds, cluster, scale_opts);
  const EpochStats scale_stats = scale->TrainEpoch(0);
  EXPECT_EQ(scale_stats.steps_executed, 3);
  EXPECT_EQ(scale_stats.steps_fast_forwarded, 6);

  EngineOptions ref_opts = BaseOptions(Strategy::kSNP, /*pipeline_depth=*/4);
  ref_opts.max_steps_per_epoch = 3;
  auto ref = MakeTrainerWithOptions(ds, cluster, ref_opts);
  ref->TrainEpoch(0);
  EXPECT_EQ(MaxParamDiff(scale->model0(), ref->model0()), 0.0);
}

// Without faults the cluster model is time-invariant, so replaying one
// probe's tape charges the same seconds the probe charged: an epoch of
// 1 probe + (S-1) fast-forwards costs S x (one-step epoch), up to float
// accumulation (clocks re-sync at every step's gradient barrier).
TEST(ScaleSampledTest, FastForwardReplaysTheProbesCharges) {
  const Dataset ds = SmallDataset(/*feature_dim=*/32, /*nodes=*/8000);
  const ClusterSpec cluster = SingleMachineCluster(4);
  const std::int64_t steps = 6;
  EngineOptions scale_opts = BaseOptions(Strategy::kGDP);
  scale_opts.sim.scale_mode = ScaleMode::kScale;
  scale_opts.scale_sample_period = 1000;  // 1 probe, 5 fast-forwards
  scale_opts.max_steps_per_epoch = steps;
  auto scale = MakeTrainerWithOptions(ds, cluster, scale_opts);
  const EpochStats scale_stats = scale->TrainEpoch(0);
  EXPECT_EQ(scale_stats.steps_executed, 1);
  EXPECT_EQ(scale_stats.steps_fast_forwarded, steps - 1);

  EngineOptions one_opts = BaseOptions(Strategy::kGDP);
  one_opts.max_steps_per_epoch = 1;
  auto one = MakeTrainerWithOptions(ds, cluster, one_opts);
  const EpochStats one_stats = one->TrainEpoch(0);

  const double expect = static_cast<double>(steps) * one_stats.wall_seconds;
  EXPECT_NEAR(scale_stats.wall_seconds, expect, 1e-9 * expect);
}

// The headline extrapolation bound (stated in DESIGN.md): on a config where
// the exact run is affordable, the sampled epoch's charged seconds land
// within 20% of the exact epoch's. Mini-batches differ across steps, so
// this is an accuracy bound, not an identity.
TEST(ScaleSampledTest, ExtrapolatedEpochTimeIsWithinBoundOfExactRun) {
  const Dataset ds = SmallDataset(/*feature_dim=*/32, /*nodes=*/8000);
  const ClusterSpec cluster = SingleMachineCluster(4);
  for (const Strategy strategy : kAllStrategies) {
    SCOPED_TRACE(ToString(strategy));
    EngineOptions scale_opts = BaseOptions(strategy);
    scale_opts.sim.scale_mode = ScaleMode::kScale;
    scale_opts.scale_sample_period = 4;
    scale_opts.max_steps_per_epoch = 16;
    auto scale = MakeTrainerWithOptions(ds, cluster, scale_opts);
    const EpochStats scale_stats = scale->TrainEpoch(0);

    EngineOptions exact_opts = BaseOptions(strategy);
    exact_opts.max_steps_per_epoch = 16;
    auto exact = MakeTrainerWithOptions(ds, cluster, exact_opts);
    const EpochStats exact_stats = exact->TrainEpoch(0);

    EXPECT_NEAR(scale_stats.wall_seconds, exact_stats.wall_seconds,
                0.20 * exact_stats.wall_seconds);
    EXPECT_NEAR(scale_stats.sim_seconds, exact_stats.sim_seconds,
                0.20 * exact_stats.sim_seconds);
  }
}

// Scale mode off must remain byte-for-byte the pre-scale-mode engine: the
// default options train identically whether the scale fields are at their
// defaults or explicitly zeroed.
TEST(ScaleSampledTest, ScaleModeOffIsUnchangedByScaleKnobs) {
  const Dataset ds = SmallDataset(/*feature_dim=*/32, /*nodes=*/8000);
  const ClusterSpec cluster = SingleMachineCluster(4);
  EngineOptions a = BaseOptions(Strategy::kGDP);
  a.max_steps_per_epoch = 6;
  EngineOptions b = a;
  b.scale_sample_period = 64;  // ignored while scale_mode == kOff
  auto ta = MakeTrainerWithOptions(ds, cluster, a);
  auto tb = MakeTrainerWithOptions(ds, cluster, b);
  const EpochStats sa = ta->TrainEpoch(0);
  const EpochStats sb = tb->TrainEpoch(0);
  EXPECT_EQ(sa.loss, sb.loss);
  EXPECT_EQ(sa.wall_seconds, sb.wall_seconds);
  EXPECT_EQ(sa.steps_fast_forwarded, 0);
  EXPECT_EQ(MaxParamDiff(ta->model0(), tb->model0()), 0.0);
}

}  // namespace
}  // namespace apt
