// Tests for the hybrid (inter-machine GDP + intra-machine SNP) extension.
#include <gtest/gtest.h>

#include "apt/adapter.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace apt {
namespace {

using ::apt::testing::MaxParamDiff;
using ::apt::testing::SmallDataset;

std::unique_ptr<ParallelTrainer> HybridTrainer(const Dataset& ds,
                                               const ClusterSpec& cluster,
                                               bool hybrid,
                                               ModelKind kind = ModelKind::kSage,
                                               std::int64_t hidden = 0) {
  ModelConfig model;
  model.kind = kind;
  model.num_layers = 2;
  model.hidden_dim = hidden > 0 ? hidden : (kind == ModelKind::kGat ? 4 : 16);
  model.gat_heads = 2;
  model.input_dim = ds.feature_dim();
  model.num_classes = ds.num_classes;
  EngineOptions opts;
  opts.strategy = Strategy::kSNP;
  opts.fanouts = {5, 5};
  opts.batch_size_per_device = 128;
  opts.cache_bytes_per_device = 1 << 20;
  opts.seed_assignment = SeedAssignment::kChunked;
  opts.hybrid_intra_machine = hybrid;
  MultilevelPartitioner ml;
  std::vector<PartId> partition = ml.Partition(ds.graph, cluster.num_devices());
  const DryRunResult dry = DryRun(ds, cluster, partition, opts, model);
  TrainerSetup setup;
  setup.cluster = cluster;
  setup.model = model;
  setup.engine = opts;
  setup.partition = std::move(partition);
  setup.cache = dry.caches[static_cast<std::size_t>(Strategy::kSNP)];
  setup.feature_placement = FeaturePlacementFromPartition(setup.partition, cluster);
  return std::make_unique<ParallelTrainer>(ds, std::move(setup));
}

class HybridTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(HybridTest, SemanticallyEquivalentToPureSnp) {
  // Hybrid routing changes WHERE partials are computed, never WHAT is
  // computed: the trained model must match pure SNP.
  const Dataset ds = SmallDataset();
  const ClusterSpec cluster = MultiMachineCluster(2, 2);
  auto pure = HybridTrainer(ds, cluster, /*hybrid=*/false, GetParam());
  auto hybrid = HybridTrainer(ds, cluster, /*hybrid=*/true, GetParam());
  for (int e = 0; e < 2; ++e) {
    const EpochStats a = pure->TrainEpoch(e);
    const EpochStats b = hybrid->TrainEpoch(e);
    EXPECT_NEAR(a.loss, b.loss, 1e-3);
  }
  EXPECT_LT(MaxParamDiff(pure->model0(), hybrid->model0()), 2e-3);
}

INSTANTIATE_TEST_SUITE_P(Models, HybridTest,
                         ::testing::Values(ModelKind::kSage, ModelKind::kGat),
                         [](const ::testing::TestParamInfo<ModelKind>& info) {
                           return info.param == ModelKind::kSage ? "Sage" : "Gat";
                         });

TEST(HybridTest, NoHiddenEmbeddingCrossesMachines) {
  // The hybrid's design goal: hidden-embedding shuffles never cross the
  // network; cross-machine traffic becomes remote feature reads instead.
  // That trade pays off when 2*d' (shuffled per virtual node, fwd+bwd)
  // exceeds the feature row size d — hence a large hidden dim here.
  const Dataset ds = SmallDataset();
  const ClusterSpec cluster = MultiMachineCluster(2, 2);
  auto pure = HybridTrainer(ds, cluster, false, ModelKind::kSage, /*hidden=*/128);
  auto hybrid = HybridTrainer(ds, cluster, true, ModelKind::kSage, /*hidden=*/128);
  pure->sim().ResetTraffic();
  hybrid->sim().ResetTraffic();
  pure->TrainEpoch(0);
  hybrid->TrainEpoch(0);
  EXPECT_LT(hybrid->sim().TrafficBytes(TrafficClass::kCrossMachine),
            pure->sim().TrafficBytes(TrafficClass::kCrossMachine));
}

TEST(HybridTest, SingleMachineHybridIsPureSnp) {
  // With one machine every owner is machine-local, so the routing (and the
  // simulated time) must be identical to pure SNP.
  const Dataset ds = SmallDataset();
  const ClusterSpec cluster = SingleMachineCluster(4);
  auto pure = HybridTrainer(ds, cluster, false);
  auto hybrid = HybridTrainer(ds, cluster, true);
  const EpochStats a = pure->TrainEpoch(0);
  const EpochStats b = hybrid->TrainEpoch(0);
  EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(MaxParamDiff(pure->model0(), hybrid->model0()), 0.0);
}

}  // namespace
}  // namespace apt
