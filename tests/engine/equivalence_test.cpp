// The engine's core claim (paper Fig 6): GDP, NFP, SNP, and DNP are
// semantically equivalent — given identical mini-batches they produce the
// same trained model up to floating-point reassociation.
#include <gtest/gtest.h>

#include "model/param.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace apt {
namespace {

using ::apt::testing::MakeTrainer;
using ::apt::testing::MaxParamDiff;
using ::apt::testing::SmallDataset;

class EquivalenceTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(EquivalenceTest, SageMatchesGdpAfterTraining) {
  const Dataset ds = SmallDataset();
  const ClusterSpec cluster = SingleMachineCluster(4);
  auto ref = MakeTrainer(ds, cluster, Strategy::kGDP);
  auto alt = MakeTrainer(ds, cluster, GetParam());
  for (int epoch = 0; epoch < 2; ++epoch) {
    const EpochStats a = ref->TrainEpoch(epoch);
    const EpochStats b = alt->TrainEpoch(epoch);
    EXPECT_NEAR(a.loss, b.loss, 1e-3) << "epoch " << epoch;
  }
  EXPECT_LT(MaxParamDiff(ref->model0(), alt->model0()), 2e-3);
}

TEST_P(EquivalenceTest, GatMatchesGdpAfterTraining) {
  const Dataset ds = SmallDataset();
  const ClusterSpec cluster = SingleMachineCluster(4);
  auto ref = MakeTrainer(ds, cluster, Strategy::kGDP, ModelKind::kGat);
  auto alt = MakeTrainer(ds, cluster, GetParam(), ModelKind::kGat);
  for (int epoch = 0; epoch < 2; ++epoch) {
    const EpochStats a = ref->TrainEpoch(epoch);
    const EpochStats b = alt->TrainEpoch(epoch);
    EXPECT_NEAR(a.loss, b.loss, 1e-3) << "epoch " << epoch;
  }
  EXPECT_LT(MaxParamDiff(ref->model0(), alt->model0()), 2e-3);
}

TEST_P(EquivalenceTest, ReplicasStayIdenticalAcrossDevices) {
  // DDP invariant: after any number of steps, every device's replica is
  // bitwise identical (they apply identical updates to identical inits).
  const Dataset ds = SmallDataset();
  const ClusterSpec cluster = SingleMachineCluster(4);
  auto trainer = MakeTrainer(ds, cluster, GetParam());
  trainer->TrainEpoch(0);
  GnnModel probe(trainer->setup().model);  // fresh replica for API access only
  (void)probe;
  // Compare replica 0 against a re-run with the same config: determinism.
  auto trainer2 = MakeTrainer(ds, cluster, GetParam());
  trainer2->TrainEpoch(0);
  EXPECT_EQ(MaxParamDiff(trainer->model0(), trainer2->model0()), 0.0);
}

TEST_P(EquivalenceTest, PartitionAssignmentAlsoConverges) {
  // With the strategy's native seed assignment (partition-based for
  // SNP/DNP), training still reduces the loss — the paper's accuracy-curve
  // sanity check, not an exactness check.
  const Dataset ds = SmallDataset();
  const ClusterSpec cluster = SingleMachineCluster(4);
  auto trainer = MakeTrainer(ds, cluster, GetParam(), ModelKind::kSage,
                             /*force_chunked=*/false);
  const EpochStats first = trainer->TrainEpoch(0);
  EpochStats last{};
  for (int epoch = 1; epoch < 4; ++epoch) last = trainer->TrainEpoch(epoch);
  EXPECT_LT(last.loss, first.loss);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, EquivalenceTest,
                         ::testing::Values(Strategy::kNFP, Strategy::kSNP,
                                           Strategy::kDNP),
                         [](const ::testing::TestParamInfo<Strategy>& info) {
                           return ToString(info.param);
                         });

}  // namespace
}  // namespace apt
