// Tests for the APT core: dry-run, cost models, planner, adapter, system.
#include <gtest/gtest.h>

#include "apt/apt_system.h"
#include "test_util.h"

namespace apt {
namespace {

using ::apt::testing::SmallDataset;

struct PlanFixture {
  Dataset ds = SmallDataset(/*feature_dim=*/64, /*nodes=*/3000);
  ClusterSpec cluster = SingleMachineCluster(4);
  ModelConfig model;
  EngineOptions opts;
  std::vector<PartId> partition;

  PlanFixture() {
    model.kind = ModelKind::kSage;
    model.num_layers = 2;
    model.hidden_dim = 16;
    model.input_dim = ds.feature_dim();
    model.num_classes = ds.num_classes;
    opts.fanouts = {5, 5};
    opts.batch_size_per_device = 128;
    opts.cache_bytes_per_device = 64 << 10;
    MultilevelPartitioner ml;
    partition = ml.Partition(ds.graph, cluster.num_devices());
  }
};

TEST(DryRunTest, CollectsHotnessAndVolumes) {
  PlanFixture f;
  const DryRunResult dry = DryRun(f.ds, f.cluster, f.partition, f.opts, f.model);
  EXPECT_EQ(static_cast<NodeId>(dry.hotness.size()), f.ds.graph.num_nodes());
  std::int64_t total = 0;
  for (auto h : dry.hotness) total += h;
  EXPECT_GT(total, 0);
  for (Strategy s : kAllStrategies) {
    const StrategyDryRun& st = dry.per_strategy[static_cast<std::size_t>(s)];
    EXPECT_GT(st.sample_seconds, 0.0) << ToString(s);
    EXPECT_EQ(st.load.size(), 4u);
    EXPECT_GT(st.load_seconds, 0.0) << ToString(s);
    EXPECT_GT(st.peak_transient_bytes, 0) << ToString(s);
  }
  EXPECT_GE(dry.wall_seconds, 0.0);
}

TEST(DryRunTest, GdpHasNoShuffleOrGraphExchange) {
  PlanFixture f;
  const DryRunResult dry = DryRun(f.ds, f.cluster, f.partition, f.opts, f.model);
  const auto& gdp = dry.per_strategy[static_cast<std::size_t>(Strategy::kGDP)];
  EXPECT_EQ(gdp.graph_shuffle_bytes, 0);
  EXPECT_EQ(gdp.shuffle_bytes, 0);
  EXPECT_DOUBLE_EQ(gdp.shuffle_seconds, 0.0);
}

TEST(DryRunTest, OtherStrategiesDoShuffle) {
  PlanFixture f;
  const DryRunResult dry = DryRun(f.ds, f.cluster, f.partition, f.opts, f.model);
  for (Strategy s : {Strategy::kNFP, Strategy::kSNP, Strategy::kDNP}) {
    const auto& st = dry.per_strategy[static_cast<std::size_t>(s)];
    EXPECT_GT(st.graph_shuffle_bytes, 0) << ToString(s);
    EXPECT_GT(st.shuffle_bytes, 0) << ToString(s);
  }
}

TEST(DryRunTest, DnpShufflesFewerRowsThanNfp) {
  // Paper §3.3: each DNP destination shuffles at most one embedding; NFP
  // shuffles every destination on every device.
  PlanFixture f;
  const DryRunResult dry = DryRun(f.ds, f.cluster, f.partition, f.opts, f.model);
  EXPECT_LT(dry.per_strategy[static_cast<std::size_t>(Strategy::kDNP)].shuffle_bytes,
            dry.per_strategy[static_cast<std::size_t>(Strategy::kNFP)].shuffle_bytes);
}

TEST(DryRunTest, SnpSeesFewerCpuReadsThanGdpWithCache) {
  // With partition-aligned caches, SNP's loads hit the cache more than
  // GDP's scattered K-hop accesses (paper §3.3 cache-locality argument).
  PlanFixture f;
  f.opts.cache_bytes_per_device = 256 << 10;
  const DryRunResult dry = DryRun(f.ds, f.cluster, f.partition, f.opts, f.model);
  std::int64_t snp_cpu = 0, gdp_cpu = 0;
  for (std::int32_t d = 0; d < 4; ++d) {
    snp_cpu += dry.per_strategy[static_cast<std::size_t>(Strategy::kSNP)]
                   .load[static_cast<std::size_t>(d)]
                   .CpuBytes();
    gdp_cpu += dry.per_strategy[static_cast<std::size_t>(Strategy::kGDP)]
                   .load[static_cast<std::size_t>(d)]
                   .CpuBytes();
  }
  EXPECT_LT(snp_cpu, gdp_cpu);
}

TEST(DryRunTest, Layer0OutDimRules) {
  ModelConfig m;
  m.kind = ModelKind::kSage;
  m.num_layers = 3;
  m.hidden_dim = 32;
  m.num_classes = 10;
  EXPECT_EQ(Layer0OutDim(m), 32);
  m.num_layers = 1;
  EXPECT_EQ(Layer0OutDim(m), 10);
  m.kind = ModelKind::kGat;
  m.num_layers = 3;
  m.gat_heads = 4;
  m.hidden_dim = 8;
  EXPECT_EQ(Layer0OutDim(m), 32);
}

TEST(CostModelTest, EstimatesComposeLinearly) {
  PlanFixture f;
  const DryRunResult dry = DryRun(f.ds, f.cluster, f.partition, f.opts, f.model);
  const auto all = EstimateAll(dry);
  for (Strategy s : kAllStrategies) {
    const CostEstimate& e = all[static_cast<std::size_t>(s)];
    EXPECT_EQ(e.strategy, s);
    EXPECT_NEAR(e.Comparable(), e.t_build + e.t_load + e.t_shuffle, 1e-12);
    EXPECT_FALSE(FormatEstimate(e).empty());
  }
}

TEST(PlannerTest, SelectsMinimumComparableCost) {
  PlanFixture f;
  const PlanReport report = MakePlan(f.ds, f.cluster, f.partition, f.opts, f.model);
  double best = 1e100;
  Strategy best_s = Strategy::kGDP;
  for (const CostEstimate& e : report.estimates) {
    if (e.feasible && e.Comparable() < best) {
      best = e.Comparable();
      best_s = e.strategy;
    }
  }
  EXPECT_EQ(report.selected, best_s);
}

TEST(PlannerTest, LargeHiddenDimFavorsGdp) {
  // Fig 8a: with a very large hidden dimension, shuffling hidden embeddings
  // dominates and GDP (which shuffles none) wins.
  PlanFixture f;
  f.model.hidden_dim = 512;
  f.opts.cache_bytes_per_device = 0;
  const PlanReport report = MakePlan(f.ds, f.cluster, f.partition, f.opts, f.model);
  EXPECT_EQ(report.selected, Strategy::kGDP);
}

TEST(PlannerTest, NoCacheFavorsGdp) {
  // Fig 8c: with caches disabled, every strategy pays the same CPU loads but
  // only GDP avoids the shuffle overheads.
  PlanFixture f;
  f.opts.cache_bytes_per_device = 0;
  const PlanReport report = MakePlan(f.ds, f.cluster, f.partition, f.opts, f.model);
  EXPECT_EQ(report.selected, Strategy::kGDP);
}

TEST(AdapterTest, BuildsConsistentSetup) {
  PlanFixture f;
  const DryRunResult dry = DryRun(f.ds, f.cluster, f.partition, f.opts, f.model);
  const TrainerSetup setup = BuildTrainerSetup(f.cluster, f.model, f.opts, f.partition,
                                               dry, Strategy::kSNP);
  EXPECT_EQ(setup.engine.strategy, Strategy::kSNP);
  EXPECT_EQ(setup.engine.seed_assignment, SeedAssignment::kPartition);
  EXPECT_EQ(setup.partition.size(), f.partition.size());
  EXPECT_EQ(setup.cache.cache_nodes.size(), 4u);
  EXPECT_EQ(setup.feature_placement.size(), f.partition.size());

  const TrainerSetup gdp = BuildTrainerSetup(f.cluster, f.model, f.opts, f.partition,
                                             dry, Strategy::kGDP);
  EXPECT_EQ(gdp.engine.seed_assignment, SeedAssignment::kChunked);
}

TEST(AptSystemTest, EndToEndRunImprovesLoss) {
  PlanFixture f;
  AptSystem system(f.ds, f.cluster, f.model, f.opts);
  const PlanReport& plan = system.Plan();
  EXPECT_TRUE(system.planned());
  (void)plan;
  const auto stats = system.Run(3);
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_LT(stats.back().loss, stats.front().loss);
  for (const EpochStats& s : stats) {
    EXPECT_GT(s.sim_seconds, 0.0);
    EXPECT_NEAR(s.sim_seconds,
                s.sample_seconds + s.load_seconds + s.train_seconds, 1e-9);
  }
}

TEST(AptSystemTest, FillsModelDimsFromDataset) {
  PlanFixture f;
  ModelConfig m = f.model;
  m.input_dim = 0;
  m.num_classes = 0;
  AptSystem system(f.ds, f.cluster, m, f.opts);
  auto trainer = system.MakeTrainer(Strategy::kGDP);
  EXPECT_EQ(trainer->setup().model.input_dim, f.ds.feature_dim());
  EXPECT_EQ(trainer->setup().model.num_classes, f.ds.num_classes);
}

TEST(AptSystemTest, CustomPartitionerIsUsed) {
  PlanFixture f;
  RandomPartitioner rnd(123);
  AptSystem system(f.ds, f.cluster, f.model, f.opts, &rnd);
  EXPECT_EQ(system.partition(), rnd.Partition(f.ds.graph, 4));
}

TEST(AptSystemTest, PlanIsCached) {
  PlanFixture f;
  AptSystem system(f.ds, f.cluster, f.model, f.opts);
  const PlanReport& a = system.Plan();
  const PlanReport& b = system.Plan();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace apt
