// Planner/dry-run behaviour for attention models and multi-machine
// platforms (the qualitative claims of paper §5.2-5.3 as unit tests).
#include <gtest/gtest.h>

#include "apt/planner.h"
#include "test_util.h"

namespace apt {
namespace {

using ::apt::testing::SmallDataset;

struct GatFixture {
  Dataset ds = SmallDataset(/*feature_dim=*/64, /*nodes=*/3000);
  std::vector<PartId> partition;
  EngineOptions opts;

  GatFixture() {
    MultilevelPartitioner ml;
    partition = ml.Partition(ds.graph, 4);
    opts.fanouts = {5, 5};
    opts.batch_size_per_device = 128;
    opts.cache_bytes_per_device = 64 << 10;
  }

  ModelConfig Model(ModelKind kind, std::int64_t hidden = 16) const {
    ModelConfig m;
    m.kind = kind;
    m.num_layers = 2;
    m.hidden_dim = hidden;
    m.gat_heads = 2;
    m.input_dim = ds.feature_dim();
    m.num_classes = ds.num_classes;
    return m;
  }
};

TEST(DryRunGatTest, AttentionInflatesSnpAndNfpShuffles) {
  // §5.3: with attention, SNP ships per-source projected rows (not
  // per-virtual-node partials) and NFP allreduces per-source projections —
  // both shuffle strictly more rows than their SAGE counterparts.
  GatFixture f;
  const ClusterSpec cluster = SingleMachineCluster(4);
  const DryRunResult sage = DryRun(f.ds, cluster, f.partition, f.opts,
                                   f.Model(ModelKind::kSage));
  const DryRunResult gat =
      DryRun(f.ds, cluster, f.partition, f.opts, f.Model(ModelKind::kGat));
  for (Strategy s : {Strategy::kNFP, Strategy::kSNP}) {
    EXPECT_GT(gat.per_strategy[static_cast<std::size_t>(s)].shuffle_rows,
              sage.per_strategy[static_cast<std::size_t>(s)].shuffle_rows)
        << ToString(s);
  }
  // DNP is attention-agnostic: one shuffled row per remote destination.
  EXPECT_EQ(gat.per_strategy[static_cast<std::size_t>(Strategy::kDNP)].shuffle_rows,
            sage.per_strategy[static_cast<std::size_t>(Strategy::kDNP)].shuffle_rows);
}

TEST(DryRunGatTest, NfpTransientMemoryGrowsWithHiddenDim) {
  GatFixture f;
  const ClusterSpec cluster = SingleMachineCluster(4);
  const DryRunResult small =
      DryRun(f.ds, cluster, f.partition, f.opts, f.Model(ModelKind::kGat, 8));
  const DryRunResult large =
      DryRun(f.ds, cluster, f.partition, f.opts, f.Model(ModelKind::kGat, 64));
  EXPECT_GT(
      large.per_strategy[static_cast<std::size_t>(Strategy::kNFP)].peak_transient_bytes,
      4 * small.per_strategy[static_cast<std::size_t>(Strategy::kNFP)]
              .peak_transient_bytes);
}

TEST(DryRunGatTest, NfpMarkedInfeasibleOnSmallDevices) {
  GatFixture f;
  ClusterSpec cluster = SingleMachineCluster(4);
  // Scale device memory down until NFP's (largest) transient no longer fits.
  const DryRunResult probe =
      DryRun(f.ds, cluster, f.partition, f.opts, f.Model(ModelKind::kGat, 64));
  const auto& nfp = probe.per_strategy[static_cast<std::size_t>(Strategy::kNFP)];
  const auto& gdp = probe.per_strategy[static_cast<std::size_t>(Strategy::kGDP)];
  ASSERT_GT(nfp.peak_transient_bytes, gdp.peak_transient_bytes);
  cluster.machines[0].gpu.memory_bytes =
      (nfp.peak_transient_bytes + gdp.peak_transient_bytes) / 2;
  const PlanReport plan = MakePlan(f.ds, cluster, f.partition, f.opts,
                                   f.Model(ModelKind::kGat, 64));
  EXPECT_FALSE(
      plan.estimates[static_cast<std::size_t>(Strategy::kNFP)].feasible);
  EXPECT_NE(plan.selected, Strategy::kNFP);
}

TEST(PlannerMultiMachineTest, AvoidsNfpAcrossMachines) {
  // Fig 9: NFP's allreduce of every destination's partial embedding is
  // crippling across 100 Gbps Ethernet; the planner must never pick it.
  GatFixture f;
  const PlanReport plan = MakePlan(f.ds, MultiMachineCluster(2, 2), f.partition,
                                   f.opts, f.Model(ModelKind::kSage));
  EXPECT_NE(plan.selected, Strategy::kNFP);
  const double nfp =
      plan.estimates[static_cast<std::size_t>(Strategy::kNFP)].Comparable();
  const double gdp =
      plan.estimates[static_cast<std::size_t>(Strategy::kGDP)].Comparable();
  EXPECT_GT(nfp, gdp);
}

TEST(PlannerMultiMachineTest, ShufflesCostMoreAcrossMachines) {
  GatFixture f;
  const ModelConfig model = f.Model(ModelKind::kSage);
  const DryRunResult single =
      DryRun(f.ds, SingleMachineCluster(4), f.partition, f.opts, model);
  const DryRunResult multi =
      DryRun(f.ds, MultiMachineCluster(2, 2), f.partition, f.opts, model);
  for (Strategy s : {Strategy::kNFP, Strategy::kSNP, Strategy::kDNP}) {
    EXPECT_GT(multi.per_strategy[static_cast<std::size_t>(s)].shuffle_seconds,
              single.per_strategy[static_cast<std::size_t>(s)].shuffle_seconds)
        << ToString(s);
  }
}

}  // namespace
}  // namespace apt
