// Feature store + cache policy tests: tier classification, gather
// correctness, time charging, and the per-strategy cache rules of §3.2.
#include <gtest/gtest.h>

#include <numeric>

#include "feature/cache_policy.h"
#include "feature/feature_store.h"
#include "graph/generators.h"
#include "tensor/ops.h"

namespace apt {
namespace {

Tensor MakeFeatures(NodeId n, std::int64_t d) {
  Tensor t(n, d);
  for (NodeId v = 0; v < n; ++v) {
    for (std::int64_t j = 0; j < d; ++j) {
      t(v, j) = static_cast<float>(v * 1000 + j);
    }
  }
  return t;
}

TEST(FeatureStoreTest, GatherCopiesCorrectRows) {
  SimContext sim(SingleMachineCluster(2));
  const Tensor feats = MakeFeatures(10, 4);
  FeatureStore store(feats, std::vector<MachineId>(10, 0), sim);
  store.ConfigureCaches({{1, 2}, {}}, 16);
  const std::vector<NodeId> nodes{2, 7};
  Tensor out(2, 4);
  const LoadVolume vol = store.Gather(0, nodes, 0, 4, out);
  EXPECT_FLOAT_EQ(out(0, 0), 2000.0f);
  EXPECT_FLOAT_EQ(out(1, 3), 7003.0f);
  EXPECT_EQ(vol.rows[static_cast<int>(FeatureTier::kGpuCache)], 1);  // node 2
  EXPECT_EQ(vol.rows[static_cast<int>(FeatureTier::kLocalCpu)], 1);  // node 7
}

TEST(FeatureStoreTest, ColumnSliceGather) {
  SimContext sim(SingleMachineCluster(1));
  const Tensor feats = MakeFeatures(4, 8);
  FeatureStore store(feats, std::vector<MachineId>(4, 0), sim);
  store.ConfigureCaches({{}}, 0);
  Tensor out(1, 3);
  store.Gather(0, std::vector<NodeId>{3}, 2, 5, out);
  EXPECT_FLOAT_EQ(out(0, 0), 3002.0f);
  EXPECT_FLOAT_EQ(out(0, 2), 3004.0f);
}

TEST(FeatureStoreTest, TierClassificationHierarchy) {
  // 2 machines x 2 GPUs with NVLink: own cache > peer > local cpu > remote.
  ClusterSpec cluster = MultiMachineCluster(2, 2, /*nvlink=*/true);
  SimContext sim(cluster);
  const Tensor feats = MakeFeatures(8, 2);
  // Nodes 0..3 on machine 0, nodes 4..7 on machine 1.
  std::vector<MachineId> placement{0, 0, 0, 0, 1, 1, 1, 1};
  FeatureStore store(feats, placement, sim);
  store.ConfigureCaches({{0}, {1}, {}, {}}, 8);
  EXPECT_EQ(store.Classify(0, 0), FeatureTier::kGpuCache);
  EXPECT_EQ(store.Classify(0, 1), FeatureTier::kPeerGpu);   // cached on dev 1
  EXPECT_EQ(store.Classify(0, 2), FeatureTier::kLocalCpu);  // machine 0 CPU
  EXPECT_EQ(store.Classify(0, 5), FeatureTier::kRemoteCpu); // machine 1 CPU
  // Device 2 (machine 1): node 1 is cached only on machine 0's GPU -> no
  // peer access across machines; falls through to remote CPU.
  EXPECT_EQ(store.Classify(2, 1), FeatureTier::kRemoteCpu);
  EXPECT_EQ(store.Classify(2, 5), FeatureTier::kLocalCpu);
}

TEST(FeatureStoreTest, NoPeerReadsWithoutNvlink) {
  SimContext sim(SingleMachineCluster(2, /*nvlink=*/false));
  const Tensor feats = MakeFeatures(4, 2);
  FeatureStore store(feats, std::vector<MachineId>(4, 0), sim);
  store.ConfigureCaches({{}, {3}}, 8);
  EXPECT_EQ(store.Classify(0, 3), FeatureTier::kLocalCpu);
}

TEST(FeatureStoreTest, LoadSecondsOrdering) {
  SimContext sim(MultiMachineCluster(2, 1));
  const Tensor feats = MakeFeatures(4, 2);
  FeatureStore store(feats, std::vector<MachineId>{0, 0, 1, 1}, sim);
  store.ConfigureCaches({{0}, {}}, 8);
  LoadVolume cache_vol, cpu_vol, remote_vol;
  cache_vol.bytes[static_cast<int>(FeatureTier::kGpuCache)] = 1 << 20;
  cpu_vol.bytes[static_cast<int>(FeatureTier::kLocalCpu)] = 1 << 20;
  remote_vol.bytes[static_cast<int>(FeatureTier::kRemoteCpu)] = 1 << 20;
  EXPECT_LT(store.LoadSeconds(0, cache_vol), store.LoadSeconds(0, cpu_vol));
  EXPECT_LT(store.LoadSeconds(0, cpu_vol), store.LoadSeconds(0, remote_vol));
}

TEST(FeatureStoreTest, GatherChargesLoadPhase) {
  SimContext sim(SingleMachineCluster(1));
  const Tensor feats = MakeFeatures(100, 16);
  FeatureStore store(feats, std::vector<MachineId>(100, 0), sim);
  store.ConfigureCaches({{}}, 0);
  std::vector<NodeId> nodes(100);
  std::iota(nodes.begin(), nodes.end(), NodeId{0});
  Tensor out(100, 16);
  store.Gather(0, nodes, 0, 16, out);
  EXPECT_GT(sim.PhaseOf(0, Phase::kLoad), 0.0);
  EXPECT_DOUBLE_EQ(sim.PhaseOf(0, Phase::kTrain), 0.0);
  EXPECT_GT(sim.TrafficBytes(TrafficClass::kLocalCpuGpu), 0);
}

TEST(FeatureStoreTest, CountGatherMatchesGather) {
  SimContext sim(SingleMachineCluster(1));
  const Tensor feats = MakeFeatures(50, 8);
  FeatureStore store(feats, std::vector<MachineId>(50, 0), sim);
  store.ConfigureCaches({{1, 2, 3}}, 32);
  const std::vector<NodeId> nodes{1, 2, 30, 40};
  const LoadVolume counted = store.CountGather(0, nodes, 0, 8);
  Tensor out(4, 8);
  const LoadVolume gathered = store.Gather(0, nodes, 0, 8, out);
  for (int t = 0; t < kNumFeatureTiers; ++t) {
    EXPECT_EQ(counted.bytes[static_cast<std::size_t>(t)],
              gathered.bytes[static_cast<std::size_t>(t)]);
  }
  EXPECT_EQ(counted.TotalBytes(), 4 * 8 * 4);
  EXPECT_EQ(counted.CpuBytes(), 2 * 8 * 4);
}

TEST(FeatureStoreTest, CacheRegistersMemory) {
  SimContext sim(SingleMachineCluster(2));
  const Tensor feats = MakeFeatures(10, 4);
  FeatureStore store(feats, std::vector<MachineId>(10, 0), sim);
  store.ConfigureCaches({{0, 1, 2}, {5}}, 100);
  EXPECT_EQ(sim.PeakMemory(0), 300);
  EXPECT_EQ(sim.PeakMemory(1), 100);
}

// ---------------------------------------------------------------------------
// Cache policy (paper §3.2 rules).
// ---------------------------------------------------------------------------

struct PolicyFixture {
  NodeId n = 100;
  std::vector<std::int64_t> hotness;
  std::vector<PartId> partition;
  CsrGraph graph;

  PolicyFixture() {
    hotness.resize(static_cast<std::size_t>(n));
    // Node v has hotness n - v (node 0 hottest).
    for (NodeId v = 0; v < n; ++v) hotness[static_cast<std::size_t>(v)] = n - v;
    partition.resize(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) partition[static_cast<std::size_t>(v)] = v % 2;
    // A ring so 1-hop expansion is well-defined.
    std::vector<NodeId> src, dst;
    for (NodeId v = 0; v < n; ++v) {
      src.push_back(v);
      dst.push_back((v + 1) % n);
    }
    graph = BuildCsr(n, src, dst, /*symmetrize=*/true);
  }

  CachePolicyInput Input(Strategy s, std::int64_t budget, std::int64_t dim = 4,
                         std::int32_t devices = 2) const {
    CachePolicyInput in;
    in.strategy = s;
    in.budget_bytes_per_device = budget;
    in.feature_dim = dim;
    in.num_devices = devices;
    in.hotness = hotness;
    in.partition = partition;
    in.graph = &graph;
    return in;
  }
};

TEST(CachePolicyTest, GdpCachesGlobalHottest) {
  PolicyFixture f;
  // Budget for 10 full rows (dim 4 floats = 16 bytes/row).
  const CacheConfig cfg = ConfigureCache(f.Input(Strategy::kGDP, 160));
  ASSERT_EQ(cfg.cache_nodes.size(), 2u);
  EXPECT_EQ(cfg.bytes_per_cached_row, 16);
  for (const auto& nodes : cfg.cache_nodes) {
    ASSERT_EQ(nodes.size(), 10u);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      EXPECT_EQ(nodes[i], static_cast<NodeId>(i));  // hottest = lowest ids
    }
  }
}

TEST(CachePolicyTest, NfpCachesMoreRowsPerByte) {
  PolicyFixture f;
  const CacheConfig gdp = ConfigureCache(f.Input(Strategy::kGDP, 160));
  const CacheConfig nfp = ConfigureCache(f.Input(Strategy::kNFP, 160));
  // NFP stores dim/C per row => 2x the rows for the same budget (C=2).
  EXPECT_EQ(nfp.bytes_per_cached_row, 8);
  EXPECT_EQ(nfp.cache_nodes[0].size(), 2 * gdp.cache_nodes[0].size());
}

TEST(CachePolicyTest, SnpCachesOnlyOwnPartition) {
  PolicyFixture f;
  const CacheConfig cfg = ConfigureCache(f.Input(Strategy::kSNP, 160));
  for (std::int32_t d = 0; d < 2; ++d) {
    for (NodeId v : cfg.cache_nodes[static_cast<std::size_t>(d)]) {
      EXPECT_EQ(f.partition[static_cast<std::size_t>(v)], d);
    }
  }
  // Hottest partition members first: device 0 owns even ids => 0, 2, ...
  EXPECT_EQ(cfg.cache_nodes[0][0], 0);
  EXPECT_EQ(cfg.cache_nodes[1][0], 1);
}

TEST(CachePolicyTest, DnpExpandsToOneHop) {
  PolicyFixture f;
  // Huge budget: everything cacheable. DNP candidates = partition + 1-hop.
  const CacheConfig cfg = ConfigureCache(f.Input(Strategy::kDNP, 1 << 20));
  // On a ring with alternating ownership, partition + 1-hop = all nodes.
  EXPECT_EQ(cfg.cache_nodes[0].size(), static_cast<std::size_t>(f.n));
  const CacheConfig snp = ConfigureCache(f.Input(Strategy::kSNP, 1 << 20));
  // SNP cannot use the excess memory beyond its partition (paper §3.3).
  EXPECT_EQ(snp.cache_nodes[0].size(), static_cast<std::size_t>(f.n) / 2);
}

TEST(CachePolicyTest, ZeroBudgetMeansNoCache) {
  PolicyFixture f;
  for (Strategy s : kAllStrategies) {
    const CacheConfig cfg = ConfigureCache(f.Input(s, 0));
    for (const auto& nodes : cfg.cache_nodes) EXPECT_TRUE(nodes.empty());
  }
}

TEST(CachePolicyTest, BudgetIsRespected) {
  PolicyFixture f;
  for (Strategy s : kAllStrategies) {
    const CacheConfig cfg = ConfigureCache(f.Input(s, 57));  // odd budget
    for (const auto& nodes : cfg.cache_nodes) {
      EXPECT_LE(static_cast<std::int64_t>(nodes.size()) * cfg.bytes_per_cached_row, 57);
    }
  }
}

}  // namespace
}  // namespace apt
