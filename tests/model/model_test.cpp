// Model tests: layer gradient checks against finite differences, model
// plumbing, and optimizers.
#include <gtest/gtest.h>

#include <cmath>

#include "model/gat_layer.h"
#include "model/gnn_model.h"
#include "model/optimizer.h"
#include "model/sage_layer.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace apt {
namespace {

// dst0 <- {0, 1}; dst1 <- {1, 2}; 2 dst, 3 src (dst prefix rows 0..1).
struct TinyBlock {
  std::vector<std::int64_t> indptr{0, 2, 4};
  std::vector<std::int64_t> col{0, 1, 1, 2};
  CsrView csr() const { return {indptr, col}; }
  std::int64_t num_dst = 2;
  std::int64_t num_src = 3;
};

Tensor RandTensor(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  Tensor t(r, c);
  Rng rng(seed);
  UniformInit(t, rng, -1.0f, 1.0f);
  return t;
}

double Inner(const Tensor& a, const Tensor& b) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) acc += a.data()[i] * b.data()[i];
  return acc;
}

/// Central-difference check of d<out, gy>/d param[idx] for a layer.
template <typename LayerT>
void CheckParamGrad(LayerT& layer, Param& param, const TinyBlock& blk,
                    const Tensor& input, const Tensor& gy, float tol) {
  std::unique_ptr<LayerContext> ctx;
  layer.Forward(blk.csr(), blk.num_dst, input, &ctx);
  for (Param* p : [&] {
         std::vector<Param*> ps;
         layer.CollectParams(ps);
         return ps;
       }()) {
    p->ZeroGrad();
  }
  layer.Backward(blk.csr(), blk.num_dst, *ctx, gy);
  const float eps = 1e-2f;
  Rng pick(31);
  for (int trial = 0; trial < 6; ++trial) {
    const auto idx =
        static_cast<std::int64_t>(pick.NextBelow(static_cast<std::uint64_t>(param.value.numel())));
    const float orig = param.value.data()[idx];
    param.value.data()[idx] = orig + eps;
    const Tensor op = layer.Forward(blk.csr(), blk.num_dst, input, nullptr);
    param.value.data()[idx] = orig - eps;
    const Tensor om = layer.Forward(blk.csr(), blk.num_dst, input, nullptr);
    param.value.data()[idx] = orig;
    const double fd = (Inner(op, gy) - Inner(om, gy)) / (2 * eps);
    EXPECT_NEAR(param.grad.data()[idx], fd, tol)
        << param.name << " index " << idx;
  }
}

TEST(SageLayerTest, ForwardMatchesManual) {
  Rng rng(1);
  SageLayer layer(2, 2, rng);
  // Identity-ish weights for a hand check.
  layer.w_self().value = Tensor(2, 2, {1, 0, 0, 1});
  layer.w_neigh().value = Tensor(2, 2, {2, 0, 0, 2});
  layer.bias().value = Tensor(1, 2, {0.5f, -0.5f});
  TinyBlock blk;
  Tensor input(3, 2, {1, 2, 3, 4, 5, 6});
  const Tensor out = layer.Forward(blk.csr(), blk.num_dst, input, nullptr);
  // dst0: self (1,2) + 2*mean((1,2),(3,4)) + bias = (1,2)+(4,6)+(0.5,-0.5)
  EXPECT_FLOAT_EQ(out(0, 0), 5.5f);
  EXPECT_FLOAT_EQ(out(0, 1), 7.5f);
  // dst1: self (3,4) + 2*mean((3,4),(5,6)) + bias = (3,4)+(8,10)+(0.5,-0.5)
  EXPECT_FLOAT_EQ(out(1, 0), 11.5f);
  EXPECT_FLOAT_EQ(out(1, 1), 13.5f);
}

TEST(SageLayerTest, ParamGradsMatchFiniteDifference) {
  Rng rng(2);
  SageLayer layer(3, 2, rng);
  TinyBlock blk;
  const Tensor input = RandTensor(3, 3, 4);
  const Tensor gy = RandTensor(2, 2, 5);
  CheckParamGrad(layer, layer.w_self(), blk, input, gy, 5e-3f);
  CheckParamGrad(layer, layer.w_neigh(), blk, input, gy, 5e-3f);
  CheckParamGrad(layer, layer.bias(), blk, input, gy, 5e-3f);
}

TEST(SageLayerTest, InputGradMatchesFiniteDifference) {
  Rng rng(3);
  SageLayer layer(3, 2, rng);
  TinyBlock blk;
  Tensor input = RandTensor(3, 3, 6);
  const Tensor gy = RandTensor(2, 2, 7);
  std::unique_ptr<LayerContext> ctx;
  layer.Forward(blk.csr(), blk.num_dst, input, &ctx);
  const Tensor gin = layer.Backward(blk.csr(), blk.num_dst, *ctx, gy);
  const float eps = 1e-2f;
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    const float orig = input.data()[i];
    input.data()[i] = orig + eps;
    const Tensor op = layer.Forward(blk.csr(), blk.num_dst, input, nullptr);
    input.data()[i] = orig - eps;
    const Tensor om = layer.Forward(blk.csr(), blk.num_dst, input, nullptr);
    input.data()[i] = orig;
    EXPECT_NEAR(gin.data()[i], (Inner(op, gy) - Inner(om, gy)) / (2 * eps), 5e-3f);
  }
}

TEST(GatLayerTest, OutputShapeConcatenatesHeads) {
  Rng rng(8);
  GatLayer layer(4, 3, 2, rng);
  EXPECT_EQ(layer.out_dim(), 6);
  TinyBlock blk;
  const Tensor input = RandTensor(3, 4, 9);
  const Tensor out = layer.Forward(blk.csr(), blk.num_dst, input, nullptr);
  EXPECT_EQ(out.rows(), 2);
  EXPECT_EQ(out.cols(), 6);
}

TEST(GatLayerTest, ParamGradsMatchFiniteDifference) {
  Rng rng(10);
  GatLayer layer(3, 2, 2, rng);
  TinyBlock blk;
  const Tensor input = RandTensor(3, 3, 11);
  const Tensor gy = RandTensor(2, 4, 12);
  std::vector<Param*> params;
  layer.CollectParams(params);
  for (Param* p : params) {
    CheckParamGrad(layer, *p, blk, input, gy, 1e-2f);
  }
}

TEST(GatLayerTest, InputGradMatchesFiniteDifference) {
  Rng rng(13);
  GatLayer layer(3, 2, 1, rng);
  TinyBlock blk;
  Tensor input = RandTensor(3, 3, 14);
  const Tensor gy = RandTensor(2, 2, 15);
  std::unique_ptr<LayerContext> ctx;
  layer.Forward(blk.csr(), blk.num_dst, input, &ctx);
  const Tensor gin = layer.Backward(blk.csr(), blk.num_dst, *ctx, gy);
  const float eps = 1e-2f;
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    const float orig = input.data()[i];
    input.data()[i] = orig + eps;
    const Tensor op = layer.Forward(blk.csr(), blk.num_dst, input, nullptr);
    input.data()[i] = orig - eps;
    const Tensor om = layer.Forward(blk.csr(), blk.num_dst, input, nullptr);
    input.data()[i] = orig;
    EXPECT_NEAR(gin.data()[i], (Inner(op, gy) - Inner(om, gy)) / (2 * eps), 2e-2f);
  }
}

TEST(GatLayerTest, SplitPathMatchesMonolithic) {
  // Project + AttentionForward must equal Forward (the engine relies on
  // composing them across a communication boundary).
  Rng rng(16);
  GatLayer layer(4, 3, 2, rng);
  TinyBlock blk;
  const Tensor input = RandTensor(3, 4, 17);
  const Tensor whole = layer.Forward(blk.csr(), blk.num_dst, input, nullptr);
  const Tensor z = layer.Project(input);
  const Tensor split = layer.AttentionForward(blk.csr(), blk.num_dst, z, nullptr);
  EXPECT_LT(MaxAbsDiff(whole, split), 1e-6f);
}

TEST(GatLayerTest, AttentionWeightsNormalized) {
  Rng rng(18);
  GatLayer layer(3, 2, 2, rng);
  TinyBlock blk;
  const Tensor input = RandTensor(3, 3, 19);
  const Tensor z = layer.Project(input);
  std::unique_ptr<GatAttentionContext> ctx;
  layer.AttentionForward(blk.csr(), blk.num_dst, z, &ctx);
  for (const auto& alpha : ctx->alpha) {
    EXPECT_NEAR(alpha[0] + alpha[1], 1.0f, 1e-5f);  // dst0 edges
    EXPECT_NEAR(alpha[2] + alpha[3], 1.0f, 1e-5f);  // dst1 edges
  }
}

TEST(GnnModelTest, DimensionChaining) {
  ModelConfig cfg;
  cfg.kind = ModelKind::kSage;
  cfg.num_layers = 3;
  cfg.input_dim = 24;
  cfg.hidden_dim = 16;
  cfg.num_classes = 5;
  GnnModel m(cfg);
  EXPECT_EQ(m.num_layers(), 3);
  EXPECT_EQ(m.layer(0).in_dim(), 24);
  EXPECT_EQ(m.layer(0).out_dim(), 16);
  EXPECT_EQ(m.layer(2).out_dim(), 5);
}

TEST(GnnModelTest, GatHeadsConcatAcrossLayers) {
  ModelConfig cfg;
  cfg.kind = ModelKind::kGat;
  cfg.num_layers = 3;
  cfg.input_dim = 12;
  cfg.hidden_dim = 8;
  cfg.gat_heads = 4;
  cfg.num_classes = 7;
  GnnModel m(cfg);
  EXPECT_EQ(m.layer(0).out_dim(), 32);  // 4 heads x 8
  EXPECT_EQ(m.layer(1).in_dim(), 32);
  EXPECT_EQ(m.layer(2).out_dim(), 7);  // final layer single head
}

TEST(GnnModelTest, IdenticalSeedsGiveIdenticalReplicas) {
  ModelConfig cfg;
  cfg.kind = ModelKind::kSage;
  cfg.num_layers = 2;
  cfg.input_dim = 8;
  cfg.hidden_dim = 4;
  cfg.num_classes = 3;
  GnnModel a(cfg), b(cfg);
  const auto pa = a.Params();
  const auto pb = b.Params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(MaxAbsDiff(pa[i]->value, pb[i]->value), 0.0f);
  }
  EXPECT_GT(a.ParamBytes(), 0);
}

TEST(GnnModelTest, RejectsInvalidConfigs) {
  ModelConfig cfg;
  cfg.num_layers = 0;
  cfg.input_dim = 8;
  cfg.num_classes = 3;
  EXPECT_THROW(GnnModel{cfg}, Error);
  cfg.num_layers = 2;
  cfg.input_dim = 0;
  EXPECT_THROW(GnnModel{cfg}, Error);
}

TEST(OptimizerTest, SgdStepsAgainstGradient) {
  Param p("w", 1, 2);
  p.value = Tensor(1, 2, {1.0f, -1.0f});
  p.grad = Tensor(1, 2, {0.5f, -0.5f});
  Sgd opt(0.1f);
  opt.Step({&p});
  EXPECT_FLOAT_EQ(p.value(0, 0), 0.95f);
  EXPECT_FLOAT_EQ(p.value(0, 1), -0.95f);
}

TEST(OptimizerTest, SgdWeightDecay) {
  Param p("w", 1, 1);
  p.value = Tensor(1, 1, {2.0f});
  p.grad = Tensor(1, 1, {0.0f});
  Sgd opt(0.1f, /*weight_decay=*/0.5f);
  opt.Step({&p});
  EXPECT_FLOAT_EQ(p.value(0, 0), 2.0f - 0.1f * 0.5f * 2.0f);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  // Minimize (x - 3)^2 with Adam; grad = 2(x-3).
  Param p("x", 1, 1);
  p.value = Tensor(1, 1, {0.0f});
  Adam opt(0.1f);
  for (int i = 0; i < 300; ++i) {
    p.grad = Tensor(1, 1, {2.0f * (p.value(0, 0) - 3.0f)});
    opt.Step({&p});
  }
  EXPECT_NEAR(p.value(0, 0), 3.0f, 0.05f);
}

TEST(OptimizerTest, AdamFirstStepIsLrSized) {
  Param p("x", 1, 1);
  p.value = Tensor(1, 1, {1.0f});
  p.grad = Tensor(1, 1, {123.0f});
  Adam opt(0.01f);
  opt.Step({&p});
  // Bias-corrected first step is ~lr regardless of gradient scale.
  EXPECT_NEAR(p.value(0, 0), 1.0f - 0.01f, 1e-4f);
}

}  // namespace
}  // namespace apt
