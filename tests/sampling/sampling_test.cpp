// Tests for blocks, the neighbor sampler, mini-batch planning, and
// access-frequency collection.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <unordered_set>

#include "graph/generators.h"
#include "sampling/frequency.h"
#include "sampling/minibatch.h"
#include "sampling/neighbor_sampler.h"

namespace apt {
namespace {

CsrGraph TestGraph() { return ErdosRenyi(500, 5000, Rng(17)); }

TEST(BlockTest, ValidateAcceptsWellFormed) {
  Block b;
  b.src_nodes = {10, 20, 30};
  b.num_dst = 2;
  b.indptr = {0, 1, 3};
  b.col = {2, 0, 1};
  b.Validate();
  EXPECT_EQ(b.num_src(), 3);
  EXPECT_EQ(b.num_edges(), 3);
  EXPECT_EQ(b.dst_nodes().size(), 2u);
  EXPECT_GT(b.bytes(), 0);
}

TEST(BlockTest, ValidateRejectsBadCol) {
  Block b;
  b.src_nodes = {1, 2};
  b.num_dst = 1;
  b.indptr = {0, 1};
  b.col = {5};
  EXPECT_THROW(b.Validate(), Error);
}

TEST(BlockTest, ValidateRejectsBadIndptr) {
  Block b;
  b.src_nodes = {1};
  b.num_dst = 1;
  b.indptr = {0, 2};
  b.col = {0};
  EXPECT_THROW(b.Validate(), Error);
}

class SamplerTest : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(SamplerTest, StructureInvariantsHold) {
  const CsrGraph g = TestGraph();
  NeighborSampler sampler(g, GetParam());
  Rng rng(1);
  const std::vector<NodeId> seeds{1, 5, 9, 13, 200};
  const SampledBatch batch = sampler.Sample(seeds, rng);
  ASSERT_EQ(batch.blocks.size(), GetParam().size());
  for (const Block& b : batch.blocks) b.Validate();
  // The last block's destinations are exactly the seeds.
  const Block& last = batch.blocks.back();
  ASSERT_EQ(last.num_dst, static_cast<std::int64_t>(seeds.size()));
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(last.src_nodes[i], seeds[i]);
  }
  // Layer chaining: block k's source set equals block k+1's dst prefix.
  for (std::size_t k = 0; k + 1 < batch.blocks.size(); ++k) {
    const Block& outer = batch.blocks[k];
    const Block& inner = batch.blocks[k + 1];
    ASSERT_EQ(outer.num_dst, inner.num_src());
    for (std::int64_t i = 0; i < outer.num_dst; ++i) {
      EXPECT_EQ(outer.src_nodes[static_cast<std::size_t>(i)],
                inner.src_nodes[static_cast<std::size_t>(i)]);
    }
  }
}

TEST_P(SamplerTest, FanoutBoundsRespected) {
  const CsrGraph g = TestGraph();
  NeighborSampler sampler(g, GetParam());
  Rng rng(2);
  const std::vector<NodeId> seeds{3, 7, 11};
  const SampledBatch batch = sampler.Sample(seeds, rng);
  // Fanouts apply seed-outward; blocks are stored innermost-first.
  for (std::size_t k = 0; k < batch.blocks.size(); ++k) {
    const int fanout = GetParam()[batch.blocks.size() - 1 - k];
    const Block& b = batch.blocks[k];
    for (std::int64_t i = 0; i < b.num_dst; ++i) {
      const std::int64_t deg = b.indptr[static_cast<std::size_t>(i) + 1] -
                               b.indptr[static_cast<std::size_t>(i)];
      EXPECT_LE(deg, fanout);
      const NodeId v = b.src_nodes[static_cast<std::size_t>(i)];
      EXPECT_LE(deg, g.Degree(v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, SamplerTest,
                         ::testing::Values(std::vector<int>{3},
                                           std::vector<int>{4, 2},
                                           std::vector<int>{10, 5},
                                           std::vector<int>{5, 4, 3}),
                         [](const auto& info) {
                           std::string n = "f";
                           for (int f : info.param) n += "_" + std::to_string(f);
                           return n;
                         });

TEST(SamplerTest, SampledNeighborsAreRealAndDistinct) {
  const CsrGraph g = TestGraph();
  NeighborSampler sampler(g, {5});
  Rng rng(3);
  const std::vector<NodeId> seeds{42};
  const SampledBatch batch = sampler.Sample(seeds, rng);
  const Block& b = batch.blocks[0];
  std::set<NodeId> seen;
  const auto nbrs = g.Neighbors(42);
  const std::unordered_set<NodeId> nbr_set(nbrs.begin(), nbrs.end());
  for (std::int64_t e = b.indptr[0]; e < b.indptr[1]; ++e) {
    const NodeId u = b.src_nodes[static_cast<std::size_t>(b.col[static_cast<std::size_t>(e)])];
    EXPECT_TRUE(nbr_set.count(u)) << "sampled non-neighbor " << u;
    EXPECT_TRUE(seen.insert(u).second) << "duplicate neighbor " << u;
  }
}

TEST(SamplerTest, SmallDegreeTakesAllNeighbors) {
  // Star: node 0 has exactly 2 in-neighbors; fanout 10 must take both.
  const std::vector<NodeId> src{1, 2};
  const std::vector<NodeId> dst{0, 0};
  const CsrGraph g = BuildCsr(3, src, dst, false);
  NeighborSampler sampler(g, {10});
  Rng rng(4);
  const std::vector<NodeId> seeds{0};
  const SampledBatch batch = sampler.Sample(seeds, rng);
  EXPECT_EQ(batch.blocks[0].num_edges(), 2);
}

TEST(SamplerTest, DeterministicGivenRng) {
  const CsrGraph g = TestGraph();
  NeighborSampler sampler(g, {4, 3});
  Rng r1(9), r2(9);
  const std::vector<NodeId> seeds{5, 10, 15};
  const SampledBatch a = sampler.Sample(seeds, r1);
  const SampledBatch b = sampler.Sample(seeds, r2);
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t k = 0; k < a.blocks.size(); ++k) {
    EXPECT_EQ(a.blocks[k].src_nodes, b.blocks[k].src_nodes);
    EXPECT_EQ(a.blocks[k].col, b.blocks[k].col);
  }
}

TEST(SamplerTest, EmptySeedsYieldEmptyBlocks) {
  const CsrGraph g = TestGraph();
  NeighborSampler sampler(g, {3, 3});
  Rng rng(5);
  const SampledBatch batch = sampler.Sample({}, rng);
  for (const Block& b : batch.blocks) {
    EXPECT_EQ(b.num_dst, 0);
    EXPECT_EQ(b.num_edges(), 0);
  }
}

TEST(MinibatchTest, EpochShufflesAreEpochIndexed) {
  std::vector<NodeId> seeds(100);
  std::iota(seeds.begin(), seeds.end(), NodeId{0});
  MinibatchPlan plan(seeds, 10, 2);
  const auto e0 = plan.EpochSeeds(0);
  const auto e0_again = plan.EpochSeeds(0);
  const auto e1 = plan.EpochSeeds(1);
  EXPECT_EQ(e0, e0_again);
  EXPECT_NE(e0, e1);
  // Both are permutations of the seed set.
  std::set<NodeId> s0(e0.begin(), e0.end()), s1(e1.begin(), e1.end());
  EXPECT_EQ(s0.size(), 100u);
  EXPECT_EQ(s1.size(), 100u);
}

TEST(MinibatchTest, StepsCoverEverySeedOnce) {
  std::vector<NodeId> seeds(103);
  std::iota(seeds.begin(), seeds.end(), NodeId{0});
  MinibatchPlan plan(seeds, 10, 2);  // 20 per global step -> 6 steps
  EXPECT_EQ(plan.StepsPerEpoch(), 6);
  const auto epoch = plan.EpochSeeds(3);
  std::multiset<NodeId> seen;
  for (std::int64_t s = 0; s < plan.StepsPerEpoch(); ++s) {
    for (NodeId v : plan.StepSeeds(epoch, s)) seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 103u);
  for (NodeId v : seeds) EXPECT_EQ(seen.count(v), 1u);
}

TEST(MinibatchTest, RejectsEmptyOrInvalid) {
  EXPECT_THROW(MinibatchPlan({}, 10, 2), Error);
  EXPECT_THROW(MinibatchPlan({1}, 0, 2), Error);
  EXPECT_THROW(MinibatchPlan({1}, 4, 0), Error);
}

TEST(FrequencyTest, CountsInputNodes) {
  FrequencyCollector freq(10);
  SampledBatch batch;
  Block b;
  b.src_nodes = {1, 2, 3};
  b.num_dst = 1;
  b.indptr = {0, 2};
  b.col = {1, 2};
  batch.blocks.push_back(b);
  freq.Record(batch);
  freq.Record(batch);
  EXPECT_EQ(freq.counts()[1], 2);
  EXPECT_EQ(freq.counts()[0], 0);
  EXPECT_EQ(freq.TotalAccesses(), 6);
  freq.RecordNodes(std::vector<NodeId>{9, 9});
  EXPECT_EQ(freq.counts()[9], 2);
}

TEST(FrequencyTest, HotnessOrderDescending) {
  FrequencyCollector freq(4);
  freq.RecordNodes(std::vector<NodeId>{2, 2, 2, 0, 0, 3});
  const auto order = freq.NodesByHotness();
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 0);
  EXPECT_EQ(order[2], 3);
  EXPECT_EQ(order[3], 1);
}

}  // namespace
}  // namespace apt
