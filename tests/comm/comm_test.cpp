// Collective-communication tests: exact data movement, clock semantics,
// and cost-model sanity (inter-machine slower than intra-machine).
#include <gtest/gtest.h>

#include "comm/collectives.h"
#include "comm/profiler.h"
#include "tensor/ops.h"

namespace apt {
namespace {

Tensor Filled(std::int64_t r, std::int64_t c, float v) {
  Tensor t(r, c);
  t.Fill(v);
  return t;
}

TEST(AllToAllTest, RoutesTensorsExactly) {
  SimContext sim(SingleMachineCluster(3));
  Communicator comm(sim);
  std::vector<std::vector<Tensor>> parts(3, std::vector<Tensor>(3));
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      parts[i][j] = Filled(1, 2, static_cast<float>(10 * i + j));
    }
  }
  const auto recv = comm.AllToAllTensors(parts, Phase::kTrain);
  for (int j = 0; j < 3; ++j) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_FLOAT_EQ(recv[j][i](0, 0), static_cast<float>(10 * i + j));
    }
  }
  EXPECT_GT(sim.MaxNow(), 0.0);
}

TEST(AllToAllTest, EmptyTensorsAreFree) {
  SimContext sim(SingleMachineCluster(2));
  Communicator comm(sim);
  std::vector<std::vector<Tensor>> parts(2, std::vector<Tensor>(2));
  comm.AllToAllTensors(parts, Phase::kTrain);
  // Only barrier synchronization, no transfer time.
  EXPECT_DOUBLE_EQ(sim.MaxNow(), 0.0);
}

TEST(AllToAllTest, ClocksSynchronizedAfter) {
  SimContext sim(SingleMachineCluster(4));
  Communicator comm(sim);
  sim.Advance(2, 1.0, Phase::kSample);  // straggler
  std::vector<std::vector<Tensor>> parts(4, std::vector<Tensor>(4));
  parts[0][1] = Filled(100, 10, 1.0f);
  comm.AllToAllTensors(parts, Phase::kTrain);
  const double t = sim.Now(0);
  for (DeviceId d = 1; d < 4; ++d) EXPECT_DOUBLE_EQ(sim.Now(d), t);
  EXPECT_GE(t, 1.0);
}

TEST(AllToAllVecTest, RoutesVectors) {
  SimContext sim(SingleMachineCluster(2));
  Communicator comm(sim);
  std::vector<std::vector<std::vector<int>>> sends(2,
                                                   std::vector<std::vector<int>>(2));
  sends[0][1] = {1, 2, 3};
  sends[1][0] = {7};
  const auto recv = comm.AllToAllVec(sends, Phase::kSample);
  EXPECT_EQ(recv[1][0], (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(recv[0][1], (std::vector<int>{7}));
  EXPECT_TRUE(recv[0][0].empty());
}

TEST(AllReduceTest, SumsAcrossDevices) {
  SimContext sim(SingleMachineCluster(3));
  Communicator comm(sim);
  std::vector<Tensor> bufs;
  for (int i = 0; i < 3; ++i) bufs.push_back(Filled(2, 2, static_cast<float>(i + 1)));
  std::vector<Tensor*> ptrs{&bufs[0], &bufs[1], &bufs[2]};
  comm.AllReduceSum(ptrs, Phase::kTrain);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(bufs[static_cast<std::size_t>(i)](0, 0), 6.0f);
    EXPECT_FLOAT_EQ(bufs[static_cast<std::size_t>(i)](1, 1), 6.0f);
  }
}

TEST(AllReduceTest, ShapeMismatchThrows) {
  SimContext sim(SingleMachineCluster(2));
  Communicator comm(sim);
  Tensor a(2, 2), b(3, 2);
  std::vector<Tensor*> ptrs{&a, &b};
  EXPECT_THROW(comm.AllReduceSum(ptrs, Phase::kTrain), Error);
}

TEST(AllBroadcastTest, EveryoneSeesEverything) {
  SimContext sim(SingleMachineCluster(2));
  Communicator comm(sim);
  std::vector<Tensor> inputs{Filled(1, 1, 3.0f), Filled(1, 1, 4.0f)};
  const auto out = comm.AllBroadcastTensors(inputs, Phase::kSample);
  EXPECT_FLOAT_EQ(out[0](0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out[1](0, 0), 4.0f);
}

TEST(AllBroadcastObjectsTest, ChargesBytesFn) {
  SimContext sim(SingleMachineCluster(2));
  Communicator comm(sim);
  std::vector<std::string> inputs{"hello", "world!"};
  const auto out = comm.AllBroadcastObjects(
      std::move(inputs), [](const std::string& s) { return s.size(); }, Phase::kSample);
  EXPECT_EQ(out[1], "world!");
  EXPECT_GT(sim.MaxNow(), 0.0);
}

TEST(GroupReduceTest, AccumulatesPartialsAtDestination) {
  SimContext sim(SingleMachineCluster(2));
  Communicator comm(sim);
  // Device 0 and device 1 both contribute partial rows for device 0's
  // output rows {0, 1}.
  std::vector<std::vector<Tensor>> parts(2, std::vector<Tensor>(2));
  std::vector<std::vector<std::vector<std::int64_t>>> index(
      2, std::vector<std::vector<std::int64_t>>(2));
  parts[0][0] = Filled(2, 1, 1.0f);
  index[0][0] = {0, 1};
  parts[1][0] = Filled(1, 1, 5.0f);
  index[1][0] = {1};
  Tensor out0(2, 1);
  std::vector<Tensor*> outs{&out0, nullptr};
  comm.GroupReduce(parts, index, outs, Phase::kTrain);
  EXPECT_FLOAT_EQ(out0(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out0(1, 0), 6.0f);
}

TEST(RingBottleneckTest, CrossMachineDominates) {
  SimContext single(SingleMachineCluster(4));
  SimContext multi(MultiMachineCluster(2, 2));
  Communicator cs(single), cm(multi);
  EXPECT_GT(cs.RingBottleneck().bandwidth_bytes_per_s, 0.0);
  EXPECT_EQ(cm.RingBottleneck().bandwidth_bytes_per_s,
            multi.cluster().network.bandwidth_bytes_per_s);
}

TEST(CollectiveCostTest, CrossMachineAllReduceSlower) {
  const std::int64_t rows = 4096;
  SimContext s1(SingleMachineCluster(4));
  {
    Communicator comm(s1);
    std::vector<Tensor> bufs(4, Tensor(rows, 16));
    std::vector<Tensor*> ptrs;
    for (auto& b : bufs) ptrs.push_back(&b);
    comm.AllReduceSum(ptrs, Phase::kTrain);
  }
  SimContext s2(MultiMachineCluster(2, 2));
  {
    Communicator comm(s2);
    std::vector<Tensor> bufs(4, Tensor(rows, 16));
    std::vector<Tensor*> ptrs;
    for (auto& b : bufs) ptrs.push_back(&b);
    comm.AllReduceSum(ptrs, Phase::kTrain);
  }
  EXPECT_GT(s2.MaxNow(), s1.MaxNow());
}

TEST(ProfilerTest, ProfilesAreOrderedSensibly) {
  const CommProfile p = ProfileCommunication(SingleMachineCluster(8));
  EXPECT_GT(p.alltoall_bytes_per_s, 0.0);
  EXPECT_GT(p.allreduce_bytes_per_s, 0.0);
  EXPECT_GT(p.broadcast_bytes_per_s, 0.0);
  // GPU cache reads are far faster than CPU reads over PCIe.
  EXPECT_GT(p.gpu_cache_bytes_per_s, 10 * p.local_cpu_bytes_per_s);
  // Single machine has no remote-CPU channel.
  EXPECT_EQ(p.remote_cpu_bytes_per_s, 0.0);
}

TEST(ProfilerTest, MultiMachineRemoteChannelSlower) {
  const CommProfile p = ProfileCommunication(MultiMachineCluster(2, 4));
  EXPECT_GT(p.remote_cpu_bytes_per_s, 0.0);
  EXPECT_LT(p.remote_cpu_bytes_per_s, p.local_cpu_bytes_per_s * 1.01);
  // Collectives spanning machines are slower than single-machine ones.
  const CommProfile ps = ProfileCommunication(SingleMachineCluster(8));
  EXPECT_LT(p.allreduce_bytes_per_s, ps.allreduce_bytes_per_s * 1.01);
}

TEST(ProfilerTest, NvlinkSpeedsUpPeerReads) {
  const CommProfile with = ProfileCommunication(SingleMachineCluster(4, true));
  const CommProfile without = ProfileCommunication(SingleMachineCluster(4, false));
  EXPECT_GT(with.peer_gpu_bytes_per_s, without.peer_gpu_bytes_per_s);
}

}  // namespace
}  // namespace apt
