// Shared fixtures and helpers for the APT test suite.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "apt/dryrun.h"
#include "engine/trainer.h"
#include "feature/cache_policy.h"
#include "graph/dataset.h"
#include "partition/partitioner.h"
#include "sim/hardware.h"
#include "tensor/ops.h"

namespace apt::testing {

/// A small, fast dataset for engine tests (learnable, community-structured).
inline Dataset SmallDataset(std::int64_t feature_dim = 32, NodeId nodes = 2000,
                            std::uint64_t seed = 3) {
  DatasetParams p;
  p.name = "test";
  p.num_nodes = nodes;
  p.num_edges = nodes * 8;
  p.feature_dim = feature_dim;
  p.num_classes = 6;
  p.num_communities = 6;
  p.zipf_exponent = 0.7;
  p.intra_prob = 0.85;
  p.seed = seed;
  return MakeDataset(p);
}

/// Builds a trainer for `strategy` with the full Plan-derived cache config.
/// `force_chunked` pins the seed assignment so different strategies consume
/// identical mini-batches (the precondition of exact equivalence checks).
inline std::unique_ptr<ParallelTrainer> MakeTrainer(
    const Dataset& ds, const ClusterSpec& cluster, Strategy strategy,
    ModelKind kind = ModelKind::kSage, bool force_chunked = true,
    std::int64_t cache_bytes = 1 << 20, std::vector<int> fanouts = {5, 5},
    std::int64_t batch = 128, std::int64_t hidden = 0,
    RecoveryOptions recovery = {}, int pipeline_depth = 1,
    Codec wire_codec = Codec::kIdentity, Codec storage_codec = Codec::kIdentity,
    Codec grad_codec = Codec::kIdentity) {
  ModelConfig model;
  model.kind = kind;
  model.num_layers = static_cast<int>(fanouts.size());
  model.hidden_dim = hidden > 0 ? hidden : (kind == ModelKind::kGat ? 4 : 16);
  model.gat_heads = 2;
  model.input_dim = ds.feature_dim();
  model.num_classes = ds.num_classes;

  EngineOptions opts;
  opts.strategy = strategy;
  opts.fanouts = std::move(fanouts);
  opts.batch_size_per_device = batch;
  opts.cache_bytes_per_device = cache_bytes;
  opts.seed_assignment = force_chunked ? SeedAssignment::kChunked
                                       : EngineOptions::DefaultAssignment(strategy);
  opts.recovery = recovery;
  opts.pipeline_depth = pipeline_depth;
  opts.wire_codec = wire_codec;
  opts.storage_codec = storage_codec;
  opts.grad_codec = grad_codec;

  MultilevelPartitioner part;
  std::vector<PartId> partition = part.Partition(ds.graph, cluster.num_devices());
  const DryRunResult dry = DryRun(ds, cluster, partition, opts, model);

  TrainerSetup setup;
  setup.cluster = cluster;
  setup.model = model;
  setup.engine = opts;
  setup.partition = std::move(partition);
  setup.cache = dry.caches[static_cast<std::size_t>(strategy)];
  setup.feature_placement = FeaturePlacementFromPartition(setup.partition, cluster);
  return std::make_unique<ParallelTrainer>(ds, std::move(setup));
}

/// As MakeTrainer, but driven by a fully caller-specified EngineOptions —
/// the scale-mode suites tweak sim options / sampling periods / step caps
/// that the positional MakeTrainer signature doesn't expose. The model is
/// derived the same way (Sage, hidden 16 unless overridden).
inline std::unique_ptr<ParallelTrainer> MakeTrainerWithOptions(
    const Dataset& ds, const ClusterSpec& cluster, EngineOptions opts,
    std::int64_t hidden = 0, ModelKind kind = ModelKind::kSage) {
  ModelConfig model;
  model.kind = kind;
  model.num_layers = static_cast<int>(opts.fanouts.size());
  model.hidden_dim = hidden > 0 ? hidden : (kind == ModelKind::kGat ? 4 : 16);
  model.gat_heads = 2;
  model.input_dim = ds.feature_dim();
  model.num_classes = ds.num_classes;

  MultilevelPartitioner part;
  std::vector<PartId> partition = part.Partition(ds.graph, cluster.num_devices());
  const DryRunResult dry = DryRun(ds, cluster, partition, opts, model);

  TrainerSetup setup;
  setup.cluster = cluster;
  setup.model = model;
  setup.engine = opts;
  setup.partition = std::move(partition);
  setup.cache = dry.caches[static_cast<std::size_t>(opts.strategy)];
  setup.feature_placement = FeaturePlacementFromPartition(setup.partition, cluster);
  return std::make_unique<ParallelTrainer>(ds, std::move(setup));
}

/// Max absolute parameter difference between two trained replicas.
inline double MaxParamDiff(GnnModel& a, GnnModel& b) {
  const auto pa = a.Params();
  const auto pb = b.Params();
  EXPECT_EQ(pa.size(), pb.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < std::min(pa.size(), pb.size()); ++i) {
    worst = std::max(worst,
                     static_cast<double>(MaxAbsDiff(pa[i]->value, pb[i]->value)));
  }
  return worst;
}

/// The Fig 6 strategy-equivalence property on one configuration: NFP, SNP,
/// and DNP trained on IDENTICAL mini-batches (chunked assignment) match
/// GDP's loss within `loss_tol` and parameters within `param_tol` after
/// `epochs` epochs. float32 accumulation-order noise bounds the tolerances
/// away from zero.
inline void ExpectStrategyParity(const Dataset& ds, const ClusterSpec& cluster,
                                 std::vector<int> fanouts, std::int64_t batch,
                                 std::int64_t hidden, int epochs = 1,
                                 double loss_tol = 1e-3, double param_tol = 2e-3) {
  auto ref = MakeTrainer(ds, cluster, Strategy::kGDP, ModelKind::kSage,
                         /*force_chunked=*/true, 1 << 18, fanouts, batch, hidden);
  std::vector<EpochStats> ref_stats;
  for (int e = 0; e < epochs; ++e) ref_stats.push_back(ref->TrainEpoch(e));
  for (Strategy s : {Strategy::kNFP, Strategy::kSNP, Strategy::kDNP}) {
    auto alt = MakeTrainer(ds, cluster, s, ModelKind::kSage,
                           /*force_chunked=*/true, 1 << 18, fanouts, batch, hidden);
    for (int e = 0; e < epochs; ++e) {
      const EpochStats alt_stats = alt->TrainEpoch(e);
      EXPECT_NEAR(ref_stats[static_cast<std::size_t>(e)].loss, alt_stats.loss,
                  loss_tol)
          << ToString(s) << " epoch " << e;
    }
    EXPECT_LT(MaxParamDiff(ref->model0(), alt->model0()), param_tol) << ToString(s);
  }
}

}  // namespace apt::testing
