// Flight-recorder unit tests: ring wrap-around keeps the newest events in
// sequence order, steady-state recording never allocates new rings, and a
// fault dump is parseable JSON carrying the schema header, the dump reason,
// and the recorded events' args.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace apt {
namespace {

using obs::FlightEvent;
using obs::FlightRecorder;
using obs::JsonValue;
using obs::ParseJson;
using obs::ParseJsonFile;

// The recorder is process-global; start each test from empty rings.
class FlightTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::Flight().Clear(); }
  void TearDown() override {
    obs::Flight().Clear();
    obs::Flight().SetDumpDir(".");
  }
};

TEST_F(FlightTest, RingWrapAroundKeepsTheMostRecentEvents) {
  const std::size_t cap = FlightRecorder::kRingCapacity;
  const std::size_t total = cap + 44;  // force 44 overwrites
  for (std::size_t i = 0; i < total; ++i) {
    obs::Flight().Record("test.ev", "wrap", /*sim_s=*/static_cast<double>(i),
                         {{"i", static_cast<double>(i), nullptr}});
  }
  const std::vector<FlightEvent> events = obs::Flight().Snapshot();
  ASSERT_EQ(events.size(), cap);  // bounded: older events were overwritten
  // The survivors are exactly the LAST `cap` records, in seq order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].args[0].num,
                     static_cast<double>(total - cap + i));
    if (i > 0) EXPECT_GT(events[i].seq, events[i - 1].seq);
  }
  EXPECT_GE(obs::Flight().Dropped(), static_cast<std::uint64_t>(44));
}

TEST_F(FlightTest, SteadyStateRecordingAllocatesNoNewRings) {
  // First record on this thread may create its ring ...
  obs::Flight().Record("test.ev");
  const std::int64_t rings = obs::Flight().RingsAllocated();
  const std::uint64_t recorded0 = obs::Flight().TotalRecorded();
  // ... after which recording is ring-reuse only (the zero-allocation
  // property the header promises, pinned via the ring count).
  for (int i = 0; i < 10 * static_cast<int>(FlightRecorder::kRingCapacity); ++i) {
    obs::Flight().Record("test.ev", "steady", -1.0,
                         {{"i", static_cast<double>(i), nullptr}});
  }
  EXPECT_EQ(obs::Flight().RingsAllocated(), rings);
  EXPECT_EQ(obs::Flight().TotalRecorded() - recorded0,
            10u * FlightRecorder::kRingCapacity);
}

TEST_F(FlightTest, WriteJsonCarriesSchemaHeaderReasonAndArgs) {
  obs::Flight().Record("collective.fail", "alltoall", /*sim_s=*/0.25,
                       {{"bytes", 4096.0, nullptr},
                        {"fraction", 0.5, nullptr},
                        {"class", 0.0, "cross_machine"}});
  std::ostringstream os;
  obs::Flight().WriteJson(os, "unit-test reason");

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(os.str(), &doc, &error)) << error;
  EXPECT_DOUBLE_EQ(doc.NumOr("schema_version", 0.0),
                   static_cast<double>(obs::kObsSchemaVersion));
  const JsonValue* meta = doc.Find("meta");
  ASSERT_NE(meta, nullptr);
  ASSERT_NE(meta->StrOrNull("kind"), nullptr);
  EXPECT_EQ(*meta->StrOrNull("kind"), "flight");
  ASSERT_NE(doc.StrOrNull("reason"), nullptr);
  EXPECT_EQ(*doc.StrOrNull("reason"), "unit-test reason");

  const JsonValue* events = doc.Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->arr.size(), 1u);
  const JsonValue& e = events->arr[0];
  EXPECT_EQ(*e.StrOrNull("kind"), "collective.fail");
  EXPECT_EQ(*e.StrOrNull("label"), "alltoall");
  EXPECT_DOUBLE_EQ(e.NumOr("sim_s", 0.0), 0.25);
  const JsonValue* args = e.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(args->NumOr("bytes", 0.0), 4096.0);
  EXPECT_DOUBLE_EQ(args->NumOr("fraction", 0.0), 0.5);
  ASSERT_NE(args->StrOrNull("class"), nullptr);
  EXPECT_EQ(*args->StrOrNull("class"), "cross_machine");
}

TEST_F(FlightTest, DumpOnFaultWritesAParseableFileAndBumpsTheCounter) {
  const std::string dir =
      ::testing::TempDir() + "flight_unit_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  std::filesystem::create_directories(dir);
  obs::Flight().SetDumpDir(dir);
  obs::Flight().Record("barrier.poisoned");

  const std::int64_t dumps0 = obs::Metrics::Global().counter("flight.dumps").Get();
  const std::string path = obs::Flight().DumpOnFault("injected for test");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.rfind(dir + "/flight_", 0), 0u) << path;
  EXPECT_EQ(obs::Metrics::Global().counter("flight.dumps").Get(), dumps0 + 1);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJsonFile(path, &doc, &error)) << error;
  EXPECT_EQ(*doc.StrOrNull("reason"), "injected for test");
  const JsonValue* events = doc.Find("events");
  ASSERT_NE(events, nullptr);
  bool saw_poison = false;
  for (const JsonValue& e : events->arr) {
    if (e.StrOrNull("kind") != nullptr && *e.StrOrNull("kind") == "barrier.poisoned") {
      saw_poison = true;
    }
  }
  EXPECT_TRUE(saw_poison);
}

TEST_F(FlightTest, DumpOnFaultToAMissingDirectoryReportsFailure) {
  obs::Flight().SetDumpDir("/nonexistent-apt-flight-dir");
  EXPECT_EQ(obs::Flight().DumpOnFault("unwritable"), "");
}

TEST_F(FlightTest, ClearDropsEventsButKeepsRings) {
  obs::Flight().Record("test.ev");
  const std::int64_t rings = obs::Flight().RingsAllocated();
  obs::Flight().Clear();
  EXPECT_TRUE(obs::Flight().Snapshot().empty());
  EXPECT_EQ(obs::Flight().RingsAllocated(), rings);
}

}  // namespace
}  // namespace apt
