// Online telemetry tests: log-scale histogram bucket math and merge
// algebra, windowed time-series determinism (including under real thread
// schedules — this file runs in the TSan job), the Telemetry registry and
// its exporters, and the declarative SLO rules + watchdog.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.h"
#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/telemetry.h"
#include "runtime/parallel_for.h"

namespace apt {
namespace {

using obs::Histogram;
using obs::JsonValue;
using obs::ParseJson;
using obs::SloCmp;
using obs::SloRule;
using obs::SloStat;
using obs::SloViolation;
using obs::SloWatchdog;
using obs::Telemetry;
using obs::TimeSeries;
using obs::WindowStats;

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::Metrics::ResetForTest(); }
  void TearDown() override { obs::Metrics::ResetForTest(); }
};

// ---------------------------------------------------------------------------
// Histogram bucket math
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketBoundsContainTheirValues) {
  for (const double v : {1e-9, 2.5e-7, 1e-6, 3.3e-4, 1e-3, 0.5, 1.0, 1.5,
                         7.0, 123.0, 8191.0}) {
    const int b = Histogram::BucketIndexOf(v);
    ASSERT_GT(b, 0) << v;
    ASSERT_LT(b, Histogram::kNumBuckets - 1) << v;
    EXPECT_LE(Histogram::BucketLowerBound(b), v) << v;
    EXPECT_LT(v, Histogram::BucketUpperBound(b)) << v;
    // ~12.5% relative width: 8 sub-buckets per octave.
    EXPECT_LE(Histogram::BucketWidth(b), v * 0.125 * 1.0001) << v;
  }
}

TEST(HistogramTest, BucketIndexIsMonotone) {
  int prev = 0;
  for (double v = 1e-9; v < 1e4; v *= 1.07) {
    const int b = Histogram::BucketIndexOf(v);
    EXPECT_GE(b, prev) << v;
    prev = b;
  }
}

TEST(HistogramTest, UnderflowOverflowAndJunkLandInSentinelBuckets) {
  EXPECT_EQ(Histogram::BucketIndexOf(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndexOf(-1.0), 0);
  EXPECT_EQ(Histogram::BucketIndexOf(1e-12), 0);
  EXPECT_EQ(Histogram::BucketIndexOf(std::nan("")), 0);
  EXPECT_EQ(Histogram::BucketIndexOf(1e9), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndexOf(std::numeric_limits<double>::infinity()),
            Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, RecordAndExactStats) {
  Histogram h;
  h.Record(1e-3);
  h.Record(2e-3);
  h.Record(3e-3);
  EXPECT_EQ(h.Count(), 3);
  EXPECT_NEAR(h.Sum(), 6e-3, 1e-9);
  EXPECT_NEAR(h.Mean(), 2e-3, 1e-9);
  EXPECT_NEAR(h.Min(), 1e-3, 1e-9);  // min/max are exact, not bucketed
  EXPECT_NEAR(h.Max(), 3e-3, 1e-9);
}

TEST(HistogramTest, QuantileWithinOneBucketWidth) {
  Histogram h;
  std::vector<double> values;
  for (int i = 1; i <= 1000; ++i) {
    values.push_back(static_cast<double>(i) * 1e-5);
    h.Record(values.back());
  }
  for (const double q : {0.5, 0.95, 0.99}) {
    const double exact =
        values[static_cast<std::size_t>(std::ceil(q * 1000.0)) - 1];
    const double online = h.ValueAtQuantile(q);
    // Nearest-rank over bucket UPPER bounds: never under-reports, and is
    // off by at most the bucket's width.
    EXPECT_GE(online, exact) << q;
    EXPECT_LE(online - exact,
              Histogram::BucketWidth(Histogram::BucketIndexOf(exact)) * 1.0001)
        << q;
  }
  // Overflow bucket reports the exact max instead of an upper bound.
  h.Record(1e9);
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(1.0), 1e9);
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  Histogram a, b, c;
  for (int i = 0; i < 100; ++i) a.Record(1e-4 * (i + 1));
  for (int i = 0; i < 50; ++i) b.Record(3e-3 * (i + 1));
  for (int i = 0; i < 25; ++i) c.Record(7e-2 * (i + 1));

  Histogram ab_c, a_bc, ba;
  ab_c.Merge(a);
  ab_c.Merge(b);
  ab_c.Merge(c);
  a_bc.Merge(b);
  a_bc.Merge(c);
  a_bc.Merge(a);
  ba.Merge(b);
  ba.Merge(a);

  Histogram ab;
  ab.Merge(a);
  ab.Merge(b);
  EXPECT_EQ(ab.Count(), ba.Count());
  EXPECT_EQ(ab_c.Count(), a_bc.Count());
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(ab.BucketCount(i), ba.BucketCount(i)) << i;
    EXPECT_EQ(ab_c.BucketCount(i), a_bc.BucketCount(i)) << i;
  }
  // Fixed-point sums make the merge algebra exact, not approximately so.
  EXPECT_DOUBLE_EQ(ab.Sum(), ba.Sum());
  EXPECT_DOUBLE_EQ(ab_c.Sum(), a_bc.Sum());
  EXPECT_DOUBLE_EQ(ab_c.Min(), a_bc.Min());
  EXPECT_DOUBLE_EQ(ab_c.Max(), a_bc.Max());
  EXPECT_DOUBLE_EQ(ab_c.ValueAtQuantile(0.99), a_bc.ValueAtQuantile(0.99));
}

TEST(HistogramTest, ConcurrentRecordIsDeterministic) {
  // Same multiset recorded under two different real-thread interleavings
  // must produce bit-identical stats (atomic buckets, fixed-point sums).
  // Under TSan this doubles as the data-race check for the hot path.
  const auto fill = [](Histogram& h) {
    ParallelFor(0, 8, [&](std::int64_t t) {
      for (int i = 0; i < 1000; ++i) {
        h.Record(1e-5 * static_cast<double>(t * 1000 + i + 1));
      }
    });
  };
  Histogram h1, h2;
  fill(h1);
  fill(h2);
  EXPECT_EQ(h1.Count(), h2.Count());
  EXPECT_DOUBLE_EQ(h1.Sum(), h2.Sum());
  EXPECT_DOUBLE_EQ(h1.Min(), h2.Min());
  EXPECT_DOUBLE_EQ(h1.Max(), h2.Max());
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(h1.BucketCount(i), h2.BucketCount(i)) << i;
  }
}

// ---------------------------------------------------------------------------
// TimeSeries windows
// ---------------------------------------------------------------------------

TEST(TimeSeriesTest, WindowBoundariesAreHalfOpen) {
  TimeSeries ts("t", 1e-3);
  ts.Record(0.0, 1.0);       // window 0
  ts.Record(0.9999e-3, 2.0); // still window 0
  ts.Record(1e-3, 3.0);      // exactly the boundary -> window 1
  const auto closed = ts.ClosedWindows(1e-3);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].window, 0);
  EXPECT_EQ(closed[0].count, 2);
  EXPECT_DOUBLE_EQ(closed[0].sum, 3.0);
  EXPECT_DOUBLE_EQ(closed[0].t0_s, 0.0);
  EXPECT_DOUBLE_EQ(closed[0].t1_s, 1e-3);
  // AllWindows also sees the still-open window 1.
  EXPECT_EQ(ts.AllWindows().size(), 2u);
  // Advancing "now" closes it.
  EXPECT_EQ(ts.ClosedWindows(2e-3).size(), 2u);
}

TEST(TimeSeriesTest, RingRetainsOnlyRecentWindows) {
  TimeSeries ts("t", 1.0);
  for (int w = 0; w < 100; ++w) {
    ts.Record(static_cast<double>(w) + 0.5, 1.0);
  }
  const auto all = ts.AllWindows();
  ASSERT_EQ(all.size(), static_cast<std::size_t>(TimeSeries::kRingWindows));
  EXPECT_EQ(all.front().window, 100 - TimeSeries::kRingWindows);
  EXPECT_EQ(all.back().window, 99);
}

TEST(TimeSeriesTest, ThreadedRecordingIsScheduleIndependent) {
  const auto fill = [](TimeSeries& ts) {
    ParallelFor(0, 8, [&](std::int64_t t) {
      for (int i = 0; i < 500; ++i) {
        const double time_s = 1e-5 * static_cast<double>(i);
        ts.Record(time_s, 1e-4 * static_cast<double>(t + 1));
      }
    });
  };
  TimeSeries a("a", 1e-3), b("b", 1e-3);
  fill(a);
  fill(b);
  const auto wa = a.ClosedWindows(1.0);
  const auto wb = b.ClosedWindows(1.0);
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i) {
    EXPECT_EQ(wa[i].window, wb[i].window);
    EXPECT_EQ(wa[i].count, wb[i].count);
    EXPECT_DOUBLE_EQ(wa[i].sum, wb[i].sum);
    EXPECT_DOUBLE_EQ(wa[i].min, wb[i].min);
    EXPECT_DOUBLE_EQ(wa[i].max, wb[i].max);
    EXPECT_DOUBLE_EQ(wa[i].p99, wb[i].p99);
  }
}

// ---------------------------------------------------------------------------
// Telemetry registry + exporters
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, SeriesCreateFindAndReconfigure) {
  Telemetry& t = Telemetry::Global();
  TimeSeries& s = t.series("x", 1e-3);
  EXPECT_EQ(&t.series("x", 1e-3), &s);  // same window -> same series
  s.Record(0.0, 1.0);
  EXPECT_EQ(t.Find("x"), &s);
  EXPECT_EQ(t.Find("y"), nullptr);
  // Different window reconfigures: replaces the series and clears its data.
  TimeSeries& s2 = t.series("x", 2e-3);
  EXPECT_DOUBLE_EQ(s2.window_s(), 2e-3);
  EXPECT_TRUE(s2.AllWindows().empty());
}

TEST_F(TelemetryTest, ResetForTestClearsHistogramsAndSeries) {
  obs::Metrics::Global().histogram("h").Record(1.0);
  Telemetry::Global().series("s", 1e-3).Record(0.0, 1.0);
  obs::Metrics::ResetForTest();
  EXPECT_EQ(obs::Metrics::Global().histogram("h").Count(), 0);
  const TimeSeries* s = Telemetry::Global().Find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->AllWindows().empty());
}

TEST_F(TelemetryTest, TimelineJsonlRoundTrips) {
  Telemetry& t = Telemetry::Global();
  TimeSeries& s = t.series("lat", 1e-3);
  s.Record(0.5e-3, 2e-4);
  s.Record(0.6e-3, 4e-4);
  s.Record(1.5e-3, 8e-4);
  std::ostringstream os;
  t.WriteTimelineJsonl(os);
  std::istringstream in(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  JsonValue header;
  ASSERT_TRUE(ParseJson(line, &header, nullptr)) << line;
  EXPECT_EQ(static_cast<int>(header.NumOr("schema_version", -1)), 1);
  int rows = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue row;
    ASSERT_TRUE(ParseJson(line, &row, nullptr)) << line;
    ASSERT_NE(row.StrOrNull("series"), nullptr);
    EXPECT_EQ(*row.StrOrNull("series"), "lat");
    ++rows;
  }
  EXPECT_EQ(rows, 2);  // two windows
}

TEST_F(TelemetryTest, PrometheusTextSmoke) {
  obs::Metrics::Global().counter("c.total").Increment();
  obs::Metrics::Global().histogram("h.lat").Record(1e-3);
  Telemetry::Global().series("s.lat", 1e-3).Record(0.5e-3, 1e-4);
  std::ostringstream os;
  obs::WritePrometheusText(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE apt_c_total counter"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE apt_h_lat histogram"), std::string::npos);
  EXPECT_NE(text.find("apt_h_lat_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("apt_series_s_lat"), std::string::npos);
}

TEST_F(TelemetryTest, FlightDumpCarriesTelemetrySection) {
  Telemetry::Global().series("f.lat", 1e-3).Record(0.5e-3, 1e-4);
  obs::Flight().Record("test", "x", 0.0, {});
  std::ostringstream os;
  obs::Flight().WriteJson(os, "test");
  JsonValue doc;
  ASSERT_TRUE(ParseJson(os.str(), &doc, nullptr));
  const JsonValue* telemetry = doc.Find("telemetry");
  ASSERT_NE(telemetry, nullptr);
  const JsonValue* series = telemetry->Find("f.lat");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->kind, JsonValue::kArray);
  ASSERT_EQ(series->arr.size(), 1u);
  EXPECT_EQ(static_cast<int>(series->arr[0].NumOr("count", 0)), 1);
}

// ---------------------------------------------------------------------------
// SLO rules + watchdog
// ---------------------------------------------------------------------------

TEST(SloRuleTest, ParsesTextualForms) {
  SloRule r;
  ASSERT_TRUE(obs::ParseSloRule("serve.latency_s p99 < 2ms", &r));
  EXPECT_EQ(r.series, "serve.latency_s");
  EXPECT_EQ(r.stat, SloStat::kP99);
  EXPECT_EQ(r.cmp, SloCmp::kLt);
  EXPECT_DOUBLE_EQ(r.bound, 2e-3);

  ASSERT_TRUE(obs::ParseSloRule("train.device.busy_s skew < 1.5x", &r));
  EXPECT_EQ(r.stat, SloStat::kSkew);
  EXPECT_DOUBLE_EQ(r.bound, 1.5);

  ASSERT_TRUE(obs::ParseSloRule("q count > 10", &r));
  EXPECT_EQ(r.cmp, SloCmp::kGt);
  EXPECT_DOUBLE_EQ(r.bound, 10.0);

  ASSERT_TRUE(obs::ParseSloRule("q p50 < 250us", &r));
  EXPECT_DOUBLE_EQ(r.bound, 2.5e-4);

  std::string error;
  EXPECT_FALSE(obs::ParseSloRule("", &r, &error));
  EXPECT_FALSE(obs::ParseSloRule("q p42 < 1", &r, &error));
  EXPECT_FALSE(obs::ParseSloRule("q p99 <= 1", &r, &error));
  EXPECT_FALSE(obs::ParseSloRule("q p99 < 1zz", &r, &error));
  EXPECT_FALSE(obs::ParseSloRule("q p99 < 1 extra", &r, &error));
}

TEST(SloRuleTest, StatOfWindow) {
  WindowStats w;
  w.count = 4;
  w.sum = 8.0;
  w.min = 1.0;
  w.max = 3.0;
  w.p50 = 2.0;
  w.p95 = 2.9;
  w.p99 = 3.0;
  EXPECT_DOUBLE_EQ(obs::SloStatOf(w, SloStat::kMean), 2.0);
  EXPECT_DOUBLE_EQ(obs::SloStatOf(w, SloStat::kCount), 4.0);
  EXPECT_DOUBLE_EQ(obs::SloStatOf(w, SloStat::kSkew), 1.5);  // max / mean
  EXPECT_DOUBLE_EQ(obs::SloStatOf(w, SloStat::kP99), 3.0);
}

TEST_F(TelemetryTest, WatchdogFiresOncePerWindowAndRespectsCursor) {
  TimeSeries& s = Telemetry::Global().series("w.lat", 1e-3);
  SloRule rule;
  rule.name = "lat_p99";
  rule.series = "w.lat";
  rule.stat = SloStat::kP99;
  rule.cmp = SloCmp::kLt;
  rule.bound = 1e-3;
  SloWatchdog dog({rule});
  std::vector<SloViolation> fired;
  dog.set_callback([&fired](const SloViolation& v) { fired.push_back(v); });

  s.Record(0.5e-3, 5e-3);  // window 0 violates (5ms >= 1ms)
  EXPECT_EQ(dog.Evaluate(1e-3), 1);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].window.window, 0);
  EXPECT_DOUBLE_EQ(fired[0].value, fired[0].window.p99);
  // Re-evaluating at the same time does not re-fire the same window.
  EXPECT_EQ(dog.Evaluate(1e-3), 0);
  EXPECT_EQ(dog.violations_total(), 1);
  EXPECT_GE(obs::Metrics::Global().counter("slo.violations").Get(), 1);
}

TEST_F(TelemetryTest, WatchdogSustainAndMinCount) {
  TimeSeries& s = Telemetry::Global().series("w2.lat", 1e-3);
  SloRule rule;
  rule.name = "lat_p99_sustained";
  rule.series = "w2.lat";
  rule.stat = SloStat::kP99;
  rule.cmp = SloCmp::kLt;
  rule.bound = 1e-3;
  rule.min_count = 2;
  rule.sustain_windows = 2;
  SloWatchdog dog({rule});
  int fired = 0;
  dog.set_callback([&fired](const SloViolation&) { ++fired; });

  // Window 0: violating but only 1 sample -> skipped by min_count.
  s.Record(0.5e-3, 5e-3);
  // Window 1: violating with 2 samples -> streak 1, below sustain.
  s.Record(1.2e-3, 5e-3);
  s.Record(1.3e-3, 5e-3);
  EXPECT_EQ(dog.Evaluate(2e-3), 0);
  EXPECT_EQ(fired, 0);
  // Window 2: violating again -> streak 2 == sustain, fires.
  s.Record(2.2e-3, 5e-3);
  s.Record(2.3e-3, 5e-3);
  EXPECT_EQ(dog.Evaluate(3e-3), 1);
  EXPECT_EQ(fired, 1);
  // Window 3 healthy: streak resets; window 4 violating alone stays quiet.
  s.Record(3.2e-3, 1e-4);
  s.Record(3.3e-3, 1e-4);
  s.Record(4.2e-3, 5e-3);
  s.Record(4.3e-3, 5e-3);
  EXPECT_EQ(dog.Evaluate(5e-3), 0);
  EXPECT_EQ(fired, 1);
}

TEST_F(TelemetryTest, WatchdogSkewRuleSeesStraggler) {
  TimeSeries& s = Telemetry::Global().series("w3.busy", 1e-3);
  SloRule rule;
  rule.name = "busy_skew";
  rule.series = "w3.busy";
  rule.stat = SloStat::kSkew;
  rule.cmp = SloCmp::kLt;
  rule.bound = 1.5;
  rule.min_count = 2;
  SloWatchdog dog({rule});
  int fired = 0;
  dog.set_callback([&fired](const SloViolation&) { ++fired; });

  // Window 0: balanced devices (skew 1.0) -> healthy.
  for (int d = 0; d < 4; ++d) s.Record(0.5e-3, 1e-4);
  // Window 1: one device 3x busier -> skew = 3 / 1.5 = 2.0 >= 1.5.
  for (int d = 0; d < 3; ++d) s.Record(1.5e-3, 1e-4);
  s.Record(1.5e-3, 3e-4);
  EXPECT_EQ(dog.Evaluate(2e-3), 1);
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace apt
