// Cross-layer observability tests: the FeatureStore's cache hit/miss
// counters against a hand-computed access sequence, and consistency between
// the EpochStats a trainer reports and the sum of the simulated-device trace
// slices it emits.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "engine/trainer.h"
#include "feature/feature_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/hardware.h"
#include "test_util.h"

namespace apt {
namespace {

using ::apt::testing::MakeTrainer;
using ::apt::testing::SmallDataset;

struct FeatureCounterSnapshot {
  std::int64_t gathers;
  std::int64_t cache_rows;
  std::int64_t cpu_rows;
  std::int64_t cache_bytes;
  std::int64_t cpu_bytes;

  static FeatureCounterSnapshot Take() {
    obs::Metrics& m = obs::Metrics::Global();
    return {m.counter("feature.gathers").Get(),
            m.counter("feature.rows.gpu_cache").Get(),
            m.counter("feature.rows.local_cpu").Get(),
            m.counter("feature.bytes.gpu_cache").Get(),
            m.counter("feature.bytes.local_cpu").Get()};
  }
};

TEST(FeatureStoreObsTest, CountersMatchHandComputedSequence) {
  // 10 nodes, dim 4 (16 bytes/row); device 0 caches nodes 1 and 2.
  SimContext sim(SingleMachineCluster(2));
  Tensor feats(10, 4);
  FeatureStore store(feats, std::vector<MachineId>(10, 0), sim);
  store.ConfigureCaches({{1, 2}, {}}, 1 << 10);

  const FeatureCounterSnapshot before = FeatureCounterSnapshot::Take();
  Tensor out2(2, 4);
  store.Gather(0, std::vector<NodeId>{2, 7}, 0, 4, out2);  // 1 hit, 1 miss
  Tensor out3(3, 4);
  store.Gather(0, std::vector<NodeId>{1, 2, 9}, 0, 4, out3);  // 2 hits, 1 miss
  const FeatureCounterSnapshot after = FeatureCounterSnapshot::Take();

  EXPECT_EQ(after.gathers - before.gathers, 2);
  EXPECT_EQ(after.cache_rows - before.cache_rows, 3);
  EXPECT_EQ(after.cpu_rows - before.cpu_rows, 2);
  EXPECT_EQ(after.cache_bytes - before.cache_bytes, 3 * 16);
  EXPECT_EQ(after.cpu_bytes - before.cpu_bytes, 2 * 16);

  // The published hit rate is cumulative over the process, so only its
  // range is checkable here; exact-ratio coverage comes from the deltas.
  const double rate = obs::Metrics::Global().gauge("feature.cache.hit_rate").Get();
  EXPECT_GT(rate, 0.0);
  EXPECT_LE(rate, 1.0);
}

TEST(FeatureStoreObsTest, ColumnSliceScalesByteCounters) {
  SimContext sim(SingleMachineCluster(1));
  Tensor feats(4, 8);
  FeatureStore store(feats, std::vector<MachineId>(4, 0), sim);
  store.ConfigureCaches({{}}, 0);
  const FeatureCounterSnapshot before = FeatureCounterSnapshot::Take();
  Tensor out(1, 3);
  store.Gather(0, std::vector<NodeId>{3}, 2, 5, out);  // 3 of 8 columns
  const FeatureCounterSnapshot after = FeatureCounterSnapshot::Take();
  EXPECT_EQ(after.cpu_rows - before.cpu_rows, 1);
  EXPECT_EQ(after.cpu_bytes - before.cpu_bytes, 3 * 4);
}

// Trains one epoch under tracing and checks that, for every phase, the
// per-device sum of emitted sim-domain slice durations — max'ed over
// devices — reproduces the EpochStats breakdown the trainer returned.
void CheckEpochAgainstTrace(Strategy strategy) {
  const Dataset ds = SmallDataset();
  auto trainer = MakeTrainer(ds, SingleMachineCluster(4), strategy);
  const std::int32_t pid = trainer->sim().ObsPid();

  obs::SetTracingEnabled(true);
  obs::Tracer::Global().Clear();
  const EpochStats stats = trainer->TrainEpoch(0);
  obs::SetTracingEnabled(false);
  const std::vector<obs::TraceEvent> events = obs::Tracer::Global().Drain();

  // us per (device lane, phase category), sim domain, this trainer only.
  std::map<std::pair<std::int32_t, std::string>, double> lane_phase_us;
  for (const obs::TraceEvent& e : events) {
    if (e.domain != obs::Domain::kSim || e.pid != pid || e.ph != 'X') continue;
    lane_phase_us[{e.tid, e.cat}] += e.dur_us;
  }
  ASSERT_FALSE(lane_phase_us.empty()) << "no sim slices traced";

  const std::map<std::string, double> expected = {
      {"sample", stats.sample_seconds},
      {"load", stats.load_seconds},
      {"train", stats.train_seconds},
  };
  for (const auto& [phase, want_s] : expected) {
    double max_s = 0.0;
    for (std::int32_t lane = 0; lane < 4; ++lane) {
      const auto it = lane_phase_us.find({lane, phase});
      if (it != lane_phase_us.end()) max_s = std::max(max_s, it->second * 1e-6);
    }
    EXPECT_NEAR(max_s, want_s, 1e-9 + 1e-6 * want_s)
        << ToString(strategy) << " phase " << phase;
  }
}

class EpochTraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::SetTracingEnabled(false);
    obs::Tracer::Global().Clear();
  }
};

TEST_F(EpochTraceTest, GdpEpochStatsMatchTraceSums) {
  CheckEpochAgainstTrace(Strategy::kGDP);
}

TEST_F(EpochTraceTest, DnpEpochStatsMatchTraceSums) {
  CheckEpochAgainstTrace(Strategy::kDNP);
}

TEST_F(EpochTraceTest, CostModelResidualGaugesPublished) {
  // A prediction in the setup makes TrainEpoch publish costmodel.* gauges.
  const Dataset ds = SmallDataset();
  auto trainer = MakeTrainer(ds, SingleMachineCluster(2), Strategy::kGDP);
  obs::Metrics& m = obs::Metrics::Global();
  m.gauge("costmodel.predicted_comparable_s").Set(0.0);
  m.gauge("costmodel.measured_comparable_s").Set(0.0);
  // MakeTrainer leaves predicted_comparable_seconds at 0 (no dry-run
  // estimate), so gauges must stay untouched...
  trainer->TrainEpoch(0);
  EXPECT_DOUBLE_EQ(m.gauge("costmodel.predicted_comparable_s").Get(), 0.0);
  // ...while a trainer built through the adapter (BuildTrainerSetup fills
  // the prediction) publishes them; emulate with a direct setup copy.
  TrainerSetup setup = trainer->setup();
  setup.predicted_comparable_seconds = 1e-3;
  ParallelTrainer predicted(ds, std::move(setup));
  predicted.TrainEpoch(0);
  EXPECT_GT(m.gauge("costmodel.predicted_comparable_s").Get(), 0.0);
  EXPECT_GT(m.gauge("costmodel.measured_comparable_s").Get(), 0.0);
}

}  // namespace
}  // namespace apt
