// apt::obs unit tests: JSON writer + the shared reader in obs/json.h
// (which replaced the mini parser these tests used to carry privately),
// metrics registry, tracer behaviour under the fork-join pool, and
// well-formedness of the exported Chrome trace.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel_for.h"

namespace apt {
namespace {

using obs::JsonValue;
using obs::ParseJson;
using obs::ParseJsonFile;

// Resets tracing to off + empty buffers around every tracer test so the
// suite's tests do not leak events into each other.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetTracingEnabled(false);
    obs::Tracer::Global().Clear();
  }
  void TearDown() override {
    obs::SetTracingEnabled(false);
    obs::Tracer::Global().Clear();
  }
};

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

TEST(JsonWriterTest, NestingAndSeparators) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.BeginObject();
  w.KV("a", std::int64_t{1});
  w.Key("b");
  w.BeginArray();
  w.Value(std::int64_t{2});
  w.Value("x");
  w.BeginObject();
  w.KV("c", true);
  w.EndObject();
  w.EndArray();
  w.KV("d", 1.5);
  w.EndObject();
  EXPECT_EQ(os.str(), R"({"a":1,"b":[2,"x",{"c":true}],"d":1.5})");
}

TEST(JsonWriterTest, EscapesStrings) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.Value("q\"b\\s\nn\tt");
  EXPECT_EQ(os.str(), "\"q\\\"b\\\\s\\nn\\tt\"");
  EXPECT_EQ(obs::JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteBecomesNull) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.BeginArray();
  w.Value(std::nan(""));
  w.Value(std::numeric_limits<double>::infinity());
  w.EndArray();
  EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonWriterTest, RawValueInterleavesWithSiblings) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.BeginArray();
  w.RawValue(R"({"k":1})");
  w.RawValue("[2]");
  w.Value(std::int64_t{3});
  w.EndArray();
  EXPECT_EQ(os.str(), R"([{"k":1},[2],3])");
  JsonValue v;
  ASSERT_TRUE(ParseJson(os.str(), &v));
  EXPECT_EQ(v.arr.size(), 3u);
}

// ---------------------------------------------------------------------------
// Shared JSON reader (obs/json.h) — edge cases around escaping and structure
// ---------------------------------------------------------------------------

TEST(JsonReaderTest, ControlCharactersRoundTripThroughWriterAndParser) {
  // Every control character the writer must escape (\u00XX) plus the named
  // escapes; the parser must reproduce the original bytes exactly.
  std::string original;
  for (char c = 1; c < 0x20; ++c) original.push_back(c);
  original += "\"\\/plain";
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.Value(original);
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(os.str(), &v, &error)) << error;
  ASSERT_EQ(v.kind, JsonValue::kString);
  EXPECT_EQ(v.str, original);
}

TEST(JsonReaderTest, UnicodeEscapesDecodeToUtf8) {
  JsonValue v;
  // 2-byte (é), 3-byte (€), and ASCII \u forms — as escape sequences, so the
  // parser's \uXXXX → UTF-8 path is actually exercised.
  ASSERT_TRUE(ParseJson(R"("\u00e9\u20acA")", &v));
  EXPECT_EQ(v.str, "\xC3\xA9\xE2\x82\xAC" "A");
}

TEST(JsonReaderTest, NestedDocumentRoundTrips) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.BeginObject();
  w.KV("int", std::int64_t{42});
  w.KV("neg", -2.5);
  w.KV("big", 1.25e18);
  w.KV("flag", false);
  w.Key("list");
  w.BeginArray();
  w.Value("a");
  w.BeginObject();
  w.KV("inner", std::int64_t{-7});
  w.EndObject();
  w.EndArray();
  w.EndObject();

  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(os.str(), &v, &error)) << error;
  ASSERT_EQ(v.kind, JsonValue::kObject);
  EXPECT_DOUBLE_EQ(v.NumOr("int", 0.0), 42.0);
  EXPECT_DOUBLE_EQ(v.NumOr("neg", 0.0), -2.5);
  EXPECT_DOUBLE_EQ(v.NumOr("big", 0.0), 1.25e18);
  ASSERT_NE(v.Find("flag"), nullptr);
  EXPECT_EQ(v.Find("flag")->kind, JsonValue::kBool);
  EXPECT_FALSE(v.Find("flag")->b);
  const JsonValue* list = v.Find("list");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->arr.size(), 2u);
  EXPECT_EQ(list->arr[0].str, "a");
  EXPECT_DOUBLE_EQ(list->arr[1].NumOr("inner", 0.0), -7.0);
}

TEST(JsonReaderTest, RejectsMalformedInputWithOffset) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(ParseJson("{\"a\":1", &v, &error));  // unterminated object
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseJson("[1,2] garbage", &v, &error));  // trailing junk
  EXPECT_NE(error.find("byte"), std::string::npos) << error;
  EXPECT_FALSE(ParseJson(R"("bad \q escape")", &v, &error));  // unknown escape
  EXPECT_FALSE(ParseJson("", &v, &error));
  EXPECT_FALSE(ParseJson("nul", &v, &error));  // truncated literal
}

TEST(JsonReaderTest, NumbersAtBufferEndDoNotOverread) {
  // The parser reads numbers through a bounded local buffer; a number that
  // runs to the very end of a non-NUL-terminated view must still parse.
  const std::string text = "[1.5e3]";
  JsonValue v;
  ASSERT_TRUE(ParseJson(std::string_view(text.data(), text.size()), &v));
  EXPECT_DOUBLE_EQ(v.arr[0].num, 1500.0);
}

TEST(JsonReaderTest, DuplicateKeysLastWins) {
  JsonValue v;
  ASSERT_TRUE(ParseJson(R"({"k":1,"k":2})", &v));
  EXPECT_DOUBLE_EQ(v.NumOr("k", 0.0), 2.0);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

// The registry is process-global, so without a reset these assertions could
// only ever be >= checks (other tests' increments bleed in). ResetForTest
// zeroes it, making every expectation exact and the suite order-independent.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::Metrics::ResetForTest(); }
  void TearDown() override { obs::Metrics::ResetForTest(); }
};

TEST_F(MetricsTest, CounterAndGaugeRoundTrip) {
  obs::Metrics& m = obs::Metrics::Global();
  obs::Counter& c = m.counter("test.obs.counter");
  obs::Gauge& g = m.gauge("test.obs.gauge");
  const std::int64_t before = c.Get();
  c.Increment();
  c.Add(4);
  EXPECT_EQ(c.Get(), before + 5);
  // Same name -> same handle.
  EXPECT_EQ(&m.counter("test.obs.counter"), &c);
  g.Set(0.25);
  EXPECT_DOUBLE_EQ(m.gauge("test.obs.gauge").Get(), 0.25);
}

TEST_F(MetricsTest, JsonDumpParsesAndContainsNames) {
  obs::Metrics& m = obs::Metrics::Global();
  m.counter("test.obs.dump").Add(7);
  m.gauge("test.obs.rate").Set(0.5);
  JsonValue v;
  ASSERT_TRUE(ParseJson(m.ToJson(), &v));
  const JsonValue* counters = v.Find("counters");
  const JsonValue* gauges = v.Find("gauges");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(counters->Find("test.obs.dump"), nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("test.obs.dump")->num, 7.0);
  ASSERT_NE(gauges->Find("test.obs.rate"), nullptr);
  EXPECT_DOUBLE_EQ(gauges->Find("test.obs.rate")->num, 0.5);
}

TEST_F(MetricsTest, DumpCarriesSchemaHeader) {
  JsonValue v;
  ASSERT_TRUE(ParseJson(obs::Metrics::Global().ToJson(), &v));
  const JsonValue* version = v.Find("schema_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(static_cast<std::int64_t>(version->num), obs::kObsSchemaVersion);
  const JsonValue* meta = v.Find("meta");
  ASSERT_NE(meta, nullptr);
  ASSERT_NE(meta->StrOrNull("kind"), nullptr);
  EXPECT_EQ(*meta->StrOrNull("kind"), "metrics");
}

TEST_F(MetricsTest, ResetForTestZeroesEverything) {
  obs::Metrics& m = obs::Metrics::Global();
  m.counter("test.obs.reset").Add(3);
  m.gauge("test.obs.reset_gauge").Set(1.5);
  obs::Metrics::ResetForTest();
  EXPECT_EQ(m.counter("test.obs.reset").Get(), 0);
  EXPECT_DOUBLE_EQ(m.gauge("test.obs.reset_gauge").Get(), 0.0);
}

TEST_F(MetricsTest, CountersAreThreadSafeUnderParallelFor) {
  obs::Counter& c = obs::Metrics::Global().counter("test.obs.parallel");
  const std::int64_t before = c.Get();
  ParallelFor(0, 10000, [&](std::int64_t) { c.Increment(); });
  EXPECT_EQ(c.Get(), before + 10000);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST_F(TracerTest, DisabledRecordsNothing) {
  {
    APT_OBS_SCOPE("invisible", "test");
    obs::StageSpan stage("also_invisible", "test");
    stage.Next("still_invisible");
  }
  EXPECT_TRUE(obs::Tracer::Global().Drain().empty());
}

TEST_F(TracerTest, SpansNestOnOneThread) {
  obs::SetTracingEnabled(true);
  {
    APT_OBS_SCOPE("outer", "test");
    { APT_OBS_SCOPE("inner", "test", {{"k", 3.0, nullptr}}); }
  }
  const std::vector<obs::TraceEvent> events = obs::Tracer::Global().Drain();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first; both slices land on the same host lane and the
  // inner's window is contained in the outer's.
  const obs::TraceEvent& inner = events[0];
  const obs::TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(inner.pid, obs::kHostPid);
  EXPECT_EQ(inner.tid, outer.tid);
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us + 1e-6);
  ASSERT_EQ(inner.num_args, 1);
  EXPECT_STREQ(inner.args[0].key, "k");
  EXPECT_DOUBLE_EQ(inner.args[0].num, 3.0);
}

TEST_F(TracerTest, StageSpanEmitsSequentialSlices) {
  obs::SetTracingEnabled(true);
  {
    obs::StageSpan stage("permute", "test");
    stage.Next("shuffle");
    stage.Next("execute");
  }
  const std::vector<obs::TraceEvent> events = obs::Tracer::Global().Drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "permute");
  EXPECT_STREQ(events[1].name, "shuffle");
  EXPECT_STREQ(events[2].name, "execute");
  // Consecutive stages do not overlap: each starts where the previous ended.
  for (int i = 1; i < 3; ++i) {
    EXPECT_GE(events[static_cast<std::size_t>(i)].ts_us,
              events[static_cast<std::size_t>(i - 1)].ts_us +
                  events[static_cast<std::size_t>(i - 1)].dur_us - 1e-6);
  }
}

TEST_F(TracerTest, FlushUnderParallelForKeepsEveryEvent) {
  // Worker threads record into per-thread buffers; a Drain between rounds
  // must not lose events, and recording continues into the same (still
  // registered) buffers afterwards. TSan covers the data-race side.
  obs::SetTracingEnabled(true);
  constexpr std::int64_t kSpans = 2000;
  const auto emit_round = [](std::int64_t n) {
    ParallelFor(
        0, n, [](std::int64_t) { APT_OBS_SCOPE("work", "test"); },
        /*grain=*/64);
  };
  emit_round(kSpans / 2);
  std::vector<obs::TraceEvent> drained = obs::Tracer::Global().Drain();
  emit_round(kSpans - kSpans / 2);
  const std::vector<obs::TraceEvent> rest = obs::Tracer::Global().Drain();
  drained.insert(drained.end(), rest.begin(), rest.end());
  std::int64_t work_spans = 0;
  for (const obs::TraceEvent& e : drained) {
    if (std::string_view(e.name) == "work") ++work_spans;
  }
  EXPECT_EQ(work_spans, kSpans);
  EXPECT_EQ(obs::Tracer::Global().DroppedEvents(), 0);
  EXPECT_GE(obs::Tracer::Global().NumHostLanes(), 1);
}

TEST_F(TracerTest, SimSpansCarryRegisteredTrack) {
  obs::SetTracingEnabled(true);
  const std::int32_t pid = obs::Tracer::Global().RegisterSimTrack("2gpu", 2);
  EXPECT_GT(pid, obs::kHostPid);
  obs::EmitSimSpan(pid, 1, 0.5, 0.75, "gather", "load",
                   {{"bytes", 128.0, nullptr}});
  const std::vector<obs::TraceEvent> events = obs::Tracer::Global().Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].pid, pid);
  EXPECT_EQ(events[0].tid, 1);
  EXPECT_EQ(events[0].domain, obs::Domain::kSim);
  // Simulated seconds convert to trace microseconds.
  EXPECT_DOUBLE_EQ(events[0].ts_us, 0.5e6);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 0.25e6);
  const std::vector<obs::SimTrackInfo> tracks = obs::Tracer::Global().SimTracks();
  bool found = false;
  for (const obs::SimTrackInfo& t : tracks) {
    if (t.pid == pid) {
      found = true;
      EXPECT_EQ(t.num_lanes, 2);
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

TEST_F(TracerTest, ExportedTraceIsWellFormed) {
  obs::SetTracingEnabled(true);
  const std::int32_t pid = obs::Tracer::Global().RegisterSimTrack("1m x 2gpu", 2);
  { APT_OBS_SCOPE("host_work", "test"); }
  obs::EmitSimSpan(pid, 0, 0.0, 0.25, "compute", "train");
  obs::EmitSimSpan(pid, 1, 0.0, 0.5, "gather", "load");
  obs::EmitSimCounter(pid, 0.5, "traffic_bytes", {{"peer_gpu", 42.0, nullptr}});

  const std::string path = "obs_test_trace.json";
  ASSERT_TRUE(obs::ExportChromeTrace(path));
  JsonValue root;
  ASSERT_TRUE(ParseJsonFile(path, &root)) << "trace is not valid JSON";
  std::remove(path.c_str());

  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::kArray);

  int sim_lanes_named = 0;
  bool host_named = false, sim_named = false;
  bool saw_slice = false, saw_counter = false;
  for (const JsonValue& e : events->arr) {
    ASSERT_EQ(e.kind, JsonValue::kObject);
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(e.Find("pid"), nullptr);
    ASSERT_NE(e.Find("name"), nullptr);
    if (ph->str == "M") {
      const JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      if (e.Find("name")->str == "process_name") {
        const std::string& pname = args->Find("name")->str;
        if (e.Find("pid")->num == obs::kHostPid) {
          host_named = true;
          EXPECT_NE(pname.find("host"), std::string::npos);
        } else if (e.Find("pid")->num == pid) {
          sim_named = true;
          EXPECT_NE(pname.find("1m x 2gpu"), std::string::npos);
        }
      }
      if (e.Find("name")->str == "thread_name" && e.Find("pid")->num == pid) {
        ++sim_lanes_named;  // expect gpu0 + gpu1
        EXPECT_EQ(args->Find("name")->str.substr(0, 3), "gpu");
      }
    } else if (ph->str == "X") {
      saw_slice = true;
      ASSERT_NE(e.Find("ts"), nullptr);
      ASSERT_NE(e.Find("dur"), nullptr);
      ASSERT_NE(e.Find("cat"), nullptr);
      if (e.Find("name")->str == "gather") {
        EXPECT_EQ(e.Find("pid")->num, pid);
        EXPECT_EQ(e.Find("tid")->num, 1.0);
        EXPECT_DOUBLE_EQ(e.Find("dur")->num, 0.5e6);
      }
    } else if (ph->str == "C") {
      saw_counter = true;
      ASSERT_NE(e.Find("args"), nullptr);
      EXPECT_DOUBLE_EQ(e.Find("args")->Find("peer_gpu")->num, 42.0);
    }
  }
  EXPECT_TRUE(host_named);
  EXPECT_TRUE(sim_named);
  EXPECT_EQ(sim_lanes_named, 2);  // one lane per simulated device
  EXPECT_TRUE(saw_slice);
  EXPECT_TRUE(saw_counter);
}

}  // namespace
}  // namespace apt
