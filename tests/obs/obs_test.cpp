// apt::obs unit tests: JSON writer, metrics registry, tracer behaviour under
// the fork-join pool, and well-formedness of the exported Chrome trace
// (parsed back with the mini JSON parser below).
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel_for.h"

namespace apt {
namespace {

// ---------------------------------------------------------------------------
// Mini JSON parser — just enough to verify the files obs emits are
// well-formed and to navigate their structure. Numbers parse via strtod;
// escapes handled are the ones JsonEscape produces.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  const JsonValue* Find(const std::string& key) const {
    const auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  bool Parse(JsonValue* out) {
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == s_.size();  // no trailing garbage
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool ConsumeLiteral(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            out->push_back(static_cast<char>(code));  // control chars only
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return Consume('"');
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::kObject;
      SkipWs();
      if (Consume('}')) return true;
      while (true) {
        std::string key;
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return false;
        JsonValue v;
        if (!ParseValue(&v)) return false;
        out->obj.emplace(std::move(key), std::move(v));
        if (Consume(',')) continue;
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::kArray;
      SkipWs();
      if (Consume(']')) return true;
      while (true) {
        JsonValue v;
        if (!ParseValue(&v)) return false;
        out->arr.push_back(std::move(v));
        if (Consume(',')) continue;
        return Consume(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->str);
    }
    if (c == 't') {
      out->kind = JsonValue::kBool;
      out->b = true;
      return ConsumeLiteral("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::kBool;
      out->b = false;
      return ConsumeLiteral("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::kNull;
      return ConsumeLiteral("null");
    }
    // Number.
    const char* begin = s_.data() + pos_;
    char* end = nullptr;
    out->num = std::strtod(begin, &end);
    if (end == begin) return false;
    pos_ += static_cast<std::size_t>(end - begin);
    out->kind = JsonValue::kNumber;
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

bool ParseJsonFile(const std::string& path, JsonValue* out) {
  std::ifstream is(path);
  if (!is) return false;
  std::stringstream buf;
  buf << is.rdbuf();
  return JsonParser(buf.str()).Parse(out);
}

// Resets tracing to off + empty buffers around every tracer test so the
// suite's tests do not leak events into each other.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetTracingEnabled(false);
    obs::Tracer::Global().Clear();
  }
  void TearDown() override {
    obs::SetTracingEnabled(false);
    obs::Tracer::Global().Clear();
  }
};

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

TEST(JsonWriterTest, NestingAndSeparators) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.BeginObject();
  w.KV("a", std::int64_t{1});
  w.Key("b");
  w.BeginArray();
  w.Value(std::int64_t{2});
  w.Value("x");
  w.BeginObject();
  w.KV("c", true);
  w.EndObject();
  w.EndArray();
  w.KV("d", 1.5);
  w.EndObject();
  EXPECT_EQ(os.str(), R"({"a":1,"b":[2,"x",{"c":true}],"d":1.5})");
}

TEST(JsonWriterTest, EscapesStrings) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.Value("q\"b\\s\nn\tt");
  EXPECT_EQ(os.str(), "\"q\\\"b\\\\s\\nn\\tt\"");
  EXPECT_EQ(obs::JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteBecomesNull) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.BeginArray();
  w.Value(std::nan(""));
  w.Value(std::numeric_limits<double>::infinity());
  w.EndArray();
  EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonWriterTest, RawValueInterleavesWithSiblings) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.BeginArray();
  w.RawValue(R"({"k":1})");
  w.RawValue("[2]");
  w.Value(std::int64_t{3});
  w.EndArray();
  EXPECT_EQ(os.str(), R"([{"k":1},[2],3])");
  JsonValue v;
  ASSERT_TRUE(JsonParser(os.str()).Parse(&v));
  EXPECT_EQ(v.arr.size(), 3u);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterAndGaugeRoundTrip) {
  obs::Metrics& m = obs::Metrics::Global();
  obs::Counter& c = m.counter("test.obs.counter");
  obs::Gauge& g = m.gauge("test.obs.gauge");
  const std::int64_t before = c.Get();
  c.Increment();
  c.Add(4);
  EXPECT_EQ(c.Get(), before + 5);
  // Same name -> same handle.
  EXPECT_EQ(&m.counter("test.obs.counter"), &c);
  g.Set(0.25);
  EXPECT_DOUBLE_EQ(m.gauge("test.obs.gauge").Get(), 0.25);
}

TEST(MetricsTest, JsonDumpParsesAndContainsNames) {
  obs::Metrics& m = obs::Metrics::Global();
  m.counter("test.obs.dump").Add(7);
  m.gauge("test.obs.rate").Set(0.5);
  JsonValue v;
  ASSERT_TRUE(JsonParser(m.ToJson()).Parse(&v));
  const JsonValue* counters = v.Find("counters");
  const JsonValue* gauges = v.Find("gauges");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(counters->Find("test.obs.dump"), nullptr);
  EXPECT_GE(counters->Find("test.obs.dump")->num, 7.0);
  ASSERT_NE(gauges->Find("test.obs.rate"), nullptr);
  EXPECT_DOUBLE_EQ(gauges->Find("test.obs.rate")->num, 0.5);
}

TEST(MetricsTest, CountersAreThreadSafeUnderParallelFor) {
  obs::Counter& c = obs::Metrics::Global().counter("test.obs.parallel");
  const std::int64_t before = c.Get();
  ParallelFor(0, 10000, [&](std::int64_t) { c.Increment(); });
  EXPECT_EQ(c.Get(), before + 10000);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST_F(TracerTest, DisabledRecordsNothing) {
  {
    APT_OBS_SCOPE("invisible", "test");
    obs::StageSpan stage("also_invisible", "test");
    stage.Next("still_invisible");
  }
  EXPECT_TRUE(obs::Tracer::Global().Drain().empty());
}

TEST_F(TracerTest, SpansNestOnOneThread) {
  obs::SetTracingEnabled(true);
  {
    APT_OBS_SCOPE("outer", "test");
    { APT_OBS_SCOPE("inner", "test", {{"k", 3.0, nullptr}}); }
  }
  const std::vector<obs::TraceEvent> events = obs::Tracer::Global().Drain();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first; both slices land on the same host lane and the
  // inner's window is contained in the outer's.
  const obs::TraceEvent& inner = events[0];
  const obs::TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(inner.pid, obs::kHostPid);
  EXPECT_EQ(inner.tid, outer.tid);
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us + 1e-6);
  ASSERT_EQ(inner.num_args, 1);
  EXPECT_STREQ(inner.args[0].key, "k");
  EXPECT_DOUBLE_EQ(inner.args[0].num, 3.0);
}

TEST_F(TracerTest, StageSpanEmitsSequentialSlices) {
  obs::SetTracingEnabled(true);
  {
    obs::StageSpan stage("permute", "test");
    stage.Next("shuffle");
    stage.Next("execute");
  }
  const std::vector<obs::TraceEvent> events = obs::Tracer::Global().Drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "permute");
  EXPECT_STREQ(events[1].name, "shuffle");
  EXPECT_STREQ(events[2].name, "execute");
  // Consecutive stages do not overlap: each starts where the previous ended.
  for (int i = 1; i < 3; ++i) {
    EXPECT_GE(events[static_cast<std::size_t>(i)].ts_us,
              events[static_cast<std::size_t>(i - 1)].ts_us +
                  events[static_cast<std::size_t>(i - 1)].dur_us - 1e-6);
  }
}

TEST_F(TracerTest, FlushUnderParallelForKeepsEveryEvent) {
  // Worker threads record into per-thread buffers; a Drain between rounds
  // must not lose events, and recording continues into the same (still
  // registered) buffers afterwards. TSan covers the data-race side.
  obs::SetTracingEnabled(true);
  constexpr std::int64_t kSpans = 2000;
  const auto emit_round = [](std::int64_t n) {
    ParallelFor(
        0, n, [](std::int64_t) { APT_OBS_SCOPE("work", "test"); },
        /*grain=*/64);
  };
  emit_round(kSpans / 2);
  std::vector<obs::TraceEvent> drained = obs::Tracer::Global().Drain();
  emit_round(kSpans - kSpans / 2);
  const std::vector<obs::TraceEvent> rest = obs::Tracer::Global().Drain();
  drained.insert(drained.end(), rest.begin(), rest.end());
  std::int64_t work_spans = 0;
  for (const obs::TraceEvent& e : drained) {
    if (std::string_view(e.name) == "work") ++work_spans;
  }
  EXPECT_EQ(work_spans, kSpans);
  EXPECT_EQ(obs::Tracer::Global().DroppedEvents(), 0);
  EXPECT_GE(obs::Tracer::Global().NumHostLanes(), 1);
}

TEST_F(TracerTest, SimSpansCarryRegisteredTrack) {
  obs::SetTracingEnabled(true);
  const std::int32_t pid = obs::Tracer::Global().RegisterSimTrack("2gpu", 2);
  EXPECT_GT(pid, obs::kHostPid);
  obs::EmitSimSpan(pid, 1, 0.5, 0.75, "gather", "load",
                   {{"bytes", 128.0, nullptr}});
  const std::vector<obs::TraceEvent> events = obs::Tracer::Global().Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].pid, pid);
  EXPECT_EQ(events[0].tid, 1);
  EXPECT_EQ(events[0].domain, obs::Domain::kSim);
  // Simulated seconds convert to trace microseconds.
  EXPECT_DOUBLE_EQ(events[0].ts_us, 0.5e6);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 0.25e6);
  const std::vector<obs::SimTrackInfo> tracks = obs::Tracer::Global().SimTracks();
  bool found = false;
  for (const obs::SimTrackInfo& t : tracks) {
    if (t.pid == pid) {
      found = true;
      EXPECT_EQ(t.num_lanes, 2);
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

TEST_F(TracerTest, ExportedTraceIsWellFormed) {
  obs::SetTracingEnabled(true);
  const std::int32_t pid = obs::Tracer::Global().RegisterSimTrack("1m x 2gpu", 2);
  { APT_OBS_SCOPE("host_work", "test"); }
  obs::EmitSimSpan(pid, 0, 0.0, 0.25, "compute", "train");
  obs::EmitSimSpan(pid, 1, 0.0, 0.5, "gather", "load");
  obs::EmitSimCounter(pid, 0.5, "traffic_bytes", {{"peer_gpu", 42.0, nullptr}});

  const std::string path = "obs_test_trace.json";
  ASSERT_TRUE(obs::ExportChromeTrace(path));
  JsonValue root;
  ASSERT_TRUE(ParseJsonFile(path, &root)) << "trace is not valid JSON";
  std::remove(path.c_str());

  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::kArray);

  int sim_lanes_named = 0;
  bool host_named = false, sim_named = false;
  bool saw_slice = false, saw_counter = false;
  for (const JsonValue& e : events->arr) {
    ASSERT_EQ(e.kind, JsonValue::kObject);
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(e.Find("pid"), nullptr);
    ASSERT_NE(e.Find("name"), nullptr);
    if (ph->str == "M") {
      const JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      if (e.Find("name")->str == "process_name") {
        const std::string& pname = args->Find("name")->str;
        if (e.Find("pid")->num == obs::kHostPid) {
          host_named = true;
          EXPECT_NE(pname.find("host"), std::string::npos);
        } else if (e.Find("pid")->num == pid) {
          sim_named = true;
          EXPECT_NE(pname.find("1m x 2gpu"), std::string::npos);
        }
      }
      if (e.Find("name")->str == "thread_name" && e.Find("pid")->num == pid) {
        ++sim_lanes_named;  // expect gpu0 + gpu1
        EXPECT_EQ(args->Find("name")->str.substr(0, 3), "gpu");
      }
    } else if (ph->str == "X") {
      saw_slice = true;
      ASSERT_NE(e.Find("ts"), nullptr);
      ASSERT_NE(e.Find("dur"), nullptr);
      ASSERT_NE(e.Find("cat"), nullptr);
      if (e.Find("name")->str == "gather") {
        EXPECT_EQ(e.Find("pid")->num, pid);
        EXPECT_EQ(e.Find("tid")->num, 1.0);
        EXPECT_DOUBLE_EQ(e.Find("dur")->num, 0.5e6);
      }
    } else if (ph->str == "C") {
      saw_counter = true;
      ASSERT_NE(e.Find("args"), nullptr);
      EXPECT_DOUBLE_EQ(e.Find("args")->Find("peer_gpu")->num, 42.0);
    }
  }
  EXPECT_TRUE(host_named);
  EXPECT_TRUE(sim_named);
  EXPECT_EQ(sim_lanes_named, 2);  // one lane per simulated device
  EXPECT_TRUE(saw_slice);
  EXPECT_TRUE(saw_counter);
}

}  // namespace
}  // namespace apt
