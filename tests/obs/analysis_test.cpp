// Trace-analysis engine tests: the analyzer's reconstruction of a traced
// training epoch must reproduce the EpochStats the trainer reported (the
// ISSUE's 1% acceptance bar), the critical path must account for the full
// simulated wall window, run-diffing must flag the GDP-vs-DNP structural
// differences, and the perf gate must pass identical records and fail
// inflated ones. File-based paths also enforce the schema header.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apt/cost_model.h"
#include "engine/trainer.h"
#include "obs/analysis.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "sim/hardware.h"
#include "test_util.h"

namespace apt {
namespace {

using ::apt::testing::MakeTrainer;
using ::apt::testing::SmallDataset;
using obs::JsonValue;
using obs::ParseJson;
using obs::TraceAnalysis;
using obs::TraceSet;

class AnalysisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetTracingEnabled(false);
    obs::Tracer::Global().Clear();
  }
  void TearDown() override {
    obs::SetTracingEnabled(false);
    obs::Tracer::Global().Clear();
  }
};

/// One traced epoch of `strategy` on the shared small dataset: the trainer's
/// own EpochStats next to everything the analyzer needs to re-derive them.
struct TracedEpoch {
  EpochStats stats;
  std::int64_t steps_per_epoch = 0;
  std::int32_t pid = -1;
  std::vector<obs::TraceEvent> events;
  std::vector<obs::SimTrackInfo> sim_tracks;
};

TracedEpoch RunTracedEpoch(const Dataset& ds, Strategy strategy,
                           const ClusterSpec& cluster = SingleMachineCluster(4),
                           int pipeline_depth = 1) {
  auto trainer = MakeTrainer(ds, cluster, strategy, ModelKind::kSage,
                             /*force_chunked=*/true, 1 << 20, {5, 5},
                             /*batch=*/128, /*hidden=*/0, /*recovery=*/{},
                             pipeline_depth);
  TracedEpoch out;
  out.pid = trainer->sim().ObsPid();
  out.steps_per_epoch = trainer->StepsPerEpoch();
  obs::SetTracingEnabled(true);
  out.stats = trainer->TrainEpoch(0);
  obs::SetTracingEnabled(false);
  out.events = obs::Tracer::Global().Drain();
  out.sim_tracks = obs::Tracer::Global().SimTracks();
  return out;
}

const TraceAnalysis* FindTrack(const TraceSet& set, std::int32_t pid) {
  for (const TraceAnalysis& a : set.tracks) {
    if (a.pid == pid) return &a;
  }
  return nullptr;
}

double RelDiff(double a, double b) {
  return std::abs(a - b) / std::max({std::abs(a), std::abs(b), 1e-12});
}

TEST_F(AnalysisTest, ReconstructsEpochStatsWithinOnePercent) {
  const Dataset ds = SmallDataset();
  const TracedEpoch run = RunTracedEpoch(ds, Strategy::kGDP);
  const TraceSet set = obs::AnalyzeEvents(run.events, run.sim_tracks);
  const TraceAnalysis* a = FindTrack(set, run.pid);
  ASSERT_NE(a, nullptr);

  // The ISSUE's acceptance bar: the analyzer's per-strategy breakdown must
  // agree with the trainer's own EpochStats to within 1%.
  EXPECT_LT(RelDiff(a->wall_s, run.stats.wall_seconds), 0.01);
  EXPECT_LT(RelDiff(a->StackedSeconds(), run.stats.sim_seconds), 0.01);
  EXPECT_LT(RelDiff(a->ComparableSeconds(),
                    run.stats.sample_seconds + run.stats.load_seconds +
                        run.stats.comm_train_seconds),
            0.01);
  // Phase maxima are re-derived from the very slices the trainer emitted,
  // so they agree to rounding, not merely to 1%.
  EXPECT_NEAR(a->phase_max_s.at("sample"), run.stats.sample_seconds,
              1e-9 + 1e-6 * run.stats.sample_seconds);
  EXPECT_NEAR(a->phase_max_s.at("load"), run.stats.load_seconds,
              1e-9 + 1e-6 * run.stats.load_seconds);
  EXPECT_NEAR(a->phase_max_s.at("train"), run.stats.train_seconds,
              1e-9 + 1e-6 * run.stats.train_seconds);

  EXPECT_EQ(a->strategy, "GDP");
  EXPECT_EQ(a->num_device_lanes, 4);
  EXPECT_EQ(a->steps.count, run.steps_per_epoch);
  EXPECT_GT(a->steps.p50_s, 0.0);
  EXPECT_GE(a->steps.p99_s, a->steps.p50_s);

  // Critical path: by construction the segments tile the wall window.
  ASSERT_FALSE(a->critical_path.empty());
  EXPECT_NEAR(a->critical_total_s, a->wall_s, 1e-9 + 1e-6 * a->wall_s);
  double seg_sum = 0.0;
  for (const obs::CriticalSeg& seg : a->critical_path) {
    EXPECT_GE(seg.dur_s, 0.0);
    seg_sum += seg.dur_s;
  }
  EXPECT_NEAR(seg_sum, a->critical_total_s, 1e-9 + 1e-6 * a->critical_total_s);
  double attr_sum = 0.0;
  for (const auto& [name, v] : a->critical_by_name_s) attr_sum += v;
  EXPECT_NEAR(attr_sum, a->critical_total_s, 1e-9 + 1e-6 * a->critical_total_s);

  // Communication attribution saw the training collectives.
  EXPECT_FALSE(a->comm_by_op_s.empty());
  EXPECT_FALSE(a->traffic_bytes.empty());
}

TEST_F(AnalysisTest, PipelinedNfpOverlapShrinksEpochAndTilesCriticalPath) {
  // Comm-heavy configuration: NFP on a two-machine cluster broadcasts every
  // computation graph and allreduces partial embeddings across the slow
  // inter-machine network — the strategy with the most to hide.
  const Dataset ds = SmallDataset();
  const ClusterSpec cluster = MultiMachineCluster(2, 2);
  const TracedEpoch serial = RunTracedEpoch(ds, Strategy::kNFP, cluster);
  obs::Tracer::Global().Clear();
  const TracedEpoch piped =
      RunTracedEpoch(ds, Strategy::kNFP, cluster, /*pipeline_depth=*/4);

  // Overlap must strictly shrink the simulated epoch on this config.
  EXPECT_LT(piped.stats.sim_seconds, serial.stats.sim_seconds);
  EXPECT_LT(piped.stats.wall_seconds,
            serial.stats.wall_seconds * (1.0 + 1e-9));

  const TraceSet set = obs::AnalyzeEvents(piped.events, piped.sim_tracks);
  const TraceAnalysis* a = FindTrack(set, piped.pid);
  ASSERT_NE(a, nullptr);

  // The analyzer still reproduces the trainer's EpochStats within 1% even
  // with two streams per device: stalls + compute tile the device clocks.
  EXPECT_LT(RelDiff(a->StackedSeconds(), piped.stats.sim_seconds), 0.01);
  EXPECT_LT(RelDiff(a->wall_s, piped.stats.wall_seconds), 0.01);

  // Comm-stream accounting: all four comm lanes recorded activity, and the
  // overlap hid a strictly positive fraction of it.
  EXPECT_EQ(a->num_device_lanes, 4);
  EXPECT_EQ(a->num_comm_lanes, 4);
  double comm_stream_busy = 0.0;
  for (const auto& [cat, v] : a->comm_stream_total_s) comm_stream_busy += v;
  EXPECT_GT(comm_stream_busy, 0.0);
  EXPECT_GT(a->OverlapEfficiency(), 0.0);
  EXPECT_LE(a->OverlapEfficiency(), 1.0);
  // Exposed (stalled) communication is what is left on the compute clocks.
  EXPECT_GT(a->stall_total_s, 0.0);
  EXPECT_LT(a->stall_total_s, comm_stream_busy);

  // The critical path walks BOTH streams and still tiles the wall window
  // exactly — no gap and no double counting at stream boundaries.
  ASSERT_FALSE(a->critical_path.empty());
  EXPECT_NEAR(a->critical_total_s, a->wall_s, 1e-9 + 1e-6 * a->wall_s);
  double seg_sum = 0.0;
  bool comm_lane_on_path = false;
  for (const obs::CriticalSeg& seg : a->critical_path) {
    EXPECT_GE(seg.dur_s, 0.0);
    seg_sum += seg.dur_s;
    if (seg.lane >= a->num_device_lanes &&
        seg.lane < a->num_device_lanes + a->num_comm_lanes) {
      comm_lane_on_path = true;
    }
  }
  EXPECT_NEAR(seg_sum, a->critical_total_s, 1e-9 + 1e-6 * a->critical_total_s);
  EXPECT_TRUE(comm_lane_on_path);  // an overlap-bound run pivots through comm

  // `aptperf report` surfaces the overlap summary for pipelined tracks.
  std::ostringstream os;
  obs::WriteReport(os, set);
  EXPECT_NE(os.str().find("overlap efficiency"), std::string::npos) << os.str();

  // The serial control records NO comm-stream activity (lanes stay idle).
  const TraceSet serial_set = obs::AnalyzeEvents(serial.events, serial.sim_tracks);
  const TraceAnalysis* s = FindTrack(serial_set, serial.pid);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->num_comm_lanes, 0);
  EXPECT_DOUBLE_EQ(s->stall_total_s, 0.0);
}

TEST_F(AnalysisTest, ReportPrintsPerStrategyStageBreakdown) {
  const Dataset ds = SmallDataset();
  const TracedEpoch run = RunTracedEpoch(ds, Strategy::kGDP);
  const TraceSet set = obs::AnalyzeEvents(run.events, run.sim_tracks);

  std::ostringstream os;
  obs::WriteReport(os, set);
  const std::string report = os.str();
  EXPECT_NE(report.find("strategy=GDP"), std::string::npos) << report;
  EXPECT_NE(report.find("sample"), std::string::npos);
  EXPECT_NE(report.find("load"), std::string::npos);
  EXPECT_NE(report.find("train"), std::string::npos);
  EXPECT_NE(report.find("critical path"), std::string::npos);
  EXPECT_NE(report.find("steps: n="), std::string::npos);
}

TEST_F(AnalysisTest, TraceFileRoundTripMatchesInMemoryAnalysis) {
  const Dataset ds = SmallDataset();
  const TracedEpoch run = RunTracedEpoch(ds, Strategy::kGDP);
  const TraceSet mem = obs::AnalyzeEvents(run.events, run.sim_tracks);
  const TraceAnalysis* a = FindTrack(mem, run.pid);
  ASSERT_NE(a, nullptr);

  const std::string path = ::testing::TempDir() + "analysis_roundtrip.json";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    obs::WriteChromeTraceJson(out, run.events, run.sim_tracks,
                              obs::Tracer::Global().NumHostLanes());
  }
  TraceSet from_file;
  std::string error;
  ASSERT_TRUE(obs::AnalyzeTraceFile(path, &from_file, &error)) << error;
  const TraceAnalysis* b = FindTrack(from_file, run.pid);
  ASSERT_NE(b, nullptr);

  // File timestamps pass through microsecond doubles; stay within rounding.
  EXPECT_LT(RelDiff(a->wall_s, b->wall_s), 1e-6);
  EXPECT_LT(RelDiff(a->StackedSeconds(), b->StackedSeconds()), 1e-6);
  EXPECT_LT(RelDiff(a->critical_total_s, b->critical_total_s), 1e-6);
  EXPECT_EQ(a->strategy, b->strategy);
  EXPECT_EQ(a->steps.count, b->steps.count);
  EXPECT_EQ(a->traffic_bytes, b->traffic_bytes);
  EXPECT_FALSE(b->track_label.empty());  // 'M' process_name was recovered
  std::remove(path.c_str());
}

TEST_F(AnalysisTest, RejectsTraceFilesWithMissingOrNewerSchema) {
  const std::string dir = ::testing::TempDir();
  TraceSet out;
  std::string error;

  const std::string unversioned = dir + "analysis_unversioned.json";
  {
    std::ofstream f(unversioned);
    f << R"({"traceEvents": []})" << "\n";
  }
  EXPECT_FALSE(obs::AnalyzeTraceFile(unversioned, &out, &error));
  EXPECT_NE(error.find("schema_version"), std::string::npos) << error;

  const std::string future = dir + "analysis_future.json";
  {
    std::ofstream f(future);
    f << R"({"schema_version": 999, "meta": {"kind": "trace"}, "traceEvents": []})"
      << "\n";
  }
  EXPECT_FALSE(obs::AnalyzeTraceFile(future, &out, &error));
  EXPECT_NE(error.find("not supported"), std::string::npos) << error;

  // A versioned file of the WRONG kind (bench records fed to the trace
  // analyzer, or vice versa) is rejected too, not mis-parsed.
  const std::string wrong_kind = dir + "analysis_wrong_kind.json";
  {
    std::ofstream f(wrong_kind);
    f << R"({"schema_version": 1, "meta": {"kind": "bench_records"}, "records": []})"
      << "\n";
  }
  EXPECT_FALSE(obs::AnalyzeTraceFile(wrong_kind, &out, &error));
  EXPECT_NE(error.find("meta.kind"), std::string::npos) << error;
  JsonValue records;
  EXPECT_FALSE(obs::LoadRecordsFile(unversioned, &records, &error));

  std::remove(unversioned.c_str());
  std::remove(future.c_str());
  std::remove(wrong_kind.c_str());
}

TEST_F(AnalysisTest, DiffFlagsGdpVersusDnpStructureButNotSelfDiff) {
  const Dataset ds = SmallDataset();
  const TracedEpoch gdp = RunTracedEpoch(ds, Strategy::kGDP);
  obs::Tracer::Global().Clear();
  const TracedEpoch dnp = RunTracedEpoch(ds, Strategy::kDNP);

  const TraceSet gdp_set = obs::AnalyzeEvents(gdp.events, gdp.sim_tracks);
  const TraceSet dnp_set = obs::AnalyzeEvents(dnp.events, dnp.sim_tracks);
  const TraceAnalysis* a = gdp_set.ByStrategy("GDP");
  const TraceAnalysis* b = dnp_set.ByStrategy("DNP");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  // GDP and DNP run the same arithmetic under different parallelization, so
  // the diff must surface significant stage-level deltas...
  const obs::DiffReport diff = obs::DiffAnalyses(*a, *b, /*threshold=*/0.05);
  EXPECT_TRUE(diff.any_significant);
  std::ostringstream os;
  diff.WriteMarkdown(os);
  const std::string md = os.str();
  EXPECT_NE(md.find("| metric |"), std::string::npos) << md;
  EXPECT_NE(md.find("wall_s"), std::string::npos);

  // ...while a run diffed against itself is pure noise-floor: nothing fires.
  const obs::DiffReport self_diff = obs::DiffAnalyses(*a, *a, 0.05);
  EXPECT_FALSE(self_diff.any_significant);
}

TEST_F(AnalysisTest, ResidualReportComparesEstimateAgainstMeasuredTrack) {
  const Dataset ds = SmallDataset();
  const TracedEpoch run = RunTracedEpoch(ds, Strategy::kGDP);
  const TraceSet set = obs::AnalyzeEvents(run.events, run.sim_tracks);
  const TraceAnalysis* measured = set.ByStrategy("GDP");
  ASSERT_NE(measured, nullptr);

  // A perfect estimate: predicted terms copied from the measured track.
  CostEstimate e;
  e.strategy = Strategy::kGDP;
  e.t_build = measured->phase_max_s.at("sample");
  e.t_load = measured->phase_max_s.at("load");
  e.t_shuffle = measured->comm_max_s.at("train");
  const std::string report = FormatResidualReport(e, *measured);
  EXPECT_NE(report.find("Cost-model residuals: GDP"), std::string::npos) << report;
  EXPECT_NE(report.find("t_build (sample)"), std::string::npos);
  EXPECT_NE(report.find("comparable"), std::string::npos);
  // Zero residuals all the way down.
  EXPECT_NE(report.find("0.0% |"), std::string::npos);
  EXPECT_EQ(report.find("(trace labeled"), std::string::npos);

  // A mislabeled comparison is flagged instead of silently averaged in.
  e.strategy = Strategy::kDNP;
  EXPECT_NE(FormatResidualReport(e, *measured).find("(trace labeled GDP)"),
            std::string::npos);
}

// --- gate ------------------------------------------------------------------

JsonValue ParseRecordsOrDie(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_TRUE(ParseJson(text, &v, &error)) << error;
  return v;
}

const char* kBaselineRecords = R"({
  "schema_version": 1,
  "meta": {"kind": "bench_records"},
  "records": [
    {"op": "alltoall", "shape": "4x1MB", "time_ns": 1000.0, "sim_seconds": 0.5,
     "iterations": 10},
    {"case": "fig01/tiny", "strategies": {
      "GDP": {"sim_seconds": 1.0, "wall_seconds": 0.8, "loss": 0.5},
      "DNP": {"sim_seconds": 0.6, "wall_seconds": 0.5}}}
  ]
})";

TEST(GateTest, FlattenRecordsKeysMicroAndFigureRecords) {
  const JsonValue doc = ParseRecordsOrDie(kBaselineRecords);
  const auto flat = obs::FlattenRecords(doc);
  ASSERT_EQ(flat.size(), 3u);
  // Micro record: wall time + sim_* metrics only ("iterations" is not a
  // gated metric).
  const auto& micro = flat.at("alltoall/4x1MB");
  EXPECT_EQ(micro.size(), 2u);
  EXPECT_DOUBLE_EQ(micro.at("time_ns"), 1000.0);
  EXPECT_DOUBLE_EQ(micro.at("sim_seconds"), 0.5);
  // Figure record: one entry per strategy, times only (loss is not a perf
  // metric).
  const auto& gdp = flat.at("fig01/tiny/GDP");
  EXPECT_EQ(gdp.size(), 2u);
  EXPECT_DOUBLE_EQ(gdp.at("sim_seconds"), 1.0);
  EXPECT_DOUBLE_EQ(gdp.at("wall_seconds"), 0.8);
  EXPECT_EQ(flat.count("fig01/tiny/DNP"), 1u);
}

TEST(GateTest, IdenticalRecordsPassAndInflatedSimFails) {
  const JsonValue base = ParseRecordsOrDie(kBaselineRecords);
  const obs::GateOptions options;  // 25% both tolerances

  const obs::GateReport same = obs::RunGate(base, base, options);
  EXPECT_TRUE(same.Pass());
  EXPECT_EQ(same.regressions, 0);
  EXPECT_EQ(same.compared, 6);  // 2 micro + 2x2 figure metrics

  // Inflate ONE deterministic metric past tolerance: the gate must fail and
  // name the offender.
  JsonValue inflated = base;
  inflated.obj["records"].arr[1].obj["strategies"].obj["GDP"].obj["sim_seconds"].num =
      1.5;
  const obs::GateReport bad = obs::RunGate(base, inflated, options);
  EXPECT_FALSE(bad.Pass());
  EXPECT_EQ(bad.regressions, 1);
  ASSERT_FALSE(bad.findings.empty());
  // Findings sort regressions first.
  EXPECT_TRUE(bad.findings[0].regression);
  EXPECT_EQ(bad.findings[0].key, "fig01/tiny/GDP");
  EXPECT_EQ(bad.findings[0].metric, "sim_seconds");
  EXPECT_NEAR(bad.findings[0].rel, 0.5, 1e-12);
  std::ostringstream os;
  bad.WriteMarkdown(os);
  EXPECT_NE(os.str().find("**REGRESSION**"), std::string::npos);
  EXPECT_NE(os.str().find("FAIL"), std::string::npos);
}

TEST(GateTest, ImprovementsAlwaysPass) {
  const JsonValue base = ParseRecordsOrDie(kBaselineRecords);
  JsonValue faster = base;
  faster.obj["records"].arr[0].obj["time_ns"].num = 10.0;  // 100x faster
  faster.obj["records"].arr[1].obj["strategies"].obj["DNP"].obj["sim_seconds"].num =
      0.01;
  EXPECT_TRUE(obs::RunGate(base, faster, obs::GateOptions{}).Pass());
}

TEST(GateTest, WallClockMetricsUseTheirOwnTolerance) {
  const JsonValue base = ParseRecordsOrDie(kBaselineRecords);
  JsonValue wall_slow = base;
  wall_slow.obj["records"].arr[0].obj["time_ns"].num = 1400.0;  // +40% wall

  obs::GateOptions strict_sim_loose_wall;
  strict_sim_loose_wall.sim_tolerance = 0.01;
  strict_sim_loose_wall.wall_tolerance = 0.50;
  EXPECT_TRUE(obs::RunGate(base, wall_slow, strict_sim_loose_wall).Pass());

  obs::GateOptions tight_wall;
  tight_wall.wall_tolerance = 0.25;
  EXPECT_FALSE(obs::RunGate(base, wall_slow, tight_wall).Pass());

  // --no-wall semantics: the delta is reported but never gates.
  tight_wall.gate_wall = false;
  const obs::GateReport ungated = obs::RunGate(base, wall_slow, tight_wall);
  EXPECT_TRUE(ungated.Pass());
  bool saw_wall_finding = false;
  for (const obs::GateFinding& f : ungated.findings) {
    if (f.wall && f.metric == "time_ns") saw_wall_finding = true;
  }
  EXPECT_TRUE(saw_wall_finding);
}

TEST(GateTest, UnmatchedRecordsBecomeNotesNotFailures) {
  const JsonValue base = ParseRecordsOrDie(kBaselineRecords);
  JsonValue pruned = base;
  pruned.obj["records"].arr.pop_back();  // current run lost the figure record
  const obs::GateReport report = obs::RunGate(base, pruned, obs::GateOptions{});
  EXPECT_TRUE(report.Pass());  // missing data is a note, not a regression
  bool noted = false;
  for (const std::string& note : report.notes) {
    if (note.find("fig01/tiny") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted);
}

TEST(GateTest, MergedRecordsDocsRoundTripThroughSerialization) {
  const JsonValue a = ParseRecordsOrDie(kBaselineRecords);
  const JsonValue b = ParseRecordsOrDie(R"({
    "schema_version": 1,
    "meta": {"kind": "bench_records"},
    "records": [{"op": "allreduce", "time_ns": 7.0, "sim_bytes": 64}]
  })");
  const JsonValue merged = obs::MergeRecordsDocs({&a, &b});
  std::ostringstream os;
  obs::WriteRecordsDoc(os, merged);

  const std::string path = ::testing::TempDir() + "analysis_merged_records.json";
  {
    std::ofstream f(path);
    f << os.str();
  }
  JsonValue reloaded;
  std::string error;
  ASSERT_TRUE(obs::LoadRecordsFile(path, &reloaded, &error)) << error;
  const auto flat = obs::FlattenRecords(reloaded);
  EXPECT_EQ(flat.count("alltoall/4x1MB"), 1u);
  EXPECT_EQ(flat.count("allreduce"), 1u);
  EXPECT_DOUBLE_EQ(flat.at("allreduce").at("sim_bytes"), 64.0);
  // Integral values survive the round trip exactly.
  EXPECT_NE(os.str().find("\"sim_bytes\":64"), std::string::npos) << os.str();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace apt
