// Dense kernel tests: shape checks, exact small cases, and numerical
// gradient checks for the loss.
#include <gtest/gtest.h>

#include <cmath>

#include "core/random.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace apt {
namespace {

Tensor RandTensor(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  Tensor t(r, c);
  Rng rng(seed);
  UniformInit(t, rng, -1.0f, 1.0f);
  return t;
}

TEST(TensorTest, ShapeAndAccessors) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.numel(), 12);
  EXPECT_EQ(t.bytes(), 48);
  t.at(2, 3) = 5.0f;
  EXPECT_EQ(t(2, 3), 5.0f);
  EXPECT_EQ(t.ShapeString(), "[3, 4]");
  EXPECT_THROW(t.at(3, 0), Error);
  EXPECT_THROW(t.at(0, 4), Error);
}

TEST(TensorTest, RowSpanAndFill) {
  Tensor t(2, 3);
  t.Fill(2.5f);
  for (float v : t.row_span(1)) EXPECT_EQ(v, 2.5f);
  t.Zero();
  EXPECT_EQ(t(0, 0), 0.0f);
}

TEST(TensorTest, ConstructFromData) {
  Tensor t(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(t(1, 0), 3.0f);
  EXPECT_THROW(Tensor(2, 2, {1, 2, 3}), Error);
}

TEST(MatmulTest, KnownProduct) {
  Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c(2, 2);
  Matmul(a, b, c);
  EXPECT_FLOAT_EQ(c(0, 0), 58);
  EXPECT_FLOAT_EQ(c(0, 1), 64);
  EXPECT_FLOAT_EQ(c(1, 0), 139);
  EXPECT_FLOAT_EQ(c(1, 1), 154);
}

TEST(MatmulTest, AlphaBetaAccumulate) {
  Tensor a(1, 1, {2});
  Tensor b(1, 1, {3});
  Tensor c(1, 1, {10});
  Matmul(a, b, c, /*alpha=*/2.0f, /*beta=*/1.0f);
  EXPECT_FLOAT_EQ(c(0, 0), 22);  // 10 + 2*2*3
  Matmul(a, b, c, 1.0f, 0.5f);
  EXPECT_FLOAT_EQ(c(0, 0), 17);  // 22*0.5 + 6
}

TEST(MatmulTest, TransposedVariantsAgree) {
  const Tensor a = RandTensor(5, 7, 1);
  const Tensor b = RandTensor(7, 4, 2);
  Tensor ref(5, 4);
  Matmul(a, b, ref);
  // MatmulTN: pass a^T explicitly.
  Tensor at(7, 5);
  for (std::int64_t i = 0; i < 5; ++i) {
    for (std::int64_t j = 0; j < 7; ++j) at(j, i) = a(i, j);
  }
  Tensor c1(5, 4);
  MatmulTN(at, b, c1);
  EXPECT_LT(MaxAbsDiff(ref, c1), 1e-5f);
  // MatmulNT: pass b^T explicitly.
  Tensor bt(4, 7);
  for (std::int64_t i = 0; i < 7; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) bt(j, i) = b(i, j);
  }
  Tensor c2(5, 4);
  MatmulNT(a, bt, c2);
  EXPECT_LT(MaxAbsDiff(ref, c2), 1e-5f);
}

TEST(MatmulTest, ShapeMismatchThrows) {
  Tensor a(2, 3), b(4, 2), c(2, 2);
  EXPECT_THROW(Matmul(a, b, c), Error);
}

// Naive triple-loop references for the blocked kernels. Kept deliberately
// dumb: the production kernels tile and re-associate, so we compare with a
// tolerance scaled by the reduction depth.
void RefMatmul(const Tensor& a, const Tensor& b, Tensor& c, float alpha,
               float beta) {
  for (std::int64_t i = 0; i < c.rows(); ++i) {
    for (std::int64_t j = 0; j < c.cols(); ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < a.cols(); ++p) acc += double(a(i, p)) * b(p, j);
      c(i, j) = alpha * static_cast<float>(acc) + (beta == 0.0f ? 0.0f : beta * c(i, j));
    }
  }
}

void RefMatmulTN(const Tensor& a, const Tensor& b, Tensor& c, float alpha,
                 float beta) {
  for (std::int64_t i = 0; i < c.rows(); ++i) {
    for (std::int64_t j = 0; j < c.cols(); ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < a.rows(); ++p) acc += double(a(p, i)) * b(p, j);
      c(i, j) = alpha * static_cast<float>(acc) + (beta == 0.0f ? 0.0f : beta * c(i, j));
    }
  }
}

void RefMatmulNT(const Tensor& a, const Tensor& b, Tensor& c, float alpha,
                 float beta) {
  for (std::int64_t i = 0; i < c.rows(); ++i) {
    for (std::int64_t j = 0; j < c.cols(); ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < a.cols(); ++p) acc += double(a(i, p)) * b(j, p);
      c(i, j) = alpha * static_cast<float>(acc) + (beta == 0.0f ? 0.0f : beta * c(i, j));
    }
  }
}

TEST(MatmulTest, RandomizedParityOddShapes) {
  // Shapes chosen to hit every edge path of the register-blocked kernels:
  // partial m-tiles (m % 4), partial n-tiles (n % 8), partial k-panels
  // (k % 256), and degenerate 1-row/1-col cases.
  const std::int64_t shapes[][3] = {
      {1, 1, 1},  {2, 3, 5},   {3, 9, 7},   {5, 17, 33}, {7, 63, 9},
      {9, 65, 17}, {33, 7, 65}, {63, 33, 63}, {65, 8, 4},  {4, 257, 8},
  };
  const float ab[][2] = {{1.0f, 0.0f}, {2.0f, 0.0f}, {1.0f, 1.0f}, {0.5f, -1.5f}};
  std::uint64_t seed = 100;
  for (const auto& s : shapes) {
    const std::int64_t m = s[0], k = s[1], n = s[2];
    for (const auto& co : ab) {
      const float alpha = co[0], beta = co[1];
      const float tol = 1e-4f * static_cast<float>(k);
      {
        const Tensor a = RandTensor(m, k, seed++);
        const Tensor b = RandTensor(k, n, seed++);
        Tensor c = RandTensor(m, n, seed++);
        Tensor ref = c;
        RefMatmul(a, b, ref, alpha, beta);
        Matmul(a, b, c, alpha, beta);
        EXPECT_LT(MaxAbsDiff(ref, c), tol)
            << "Matmul m=" << m << " k=" << k << " n=" << n << " alpha=" << alpha
            << " beta=" << beta;
      }
      {
        const Tensor a = RandTensor(k, m, seed++);  // stored transposed
        const Tensor b = RandTensor(k, n, seed++);
        Tensor c = RandTensor(m, n, seed++);
        Tensor ref = c;
        RefMatmulTN(a, b, ref, alpha, beta);
        MatmulTN(a, b, c, alpha, beta);
        EXPECT_LT(MaxAbsDiff(ref, c), tol)
            << "MatmulTN m=" << m << " k=" << k << " n=" << n;
      }
      {
        const Tensor a = RandTensor(m, k, seed++);
        const Tensor b = RandTensor(n, k, seed++);  // stored transposed
        Tensor c = RandTensor(m, n, seed++);
        Tensor ref = c;
        RefMatmulNT(a, b, ref, alpha, beta);
        MatmulNT(a, b, c, alpha, beta);
        EXPECT_LT(MaxAbsDiff(ref, c), tol)
            << "MatmulNT m=" << m << " k=" << k << " n=" << n;
      }
    }
  }
}

TEST(MatmulTest, EmptyOutputsAreNoOps) {
  Tensor a(0, 3), b(3, 2), c(0, 2);
  Matmul(a, b, c);  // must not touch memory or divide by zero
  Tensor a2(2, 0), b2(0, 3), c2(2, 3);
  c2.Fill(7.0f);
  Matmul(a2, b2, c2, 1.0f, 0.0f);  // k == 0: beta pass still applies
  EXPECT_FLOAT_EQ(c2(1, 2), 0.0f);
}

TEST(ElementwiseTest, AxpyScaleAdd) {
  Tensor x(1, 4, {1, 2, 3, 4});
  Tensor y(1, 4, {10, 20, 30, 40});
  Axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y(0, 3), 48);
  Scale(y, 0.5f);
  EXPECT_FLOAT_EQ(y(0, 0), 6);
  Tensor out(1, 4);
  Add(x, y, out);
  EXPECT_FLOAT_EQ(out(0, 0), 7);
}

TEST(ElementwiseTest, BiasRoundTrip) {
  Tensor x(3, 2);
  Tensor bias(1, 2, {1.5f, -2.0f});
  AddBiasRows(x, bias);
  for (std::int64_t i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(x(i, 0), 1.5f);
    EXPECT_FLOAT_EQ(x(i, 1), -2.0f);
  }
  Tensor gb(1, 2);
  BiasGradRows(x, gb);
  EXPECT_FLOAT_EQ(gb(0, 0), 4.5f);
  EXPECT_FLOAT_EQ(gb(0, 1), -6.0f);
}

TEST(ActivationTest, ReluForwardBackward) {
  Tensor x(1, 4, {-1, 0, 2, -3});
  Tensor y(1, 4);
  Relu(x, y);
  EXPECT_FLOAT_EQ(y(0, 0), 0);
  EXPECT_FLOAT_EQ(y(0, 2), 2);
  Tensor gy(1, 4, {1, 1, 1, 1});
  Tensor gx(1, 4);
  ReluBackward(x, gy, gx);
  EXPECT_FLOAT_EQ(gx(0, 0), 0);
  EXPECT_FLOAT_EQ(gx(0, 2), 1);
}

TEST(ActivationTest, LeakyReluForwardBackward) {
  Tensor x(1, 2, {-2, 3});
  Tensor y(1, 2);
  LeakyRelu(x, y, 0.2f);
  EXPECT_FLOAT_EQ(y(0, 0), -0.4f);
  EXPECT_FLOAT_EQ(y(0, 1), 3.0f);
  Tensor gy(1, 2, {1, 1});
  Tensor gx(1, 2);
  LeakyReluBackward(x, gy, gx, 0.2f);
  EXPECT_FLOAT_EQ(gx(0, 0), 0.2f);
  EXPECT_FLOAT_EQ(gx(0, 1), 1.0f);
}

TEST(GatherScatterTest, GatherRows) {
  const Tensor src = RandTensor(6, 3, 4);
  const std::vector<std::int64_t> idx{4, 0, 4};
  Tensor out(3, 3);
  GatherRows(src, idx, out);
  EXPECT_FLOAT_EQ(out(0, 1), src(4, 1));
  EXPECT_FLOAT_EQ(out(1, 2), src(0, 2));
  EXPECT_FLOAT_EQ(out(2, 0), src(4, 0));
  const std::vector<std::int64_t> bad{7};
  Tensor small(1, 3);
  EXPECT_THROW(GatherRows(src, bad, small), Error);
}

TEST(GatherScatterTest, ScatterAddAccumulatesDuplicates) {
  Tensor src(3, 2, {1, 1, 2, 2, 3, 3});
  const std::vector<std::int64_t> idx{0, 1, 0};
  Tensor dst(2, 2);
  ScatterAddRows(src, idx, dst);
  EXPECT_FLOAT_EQ(dst(0, 0), 4);  // 1 + 3
  EXPECT_FLOAT_EQ(dst(1, 0), 2);
}

TEST(GatherScatterTest, ScatterRowsOverwrites) {
  Tensor src(2, 1, {5, 6});
  const std::vector<std::int64_t> idx{1, 0};
  Tensor dst(2, 1, {9, 9});
  ScatterRows(src, idx, dst);
  EXPECT_FLOAT_EQ(dst(0, 0), 6);
  EXPECT_FLOAT_EQ(dst(1, 0), 5);
}

TEST(LossTest, PerfectPredictionLowLoss) {
  Tensor logits(2, 3);
  logits(0, 1) = 20.0f;
  logits(1, 2) = 20.0f;
  const std::vector<std::int64_t> labels{1, 2};
  std::int64_t correct = 0;
  const float loss = SoftmaxCrossEntropy(logits, labels, nullptr, &correct);
  EXPECT_LT(loss, 1e-3f);
  EXPECT_EQ(correct, 2);
}

TEST(LossTest, UniformLogitsGiveLogC) {
  Tensor logits(4, 8);
  const std::vector<std::int64_t> labels{0, 1, 2, 3};
  const float loss = SoftmaxCrossEntropy(logits, labels, nullptr, nullptr);
  EXPECT_NEAR(loss, std::log(8.0f), 1e-5f);
}

TEST(LossTest, GradientMatchesFiniteDifference) {
  Tensor logits = RandTensor(3, 5, 6);
  const std::vector<std::int64_t> labels{2, 0, 4};
  Tensor grad(3, 5);
  SoftmaxCrossEntropy(logits, labels, &grad, nullptr);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) {
      Tensor lp = logits, lm = logits;
      lp(i, j) += eps;
      lm(i, j) -= eps;
      const float fp = SoftmaxCrossEntropy(lp, labels, nullptr, nullptr);
      const float fm = SoftmaxCrossEntropy(lm, labels, nullptr, nullptr);
      EXPECT_NEAR(grad(i, j), (fp - fm) / (2 * eps), 2e-3f)
          << "at (" << i << "," << j << ")";
    }
  }
}

TEST(LossTest, InvalidLabelThrows) {
  Tensor logits(1, 3);
  const std::vector<std::int64_t> labels{3};
  EXPECT_THROW(SoftmaxCrossEntropy(logits, labels, nullptr, nullptr), Error);
}

TEST(ReductionTest, MaxAbsDiffAndSumSquares) {
  Tensor a(1, 3, {1, 2, 3});
  Tensor b(1, 3, {1, 2.5f, 3});
  EXPECT_FLOAT_EQ(MaxAbsDiff(a, b), 0.5f);
  EXPECT_DOUBLE_EQ(SumSquares(a), 14.0);
}

TEST(InitTest, XavierRangeAndDeterminism) {
  Tensor w1(64, 64), w2(64, 64);
  Rng r1(42), r2(42);
  XavierUniform(w1, r1);
  XavierUniform(w2, r2);
  EXPECT_EQ(MaxAbsDiff(w1, w2), 0.0f);
  const float bound = std::sqrt(6.0f / 128.0f);
  for (std::int64_t i = 0; i < w1.numel(); ++i) {
    EXPECT_LE(std::fabs(w1.data()[i]), bound);
  }
}

}  // namespace
}  // namespace apt
