// Codec unit tests: wire-byte accounting, value rounding semantics, and the
// determinism contract (rounding is independent of row batching and the
// parallel split) that the quantized strategy-parity suites build on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/random.h"
#include "runtime/parallel_for.h"
#include "tensor/codec.h"
#include "tensor/tensor.h"

namespace apt {
namespace {

Tensor RandTensor(std::int64_t rows, std::int64_t cols, std::uint64_t seed) {
  Tensor t(rows, cols);
  Rng rng(seed);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = rng.NextUniform(-2.0f, 2.0f);
  }
  return t;
}

TEST(Codec, ParseRoundTrips) {
  for (Codec c : {Codec::kIdentity, Codec::kBf16, Codec::kInt8,
                  Codec::kDeltaBitmask}) {
    Codec parsed = Codec::kIdentity;
    ASSERT_TRUE(ParseCodec(ToString(c), &parsed)) << ToString(c);
    EXPECT_EQ(parsed, c);
  }
  Codec parsed = Codec::kBf16;
  EXPECT_TRUE(ParseCodec("fp32", &parsed));
  EXPECT_EQ(parsed, Codec::kIdentity);
  EXPECT_FALSE(ParseCodec("fp16", &parsed));
}

TEST(Codec, WireBytes) {
  EXPECT_EQ(CodecWireBytes(Codec::kIdentity, 10, 32), 10 * 32 * 4);
  EXPECT_EQ(CodecWireBytes(Codec::kBf16, 10, 32), 10 * 32 * 2);
  EXPECT_EQ(CodecWireBytes(Codec::kInt8, 10, 32), 10 * 32 + 10 * 4);
  // Dense worst case: bitmap + every value.
  EXPECT_EQ(CodecWireBytes(Codec::kDeltaBitmask, 1, 64), 64 * 4 + 8);
  EXPECT_DOUBLE_EQ(CodecDenseRatio(Codec::kBf16, 128), 0.5);
  EXPECT_DOUBLE_EQ(CodecDenseRatio(Codec::kInt8, 128),
                   (128.0 + 4.0) / (128.0 * 4.0));
}

TEST(Codec, DeltaBitmaskCountsNonzeros) {
  Tensor t(4, 16);
  t.data()[3] = 1.5f;
  t.data()[40] = -2.0f;
  // 2 nonzero floats + 64-slot bitmap + count header.
  EXPECT_EQ(CodecWireBytes(Codec::kDeltaBitmask, t), 2 * 4 + 64 / 8 + 8);
  // Lossless: rounding must not touch the values.
  Tensor copy = t;
  CodecRoundRows(Codec::kDeltaBitmask, copy);
  EXPECT_EQ(std::memcmp(copy.data(), t.data(),
                        static_cast<std::size_t>(t.numel()) * sizeof(float)),
            0);
}

TEST(Codec, Bf16RoundMatchesReference) {
  EXPECT_EQ(Bf16Round(1.0f), 1.0f);
  EXPECT_EQ(Bf16Round(-2.5f), -2.5f);  // exactly representable
  EXPECT_EQ(Bf16Round(0.0f), 0.0f);
  // bf16 keeps 7 mantissa bits, so the ulp at 1.0 is 2^-7. 1 + 2^-8 is
  // halfway between neighbours 1.0 and 1+2^-7; ties-to-even keeps the even
  // mantissa (1.0).
  EXPECT_EQ(Bf16Round(1.0f + std::ldexp(1.0f, -8)), 1.0f);
  // Just above the halfway point rounds up.
  EXPECT_EQ(Bf16Round(1.0f + std::ldexp(1.0f, -8) + std::ldexp(1.0f, -20)),
            1.0f + std::ldexp(1.0f, -7));
  EXPECT_TRUE(std::isnan(Bf16Round(std::nanf(""))));
  EXPECT_TRUE(std::isinf(Bf16Round(INFINITY)));
  // Idempotent: a bf16 value is its own round.
  Tensor t = RandTensor(8, 33, 11);
  CodecRoundRows(Codec::kBf16, t);
  Tensor again = t;
  CodecRoundRows(Codec::kBf16, again);
  EXPECT_EQ(std::memcmp(again.data(), t.data(),
                        static_cast<std::size_t>(t.numel()) * sizeof(float)),
            0);
}

TEST(Codec, Int8ErrorBounded) {
  Tensor t = RandTensor(16, 40, 7);
  Tensor rounded = t;
  CodecRoundRows(Codec::kInt8, rounded);
  for (std::int64_t r = 0; r < t.rows(); ++r) {
    float maxabs = 0.0f;
    for (std::int64_t c = 0; c < t.cols(); ++c) {
      maxabs = std::max(maxabs, std::fabs(t.data()[r * t.cols() + c]));
    }
    const float step = maxabs / 127.0f;
    for (std::int64_t c = 0; c < t.cols(); ++c) {
      const std::int64_t i = r * t.cols() + c;
      EXPECT_LE(std::fabs(rounded.data()[i] - t.data()[i]), 0.5f * step + 1e-6f)
          << "row " << r << " col " << c;
    }
  }
  // All-zero rows pass through untouched (no 0/0 scale).
  Tensor z(2, 8);
  CodecRoundRows(Codec::kInt8, z);
  for (std::int64_t i = 0; i < z.numel(); ++i) EXPECT_EQ(z.data()[i], 0.0f);
}

// The determinism contract: rounding a block of rows yields bit-identical
// results whether the rows are rounded together, one at a time, or under a
// different worker count. GDP and DNP batch the same rows differently, so
// quantized parity is impossible without this.
TEST(Codec, RoundingIndependentOfBatchingAndThreads) {
  for (Codec codec : {Codec::kBf16, Codec::kInt8}) {
    const Tensor src = RandTensor(64, 48, 19);
    Tensor whole = src;
    CodecRoundRows(codec, whole);

    Tensor rowwise = src;
    for (std::int64_t r = 0; r < src.rows(); ++r) {
      Tensor one(1, src.cols());
      std::memcpy(one.data(), src.data() + r * src.cols(),
                  static_cast<std::size_t>(src.cols()) * sizeof(float));
      CodecRoundRows(codec, one);
      std::memcpy(rowwise.data() + r * src.cols(), one.data(),
                  static_cast<std::size_t>(src.cols()) * sizeof(float));
    }
    EXPECT_EQ(std::memcmp(whole.data(), rowwise.data(),
                          static_cast<std::size_t>(src.numel()) * sizeof(float)),
              0)
        << ToString(codec) << " row batching changed the rounding";

    ScopedParallelismLimit serial(1);
    Tensor single = src;
    CodecRoundRows(codec, single);
    EXPECT_EQ(std::memcmp(whole.data(), single.data(),
                          static_cast<std::size_t>(src.numel()) * sizeof(float)),
              0)
        << ToString(codec) << " thread count changed the rounding";
  }
}

TEST(Codec, Pow2Ceil) {
  EXPECT_EQ(Pow2Ceil(0.0), 1.0);
  EXPECT_EQ(Pow2Ceil(1.0), 1.0);
  EXPECT_EQ(Pow2Ceil(3.0), 4.0);
  EXPECT_EQ(Pow2Ceil(4.0), 4.0);
  EXPECT_EQ(Pow2Ceil(-5.0), 8.0);
  EXPECT_EQ(Pow2Ceil(0.3), 0.5);
  EXPECT_EQ(Pow2Ceil(std::nan("")), 1.0);
}

TEST(Codec, XcodeSeconds) {
  EXPECT_EQ(CodecXcodeSeconds(Codec::kIdentity, 1 << 20, 1e9), 0.0);
  EXPECT_DOUBLE_EQ(CodecXcodeSeconds(Codec::kBf16, 1000, 1e3), 1.0);
  EXPECT_EQ(CodecXcodeSeconds(Codec::kInt8, 0, 1e9), 0.0);
}

}  // namespace
}  // namespace apt
