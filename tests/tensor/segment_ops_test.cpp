// Sparse kernel tests: exact small cases, forward/backward consistency,
// and finite-difference gradient checks for the attention kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/random.h"
#include "sampling/block.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/segment_ops.h"

namespace apt {
namespace {

// A tiny bipartite graph: 3 dst, 4 src.
// dst0 <- {0, 1}; dst1 <- {}; dst2 <- {1, 2, 3}.
struct TinyGraph {
  std::vector<std::int64_t> indptr{0, 2, 2, 5};
  std::vector<std::int64_t> col{0, 1, 1, 2, 3};
  CsrView csr() const { return {indptr, col}; }
};

Tensor RandTensor(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  Tensor t(r, c);
  Rng rng(seed);
  UniformInit(t, rng, -1.0f, 1.0f);
  return t;
}

TEST(SpmmTest, SumExact) {
  TinyGraph g;
  Tensor src(4, 2, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor out(3, 2);
  SpmmSum(g.csr(), src, out);
  EXPECT_FLOAT_EQ(out(0, 0), 4);   // 1 + 3
  EXPECT_FLOAT_EQ(out(1, 0), 0);   // empty row
  EXPECT_FLOAT_EQ(out(2, 1), 18);  // 4 + 6 + 8
}

TEST(SpmmTest, MeanExact) {
  TinyGraph g;
  Tensor src(4, 1, {2, 4, 6, 8});
  Tensor out(3, 1);
  SpmmMean(g.csr(), src, out);
  EXPECT_FLOAT_EQ(out(0, 0), 3);  // (2+4)/2
  EXPECT_FLOAT_EQ(out(1, 0), 0);
  EXPECT_FLOAT_EQ(out(2, 0), 6);  // (4+6+8)/3
}

TEST(SpmmTest, MeanBackwardIsTranspose) {
  // <SpmmMean(x), g> == <x, SpmmMeanBackward(g)> (adjoint identity).
  TinyGraph g;
  const Tensor x = RandTensor(4, 3, 1);
  const Tensor gy = RandTensor(3, 3, 2);
  Tensor y(3, 3);
  SpmmMean(g.csr(), x, y);
  Tensor gx(4, 3);
  SpmmMeanBackward(g.csr(), gy, gx);
  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) lhs += y.data()[i] * gy.data()[i];
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += x.data()[i] * gx.data()[i];
  EXPECT_NEAR(lhs, rhs, 1e-5);
}

TEST(SpmmTest, SumBackwardIsTranspose) {
  TinyGraph g;
  const Tensor x = RandTensor(4, 2, 3);
  const Tensor gy = RandTensor(3, 2, 4);
  Tensor y(3, 2);
  SpmmSum(g.csr(), x, y);
  Tensor gx(4, 2);
  SpmmSumBackward(g.csr(), gy, gx);
  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) lhs += y.data()[i] * gy.data()[i];
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += x.data()[i] * gx.data()[i];
  EXPECT_NEAR(lhs, rhs, 1e-5);
}

TEST(WeightedSpmmTest, MatchesManual) {
  TinyGraph g;
  Tensor src(4, 1, {1, 2, 3, 4});
  const std::vector<float> w{0.5f, 0.25f, 1.0f, 2.0f, 3.0f};
  Tensor out(3, 1);
  SpmmWeightedSum(g.csr(), w, src, out);
  EXPECT_FLOAT_EQ(out(0, 0), 1.0f);   // 0.5*1 + 0.25*2
  EXPECT_FLOAT_EQ(out(2, 0), 20.0f);  // 1*2 + 2*3 + 3*4
}

TEST(WeightedSpmmTest, BackwardGradW) {
  TinyGraph g;
  const Tensor src = RandTensor(4, 3, 5);
  std::vector<float> w{0.1f, 0.2f, 0.3f, 0.4f, 0.5f};
  const Tensor gy = RandTensor(3, 3, 6);
  std::vector<float> gw(5, 0.0f);
  Tensor gsrc(4, 3);
  SpmmWeightedSumBackward(g.csr(), w, src, gy, gw, &gsrc);
  // Finite difference on each edge weight.
  auto loss = [&](const std::vector<float>& ww) {
    Tensor out(3, 3);
    SpmmWeightedSum(g.csr(), ww, src, out);
    double acc = 0.0;
    for (std::int64_t i = 0; i < out.numel(); ++i) acc += out.data()[i] * gy.data()[i];
    return acc;
  };
  const float eps = 1e-3f;
  for (std::size_t e = 0; e < w.size(); ++e) {
    auto wp = w, wm = w;
    wp[e] += eps;
    wm[e] -= eps;
    EXPECT_NEAR(gw[e], (loss(wp) - loss(wm)) / (2 * eps), 1e-3) << "edge " << e;
  }
}

TEST(SddmmTest, AddAndBackward) {
  TinyGraph g;
  const std::vector<float> a_src{1, 2, 3, 4};
  const std::vector<float> a_dst{10, 20, 30};
  std::vector<float> score(5);
  SddmmAdd(g.csr(), a_src, a_dst, score);
  EXPECT_FLOAT_EQ(score[0], 11);  // src0 + dst0
  EXPECT_FLOAT_EQ(score[4], 34);  // src3 + dst2
  std::vector<float> gs{1, 1, 1, 1, 1};
  std::vector<float> ga_src(4, 0), ga_dst(3, 0);
  SddmmAddBackward(g.csr(), gs, ga_src, ga_dst);
  EXPECT_FLOAT_EQ(ga_src[1], 2);  // src1 on two edges
  EXPECT_FLOAT_EQ(ga_dst[2], 3);
  EXPECT_FLOAT_EQ(ga_dst[1], 0);
}

TEST(SegmentSoftmaxTest, RowsSumToOne) {
  TinyGraph g;
  const std::vector<float> score{0.5f, -1.0f, 2.0f, 0.0f, 1.0f};
  std::vector<float> out(5);
  SegmentSoftmax(g.csr(), score, out);
  EXPECT_NEAR(out[0] + out[1], 1.0f, 1e-6f);
  EXPECT_NEAR(out[2] + out[3] + out[4], 1.0f, 1e-6f);
  for (float v : out) EXPECT_GT(v, 0.0f);
}

TEST(SegmentSoftmaxTest, StableUnderLargeLogits) {
  TinyGraph g;
  const std::vector<float> score{1000.0f, 999.0f, 500.0f, 400.0f, 300.0f};
  std::vector<float> out(5);
  SegmentSoftmax(g.csr(), score, out);
  for (float v : out) {
    EXPECT_FALSE(std::isnan(v));
    EXPECT_FALSE(std::isinf(v));
  }
  EXPECT_GT(out[0], out[1]);
}

TEST(SegmentSoftmaxTest, BackwardFiniteDifference) {
  TinyGraph g;
  std::vector<float> score{0.5f, -1.0f, 2.0f, 0.0f, 1.0f};
  std::vector<float> out(5);
  SegmentSoftmax(g.csr(), score, out);
  const std::vector<float> gy{0.3f, -0.7f, 1.1f, 0.2f, -0.4f};
  std::vector<float> gs(5, 0.0f);
  SegmentSoftmaxBackward(g.csr(), out, gy, gs);
  auto loss = [&](const std::vector<float>& s) {
    std::vector<float> o(5);
    SegmentSoftmax(g.csr(), s, o);
    double acc = 0.0;
    for (std::size_t i = 0; i < o.size(); ++i) acc += o[i] * gy[i];
    return acc;
  };
  const float eps = 1e-3f;
  for (std::size_t e = 0; e < score.size(); ++e) {
    auto sp = score, sm = score;
    sp[e] += eps;
    sm[e] -= eps;
    EXPECT_NEAR(gs[e], (loss(sp) - loss(sm)) / (2 * eps), 1e-3) << "edge " << e;
  }
}

TEST(SegmentedSpmmTest, MatchesPerSegmentSpmm) {
  // Two independent segments executed jointly must match two separate calls.
  TinyGraph g1, g2;
  const Tensor src = RandTensor(8, 2, 7);  // segment 0: rows 0..3; segment 1: 4..7
  const std::vector<std::int64_t> src_off{0, 4, 8};
  const std::vector<std::int64_t> dst_off{0, 3, 6};
  const std::vector<CsrView> segs{g1.csr(), g2.csr()};
  Tensor out(6, 2);
  SegmentedSpmmMean(segs, src_off, dst_off, src, out);

  Tensor s0(4, 2), s1(4, 2);
  std::copy_n(src.data(), 8, s0.data());
  std::copy_n(src.data() + 8, 8, s1.data());
  Tensor o0(3, 2), o1(3, 2);
  SpmmMean(g1.csr(), s0, o0);
  SpmmMean(g2.csr(), s1, o1);
  for (std::int64_t i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(out(i, 0), o0(i, 0));
    EXPECT_FLOAT_EQ(out(3 + i, 1), o1(i, 1));
  }

  // Backward consistency with per-segment backward.
  const Tensor gy = RandTensor(6, 2, 8);
  Tensor gx(8, 2);
  SegmentedSpmmMeanBackward(segs, src_off, dst_off, gy, gx);
  Tensor gy0(3, 2), gy1(3, 2);
  std::copy_n(gy.data(), 6, gy0.data());
  std::copy_n(gy.data() + 6, 6, gy1.data());
  Tensor gx0(4, 2), gx1(4, 2);
  SpmmMeanBackward(g1.csr(), gy0, gx0);
  SpmmMeanBackward(g2.csr(), gy1, gx1);
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(gx(i, 0), gx0(i, 0));
    EXPECT_FLOAT_EQ(gx(4 + i, 0), gx1(i, 0));
  }
}

TEST(SpmmTest, ShapeMismatchThrows) {
  TinyGraph g;
  Tensor src(4, 2);
  Tensor bad_out(2, 2);
  EXPECT_THROW(SpmmSum(g.csr(), src, bad_out), Error);
}

// ---------------------------------------------------------------------------
// Randomized parity: the transposed parallel backward paths must reproduce
// the destination-major serial loops bit-for-bit (the transpose preserves
// per-source accumulation order).
// ---------------------------------------------------------------------------

// Random bipartite CSR with empty destinations and a power-law style hot
// source (src 0 draws a large share of edges).
struct RandomGraph {
  std::vector<std::int64_t> indptr;
  std::vector<std::int64_t> col;
  std::int64_t num_src = 0;
  CsrView csr() const { return {indptr, col}; }
};

RandomGraph MakeRandomGraph(std::int64_t num_dst, std::int64_t num_src,
                            std::int64_t max_deg, std::uint64_t seed) {
  RandomGraph g;
  g.num_src = num_src;
  g.indptr.push_back(0);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> deg_dist(0, max_deg);
  std::uniform_int_distribution<std::int64_t> src_dist(0, num_src - 1);
  std::bernoulli_distribution hot(0.25);  // quarter of edges hit source 0
  for (std::int64_t d = 0; d < num_dst; ++d) {
    std::int64_t deg = deg_dist(rng);
    if (d % 7 == 0) deg = 0;  // sprinkle empty segments
    for (std::int64_t e = 0; e < deg; ++e) {
      g.col.push_back(hot(rng) ? 0 : src_dist(rng));
    }
    g.indptr.push_back(static_cast<std::int64_t>(g.col.size()));
  }
  return g;
}

// Destination-major serial references (the pre-transpose implementations).
void RefSumBackward(const CsrView& csr, const Tensor& gy, Tensor& gx) {
  for (std::int64_t d = 0; d < csr.num_dst(); ++d) {
    for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
      float* srow = gx.row(csr.col[static_cast<std::size_t>(e)]);
      for (std::int64_t j = 0; j < gx.cols(); ++j) srow[j] += gy.row(d)[j];
    }
  }
}

void RefMeanBackward(const CsrView& csr, const Tensor& gy, Tensor& gx) {
  for (std::int64_t d = 0; d < csr.num_dst(); ++d) {
    const std::int64_t deg = csr.indptr[d + 1] - csr.indptr[d];
    if (deg == 0) continue;
    const float inv = 1.0f / static_cast<float>(deg);
    for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
      float* srow = gx.row(csr.col[static_cast<std::size_t>(e)]);
      for (std::int64_t j = 0; j < gx.cols(); ++j) srow[j] += inv * gy.row(d)[j];
    }
  }
}

// Wraps a RandomGraph's structure in a Block so csr() carries the memoized
// transpose cache — the path the training loop takes.
Block AsBlock(const RandomGraph& g) {
  Block b;
  b.num_dst = static_cast<std::int64_t>(g.indptr.size()) - 1;
  b.indptr = g.indptr;
  b.col = g.col;
  b.src_nodes.resize(static_cast<std::size_t>(g.num_src));
  return b;
}

TEST(SpmmBackwardParityTest, SumAndMeanMatchSerialBitExact) {
  // Big enough that edges*dim clears the scratch-transpose threshold, so the
  // bare CsrView also takes the parallel path.
  const RandomGraph g = MakeRandomGraph(/*num_dst=*/300, /*num_src=*/64,
                                        /*max_deg=*/12, /*seed=*/11);
  ASSERT_GE(g.csr().num_edges() * 32, 1 << 14);
  const Tensor gy = RandTensor(300, 32, 12);
  const Block block = AsBlock(g);

  Tensor ref(64, 32), via_scratch(64, 32), via_cache(64, 32);
  RefSumBackward(g.csr(), gy, ref);
  SpmmSumBackward(g.csr(), gy, via_scratch);
  SpmmSumBackward(block.csr(), gy, via_cache);
  EXPECT_EQ(MaxAbsDiff(ref, via_scratch), 0.0f);
  EXPECT_EQ(MaxAbsDiff(ref, via_cache), 0.0f);

  Tensor mref(64, 32), mvia_scratch(64, 32), mvia_cache(64, 32);
  RefMeanBackward(g.csr(), gy, mref);
  SpmmMeanBackward(g.csr(), gy, mvia_scratch);
  SpmmMeanBackward(block.csr(), gy, mvia_cache);
  EXPECT_EQ(MaxAbsDiff(mref, mvia_scratch), 0.0f);
  EXPECT_EQ(MaxAbsDiff(mref, mvia_cache), 0.0f);
}

TEST(SpmmBackwardParityTest, TinyGraphTakesSerialPathAndAccumulates) {
  // Below the transpose threshold a bare view runs the serial loop; a cached
  // view runs the parallel one. Both must agree, and both must *accumulate*
  // into non-zero grad_src.
  const RandomGraph g = MakeRandomGraph(40, 16, 4, 21);
  const Tensor gy = RandTensor(40, 3, 22);
  const Block block = AsBlock(g);
  Tensor a = RandTensor(16, 3, 23);
  Tensor b = a;
  SpmmSumBackward(g.csr(), gy, a);
  SpmmSumBackward(block.csr(), gy, b);
  EXPECT_EQ(MaxAbsDiff(a, b), 0.0f);
}

TEST(SpmmBackwardParityTest, WeightedBackwardMatchesSerial) {
  const RandomGraph g = MakeRandomGraph(200, 48, 10, 31);
  const std::int64_t ne = g.csr().num_edges();
  const Tensor src = RandTensor(48, 24, 32);
  const Tensor gy = RandTensor(200, 24, 33);
  std::vector<float> w(static_cast<std::size_t>(ne));
  Rng wr(34);
  for (auto& v : w) v = wr.NextUniform(-1.0f, 1.0f);

  // Serial reference via a view too small to transpose? Force it instead by
  // computing with the destination-major loop inline.
  std::vector<float> gw_ref(w.size(), 0.0f);
  Tensor gsrc_ref(48, 24);
  for (std::int64_t d = 0; d < g.csr().num_dst(); ++d) {
    for (std::int64_t e = g.indptr[static_cast<std::size_t>(d)];
         e < g.indptr[static_cast<std::size_t>(d) + 1]; ++e) {
      const std::int64_t s = g.col[static_cast<std::size_t>(e)];
      float acc = 0.0f;
      for (std::int64_t j = 0; j < 24; ++j) acc += gy.row(d)[j] * src.row(s)[j];
      gw_ref[static_cast<std::size_t>(e)] += acc;
      for (std::int64_t j = 0; j < 24; ++j) {
        gsrc_ref.row(s)[j] += w[static_cast<std::size_t>(e)] * gy.row(d)[j];
      }
    }
  }

  const Block block = AsBlock(g);
  for (const CsrView& view : {g.csr(), block.csr()}) {
    std::vector<float> gw(w.size(), 0.0f);
    Tensor gsrc(48, 24);
    SpmmWeightedSumBackward(view, w, src, gy, gw, &gsrc);
    EXPECT_EQ(MaxAbsDiff(gsrc_ref, gsrc), 0.0f);
    for (std::size_t e = 0; e < w.size(); ++e) {
      ASSERT_EQ(gw_ref[e], gw[e]) << "edge " << e;
    }
  }
}

TEST(SddmmTest, BackwardParityOnRandomGraph) {
  const RandomGraph g = MakeRandomGraph(150, 40, 8, 41);
  const std::int64_t ne = g.csr().num_edges();
  std::vector<float> gs(static_cast<std::size_t>(ne));
  Rng r(42);
  for (auto& v : gs) v = r.NextUniform(-1.0f, 1.0f);

  std::vector<float> ga_src_ref(40, 0.0f), ga_dst_ref(150, 0.0f);
  SddmmAddBackward(g.csr(), gs, ga_src_ref, ga_dst_ref);  // serial (no cache)

  const Block block = AsBlock(g);
  std::vector<float> ga_src(40, 0.0f), ga_dst(150, 0.0f);
  SddmmAddBackward(block.csr(), gs, ga_src, ga_dst);
  for (std::size_t i = 0; i < ga_src.size(); ++i) {
    EXPECT_NEAR(ga_src_ref[i], ga_src[i], 1e-5f) << "src " << i;
  }
  for (std::size_t i = 0; i < ga_dst.size(); ++i) {
    ASSERT_EQ(ga_dst_ref[i], ga_dst[i]) << "dst " << i;
  }
}

TEST(CsrTransposeTest, StructureRoundTrips) {
  const RandomGraph g = MakeRandomGraph(100, 32, 6, 51);
  const CsrTranspose t = BuildCsrTranspose(g.csr(), 32);
  ASSERT_EQ(t.num_src, 32);
  ASSERT_EQ(static_cast<std::int64_t>(t.indptr.size()), 33);
  ASSERT_EQ(t.dst.size(), g.col.size());
  ASSERT_EQ(t.eid.size(), g.col.size());
  EXPECT_EQ(t.indptr.back(), static_cast<std::int64_t>(g.col.size()));
  std::vector<int> edge_seen(g.col.size(), 0);
  for (std::int64_t s = 0; s < 32; ++s) {
    for (std::int64_t p = t.indptr[static_cast<std::size_t>(s)];
         p < t.indptr[static_cast<std::size_t>(s) + 1]; ++p) {
      const std::int64_t e = t.eid[static_cast<std::size_t>(p)];
      edge_seen[static_cast<std::size_t>(e)]++;
      // eid maps back to an original edge owned by this source...
      EXPECT_EQ(g.col[static_cast<std::size_t>(e)], s);
      // ...whose destination matches, and destinations ascend within a source
      // (the property that makes backward accumulation order bit-identical).
      const std::int64_t d = t.dst[static_cast<std::size_t>(p)];
      EXPECT_TRUE(g.indptr[static_cast<std::size_t>(d)] <= e &&
                  e < g.indptr[static_cast<std::size_t>(d) + 1]);
      if (p > t.indptr[static_cast<std::size_t>(s)]) {
        EXPECT_LE(t.dst[static_cast<std::size_t>(p) - 1], d);
      }
    }
  }
  for (int c : edge_seen) EXPECT_EQ(c, 1);
}

TEST(CsrTransposeTest, CacheMemoizesAndRebuildsOnShapeChange) {
  const RandomGraph g = MakeRandomGraph(60, 20, 5, 61);
  CsrTransposeCache cache;
  const CsrTranspose& t1 = cache.Get(g.csr(), 20);
  const CsrTranspose& t2 = cache.Get(g.csr(), 20);
  EXPECT_EQ(&t1, &t2);  // memoized
  const CsrTranspose& t3 = cache.Get(g.csr(), 24);  // num_src changed
  EXPECT_EQ(t3.num_src, 24);
  EXPECT_THROW(BuildCsrTranspose(g.csr(), 1), Error);  // col out of range
}

}  // namespace
}  // namespace apt
