// Sparse kernel tests: exact small cases, forward/backward consistency,
// and finite-difference gradient checks for the attention kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "core/random.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/segment_ops.h"

namespace apt {
namespace {

// A tiny bipartite graph: 3 dst, 4 src.
// dst0 <- {0, 1}; dst1 <- {}; dst2 <- {1, 2, 3}.
struct TinyGraph {
  std::vector<std::int64_t> indptr{0, 2, 2, 5};
  std::vector<std::int64_t> col{0, 1, 1, 2, 3};
  CsrView csr() const { return {indptr, col}; }
};

Tensor RandTensor(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  Tensor t(r, c);
  Rng rng(seed);
  UniformInit(t, rng, -1.0f, 1.0f);
  return t;
}

TEST(SpmmTest, SumExact) {
  TinyGraph g;
  Tensor src(4, 2, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor out(3, 2);
  SpmmSum(g.csr(), src, out);
  EXPECT_FLOAT_EQ(out(0, 0), 4);   // 1 + 3
  EXPECT_FLOAT_EQ(out(1, 0), 0);   // empty row
  EXPECT_FLOAT_EQ(out(2, 1), 18);  // 4 + 6 + 8
}

TEST(SpmmTest, MeanExact) {
  TinyGraph g;
  Tensor src(4, 1, {2, 4, 6, 8});
  Tensor out(3, 1);
  SpmmMean(g.csr(), src, out);
  EXPECT_FLOAT_EQ(out(0, 0), 3);  // (2+4)/2
  EXPECT_FLOAT_EQ(out(1, 0), 0);
  EXPECT_FLOAT_EQ(out(2, 0), 6);  // (4+6+8)/3
}

TEST(SpmmTest, MeanBackwardIsTranspose) {
  // <SpmmMean(x), g> == <x, SpmmMeanBackward(g)> (adjoint identity).
  TinyGraph g;
  const Tensor x = RandTensor(4, 3, 1);
  const Tensor gy = RandTensor(3, 3, 2);
  Tensor y(3, 3);
  SpmmMean(g.csr(), x, y);
  Tensor gx(4, 3);
  SpmmMeanBackward(g.csr(), gy, gx);
  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) lhs += y.data()[i] * gy.data()[i];
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += x.data()[i] * gx.data()[i];
  EXPECT_NEAR(lhs, rhs, 1e-5);
}

TEST(SpmmTest, SumBackwardIsTranspose) {
  TinyGraph g;
  const Tensor x = RandTensor(4, 2, 3);
  const Tensor gy = RandTensor(3, 2, 4);
  Tensor y(3, 2);
  SpmmSum(g.csr(), x, y);
  Tensor gx(4, 2);
  SpmmSumBackward(g.csr(), gy, gx);
  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) lhs += y.data()[i] * gy.data()[i];
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += x.data()[i] * gx.data()[i];
  EXPECT_NEAR(lhs, rhs, 1e-5);
}

TEST(WeightedSpmmTest, MatchesManual) {
  TinyGraph g;
  Tensor src(4, 1, {1, 2, 3, 4});
  const std::vector<float> w{0.5f, 0.25f, 1.0f, 2.0f, 3.0f};
  Tensor out(3, 1);
  SpmmWeightedSum(g.csr(), w, src, out);
  EXPECT_FLOAT_EQ(out(0, 0), 1.0f);   // 0.5*1 + 0.25*2
  EXPECT_FLOAT_EQ(out(2, 0), 20.0f);  // 1*2 + 2*3 + 3*4
}

TEST(WeightedSpmmTest, BackwardGradW) {
  TinyGraph g;
  const Tensor src = RandTensor(4, 3, 5);
  std::vector<float> w{0.1f, 0.2f, 0.3f, 0.4f, 0.5f};
  const Tensor gy = RandTensor(3, 3, 6);
  std::vector<float> gw(5, 0.0f);
  Tensor gsrc(4, 3);
  SpmmWeightedSumBackward(g.csr(), w, src, gy, gw, &gsrc);
  // Finite difference on each edge weight.
  auto loss = [&](const std::vector<float>& ww) {
    Tensor out(3, 3);
    SpmmWeightedSum(g.csr(), ww, src, out);
    double acc = 0.0;
    for (std::int64_t i = 0; i < out.numel(); ++i) acc += out.data()[i] * gy.data()[i];
    return acc;
  };
  const float eps = 1e-3f;
  for (std::size_t e = 0; e < w.size(); ++e) {
    auto wp = w, wm = w;
    wp[e] += eps;
    wm[e] -= eps;
    EXPECT_NEAR(gw[e], (loss(wp) - loss(wm)) / (2 * eps), 1e-3) << "edge " << e;
  }
}

TEST(SddmmTest, AddAndBackward) {
  TinyGraph g;
  const std::vector<float> a_src{1, 2, 3, 4};
  const std::vector<float> a_dst{10, 20, 30};
  std::vector<float> score(5);
  SddmmAdd(g.csr(), a_src, a_dst, score);
  EXPECT_FLOAT_EQ(score[0], 11);  // src0 + dst0
  EXPECT_FLOAT_EQ(score[4], 34);  // src3 + dst2
  std::vector<float> gs{1, 1, 1, 1, 1};
  std::vector<float> ga_src(4, 0), ga_dst(3, 0);
  SddmmAddBackward(g.csr(), gs, ga_src, ga_dst);
  EXPECT_FLOAT_EQ(ga_src[1], 2);  // src1 on two edges
  EXPECT_FLOAT_EQ(ga_dst[2], 3);
  EXPECT_FLOAT_EQ(ga_dst[1], 0);
}

TEST(SegmentSoftmaxTest, RowsSumToOne) {
  TinyGraph g;
  const std::vector<float> score{0.5f, -1.0f, 2.0f, 0.0f, 1.0f};
  std::vector<float> out(5);
  SegmentSoftmax(g.csr(), score, out);
  EXPECT_NEAR(out[0] + out[1], 1.0f, 1e-6f);
  EXPECT_NEAR(out[2] + out[3] + out[4], 1.0f, 1e-6f);
  for (float v : out) EXPECT_GT(v, 0.0f);
}

TEST(SegmentSoftmaxTest, StableUnderLargeLogits) {
  TinyGraph g;
  const std::vector<float> score{1000.0f, 999.0f, 500.0f, 400.0f, 300.0f};
  std::vector<float> out(5);
  SegmentSoftmax(g.csr(), score, out);
  for (float v : out) {
    EXPECT_FALSE(std::isnan(v));
    EXPECT_FALSE(std::isinf(v));
  }
  EXPECT_GT(out[0], out[1]);
}

TEST(SegmentSoftmaxTest, BackwardFiniteDifference) {
  TinyGraph g;
  std::vector<float> score{0.5f, -1.0f, 2.0f, 0.0f, 1.0f};
  std::vector<float> out(5);
  SegmentSoftmax(g.csr(), score, out);
  const std::vector<float> gy{0.3f, -0.7f, 1.1f, 0.2f, -0.4f};
  std::vector<float> gs(5, 0.0f);
  SegmentSoftmaxBackward(g.csr(), out, gy, gs);
  auto loss = [&](const std::vector<float>& s) {
    std::vector<float> o(5);
    SegmentSoftmax(g.csr(), s, o);
    double acc = 0.0;
    for (std::size_t i = 0; i < o.size(); ++i) acc += o[i] * gy[i];
    return acc;
  };
  const float eps = 1e-3f;
  for (std::size_t e = 0; e < score.size(); ++e) {
    auto sp = score, sm = score;
    sp[e] += eps;
    sm[e] -= eps;
    EXPECT_NEAR(gs[e], (loss(sp) - loss(sm)) / (2 * eps), 1e-3) << "edge " << e;
  }
}

TEST(SegmentedSpmmTest, MatchesPerSegmentSpmm) {
  // Two independent segments executed jointly must match two separate calls.
  TinyGraph g1, g2;
  const Tensor src = RandTensor(8, 2, 7);  // segment 0: rows 0..3; segment 1: 4..7
  const std::vector<std::int64_t> src_off{0, 4, 8};
  const std::vector<std::int64_t> dst_off{0, 3, 6};
  const std::vector<CsrView> segs{g1.csr(), g2.csr()};
  Tensor out(6, 2);
  SegmentedSpmmMean(segs, src_off, dst_off, src, out);

  Tensor s0(4, 2), s1(4, 2);
  std::copy_n(src.data(), 8, s0.data());
  std::copy_n(src.data() + 8, 8, s1.data());
  Tensor o0(3, 2), o1(3, 2);
  SpmmMean(g1.csr(), s0, o0);
  SpmmMean(g2.csr(), s1, o1);
  for (std::int64_t i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(out(i, 0), o0(i, 0));
    EXPECT_FLOAT_EQ(out(3 + i, 1), o1(i, 1));
  }

  // Backward consistency with per-segment backward.
  const Tensor gy = RandTensor(6, 2, 8);
  Tensor gx(8, 2);
  SegmentedSpmmMeanBackward(segs, src_off, dst_off, gy, gx);
  Tensor gy0(3, 2), gy1(3, 2);
  std::copy_n(gy.data(), 6, gy0.data());
  std::copy_n(gy.data() + 6, 6, gy1.data());
  Tensor gx0(4, 2), gx1(4, 2);
  SpmmMeanBackward(g1.csr(), gy0, gx0);
  SpmmMeanBackward(g2.csr(), gy1, gx1);
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(gx(i, 0), gx0(i, 0));
    EXPECT_FLOAT_EQ(gx(4 + i, 0), gx1(i, 0));
  }
}

TEST(SpmmTest, ShapeMismatchThrows) {
  TinyGraph g;
  Tensor src(4, 2);
  Tensor bad_out(2, 2);
  EXPECT_THROW(SpmmSum(g.csr(), src, bad_out), Error);
}

}  // namespace
}  // namespace apt
