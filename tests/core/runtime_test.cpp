// Tests for the thread pool and ParallelFor.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/error.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace apt {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::latch done(10);
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] {
      count.fetch_add(1);
      done.count_down();
    });
  }
  done.wait();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, GlobalPoolSingleton) {
  EXPECT_EQ(&ThreadPool::Global(), &ThreadPool::Global());
  EXPECT_GE(ThreadPool::Global().NumThreads(), 1u);
}

TEST(ParallelForTest, CoversWholeRange) {
  std::vector<int> hits(1000, 0);
  ParallelFor(0, 1000, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; },
              /*grain=*/16);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, EmptyAndSingleRanges) {
  int count = 0;
  ParallelFor(5, 5, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count, 0);
  ParallelFor(7, 8, [&](std::int64_t i) { EXPECT_EQ(i, 7); ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ParallelForTest, NonZeroBegin) {
  std::atomic<std::int64_t> sum{0};
  ParallelFor(100, 200, [&](std::int64_t i) { sum.fetch_add(i); }, 8);
  EXPECT_EQ(sum.load(), (100 + 199) * 100 / 2);
}

TEST(ParallelForTest, PropagatesExceptions) {
  EXPECT_THROW(
      ParallelFor(0, 10000,
                  [&](std::int64_t i) {
                    if (i == 4321) throw Error("boom");
                  },
                  /*grain=*/8),
      Error);
}

TEST(ParallelForTest, LargeGrainRunsSerial) {
  // grain larger than range => runs on the calling thread; still correct.
  std::vector<int> hits(64, 0);
  ParallelFor(0, 64, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; },
              1 << 20);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

}  // namespace
}  // namespace apt
