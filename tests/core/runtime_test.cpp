// Tests for the thread pool and ParallelFor.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <latch>
#include <numeric>
#include <thread>
#include <vector>

#include "core/error.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace apt {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::latch done(10);
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] {
      count.fetch_add(1);
      done.count_down();
    });
  }
  done.wait();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, GlobalPoolSingleton) {
  EXPECT_EQ(&ThreadPool::Global(), &ThreadPool::Global());
  EXPECT_GE(ThreadPool::Global().NumThreads(), 1u);
}

TEST(ParallelForTest, CoversWholeRange) {
  std::vector<int> hits(1000, 0);
  ParallelFor(0, 1000, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; },
              /*grain=*/16);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, EmptyAndSingleRanges) {
  int count = 0;
  ParallelFor(5, 5, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count, 0);
  ParallelFor(7, 8, [&](std::int64_t i) { EXPECT_EQ(i, 7); ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ParallelForTest, NonZeroBegin) {
  std::atomic<std::int64_t> sum{0};
  ParallelFor(100, 200, [&](std::int64_t i) { sum.fetch_add(i); }, 8);
  EXPECT_EQ(sum.load(), (100 + 199) * 100 / 2);
}

TEST(ParallelForTest, PropagatesExceptions) {
  EXPECT_THROW(
      ParallelFor(0, 10000,
                  [&](std::int64_t i) {
                    if (i == 4321) throw Error("boom");
                  },
                  /*grain=*/8),
      Error);
}

TEST(ParallelForTest, LargeGrainRunsSerial) {
  // grain larger than range => runs on the calling thread; still correct.
  std::vector<int> hits(64, 0);
  ParallelFor(0, 64, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; },
              1 << 20);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ParallelForTest, NestedCallsRunSerially) {
  // An inner ParallelFor issued from inside a parallel region must not fork
  // again (the fork-join pool has one shared job slot); it degrades to a
  // serial loop on the issuing lane and still covers its range.
  std::vector<std::atomic<int>> hits(64 * 64);
  ParallelFor(0, 64, [&](std::int64_t i) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    ParallelFor(0, 64, [&](std::int64_t j) {
      hits[static_cast<std::size_t>(i * 64 + j)].fetch_add(
          1, std::memory_order_relaxed);
    }, /*grain=*/1);
  }, /*grain=*/1);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ParallelForDynamicTest, CoversSkewedRange) {
  // Power-law style per-index cost: index 0 does ~n work, the tail is cheap.
  constexpr std::int64_t kN = 4096;
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<std::int64_t> weighted{0};
  ParallelForDynamic(0, kN, [&](std::int64_t i) {
    const std::int64_t reps = (i == 0) ? kN : 1;
    std::int64_t acc = 0;
    for (std::int64_t r = 0; r < reps; ++r) acc += r ^ i;
    weighted.fetch_add(acc, std::memory_order_relaxed);
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  }, /*grain=*/32);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForDynamicTest, PropagatesExceptions) {
  EXPECT_THROW(
      ParallelForDynamic(0, 10000,
                         [&](std::int64_t i) {
                           if (i == 1234) throw Error("dyn boom");
                         },
                         /*grain=*/8),
      Error);
  // The pool must still be usable after an exception unwound a region.
  std::atomic<std::int64_t> sum{0};
  ParallelForDynamic(0, 100, [&](std::int64_t i) { sum.fetch_add(i); }, 4);
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ParallelForTest, ScopedParallelismLimitForcesSerial) {
  const std::thread::id caller = std::this_thread::get_id();
  ScopedParallelismLimit serial(1);
  ParallelFor(0, 512, [&](std::int64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  }, /*grain=*/1);
}

TEST(ParallelForTest, ManySequentialRegions) {
  // Stress the fork/join handshake: back-to-back regions reuse the parked
  // workers; every region must see a fully quiesced pool.
  std::atomic<std::int64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    ParallelFor(0, 64, [&](std::int64_t i) { total.fetch_add(i); }, 4);
  }
  EXPECT_EQ(total.load(), 200 * (63 * 64 / 2));
}

TEST(ThreadPoolTest, HonorsEnvThreadOverride) {
  ASSERT_EQ(setenv("APT_NUM_THREADS", "3", 1), 0);
  {
    ThreadPool pool(0);
    EXPECT_EQ(pool.NumThreads(), 3u);
    EXPECT_EQ(pool.ParallelismDegree(), 4u);  // workers + calling thread
  }
  ASSERT_EQ(unsetenv("APT_NUM_THREADS"), 0);
  {
    ThreadPool pool(2);  // explicit count beats the (absent) env var
    EXPECT_EQ(pool.NumThreads(), 2u);
  }
}

TEST(ThreadPoolTest, ForkJoinDispatchesChunks) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> seen(17);
  struct Ctx {
    std::vector<std::atomic<int>>* seen;
  } ctx{&seen};
  pool.ForkJoin(17, [](void* c, std::int64_t chunk) {
    auto* s = static_cast<Ctx*>(c)->seen;
    (*s)[static_cast<std::size_t>(chunk)].fetch_add(1);
  }, &ctx);
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

}  // namespace
}  // namespace apt
