// Tests for core utilities: errors, rng, types, timers.
#include <gtest/gtest.h>

#include <set>

#include "core/error.h"
#include "core/random.h"
#include "core/timer.h"
#include "core/types.h"

namespace apt {
namespace {

TEST(ErrorTest, CheckPassesOnTrue) { APT_CHECK(1 + 1 == 2) << "never shown"; }

TEST(ErrorTest, CheckThrowsWithMessage) {
  try {
    APT_CHECK(false) << "context " << 42;
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("CHECK failed"), std::string::npos);
  }
}

TEST(ErrorTest, ComparisonMacros) {
  EXPECT_THROW(APT_CHECK_EQ(1, 2), Error);
  EXPECT_THROW(APT_CHECK_LT(2, 1), Error);
  EXPECT_THROW(APT_CHECK_GE(1, 2), Error);
  APT_CHECK_LE(2, 2);
  APT_CHECK_NE(1, 2);
  APT_CHECK_GT(3, 2);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIndependence) {
  Rng base(77);
  Rng s1 = base.Fork(1);
  Rng s2 = base.Fork(2);
  EXPECT_NE(s1.Next(), s2.Next());
  // Forking is a const operation on the parent state.
  Rng s1_again = base.Fork(1);
  Rng s1_ref = base.Fork(1);
  EXPECT_EQ(s1_again.Next(), s1_ref.Next());
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.NextBelow(7);
    EXPECT_LT(v, 7u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.Shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 10u);
}

TEST(StrategyTest, RoundTripNames) {
  for (Strategy s : kAllStrategies) {
    EXPECT_EQ(StrategyFromString(ToString(s)), s);
  }
  EXPECT_EQ(StrategyFromString("gdp"), Strategy::kGDP);
  EXPECT_EQ(StrategyFromString("dnp"), Strategy::kDNP);
  EXPECT_THROW(StrategyFromString("bogus"), Error);
}

TEST(WallTimerTest, MeasuresNonNegative) {
  WallTimer t;
  EXPECT_GE(t.Seconds(), 0.0);
  t.Reset();
  EXPECT_GE(t.Seconds(), 0.0);
}

}  // namespace
}  // namespace apt
