// Golden-parity property suite for scale mode's analytic fast-forward
// collectives (DESIGN.md "Scale mode" invariant): the shape-only entry
// points (AllToAllTensorShapes / AllToAllBytes / AllReduceSumShape /
// AllBroadcastTensorShapes) must charge BIT-IDENTICAL virtual seconds and
// per-TrafficClass logical + wire bytes to their byte-moving twins — across
// random clusters, wire/gradient codecs, and pipeline depths — because they
// run the same link/codec/fault-threshold math and only skip materializing
// and moving the payload.
//
// kDeltaBitmask is deliberately absent: its wire bytes depend on payload
// content, so the shape path charges the documented dense worst case
// (CodecWireBytes(rows, cols)) and exact parity is not claimed.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "comm/collectives.h"
#include "core/error.h"
#include "core/random.h"
#include "sim/fault.h"
#include "sim/hardware.h"
#include "sim/scale.h"
#include "sim/sim_context.h"
#include "tensor/tensor.h"

namespace apt {
namespace {

constexpr Codec kShapeFaithfulCodecs[] = {Codec::kIdentity, Codec::kBf16,
                                          Codec::kInt8};

/// One randomly drawn collective sequence: every row/length below is decided
/// before either twin runs, so both charge from identical geometry.
struct Geometry {
  std::int64_t cols = 0;
  std::vector<std::vector<std::int64_t>> a2a_rows;   ///< AllToAllTensors i->j
  std::int64_t allreduce_rows = 0;
  bool gradient_sync = false;
  std::vector<std::int64_t> broadcast_rows;          ///< AllBroadcastTensors
  std::vector<std::vector<std::int64_t>> vec_lens;   ///< AllToAllVec<int64> i->j
};

Geometry DrawGeometry(Rng& rng, std::int32_t devices) {
  const auto c = static_cast<std::size_t>(devices);
  Geometry g;
  g.cols = 1 + static_cast<std::int64_t>(rng.NextBelow(12));
  g.a2a_rows.assign(c, std::vector<std::int64_t>(c, 0));
  g.vec_lens.assign(c, std::vector<std::int64_t>(c, 0));
  g.broadcast_rows.resize(c);
  for (std::size_t i = 0; i < c; ++i) {
    g.broadcast_rows[i] = static_cast<std::int64_t>(rng.NextBelow(7));
    for (std::size_t j = 0; j < c; ++j) {
      // 0-row entries exercise the sparse (free-lane) case on both paths.
      g.a2a_rows[i][j] = static_cast<std::int64_t>(rng.NextBelow(6));
      g.vec_lens[i][j] = static_cast<std::int64_t>(rng.NextBelow(40));
    }
  }
  g.allreduce_rows = 1 + static_cast<std::int64_t>(rng.NextBelow(9));
  g.gradient_sync = rng.NextBelow(2) == 1;
  return g;
}

ClusterSpec DrawCluster(Rng& rng) {
  const auto machines = static_cast<std::int32_t>(1 + rng.NextBelow(3));
  const auto gpus = static_cast<std::int32_t>(2 + rng.NextBelow(3));
  const bool nvlink = rng.NextBelow(2) == 1;
  return machines == 1 ? SingleMachineCluster(gpus, nvlink)
                       : MultiMachineCluster(machines, gpus, nvlink);
}

Tensor FilledTensor(std::int64_t rows, std::int64_t cols, Rng& rng) {
  Tensor t(rows, cols);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = rng.NextUniform(-2.0f, 2.0f);
  }
  return t;
}

/// The byte-moving sequence. `fill` makes payload content irrelevant by
/// construction for the shape-faithful codecs; it is varied anyway.
void RunByteMoving(SimContext& ctx, Communicator& comm, const Geometry& g,
                   int depth) {
  const auto c = static_cast<std::size_t>(comm.num_devices());
  Rng fill(99);
  if (depth > 1) ctx.BeginPipelinedStep(depth);
  std::vector<std::vector<Tensor>> parts(c);
  for (std::size_t i = 0; i < c; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      parts[i].push_back(FilledTensor(g.a2a_rows[i][j], g.cols, fill));
    }
  }
  comm.AllToAllTensors(parts, Phase::kSample);

  std::vector<Tensor> grads;
  std::vector<Tensor*> grad_ptrs;
  for (std::size_t i = 0; i < c; ++i) {
    grads.push_back(FilledTensor(g.allreduce_rows, g.cols, fill));
  }
  for (auto& t : grads) grad_ptrs.push_back(&t);
  comm.AllReduceSum(grad_ptrs, Phase::kTrain, g.gradient_sync);

  std::vector<Tensor> inputs;
  for (std::size_t i = 0; i < c; ++i) {
    inputs.push_back(FilledTensor(g.broadcast_rows[i], g.cols, fill));
  }
  comm.AllBroadcastTensors(inputs, Phase::kSample);

  std::vector<std::vector<std::vector<std::int64_t>>> sends(
      c, std::vector<std::vector<std::int64_t>>(c));
  for (std::size_t i = 0; i < c; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      sends[i][j].assign(static_cast<std::size_t>(g.vec_lens[i][j]), 7);
    }
  }
  comm.AllToAllVec(sends, Phase::kSample);
  if (depth > 1) ctx.EndPipelinedStep();
}

/// The analytic twin: same geometry, shape-only entry points.
void RunAnalytic(SimContext& ctx, Communicator& comm, const Geometry& g,
                 int depth) {
  const auto c = static_cast<std::size_t>(comm.num_devices());
  if (depth > 1) ctx.BeginPipelinedStep(depth);
  std::vector<std::vector<Communicator::TensorShape>> parts(
      c, std::vector<Communicator::TensorShape>(c));
  for (std::size_t i = 0; i < c; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      parts[i][j] = {g.a2a_rows[i][j], g.cols};
    }
  }
  comm.AllToAllTensorShapes(parts, Phase::kSample);

  comm.AllReduceSumShape(g.allreduce_rows, g.cols, Phase::kTrain,
                         g.gradient_sync);

  std::vector<Communicator::TensorShape> inputs(c);
  for (std::size_t i = 0; i < c; ++i) inputs[i] = {g.broadcast_rows[i], g.cols};
  comm.AllBroadcastTensorShapes(inputs, Phase::kSample);

  std::vector<std::vector<std::int64_t>> bytes(c,
                                               std::vector<std::int64_t>(c, 0));
  for (std::size_t i = 0; i < c; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      bytes[i][j] =
          g.vec_lens[i][j] * static_cast<std::int64_t>(sizeof(std::int64_t));
    }
  }
  comm.AllToAllBytes(bytes, Phase::kSample);
  if (depth > 1) ctx.EndPipelinedStep();
}

void ExpectBitIdentical(const SimContext& a, const SimContext& b) {
  ASSERT_EQ(a.num_devices(), b.num_devices());
  for (DeviceId d = 0; d < a.num_devices(); ++d) {
    EXPECT_EQ(a.Now(d), b.Now(d)) << "device " << d;
  }
  for (int p = 0; p < kNumPhases; ++p) {
    EXPECT_EQ(a.PhaseMax(static_cast<Phase>(p)),
              b.PhaseMax(static_cast<Phase>(p)))
        << "phase " << p;
    EXPECT_EQ(a.CommMax(static_cast<Phase>(p)), b.CommMax(static_cast<Phase>(p)))
        << "comm phase " << p;
  }
  for (int t = 0; t < static_cast<int>(TrafficClass::kNumClasses); ++t) {
    const auto cls = static_cast<TrafficClass>(t);
    EXPECT_EQ(a.TrafficBytes(cls), b.TrafficBytes(cls)) << ToString(cls);
    EXPECT_EQ(a.TrafficWireBytes(cls), b.TrafficWireBytes(cls)) << ToString(cls);
  }
}

TEST(ScaleParityTest, AnalyticTwinsChargeBitIdenticalSecondsAndBytes) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    for (const Codec codec : kShapeFaithfulCodecs) {
      for (const int depth : {1, 4}) {
        SCOPED_TRACE("seed=" + std::to_string(seed) +
                     " codec=" + std::string(ToString(codec)) +
                     " depth=" + std::to_string(depth));
        Rng rng(seed * 7919 + 13);
        const ClusterSpec cluster = DrawCluster(rng);
        const Geometry g = DrawGeometry(rng, cluster.num_devices());

        SimContext real_ctx(cluster);
        SimContext shape_ctx(cluster, SimOptions{ScaleMode::kScale});
        Communicator real(real_ctx);
        Communicator shape(shape_ctx);
        for (Communicator* c : {&real, &shape}) {
          c->SetWireCodecAll(codec);
          c->set_grad_codec(codec);
        }
        RunByteMoving(real_ctx, real, g, depth);
        RunAnalytic(shape_ctx, shape, g, depth);
        ExpectBitIdentical(real_ctx, shape_ctx);
      }
    }
  }
}

// Scale mode parallelizes the per-device clock advance of barriers and
// collective charging once the device count crosses its threshold (64). The
// parallel path must be bit-identical to the serial scale-off path: per-device
// FP sequences are unchanged, only the loop over devices is distributed.
TEST(ScaleParityTest, ParallelClockAdvanceIsBitIdenticalAt64Devices) {
  const ClusterSpec cluster = MultiMachineCluster(16, 4);  // 64 devices
  Rng rng(4242);
  const Geometry g = DrawGeometry(rng, cluster.num_devices());
  SimContext serial_ctx(cluster);  // scale off -> serial advance
  SimContext parallel_ctx(cluster, SimOptions{ScaleMode::kScale});
  Communicator serial(serial_ctx);
  Communicator parallel(parallel_ctx);
  for (int round = 0; round < 3; ++round) {
    RunAnalytic(serial_ctx, serial, g, /*depth=*/1);
    RunAnalytic(parallel_ctx, parallel, g, /*depth=*/1);
  }
  serial_ctx.BarrierAll(Phase::kTrain);
  parallel_ctx.BarrierAll(Phase::kTrain);
  ExpectBitIdentical(serial_ctx, parallel_ctx);
}

// Wire-byte collective-failure thresholds consume the SAME cumulative
// counters on the analytic path: the fault fires at the same collective,
// poisons the barrier the same way, and leaves bit-identical clocks.
TEST(ScaleParityTest, CollectiveFaultThresholdFiresIdenticallyOnAnalyticPath) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed + 1);
    const ClusterSpec cluster = DrawCluster(rng);
    const Geometry g = DrawGeometry(rng, cluster.num_devices());

    FaultPlan plan;
    plan.collectives.push_back({/*after_bytes=*/64});

    SimContext real_ctx(cluster);
    SimContext shape_ctx(cluster, SimOptions{ScaleMode::kScale});
    real_ctx.InstallFaults(plan);
    shape_ctx.InstallFaults(plan);
    Communicator real(real_ctx);
    Communicator shape(shape_ctx);

    EXPECT_THROW(RunByteMoving(real_ctx, real, g, /*depth=*/1), CollectiveError);
    EXPECT_THROW(RunAnalytic(shape_ctx, shape, g, /*depth=*/1), CollectiveError);
    EXPECT_EQ(real_ctx.FaultsObserved(), shape_ctx.FaultsObserved());
    EXPECT_GE(real_ctx.FaultsObserved(), 1);
    real_ctx.ClearBarrierPoison();
    shape_ctx.ClearBarrierPoison();
    ExpectBitIdentical(real_ctx, shape_ctx);
  }
}

}  // namespace
}  // namespace apt
