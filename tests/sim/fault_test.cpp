// Unit tests for the fault-injection layer: FaultPlan semantics, SimContext
// consumption (stragglers, link degradation, collective failure, barrier
// poisoning), and the zero-fault bitwise-invariance guarantee.
#include <gtest/gtest.h>

#include "comm/collectives.h"
#include "sim/fault.h"
#include "sim/sim_context.h"
#include "tensor/tensor.h"

namespace apt {
namespace {

TEST(LinkFaultTest, WindowAndFlapPhase) {
  LinkFault l;
  l.link_class = static_cast<int>(TrafficClass::kPeerGpu);
  l.start_s = 10.0;
  l.end_s = 20.0;
  EXPECT_FALSE(l.ActiveAt(9.999));
  EXPECT_TRUE(l.ActiveAt(10.0));
  EXPECT_TRUE(l.ActiveAt(19.999));
  EXPECT_FALSE(l.ActiveAt(20.0));

  // Flapping: degraded for the first 25% of every 2 s period.
  l.flap_period_s = 2.0;
  l.flap_duty = 0.25;
  EXPECT_TRUE(l.ActiveAt(10.0));    // phase 0
  EXPECT_TRUE(l.ActiveAt(10.49));   // phase 0.245
  EXPECT_FALSE(l.ActiveAt(10.5));   // phase 0.25
  EXPECT_FALSE(l.ActiveAt(11.9));
  EXPECT_TRUE(l.ActiveAt(12.1));    // next period
}

TEST(FaultPlanTest, StragglerFactorsStack) {
  FaultPlan plan;
  plan.stragglers.push_back({.device = 1, .start_s = 0.0, .end_s = 10.0, .slowdown = 2.0});
  plan.stragglers.push_back({.device = 1, .start_s = 5.0, .end_s = 10.0, .slowdown = 3.0});
  EXPECT_DOUBLE_EQ(plan.StragglerFactor(0, 1.0), 1.0);  // other device
  EXPECT_DOUBLE_EQ(plan.StragglerFactor(1, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(plan.StragglerFactor(1, 6.0), 6.0);  // overlap multiplies
  EXPECT_DOUBLE_EQ(plan.StragglerFactor(1, 10.0), 1.0); // window closed
}

TEST(FaultPlanTest, DegradeScalesBandwidthAndAddsLatency) {
  FaultPlan plan;
  plan.links.push_back({.link_class = static_cast<int>(TrafficClass::kCrossMachine),
                        .start_s = 0.0,
                        .end_s = 100.0,
                        .bandwidth_factor = 0.5,
                        .extra_latency_s = 1e-3});
  const LinkSpec base{.bandwidth_bytes_per_s = 1e9, .latency_s = 1e-5};
  const LinkSpec hit =
      plan.Degrade(base, static_cast<int>(TrafficClass::kCrossMachine), 1.0);
  EXPECT_DOUBLE_EQ(hit.bandwidth_bytes_per_s, 0.5e9);
  EXPECT_DOUBLE_EQ(hit.latency_s, 1e-5 + 1e-3);
  // Wrong class / outside window: untouched.
  const LinkSpec miss_cls =
      plan.Degrade(base, static_cast<int>(TrafficClass::kPeerGpu), 1.0);
  EXPECT_DOUBLE_EQ(miss_cls.bandwidth_bytes_per_s, base.bandwidth_bytes_per_s);
  const LinkSpec miss_t =
      plan.Degrade(base, static_cast<int>(TrafficClass::kCrossMachine), 200.0);
  EXPECT_DOUBLE_EQ(miss_t.latency_s, base.latency_s);
}

TEST(SimContextFaultTest, StragglerSlowsComputeOnlyInsideWindow) {
  SimContext ctx(SingleMachineCluster(2));
  const double base = ctx.ComputeSeconds(0, 1e9);
  ASSERT_GT(base, 0.0);

  FaultPlan plan;
  plan.stragglers.push_back({.device = 0, .start_s = 10.0, .end_s = 20.0, .slowdown = 4.0});
  ctx.InstallFaults(plan);
  EXPECT_DOUBLE_EQ(ctx.ComputeSeconds(0, 1e9), base);  // clock still at 0
  EXPECT_DOUBLE_EQ(ctx.ComputeSeconds(1, 1e9), base);
  ctx.Advance(0, 15.0, Phase::kTrain);
  EXPECT_DOUBLE_EQ(ctx.ComputeSeconds(0, 1e9), 4.0 * base);
  EXPECT_DOUBLE_EQ(ctx.ComputeSeconds(1, 1e9), base);  // peer unaffected
  ctx.Advance(0, 10.0, Phase::kTrain);                 // clock now 25 > end
  EXPECT_DOUBLE_EQ(ctx.ComputeSeconds(0, 1e9), base);
  EXPECT_GE(ctx.FaultsObserved(), 1);
}

TEST(SimContextFaultTest, EffectiveLinksDegradeAtCurrentClocks) {
  const ClusterSpec cluster = SingleMachineCluster(2);
  SimContext ctx(cluster);
  const LinkSpec base = cluster.LinkBetween(0, 1);

  FaultPlan plan;
  plan.links.push_back({.link_class = static_cast<int>(TrafficClass::kPeerGpu),
                        .start_s = 5.0,
                        .end_s = 50.0,
                        .bandwidth_factor = 0.1});
  ctx.InstallFaults(plan);
  EXPECT_DOUBLE_EQ(ctx.EffectiveLinkBetween(0, 1).bandwidth_bytes_per_s,
                   base.bandwidth_bytes_per_s);
  // The pair's time is max(clock a, clock b): advancing only device 1 into
  // the window degrades the pair.
  ctx.Advance(1, 6.0, Phase::kTrain);
  EXPECT_DOUBLE_EQ(ctx.EffectiveLinkBetween(0, 1).bandwidth_bytes_per_s,
                   0.1 * base.bandwidth_bytes_per_s);
}

TEST(SimContextFaultTest, ZeroFaultPathsAreBitIdentical) {
  const ClusterSpec cluster = SingleMachineCluster(4);
  SimContext plain(cluster);
  SimContext installed(cluster);
  installed.InstallFaults(FaultPlan{});  // empty plan
  EXPECT_FALSE(installed.HasFaults());
  for (DeviceId a = 0; a < 4; ++a) {
    EXPECT_EQ(plain.ComputeSeconds(a, 123456.0), installed.ComputeSeconds(a, 123456.0));
    for (DeviceId b = 0; b < 4; ++b) {
      if (a == b) continue;
      EXPECT_EQ(cluster.LinkBetween(a, b).bandwidth_bytes_per_s,
                installed.EffectiveLinkBetween(a, b).bandwidth_bytes_per_s);
      EXPECT_EQ(cluster.LinkBetween(a, b).latency_s,
                installed.EffectiveLinkBetween(a, b).latency_s);
    }
  }
}

TEST(SimContextFaultTest, CollectiveFaultFiresOnceAtThreshold) {
  SimContext ctx(SingleMachineCluster(2));
  FaultPlan plan;
  plan.collectives.push_back({.after_bytes = 1000});
  ctx.InstallFaults(plan);

  EXPECT_FALSE(ctx.CollectiveFailureFraction(600).has_value());
  EXPECT_EQ(ctx.CollectiveBytesDone(), 600);
  // This call crosses the 1000-byte threshold 400/800 of the way through.
  const auto frac = ctx.CollectiveFailureFraction(800);
  ASSERT_TRUE(frac.has_value());
  EXPECT_DOUBLE_EQ(*frac, 0.5);
  EXPECT_EQ(ctx.CollectiveBytesDone(), 1000);  // advanced to the threshold
  // The retry of the same call passes: the fault is consumed.
  EXPECT_FALSE(ctx.CollectiveFailureFraction(800).has_value());
  EXPECT_EQ(ctx.CollectiveBytesDone(), 1800);
}

TEST(SimContextFaultTest, PoisonedBarrierThrowsTypedErrorUntilCleared) {
  SimContext ctx(SingleMachineCluster(2));
  ctx.BarrierAll(Phase::kTrain);  // healthy
  ctx.PoisonBarrier("test failure");
  EXPECT_TRUE(ctx.BarrierPoisoned());
  EXPECT_THROW(ctx.BarrierAll(Phase::kTrain), BarrierPoisonedError);
  // Still poisoned: EVERY waiter observes the error, not just the first.
  EXPECT_THROW(ctx.BarrierAll(Phase::kTrain), BarrierPoisonedError);
  ctx.ClearBarrierPoison();
  ctx.BarrierAll(Phase::kTrain);  // recovered
}

TEST(CommunicatorFaultTest, FailedAllReducePoisonsBarrierForWaiters) {
  SimContext ctx(SingleMachineCluster(2));
  FaultPlan plan;
  plan.collectives.push_back({.after_bytes = 0});  // fail the first collective
  ctx.InstallFaults(plan);
  Communicator comm(ctx);

  std::vector<Tensor> bufs;
  bufs.emplace_back(8, 8);
  bufs.emplace_back(8, 8);
  std::vector<Tensor*> ptrs{&bufs[0], &bufs[1]};
  EXPECT_THROW(comm.AllReduceSum(ptrs, Phase::kTrain), CollectiveError);
  // A peer arriving at the barrier sees a typed error instead of hanging.
  EXPECT_THROW(ctx.BarrierAll(Phase::kTrain), BarrierPoisonedError);
  // Recovery: clear the poison and retry; the consumed fault lets it pass.
  ctx.ClearBarrierPoison();
  comm.AllReduceSum(ptrs, Phase::kTrain);
}

TEST(CommunicatorFaultTest, ShapeMismatchPoisonsInsteadOfCrashing) {
  SimContext ctx(SingleMachineCluster(2));
  Communicator comm(ctx);
  Tensor a(8, 8), b(8, 4);
  std::vector<Tensor*> ptrs{&a, &b};
  EXPECT_THROW(comm.AllReduceSum(ptrs, Phase::kTrain), CollectiveError);
  EXPECT_THROW(ctx.BarrierAll(Phase::kTrain), BarrierPoisonedError);
}

TEST(RandomFaultPlanTest, SeededAndWellFormed) {
  const ClusterSpec cluster = MultiMachineCluster(2, 2);
  const FaultPlan a = RandomFaultPlan(42, cluster, /*horizon_s=*/100.0, 1.0);
  const FaultPlan b = RandomFaultPlan(42, cluster, 100.0, 1.0);
  EXPECT_EQ(a.Describe(), b.Describe());  // bit-reproducible
  EXPECT_FALSE(a.Empty());                // intensity 1.0 always draws faults

  for (const StragglerFault& s : a.stragglers) {
    EXPECT_GE(s.device, 0);
    EXPECT_LT(s.device, cluster.num_devices());
    EXPECT_LT(s.start_s, s.end_s);
    EXPECT_GT(s.slowdown, 1.0);
  }
  for (const LinkFault& l : a.links) {
    EXPECT_LT(l.start_s, l.end_s);
    EXPECT_GT(l.bandwidth_factor, 0.0);
    EXPECT_LT(l.bandwidth_factor, 1.0);
  }
  for (std::size_t i = 1; i < a.collectives.size(); ++i) {
    EXPECT_LE(a.collectives[i - 1].after_bytes, a.collectives[i].after_bytes);
  }
  const FaultPlan c = RandomFaultPlan(43, cluster, 100.0, 1.0);
  EXPECT_NE(a.Describe(), c.Describe());  // seed actually matters
}

}  // namespace
}  // namespace apt
