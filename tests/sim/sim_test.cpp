// Tests for the hardware model and simulation context.
#include <gtest/gtest.h>

#include "sim/hardware.h"
#include "sim/sim_context.h"

namespace apt {
namespace {

TEST(HardwareTest, SingleMachineLayout) {
  const ClusterSpec c = SingleMachineCluster(8);
  EXPECT_EQ(c.num_machines(), 1);
  EXPECT_EQ(c.num_devices(), 8);
  EXPECT_EQ(c.MachineOf(0), 0);
  EXPECT_EQ(c.MachineOf(7), 0);
  EXPECT_EQ(c.LocalIndex(5), 5);
  EXPECT_THROW(c.MachineOf(8), Error);
}

TEST(HardwareTest, MultiMachineLayout) {
  const ClusterSpec c = MultiMachineCluster(4, 4);
  EXPECT_EQ(c.num_machines(), 4);
  EXPECT_EQ(c.num_devices(), 16);
  EXPECT_EQ(c.MachineOf(0), 0);
  EXPECT_EQ(c.MachineOf(4), 1);
  EXPECT_EQ(c.MachineOf(15), 3);
  EXPECT_EQ(c.LocalIndex(6), 2);
}

TEST(HardwareTest, LinkSelectionIntraVsInter) {
  const ClusterSpec c = MultiMachineCluster(2, 2);
  const LinkSpec intra = c.LinkBetween(0, 1);
  const LinkSpec inter = c.LinkBetween(0, 2);
  EXPECT_EQ(intra.bandwidth_bytes_per_s, c.machines[0].pcie.bandwidth_bytes_per_s);
  EXPECT_EQ(inter.bandwidth_bytes_per_s, c.network.bandwidth_bytes_per_s);
}

TEST(HardwareTest, NvlinkPreferredWhenPresent) {
  const ClusterSpec c = SingleMachineCluster(4, /*nvlink=*/true);
  const LinkSpec l = c.LinkBetween(0, 1);
  EXPECT_EQ(l.bandwidth_bytes_per_s, c.machines[0].nvlink.bandwidth_bytes_per_s);
  EXPECT_GT(l.bandwidth_bytes_per_s, c.machines[0].pcie.bandwidth_bytes_per_s);
}

TEST(HardwareTest, CpuLinkLocalVsRemote) {
  const ClusterSpec c = MultiMachineCluster(2, 2);
  EXPECT_EQ(c.LinkToCpu(0, 0).bandwidth_bytes_per_s,
            c.machines[0].pcie.bandwidth_bytes_per_s);
  EXPECT_EQ(c.LinkToCpu(0, 1).bandwidth_bytes_per_s, c.network.bandwidth_bytes_per_s);
}

TEST(HardwareTest, TransferSecondsLinear) {
  const LinkSpec link{1e9, 1e-5};
  EXPECT_DOUBLE_EQ(link.TransferSeconds(0), 1e-5);
  EXPECT_DOUBLE_EQ(link.TransferSeconds(1e9), 1.0 + 1e-5);
}

TEST(HardwareTest, EffectiveFlopsBelowPeak) {
  const DeviceSpec t4;
  EXPECT_LT(t4.EffectiveFlops(), t4.fp32_flops);
  EXPECT_GT(t4.EffectiveFlops(), 0.0);
}

TEST(SimContextTest, ClocksAdvanceAndBarrier) {
  SimContext sim(SingleMachineCluster(3));
  sim.Advance(0, 1.0, Phase::kSample);
  sim.Advance(1, 2.0, Phase::kLoad);
  EXPECT_DOUBLE_EQ(sim.Now(0), 1.0);
  EXPECT_DOUBLE_EQ(sim.Now(2), 0.0);
  EXPECT_DOUBLE_EQ(sim.MaxNow(), 2.0);
  sim.BarrierAll(Phase::kTrain);
  for (DeviceId d = 0; d < 3; ++d) EXPECT_DOUBLE_EQ(sim.Now(d), 2.0);
  // Wait time was attributed to kTrain.
  EXPECT_DOUBLE_EQ(sim.PhaseOf(0, Phase::kTrain), 1.0);
  EXPECT_DOUBLE_EQ(sim.PhaseOf(2, Phase::kTrain), 2.0);
  EXPECT_DOUBLE_EQ(sim.PhaseOf(1, Phase::kTrain), 0.0);
}

TEST(SimContextTest, PhaseAccounting) {
  SimContext sim(SingleMachineCluster(2));
  sim.Advance(0, 1.5, Phase::kSample);
  sim.Advance(0, 0.5, Phase::kSample);
  sim.Advance(1, 3.0, Phase::kSample);
  EXPECT_DOUBLE_EQ(sim.PhaseTotal(Phase::kSample), 5.0);
  EXPECT_DOUBLE_EQ(sim.PhaseMax(Phase::kSample), 3.0);
  sim.ResetClocks();
  EXPECT_DOUBLE_EQ(sim.MaxNow(), 0.0);
  EXPECT_DOUBLE_EQ(sim.PhaseTotal(Phase::kSample), 0.0);
}

TEST(SimContextTest, NegativeAdvanceRejected) {
  SimContext sim(SingleMachineCluster(1));
  EXPECT_THROW(sim.Advance(0, -1.0, Phase::kTrain), Error);
  EXPECT_THROW(sim.Advance(5, 1.0, Phase::kTrain), Error);
}

TEST(SimContextTest, ComputeSecondsScaleWithFlops) {
  SimContext sim(SingleMachineCluster(1));
  const double t1 = sim.ComputeSeconds(0, 1e9);
  const double t2 = sim.ComputeSeconds(0, 2e9);
  EXPECT_GT(t2, t1);
  // Kernel launch overhead dominates tiny kernels.
  const double t0 = sim.ComputeSeconds(0, 1.0);
  EXPECT_NEAR(t0, sim.cluster().device(0).kernel_launch_s, 1e-9);
}

TEST(SimContextTest, MemoryAccountingAndOom) {
  SimContext sim(SingleMachineCluster(2));
  const std::int64_t cap = sim.cluster().device(0).memory_bytes;
  sim.AllocPersistent(0, cap / 2);
  sim.NoteTransient(0, cap / 4);
  EXPECT_EQ(sim.PeakMemory(0), cap / 2 + cap / 4);
  EXPECT_FALSE(sim.AnyOom());
  sim.NoteTransient(0, cap);
  EXPECT_TRUE(sim.AnyOom());
  EXPECT_EQ(sim.OomDevices(), std::vector<DeviceId>{0});
  sim.ResetMemory();
  EXPECT_FALSE(sim.AnyOom());
  EXPECT_EQ(sim.PeakMemory(0), 0);
}

TEST(SimContextTest, TransientDoesNotAccumulate) {
  // NoteTransient tracks a high-water mark, not a sum.
  SimContext sim(SingleMachineCluster(1));
  sim.NoteTransient(0, 100);
  sim.NoteTransient(0, 50);
  EXPECT_EQ(sim.PeakMemory(0), 100);
}

TEST(SimContextTest, TrafficCounters) {
  SimContext sim(SingleMachineCluster(2));
  sim.CountTraffic(TrafficClass::kPeerGpu, 1000);
  sim.CountTraffic(TrafficClass::kPeerGpu, 500);
  EXPECT_EQ(sim.TrafficBytes(TrafficClass::kPeerGpu), 1500);
  EXPECT_EQ(sim.TrafficBytes(TrafficClass::kCrossMachine), 0);
  sim.ResetTraffic();
  EXPECT_EQ(sim.TrafficBytes(TrafficClass::kPeerGpu), 0);
}

TEST(SimContextTest, LinkClassification) {
  SimContext sim(MultiMachineCluster(2, 2));
  EXPECT_EQ(sim.ClassifyDeviceLink(0, 1), TrafficClass::kPeerGpu);
  EXPECT_EQ(sim.ClassifyDeviceLink(1, 2), TrafficClass::kCrossMachine);
  EXPECT_EQ(sim.ClassifyCpuLink(0, 0), TrafficClass::kLocalCpuGpu);
  EXPECT_EQ(sim.ClassifyCpuLink(0, 1), TrafficClass::kCrossMachine);
}

}  // namespace
}  // namespace apt
