// Stream semantics of the pipelined micro-batch replay (sim_pipeline.cpp):
// capture defers clock motion until the scope's sync point, replayed comm
// never slows compute below the serial schedule, overlap windows obey the
// two-op closed form max(c, t) + min(c, t) / depth, and barrier poisoning
// from a failed collective propagates across both streams.
#include <gtest/gtest.h>

#include "comm/collectives.h"
#include "sim/hardware.h"
#include "sim/sim_context.h"

namespace apt {
namespace {

TEST(PipelineStreamTest, CaptureDefersAllAccountingUntilScopeExit) {
  SimContext ctx(SingleMachineCluster(2));
  {
    SimContext::PipelinedStepScope scope(ctx, /*depth=*/4);
    EXPECT_TRUE(ctx.PipelineCapturing());
    EXPECT_EQ(ctx.PipelineDepth(), 4);
    ctx.AdvanceComm(0, 1.0, Phase::kTrain, "alltoall");
    ctx.Advance(0, 0.5, Phase::kTrain);
    // Comm-stream advances (and everything else) move NO clock before the
    // scope's stream-sync point: the step runs at frozen clocks.
    EXPECT_DOUBLE_EQ(ctx.Now(0), 0.0);
    EXPECT_DOUBLE_EQ(ctx.PhaseOf(0, Phase::kTrain), 0.0);
    EXPECT_DOUBLE_EQ(ctx.CommOf(0, Phase::kTrain), 0.0);
    EXPECT_DOUBLE_EQ(ctx.CommStreamOf(0, Phase::kTrain), 0.0);
  }
  EXPECT_FALSE(ctx.PipelineCapturing());
  EXPECT_EQ(ctx.PipelineDepth(), 1);
  // Replay landed: comm-bound two-op schedule, c=1.0 > t=0.5, depth 4.
  EXPECT_NEAR(ctx.Now(0), 1.0 + 0.5 / 4.0, 1e-12);
  ctx.DebugCheckClockInvariant();
}

TEST(PipelineStreamTest, DepthOneScopeIsByteForByteSerial) {
  SimContext piped(SingleMachineCluster(2));
  SimContext serial(SingleMachineCluster(2));
  {
    SimContext::PipelinedStepScope scope(piped, /*depth=*/1);  // no-op scope
    EXPECT_FALSE(piped.PipelineCapturing());
    piped.AdvanceComm(0, 0.25, Phase::kTrain, "allreduce");
    piped.AdvanceLabeled(1, 0.75, Phase::kLoad, "gather");
  }
  serial.AdvanceComm(0, 0.25, Phase::kTrain, "allreduce");
  serial.AdvanceLabeled(1, 0.75, Phase::kLoad, "gather");
  for (DeviceId d = 0; d < 2; ++d) {
    EXPECT_EQ(piped.Now(d), serial.Now(d));
    for (Phase p : {Phase::kSample, Phase::kLoad, Phase::kTrain}) {
      EXPECT_EQ(piped.PhaseOf(d, p), serial.PhaseOf(d, p));
      EXPECT_EQ(piped.CommOf(d, p), serial.CommOf(d, p));
      EXPECT_EQ(piped.CommStreamOf(d, p), 0.0);
    }
  }
}

/// The hand-checkable two-op scenario: one comm op (c seconds) feeding one
/// compute op (t seconds) on a single device. At depth D the replay's
/// schedule ends at exactly max(c, t) + min(c, t) / D — steady-state overlap
/// of the dominant side plus one micro-batch ramp of the hidden side.
void ExpectTwoOpClosedForm(double c, double t, int depth) {
  SimContext ctx(SingleMachineCluster(2));
  {
    SimContext::PipelinedStepScope scope(ctx, depth);
    ctx.AdvanceComm(0, c, Phase::kTrain, "alltoall");
    ctx.Advance(0, t, Phase::kTrain);
  }
  const double expect =
      std::max(c, t) + std::min(c, t) / static_cast<double>(depth);
  EXPECT_NEAR(ctx.Now(0), expect, 1e-12) << "c=" << c << " t=" << t
                                         << " depth=" << depth;
  // The comm STREAM was busy for the full comm time (it all overlapped or
  // ran exposed — either way the stream carried it)...
  EXPECT_NEAR(ctx.CommStreamOf(0, Phase::kTrain), c, 1e-12);
  // ...while the device clock's comm share is only the EXPOSED part: total
  // minus the compute that hid it.
  EXPECT_NEAR(ctx.CommOf(0, Phase::kTrain), expect - t, 1e-12);
  // Invariant: phase sums still tile the clock exactly.
  EXPECT_NEAR(ctx.PhaseOf(0, Phase::kTrain), expect, 1e-12);
  ctx.DebugCheckClockInvariant();
}

TEST(PipelineStreamTest, TwoOpOverlapWindowCommBound) {
  ExpectTwoOpClosedForm(/*c=*/0.8, /*t=*/0.2, /*depth=*/2);
  ExpectTwoOpClosedForm(0.8, 0.2, 4);
  ExpectTwoOpClosedForm(0.8, 0.2, 8);
}

TEST(PipelineStreamTest, TwoOpOverlapWindowComputeBound) {
  ExpectTwoOpClosedForm(/*c=*/0.2, /*t=*/0.8, /*depth=*/2);
  ExpectTwoOpClosedForm(0.2, 0.8, 4);
  ExpectTwoOpClosedForm(0.2, 0.8, 8);
}

TEST(PipelineStreamTest, LoadPhaseAdvancesRideTheCommStream) {
  SimContext ctx(SingleMachineCluster(2));
  {
    SimContext::PipelinedStepScope scope(ctx, /*depth=*/4);
    // A feature gather is a plain AdvanceLabeled (not AdvanceComm), but
    // Phase::kLoad routes it to the comm stream — it is a transfer.
    ctx.AdvanceLabeled(0, 0.4, Phase::kLoad, "gather");
    ctx.Advance(0, 0.4, Phase::kTrain);
  }
  EXPECT_NEAR(ctx.CommStreamOf(0, Phase::kLoad), 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(ctx.CommStreamOf(0, Phase::kTrain), 0.0);
  EXPECT_NEAR(ctx.Now(0), 0.4 + 0.4 / 4.0, 1e-12);
  // The exposed remainder of the gather is charged to kLoad on the compute
  // timeline (as pipeline stalls), keeping the phase split meaningful.
  EXPECT_NEAR(ctx.PhaseOf(0, Phase::kLoad), 0.4 + 0.4 / 4.0 - 0.4, 1e-12);
  EXPECT_NEAR(ctx.PhaseOf(0, Phase::kTrain), 0.4, 1e-12);
  ctx.DebugCheckClockInvariant();
}

TEST(PipelineStreamTest, CommOnlyOpIsFullyExposed) {
  SimContext ctx(SingleMachineCluster(2));
  {
    SimContext::PipelinedStepScope scope(ctx, /*depth=*/4);
    ctx.AdvanceComm(0, 1.0, Phase::kTrain, "allreduce");
  }
  // Nothing to overlap against: same cost as serial, all of it exposed.
  EXPECT_NEAR(ctx.Now(0), 1.0, 1e-12);
  EXPECT_NEAR(ctx.CommOf(0, Phase::kTrain), 1.0, 1e-12);
  EXPECT_NEAR(ctx.CommStreamOf(0, Phase::kTrain), 1.0, 1e-12);
  ctx.DebugCheckClockInvariant();
}

TEST(PipelineStreamTest, BarrierJoinsMicrobatchChainsAcrossDevices) {
  SimContext ctx(SingleMachineCluster(2));
  {
    SimContext::PipelinedStepScope scope(ctx, /*depth=*/2);
    ctx.AdvanceComm(0, 1.0, Phase::kTrain, "alltoall");
    ctx.AdvanceComm(1, 2.0, Phase::kTrain, "alltoall");
    ctx.BarrierAll(Phase::kTrain);
    // Post-barrier compute may start only after BOTH devices' micro-batch-m
    // collectives joined.
    ctx.Advance(0, 0.1, Phase::kTrain);
    ctx.Advance(1, 0.1, Phase::kTrain);
  }
  // Micro-batch 0 joins at t=1.0 (dev1's first chunk): dev0's compute chunk
  // cannot start before then even though its own comm finished at 0.5.
  // Schedule: dev1 comm [0,1][1,2], computes at [1,1.05] and [2,2.05];
  // dev0 comm [0,.5][.5,1], computes at [1,1.05] and [2,2.05].
  EXPECT_NEAR(ctx.Now(0), 2.05, 1e-12);
  EXPECT_NEAR(ctx.Now(1), 2.05, 1e-12);
  ctx.DebugCheckClockInvariant();
}

TEST(PipelineStreamTest, SequentialPipelinedStepsAreMonotone) {
  SimContext ctx(SingleMachineCluster(2));
  double prev0 = 0.0, prev1 = 0.0;
  for (int step = 0; step < 4; ++step) {
    {
      SimContext::PipelinedStepScope scope(ctx, /*depth=*/4);
      ctx.AdvanceComm(0, 0.3, Phase::kTrain, "alltoall");
      ctx.Advance(0, 0.2, Phase::kTrain);
      ctx.AdvanceLabeled(1, 0.1, Phase::kLoad, "gather");
      ctx.Advance(1, 0.5, Phase::kTrain);
    }
    // Stream sync points only ever move clocks forward, and each step's
    // schedule is anchored at the clocks the previous sync committed.
    EXPECT_GT(ctx.Now(0), prev0);
    EXPECT_GT(ctx.Now(1), prev1);
    prev0 = ctx.Now(0);
    prev1 = ctx.Now(1);
    ctx.DebugCheckClockInvariant();
  }
  // Per-step cost is identical in steady state, so 4 steps = 4x one step.
  EXPECT_NEAR(ctx.Now(0), 4.0 * (0.3 + 0.2 / 4.0), 1e-12);
  EXPECT_NEAR(ctx.Now(1), 4.0 * (0.5 + 0.1 / 4.0), 1e-12);
}

TEST(PipelineStreamTest, OverlapNeverExceedsSerialCost) {
  // The same op sequence, serial vs pipelined: overlap can only hide time.
  SimContext serial(SingleMachineCluster(2));
  SimContext piped(SingleMachineCluster(2));
  const auto run = [](SimContext& ctx) {
    ctx.AdvanceLabeled(0, 0.4, Phase::kLoad, "gather");
    ctx.AdvanceComm(0, 0.3, Phase::kTrain, "alltoall");
    ctx.Advance(0, 0.6, Phase::kTrain);
    ctx.AdvanceLabeled(1, 0.2, Phase::kLoad, "gather");
    ctx.AdvanceComm(1, 0.5, Phase::kTrain, "alltoall");
    ctx.Advance(1, 0.4, Phase::kTrain);
    ctx.BarrierAll(Phase::kTrain);
  };
  run(serial);
  {
    SimContext::PipelinedStepScope scope(piped, /*depth=*/4);
    run(piped);
  }
  for (DeviceId d = 0; d < 2; ++d) {
    EXPECT_LE(piped.Now(d), serial.Now(d) + 1e-12);
    // The full communication volume still ran — on the comm stream.
    EXPECT_NEAR(piped.CommStreamOf(d, Phase::kLoad) +
                    piped.CommStreamOf(d, Phase::kTrain),
                0.7, 1e-12);
  }
  piped.DebugCheckClockInvariant();
}

TEST(PipelineStreamTest, PoisonPropagatesAcrossStreamsUnderCollectiveFault) {
  SimContext ctx(SingleMachineCluster(2));
  FaultPlan plan;
  plan.collectives.push_back({.after_bytes = 0});  // fail the first collective
  ctx.InstallFaults(plan);
  Communicator comm(ctx);

  std::vector<Tensor> bufs;
  bufs.emplace_back(8, 8);
  bufs.emplace_back(8, 8);
  std::vector<Tensor*> ptrs{&bufs[0], &bufs[1]};
  {
    SimContext::PipelinedStepScope scope(ctx, /*depth=*/4);
    ctx.AdvanceLabeled(0, 0.2, Phase::kLoad, "gather");
    EXPECT_THROW(comm.AllReduceSum(ptrs, Phase::kTrain), CollectiveError);
    // Poison is visible IMMEDIATELY, mid-capture: a peer reaching a barrier
    // inside the same pipelined step must not enqueue more work.
    EXPECT_TRUE(ctx.BarrierPoisoned());
    EXPECT_THROW(ctx.BarrierAll(Phase::kTrain), BarrierPoisonedError);
  }  // scope exit replays the partial tape (the charged fault fraction)
  // The poison survives the stream-sync point: waiters on EITHER stream of
  // any device observe the typed error until recovery clears it.
  EXPECT_THROW(ctx.BarrierAll(Phase::kTrain), BarrierPoisonedError);
  EXPECT_FALSE(ctx.PipelineCapturing());
  // The captured pre-fault work still landed on the clocks.
  EXPECT_NEAR(ctx.Now(0), 0.2, 1e-12);
  ctx.ClearBarrierPoison();
  comm.AllReduceSum(ptrs, Phase::kTrain);  // consumed fault: retry passes
  ctx.DebugCheckClockInvariant();
}

}  // namespace
}  // namespace apt
