// Dataset serialization round-trip and corruption handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "graph/io.h"
#include "tensor/ops.h"

namespace apt {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path(std::string(::testing::TempDir()) + "/" + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

Dataset SampleDs() {
  DatasetParams p;
  p.name = "roundtrip";
  p.num_nodes = 500;
  p.num_edges = 2500;
  p.feature_dim = 12;
  p.num_classes = 4;
  p.num_communities = 4;
  return MakeDataset(p);
}

TEST(DatasetIoTest, RoundTripPreservesEverything) {
  const Dataset ds = SampleDs();
  TempFile f("ds_roundtrip.bin");
  SaveDataset(ds, f.path);
  const Dataset loaded = LoadDataset(f.path);
  EXPECT_EQ(loaded.name, ds.name);
  EXPECT_EQ(loaded.graph.num_nodes(), ds.graph.num_nodes());
  EXPECT_EQ(loaded.graph.num_edges(), ds.graph.num_edges());
  EXPECT_TRUE(std::equal(ds.graph.indices().begin(), ds.graph.indices().end(),
                         loaded.graph.indices().begin()));
  EXPECT_EQ(MaxAbsDiff(loaded.features, ds.features), 0.0f);
  EXPECT_EQ(loaded.labels, ds.labels);
  EXPECT_EQ(loaded.num_classes, ds.num_classes);
  EXPECT_EQ(loaded.num_communities, ds.num_communities);
  EXPECT_EQ(loaded.train_nodes, ds.train_nodes);
  EXPECT_EQ(loaded.val_nodes, ds.val_nodes);
  EXPECT_EQ(loaded.test_nodes, ds.test_nodes);
}

TEST(DatasetIoTest, MissingFileThrows) {
  EXPECT_THROW(LoadDataset("/nonexistent/path/x.bin"), Error);
}

TEST(DatasetIoTest, BadMagicThrows) {
  TempFile f("ds_bad_magic.bin");
  std::ofstream out(f.path, std::ios::binary);
  const char junk[64] = "this is not an APT dataset file";
  out.write(junk, sizeof(junk));
  out.close();
  EXPECT_THROW(LoadDataset(f.path), Error);
}

TEST(DatasetIoTest, TruncatedFileThrows) {
  const Dataset ds = SampleDs();
  TempFile full("ds_full.bin");
  SaveDataset(ds, full.path);
  // Copy the first half of the bytes.
  std::ifstream in(full.path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  TempFile cut("ds_cut.bin");
  std::ofstream out(cut.path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  EXPECT_THROW(LoadDataset(cut.path), Error);
}

}  // namespace
}  // namespace apt
