// Tests for the CSR graph, builders, generators, datasets, and statistics.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "graph/csr_graph.h"
#include "graph/dataset.h"
#include "graph/generators.h"
#include "graph/stats.h"

namespace apt {
namespace {

TEST(CsrGraphTest, BuildFromEdgeList) {
  const std::vector<NodeId> src{0, 1, 2, 0};
  const std::vector<NodeId> dst{1, 2, 0, 2};
  const CsrGraph g = BuildCsr(3, src, dst, /*symmetrize=*/false);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 4);
  // In-neighbors of 2 are {0, 1}.
  const auto n2 = g.Neighbors(2);
  ASSERT_EQ(n2.size(), 2u);
  EXPECT_EQ(n2[0], 0);
  EXPECT_EQ(n2[1], 1);
}

TEST(CsrGraphTest, SymmetrizeAddsReverseEdges) {
  const std::vector<NodeId> src{0};
  const std::vector<NodeId> dst{1};
  const CsrGraph g = BuildCsr(2, src, dst, /*symmetrize=*/true);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.Neighbors(0)[0], 1);
  EXPECT_EQ(g.Neighbors(1)[0], 0);
}

TEST(CsrGraphTest, DeduplicatesParallelEdges) {
  const std::vector<NodeId> src{0, 0, 0};
  const std::vector<NodeId> dst{1, 1, 1};
  const CsrGraph g = BuildCsr(2, src, dst, false);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(CsrGraphTest, NeighborsSorted) {
  const std::vector<NodeId> src{3, 1, 2};
  const std::vector<NodeId> dst{0, 0, 0};
  const CsrGraph g = BuildCsr(4, src, dst, false);
  const auto n = g.Neighbors(0);
  EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
}

TEST(CsrGraphTest, OutOfRangeThrows) {
  const CsrGraph g = BuildCsr(2, std::vector<NodeId>{0}, std::vector<NodeId>{1}, false);
  EXPECT_THROW(g.Neighbors(2), Error);
  EXPECT_THROW(BuildCsr(2, std::vector<NodeId>{5}, std::vector<NodeId>{0}, false), Error);
}

TEST(CsrGraphTest, TopologyBytesPositive) {
  const CsrGraph g = ErdosRenyi(100, 500, Rng(1));
  EXPECT_GT(g.TopologyBytes(), 0);
}

TEST(GeneratorTest, ErdosRenyiBasics) {
  const CsrGraph g = ErdosRenyi(500, 2000, Rng(3));
  EXPECT_EQ(g.num_nodes(), 500);
  EXPECT_GT(g.num_edges(), 3000);  // ~2x after symmetrization minus dedupe
  EXPECT_LE(g.num_edges(), 4000);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.Neighbors(v)) EXPECT_NE(u, v);  // no self loops
  }
}

TEST(GeneratorTest, ZipfCommunityRespectsIntraProb) {
  ZipfCommunityParams p;
  p.num_nodes = 4000;
  p.num_edges = 40000;
  p.num_communities = 8;
  p.zipf_exponent = 0.5;
  p.intra_prob = 0.95;
  const CsrGraph g = ZipfCommunityGraph(p);
  EdgeId intra = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto cv = CommunityOf(v, p.num_nodes, p.num_communities);
    for (NodeId u : g.Neighbors(v)) {
      intra += CommunityOf(u, p.num_nodes, p.num_communities) == cv;
    }
  }
  const double frac = static_cast<double>(intra) / static_cast<double>(g.num_edges());
  EXPECT_GT(frac, 0.85);
}

TEST(GeneratorTest, ZipfExponentControlsDegreeSkew) {
  ZipfCommunityParams flat, skewed;
  flat.num_nodes = skewed.num_nodes = 4000;
  flat.num_edges = skewed.num_edges = 40000;
  flat.zipf_exponent = 0.1;
  skewed.zipf_exponent = 1.1;
  const DegreeStats sf = ComputeDegreeStats(ZipfCommunityGraph(flat));
  const DegreeStats ss = ComputeDegreeStats(ZipfCommunityGraph(skewed));
  EXPECT_GT(ss.max_degree, 2 * sf.max_degree);
}

TEST(GeneratorTest, ZipfDeterministicBySeed) {
  ZipfCommunityParams p;
  p.num_nodes = 1000;
  p.num_edges = 5000;
  p.seed = 9;
  const CsrGraph a = ZipfCommunityGraph(p);
  const CsrGraph b = ZipfCommunityGraph(p);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(std::equal(a.indices().begin(), a.indices().end(), b.indices().begin()));
}

TEST(GeneratorTest, RmatHeavyTail) {
  const CsrGraph g = Rmat(12, 40000, 0.57, 0.19, 0.19, Rng(5));
  const DegreeStats s = ComputeDegreeStats(g);
  EXPECT_GT(s.max_degree, 20 * static_cast<EdgeId>(s.mean_degree));
}

TEST(CommunityOfTest, ContiguousBlocks) {
  EXPECT_EQ(CommunityOf(0, 100, 4), 0);
  EXPECT_EQ(CommunityOf(25, 100, 4), 1);
  EXPECT_EQ(CommunityOf(99, 100, 4), 3);
}

TEST(DatasetTest, BuildsConsistentPieces) {
  DatasetParams p;
  p.num_nodes = 3000;
  p.num_edges = 15000;
  p.feature_dim = 16;
  p.num_classes = 4;
  const Dataset ds = MakeDataset(p);
  EXPECT_EQ(ds.graph.num_nodes(), 3000);
  EXPECT_EQ(ds.features.rows(), 3000);
  EXPECT_EQ(ds.features.cols(), 16);
  EXPECT_EQ(ds.labels.size(), 3000u);
  for (auto l : ds.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 4);
  }
  // Splits are disjoint and cover all nodes.
  std::set<NodeId> all;
  for (auto v : ds.train_nodes) all.insert(v);
  for (auto v : ds.val_nodes) EXPECT_TRUE(all.insert(v).second);
  for (auto v : ds.test_nodes) EXPECT_TRUE(all.insert(v).second);
  EXPECT_EQ(all.size(), 3000u);
  EXPECT_NEAR(static_cast<double>(ds.train_nodes.size()), 300.0, 1.0);
}

TEST(DatasetTest, PresetsMatchPaperFeatureDims) {
  EXPECT_EQ(PsLikeParams().feature_dim, 128);
  EXPECT_EQ(FsLikeParams().feature_dim, 256);
  EXPECT_EQ(ImLikeParams().feature_dim, 128);
  // Skew ordering knob: PS most skewed, FS least (paper Table 3).
  EXPECT_GT(PsLikeParams().zipf_exponent, ImLikeParams().zipf_exponent);
  EXPECT_GT(ImLikeParams().zipf_exponent, FsLikeParams().zipf_exponent);
}

TEST(DatasetTest, WithFeatureDimOverride) {
  const DatasetParams p = WithFeatureDim(PsLikeParams(0.1), 64);
  EXPECT_EQ(p.feature_dim, 64);
  const Dataset ds = MakeDataset(p);
  EXPECT_EQ(ds.feature_dim(), 64);
}

TEST(StatsTest, DegreeStats) {
  const std::vector<NodeId> src{0, 0, 0};
  const std::vector<NodeId> dst{1, 2, 3};
  const CsrGraph g = BuildCsr(5, src, dst, false);
  const DegreeStats s = ComputeDegreeStats(g);
  EXPECT_EQ(s.min_degree, 0);
  EXPECT_EQ(s.max_degree, 1);
  EXPECT_EQ(s.num_isolated, 2);  // node 0 and node 4 have no in-edges
  EXPECT_NEAR(s.mean_degree, 0.6, 1e-9);
}

TEST(StatsTest, AccessSkewBucketsSumToOne) {
  std::vector<std::int64_t> counts(1000);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = static_cast<std::int64_t>(1000 / (i + 1));
  }
  const auto buckets = ComputeAccessSkew(counts);
  ASSERT_EQ(buckets.size(), 6u);
  double total = 0.0;
  for (const auto& b : buckets) total += b.access_share;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Zipf-ish counts: the top 1% carries far more than a uniform share.
  EXPECT_GT(buckets[0].access_share, 0.05);
  EXPECT_GT(buckets[0].access_share, buckets[4].access_share);
}

TEST(StatsTest, UniformCountsGiveProportionalShares) {
  std::vector<std::int64_t> counts(1000, 7);
  const auto buckets = ComputeAccessSkew(counts);
  EXPECT_NEAR(buckets[0].access_share, 0.01, 1e-9);   // <1%
  EXPECT_NEAR(buckets[5].access_share, 0.50, 1e-9);   // 50~100%
}

}  // namespace
}  // namespace apt
