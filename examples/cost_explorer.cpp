// Example: a "what-if" explorer for APT's cost models. Sweeps the hidden
// dimension and the per-GPU cache budget for a dataset and prints which
// strategy the planner would select at each point, with its estimated
// strategy-dependent epoch cost — a cheap way to see the selection
// boundaries without training anything (only dry-runs execute).
//
//   ./examples/cost_explorer [ps|fs|im]
#include <cstdio>
#include <cstring>

#include "apt/planner.h"
#include "core/logging.h"
#include "graph/dataset.h"
#include "partition/partitioner.h"

int main(int argc, char** argv) {
  using namespace apt;
  SetLogLevel(LogLevel::kWarn);

  DatasetParams params = PsLikeParams(0.2);
  if (argc > 1 && std::strcmp(argv[1], "fs") == 0) params = FsLikeParams(0.2);
  if (argc > 1 && std::strcmp(argv[1], "im") == 0) params = ImLikeParams(0.2);
  const Dataset dataset = MakeDataset(params);
  const ClusterSpec cluster = SingleMachineCluster(8);

  MultilevelPartitioner ml;
  const std::vector<PartId> partition =
      ml.Partition(dataset.graph, cluster.num_devices());

  std::printf("Planner selection map for %s (8 GPUs, GraphSAGE, fanout [10,10,10])\n",
              dataset.name.c_str());
  std::printf("rows: hidden dim; cols: cache budget as a fraction of the feature "
              "table; cell: selected strategy (estimated comparable ms)\n\n");
  const double fractions[] = {0.0, 1.0 / 24, 1.0 / 12, 1.0 / 6};
  std::printf("%8s", "d'");
  for (double f : fractions) std::printf(" | cache=%-11.3f", f);
  std::printf("\n");
  for (std::int64_t hidden : {8, 32, 128, 512}) {
    std::printf("%8lld", static_cast<long long>(hidden));
    for (double f : fractions) {
      ModelConfig model;
      model.kind = ModelKind::kSage;
      model.num_layers = 3;
      model.hidden_dim = hidden;
      model.input_dim = dataset.feature_dim();
      model.num_classes = dataset.num_classes;
      EngineOptions opts;
      opts.fanouts = {10, 10, 10};
      opts.batch_size_per_device = 128;
      opts.cache_bytes_per_device =
          static_cast<std::int64_t>(f * dataset.FeatureBytes());
      const PlanReport plan = MakePlan(dataset, cluster, partition, opts, model);
      const CostEstimate& best =
          plan.estimates[static_cast<std::size_t>(plan.selected)];
      std::printf(" | %-4s (%6.3f)  ", ToString(plan.selected),
                  best.Comparable() * 1e3);
    }
    std::printf("\n");
  }
  std::printf(
      "\nEach cell ran APT's full Plan stage (bandwidth trials + dry-run + cost\n"
      "models) but no training. Selection boundaries move with the knobs the\n"
      "paper identifies: hidden dim (shuffle cost), cache (loading cost).\n");
  return 0;
}
