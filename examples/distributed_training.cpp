// Example: distributed training across 4 simulated machines (4 GPUs each,
// 100 Gbps Ethernet), the paper's Figure 9 platform. Shows how the optimal
// strategy shifts when hidden-embedding shuffles start crossing the slow
// inter-machine network, and how APT adapts.
//
//   ./examples/distributed_training
#include <cstdio>

#include "core/logging.h"

#include "apt/apt_system.h"
#include "graph/dataset.h"

int main() {
  using namespace apt;
  SetLogLevel(LogLevel::kWarn);

  Dataset dataset = MakeDataset(ImLikeParams(/*scale=*/0.2));
  for (const bool multi_machine : {false, true}) {
    const ClusterSpec cluster =
        multi_machine ? MultiMachineCluster(4, 4) : SingleMachineCluster(8);
    std::printf("\n=== %s ===\n", DescribeCluster(cluster).c_str());

    ModelConfig model;
    model.kind = ModelKind::kSage;
    model.num_layers = 3;
    model.hidden_dim = 32;

    EngineOptions opts;
    opts.fanouts = {10, 10, 10};
    opts.batch_size_per_device = 128;
    opts.cache_bytes_per_device = dataset.FeatureBytes() / 12;

    AptSystem system(dataset, cluster, model, opts);
    const PlanReport& plan = system.Plan();
    for (const CostEstimate& e : plan.estimates) {
      std::printf("  %s\n", FormatEstimate(e).c_str());
    }
    std::printf("  -> APT selects %s\n", ToString(plan.selected));

    auto trainer = system.MakeTrainer(plan.selected);
    for (int epoch = 0; epoch < 3; ++epoch) {
      const EpochStats s = trainer->TrainEpoch(epoch);
      std::printf(
          "  epoch %d: loss %.4f | %.2fms (sample %.2f, load %.2f, train %.2f)\n",
          epoch, s.loss, s.sim_seconds * 1e3, s.sample_seconds * 1e3,
          s.load_seconds * 1e3, s.train_seconds * 1e3);
    }
  }
  return 0;
}
