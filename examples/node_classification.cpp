// Example: full node-classification training runs comparing all four
// parallelization strategies by hand (without APT's automatic selection),
// on the Friendster-like graph — the paper intro's motivating workload
// where the winner depends on the hidden dimension.
//
//   ./examples/node_classification [hidden_dim]
#include <cstdio>

#include "core/logging.h"
#include <cstdlib>

#include "apt/adapter.h"
#include "apt/planner.h"
#include "engine/trainer.h"
#include "graph/dataset.h"
#include "partition/partitioner.h"

int main(int argc, char** argv) {
  using namespace apt;
  SetLogLevel(LogLevel::kWarn);
  const std::int64_t hidden = argc > 1 ? std::atoll(argv[1]) : 32;

  Dataset dataset = MakeDataset(FsLikeParams(/*scale=*/0.2));
  const ClusterSpec cluster = SingleMachineCluster(8);

  ModelConfig model;
  model.kind = ModelKind::kSage;
  model.num_layers = 3;
  model.hidden_dim = hidden;
  model.input_dim = dataset.feature_dim();
  model.num_classes = dataset.num_classes;

  EngineOptions opts;
  opts.fanouts = {10, 10, 10};
  opts.batch_size_per_device = 128;
  opts.cache_bytes_per_device = dataset.FeatureBytes() / 12;

  // Prepare: partition once; Plan: one dry-run shared by every strategy.
  MultilevelPartitioner partitioner;
  const std::vector<PartId> partition =
      partitioner.Partition(dataset.graph, cluster.num_devices());
  const PlanReport plan = MakePlan(dataset, cluster, partition, opts, model);

  std::printf("GraphSAGE d'=%lld on %s, 8 simulated GPUs\n",
              static_cast<long long>(hidden), dataset.name.c_str());
  std::printf("planner would select: %s\n\n", ToString(plan.selected));
  std::printf("%-6s %12s %12s %12s %10s\n", "strat", "epoch(ms)", "final loss",
              "test acc", "planner?");

  for (Strategy s : kAllStrategies) {
    ParallelTrainer trainer(
        dataset, BuildTrainerSetup(cluster, model, opts, partition, plan.dryrun, s));
    EpochStats last{};
    for (int epoch = 0; epoch < 5; ++epoch) last = trainer.TrainEpoch(epoch);
    const double acc = trainer.EvaluateAccuracy(dataset.test_nodes);
    std::printf("%-6s %12.2f %12.4f %12.3f %10s\n", ToString(s),
                last.sim_seconds * 1e3, last.loss, acc,
                s == plan.selected ? "<== APT" : "");
  }
  std::printf(
      "\nAll four strategies reach the same accuracy (they are semantically\n"
      "equivalent); only the simulated epoch time differs. Re-run with a\n"
      "different hidden dim (e.g. 8 or 512) to see the winner change.\n");
  return 0;
}
