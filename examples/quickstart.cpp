// Quickstart: train GraphSAGE on a synthetic graph with APT choosing the
// parallelization strategy automatically.
//
//   ./examples/quickstart
//
// Walks the full APT workflow: Prepare (graph partitioning + bandwidth
// trials), Plan (dry-run + cost models), Adapt (engine/cache config),
// Run (DDP training on the simulated 8-GPU machine).
#include <cstdio>

#include "apt/apt_system.h"
#include "graph/dataset.h"

int main() {
  using namespace apt;

  // A small Papers100M-like synthetic dataset (see graph/dataset.h for how
  // the presets map to the paper's graphs).
  Dataset dataset = MakeDataset(PsLikeParams(/*scale=*/0.25));
  std::printf("dataset %s: %lld nodes, %lld edges, feature dim %lld\n",
              dataset.name.c_str(), static_cast<long long>(dataset.graph.num_nodes()),
              static_cast<long long>(dataset.graph.num_edges()),
              static_cast<long long>(dataset.feature_dim()));

  ClusterSpec cluster = SingleMachineCluster(/*num_gpus=*/8);
  std::printf("platform: %s\n", DescribeCluster(cluster).c_str());

  ModelConfig model;
  model.kind = ModelKind::kSage;
  model.num_layers = 3;
  model.hidden_dim = 32;

  EngineOptions opts;
  opts.fanouts = {10, 10, 10};
  opts.batch_size_per_device = 256;
  opts.cache_bytes_per_device = 1LL << 20;  // 1 MB cache per GPU

  AptSystem system(dataset, cluster, model, opts);
  const PlanReport& plan = system.Plan();
  std::printf("\ncost-model estimates (strategy-dependent epoch seconds):\n");
  for (const CostEstimate& e : plan.estimates) {
    std::printf("  %s\n", FormatEstimate(e).c_str());
  }
  std::printf("selected strategy: %s\n\n", ToString(plan.selected));

  auto trainer = system.MakeTrainer(plan.selected);
  for (int epoch = 0; epoch < 3; ++epoch) {
    const EpochStats s = trainer->TrainEpoch(epoch);
    std::printf(
        "epoch %d: loss %.4f train-acc %.3f | simulated %.3fs "
        "(sample %.3f, load %.3f, train %.3f)\n",
        epoch, s.loss, s.train_accuracy, s.sim_seconds, s.sample_seconds,
        s.load_seconds, s.train_seconds);
  }
  const double acc = trainer->EvaluateAccuracy(dataset.val_nodes);
  std::printf("validation accuracy: %.3f\n", acc);
  return 0;
}
