// Example: training an attention-based model (GAT) and watching APT avoid
// the strategies that pay an attention-communication penalty (paper §5.3).
//
//   ./examples/gat_attention
#include <cstdio>

#include "core/logging.h"

#include "apt/apt_system.h"
#include "graph/dataset.h"

int main() {
  using namespace apt;
  SetLogLevel(LogLevel::kWarn);

  Dataset dataset = MakeDataset(PsLikeParams(/*scale=*/0.2));
  const ClusterSpec cluster = SingleMachineCluster(8);

  ModelConfig model;
  model.kind = ModelKind::kGat;
  model.num_layers = 3;
  model.hidden_dim = 8;
  model.gat_heads = 4;

  EngineOptions opts;
  opts.fanouts = {10, 10, 10};
  opts.batch_size_per_device = 128;
  opts.cache_bytes_per_device = dataset.FeatureBytes() / 12;

  AptSystem system(dataset, cluster, model, opts);
  const PlanReport& plan = system.Plan();
  std::printf("GAT (4 heads, hidden 8) on %s:\n", dataset.name.c_str());
  for (const CostEstimate& e : plan.estimates) {
    std::printf("  %s\n", FormatEstimate(e).c_str());
  }
  std::printf(
      "APT selects %s. With attention, each destination needs a complete view\n"
      "of its sources before the softmax, so SNP must ship projected source\n"
      "embeddings and NFP must allreduce projections for every layer-1 source;\n"
      "GDP and DNP see all sources locally and pay nothing extra.\n\n",
      ToString(plan.selected));

  auto trainer = system.MakeTrainer(plan.selected);
  for (int epoch = 0; epoch < 4; ++epoch) {
    const EpochStats s = trainer->TrainEpoch(epoch);
    std::printf("epoch %d: loss %.4f train-acc %.3f | %.2fms simulated\n", epoch,
                s.loss, s.train_accuracy, s.sim_seconds * 1e3);
  }
  std::printf("test accuracy: %.3f\n",
              trainer->EvaluateAccuracy(dataset.test_nodes));
  return 0;
}
