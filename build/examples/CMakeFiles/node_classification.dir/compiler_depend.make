# Empty compiler generated dependencies file for node_classification.
# This may be replaced when dependencies are built.
