
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cost_explorer.cpp" "examples/CMakeFiles/cost_explorer.dir/cost_explorer.cpp.o" "gcc" "examples/CMakeFiles/cost_explorer.dir/cost_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apt/CMakeFiles/apt_apt.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/apt_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/apt_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/feature/CMakeFiles/apt_feature.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/apt_model.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/apt_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/apt_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/apt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/apt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/apt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/apt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/apt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
