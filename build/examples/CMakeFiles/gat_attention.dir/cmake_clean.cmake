file(REMOVE_RECURSE
  "CMakeFiles/gat_attention.dir/gat_attention.cpp.o"
  "CMakeFiles/gat_attention.dir/gat_attention.cpp.o.d"
  "gat_attention"
  "gat_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gat_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
