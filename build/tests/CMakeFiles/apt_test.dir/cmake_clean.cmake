file(REMOVE_RECURSE
  "CMakeFiles/apt_test.dir/apt/apt_gat_test.cpp.o"
  "CMakeFiles/apt_test.dir/apt/apt_gat_test.cpp.o.d"
  "CMakeFiles/apt_test.dir/apt/apt_test.cpp.o"
  "CMakeFiles/apt_test.dir/apt/apt_test.cpp.o.d"
  "apt_test"
  "apt_test.pdb"
  "apt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
