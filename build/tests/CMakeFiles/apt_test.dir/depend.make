# Empty dependencies file for apt_test.
# This may be replaced when dependencies are built.
