file(REMOVE_RECURSE
  "libapt_sim.a"
)
