
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/hardware.cpp" "src/sim/CMakeFiles/apt_sim.dir/hardware.cpp.o" "gcc" "src/sim/CMakeFiles/apt_sim.dir/hardware.cpp.o.d"
  "/root/repo/src/sim/sim_context.cpp" "src/sim/CMakeFiles/apt_sim.dir/sim_context.cpp.o" "gcc" "src/sim/CMakeFiles/apt_sim.dir/sim_context.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/apt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
