# Empty compiler generated dependencies file for apt_sim.
# This may be replaced when dependencies are built.
