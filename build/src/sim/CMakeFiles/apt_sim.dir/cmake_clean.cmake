file(REMOVE_RECURSE
  "CMakeFiles/apt_sim.dir/hardware.cpp.o"
  "CMakeFiles/apt_sim.dir/hardware.cpp.o.d"
  "CMakeFiles/apt_sim.dir/sim_context.cpp.o"
  "CMakeFiles/apt_sim.dir/sim_context.cpp.o.d"
  "libapt_sim.a"
  "libapt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
