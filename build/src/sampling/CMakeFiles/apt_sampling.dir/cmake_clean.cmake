file(REMOVE_RECURSE
  "CMakeFiles/apt_sampling.dir/block.cpp.o"
  "CMakeFiles/apt_sampling.dir/block.cpp.o.d"
  "CMakeFiles/apt_sampling.dir/frequency.cpp.o"
  "CMakeFiles/apt_sampling.dir/frequency.cpp.o.d"
  "CMakeFiles/apt_sampling.dir/minibatch.cpp.o"
  "CMakeFiles/apt_sampling.dir/minibatch.cpp.o.d"
  "CMakeFiles/apt_sampling.dir/neighbor_sampler.cpp.o"
  "CMakeFiles/apt_sampling.dir/neighbor_sampler.cpp.o.d"
  "libapt_sampling.a"
  "libapt_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
