
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sampling/block.cpp" "src/sampling/CMakeFiles/apt_sampling.dir/block.cpp.o" "gcc" "src/sampling/CMakeFiles/apt_sampling.dir/block.cpp.o.d"
  "/root/repo/src/sampling/frequency.cpp" "src/sampling/CMakeFiles/apt_sampling.dir/frequency.cpp.o" "gcc" "src/sampling/CMakeFiles/apt_sampling.dir/frequency.cpp.o.d"
  "/root/repo/src/sampling/minibatch.cpp" "src/sampling/CMakeFiles/apt_sampling.dir/minibatch.cpp.o" "gcc" "src/sampling/CMakeFiles/apt_sampling.dir/minibatch.cpp.o.d"
  "/root/repo/src/sampling/neighbor_sampler.cpp" "src/sampling/CMakeFiles/apt_sampling.dir/neighbor_sampler.cpp.o" "gcc" "src/sampling/CMakeFiles/apt_sampling.dir/neighbor_sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/apt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/apt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/apt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/apt_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
