file(REMOVE_RECURSE
  "libapt_sampling.a"
)
