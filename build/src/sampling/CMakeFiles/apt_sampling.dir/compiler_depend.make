# Empty compiler generated dependencies file for apt_sampling.
# This may be replaced when dependencies are built.
