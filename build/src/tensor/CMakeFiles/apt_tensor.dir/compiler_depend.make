# Empty compiler generated dependencies file for apt_tensor.
# This may be replaced when dependencies are built.
