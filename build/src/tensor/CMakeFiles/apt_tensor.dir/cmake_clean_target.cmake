file(REMOVE_RECURSE
  "libapt_tensor.a"
)
