file(REMOVE_RECURSE
  "CMakeFiles/apt_tensor.dir/init.cpp.o"
  "CMakeFiles/apt_tensor.dir/init.cpp.o.d"
  "CMakeFiles/apt_tensor.dir/ops.cpp.o"
  "CMakeFiles/apt_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/apt_tensor.dir/segment_ops.cpp.o"
  "CMakeFiles/apt_tensor.dir/segment_ops.cpp.o.d"
  "CMakeFiles/apt_tensor.dir/tensor.cpp.o"
  "CMakeFiles/apt_tensor.dir/tensor.cpp.o.d"
  "libapt_tensor.a"
  "libapt_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
