file(REMOVE_RECURSE
  "CMakeFiles/apt_engine.dir/dnp_executor.cpp.o"
  "CMakeFiles/apt_engine.dir/dnp_executor.cpp.o.d"
  "CMakeFiles/apt_engine.dir/exec_common.cpp.o"
  "CMakeFiles/apt_engine.dir/exec_common.cpp.o.d"
  "CMakeFiles/apt_engine.dir/executor_factory.cpp.o"
  "CMakeFiles/apt_engine.dir/executor_factory.cpp.o.d"
  "CMakeFiles/apt_engine.dir/gdp_executor.cpp.o"
  "CMakeFiles/apt_engine.dir/gdp_executor.cpp.o.d"
  "CMakeFiles/apt_engine.dir/nfp_executor.cpp.o"
  "CMakeFiles/apt_engine.dir/nfp_executor.cpp.o.d"
  "CMakeFiles/apt_engine.dir/snp_executor.cpp.o"
  "CMakeFiles/apt_engine.dir/snp_executor.cpp.o.d"
  "CMakeFiles/apt_engine.dir/trainer.cpp.o"
  "CMakeFiles/apt_engine.dir/trainer.cpp.o.d"
  "libapt_engine.a"
  "libapt_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
