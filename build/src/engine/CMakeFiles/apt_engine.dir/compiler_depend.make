# Empty compiler generated dependencies file for apt_engine.
# This may be replaced when dependencies are built.
