file(REMOVE_RECURSE
  "libapt_engine.a"
)
