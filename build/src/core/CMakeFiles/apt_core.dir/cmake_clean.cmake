file(REMOVE_RECURSE
  "CMakeFiles/apt_core.dir/logging.cpp.o"
  "CMakeFiles/apt_core.dir/logging.cpp.o.d"
  "CMakeFiles/apt_core.dir/random.cpp.o"
  "CMakeFiles/apt_core.dir/random.cpp.o.d"
  "CMakeFiles/apt_core.dir/types.cpp.o"
  "CMakeFiles/apt_core.dir/types.cpp.o.d"
  "libapt_core.a"
  "libapt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
