# Empty dependencies file for apt_core.
# This may be replaced when dependencies are built.
