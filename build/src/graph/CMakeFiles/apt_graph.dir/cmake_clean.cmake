file(REMOVE_RECURSE
  "CMakeFiles/apt_graph.dir/csr_graph.cpp.o"
  "CMakeFiles/apt_graph.dir/csr_graph.cpp.o.d"
  "CMakeFiles/apt_graph.dir/dataset.cpp.o"
  "CMakeFiles/apt_graph.dir/dataset.cpp.o.d"
  "CMakeFiles/apt_graph.dir/generators.cpp.o"
  "CMakeFiles/apt_graph.dir/generators.cpp.o.d"
  "CMakeFiles/apt_graph.dir/io.cpp.o"
  "CMakeFiles/apt_graph.dir/io.cpp.o.d"
  "CMakeFiles/apt_graph.dir/stats.cpp.o"
  "CMakeFiles/apt_graph.dir/stats.cpp.o.d"
  "libapt_graph.a"
  "libapt_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
