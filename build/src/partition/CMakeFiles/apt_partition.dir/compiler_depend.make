# Empty compiler generated dependencies file for apt_partition.
# This may be replaced when dependencies are built.
