file(REMOVE_RECURSE
  "libapt_partition.a"
)
