file(REMOVE_RECURSE
  "CMakeFiles/apt_partition.dir/multilevel.cpp.o"
  "CMakeFiles/apt_partition.dir/multilevel.cpp.o.d"
  "libapt_partition.a"
  "libapt_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
