file(REMOVE_RECURSE
  "libapt_runtime.a"
)
