# Empty dependencies file for apt_runtime.
# This may be replaced when dependencies are built.
