file(REMOVE_RECURSE
  "CMakeFiles/apt_runtime.dir/thread_pool.cpp.o"
  "CMakeFiles/apt_runtime.dir/thread_pool.cpp.o.d"
  "libapt_runtime.a"
  "libapt_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
