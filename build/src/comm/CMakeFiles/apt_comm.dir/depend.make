# Empty dependencies file for apt_comm.
# This may be replaced when dependencies are built.
