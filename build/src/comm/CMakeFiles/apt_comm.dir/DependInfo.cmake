
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/collectives.cpp" "src/comm/CMakeFiles/apt_comm.dir/collectives.cpp.o" "gcc" "src/comm/CMakeFiles/apt_comm.dir/collectives.cpp.o.d"
  "/root/repo/src/comm/profiler.cpp" "src/comm/CMakeFiles/apt_comm.dir/profiler.cpp.o" "gcc" "src/comm/CMakeFiles/apt_comm.dir/profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/apt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/apt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/apt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/apt_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
