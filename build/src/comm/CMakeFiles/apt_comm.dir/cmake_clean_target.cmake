file(REMOVE_RECURSE
  "libapt_comm.a"
)
