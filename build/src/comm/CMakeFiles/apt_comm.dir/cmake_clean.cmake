file(REMOVE_RECURSE
  "CMakeFiles/apt_comm.dir/collectives.cpp.o"
  "CMakeFiles/apt_comm.dir/collectives.cpp.o.d"
  "CMakeFiles/apt_comm.dir/profiler.cpp.o"
  "CMakeFiles/apt_comm.dir/profiler.cpp.o.d"
  "libapt_comm.a"
  "libapt_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
