
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/gat_layer.cpp" "src/model/CMakeFiles/apt_model.dir/gat_layer.cpp.o" "gcc" "src/model/CMakeFiles/apt_model.dir/gat_layer.cpp.o.d"
  "/root/repo/src/model/gnn_model.cpp" "src/model/CMakeFiles/apt_model.dir/gnn_model.cpp.o" "gcc" "src/model/CMakeFiles/apt_model.dir/gnn_model.cpp.o.d"
  "/root/repo/src/model/optimizer.cpp" "src/model/CMakeFiles/apt_model.dir/optimizer.cpp.o" "gcc" "src/model/CMakeFiles/apt_model.dir/optimizer.cpp.o.d"
  "/root/repo/src/model/sage_layer.cpp" "src/model/CMakeFiles/apt_model.dir/sage_layer.cpp.o" "gcc" "src/model/CMakeFiles/apt_model.dir/sage_layer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/apt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/apt_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/apt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/apt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/apt_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
