file(REMOVE_RECURSE
  "CMakeFiles/apt_model.dir/gat_layer.cpp.o"
  "CMakeFiles/apt_model.dir/gat_layer.cpp.o.d"
  "CMakeFiles/apt_model.dir/gnn_model.cpp.o"
  "CMakeFiles/apt_model.dir/gnn_model.cpp.o.d"
  "CMakeFiles/apt_model.dir/optimizer.cpp.o"
  "CMakeFiles/apt_model.dir/optimizer.cpp.o.d"
  "CMakeFiles/apt_model.dir/sage_layer.cpp.o"
  "CMakeFiles/apt_model.dir/sage_layer.cpp.o.d"
  "libapt_model.a"
  "libapt_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
