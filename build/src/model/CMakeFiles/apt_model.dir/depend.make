# Empty dependencies file for apt_model.
# This may be replaced when dependencies are built.
