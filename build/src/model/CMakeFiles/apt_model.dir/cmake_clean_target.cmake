file(REMOVE_RECURSE
  "libapt_model.a"
)
