# Empty compiler generated dependencies file for apt_feature.
# This may be replaced when dependencies are built.
