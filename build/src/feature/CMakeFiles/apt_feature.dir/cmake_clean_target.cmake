file(REMOVE_RECURSE
  "libapt_feature.a"
)
