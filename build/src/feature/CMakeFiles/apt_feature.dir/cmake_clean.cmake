file(REMOVE_RECURSE
  "CMakeFiles/apt_feature.dir/cache_policy.cpp.o"
  "CMakeFiles/apt_feature.dir/cache_policy.cpp.o.d"
  "CMakeFiles/apt_feature.dir/feature_store.cpp.o"
  "CMakeFiles/apt_feature.dir/feature_store.cpp.o.d"
  "libapt_feature.a"
  "libapt_feature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_feature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
