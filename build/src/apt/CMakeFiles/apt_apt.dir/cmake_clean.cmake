file(REMOVE_RECURSE
  "CMakeFiles/apt_apt.dir/adapter.cpp.o"
  "CMakeFiles/apt_apt.dir/adapter.cpp.o.d"
  "CMakeFiles/apt_apt.dir/apt_system.cpp.o"
  "CMakeFiles/apt_apt.dir/apt_system.cpp.o.d"
  "CMakeFiles/apt_apt.dir/cost_model.cpp.o"
  "CMakeFiles/apt_apt.dir/cost_model.cpp.o.d"
  "CMakeFiles/apt_apt.dir/dryrun.cpp.o"
  "CMakeFiles/apt_apt.dir/dryrun.cpp.o.d"
  "CMakeFiles/apt_apt.dir/planner.cpp.o"
  "CMakeFiles/apt_apt.dir/planner.cpp.o.d"
  "libapt_apt.a"
  "libapt_apt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_apt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
