file(REMOVE_RECURSE
  "libapt_apt.a"
)
