# Empty dependencies file for apt_apt.
# This may be replaced when dependencies are built.
