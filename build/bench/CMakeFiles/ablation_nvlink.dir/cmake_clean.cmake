file(REMOVE_RECURSE
  "CMakeFiles/ablation_nvlink.dir/ablation_nvlink.cpp.o"
  "CMakeFiles/ablation_nvlink.dir/ablation_nvlink.cpp.o.d"
  "ablation_nvlink"
  "ablation_nvlink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nvlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
