# Empty dependencies file for ablation_nvlink.
# This may be replaced when dependencies are built.
