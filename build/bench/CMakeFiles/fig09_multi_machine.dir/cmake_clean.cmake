file(REMOVE_RECURSE
  "CMakeFiles/fig09_multi_machine.dir/fig09_multi_machine.cpp.o"
  "CMakeFiles/fig09_multi_machine.dir/fig09_multi_machine.cpp.o.d"
  "fig09_multi_machine"
  "fig09_multi_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_multi_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
