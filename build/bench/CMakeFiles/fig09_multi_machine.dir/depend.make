# Empty dependencies file for fig09_multi_machine.
# This may be replaced when dependencies are built.
