# Empty dependencies file for fig12_cost_model.
# This may be replaced when dependencies are built.
