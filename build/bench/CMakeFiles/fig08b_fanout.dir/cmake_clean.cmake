file(REMOVE_RECURSE
  "CMakeFiles/fig08b_fanout.dir/fig08b_fanout.cpp.o"
  "CMakeFiles/fig08b_fanout.dir/fig08b_fanout.cpp.o.d"
  "fig08b_fanout"
  "fig08b_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08b_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
