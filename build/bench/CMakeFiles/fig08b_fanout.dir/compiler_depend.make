# Empty compiler generated dependencies file for fig08b_fanout.
# This may be replaced when dependencies are built.
