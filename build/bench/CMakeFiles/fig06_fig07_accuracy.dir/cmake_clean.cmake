file(REMOVE_RECURSE
  "CMakeFiles/fig06_fig07_accuracy.dir/fig06_fig07_accuracy.cpp.o"
  "CMakeFiles/fig06_fig07_accuracy.dir/fig06_fig07_accuracy.cpp.o.d"
  "fig06_fig07_accuracy"
  "fig06_fig07_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_fig07_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
