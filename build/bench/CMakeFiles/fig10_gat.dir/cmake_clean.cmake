file(REMOVE_RECURSE
  "CMakeFiles/fig10_gat.dir/fig10_gat.cpp.o"
  "CMakeFiles/fig10_gat.dir/fig10_gat.cpp.o.d"
  "fig10_gat"
  "fig10_gat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_gat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
