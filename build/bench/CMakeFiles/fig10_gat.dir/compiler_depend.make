# Empty compiler generated dependencies file for fig10_gat.
# This may be replaced when dependencies are built.
