# Empty dependencies file for fig08c_cache_size.
# This may be replaced when dependencies are built.
