file(REMOVE_RECURSE
  "CMakeFiles/fig08c_cache_size.dir/fig08c_cache_size.cpp.o"
  "CMakeFiles/fig08c_cache_size.dir/fig08c_cache_size.cpp.o.d"
  "fig08c_cache_size"
  "fig08c_cache_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08c_cache_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
