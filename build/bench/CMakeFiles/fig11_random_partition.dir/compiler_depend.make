# Empty compiler generated dependencies file for fig11_random_partition.
# This may be replaced when dependencies are built.
