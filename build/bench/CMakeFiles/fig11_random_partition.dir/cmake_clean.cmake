file(REMOVE_RECURSE
  "CMakeFiles/fig11_random_partition.dir/fig11_random_partition.cpp.o"
  "CMakeFiles/fig11_random_partition.dir/fig11_random_partition.cpp.o.d"
  "fig11_random_partition"
  "fig11_random_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_random_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
