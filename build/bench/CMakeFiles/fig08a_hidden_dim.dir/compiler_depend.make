# Empty compiler generated dependencies file for fig08a_hidden_dim.
# This may be replaced when dependencies are built.
