file(REMOVE_RECURSE
  "CMakeFiles/fig08a_hidden_dim.dir/fig08a_hidden_dim.cpp.o"
  "CMakeFiles/fig08a_hidden_dim.dir/fig08a_hidden_dim.cpp.o.d"
  "fig08a_hidden_dim"
  "fig08a_hidden_dim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08a_hidden_dim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
