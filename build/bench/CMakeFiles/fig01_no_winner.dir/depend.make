# Empty dependencies file for fig01_no_winner.
# This may be replaced when dependencies are built.
