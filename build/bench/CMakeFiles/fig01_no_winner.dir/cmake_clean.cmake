file(REMOVE_RECURSE
  "CMakeFiles/fig01_no_winner.dir/fig01_no_winner.cpp.o"
  "CMakeFiles/fig01_no_winner.dir/fig01_no_winner.cpp.o.d"
  "fig01_no_winner"
  "fig01_no_winner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_no_winner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
