# Empty compiler generated dependencies file for table4_apt_speedup.
# This may be replaced when dependencies are built.
