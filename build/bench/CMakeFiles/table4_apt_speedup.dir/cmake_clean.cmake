file(REMOVE_RECURSE
  "CMakeFiles/table4_apt_speedup.dir/table4_apt_speedup.cpp.o"
  "CMakeFiles/table4_apt_speedup.dir/table4_apt_speedup.cpp.o.d"
  "table4_apt_speedup"
  "table4_apt_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_apt_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
