file(REMOVE_RECURSE
  "CMakeFiles/table3_access_skew.dir/table3_access_skew.cpp.o"
  "CMakeFiles/table3_access_skew.dir/table3_access_skew.cpp.o.d"
  "table3_access_skew"
  "table3_access_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_access_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
