# Empty dependencies file for table3_access_skew.
# This may be replaced when dependencies are built.
