#include "graph/io.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "core/error.h"

namespace apt {

namespace {

constexpr std::uint64_t kMagic = 0x0a505444'41505431ULL;  // "1TPA" "DTP\n"
constexpr std::uint32_t kVersion = 1;

void WriteBytes(std::ofstream& out, const void* data, std::size_t bytes) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
  APT_CHECK(out.good()) << "write failed";
}

void ReadBytes(std::ifstream& in, void* data, std::size_t bytes) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  APT_CHECK(in.good()) << "read failed (truncated file?)";
}

template <typename T>
void WriteScalar(std::ofstream& out, T v) {
  WriteBytes(out, &v, sizeof(T));
}

template <typename T>
T ReadScalar(std::ifstream& in) {
  T v;
  ReadBytes(in, &v, sizeof(T));
  return v;
}

template <typename T>
void WriteVector(std::ofstream& out, const std::vector<T>& v) {
  WriteScalar<std::uint64_t>(out, v.size());
  if (!v.empty()) WriteBytes(out, v.data(), v.size() * sizeof(T));
}

template <typename T>
std::vector<T> ReadVector(std::ifstream& in, std::uint64_t max_size) {
  const auto n = ReadScalar<std::uint64_t>(in);
  APT_CHECK_LE(n, max_size) << "implausible array size";
  std::vector<T> v(static_cast<std::size_t>(n));
  if (n > 0) ReadBytes(in, v.data(), v.size() * sizeof(T));
  return v;
}

}  // namespace

void SaveDataset(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  APT_CHECK(out.is_open()) << "cannot open " << path << " for writing";
  WriteScalar(out, kMagic);
  WriteScalar(out, kVersion);
  WriteScalar<std::uint64_t>(out, dataset.name.size());
  WriteBytes(out, dataset.name.data(), dataset.name.size());
  // Topology.
  WriteVector(out, std::vector<EdgeId>(dataset.graph.indptr().begin(),
                                       dataset.graph.indptr().end()));
  WriteVector(out, std::vector<NodeId>(dataset.graph.indices().begin(),
                                       dataset.graph.indices().end()));
  // Features.
  WriteScalar<std::int64_t>(out, dataset.features.rows());
  WriteScalar<std::int64_t>(out, dataset.features.cols());
  WriteBytes(out, dataset.features.data(),
             static_cast<std::size_t>(dataset.features.numel()) * sizeof(float));
  // Labels and splits.
  WriteScalar<std::int64_t>(out, dataset.num_classes);
  WriteScalar<std::int32_t>(out, dataset.num_communities);
  WriteVector(out, dataset.labels);
  WriteVector(out, dataset.train_nodes);
  WriteVector(out, dataset.val_nodes);
  WriteVector(out, dataset.test_nodes);
  APT_CHECK(out.good()) << "write failed for " << path;
}

Dataset LoadDataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  APT_CHECK(in.is_open()) << "cannot open " << path;
  APT_CHECK_EQ(ReadScalar<std::uint64_t>(in), kMagic) << "bad magic in " << path;
  APT_CHECK_EQ(ReadScalar<std::uint32_t>(in), kVersion) << "unsupported version";
  Dataset ds;
  const auto name_len = ReadScalar<std::uint64_t>(in);
  APT_CHECK_LE(name_len, 4096u) << "implausible name length";
  ds.name.resize(static_cast<std::size_t>(name_len));
  ReadBytes(in, ds.name.data(), ds.name.size());

  constexpr std::uint64_t kMax = 1ULL << 40;
  auto indptr = ReadVector<EdgeId>(in, kMax);
  auto indices = ReadVector<NodeId>(in, kMax);
  ds.graph = CsrGraph(std::move(indptr), std::move(indices));

  const auto rows = ReadScalar<std::int64_t>(in);
  const auto cols = ReadScalar<std::int64_t>(in);
  APT_CHECK_EQ(rows, ds.graph.num_nodes()) << "feature/topology mismatch";
  APT_CHECK(cols > 0 && cols < (1 << 20)) << "implausible feature dim";
  ds.features = Tensor(rows, cols);
  ReadBytes(in, ds.features.data(),
            static_cast<std::size_t>(ds.features.numel()) * sizeof(float));

  ds.num_classes = ReadScalar<std::int64_t>(in);
  ds.num_communities = ReadScalar<std::int32_t>(in);
  ds.labels = ReadVector<std::int64_t>(in, kMax);
  APT_CHECK_EQ(static_cast<NodeId>(ds.labels.size()), ds.graph.num_nodes());
  ds.train_nodes = ReadVector<NodeId>(in, kMax);
  ds.val_nodes = ReadVector<NodeId>(in, kMax);
  ds.test_nodes = ReadVector<NodeId>(in, kMax);
  for (NodeId v : ds.train_nodes) {
    APT_CHECK(v >= 0 && v < ds.graph.num_nodes()) << "train node out of range";
  }
  return ds;
}

}  // namespace apt
