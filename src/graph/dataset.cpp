#include "graph/dataset.h"

#include <algorithm>

#include "tensor/init.h"

namespace apt {

Dataset MakeDataset(const DatasetParams& params) {
  APT_CHECK_GT(params.num_classes, 1);
  Dataset ds;
  ds.name = params.name;
  ds.num_classes = params.num_classes;
  ds.num_communities = params.num_communities;

  ZipfCommunityParams gp;
  gp.num_nodes = params.num_nodes;
  gp.num_edges = params.num_edges;
  gp.num_communities = params.num_communities;
  gp.zipf_exponent = params.zipf_exponent;
  gp.zipf_offset = params.zipf_offset;
  gp.intra_prob = params.intra_prob;
  gp.seed = params.seed;
  ds.graph = ZipfCommunityGraph(gp);

  const NodeId n = ds.graph.num_nodes();
  Rng rng = Rng(params.seed).Fork(0xfea7);

  // Labels: community id modulo classes, with a noisy fraction randomized so
  // the classification task is not trivially separable.
  ds.labels.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const std::int32_t c = CommunityOf(v, n, params.num_communities);
    std::int64_t label = c % params.num_classes;
    if (rng.NextDouble() < params.label_noise) {
      label = static_cast<std::int64_t>(
          rng.NextBelow(static_cast<std::uint64_t>(params.num_classes)));
    }
    ds.labels[static_cast<std::size_t>(v)] = label;
  }

  // Features: class centroid plus isotropic noise.
  Tensor centroids(params.num_classes, params.feature_dim);
  Rng crng = Rng(params.seed).Fork(0xce17);
  GaussianInit(centroids, crng, 1.0f);
  ds.features = Tensor(n, params.feature_dim);
  Rng frng = Rng(params.seed).Fork(0xf00d);
  for (NodeId v = 0; v < n; ++v) {
    const float* c = centroids.row(ds.labels[static_cast<std::size_t>(v)]);
    float* f = ds.features.row(v);
    for (std::int64_t j = 0; j < params.feature_dim; ++j) {
      f[j] = c[j] + params.feature_noise * frng.NextGaussian();
    }
  }

  // Splits: a random permutation carved into train / val / test.
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  Rng srng = Rng(params.seed).Fork(0x5e3d);
  srng.Shuffle(perm);
  const auto n_train = static_cast<std::size_t>(params.train_fraction * n);
  const auto n_val = static_cast<std::size_t>(params.val_fraction * n);
  APT_CHECK_LE(n_train + n_val, perm.size());
  ds.train_nodes.assign(perm.begin(), perm.begin() + n_train);
  ds.val_nodes.assign(perm.begin() + n_train, perm.begin() + n_train + n_val);
  ds.test_nodes.assign(perm.begin() + n_train + n_val, perm.end());
  return ds;
}

DatasetParams PsLikeParams(double scale) {
  // Papers100M-like: strong access skew (Table 3: top 1% of nodes get 50% of
  // accesses), feature dim 128, dense citation-style communities.
  DatasetParams p;
  p.name = "ps_like";
  p.num_nodes = static_cast<NodeId>(24000 * scale);
  p.num_edges = static_cast<EdgeId>(360000 * scale);
  p.feature_dim = 128;
  p.num_classes = 16;
  p.num_communities = 16;
  p.zipf_exponent = 4.0;
  p.zipf_offset = 16.0;
  p.intra_prob = 0.92;
  p.seed = 11;
  return p;
}

DatasetParams FsLikeParams(double scale) {
  // Friendster-like: scattered accesses (Table 3 tail-heavy), feature dim 256.
  DatasetParams p;
  p.name = "fs_like";
  p.num_nodes = static_cast<NodeId>(24000 * scale);
  p.num_edges = static_cast<EdgeId>(400000 * scale);
  p.feature_dim = 256;
  p.num_classes = 16;
  p.num_communities = 16;
  p.zipf_exponent = 0.85;
  p.intra_prob = 0.85;
  p.seed = 22;
  return p;
}

DatasetParams ImLikeParams(double scale) {
  // IGB260M-like: intermediate skew, feature dim 128, largest node count.
  DatasetParams p;
  p.name = "im_like";
  p.num_nodes = static_cast<NodeId>(32000 * scale);
  p.num_edges = static_cast<EdgeId>(400000 * scale);
  p.feature_dim = 128;
  p.num_classes = 16;
  p.num_communities = 16;
  p.zipf_exponent = 2.2;
  p.zipf_offset = 12.0;
  p.intra_prob = 0.9;
  p.seed = 33;
  return p;
}

DatasetParams WithFeatureDim(DatasetParams p, std::int64_t dim) {
  p.feature_dim = dim;
  return p;
}

}  // namespace apt
