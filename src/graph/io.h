// Binary dataset serialization.
//
// Lets users build a synthetic (or converted) dataset once and reload it
// across runs — the role DGL's partition/dataset files play for APT's
// Prepare stage. Format: a small header (magic, version, sizes) followed by
// raw little-endian arrays; validated on load.
#pragma once

#include <string>

#include "graph/dataset.h"

namespace apt {

/// Writes `dataset` to `path`. Throws apt::Error on I/O failure.
void SaveDataset(const Dataset& dataset, const std::string& path);

/// Reads a dataset written by SaveDataset. Throws apt::Error on I/O
/// failure, bad magic/version, or inconsistent sizes.
Dataset LoadDataset(const std::string& path);

}  // namespace apt
