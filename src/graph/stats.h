// Graph statistics: degree distribution and frequency-skew summaries
// (the machinery behind the paper's Table 3).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.h"

namespace apt {

struct DegreeStats {
  EdgeId min_degree = 0;
  EdgeId max_degree = 0;
  double mean_degree = 0.0;
  NodeId num_isolated = 0;
};

DegreeStats ComputeDegreeStats(const CsrGraph& graph);

/// One row of the paper's Table 3: nodes ranked into (lo%, hi%] by a
/// frequency count, and the share of total frequency mass they carry.
struct SkewBucket {
  double lo_percent;
  double hi_percent;
  double access_share;  ///< fraction of the total count mass, in [0, 1]
};

/// Ranks nodes by descending `counts` and buckets the mass at the paper's
/// breakpoints {1, 5, 10, 20, 50, 100}%.
std::vector<SkewBucket> ComputeAccessSkew(std::span<const std::int64_t> counts);

}  // namespace apt
