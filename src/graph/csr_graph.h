// Immutable CSR representation of the data graph.
//
// Stored as in-neighbor lists: Neighbors(v) returns the nodes u with an edge
// u -> v, which is the direction GNN aggregation consumes (v aggregates from
// its in-neighbors). The generators in this repo produce undirected graphs
// (both directions inserted), matching the paper's datasets.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/error.h"
#include "core/types.h"

namespace apt {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Takes ownership of validated CSR arrays; indptr.size() == num_nodes + 1.
  CsrGraph(std::vector<EdgeId> indptr, std::vector<NodeId> indices);

  NodeId num_nodes() const { return static_cast<NodeId>(indptr_.size()) - 1; }
  EdgeId num_edges() const { return static_cast<EdgeId>(indices_.size()); }

  /// In-neighbors of v (sorted ascending).
  std::span<const NodeId> Neighbors(NodeId v) const {
    APT_CHECK(v >= 0 && v < num_nodes()) << "node " << v;
    return {indices_.data() + indptr_[static_cast<std::size_t>(v)],
            static_cast<std::size_t>(Degree(v))};
  }

  EdgeId Degree(NodeId v) const {
    return indptr_[static_cast<std::size_t>(v) + 1] - indptr_[static_cast<std::size_t>(v)];
  }

  std::span<const EdgeId> indptr() const { return indptr_; }
  std::span<const NodeId> indices() const { return indices_; }

  /// Topology size in bytes (what the simulator charges for replication).
  std::int64_t TopologyBytes() const {
    return static_cast<std::int64_t>(indptr_.size() * sizeof(EdgeId) +
                                     indices_.size() * sizeof(NodeId));
  }

 private:
  std::vector<EdgeId> indptr_;   // size num_nodes + 1
  std::vector<NodeId> indices_;  // size num_edges
};

/// Builds a CSR graph from a (src, dst) edge list interpreted as src -> dst.
/// Self-loops are kept; duplicate edges are removed; neighbor lists sorted.
/// If `symmetrize`, the reverse of each edge is also inserted.
CsrGraph BuildCsr(NodeId num_nodes, std::span<const NodeId> src,
                  std::span<const NodeId> dst, bool symmetrize);

}  // namespace apt
