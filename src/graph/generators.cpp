#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace apt {

CsrGraph ErdosRenyi(NodeId num_nodes, EdgeId num_edges, Rng rng) {
  APT_CHECK_GT(num_nodes, 1);
  std::vector<NodeId> src, dst;
  src.reserve(static_cast<std::size_t>(num_edges));
  dst.reserve(static_cast<std::size_t>(num_edges));
  for (EdgeId e = 0; e < num_edges; ++e) {
    NodeId u = static_cast<NodeId>(rng.NextBelow(static_cast<std::uint64_t>(num_nodes)));
    NodeId v = static_cast<NodeId>(rng.NextBelow(static_cast<std::uint64_t>(num_nodes)));
    while (v == u) {
      v = static_cast<NodeId>(rng.NextBelow(static_cast<std::uint64_t>(num_nodes)));
    }
    src.push_back(u);
    dst.push_back(v);
  }
  return BuildCsr(num_nodes, src, dst, /*symmetrize=*/true);
}

std::int32_t CommunityOf(NodeId v, NodeId num_nodes, std::int32_t num_communities) {
  const NodeId block = (num_nodes + num_communities - 1) / num_communities;
  return static_cast<std::int32_t>(v / block);
}

CsrGraph ZipfCommunityGraph(const ZipfCommunityParams& params) {
  APT_CHECK_GT(params.num_nodes, 1);
  APT_CHECK_GT(params.num_communities, 0);
  APT_CHECK(params.intra_prob >= 0.0 && params.intra_prob <= 1.0);
  const NodeId n = params.num_nodes;
  const std::int32_t k = params.num_communities;
  const NodeId block = (n + k - 1) / k;

  // One Zipf sampler per community size (communities have at most two sizes).
  auto comm_lo = [&](std::int32_t c) { return static_cast<NodeId>(c) * block; };
  auto comm_size = [&](std::int32_t c) {
    return std::min<NodeId>(block, n - comm_lo(c));
  };
  std::vector<ZipfSampler> samplers;
  samplers.reserve(static_cast<std::size_t>(k));
  for (std::int32_t c = 0; c < k; ++c) {
    samplers.emplace_back(comm_size(c), params.zipf_exponent, params.zipf_offset);
  }

  Rng rng(params.seed);
  std::vector<NodeId> src, dst;
  src.reserve(static_cast<std::size_t>(params.num_edges));
  dst.reserve(static_cast<std::size_t>(params.num_edges));
  for (EdgeId e = 0; e < params.num_edges; ++e) {
    // Source: community chosen proportional to its size, then Zipf rank.
    const NodeId anchor = static_cast<NodeId>(rng.NextBelow(static_cast<std::uint64_t>(n)));
    const std::int32_t cs = CommunityOf(anchor, n, k);
    const NodeId u = comm_lo(cs) + samplers[static_cast<std::size_t>(cs)].Sample(rng);
    std::int32_t cd = cs;
    if (rng.NextDouble() >= params.intra_prob && k > 1) {
      cd = static_cast<std::int32_t>(rng.NextBelow(static_cast<std::uint64_t>(k - 1)));
      if (cd >= cs) ++cd;
    }
    // Destination: uniform within the target community. Drawing BOTH
    // endpoints from the Zipf head would make hub-hub edges quadratically
    // overrepresented (a dense assortative core real graphs do not have);
    // one-sided weighting yields hubs connected to ordinary nodes.
    NodeId v = comm_lo(cd) + static_cast<NodeId>(rng.NextBelow(
                                 static_cast<std::uint64_t>(comm_size(cd))));
    for (int tries = 0; v == u && tries < 8; ++tries) {
      v = comm_lo(cd) + static_cast<NodeId>(rng.NextBelow(
                            static_cast<std::uint64_t>(comm_size(cd))));
    }
    if (v == u) continue;  // pathological tiny community; drop the edge
    src.push_back(u);
    dst.push_back(v);
  }
  return BuildCsr(n, src, dst, /*symmetrize=*/true);
}

CsrGraph Rmat(int scale, EdgeId num_edges, double a, double b, double c, Rng rng) {
  APT_CHECK(scale > 0 && scale < 31);
  const double d = 1.0 - a - b - c;
  APT_CHECK(d >= 0.0) << "RMAT probabilities exceed 1";
  const NodeId n = static_cast<NodeId>(1) << scale;
  std::vector<NodeId> src, dst;
  src.reserve(static_cast<std::size_t>(num_edges));
  dst.reserve(static_cast<std::size_t>(num_edges));
  for (EdgeId e = 0; e < num_edges; ++e) {
    NodeId u = 0, v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    src.push_back(u);
    dst.push_back(v);
  }
  return BuildCsr(n, src, dst, /*symmetrize=*/true);
}

}  // namespace apt
