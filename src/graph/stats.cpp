#include "graph/stats.h"

#include <algorithm>
#include <numeric>

namespace apt {

DegreeStats ComputeDegreeStats(const CsrGraph& graph) {
  DegreeStats s;
  const NodeId n = graph.num_nodes();
  if (n == 0) return s;
  s.min_degree = graph.Degree(0);
  for (NodeId v = 0; v < n; ++v) {
    const EdgeId d = graph.Degree(v);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    if (d == 0) ++s.num_isolated;
  }
  s.mean_degree = static_cast<double>(graph.num_edges()) / static_cast<double>(n);
  return s;
}

std::vector<SkewBucket> ComputeAccessSkew(std::span<const std::int64_t> counts) {
  std::vector<std::int64_t> sorted(counts.begin(), counts.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const double total = static_cast<double>(
      std::accumulate(sorted.begin(), sorted.end(), std::int64_t{0}));
  const double breakpoints[] = {1.0, 5.0, 10.0, 20.0, 50.0, 100.0};
  std::vector<SkewBucket> buckets;
  double lo = 0.0;
  std::size_t idx = 0;
  double mass_so_far = 0.0;
  for (double hi : breakpoints) {
    const std::size_t hi_idx = static_cast<std::size_t>(hi / 100.0 * sorted.size());
    double mass = 0.0;
    for (; idx < hi_idx && idx < sorted.size(); ++idx) {
      mass += static_cast<double>(sorted[idx]);
    }
    mass_so_far += mass;
    buckets.push_back({lo, hi, total > 0 ? mass / total : 0.0});
    lo = hi;
  }
  (void)mass_so_far;
  return buckets;
}

}  // namespace apt
