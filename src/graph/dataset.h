// Dataset: graph topology + node features + labels + train/val/test splits.
//
// Presets `PsLike`, `FsLike`, `ImLike` are scaled-down stand-ins for the
// paper's OGBN-Papers100M (PS), Friendster (FS), and IGB260M (IM). They are
// calibrated on the two properties that drive strategy choice:
//   * access skew under neighbor sampling — PS head-heavy, FS scattered,
//     IM in between (paper Table 3);
//   * feature dimension — PS/IM 128, FS 256 (paper Table 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/random.h"
#include "core/types.h"
#include "graph/csr_graph.h"
#include "graph/generators.h"
#include "tensor/tensor.h"

namespace apt {

struct Dataset {
  std::string name;
  CsrGraph graph;
  Tensor features;                  ///< num_nodes x feature_dim
  std::vector<std::int64_t> labels; ///< one class id per node
  std::int64_t num_classes = 0;
  std::vector<NodeId> train_nodes;
  std::vector<NodeId> val_nodes;
  std::vector<NodeId> test_nodes;
  std::int32_t num_communities = 0; ///< generator communities (0 if unknown)
  /// Procedural features (scale mode): when `features` is empty and this is
  /// > 0, feature rows are generated on demand from a hash of
  /// (procedural_feature_seed, node, col) by the FeatureStore — 100M-node
  /// graphs train without a num_nodes x dim matrix. Values are deterministic
  /// and batching-independent.
  std::int64_t procedural_feature_dim = 0;
  std::uint64_t procedural_feature_seed = 0;

  std::int64_t feature_dim() const {
    return features.numel() > 0 || procedural_feature_dim <= 0
               ? features.cols()
               : procedural_feature_dim;
  }
  std::int64_t FeatureBytes() const {
    return features.numel() > 0
               ? features.bytes()
               : graph.num_nodes() * procedural_feature_dim * 4;
  }
};

/// Knobs for building a synthetic dataset.
struct DatasetParams {
  std::string name = "synthetic";
  NodeId num_nodes = 20000;
  EdgeId num_edges = 200000;      ///< before symmetrization/dedupe
  std::int64_t feature_dim = 64;
  std::int64_t num_classes = 8;
  std::int32_t num_communities = 8;
  double zipf_exponent = 0.8;     ///< access-skew knob
  double zipf_offset = 0.0;       ///< head-flattening knob (see generators.h)
  double intra_prob = 0.9;        ///< partitionability knob
  double train_fraction = 0.1;
  double val_fraction = 0.05;
  double label_noise = 0.1;       ///< fraction of nodes with a random label
  float feature_noise = 0.6f;     ///< feature = centroid + N(0, noise)
  std::uint64_t seed = 42;
};

/// Builds a dataset: ZipfCommunityGraph topology, class-centroid features
/// with Gaussian noise (learnable node classification), random splits.
Dataset MakeDataset(const DatasetParams& params);

/// Preset parameter sets. `scale` multiplies node and edge counts
/// (scale = 1.0 is the default benchmark size of ~24k-32k nodes).
DatasetParams PsLikeParams(double scale = 1.0);
DatasetParams FsLikeParams(double scale = 1.0);
DatasetParams ImLikeParams(double scale = 1.0);

/// Overrides the feature dimension of a preset (Fig 1 varies input dim).
DatasetParams WithFeatureDim(DatasetParams p, std::int64_t dim);

}  // namespace apt
