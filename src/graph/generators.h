// Synthetic graph generators.
//
// The paper evaluates on OGBN-Papers100M, Friendster, and IGB260M — graphs
// we cannot ship. What decides the winning parallelization strategy is (a)
// the skew of node-access frequencies under neighbor sampling (Table 3) and
// (b) how well an edge-cut partitioner can localize the graph (Fig 11).
// Both are controllable here: `ZipfCommunityGraph` draws endpoints from a
// Zipf-weighted distribution (skew knob) and keeps a tunable fraction of
// edges inside planted communities (partitionability knob).
#pragma once

#include <cstdint>

#include "core/random.h"
#include "graph/csr_graph.h"

namespace apt {

/// Uniform Erdos–Renyi G(n, m): m undirected edges chosen uniformly.
CsrGraph ErdosRenyi(NodeId num_nodes, EdgeId num_edges, Rng rng);

/// Parameters for the Zipf-weighted planted-community generator.
struct ZipfCommunityParams {
  NodeId num_nodes = 0;
  EdgeId num_edges = 0;       ///< undirected edge count before dedupe
  std::int32_t num_communities = 8;
  double zipf_exponent = 0.8; ///< 0 = uniform endpoints; >1 = heavy head
  double zipf_offset = 0.0;   ///< shifted Zipf: weight = (rank+1+offset)^-a;
                              ///< flattens the extreme head (no mega-hubs)
  double intra_prob = 0.9;    ///< probability an edge stays inside a community
  std::uint64_t seed = 1;
};

/// Nodes are assigned to communities in contiguous blocks; node popularity
/// follows a Zipf law *within* each community (so the head of the access
/// distribution is spread across partitions, as in real graphs).
CsrGraph ZipfCommunityGraph(const ZipfCommunityParams& params);

/// Community id of a node under ZipfCommunityGraph's contiguous layout.
std::int32_t CommunityOf(NodeId v, NodeId num_nodes, std::int32_t num_communities);

/// RMAT generator (Graph500-style recursive quadrant sampling).
/// Produces heavy-tailed degrees; used by tests and micro benches.
CsrGraph Rmat(int scale, EdgeId num_edges, double a, double b, double c, Rng rng);

}  // namespace apt
