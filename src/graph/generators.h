// Synthetic graph generators.
//
// The paper evaluates on OGBN-Papers100M, Friendster, and IGB260M — graphs
// we cannot ship. What decides the winning parallelization strategy is (a)
// the skew of node-access frequencies under neighbor sampling (Table 3) and
// (b) how well an edge-cut partitioner can localize the graph (Fig 11).
// Both are controllable here: `ZipfCommunityGraph` draws endpoints from a
// Zipf-weighted distribution (skew knob) and keeps a tunable fraction of
// edges inside planted communities (partitionability knob).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/random.h"
#include "graph/csr_graph.h"

namespace apt {

/// Draws ranks from a (shifted) Zipf law: weight(r) = (r+1+offset)^-alpha.
/// Cumulative weights + binary search, so Sample is O(log n) and the
/// distribution is exact (no rejection). Used by the graph generators for
/// edge-endpoint skew and by the serving engine for per-user seed
/// popularity — the same knob that makes Table 3's access skew makes a
/// realistic request mix.
class ZipfSampler {
 public:
  ZipfSampler(NodeId n, double alpha, double offset)
      : cum_(static_cast<std::size_t>(n)) {
    double acc = 0.0;
    for (NodeId r = 0; r < n; ++r) {
      acc += std::pow(static_cast<double>(r + 1) + offset, -alpha);
      cum_[static_cast<std::size_t>(r)] = acc;
    }
  }

  NodeId Sample(Rng& rng) const {
    const double u = rng.NextDouble() * cum_.back();
    const auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
    return static_cast<NodeId>(it - cum_.begin());
  }

 private:
  std::vector<double> cum_;
};

/// Uniform Erdos–Renyi G(n, m): m undirected edges chosen uniformly.
CsrGraph ErdosRenyi(NodeId num_nodes, EdgeId num_edges, Rng rng);

/// Parameters for the Zipf-weighted planted-community generator.
struct ZipfCommunityParams {
  NodeId num_nodes = 0;
  EdgeId num_edges = 0;       ///< undirected edge count before dedupe
  std::int32_t num_communities = 8;
  double zipf_exponent = 0.8; ///< 0 = uniform endpoints; >1 = heavy head
  double zipf_offset = 0.0;   ///< shifted Zipf: weight = (rank+1+offset)^-a;
                              ///< flattens the extreme head (no mega-hubs)
  double intra_prob = 0.9;    ///< probability an edge stays inside a community
  std::uint64_t seed = 1;
};

/// Nodes are assigned to communities in contiguous blocks; node popularity
/// follows a Zipf law *within* each community (so the head of the access
/// distribution is spread across partitions, as in real graphs).
CsrGraph ZipfCommunityGraph(const ZipfCommunityParams& params);

/// Community id of a node under ZipfCommunityGraph's contiguous layout.
std::int32_t CommunityOf(NodeId v, NodeId num_nodes, std::int32_t num_communities);

/// RMAT generator (Graph500-style recursive quadrant sampling).
/// Produces heavy-tailed degrees; used by tests and micro benches.
CsrGraph Rmat(int scale, EdgeId num_edges, double a, double b, double c, Rng rng);

}  // namespace apt
