#include "graph/csr_graph.h"

#include <algorithm>
#include <numeric>

namespace apt {

CsrGraph::CsrGraph(std::vector<EdgeId> indptr, std::vector<NodeId> indices)
    : indptr_(std::move(indptr)), indices_(std::move(indices)) {
  APT_CHECK_GE(indptr_.size(), 1u);
  APT_CHECK_EQ(indptr_.front(), 0);
  APT_CHECK_EQ(indptr_.back(), static_cast<EdgeId>(indices_.size()));
  for (std::size_t i = 1; i < indptr_.size(); ++i) {
    APT_CHECK_GE(indptr_[i], indptr_[i - 1]);
  }
}

CsrGraph BuildCsr(NodeId num_nodes, std::span<const NodeId> src,
                  std::span<const NodeId> dst, bool symmetrize) {
  APT_CHECK_EQ(src.size(), dst.size());
  // Materialize (dst, src) pairs: CSR is keyed by destination, and the
  // neighbor list of v holds its in-neighbors.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(src.size() * (symmetrize ? 2 : 1));
  for (std::size_t i = 0; i < src.size(); ++i) {
    APT_CHECK(src[i] >= 0 && src[i] < num_nodes) << "src " << src[i];
    APT_CHECK(dst[i] >= 0 && dst[i] < num_nodes) << "dst " << dst[i];
    pairs.emplace_back(dst[i], src[i]);
    if (symmetrize && src[i] != dst[i]) pairs.emplace_back(src[i], dst[i]);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  std::vector<EdgeId> indptr(static_cast<std::size_t>(num_nodes) + 1, 0);
  std::vector<NodeId> indices;
  indices.reserve(pairs.size());
  for (const auto& [d, s] : pairs) {
    ++indptr[static_cast<std::size_t>(d) + 1];
    indices.push_back(s);
  }
  std::partial_sum(indptr.begin(), indptr.end(), indptr.begin());
  return CsrGraph(std::move(indptr), std::move(indices));
}

}  // namespace apt
