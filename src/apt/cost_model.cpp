#include "apt/cost_model.h"

#include <sstream>

namespace apt {

CostEstimate EstimateCost(Strategy strategy, const DryRunResult& dryrun) {
  const StrategyDryRun& st = dryrun.per_strategy[static_cast<std::size_t>(strategy)];
  CostEstimate e;
  e.strategy = strategy;
  e.t_build = st.sample_seconds + st.graph_shuffle_seconds;
  e.t_load = st.load_seconds;
  e.t_shuffle = st.shuffle_seconds;
  e.feasible = st.fits_memory;
  return e;
}

std::array<CostEstimate, kNumStrategies> EstimateAll(const DryRunResult& dryrun) {
  std::array<CostEstimate, kNumStrategies> out;
  for (Strategy s : kAllStrategies) {
    out[static_cast<std::size_t>(s)] = EstimateCost(s, dryrun);
  }
  return out;
}

std::string FormatEstimate(const CostEstimate& e) {
  std::ostringstream os;
  os << ToString(e.strategy) << ": build=" << e.t_build << "s load=" << e.t_load
     << "s shuffle=" << e.t_shuffle << "s (comparable " << e.Comparable() << "s)"
     << (e.feasible ? "" : " [OOM]");
  return os.str();
}

}  // namespace apt
