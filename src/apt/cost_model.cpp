#include "apt/cost_model.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "core/logging.h"

namespace apt {

namespace {

/// Slowdown factor of an operator (>1 = degraded profile is slower).
double SpeedRatio(double base_bps, double degraded_bps) {
  if (base_bps <= 0.0 || degraded_bps <= 0.0) return 1.0;
  return base_bps / degraded_bps;
}

/// Inverse-speed blend for NFP's two-operator embedding shuffle
/// (forward allreduce + backward broadcast, equal volumes).
double BlendedRatio(const CommProfile& base, const CommProfile& degraded) {
  const double inv_base = (base.allreduce_bytes_per_s > 0 ? 1.0 / base.allreduce_bytes_per_s : 0.0) +
                          (base.broadcast_bytes_per_s > 0 ? 1.0 / base.broadcast_bytes_per_s : 0.0);
  const double inv_deg =
      (degraded.allreduce_bytes_per_s > 0 ? 1.0 / degraded.allreduce_bytes_per_s : 0.0) +
      (degraded.broadcast_bytes_per_s > 0 ? 1.0 / degraded.broadcast_bytes_per_s : 0.0);
  if (inv_base <= 0.0 || inv_deg <= 0.0) return 1.0;
  return inv_deg / inv_base;
}

/// Slowest device's cumulative load time for `st`'s epoch volumes under `p`.
double CumulativeLoadSeconds(const StrategyDryRun& st, const CommProfile& p) {
  double worst = 0.0;
  for (const LoadVolume& v : st.load) {
    double t = 0.0;
    const auto add = [&](FeatureTier tier, double bps) {
      const auto b = static_cast<double>(v.bytes[static_cast<std::size_t>(tier)]);
      if (b > 0.0 && bps > 0.0) t += b / bps;
    };
    add(FeatureTier::kGpuCache, p.gpu_cache_bytes_per_s);
    add(FeatureTier::kPeerGpu, p.peer_gpu_bytes_per_s);
    add(FeatureTier::kLocalCpu, p.local_cpu_bytes_per_s);
    add(FeatureTier::kRemoteCpu, p.remote_cpu_bytes_per_s);
    worst = std::max(worst, t);
  }
  return worst;
}

}  // namespace

namespace {

/// Only GDP and DNP run the canonical quantized layer-0 backward (its extra
/// sync collectives); NFP/SNP keep the standard float path.
bool PaysQuantizedSync(Strategy s) {
  return s == Strategy::kGDP || s == Strategy::kDNP;
}

}  // namespace

CostEstimate EstimateCost(Strategy strategy, const DryRunResult& dryrun,
                          int pipeline_depth) {
  const StrategyDryRun& st = dryrun.per_strategy[static_cast<std::size_t>(strategy)];
  CostEstimate e;
  e.strategy = strategy;
  e.t_build = st.sample_seconds + st.graph_shuffle_seconds;
  e.t_load = st.load_seconds;
  e.t_shuffle = st.shuffle_seconds;
  e.t_sample = st.sample_seconds;
  e.t_compute = st.train_compute_seconds;
  e.t_fixed = dryrun.train_fixed_seconds;
  e.t_codec = st.codec_seconds +
              (PaysQuantizedSync(strategy) ? dryrun.quantized_sync_seconds : 0.0);
  e.pipeline_depth = pipeline_depth;
  e.feasible = st.fits_memory;
  return e;
}

std::array<CostEstimate, kNumStrategies> EstimateAll(const DryRunResult& dryrun,
                                                     int pipeline_depth) {
  std::array<CostEstimate, kNumStrategies> out;
  for (Strategy s : kAllStrategies) {
    out[static_cast<std::size_t>(s)] = EstimateCost(s, dryrun, pipeline_depth);
  }
  return out;
}

std::array<CostEstimate, kNumStrategies> ReestimateWithProfile(
    const DryRunResult& dryrun, const CommProfile& degraded, int pipeline_depth) {
  const CommProfile& base = dryrun.profile;
  const double atoa = SpeedRatio(base.alltoall_bytes_per_s, degraded.alltoall_bytes_per_s);
  const double bcast =
      SpeedRatio(base.broadcast_bytes_per_s, degraded.broadcast_bytes_per_s);
  const double nfp_blend = BlendedRatio(base, degraded);

  std::array<CostEstimate, kNumStrategies> out = EstimateAll(dryrun, pipeline_depth);
  for (CostEstimate& e : out) {
    const StrategyDryRun& st =
        dryrun.per_strategy[static_cast<std::size_t>(e.strategy)];
    double graph_ratio = 1.0, shuffle_ratio = 1.0;
    switch (e.strategy) {
      case Strategy::kGDP:
        break;  // no strategy shuffles; only T_load degrades
      case Strategy::kNFP:
        graph_ratio = bcast;
        shuffle_ratio = nfp_blend;
        break;
      case Strategy::kSNP:
      case Strategy::kDNP:
        graph_ratio = atoa;
        shuffle_ratio = atoa;
        break;
    }
    e.t_build = st.sample_seconds + st.graph_shuffle_seconds * graph_ratio;
    e.t_shuffle = st.shuffle_seconds * shuffle_ratio;
    const double load_base = CumulativeLoadSeconds(st, base);
    const double load_deg = CumulativeLoadSeconds(st, degraded);
    if (load_base > 0.0 && load_deg > 0.0) {
      e.t_load = st.load_seconds * (load_deg / load_base);
    }
    // Codec compute is device-memory-bound (link faults leave it alone);
    // only the quantized-sync collectives ride the degraded allreduce.
    const double arr =
        SpeedRatio(base.allreduce_bytes_per_s, degraded.allreduce_bytes_per_s);
    e.t_codec =
        st.codec_seconds +
        (PaysQuantizedSync(e.strategy) ? dryrun.quantized_sync_seconds * arr : 0.0);
  }
  return out;
}

Strategy SelectStrategy(const std::array<CostEstimate, kNumStrategies>& estimates) {
  bool found = false;
  double best = 0.0;
  Strategy selected = Strategy::kGDP;
  for (const CostEstimate& e : estimates) {
    if (!e.feasible) continue;
    if (!found || e.Comparable() < best) {
      best = e.Comparable();
      selected = e.strategy;
      found = true;
    }
  }
  if (!found) {
    APT_LOG_WARN << "all strategies exceed device memory estimates; defaulting to GDP";
  }
  return selected;
}

std::string FormatEstimate(const CostEstimate& e) {
  std::ostringstream os;
  os << ToString(e.strategy) << ": build=" << e.t_build << "s load=" << e.t_load
     << "s shuffle=" << e.t_shuffle << "s";
  if (e.t_codec > 0.0) {
    os << " codec=" << e.t_codec << "s";
  }
  if (e.pipeline_depth > 1) {
    os << " compute=" << e.t_compute << "s depth=" << e.pipeline_depth;
  }
  os << " (comparable " << e.Comparable() << "s)" << (e.feasible ? "" : " [OOM]");
  return os.str();
}

std::string FormatResidualReport(const CostEstimate& e,
                                 const obs::TraceAnalysis& measured) {
  const auto phase = [&measured](const char* cat) {
    const auto it = measured.phase_max_s.find(cat);
    return it == measured.phase_max_s.end() ? 0.0 : it->second;
  };
  const auto comm = [&measured](const char* cat) {
    const auto it = measured.comm_max_s.find(cat);
    return it == measured.comm_max_s.end() ? 0.0 : it->second;
  };
  struct Row {
    const char* term;
    double predicted;
    double seen;
  };
  // A pipelined estimate models the whole stacked epoch (overlap means the
  // strategy-dependent slice is no longer separable), so its measured
  // counterpart is StackedSeconds; the serial estimate keeps the paper's
  // comparable slice.
  const double measured_comparable = e.pipeline_depth > 1
                                         ? measured.StackedSeconds()
                                         : measured.ComparableSeconds();
  const Row rows[] = {
      {"t_build (sample)", e.t_build, phase("sample")},
      {"t_load (load)", e.t_load, phase("load")},
      // Codec compute & quantized sync land on the train comm stream, so
      // they join the shuffle term's measured counterpart.
      {"t_shuffle (train comm)", e.t_shuffle + e.t_codec, comm("train")},
      {"comparable", e.Comparable(), measured_comparable},
  };
  std::ostringstream os;
  os << "### Cost-model residuals: " << ToString(e.strategy);
  if (!measured.strategy.empty() && measured.strategy != ToString(e.strategy)) {
    os << " (trace labeled " << measured.strategy << ")";
  }
  os << "\n\n| term | predicted_s | measured_s | residual_s | rel |\n"
     << "|---|---:|---:|---:|---:|\n";
  for (const Row& row : rows) {
    const double residual = row.seen - row.predicted;
    const double rel = row.predicted > 0.0 ? residual / row.predicted : 0.0;
    os << "| " << row.term << " | " << row.predicted << " | " << row.seen << " | "
       << residual << " | ";
    os << std::fixed << std::setprecision(1) << rel * 100.0 << "% |\n";
    os.unsetf(std::ios::fixed);
    os << std::setprecision(6);
  }
  return os.str();
}

}  // namespace apt
