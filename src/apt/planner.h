// Planner: runs the dry-run and the cost models, selects the strategy.
#pragma once

#include <array>

#include "apt/cost_model.h"
#include "apt/dryrun.h"

namespace apt {

struct PlanReport {
  DryRunResult dryrun;
  std::array<CostEstimate, kNumStrategies> estimates;
  Strategy selected = Strategy::kGDP;
};

/// Selects the feasible strategy with the smallest comparable cost
/// (falls back to GDP — always feasible — if everything is marked OOM).
PlanReport MakePlan(const Dataset& dataset, const ClusterSpec& cluster,
                    const std::vector<PartId>& partition, const EngineOptions& opts,
                    const ModelConfig& model);

}  // namespace apt
