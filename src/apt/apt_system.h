// AptSystem: the user-facing facade implementing the paper's workflow —
// Prepare (partition + bandwidth trials) -> Plan (dry-run + cost models) ->
// Adapt (engine/cache configuration) -> Run (DDP training).
//
//   apt::AptSystem system(dataset, cluster, model_cfg, engine_opts);
//   apt::PlanReport plan = system.Plan();
//   auto trainer = system.MakeTrainer(plan.selected);
//   for (int e = 0; e < epochs; ++e) trainer->TrainEpoch(e);
#pragma once

#include <memory>
#include <optional>

#include "apt/adapter.h"
#include "apt/planner.h"
#include "engine/trainer.h"
#include "partition/partitioner.h"

namespace apt {

class AptSystem {
 public:
  /// Prepare: partitions the graph (multilevel edge-cut by default) and
  /// stores the task description. Pass a custom partitioner to reproduce
  /// e.g. the random-partition ablation (Fig 11).
  AptSystem(const Dataset& dataset, ClusterSpec cluster, ModelConfig model,
            EngineOptions opts, Partitioner* partitioner = nullptr);

  /// Plan: dry-run + cost models; caches the report.
  const PlanReport& Plan();

  /// Adapt + Run scaffolding: a trainer configured for `strategy`
  /// (call Plan() first; the dry-run cache layout is reused). `assignment`
  /// optionally pins the seed-assignment policy (see BuildTrainerSetup).
  std::unique_ptr<ParallelTrainer> MakeTrainer(
      Strategy strategy, std::optional<SeedAssignment> assignment = std::nullopt);

  /// Convenience: Plan + train `epochs` epochs with the selected strategy.
  /// Returns the per-epoch stats.
  std::vector<EpochStats> Run(int epochs);

  const std::vector<PartId>& partition() const { return partition_; }
  bool planned() const { return planned_; }

  /// Engine options applied to subsequently built trainers. Mutable so the
  /// recovery layer can inject RecoveryOptions after planning (recovery
  /// knobs do not affect the plan itself).
  EngineOptions& options() { return opts_; }

 private:
  const Dataset* dataset_;
  ClusterSpec cluster_;
  ModelConfig model_;
  EngineOptions opts_;
  std::vector<PartId> partition_;
  PlanReport report_;
  bool planned_ = false;
};

}  // namespace apt
