#include "apt/adapter.h"

namespace apt {

TrainerSetup BuildTrainerSetup(const ClusterSpec& cluster, const ModelConfig& model,
                               const EngineOptions& base_opts,
                               const std::vector<PartId>& partition,
                               const DryRunResult& dryrun, Strategy strategy) {
  TrainerSetup setup;
  setup.cluster = cluster;
  setup.model = model;
  setup.engine = base_opts;
  setup.engine.strategy = strategy;
  setup.engine.seed_assignment = EngineOptions::DefaultAssignment(strategy);
  setup.partition = partition;
  setup.cache = dryrun.caches[static_cast<std::size_t>(strategy)];
  setup.feature_placement = FeaturePlacementFromPartition(partition, cluster);
  return setup;
}

}  // namespace apt
