#include "apt/adapter.h"

#include "apt/cost_model.h"

namespace apt {

TrainerSetup BuildTrainerSetup(const ClusterSpec& cluster, const ModelConfig& model,
                               const EngineOptions& base_opts,
                               const std::vector<PartId>& partition,
                               const DryRunResult& dryrun, Strategy strategy,
                               std::optional<SeedAssignment> assignment) {
  TrainerSetup setup;
  setup.cluster = cluster;
  setup.model = model;
  setup.engine = base_opts;
  setup.engine.strategy = strategy;
  setup.engine.seed_assignment =
      assignment.value_or(EngineOptions::DefaultAssignment(strategy));
  setup.partition = partition;
  setup.cache = dryrun.caches[static_cast<std::size_t>(strategy)];
  setup.feature_placement = FeaturePlacementFromPartition(partition, cluster);
  // Carry the dry-run prediction along so the trainer can publish
  // predicted-vs-measured cost-model residual metrics.
  setup.predicted_comparable_seconds =
      EstimateCost(strategy, dryrun, setup.engine.pipeline_depth).Comparable();
  return setup;
}

}  // namespace apt
