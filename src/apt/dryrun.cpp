#include "apt/dryrun.h"

#include <algorithm>
#include <unordered_set>

#include "core/timer.h"
#include "engine/exec_common.h"
#include "sampling/frequency.h"
#include "sampling/minibatch.h"
#include "sampling/neighbor_sampler.h"
#include "sim/sim_context.h"

namespace apt {

std::int64_t Layer0OutDim(const ModelConfig& model) {
  const bool single = model.num_layers == 1;
  if (model.kind == ModelKind::kSage) {
    return single ? model.num_classes : model.hidden_dim;
  }
  return single ? model.num_classes : model.hidden_dim * model.gat_heads;
}

namespace {

constexpr std::int64_t kF = sizeof(float);

/// Mirrors engine/exec_common AssignSeeds without needing an EngineCtx.
std::vector<std::vector<NodeId>> Assign(std::span<const NodeId> seeds,
                                        SeedAssignment assignment,
                                        const std::vector<PartId>& partition,
                                        std::int32_t c) {
  std::vector<std::vector<NodeId>> out(static_cast<std::size_t>(c));
  if (assignment == SeedAssignment::kChunked) {
    const std::size_t n = seeds.size();
    const std::size_t chunk = (n + static_cast<std::size_t>(c) - 1) / c;
    for (std::size_t dev = 0; dev < static_cast<std::size_t>(c); ++dev) {
      const std::size_t lo = std::min(n, dev * chunk);
      const std::size_t hi = std::min(n, lo + chunk);
      out[dev].assign(seeds.begin() + lo, seeds.begin() + hi);
    }
  } else {
    for (NodeId s : seeds) {
      out[static_cast<std::size_t>(partition[static_cast<std::size_t>(s)])].push_back(s);
    }
  }
  return out;
}

double SampleCost(const ClusterSpec& cluster, DeviceId dev, const SampledBatch& batch) {
  // Mirrors engine/exec_common SampleSeconds exactly: the per-seed
  // expansion multiset, not the deduplicated node lists, drives UVA
  // sampling work.
  const MachineSpec& m = cluster.machine(cluster.MachineOf(dev));
  return SampleTreeEdges(batch) * m.cpu_sample_edge_s +
         static_cast<double>(batch.blocks.size()) * m.gpu.kernel_launch_s;
}

/// Execute compute time for one device's batch: the full forward+backward
/// flop count (mirrors exec_common ChargeStepCompute with first_layer = 0;
/// the paper's strategy-independent T_train) through the device's flop rate.
double ComputeCost(const ClusterSpec& cluster, const GnnModel& probe, DeviceId dev,
                   const SampledBatch& batch) {
  const int layers =
      std::min(probe.num_layers(), static_cast<int>(batch.blocks.size()));
  double flops = 0.0;
  for (int k = 0; k < layers; ++k) {
    const Block& b = batch.blocks[static_cast<std::size_t>(k)];
    flops += probe.layer(k).ForwardFlops(b.num_src(), b.num_dst, b.num_edges()) +
             probe.layer(k).BackwardFlops(b.num_src(), b.num_dst, b.num_edges());
  }
  const auto& gpu = cluster.machine(cluster.MachineOf(dev)).gpu;
  return gpu.kernel_launch_s + flops / gpu.EffectiveFlops();
}

/// Runs one deterministic epoch of sampling under `assignment`, invoking
/// `visit(step, per-device batches)` for each step.
template <typename Visit>
void SamplingEpoch(const Dataset& ds, const EngineOptions& opts,
                   const std::vector<PartId>& partition, std::int32_t c,
                   SeedAssignment assignment, const Visit& visit) {
  NeighborSampler sampler(ds.graph, opts.fanouts);
  // Mirrors the trainer's two scheduling modes exactly: a globally shuffled
  // order sliced into chunks, or DistDGL-style partition-local queues.
  MinibatchPlan plan(ds.train_nodes, opts.batch_size_per_device, c);
  const bool partitioned = assignment == SeedAssignment::kPartition;
  const std::vector<NodeId> epoch_seeds =
      partitioned ? std::vector<NodeId>{} : plan.EpochSeeds(0);
  const std::vector<std::vector<NodeId>> queues =
      partitioned
          ? PerDeviceEpochQueues(ds.train_nodes, partition, c, /*epoch=*/0)
          : std::vector<std::vector<NodeId>>{};
  const std::int64_t steps =
      partitioned ? QueueStepsPerEpoch(queues, opts.batch_size_per_device)
                  : plan.StepsPerEpoch();
  Rng epoch_rng = Rng(opts.sample_seed).Fork(0);
  for (std::int64_t step = 0; step < steps; ++step) {
    std::vector<std::vector<NodeId>> per_device;
    if (partitioned) {
      per_device.resize(queues.size());
      for (std::size_t dq = 0; dq < queues.size(); ++dq) {
        const auto slice =
            QueueStepSlice(queues[dq], step, opts.batch_size_per_device);
        per_device[dq].assign(slice.begin(), slice.end());
      }
    } else {
      const std::vector<NodeId> step_seeds = plan.StepSeeds(epoch_seeds, step);
      per_device = Assign(step_seeds, assignment, partition, c);
    }
    Rng step_rng = epoch_rng.Fork(static_cast<std::uint64_t>(step));
    std::vector<SampledBatch> batches(static_cast<std::size_t>(c));
    for (std::int32_t dev = 0; dev < c; ++dev) {
      Rng dev_rng = step_rng.Fork(static_cast<std::uint64_t>(dev));
      batches[static_cast<std::size_t>(dev)] =
          sampler.Sample(per_device[static_cast<std::size_t>(dev)], dev_rng);
    }
    visit(step, batches);
  }
}

}  // namespace

DryRunResult DryRun(const Dataset& dataset, const ClusterSpec& cluster,
                    const std::vector<PartId>& partition, const EngineOptions& opts,
                    const ModelConfig& model) {
  WallTimer wall;
  DryRunResult res;
  const std::int32_t c = cluster.num_devices();
  const std::int64_t d = dataset.feature_dim();
  const std::int64_t d1 = Layer0OutDim(model);
  const bool gat = model.kind == ModelKind::kGat;
  res.profile = opts.sim.scale_mode == ScaleMode::kScale
                    ? ProfileCommunicationAnalytic(cluster)
                    : ProfileCommunication(cluster);
  // Parameter-carrying probe for the compute half of the overlap-aware cost
  // model (flop counting only; nothing is ever run through it).
  const GnnModel probe(model);

  // ---- Pass 1 (chunked): node access frequencies. --------------------------
  FrequencyCollector freq(dataset.graph.num_nodes());
  SamplingEpoch(dataset, opts, partition, c, SeedAssignment::kChunked,
                [&](std::int64_t, const std::vector<SampledBatch>& batches) {
                  for (const auto& b : batches) freq.Record(b);
                });
  res.hotness.assign(freq.counts().begin(), freq.counts().end());

  // ---- Cache configuration per strategy (paper §3.2 cache rules). ----------
  for (Strategy s : kAllStrategies) {
    CachePolicyInput in;
    in.strategy = s;
    in.budget_bytes_per_device = opts.cache_bytes_per_device;
    in.feature_dim = d;
    in.num_devices = c;
    in.hotness = res.hotness;
    in.partition = partition;
    in.graph = &dataset.graph;
    in.storage_codec = opts.storage_codec;
    res.caches[static_cast<std::size_t>(s)] = ConfigureCache(in);
  }

  // Scratch store per strategy for tier classification (CountGather only).
  SimContext scratch(cluster);
  const std::vector<MachineId> placement =
      FeaturePlacementFromPartition(partition, cluster);
  std::array<std::unique_ptr<FeatureStore>, kNumStrategies> stores;
  for (Strategy s : kAllStrategies) {
    const auto i = static_cast<std::size_t>(s);
    stores[i] = std::make_unique<FeatureStore>(dataset.features, placement, scratch);
    // Byte accounting only (CountGather / LoadSeconds): no rounded copy.
    stores[i]->SetStorageCodec(opts.storage_codec, /*materialize=*/false);
    stores[i]->ConfigureCaches(res.caches[i].cache_nodes,
                               res.caches[i].bytes_per_cached_row);
  }
  for (auto& st : res.per_strategy) {
    st.load.assign(static_cast<std::size_t>(c), LoadVolume{});
  }
  auto& gdp = res.per_strategy[static_cast<std::size_t>(Strategy::kGDP)];
  auto& nfp = res.per_strategy[static_cast<std::size_t>(Strategy::kNFP)];
  auto& snp = res.per_strategy[static_cast<std::size_t>(Strategy::kSNP)];
  auto& dnp = res.per_strategy[static_cast<std::size_t>(Strategy::kDNP)];

  // ---- Pass 2 (chunked): GDP + NFP volumes. ---------------------------------
  const std::int64_t slice = std::max<std::int64_t>(1, d / c);
  SamplingEpoch(dataset, opts, partition, c, SeedAssignment::kChunked,
                [&](std::int64_t, const std::vector<SampledBatch>& batches) {
    std::int64_t nfp_graph_bytes = 0;
    std::vector<std::int64_t> nfp_transient(static_cast<std::size_t>(c), 0);
    double step_sample_max = 0.0;
    double step_compute_max = 0.0;
    double gdp_step_load = 0.0;
    std::vector<LoadVolume> nfp_step_vol(static_cast<std::size_t>(c));
    for (std::int32_t dev = 0; dev < c; ++dev) {
      const SampledBatch& b = batches[static_cast<std::size_t>(dev)];
      // The slowest device bounds each step (the trainer synchronizes at
      // every collective), so the epoch estimate sums per-step maxima.
      step_sample_max = std::max(step_sample_max, SampleCost(cluster, dev, b));
      step_compute_max = std::max(step_compute_max, ComputeCost(cluster, probe, dev, b));
      const Block& b0 = b.blocks.front();
      // GDP: the device loads its own input features at full width.
      const LoadVolume gdp_step =
          stores[static_cast<std::size_t>(Strategy::kGDP)]->CountGather(
              dev, b0.src_nodes, 0, d);
      gdp.load[static_cast<std::size_t>(dev)].Add(gdp_step);
      gdp_step_load = std::max(
          gdp_step_load,
          stores[static_cast<std::size_t>(Strategy::kGDP)]->LoadSeconds(dev, gdp_step));
      gdp.peak_transient_bytes = std::max(gdp.peak_transient_bytes,
                                          2 * b0.num_src() * d * kF);
      // NFP: graph broadcast + every device loads its slice of this graph.
      nfp_graph_bytes += b0.bytes();
      for (std::int32_t g = 0; g < c; ++g) {
        const LoadVolume nfp_step =
            stores[static_cast<std::size_t>(Strategy::kNFP)]->CountGather(
                g, b0.src_nodes, 0, slice);
        nfp.load[static_cast<std::size_t>(g)].Add(nfp_step);
        nfp_step_vol[static_cast<std::size_t>(g)].Add(nfp_step);
        nfp_transient[static_cast<std::size_t>(g)] +=
            b0.num_src() * slice * kF +
            (gat ? b0.num_src() * d1 * kF : b0.num_dst * d1 * kF);
      }
      // NFP hidden shuffle rows (fwd reduce + bwd broadcast).
      nfp.shuffle_rows += gat ? b0.num_src() : b0.num_dst;
    }
    gdp.sample_seconds += step_sample_max;
    nfp.sample_seconds += step_sample_max;
    gdp.train_compute_seconds += step_compute_max;
    nfp.train_compute_seconds += step_compute_max;
    gdp.load_seconds += gdp_step_load;
    double nfp_step_load = 0.0;
    for (std::int32_t g = 0; g < c; ++g) {
      nfp_step_load = std::max(
          nfp_step_load, stores[static_cast<std::size_t>(Strategy::kNFP)]->LoadSeconds(
                             g, nfp_step_vol[static_cast<std::size_t>(g)]));
    }
    nfp.load_seconds += nfp_step_load;
    nfp.graph_shuffle_bytes += nfp_graph_bytes;
    for (std::int32_t g = 0; g < c; ++g) {
      nfp.peak_transient_bytes = std::max(nfp.peak_transient_bytes,
                                          nfp_transient[static_cast<std::size_t>(g)]);
    }
  });

  // ---- Pass 3 (partition): SNP + DNP volumes. -------------------------------
  std::vector<std::int64_t> snp_dev_rows(static_cast<std::size_t>(c), 0);
  std::vector<std::int64_t> dnp_dev_rows(static_cast<std::size_t>(c), 0);
  std::int64_t snp_step_rows_sum = 0;  // sum over steps of the busiest device
  std::int64_t dnp_step_rows_sum = 0;
  SamplingEpoch(dataset, opts, partition, c, SeedAssignment::kPartition,
                [&](std::int64_t, const std::vector<SampledBatch>& batches) {
    // Per-step, per-owner gather lists. Both SNP and DNP owners gather once
    // per arriving batch, deduplicated within each origin's batch only — the
    // same semantics as the executors (and DGL's per-block feature loading).
    std::vector<std::vector<NodeId>> snp_gather(static_cast<std::size_t>(c));
    std::vector<std::vector<NodeId>> dnp_gather(static_cast<std::size_t>(c));
    std::vector<std::unordered_set<NodeId>> dnp_seen(static_cast<std::size_t>(c));
    std::vector<std::unordered_set<NodeId>> snp_seen(static_cast<std::size_t>(c));
    std::vector<std::int64_t> step_rows_snp(static_cast<std::size_t>(c), 0);
    std::vector<std::int64_t> step_rows_dnp(static_cast<std::size_t>(c), 0);
    double step_sample_max = 0.0;
    double step_compute_max = 0.0;
    for (std::int32_t o = 0; o < c; ++o) {
      step_sample_max =
          std::max(step_sample_max,
                   SampleCost(cluster, o, batches[static_cast<std::size_t>(o)]));
      step_compute_max =
          std::max(step_compute_max,
                   ComputeCost(cluster, probe, o, batches[static_cast<std::size_t>(o)]));
    }
    snp.sample_seconds += step_sample_max;
    dnp.sample_seconds += step_sample_max;
    snp.train_compute_seconds += step_compute_max;
    dnp.train_compute_seconds += step_compute_max;
    for (std::int32_t o = 0; o < c; ++o) {
      const SampledBatch& b = batches[static_cast<std::size_t>(o)];
      const Block& b0 = b.blocks.front();
      for (auto& seen : dnp_seen) seen.clear();
      for (auto& seen : snp_seen) seen.clear();
      if (gat) {
        // SNP+GAT: every layer-1 source's z row comes from its owner.
        for (std::int64_t i = 0; i < b0.num_src(); ++i) {
          const NodeId v = b0.src_nodes[static_cast<std::size_t>(i)];
          const auto g = static_cast<std::size_t>(partition[static_cast<std::size_t>(v)]);
          snp_gather[g].push_back(v);
          snp.graph_shuffle_bytes += static_cast<std::int64_t>(g) == o ? 0 : 8;
          if (static_cast<std::int64_t>(g) != o) {
            snp.shuffle_rows += 1;
            ++step_rows_snp[g];
          }
        }
      }
      std::vector<std::uint8_t> touched(static_cast<std::size_t>(c), 0);
      for (std::int64_t i = 0; i < b0.num_dst; ++i) {
        const NodeId dst = b0.src_nodes[static_cast<std::size_t>(i)];
        const auto dst_owner =
            static_cast<std::size_t>(partition[static_cast<std::size_t>(dst)]);
        const std::int64_t deg = b0.indptr[static_cast<std::size_t>(i) + 1] -
                                 b0.indptr[static_cast<std::size_t>(i)];
        std::fill(touched.begin(), touched.end(), 0);
        for (std::int64_t e = b0.indptr[static_cast<std::size_t>(i)];
             e < b0.indptr[static_cast<std::size_t>(i) + 1]; ++e) {
          const NodeId u = b0.src_nodes[static_cast<std::size_t>(
              b0.col[static_cast<std::size_t>(e)])];
          const auto g = static_cast<std::size_t>(partition[static_cast<std::size_t>(u)]);
          touched[g] = 1;
          if (!gat) {
            if (snp_seen[g].insert(u).second) snp_gather[g].push_back(u);
            if (static_cast<std::int64_t>(g) != o) snp.graph_shuffle_bytes += 8;
          }
          // DNP ships the full edge list to the destination's owner.
          if (dnp_seen[dst_owner].insert(u).second) {
            dnp_gather[dst_owner].push_back(u);
          }
          if (dst_owner != static_cast<std::size_t>(o)) dnp.graph_shuffle_bytes += 8;
        }
        touched[dst_owner] = 1;  // self term / destination row
        if (!gat && snp_seen[dst_owner].insert(dst).second) {
          snp_gather[dst_owner].push_back(dst);
        }
        if (dnp_seen[dst_owner].insert(dst).second) dnp_gather[dst_owner].push_back(dst);
        if (!gat) {
          // One SNP virtual node per (dst, owner-with-sources) pair.
          for (std::size_t g = 0; g < static_cast<std::size_t>(c); ++g) {
            if (!touched[g]) continue;
            snp.graph_shuffle_bytes += static_cast<std::int64_t>(g) == o ? 0 : 3 * 8;
            if (static_cast<std::int64_t>(g) != o) {
              snp.shuffle_rows += 1;
              ++step_rows_snp[g];
            }
          }
        }
        // One DNP virtual node per remotely-owned destination.
        dnp.graph_shuffle_bytes += dst_owner == static_cast<std::size_t>(o) ? 0 : 2 * 8;
        if (dst_owner != static_cast<std::size_t>(o)) {
          dnp.shuffle_rows += 1;
          ++step_rows_dnp[dst_owner];
        }
      }
    }
    double snp_step_load = 0.0, dnp_step_load = 0.0;
    for (std::int32_t g = 0; g < c; ++g) {
      const auto gi = static_cast<std::size_t>(g);
      const LoadVolume snp_step =
          stores[static_cast<std::size_t>(Strategy::kSNP)]->CountGather(
              g, snp_gather[gi], 0, d);
      const LoadVolume dnp_step =
          stores[static_cast<std::size_t>(Strategy::kDNP)]->CountGather(
              g, dnp_gather[gi], 0, d);
      snp.load[gi].Add(snp_step);
      dnp.load[gi].Add(dnp_step);
      snp_step_load = std::max(
          snp_step_load,
          stores[static_cast<std::size_t>(Strategy::kSNP)]->LoadSeconds(g, snp_step));
      dnp_step_load = std::max(
          dnp_step_load,
          stores[static_cast<std::size_t>(Strategy::kDNP)]->LoadSeconds(g, dnp_step));
      snp.peak_transient_bytes =
          std::max(snp.peak_transient_bytes,
                   2 * static_cast<std::int64_t>(snp_gather[gi].size()) * d * kF);
      dnp.peak_transient_bytes =
          std::max(dnp.peak_transient_bytes,
                   2 * static_cast<std::int64_t>(dnp_gather[gi].size()) * d * kF);
      snp_dev_rows[gi] += step_rows_snp[gi];
      dnp_dev_rows[gi] += step_rows_dnp[gi];
      dnp_seen[gi].clear();
    }
    snp.load_seconds += snp_step_load;
    dnp.load_seconds += dnp_step_load;
    snp_step_rows_sum +=
        *std::max_element(step_rows_snp.begin(), step_rows_snp.end());
    dnp_step_rows_sum +=
        *std::max_element(step_rows_dnp.begin(), step_rows_dnp.end());
  });

  // ---- Convert volumes to seconds with the profiled operator speeds. -------
  const double atob = res.profile.alltoall_bytes_per_s;
  const double arb = res.profile.allreduce_bytes_per_s;
  const double bcb = res.profile.broadcast_bytes_per_s;
  // Per-collective latency terms: the execution engine issues blocking
  // collectives every step, so their fixed costs scale with step count, not
  // bytes. A serialized all-to-all pays (C-1) point-to-point latencies; a
  // ring pays (C-1) hop latencies.
  const std::int64_t steps =
      MinibatchPlan(dataset.train_nodes, opts.batch_size_per_device, c)
          .StepsPerEpoch();
  const MachineSpec& m0 = cluster.machines.front();
  const LinkSpec intra = m0.has_nvlink ? m0.nvlink : m0.pcie;
  const double hop_lat =
      cluster.num_machines() > 1 ? cluster.network.latency_s : intra.latency_s;
  const double coll_lat = static_cast<double>(c - 1) * hop_lat;
  // SNP/DNP: graph shuffle (1 all-to-all); hidden shuffle fwd + bwd (2).
  // NFP: graph broadcast (1); C forward allreduces + 1 grad broadcast.
  const double atoa_graph_lat = static_cast<double>(steps) * coll_lat;
  const double atoa_shuffle_lat = 2.0 * static_cast<double>(steps) * coll_lat;
  const double nfp_shuffle_lat = static_cast<double>(steps) * (c + 1) * coll_lat;
  // load_seconds was accumulated as a sum of per-step maxima above (the
  // slowest device bounds every step because the engine's collectives are
  // blocking), matching the trainer's phase accounting.
  // Graph shuffles: NFP broadcast, SNP/DNP all-to-all.
  nfp.graph_shuffle_seconds =
      (bcb > 0 ? static_cast<double>(nfp.graph_shuffle_bytes) / bcb : 0.0) +
      static_cast<double>(steps) * coll_lat;
  snp.graph_shuffle_seconds =
      (atob > 0 ? static_cast<double>(snp.graph_shuffle_bytes) / (atob * c) : 0.0) +
      atoa_graph_lat;
  dnp.graph_shuffle_seconds =
      (atob > 0 ? static_cast<double>(dnp.graph_shuffle_bytes) / (atob * c) : 0.0) +
      atoa_graph_lat;
  // Hidden-embedding shuffles (forward + backward => factor 2; paper's 2d').
  // These are float-tensor collectives, so the wire codec shrinks what the
  // links carry (CodecDenseRatio at the embedding width) and adds an
  // encode + decode memory pass per transfer (codec_seconds). The identity
  // codec has ratio 1 and zero codec compute — same numbers as before.
  const double wire_ratio = CodecDenseRatio(opts.wire_codec, d1);
  const double mem_bw = m0.gpu.mem_bandwidth_bytes_per_s;
  const bool wire_compresses = opts.wire_codec != Codec::kIdentity;
  nfp.shuffle_bytes = 2 * nfp.shuffle_rows * d1 * kF * c;  // 2 d' C N_d
  // Forward: ring allreduce of the partial embeddings; backward: allgather
  // (broadcast) of the destination gradients — each at its own profiled
  // operator speed, exactly as the engine issues them.
  const double nfp_vol = static_cast<double>(nfp.shuffle_rows) * d1 * kF;
  nfp.shuffle_seconds = (arb > 0 ? nfp_vol * wire_ratio / arb : 0.0) +
                        (bcb > 0 ? nfp_vol * wire_ratio / bcb : 0.0) +
                        nfp_shuffle_lat;
  nfp.codec_seconds = wire_compresses ? 2.0 * 2.0 * nfp_vol / mem_bw : 0.0;
  const std::int64_t snp_max_rows = snp_step_rows_sum;
  const std::int64_t dnp_max_rows = dnp_step_rows_sum;
  snp.shuffle_bytes = 2 * snp.shuffle_rows * d1 * kF;  // 2 d' N_vs
  dnp.shuffle_bytes = 2 * dnp.shuffle_rows * d1 * kF;  // 2 d' N_vd
  for (auto& st : res.per_strategy) {
    st.shuffle_wire_bytes =
        static_cast<std::int64_t>(static_cast<double>(st.shuffle_bytes) * wire_ratio);
  }
  snp.shuffle_seconds =
      (atob > 0 ? 2.0 * static_cast<double>(snp_max_rows) * d1 * kF * wire_ratio / atob
                : 0.0) +
      atoa_shuffle_lat;
  dnp.shuffle_seconds =
      (atob > 0 ? 2.0 * static_cast<double>(dnp_max_rows) * d1 * kF * wire_ratio / atob
                : 0.0) +
      atoa_shuffle_lat;
  snp.codec_seconds = wire_compresses
                          ? 2.0 * 2.0 * static_cast<double>(snp_max_rows) * d1 * kF / mem_bw
                          : 0.0;
  dnp.codec_seconds = wire_compresses
                          ? 2.0 * 2.0 * static_cast<double>(dnp_max_rows) * d1 * kF / mem_bw
                          : 0.0;
  // Serial per-step train tail for the pipelined cost model: the gradient
  // ring-allreduce needs every micro-batch's gradients and the optimizer
  // runs after it, so neither overlaps at any pipeline depth. Optimizer
  // flops mirror the trainer's nominal 2 flops per parameter.
  const double param_bytes = static_cast<double>(probe.ParamBytes());
  const double opt_s =
      m0.gpu.kernel_launch_s + (2.0 * param_bytes / 4.0) / m0.gpu.EffectiveFlops();
  // Gradient codec: the DDP allreduce carries post-codec bytes (for the
  // delta codec this is the shape-only worst case — the dry-run cannot see
  // gradient sparsity) plus an encode/decode pass per step.
  const double grad_wire_bytes = static_cast<double>(CodecWireBytes(
      opts.grad_codec, 1, static_cast<std::int64_t>(param_bytes) / kF));
  const double grad_xcode = opts.grad_codec != Codec::kIdentity
                                ? 2.0 * param_bytes / mem_bw
                                : 0.0;
  res.train_fixed_seconds =
      static_cast<double>(steps) *
      ((arb > 0 ? grad_wire_bytes / arb : 0.0) + coll_lat + opt_s + grad_xcode);
  // Canonical quantized layer-0 backward (GDP/DNP under a lossy wire codec
  // on multi-layer SAGE): three extra double allreduces per step — grid
  // stats, dst counts, and the full layer-0 parameter-grad accumulator.
  if (CodecIsLossy(opts.wire_codec) && model.kind == ModelKind::kSage &&
      model.num_layers >= 2) {
    const double acc_bytes =
        static_cast<double>((2 * d * d1 + d1) + 2 + 1) * sizeof(double);
    res.quantized_sync_seconds =
        static_cast<double>(steps) *
        ((arb > 0 ? acc_bytes / arb : 0.0) + 3.0 * coll_lat);
  }

  // ---- Memory feasibility. ---------------------------------------------------
  const std::int64_t device_mem = cluster.machines.front().gpu.memory_bytes;
  for (Strategy s : kAllStrategies) {
    auto& st = res.per_strategy[static_cast<std::size_t>(s)];
    const auto& cache = res.caches[static_cast<std::size_t>(s)];
    std::int64_t cache_bytes = 0;
    for (const auto& nodes : cache.cache_nodes) {
      cache_bytes = std::max(cache_bytes,
                             static_cast<std::int64_t>(nodes.size()) *
                                 cache.bytes_per_cached_row);
    }
    st.fits_memory = cache_bytes + st.peak_transient_bytes <= device_mem;
  }

  res.wall_seconds = wall.Seconds();
  return res;
}

}  // namespace apt
