// Adapter: configures the unified execution engine for a chosen strategy
// (paper's "Adapt" stage) — seed assignment, cache layout, feature
// placement, and the communication operators implied by the strategy.
#pragma once

#include <optional>

#include "apt/planner.h"
#include "engine/trainer.h"

namespace apt {

/// Builds a ready-to-run TrainerSetup for `strategy`, reusing the dry-run's
/// cache configuration (the global feature map of §4.2). `assignment` pins
/// the seed-assignment policy instead of the strategy default — the recovery
/// layer uses this so a mid-training strategy swap keeps the minibatch
/// sequence (and hence the learning trajectory) unchanged.
TrainerSetup BuildTrainerSetup(const ClusterSpec& cluster, const ModelConfig& model,
                               const EngineOptions& base_opts,
                               const std::vector<PartId>& partition,
                               const DryRunResult& dryrun, Strategy strategy,
                               std::optional<SeedAssignment> assignment = std::nullopt);

}  // namespace apt
