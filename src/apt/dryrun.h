// Dry-run: the data-dependent half of APT's "Plan" stage (paper §3.2).
//
// One epoch of graph sampling is performed per seed-assignment family and
// the samples are routed through each strategy's Permute logic WITHOUT
// loading features, shuffling embeddings, or computing — only volumes are
// collected:
//   * node access frequencies (drives the cache configuration),
//   * computation-graph shuffle bytes (the strategy part of T_build),
//   * per-device feature-load volumes by memory tier (T_load),
//   * hidden-embedding shuffle rows/bytes (T_shuffle),
//   * estimated transient memory (feasibility, e.g. NFP+GAT OOM).
//
// Sampling passes are deterministic (Rng-seeded), so the subsequent cache
// tier classification replays exactly the samples used for counting.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "comm/profiler.h"
#include "core/types.h"
#include "engine/engine_types.h"
#include "feature/cache_policy.h"
#include "feature/feature_store.h"
#include "graph/dataset.h"
#include "model/gnn_model.h"
#include "sim/hardware.h"

namespace apt {

/// Per-strategy dry-run measurements for one epoch.
struct StrategyDryRun {
  double sample_seconds = 0.0;         ///< graph sampling (max over devices)
  std::int64_t graph_shuffle_bytes = 0;  ///< computation-graph wire bytes
  double graph_shuffle_seconds = 0.0;
  std::vector<LoadVolume> load;        ///< per device
  double load_seconds = 0.0;           ///< max over devices
  std::int64_t shuffle_rows = 0;       ///< hidden-embedding rows moved (epoch)
  std::int64_t shuffle_bytes = 0;      ///< logical fp32, incl. fwd + bwd
  std::int64_t shuffle_wire_bytes = 0;  ///< post-wire-codec bytes on the links
  double shuffle_seconds = 0.0;
  /// Wire-codec encode/decode compute for this strategy's embedding
  /// shuffles (memory-bound passes over the logical payload; zero under the
  /// identity codec). Load-side decode is already inside load_seconds.
  double codec_seconds = 0.0;
  std::int64_t peak_transient_bytes = 0;  ///< max over devices, per step
  /// Execute compute for the epoch: per-step max over devices of the full
  /// forward+backward flop time, summed over steps. Strategy-independent in
  /// the paper's model (T_train), but measured per seed-assignment family so
  /// the pipelined cost model can overlap it against that family's comm.
  double train_compute_seconds = 0.0;
  bool fits_memory = true;

  double ComparableSeconds() const {
    return sample_seconds + graph_shuffle_seconds + load_seconds + shuffle_seconds;
  }
};

struct DryRunResult {
  std::vector<std::int64_t> hotness;  ///< global access counts per node
  std::array<StrategyDryRun, kNumStrategies> per_strategy;
  std::array<CacheConfig, kNumStrategies> caches;
  CommProfile profile;
  /// Per-epoch serial step tail that no pipeline depth can hide: the
  /// gradient ring-allreduce (needs every micro-batch's gradients) plus the
  /// optimizer update. Strategy-independent; used by the overlap-aware
  /// CostEstimate::Comparable() at pipeline_depth > 1.
  double train_fixed_seconds = 0.0;
  /// Extra per-epoch collective time of the canonical quantized layer-0
  /// backward (three double allreduces per step). Zero unless the wire codec
  /// is lossy and the model is multi-layer SAGE; charged to the strategies
  /// that run the quantized path (GDP, DNP) by EstimateCost.
  double quantized_sync_seconds = 0.0;
  double wall_seconds = 0.0;  ///< host time spent on the dry-run itself
};

DryRunResult DryRun(const Dataset& dataset, const ClusterSpec& cluster,
                    const std::vector<PartId>& partition, const EngineOptions& opts,
                    const ModelConfig& model);

/// Output dimension of the first (distributed) layer for the cost model.
std::int64_t Layer0OutDim(const ModelConfig& model);

}  // namespace apt
