#include "apt/apt_system.h"

#include "core/logging.h"

namespace apt {

AptSystem::AptSystem(const Dataset& dataset, ClusterSpec cluster, ModelConfig model,
                     EngineOptions opts, Partitioner* partitioner)
    : dataset_(&dataset),
      cluster_(std::move(cluster)),
      model_(model),
      opts_(opts) {
  if (model_.input_dim == 0) model_.input_dim = dataset.feature_dim();
  if (model_.num_classes == 0) model_.num_classes = dataset.num_classes;
  if (partitioner != nullptr) {
    partition_ = partitioner->Partition(dataset.graph, cluster_.num_devices());
  } else {
    MultilevelPartitioner ml;
    partition_ = ml.Partition(dataset.graph, cluster_.num_devices());
  }
}

const PlanReport& AptSystem::Plan() {
  if (!planned_) {
    report_ = MakePlan(*dataset_, cluster_, partition_, opts_, model_);
    planned_ = true;
  }
  return report_;
}

std::unique_ptr<ParallelTrainer> AptSystem::MakeTrainer(
    Strategy strategy, std::optional<SeedAssignment> assignment) {
  Plan();
  TrainerSetup setup = BuildTrainerSetup(cluster_, model_, opts_, partition_,
                                         report_.dryrun, strategy, assignment);
  return std::make_unique<ParallelTrainer>(*dataset_, std::move(setup));
}

std::vector<EpochStats> AptSystem::Run(int epochs) {
  Plan();
  auto trainer = MakeTrainer(report_.selected);
  std::vector<EpochStats> stats;
  stats.reserve(static_cast<std::size_t>(epochs));
  for (int e = 0; e < epochs; ++e) {
    stats.push_back(trainer->TrainEpoch(e));
    APT_LOG_DEBUG << "epoch " << e << " loss " << stats.back().loss << " sim "
                  << stats.back().sim_seconds << "s";
  }
  return stats;
}

}  // namespace apt
