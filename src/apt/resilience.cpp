#include "apt/resilience.h"

#include "apt/cost_model.h"
#include "comm/profiler.h"
#include "core/logging.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/slo.h"

namespace apt {

namespace {

// Watchdog rules for a runner that configured none: per-device busy time in
// any telemetry window must stay under 1.5x the mean across devices. This is
// the pure straggler signal — barrier waits equalize the raw clocks, so only
// busy (non-comm) time separates a drifted device from its peers.
std::vector<obs::SloRule> DefaultSloRules() {
  obs::SloRule skew;
  skew.name = "device_busy_skew";
  skew.series = "train.device.busy_s";
  skew.stat = obs::SloStat::kSkew;
  skew.cmp = obs::SloCmp::kLt;
  skew.bound = 1.5;
  skew.min_count = 2;  // skew is meaningless with fewer than 2 samples
  return {skew};
}

}  // namespace

ResilientRunner::ResilientRunner(AptSystem& system, ResilienceOptions opts)
    : system_(&system), opts_(std::move(opts)) {}

ResilienceReport ResilientRunner::Run(int epochs) {
  const PlanReport& plan = system_->Plan();
  system_->options().recovery = opts_.recovery;
  current_ = plan.selected;
  trainer_ = system_->MakeTrainer(current_);
  pinned_assignment_ = trainer_->setup().engine.seed_assignment;
  trainer_->sim().InstallFaults(opts_.faults);
  faults_seen_ = 0;

  // The watchdog reads the trainer's telemetry windows (busy skew by
  // default) and forces a re-plan evaluation even when no fault or timeout
  // has been observed — the "silent straggler" path. Window closure is
  // evaluated here, between epochs on one thread, so firing is
  // deterministic for a fixed fault seed.
  obs::SloWatchdog watchdog(opts_.slo_rules.empty() ? DefaultSloRules()
                                                   : opts_.slo_rules);
  bool slo_fired = false;
  watchdog.set_callback([&slo_fired](const obs::SloViolation&) {
    slo_fired = true;
    obs::Metrics::Global().counter("replan.slo_trigger").Increment();
  });

  ResilienceReport report;
  report.epochs.reserve(static_cast<std::size_t>(epochs));
  for (int e = 0; e < epochs; ++e) {
    report.strategy_per_epoch.push_back(current_);
    report.epochs.push_back(trainer_->TrainEpoch(e));
    if (e + 1 >= epochs) break;
    slo_fired = false;
    if (opts_.replan_on_slo) watchdog.Evaluate(trainer_->sim().MaxNow());
    if (opts_.replan_on_degradation || slo_fired) {
      MaybeReplan(report, /*force=*/slo_fired);
    }
  }
  const RecoveryStats& rs = trainer_->recovery_stats();
  report.recovery.collective_failures += rs.collective_failures;
  report.recovery.retries += rs.retries;
  report.recovery.giveups += rs.giveups;
  report.recovery.step_timeouts += rs.step_timeouts;
  report.final_sim_seconds = trainer_->sim().MaxNow();
  return report;
}

void ResilientRunner::MaybeReplan(ResilienceReport& report, bool force) {
  SimContext& sim = trainer_->sim();
  const double now = sim.MaxNow();
  // Only reconsider when something actually degraded this epoch: a fault
  // was newly observed, a step timed out, the plan says a fault window
  // covers the current simulated time — or the SLO watchdog forced us.
  const std::int64_t seen = sim.FaultsObserved();
  const bool active = force || seen > faults_seen_ ||
                      trainer_->recovery_stats().step_timeouts > 0 ||
                      opts_.faults.AnyDegradationAt(now);
  faults_seen_ = seen;
  if (!active) return;

  ++report.replans;
  obs::Metrics::Global().counter("replan.count").Increment();
  // Measure post-fault operator speeds as of the current simulated instant
  // and re-run strategy selection on the dry-run volumes.
  const CommProfile degraded =
      trainer_->setup().engine.sim.scale_mode == ScaleMode::kScale
          ? ProfileCommunicationAnalytic(trainer_->setup().cluster, opts_.faults, now)
          : ProfileCommunication(trainer_->setup().cluster, opts_.faults, now);
  const auto estimates =
      ReestimateWithProfile(system_->Plan().dryrun, degraded,
                            trainer_->setup().engine.pipeline_depth);
  const Strategy candidate = SelectStrategy(estimates);
  const double cur_cost =
      estimates[static_cast<std::size_t>(current_)].Comparable();
  const double new_cost =
      estimates[static_cast<std::size_t>(candidate)].Comparable();
  obs::Metrics::Global().gauge("replan.current_cost_s").Set(cur_cost);
  obs::Metrics::Global().gauge("replan.best_cost_s").Set(new_cost);
  if (candidate == current_ || cur_cost <= 0.0 ||
      (cur_cost - new_cost) / cur_cost < opts_.min_replan_improvement) {
    APT_LOG_DEBUG << "replan: staying on " << ToString(current_) << " (best "
                  << ToString(candidate) << " " << new_cost << "s vs " << cur_cost
                  << "s)";
    return;
  }

  APT_LOG_INFO << "replan: switching " << ToString(current_) << " -> "
               << ToString(candidate) << " at sim t=" << now << "s ("
               << cur_cost << "s -> " << new_cost << "s predicted)";
  ++report.switches;
  obs::Metrics::Global().counter("replan.switches").Increment();
  obs::Flight().Record("replan", ToString(candidate), now,
                       {{"improvement", (cur_cost - new_cost) / cur_cost, nullptr}});
  std::unique_ptr<ParallelTrainer> next =
      system_->MakeTrainer(candidate, pinned_assignment_);
  // Carry the training state (parameters; Sgd is stateless) and the fault
  // timeline across: clocks resume at the old wall time so time-windowed
  // faults neither replay nor vanish. TrainEpoch deltas its stats, so the
  // pre-advance does not pollute epoch accounting.
  next->LoadParams(trainer_->model0());
  next->sim().InstallFaults(opts_.faults);
  for (DeviceId d = 0; d < next->sim().num_devices(); ++d) {
    next->sim().Advance(d, now, Phase::kTrain);
  }
  const RecoveryStats& rs = trainer_->recovery_stats();
  report.recovery.collective_failures += rs.collective_failures;
  report.recovery.retries += rs.retries;
  report.recovery.giveups += rs.giveups;
  report.recovery.step_timeouts += rs.step_timeouts;
  trainer_ = std::move(next);
  current_ = candidate;
  faults_seen_ = trainer_->sim().FaultsObserved();
}

}  // namespace apt
