#include "apt/planner.h"

#include "core/logging.h"

namespace apt {

PlanReport MakePlan(const Dataset& dataset, const ClusterSpec& cluster,
                    const std::vector<PartId>& partition, const EngineOptions& opts,
                    const ModelConfig& model) {
  PlanReport report;
  report.dryrun = DryRun(dataset, cluster, partition, opts, model);
  report.estimates = EstimateAll(report.dryrun, opts.pipeline_depth);
  report.selected = SelectStrategy(report.estimates);
  for (const CostEstimate& e : report.estimates) {
    APT_LOG_DEBUG << "plan: " << FormatEstimate(e);
  }
  APT_LOG_INFO << "planner selected " << ToString(report.selected) << " (dry-run "
               << report.dryrun.wall_seconds << "s host time)";
  return report;
}

}  // namespace apt
