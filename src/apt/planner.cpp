#include "apt/planner.h"

#include "core/logging.h"

namespace apt {

PlanReport MakePlan(const Dataset& dataset, const ClusterSpec& cluster,
                    const std::vector<PartId>& partition, const EngineOptions& opts,
                    const ModelConfig& model) {
  PlanReport report;
  report.dryrun = DryRun(dataset, cluster, partition, opts, model);
  report.estimates = EstimateAll(report.dryrun);

  bool found = false;
  double best = 0.0;
  for (const CostEstimate& e : report.estimates) {
    if (!e.feasible) continue;
    if (!found || e.Comparable() < best) {
      best = e.Comparable();
      report.selected = e.strategy;
      found = true;
    }
  }
  if (!found) {
    APT_LOG_WARN << "all strategies exceed device memory estimates; defaulting to GDP";
    report.selected = Strategy::kGDP;
  }
  for (const CostEstimate& e : report.estimates) {
    APT_LOG_DEBUG << "plan: " << FormatEstimate(e);
  }
  APT_LOG_INFO << "planner selected " << ToString(report.selected) << " (dry-run "
               << report.dryrun.wall_seconds << "s host time)";
  return report;
}

}  // namespace apt
