// Fault-tolerant training driver: APT's "Run" stage hardened against the
// injected fault model of apt::sim.
//
// The ResilientRunner wraps an AptSystem and drives epochs like
// AptSystem::Run, with three additions:
//   * the configured FaultPlan is installed on every trainer's SimContext
//     (stragglers, link degradation, collective failures);
//   * collective failures are absorbed by the trainer's retry/backoff loop
//     (RecoveryOptions) instead of aborting training;
//   * at each epoch boundary with observed fault activity, the degraded
//     operator speeds are re-measured (ProfileCommunication under the fault
//     plan at the current simulated time) and the cost models re-evaluated
//     (ReestimateWithProfile). If another strategy is now predicted
//     sufficiently faster, training swaps to it mid-run: parameters carry
//     over (ParallelTrainer::LoadParams), virtual clocks continue from the
//     old trainer's wall time, and the seed-assignment policy is pinned so
//     the minibatch sequence — and hence the learning trajectory — is
//     unchanged (strategy equivalence, Fig 6).
//
// Everything is driven by simulated time and the seeded fault plan, so a
// chaotic run is bit-reproducible for a fixed seed.
#pragma once

#include <memory>
#include <vector>

#include "apt/apt_system.h"
#include "obs/slo.h"
#include "sim/fault.h"

namespace apt {

struct ResilienceOptions {
  FaultPlan faults;  ///< installed on every trainer (may be Empty())
  /// Step-level recovery knobs forwarded into every trainer's EngineOptions.
  RecoveryOptions recovery{.retry_collectives = true};
  /// Re-evaluate the strategy choice at epoch boundaries that saw fault
  /// activity (fault observations or retries during the epoch).
  bool replan_on_degradation = true;
  /// Swap strategies only when the re-estimate predicts at least this
  /// relative improvement over staying put (hysteresis against thrash).
  double min_replan_improvement = 0.05;
  /// Evaluate SLO rules against the trainer's telemetry windows at every
  /// epoch boundary; a fired violation FORCES a re-plan evaluation even when
  /// no fault/timeout signal has been observed — how a silent straggler
  /// (drifted hardware, no injected fault event) still triggers adaptation.
  bool replan_on_slo = true;
  /// Rules the runner's watchdog evaluates. Empty: one default rule,
  /// "train.device.busy_s skew < 1.5" — per-device busy skew within a
  /// window must stay under 1.5x the mean.
  std::vector<obs::SloRule> slo_rules;
};

struct ResilienceReport {
  std::vector<EpochStats> epochs;
  std::vector<Strategy> strategy_per_epoch;  ///< strategy that ran each epoch
  int replans = 0;   ///< re-planning evaluations performed
  int switches = 0;  ///< evaluations that changed the strategy
  RecoveryStats recovery;  ///< merged over all trainers of the run
  double final_sim_seconds = 0.0;  ///< last trainer's simulated wall clock
};

class ResilientRunner {
 public:
  ResilientRunner(AptSystem& system, ResilienceOptions opts);

  /// Plan + train `epochs` epochs under the fault plan. Throws FaultError
  /// only when a collective failure exhausts the retry budget (or retries
  /// are disabled in `opts.recovery`).
  ResilienceReport Run(int epochs);

  /// The currently active trainer (last one created; valid after Run).
  ParallelTrainer& trainer() { return *trainer_; }
  Strategy current_strategy() const { return current_; }

 private:
  /// Measures post-fault speeds and re-selects; swaps trainers on a win.
  /// `force` skips the fault/timeout degradation check — used when the SLO
  /// watchdog has already decided the run is degraded (straggler drift).
  void MaybeReplan(ResilienceReport& report, bool force = false);

  AptSystem* system_;
  ResilienceOptions opts_;
  std::unique_ptr<ParallelTrainer> trainer_;
  Strategy current_ = Strategy::kGDP;
  SeedAssignment pinned_assignment_ = SeedAssignment::kChunked;
  std::int64_t faults_seen_ = 0;  ///< trainer FaultsObserved at last check
};

}  // namespace apt
