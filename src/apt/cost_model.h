// Cost models for strategy selection (paper §3.2).
//
//   T = T_build + T_load + T_shuffle + T_train
//
// T_train is identical across the (semantically equivalent) strategies, so
// only the first three terms are compared. All three come from dry-run
// volumes divided by profiled operator bandwidths (see apt/dryrun.h).
#pragma once

#include <array>
#include <string>

#include "apt/dryrun.h"
#include "core/types.h"
#include "obs/analysis.h"

namespace apt {

struct CostEstimate {
  Strategy strategy = Strategy::kGDP;
  double t_build = 0.0;    ///< sampling + computation-graph shuffles
  double t_load = 0.0;     ///< feature loading over the memory hierarchy
  double t_shuffle = 0.0;  ///< hidden-embedding (and gradient) shuffles
  double t_sample = 0.0;   ///< sampling share of t_build (compute-bound)
  double t_compute = 0.0;  ///< Execute compute — the overlap partner
  double t_fixed = 0.0;    ///< serial tail: gradient allreduce + optimizer
  /// Compression compute & sync: wire-codec encode/decode passes for this
  /// strategy's shuffles plus (GDP/DNP, lossy codecs) the canonical
  /// quantized layer-0 sync collectives. Zero under the identity codec.
  /// Rides the comm stream, so it does NOT cancel across strategies.
  double t_codec = 0.0;
  int pipeline_depth = 1;  ///< EngineOptions::pipeline_depth this was built for
  bool feasible = true;    ///< fits device memory

  /// The strategy-dependent part of the epoch time.
  ///
  /// Serial (depth <= 1): t_build + t_load + t_shuffle, exactly the paper's
  /// comparison — T_train cancels across strategies so it is omitted.
  ///
  /// Pipelined (depth > 1): the per-device comm stream overlaps every comm
  /// term except sampling (which feeds the first micro-batch) against the
  /// Execute compute, so the steady state costs max(T_comm, T_compute) and
  /// the pipeline fill/drain ramp adds one micro-batch of the hidden side,
  /// min(T_comm, T_compute) / depth (the two-op closed form of the replay
  /// scheduler). The serial tail t_fixed no longer cancels — strategies now
  /// differ in how much comm they HIDE, not how much they issue — so it is
  /// added back.
  double Comparable() const {
    if (pipeline_depth <= 1) return t_build + t_load + t_shuffle + t_codec;
    const double comm = (t_build - t_sample) + t_load + t_shuffle + t_codec;
    const double steady = comm > t_compute ? comm : t_compute;
    const double ramp =
        (comm < t_compute ? comm : t_compute) / static_cast<double>(pipeline_depth);
    return t_sample + steady + ramp + t_fixed;
  }
};

/// Builds the estimate for one strategy from its dry-run measurements.
CostEstimate EstimateCost(Strategy strategy, const DryRunResult& dryrun,
                          int pipeline_depth = 1);

/// Estimates for all strategies, in Strategy enum order.
std::array<CostEstimate, kNumStrategies> EstimateAll(const DryRunResult& dryrun,
                                                     int pipeline_depth = 1);

/// Re-derives the estimates with a freshly MEASURED (post-fault) profile,
/// without repeating the dry-run: each profile-derived term is scaled by its
/// operator's base-to-degraded speed ratio — graph shuffles by the strategy's
/// shuffle operator (NFP: broadcast; SNP/DNP: all-to-all), embedding shuffles
/// likewise (NFP blends allreduce + broadcast), and T_load by the ratio of
/// cumulative tier-weighted load times under the two profiles. Sampling time
/// is compute-bound — stragglers hit every strategy's sampling alike, so it
/// cancels in the comparison and is left unchanged. This is the recovery
/// layer's input for mid-training strategy re-selection.
std::array<CostEstimate, kNumStrategies> ReestimateWithProfile(
    const DryRunResult& dryrun, const CommProfile& degraded,
    int pipeline_depth = 1);

/// The feasible strategy with the smallest Comparable() (GDP if none fit).
Strategy SelectStrategy(const std::array<CostEstimate, kNumStrategies>& estimates);

std::string FormatEstimate(const CostEstimate& e);

/// Compares a planner estimate against what a traced run actually measured
/// (one TraceAnalysis from obs::AnalyzeEvents/AnalyzeTraceFile): t_build vs
/// the sample-phase maximum, t_load vs the load-phase maximum, t_shuffle vs
/// the train-phase communication maximum, plus the comparable totals (for a
/// pipelined estimate the measured comparable is StackedSeconds — under
/// overlap the estimate models the whole stacked epoch, not just the
/// strategy-dependent slice). The
/// returned markdown table is the cost model's residual report — the drift
/// diagnostic that shows which term went stale when a plan underperforms.
std::string FormatResidualReport(const CostEstimate& e,
                                 const obs::TraceAnalysis& measured);

}  // namespace apt
