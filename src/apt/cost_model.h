// Cost models for strategy selection (paper §3.2).
//
//   T = T_build + T_load + T_shuffle + T_train
//
// T_train is identical across the (semantically equivalent) strategies, so
// only the first three terms are compared. All three come from dry-run
// volumes divided by profiled operator bandwidths (see apt/dryrun.h).
#pragma once

#include <array>
#include <string>

#include "apt/dryrun.h"
#include "core/types.h"
#include "obs/analysis.h"

namespace apt {

struct CostEstimate {
  Strategy strategy = Strategy::kGDP;
  double t_build = 0.0;    ///< sampling + computation-graph shuffles
  double t_load = 0.0;     ///< feature loading over the memory hierarchy
  double t_shuffle = 0.0;  ///< hidden-embedding (and gradient) shuffles
  bool feasible = true;    ///< fits device memory

  /// The strategy-dependent part of the epoch time.
  double Comparable() const { return t_build + t_load + t_shuffle; }
};

/// Builds the estimate for one strategy from its dry-run measurements.
CostEstimate EstimateCost(Strategy strategy, const DryRunResult& dryrun);

/// Estimates for all strategies, in Strategy enum order.
std::array<CostEstimate, kNumStrategies> EstimateAll(const DryRunResult& dryrun);

/// Re-derives the estimates with a freshly MEASURED (post-fault) profile,
/// without repeating the dry-run: each profile-derived term is scaled by its
/// operator's base-to-degraded speed ratio — graph shuffles by the strategy's
/// shuffle operator (NFP: broadcast; SNP/DNP: all-to-all), embedding shuffles
/// likewise (NFP blends allreduce + broadcast), and T_load by the ratio of
/// cumulative tier-weighted load times under the two profiles. Sampling time
/// is compute-bound — stragglers hit every strategy's sampling alike, so it
/// cancels in the comparison and is left unchanged. This is the recovery
/// layer's input for mid-training strategy re-selection.
std::array<CostEstimate, kNumStrategies> ReestimateWithProfile(
    const DryRunResult& dryrun, const CommProfile& degraded);

/// The feasible strategy with the smallest Comparable() (GDP if none fit).
Strategy SelectStrategy(const std::array<CostEstimate, kNumStrategies>& estimates);

std::string FormatEstimate(const CostEstimate& e);

/// Compares a planner estimate against what a traced run actually measured
/// (one TraceAnalysis from obs::AnalyzeEvents/AnalyzeTraceFile): t_build vs
/// the sample-phase maximum, t_load vs the load-phase maximum, t_shuffle vs
/// the train-phase communication maximum, plus the comparable totals. The
/// returned markdown table is the cost model's residual report — the drift
/// diagnostic that shows which term went stale when a plan underperforms.
std::string FormatResidualReport(const CostEstimate& e,
                                 const obs::TraceAnalysis& measured);

}  // namespace apt
