#include "comm/profiler.h"

#include <vector>

#include "comm/collectives.h"
#include "sim/sim_context.h"
#include "tensor/tensor.h"

namespace apt {

namespace {

/// Shared implementation: when `faults` is non-null, each trial context gets
/// the plan installed (minus collective faults) and its clocks advanced to
/// `at_time_s` before the trial, so link faults active at that simulated
/// time degrade the measured speeds.
CommProfile ProfileImpl(const ClusterSpec& cluster, std::int64_t trial_bytes,
                        const FaultPlan* faults, double at_time_s, bool analytic) {
  CommProfile profile;
  const std::int32_t c = cluster.num_devices();
  const std::int64_t cols = 64;
  const std::int64_t rows =
      std::max<std::int64_t>(1, trial_bytes / (cols * static_cast<std::int64_t>(sizeof(float))));
  const SimOptions sim_options{analytic ? ScaleMode::kScale : ScaleMode::kOff};

  const auto prepare = [&](SimContext& ctx) {
    if (faults == nullptr) return;
    ctx.InstallFaults(faults->WithoutCollectiveFaults());
    for (DeviceId d = 0; d < c; ++d) ctx.Advance(d, at_time_s, Phase::kTrain);
  };
  const auto elapsed = [&](const SimContext& ctx) {
    return std::max(1e-12, ctx.MaxNow() - (faults != nullptr ? at_time_s : 0.0));
  };

  // --- AllToAll: every device sends rows/C to every peer. -----------------
  {
    SimContext ctx(cluster, sim_options);
    prepare(ctx);
    Communicator comm(ctx);
    const std::int64_t rows_per_peer = std::max<std::int64_t>(1, rows / std::max(1, c));
    if (analytic) {
      std::vector<std::vector<Communicator::TensorShape>> parts(
          static_cast<std::size_t>(c));
      for (std::int32_t i = 0; i < c; ++i) {
        for (std::int32_t j = 0; j < c; ++j) {
          parts[static_cast<std::size_t>(i)].push_back(
              {i == j ? 0 : rows_per_peer, cols});
        }
      }
      comm.AllToAllTensorShapes(parts, Phase::kTrain);
    } else {
      std::vector<std::vector<Tensor>> parts(static_cast<std::size_t>(c));
      for (std::int32_t i = 0; i < c; ++i) {
        for (std::int32_t j = 0; j < c; ++j) {
          parts[static_cast<std::size_t>(i)].emplace_back(i == j ? 0 : rows_per_peer,
                                                          cols);
        }
      }
      comm.AllToAllTensors(parts, Phase::kTrain);
    }
    const double per_device_bytes = static_cast<double>(rows_per_peer) * cols *
                                    sizeof(float) * std::max(0, c - 1);
    profile.alltoall_bytes_per_s = per_device_bytes / elapsed(ctx);
  }

  // --- AllReduce. -----------------------------------------------------------
  {
    SimContext ctx(cluster, sim_options);
    prepare(ctx);
    Communicator comm(ctx);
    if (analytic) {
      comm.AllReduceSumShape(rows, cols, Phase::kTrain);
    } else {
      std::vector<Tensor> bufs;
      std::vector<Tensor*> ptrs;
      bufs.reserve(static_cast<std::size_t>(c));
      for (std::int32_t i = 0; i < c; ++i) bufs.emplace_back(rows, cols);
      for (auto& b : bufs) ptrs.push_back(&b);
      comm.AllReduceSum(ptrs, Phase::kTrain);
    }
    profile.allreduce_bytes_per_s =
        static_cast<double>(rows * cols * static_cast<std::int64_t>(sizeof(float))) /
        elapsed(ctx);
  }

  // --- AllBroadcast. ---------------------------------------------------------
  {
    SimContext ctx(cluster, sim_options);
    prepare(ctx);
    Communicator comm(ctx);
    if (analytic) {
      std::vector<Communicator::TensorShape> inputs(static_cast<std::size_t>(c),
                                                    {rows, cols});
      comm.AllBroadcastTensorShapes(inputs, Phase::kTrain);
    } else {
      std::vector<Tensor> inputs;
      for (std::int32_t i = 0; i < c; ++i) inputs.emplace_back(rows, cols);
      comm.AllBroadcastTensors(inputs, Phase::kTrain);
    }
    const double total =
        static_cast<double>(rows * cols * static_cast<std::int64_t>(sizeof(float))) * c;
    profile.broadcast_bytes_per_s = total / elapsed(ctx);
  }

  // --- Feature-read channels (straight from the link model). ----------------
  const MachineSpec& m0 = cluster.machines.front();
  LinkSpec intra = m0.has_nvlink ? m0.nvlink : m0.pcie;
  LinkSpec pcie = m0.pcie;
  LinkSpec network = cluster.network;
  if (faults != nullptr) {
    intra = faults->Degrade(intra, static_cast<int>(TrafficClass::kPeerGpu), at_time_s);
    pcie = faults->Degrade(pcie, static_cast<int>(TrafficClass::kLocalCpuGpu), at_time_s);
    network =
        faults->Degrade(network, static_cast<int>(TrafficClass::kCrossMachine), at_time_s);
  }
  auto effective = [&](const LinkSpec& link) {
    return static_cast<double>(trial_bytes) / link.TransferSeconds(trial_bytes);
  };
  profile.local_cpu_bytes_per_s = effective(pcie);
  profile.remote_cpu_bytes_per_s =
      cluster.num_machines() > 1 ? effective(network) : 0.0;
  profile.gpu_cache_bytes_per_s = m0.gpu.mem_bandwidth_bytes_per_s;
  profile.peer_gpu_bytes_per_s = effective(intra);
  return profile;
}

}  // namespace

CommProfile ProfileCommunication(const ClusterSpec& cluster, std::int64_t trial_bytes) {
  return ProfileImpl(cluster, trial_bytes, nullptr, 0.0, /*analytic=*/false);
}

CommProfile ProfileCommunication(const ClusterSpec& cluster, const FaultPlan& faults,
                                 double at_time_s, std::int64_t trial_bytes) {
  return ProfileImpl(cluster, trial_bytes, &faults, at_time_s, /*analytic=*/false);
}

CommProfile ProfileCommunicationAnalytic(const ClusterSpec& cluster,
                                         std::int64_t trial_bytes) {
  return ProfileImpl(cluster, trial_bytes, nullptr, 0.0, /*analytic=*/true);
}

CommProfile ProfileCommunicationAnalytic(const ClusterSpec& cluster,
                                         const FaultPlan& faults, double at_time_s,
                                         std::int64_t trial_bytes) {
  return ProfileImpl(cluster, trial_bytes, &faults, at_time_s, /*analytic=*/true);
}

}  // namespace apt
