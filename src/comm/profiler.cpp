#include "comm/profiler.h"

#include <vector>

#include "comm/collectives.h"
#include "sim/sim_context.h"
#include "tensor/tensor.h"

namespace apt {

CommProfile ProfileCommunication(const ClusterSpec& cluster, std::int64_t trial_bytes) {
  CommProfile profile;
  const std::int32_t c = cluster.num_devices();
  const std::int64_t cols = 64;
  const std::int64_t rows =
      std::max<std::int64_t>(1, trial_bytes / (cols * static_cast<std::int64_t>(sizeof(float))));

  // --- AllToAll: every device sends rows/C to every peer. -----------------
  {
    SimContext ctx(cluster);
    Communicator comm(ctx);
    const std::int64_t rows_per_peer = std::max<std::int64_t>(1, rows / std::max(1, c));
    std::vector<std::vector<Tensor>> parts(static_cast<std::size_t>(c));
    for (std::int32_t i = 0; i < c; ++i) {
      for (std::int32_t j = 0; j < c; ++j) {
        parts[static_cast<std::size_t>(i)].emplace_back(i == j ? 0 : rows_per_peer, cols);
      }
    }
    comm.AllToAllTensors(parts, Phase::kTrain);
    const double per_device_bytes = static_cast<double>(rows_per_peer) * cols *
                                    sizeof(float) * std::max(0, c - 1);
    profile.alltoall_bytes_per_s = per_device_bytes / std::max(1e-12, ctx.MaxNow());
  }

  // --- AllReduce. -----------------------------------------------------------
  {
    SimContext ctx(cluster);
    Communicator comm(ctx);
    std::vector<Tensor> bufs;
    std::vector<Tensor*> ptrs;
    bufs.reserve(static_cast<std::size_t>(c));
    for (std::int32_t i = 0; i < c; ++i) bufs.emplace_back(rows, cols);
    for (auto& b : bufs) ptrs.push_back(&b);
    comm.AllReduceSum(ptrs, Phase::kTrain);
    profile.allreduce_bytes_per_s =
        static_cast<double>(bufs[0].bytes()) / std::max(1e-12, ctx.MaxNow());
  }

  // --- AllBroadcast. ---------------------------------------------------------
  {
    SimContext ctx(cluster);
    Communicator comm(ctx);
    std::vector<Tensor> inputs;
    for (std::int32_t i = 0; i < c; ++i) inputs.emplace_back(rows, cols);
    comm.AllBroadcastTensors(inputs, Phase::kTrain);
    const double total = static_cast<double>(inputs[0].bytes()) * c;
    profile.broadcast_bytes_per_s = total / std::max(1e-12, ctx.MaxNow());
  }

  // --- Feature-read channels (straight from the link model). ----------------
  const MachineSpec& m0 = cluster.machines.front();
  const LinkSpec intra = m0.has_nvlink ? m0.nvlink : m0.pcie;
  auto effective = [&](const LinkSpec& link) {
    return static_cast<double>(trial_bytes) / link.TransferSeconds(trial_bytes);
  };
  profile.local_cpu_bytes_per_s = effective(m0.pcie);
  profile.remote_cpu_bytes_per_s =
      cluster.num_machines() > 1 ? effective(cluster.network) : 0.0;
  profile.gpu_cache_bytes_per_s = m0.gpu.mem_bandwidth_bytes_per_s;
  profile.peer_gpu_bytes_per_s = effective(intra);
  return profile;
}

}  // namespace apt
