// Communication-bandwidth profiling (the paper's "Prepare" trials).
//
// APT measures the achieved speed of each communication operator before
// planning, so the cost models can convert dry-run volumes into seconds.
// The profiler runs timed trials through the same Communicator / link model
// the execution engine uses, on a scratch SimContext.
#pragma once

#include <cstdint>

#include "sim/fault.h"
#include "sim/hardware.h"

namespace apt {

/// Effective throughput of each operator class, bytes per second, as seen by
/// one device (i.e. payload bytes on that device divided by elapsed time).
struct CommProfile {
  double alltoall_bytes_per_s = 0.0;    ///< sparse all-to-all (SNP/DNP shuffles)
  double allreduce_bytes_per_s = 0.0;   ///< ring allreduce (NFP shuffle, DDP sync)
  double broadcast_bytes_per_s = 0.0;   ///< allgather / AllBroadcast (NFP graphs)
  double local_cpu_bytes_per_s = 0.0;   ///< GPU <- local CPU feature read (UVA)
  double remote_cpu_bytes_per_s = 0.0;  ///< GPU <- remote machine CPU read
  double gpu_cache_bytes_per_s = 0.0;   ///< GPU <- own device memory
  double peer_gpu_bytes_per_s = 0.0;    ///< GPU <- peer GPU (NVLink/PCIe)
};

/// Runs trials of `trial_bytes` per device and derives the profile.
CommProfile ProfileCommunication(const ClusterSpec& cluster,
                                 std::int64_t trial_bytes = 16LL << 20);

/// Re-profiles AS OF simulated time `at_time_s` under an installed fault
/// plan: trial contexts have `faults` installed (collective faults stripped —
/// a probe must not consume them) and their clocks advanced to `at_time_s`,
/// so time-windowed link degradation applies. This is how the recovery layer
/// measures POST-fault operator speeds for re-planning.
CommProfile ProfileCommunication(const ClusterSpec& cluster, const FaultPlan& faults,
                                 double at_time_s,
                                 std::int64_t trial_bytes = 16LL << 20);

/// Scale-mode variants: identical trial geometry and link/codec math, but the
/// trials run through the analytic shape entry points (no trial tensors are
/// materialized or moved) on a scale-mode scratch context. Charged seconds —
/// and hence the derived bytes/s — are bit-identical to ProfileCommunication
/// (the golden-parity suite pins this); only the profiling wall cost changes,
/// which is what lets ResilientRunner re-profile a 1000-device cluster.
CommProfile ProfileCommunicationAnalytic(const ClusterSpec& cluster,
                                         std::int64_t trial_bytes = 16LL << 20);
CommProfile ProfileCommunicationAnalytic(const ClusterSpec& cluster,
                                         const FaultPlan& faults, double at_time_s,
                                         std::int64_t trial_bytes = 16LL << 20);

}  // namespace apt
