#include "comm/collectives.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "runtime/parallel_for.h"
#include "tensor/ops.h"

namespace apt {

namespace {

struct CollectiveMetrics {
  obs::Counter& calls;
  obs::Counter& bytes;
  obs::Counter& wire_bytes;
};

CollectiveMetrics& AllToAllMetrics() {
  static CollectiveMetrics m{
      obs::Metrics::Global().counter("comm.alltoall.calls"),
      obs::Metrics::Global().counter("comm.alltoall.bytes"),
      obs::Metrics::Global().counter("comm.alltoall.wire_bytes")};
  return m;
}

CollectiveMetrics& RingMetrics(const char* label) {
  static CollectiveMetrics allreduce{
      obs::Metrics::Global().counter("comm.allreduce.calls"),
      obs::Metrics::Global().counter("comm.allreduce.bytes"),
      obs::Metrics::Global().counter("comm.allreduce.wire_bytes")};
  static CollectiveMetrics broadcast{
      obs::Metrics::Global().counter("comm.allbroadcast.calls"),
      obs::Metrics::Global().counter("comm.allbroadcast.bytes"),
      obs::Metrics::Global().counter("comm.allbroadcast.wire_bytes")};
  return std::strcmp(label, "allreduce") == 0 ? allreduce : broadcast;
}

}  // namespace

std::vector<std::vector<Tensor>> Communicator::AllToAllTensors(
    const std::vector<std::vector<Tensor>>& parts, Phase phase) {
  const auto c = static_cast<std::size_t>(num_devices());
  APT_CHECK_EQ(parts.size(), c);
  std::vector<std::vector<std::int64_t>> bytes(c, std::vector<std::int64_t>(c, 0));
  std::vector<std::vector<std::int64_t>> wire(c, std::vector<std::int64_t>(c, 0));
  std::vector<std::vector<Tensor>> recv(c, std::vector<Tensor>(c));
  for (std::size_t i = 0; i < c; ++i) {
    APT_CHECK_EQ(parts[i].size(), c);
    for (std::size_t j = 0; j < c; ++j) {
      const Tensor& p = parts[i][j];
      bytes[i][j] = p.bytes();
      wire[i][j] =
          i == j ? bytes[i][j]
                 : CodecWireBytes(wire_codec(ctx_->ClassifyDeviceLink(
                                      static_cast<DeviceId>(i),
                                      static_cast<DeviceId>(j))),
                                  p.rows(), p.cols());
      recv[j][i] = p;
    }
  }
  ChargeAllToAll(bytes, wire, phase);
  return recv;
}

void Communicator::AllReduceSum(std::vector<Tensor*> tensors, Phase phase,
                                bool gradient_sync) {
  const auto c = static_cast<std::size_t>(num_devices());
  APT_CHECK_EQ(tensors.size(), c);
  if (c == 0) return;
  Tensor sum = *tensors[0];
  for (std::size_t i = 1; i < c; ++i) {
    if (!tensors[i]->SameShape(sum)) {
      // One participant contributed a bad buffer; its peers would block in
      // the collective forever. Poison so every waiter gets a typed error.
      std::ostringstream os;
      os << "allreduce shape mismatch on device " << i;
      ctx_->PoisonBarrier(os.str());
      throw CollectiveError(os.str());
    }
    Axpy(1.0f, *tensors[i], sum);
  }
  for (std::size_t i = 0; i < c; ++i) *tensors[i] = sum;
  // Ring allreduce moves 2 * (C-1)/C * bytes per device. Bytes-only codec:
  // the reduced VALUES above are exact fp32 regardless of codec choice.
  const Codec codec = gradient_sync ? grad_codec_ : wire_codec(RingClass());
  ChargeRing(sum.bytes(), CodecWireBytes(codec, sum), /*factor=*/2.0, phase,
             "allreduce");
}

void Communicator::AllReduceDoubles(std::vector<std::vector<double>*> vecs,
                                    ReduceOp op, Phase phase) {
  const auto c = static_cast<std::size_t>(num_devices());
  APT_CHECK_EQ(vecs.size(), c);
  if (c == 0) return;
  APT_CHECK(vecs[0] != nullptr);
  std::vector<double> acc = *vecs[0];
  for (std::size_t i = 1; i < c; ++i) {
    APT_CHECK(vecs[i] != nullptr);
    if (vecs[i]->size() != acc.size()) {
      std::ostringstream os;
      os << "allreduce(double) size mismatch on device " << i;
      ctx_->PoisonBarrier(os.str());
      throw CollectiveError(os.str());
    }
    const std::vector<double>& v = *vecs[i];
    for (std::size_t k = 0; k < acc.size(); ++k) {
      acc[k] = op == ReduceOp::kSum ? acc[k] + v[k] : std::max(acc[k], v[k]);
    }
  }
  for (std::size_t i = 0; i < c; ++i) *vecs[i] = acc;
  const auto bytes = static_cast<std::int64_t>(acc.size() * sizeof(double));
  ChargeRing(bytes, bytes, /*factor=*/2.0, phase, "allreduce");
}

std::vector<Tensor> Communicator::AllBroadcastTensors(const std::vector<Tensor>& inputs,
                                                      Phase phase) {
  const auto c = static_cast<std::size_t>(num_devices());
  APT_CHECK_EQ(inputs.size(), c);
  std::int64_t total = 0;
  std::int64_t wire_total = 0;
  const Codec codec = wire_codec(RingClass());
  for (const auto& t : inputs) {
    total += t.bytes();
    wire_total += CodecWireBytes(codec, t.rows(), t.cols());
  }
  ChargeRing(total, wire_total, /*factor=*/1.0, phase, "allbroadcast");
  return inputs;
}

void Communicator::GroupReduce(
    const std::vector<std::vector<Tensor>>& parts,
    const std::vector<std::vector<std::vector<std::int64_t>>>& index,
    std::vector<Tensor*> out, Phase phase) {
  const auto c = static_cast<std::size_t>(num_devices());
  APT_CHECK_EQ(parts.size(), c);
  APT_CHECK_EQ(index.size(), c);
  APT_CHECK_EQ(out.size(), c);
  std::vector<std::vector<std::int64_t>> bytes(c, std::vector<std::int64_t>(c, 0));
  std::vector<std::vector<std::int64_t>> wire(c, std::vector<std::int64_t>(c, 0));
  for (std::size_t i = 0; i < c; ++i) {
    APT_CHECK_EQ(parts[i].size(), c);
    APT_CHECK_EQ(index[i].size(), c);
    for (std::size_t j = 0; j < c; ++j) {
      const Tensor& p = parts[i][j];
      if (p.rows() != static_cast<std::int64_t>(index[i][j].size())) {
        std::ostringstream os;
        os << "groupreduce index/rows mismatch from device " << i << " to " << j;
        ctx_->PoisonBarrier(os.str());
        throw CollectiveError(os.str());
      }
      if (p.rows() > 0) {
        APT_CHECK(out[j] != nullptr);
        ScatterAddRows(p, index[i][j], *out[j]);
      }
      if (i != j) {
        bytes[i][j] = p.bytes();  // local partials are free
        wire[i][j] = CodecWireBytes(
            wire_codec(ctx_->ClassifyDeviceLink(static_cast<DeviceId>(i),
                                                static_cast<DeviceId>(j))),
            p.rows(), p.cols());
      }
    }
  }
  ChargeAllToAll(bytes, wire, phase);
}

LinkSpec Communicator::RingBottleneck() const {
  LinkSpec bottleneck{};
  bool first = true;
  const std::int32_t c = num_devices();
  for (DeviceId d = 0; d < c; ++d) {
    const LinkSpec link = ctx_->EffectiveLinkBetween(d, (d + 1) % c);
    if (first || link.bandwidth_bytes_per_s < bottleneck.bandwidth_bytes_per_s) {
      bottleneck = link;
      first = false;
    }
  }
  return bottleneck;
}

void Communicator::MaybeFailCollective(std::int64_t wire_bytes,
                                       const std::vector<double>& busy, Phase phase,
                                       const char* label,
                                       const char* traffic_class) {
  const std::optional<double> fraction = ctx_->CollectiveFailureFraction(wire_bytes);
  if (!fraction.has_value()) return;
  // Under pipelined execution the step runs as PipelineDepth() micro-batch
  // collectives; the completed byte fraction pins down which one was in
  // flight when the fault hit — recorded for the post-mortem flight dump.
  const int depth = ctx_->PipelineDepth();
  const double microbatch =
      depth > 1 ? std::min<double>(static_cast<double>(depth - 1),
                                   std::floor(*fraction * static_cast<double>(depth)))
                : 0.0;
  obs::Flight().Record("collective.fail", label, ctx_->MaxNow(),
                       {{"bytes", static_cast<double>(wire_bytes), nullptr},
                        {"fraction", *fraction, nullptr},
                        {"class", 0.0, traffic_class},
                        {"microbatch", microbatch, nullptr}});
  // The call dies part-way through: every participant has burned the
  // completed fraction of its busy time, nothing was delivered.
  for (std::size_t d = 0; d < busy.size(); ++d) {
    ctx_->AdvanceComm(static_cast<DeviceId>(d), *fraction * busy[d], phase,
                      "fault.collective",
                      {{"fraction", *fraction, nullptr}, {"op", 0.0, label}});
  }
  std::ostringstream os;
  os << label << " failed after " << ctx_->CollectiveBytesDone()
     << " collective bytes (completed fraction " << *fraction << ")";
  ctx_->PoisonBarrier(os.str());
  throw CollectiveError(os.str());
}

void Communicator::ChargeAllToAll(const std::vector<std::vector<std::int64_t>>& bytes,
                                  const std::vector<std::vector<std::int64_t>>& wire,
                                  Phase phase) {
  if (ctx_->RecordingStep()) {
    // One structured op on the step tape; the flat advances the Impl issues
    // are suppressed so fast-forward re-runs the charge (fault thresholds,
    // link degradation) instead of replaying stale numbers.
    ctx_->RecordAllToAll(bytes, wire, phase);
    SimContext::RecordSuppressScope suppress(*ctx_);
    ChargeAllToAllImpl(bytes, wire, phase);
    return;
  }
  ChargeAllToAllImpl(bytes, wire, phase);
}

void Communicator::ChargeAllToAllImpl(
    const std::vector<std::vector<std::int64_t>>& bytes,
    const std::vector<std::vector<std::int64_t>>& wire, Phase phase) {
  const auto c = static_cast<std::size_t>(num_devices());
  // Scale mode batches the O(C^2) lane costing and the O(C) clock commits
  // through the fork-join pool. Per-device results are bit-identical to the
  // serial loop: each device's lane math keeps its serial FP order, and the
  // cross-device totals are int64 sums (order-free).
  const bool scale = ctx_->scale_mode() == ScaleMode::kScale && c >= 64;
  // Cost every lane up front at the PRE-collective clocks (link faults are
  // evaluated against the time the transfer starts), so a mid-call failure
  // can charge each participant the same completed fraction. Egress of i and
  // ingress of i are serialized on i's adapters; the device is busy for the
  // larger of the two. Time moves WIRE (post-codec) bytes.
  std::vector<double> busy(c, 0.0);
  std::vector<std::int64_t> egress_bytes(c, 0), ingress_bytes(c, 0);
  std::vector<std::int64_t> wire_part(c, 0);
  constexpr std::size_t kCls = static_cast<std::size_t>(TrafficClass::kNumClasses);
  // Per-sender per-class lane totals (scale mode only): the serial path
  // counts each (i,j) lane individually; scale mode aggregates the same
  // int64 sums and issues one CountTraffic per class.
  std::vector<std::array<std::int64_t, kCls>> cls_bytes;
  std::vector<std::array<std::int64_t, kCls>> cls_wire;
  if (scale) {
    cls_bytes.assign(c, {});
    cls_wire.assign(c, {});
  }
  const auto cost_one = [&](std::size_t i) {
    double egress = 0.0, ingress = 0.0;
    // Codec compute: lanes whose wire representation differs from the
    // logical one pay one encode pass at the sender and one decode pass at
    // the receiver, each a memory-bound sweep over the LOGICAL bytes. The
    // identity codec keeps wire == bytes on every lane and charges nothing.
    std::int64_t xcode_bytes = 0;
    for (std::size_t j = 0; j < c; ++j) {
      if (i == j) continue;
      const auto di = static_cast<DeviceId>(i);
      const auto dj = static_cast<DeviceId>(j);
      if (wire[i][j] > 0) {
        egress += ctx_->EffectiveLinkBetween(di, dj).TransferSeconds(wire[i][j]);
        egress_bytes[i] += bytes[i][j];
        wire_part[i] += wire[i][j];
        if (wire[i][j] != bytes[i][j]) xcode_bytes += bytes[i][j];
      }
      if (wire[j][i] > 0) {
        ingress += ctx_->EffectiveLinkBetween(dj, di).TransferSeconds(wire[j][i]);
        ingress_bytes[i] += bytes[j][i];
        if (wire[j][i] != bytes[j][i]) xcode_bytes += bytes[j][i];
      }
      if (scale && i != j && bytes[i][j] > 0) {
        const auto cls = static_cast<std::size_t>(ctx_->ClassifyDeviceLink(di, dj));
        cls_bytes[i][cls] += bytes[i][j];
        cls_wire[i][cls] += wire[i][j];
      }
    }
    busy[i] = std::max(egress, ingress) +
              static_cast<double>(xcode_bytes) /
                  ctx_->cluster().device(static_cast<DeviceId>(i)).mem_bandwidth_bytes_per_s;
  };
  if (scale) {
    ParallelForChunks(0, static_cast<std::int64_t>(c),
                      [&](std::int64_t lo, std::int64_t hi) {
                        for (std::int64_t i = lo; i < hi; ++i) {
                          cost_one(static_cast<std::size_t>(i));
                        }
                      });
  } else {
    for (std::size_t i = 0; i < c; ++i) cost_one(i);
  }
  std::int64_t total_bytes = 0, total_wire = 0;
  for (std::size_t i = 0; i < c; ++i) {
    total_bytes += egress_bytes[i];
    total_wire += wire_part[i];
  }
  // Flight/failure attribution uses the coarse link class of the collective
  // as a whole (point-to-point pairs span classes; cross-machine dominates
  // whenever the cluster has more than one machine). Fault thresholds see
  // wire bytes: "fail after N bytes" means bytes that actually crossed links.
  const char* a2a_class =
      ToString(ctx_->cluster().num_machines() > 1 ? TrafficClass::kCrossMachine
                                                  : TrafficClass::kPeerGpu);
  MaybeFailCollective(total_wire, busy, phase, "alltoall", a2a_class);
  if (scale) {
    // Same per-class int64 totals as the per-lane loop below; only the
    // per-call event granularity (trace counter samples) coarsens.
    for (std::size_t cls = 0; cls < kCls; ++cls) {
      std::int64_t b = 0, w = 0;
      for (std::size_t i = 0; i < c; ++i) {
        b += cls_bytes[i][cls];
        w += cls_wire[i][cls];
      }
      if (b > 0) ctx_->CountTraffic(static_cast<TrafficClass>(cls), b, w);
    }
    const auto advance_one = [&](std::size_t i) {
      ctx_->AdvanceComm(static_cast<DeviceId>(i), busy[i], phase, "alltoall",
                        {{"egress_bytes", static_cast<double>(egress_bytes[i]), nullptr},
                         {"ingress_bytes", static_cast<double>(ingress_bytes[i]), nullptr},
                         {"participants", static_cast<double>(c), nullptr}});
    };
    if (!ctx_->PipelineCapturing()) {
      // Disjoint per-device clock writes; the pipeline-capture path appends
      // to a shared tape, so it stays serial.
      ParallelForChunks(0, static_cast<std::int64_t>(c),
                        [&](std::int64_t lo, std::int64_t hi) {
                          for (std::int64_t i = lo; i < hi; ++i) {
                            advance_one(static_cast<std::size_t>(i));
                          }
                        });
    } else {
      for (std::size_t i = 0; i < c; ++i) advance_one(i);
    }
  } else {
    for (std::size_t i = 0; i < c; ++i) {
      for (std::size_t j = 0; j < c; ++j) {
        if (i != j && bytes[i][j] > 0) {
          const auto di = static_cast<DeviceId>(i);
          const auto dj = static_cast<DeviceId>(j);
          ctx_->CountTraffic(ctx_->ClassifyDeviceLink(di, dj), bytes[i][j],
                             wire[i][j]);
        }
      }
      ctx_->AdvanceComm(static_cast<DeviceId>(i), busy[i], phase, "alltoall",
                        {{"egress_bytes", static_cast<double>(egress_bytes[i]), nullptr},
                         {"ingress_bytes", static_cast<double>(ingress_bytes[i]), nullptr},
                         {"participants", static_cast<double>(c), nullptr}});
    }
  }
  AllToAllMetrics().calls.Increment();
  AllToAllMetrics().bytes.Add(total_bytes);
  AllToAllMetrics().wire_bytes.Add(total_wire);
  obs::Flight().Record("collective", "alltoall", ctx_->MaxNow(),
                       {{"bytes", static_cast<double>(total_bytes), nullptr},
                        {"wire_bytes", static_cast<double>(total_wire), nullptr},
                        {"participants", static_cast<double>(c), nullptr},
                        {"class", 0.0, a2a_class}});
  ctx_->BarrierAll(phase);
}

void Communicator::ChargeRing(std::int64_t total_bytes,
                              std::int64_t wire_total_bytes, double factor,
                              Phase phase, const char* label) {
  if (ctx_->RecordingStep()) {
    ctx_->RecordRing(total_bytes, wire_total_bytes, factor, phase, label);
    SimContext::RecordSuppressScope suppress(*ctx_);
    ChargeRingImpl(total_bytes, wire_total_bytes, factor, phase, label);
    return;
  }
  ChargeRingImpl(total_bytes, wire_total_bytes, factor, phase, label);
}

void Communicator::ChargeRingImpl(std::int64_t total_bytes,
                                  std::int64_t wire_total_bytes, double factor,
                                  Phase phase, const char* label) {
  CollectiveMetrics& metrics = RingMetrics(label);
  metrics.calls.Increment();
  const std::int32_t c = num_devices();
  if (c <= 1 || wire_total_bytes <= 0) {
    ctx_->BarrierAll(phase);
    return;
  }
  const LinkSpec bottleneck = RingBottleneck();
  const double volume = factor * static_cast<double>(c - 1) / c *
                        static_cast<double>(total_bytes);
  const double wire_volume = factor * static_cast<double>(c - 1) / c *
                             static_cast<double>(wire_total_bytes);
  // Codec compute: one encode of the local contribution plus one decode of
  // the result, each a memory-bound pass over the logical payload (zero when
  // the codec left the representation alone, i.e. wire == logical).
  const double xcode =
      wire_total_bytes != total_bytes
          ? 2.0 * static_cast<double>(total_bytes) /
                ctx_->cluster().device(0).mem_bandwidth_bytes_per_s
          : 0.0;
  const double t = static_cast<double>(c - 1) * bottleneck.latency_s +
                   wire_volume / bottleneck.bandwidth_bytes_per_s + xcode;
  // Traffic accounting: each byte crosses C-1 hops in a ring; classify by the
  // bottleneck hop for reporting purposes.
  const bool cross = ctx_->cluster().num_machines() > 1;
  const char* cls =
      ToString(cross ? TrafficClass::kCrossMachine : TrafficClass::kPeerGpu);
  MaybeFailCollective(static_cast<std::int64_t>(wire_volume),
                      std::vector<double>(static_cast<std::size_t>(c), t), phase,
                      label, cls);
  // Every device is busy for the whole ring schedule.
  const auto advance_one = [&](DeviceId d) {
    ctx_->AdvanceComm(d, t, phase, label,
                      {{"bytes", static_cast<double>(total_bytes), nullptr},
                       {"participants", static_cast<double>(c), nullptr},
                       {"class", 0.0, cls}});
  };
  if (ctx_->scale_mode() == ScaleMode::kScale && c >= 64 &&
      !ctx_->PipelineCapturing()) {
    ParallelForChunks(0, static_cast<std::int64_t>(c),
                      [&](std::int64_t lo, std::int64_t hi) {
                        for (std::int64_t d = lo; d < hi; ++d) {
                          advance_one(static_cast<DeviceId>(d));
                        }
                      });
  } else {
    for (DeviceId d = 0; d < c; ++d) advance_one(d);
  }
  metrics.bytes.Add(static_cast<std::int64_t>(volume));
  metrics.wire_bytes.Add(static_cast<std::int64_t>(wire_volume));
  ctx_->CountTraffic(cross ? TrafficClass::kCrossMachine : TrafficClass::kPeerGpu,
                     static_cast<std::int64_t>(volume),
                     static_cast<std::int64_t>(wire_volume));
  obs::Flight().Record("collective", label, ctx_->MaxNow(),
                       {{"bytes", static_cast<double>(total_bytes), nullptr},
                        {"wire_bytes", static_cast<double>(wire_volume), nullptr},
                        {"participants", static_cast<double>(c), nullptr},
                        {"class", 0.0, cls}});
  ctx_->BarrierAll(phase);
}

// --- analytic fast-forward collectives (scale mode) -------------------------

void Communicator::AllToAllTensorShapes(
    const std::vector<std::vector<TensorShape>>& parts, Phase phase) {
  const auto c = static_cast<std::size_t>(num_devices());
  APT_CHECK_EQ(parts.size(), c);
  std::vector<std::vector<std::int64_t>> bytes(c, std::vector<std::int64_t>(c, 0));
  std::vector<std::vector<std::int64_t>> wire(c, std::vector<std::int64_t>(c, 0));
  for (std::size_t i = 0; i < c; ++i) {
    APT_CHECK_EQ(parts[i].size(), c);
    for (std::size_t j = 0; j < c; ++j) {
      const TensorShape& p = parts[i][j];
      bytes[i][j] = p.bytes();
      wire[i][j] =
          i == j ? bytes[i][j]
                 : CodecWireBytes(wire_codec(ctx_->ClassifyDeviceLink(
                                      static_cast<DeviceId>(i),
                                      static_cast<DeviceId>(j))),
                                  p.rows, p.cols);
    }
  }
  ChargeAllToAll(bytes, wire, phase);
}

void Communicator::AllToAllBytes(
    const std::vector<std::vector<std::int64_t>>& bytes, Phase phase) {
  APT_CHECK_EQ(bytes.size(), static_cast<std::size_t>(num_devices()));
  ChargeAllToAll(bytes, phase);
}

void Communicator::AllReduceSumShape(std::int64_t rows, std::int64_t cols,
                                     Phase phase, bool gradient_sync) {
  if (num_devices() == 0) return;
  const Codec codec = gradient_sync ? grad_codec_ : wire_codec(RingClass());
  // Shape-based wire bytes: identical to the byte-moving path for identity /
  // bf16 / int8; kDeltaBitmask is content-dependent and charges its dense
  // worst case here (the parity suite covers the shape-faithful codecs).
  ChargeRing(rows * cols * 4, CodecWireBytes(codec, rows, cols),
             /*factor=*/2.0, phase, "allreduce");
}

void Communicator::AllBroadcastTensorShapes(
    const std::vector<TensorShape>& inputs, Phase phase) {
  const auto c = static_cast<std::size_t>(num_devices());
  APT_CHECK_EQ(inputs.size(), c);
  std::int64_t total = 0;
  std::int64_t wire_total = 0;
  const Codec codec = wire_codec(RingClass());
  for (const TensorShape& t : inputs) {
    total += t.bytes();
    wire_total += CodecWireBytes(codec, t.rows, t.cols);
  }
  ChargeRing(total, wire_total, /*factor=*/1.0, phase, "allbroadcast");
}

// --- sampled-execution fast-forward (scale mode) ----------------------------

void Communicator::FastForwardStep(const StepTape& tape) {
  bool in_pipeline = false;
  try {
    for (const StepTapeOp& op : tape.ops) {
      switch (op.kind) {
        case StepTapeOp::Kind::kAdvance:
          ctx_->ReplayAdvance(op.dev, op.dt, op.phase, op.label, op.comm);
          break;
        case StepTapeOp::Kind::kBarrier:
          ctx_->BarrierAll(op.phase);
          break;
        case StepTapeOp::Kind::kCompute:
          ctx_->ChargeCompute(op.dev, op.flops);
          break;
        case StepTapeOp::Kind::kAllToAll:
          ChargeAllToAllImpl(op.a2a_bytes, op.a2a_wire, op.phase);
          break;
        case StepTapeOp::Kind::kRing:
          ChargeRingImpl(op.bytes, op.wire_bytes, op.factor, op.phase, op.label);
          break;
        case StepTapeOp::Kind::kTraffic:
          ctx_->CountTraffic(op.cls, op.bytes, op.wire_bytes);
          break;
        case StepTapeOp::Kind::kBeginPipelined:
          ctx_->BeginPipelinedStep(op.depth);
          in_pipeline = true;
          break;
        case StepTapeOp::Kind::kEndPipelined:
          ctx_->EndPipelinedStep();
          in_pipeline = false;
          break;
      }
    }
  } catch (...) {
    // Same guarantee as PipelinedStepScope: a fault mid-replay still commits
    // the partially-captured micro-batch tape, so partial charges (the
    // completed fraction of a failed collective) land on the clocks.
    if (in_pipeline) ctx_->EndPipelinedStep();
    throw;
  }
}

}  // namespace apt
