// Collective communication over simulated devices.
//
// The communicator plays NCCL's role: collectives move real bytes between
// per-device host buffers (so downstream computation is exact) and charge
// simulated time on each participant's virtual clock via the cluster's link
// model. All collectives are group-wide and blocking: participants leave at
// the same simulated instant (SimContext::BarrierAll).
//
// Cost model per collective (documented per function):
//   * point-to-point batches (AllToAll): each device serializes its egress
//     and ingress on its own link; the collective completes at the slowest.
//   * ring collectives (AllReduce, AllGather): classic 2(C-1)/C and
//     (C-1)/C volume terms over the bottleneck link of the ring.
//
// Fault interaction: link costs are computed against the SimContext's
// EFFECTIVE links (degraded by any active LinkFault), and each charging path
// consults SimContext::CollectiveFailureFraction. When an armed
// CollectiveFault fires mid-call, every participant is charged the completed
// fraction of its busy time, the barrier is poisoned for all waiters, and the
// call throws CollectiveError — never a silent hang or time inflation.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "core/types.h"
#include "sim/sim_context.h"
#include "tensor/codec.h"
#include "tensor/tensor.h"

namespace apt {

class Communicator {
 public:
  /// The communicator charges time to `ctx`'s clocks; `phase` attribution is
  /// chosen per call (subgraph shuffles -> kSample, embedding shuffles ->
  /// kTrain).
  explicit Communicator(SimContext& ctx) : ctx_(&ctx) {}

  std::int32_t num_devices() const { return ctx_->num_devices(); }

  // ------------------------------------------------------------------
  // Wire codecs. Float-tensor payloads (AllToAllTensors, GroupReduce
  // partials, AllBroadcastTensors, AllReduceSum) charge CODEC bytes on the
  // wire, chosen per traffic class; id/object collectives carry structural
  // integer data and always travel uncompressed. The communicator never
  // changes VALUES — lossy rounding happens exactly once at the producer
  // (FeatureStore / model boundary hooks), which is what keeps quantized
  // strategies bit-comparable (DESIGN.md invariant 8). Transfer time, fault
  // thresholds, and the wire traffic counters all see codec bytes; logical
  // fp32 bytes stay visible beside them for ratio reporting.
  // ------------------------------------------------------------------
  void SetWireCodec(TrafficClass cls, Codec codec) {
    wire_codecs_[static_cast<std::size_t>(cls)] = codec;
  }
  void SetWireCodecAll(Codec codec) { wire_codecs_.fill(codec); }
  Codec wire_codec(TrafficClass cls) const {
    return wire_codecs_[static_cast<std::size_t>(cls)];
  }
  /// Codec for gradient-allreduce payloads (AllReduceSum with
  /// gradient_sync = true). kDeltaBitmask is lossless and charges
  /// content-dependent sparse bytes of the reduced tensor.
  void set_grad_codec(Codec codec) { grad_codec_ = codec; }
  Codec grad_codec() const { return grad_codec_; }

  // ------------------------------------------------------------------
  // AllToAll of raw element vectors (computation-graph shuffles).
  // sends[i][j] = payload from device i to device j (i==j is a free local
  // copy). Returns recv where recv[j][i] = sends[i][j].
  // ------------------------------------------------------------------
  template <typename T>
  std::vector<std::vector<std::vector<T>>> AllToAllVec(
      const std::vector<std::vector<std::vector<T>>>& sends, Phase phase) {
    const auto c = static_cast<std::size_t>(num_devices());
    APT_CHECK_EQ(sends.size(), c);
    std::vector<std::vector<std::vector<T>>> recv(
        c, std::vector<std::vector<T>>(c));
    std::vector<std::vector<std::int64_t>> bytes(c, std::vector<std::int64_t>(c, 0));
    for (std::size_t i = 0; i < c; ++i) {
      APT_CHECK_EQ(sends[i].size(), c);
      for (std::size_t j = 0; j < c; ++j) {
        recv[j][i] = sends[i][j];
        bytes[i][j] = static_cast<std::int64_t>(sends[i][j].size() * sizeof(T));
      }
    }
    ChargeAllToAll(bytes, phase);
    return recv;
  }

  // ------------------------------------------------------------------
  // AllToAll of arbitrary message objects. sends[i][j] is the message from
  // device i to device j; `bytes_fn(msg)` must return the serialized size so
  // the link model charges the true wire cost. Used for shuffling sampled
  // subgraphs / virtual-node records without a serialization round-trip.
  // ------------------------------------------------------------------
  template <typename T, typename BytesFn>
  std::vector<std::vector<T>> AllToAllObjects(std::vector<std::vector<T>> sends,
                                              const BytesFn& bytes_fn, Phase phase) {
    const auto c = static_cast<std::size_t>(num_devices());
    APT_CHECK_EQ(sends.size(), c);
    std::vector<std::vector<std::int64_t>> bytes(c, std::vector<std::int64_t>(c, 0));
    for (std::size_t i = 0; i < c; ++i) {
      APT_CHECK_EQ(sends[i].size(), c);
      for (std::size_t j = 0; j < c; ++j) {
        bytes[i][j] = i == j ? 0 : static_cast<std::int64_t>(bytes_fn(sends[i][j]));
      }
    }
    std::vector<std::vector<T>> recv(c);
    for (std::size_t j = 0; j < c; ++j) {
      recv[j].resize(c);
      for (std::size_t i = 0; i < c; ++i) recv[j][i] = std::move(sends[i][j]);
    }
    ChargeAllToAll(bytes, phase);
    return recv;
  }

  // ------------------------------------------------------------------
  // AllBroadcast of arbitrary objects (every device receives every input).
  // ------------------------------------------------------------------
  template <typename T, typename BytesFn>
  std::vector<T> AllBroadcastObjects(std::vector<T> inputs, const BytesFn& bytes_fn,
                                     Phase phase) {
    const auto c = static_cast<std::size_t>(num_devices());
    APT_CHECK_EQ(inputs.size(), c);
    std::int64_t total = 0;
    for (const T& v : inputs) total += static_cast<std::int64_t>(bytes_fn(v));
    ChargeRing(total, /*factor=*/1.0, phase, "allbroadcast");
    return inputs;
  }

  // ------------------------------------------------------------------
  // AllToAll of tensor rows: parts[i][j] = rows device i sends to device j.
  // Returns recv[j][i]. Empty tensors are free (sparse all-to-all).
  // ------------------------------------------------------------------
  std::vector<std::vector<Tensor>> AllToAllTensors(
      const std::vector<std::vector<Tensor>>& parts, Phase phase);

  // ------------------------------------------------------------------
  // Ring AllReduce (sum): every device contributes a same-shape tensor and
  // receives the elementwise sum. Used for DDP gradient sync
  // (gradient_sync = true: grad_codec picks the wire bytes) and NFP's
  // SparseAllreduce of partial embeddings (wire codec of the ring's class).
  // ------------------------------------------------------------------
  void AllReduceSum(std::vector<Tensor*> tensors, Phase phase,
                    bool gradient_sync = false);

  // ------------------------------------------------------------------
  // AllBroadcast (allgather): device i contributes payload i; every device
  // receives all payloads. Used by NFP to broadcast layer-1 computation
  // graphs. Returns gathered[j] == inputs (same for every receiver j).
  // ------------------------------------------------------------------
  template <typename T>
  std::vector<std::vector<T>> AllBroadcastVec(
      const std::vector<std::vector<T>>& inputs, Phase phase) {
    const auto c = static_cast<std::size_t>(num_devices());
    APT_CHECK_EQ(inputs.size(), c);
    std::int64_t total_bytes = 0;
    for (const auto& v : inputs) {
      total_bytes += static_cast<std::int64_t>(v.size() * sizeof(T));
    }
    ChargeRing(total_bytes, /*factor=*/1.0, phase, "allbroadcast");
    std::vector<std::vector<T>> out = inputs;
    return out;
  }

  /// Tensor flavor of AllBroadcast; receiver sees the senders' tensors.
  std::vector<Tensor> AllBroadcastTensors(const std::vector<Tensor>& inputs,
                                          Phase phase);

  // ------------------------------------------------------------------
  // AllReduce over double vectors, elementwise kSum or kMax. The reduction
  // is exact for the quantized parity path by construction: kMax is
  // order-invariant outright, and the canonical quantized backward only
  // sums doubles that are exact multiples of a shared power-of-two grid,
  // so every addition is exact in any order (DESIGN.md invariant 8).
  // Charged like AllReduceSum; always travels uncompressed.
  // ------------------------------------------------------------------
  enum class ReduceOp { kSum, kMax };
  void AllReduceDoubles(std::vector<std::vector<double>*> vecs, ReduceOp op,
                        Phase phase);

  // ------------------------------------------------------------------
  // GroupReduce: device i holds `parts[i][j]` = partial rows destined for
  // device j plus `index[i][j]` = target row on j for each partial row.
  // Each destination j receives all partials and accumulates them into
  // `out[j]` (out[j].row(index[i][j][r]) += parts[i][j].row(r)).
  // Used by SNP to merge virtual-node partial embeddings.
  // ------------------------------------------------------------------
  void GroupReduce(const std::vector<std::vector<Tensor>>& parts,
                   const std::vector<std::vector<std::vector<std::int64_t>>>& index,
                   std::vector<Tensor*> out, Phase phase);

  /// Bottleneck link of a ring over all devices (the slowest hop), after
  /// applying any active link faults at the participants' current clocks.
  LinkSpec RingBottleneck() const;

  // ------------------------------------------------------------------
  // Analytic fast-forward collectives (scale mode). Shape-only analogs of
  // the byte-moving collectives above: they run the SAME charging code
  // (link/codec/fault-threshold math, per-class wire-byte counters) from
  // byte matrices derived purely from shapes, without materializing or
  // moving any payload. The golden-parity suite pins them bit-identical
  // to their byte-moving twins. kDeltaBitmask wire bytes are
  // content-dependent, so shape-based entry points treat it as its dense
  // worst case (the CodecWireBytes(rows, cols) convention).
  // ------------------------------------------------------------------

  /// Logical rows x cols of one would-be payload tensor.
  struct TensorShape {
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    std::int64_t bytes() const { return rows * cols * 4; }
  };

  /// Analytic AllToAllTensors: parts[i][j] = shape device i sends to j.
  void AllToAllTensorShapes(const std::vector<std::vector<TensorShape>>& parts,
                            Phase phase);
  /// Analytic all-to-all of structural (uncompressed) payloads: wire ==
  /// logical bytes. Covers AllToAllVec / AllToAllObjects.
  void AllToAllBytes(const std::vector<std::vector<std::int64_t>>& bytes,
                     Phase phase);
  /// Analytic AllReduceSum of one rows x cols tensor per device.
  void AllReduceSumShape(std::int64_t rows, std::int64_t cols, Phase phase,
                         bool gradient_sync = false);
  /// Analytic AllBroadcastTensors.
  void AllBroadcastTensorShapes(const std::vector<TensorShape>& inputs,
                                Phase phase);

  // ------------------------------------------------------------------
  // Sampled-execution fast-forward (scale mode): replays a recorded step
  // tape through the virtual clocks. Flat advances and barriers replay
  // literally; collectives and compute re-run their real charging code, so
  // link faults, stragglers, and wire-byte collective-failure thresholds
  // fire exactly as they would in a real step (a firing fault poisons the
  // barrier and throws CollectiveError, same as live execution).
  // ------------------------------------------------------------------
  void FastForwardStep(const StepTape& tape);

  SimContext& ctx() { return *ctx_; }

 private:
  /// Per-device serialized egress/ingress model; barrier at the end. Traced
  /// as one "alltoall" slice per participant (egress/ingress bytes,
  /// participant count) and attributed to SimContext comm time. `bytes` is
  /// the logical fp32 matrix; `wire` is the codec bytes that actually cross
  /// each link (time, faults, and wire counters use it). The two-arg form
  /// is for uncompressed (structural) payloads: wire == logical.
  void ChargeAllToAll(const std::vector<std::vector<std::int64_t>>& bytes,
                      const std::vector<std::vector<std::int64_t>>& wire,
                      Phase phase);
  void ChargeAllToAll(const std::vector<std::vector<std::int64_t>>& bytes,
                      Phase phase) {
    ChargeAllToAll(bytes, bytes, phase);
  }
  /// The real all-to-all charge. ChargeAllToAll is a thin wrapper that,
  /// while a step tape records, appends ONE structured kAllToAll op (and
  /// suppresses the flat advances below) so fast-forward re-runs this code.
  void ChargeAllToAllImpl(const std::vector<std::vector<std::int64_t>>& bytes,
                          const std::vector<std::vector<std::int64_t>>& wire,
                          Phase phase);
  /// Ring collective: time = latency_terms + factor * (C-1)/C * wire / bw.
  /// `label` names the trace slices ("allreduce" / "allbroadcast").
  void ChargeRing(std::int64_t total_bytes, std::int64_t wire_total_bytes,
                  double factor, Phase phase, const char* label);
  void ChargeRing(std::int64_t total_bytes, double factor, Phase phase,
                  const char* label) {
    ChargeRing(total_bytes, total_bytes, factor, phase, label);
  }
  void ChargeRingImpl(std::int64_t total_bytes, std::int64_t wire_total_bytes,
                      double factor, Phase phase, const char* label);
  /// Traffic class of a ring schedule over all devices.
  TrafficClass RingClass() const {
    return ctx_->cluster().num_machines() > 1 ? TrafficClass::kCrossMachine
                                              : TrafficClass::kPeerGpu;
  }
  /// Consults the fault plan with this call's wire bytes. On a hit: charges
  /// each device the completed fraction of busy[d] (as comm time, traced
  /// "fault.collective"), records the failing call in the flight recorder
  /// (with its bytes and `traffic_class`), poisons the barrier, and throws
  /// CollectiveError.
  void MaybeFailCollective(std::int64_t wire_bytes, const std::vector<double>& busy,
                           Phase phase, const char* label,
                           const char* traffic_class);

  SimContext* ctx_;
  std::array<Codec, static_cast<std::size_t>(TrafficClass::kNumClasses)>
      wire_codecs_{Codec::kIdentity, Codec::kIdentity, Codec::kIdentity};
  Codec grad_codec_ = Codec::kIdentity;
};

}  // namespace apt
