// Online inference serving engine over trained parameters (ROADMAP item 1).
//
// N request workers — the devices of a simulated cluster — share one
// read-mostly FeatureStore (caches warmed from the request popularity
// distribution via the dry-run frequency machinery) and per-worker frozen
// GnnModel replicas. Arrivals stream through the dynamic micro-batcher
// (batcher.h); closed batches round-robin across workers and execute
// CONCURRENTLY on real threads, one thread per worker, while every cost
// lands on the worker's virtual clock — so latency percentiles are
// bit-deterministic regardless of thread schedule.
//
// Determinism invariant (the serving twin of strategy equivalence): each
// request's subgraph is sampled with an RNG stream keyed by the REQUEST id,
// and the batch merge preserves per-row edge order (merge_batches.h), so a
// request's logits are bit-identical whether it is served alone or inside
// any batch. The parity test asserts batch-of-32 == solo exactly.
//
// Failure semantics: admission control sheds with ShedReason::kQueueFull
// past the queue bound; a poisoned barrier (collective fault elsewhere on
// the cluster) sheds every subsequent batch with ShedReason::kPoisoned —
// requests are never silently hung, mirroring the trainer's fail-fast
// barrier poisoning.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "feature/feature_store.h"
#include "graph/dataset.h"
#include "model/gnn_model.h"
#include "obs/slo.h"
#include "obs/telemetry.h"
#include "sampling/neighbor_sampler.h"
#include "serve/batcher.h"
#include "serve/request.h"
#include "sim/hardware.h"
#include "sim/sim_context.h"

namespace apt::serve {

struct ServeOptions {
  std::vector<int> fanouts{10, 10};
  BatchPolicy batch;
  /// GPU cache budget per worker; 0 serves everything from CPU shards.
  std::int64_t cache_bytes_per_device = 0;
  /// Popularity distribution used for cache warmup — should match the
  /// traffic's (TrafficConfig) so the cache is warmed for the real mix.
  double popularity_alpha = 0.8;
  double popularity_offset = 0.0;
  int warmup_batches = 32;
  std::int64_t warmup_batch_size = 64;
  std::uint64_t warmup_seed = 99;
  /// Base stream of per-request sampling forks (request id keys the fork).
  std::uint64_t sample_seed = 7;
  /// Keep per-response logits (tests/parity); off saves memory in benches.
  bool collect_logits = true;
  /// Width of the online telemetry windows (obs/telemetry.h) the engine
  /// records serve.latency_s / serve.batch.rows / serve.shed into, in
  /// SIMULATED seconds. <= 0 disables serve telemetry. Like the trainer's,
  /// recording never touches the virtual clocks.
  double telemetry_window_s = 2e-3;
  /// SLO rules the engine's watchdog evaluates at batch-close boundaries
  /// (e.g. "serve.latency_s p99 < 2ms"). Empty disables the watchdog —
  /// zero behavior change from pre-SLO serving. A sustained violation
  /// tightens admission control: queue_bound is multiplied by
  /// `slo_queue_tighten_factor` (never below `slo_queue_bound_floor`), so
  /// the engine sheds earlier and the latency of ADMITTED requests recovers
  /// — trading availability for the latency SLO.
  std::vector<obs::SloRule> slo_rules;
  double slo_queue_tighten_factor = 0.5;
  std::int64_t slo_queue_bound_floor = 8;
};

/// Aggregate results of one Run (latencies in simulated seconds).
struct ServeReport {
  std::int64_t offered = 0;
  std::int64_t served = 0;
  std::int64_t shed = 0;
  std::int64_t shed_queue_full = 0;
  std::int64_t shed_poisoned = 0;
  std::int64_t batches = 0;
  double mean_batch_rows = 0.0;
  std::int64_t max_batch_rows = 0;
  double mean_latency_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double max_latency_s = 0.0;
  /// served / (last completion time): the throughput actually sustained.
  double completed_qps = 0.0;
  double shed_rate = 0.0;  ///< shed / offered
  /// One response per offered request, in arrival order (shed included).
  std::vector<Response> responses;
};

class ServeEngine {
 public:
  /// Builds the serving cluster: feature shards placed by a contiguous
  /// block partition, caches warmed from the popularity distribution, one
  /// frozen model replica per device (identical init seeds). `dataset`
  /// must outlive the engine.
  ServeEngine(const Dataset& dataset, ClusterSpec cluster, ModelConfig model,
              ServeOptions options);

  /// Copies trained parameters into every worker replica.
  void LoadParams(GnnModel& src);

  /// Serves one open-loop arrival stream (sorted by arrival time).
  ServeReport Run(std::span<const Request> arrivals);

  /// Serves one request alone on `worker` — the parity baseline. Timing
  /// charges land on worker's clock but cannot affect the returned values.
  /// Returns the seed's logits row(s).
  Tensor ServeSolo(const Request& request, DeviceId worker = 0);

  SimContext& sim() { return *sim_; }
  FeatureStore& store() { return *store_; }
  GnnModel& model(DeviceId dev) {
    return *models_[static_cast<std::size_t>(dev)];
  }
  std::int32_t num_workers() const { return sim_->num_devices(); }

 private:
  /// Samples a request's subgraph with its id-keyed RNG fork.
  SampledBatch SampleRequest(const Request& request) const;

  /// Executes one planned batch on `dev`: sample + gather + forward, all
  /// charged to dev's clock. Appends one response per request to `out`.
  /// `busy_until` is the worker's previous completion time.
  double ExecuteBatch(DeviceId dev, const PlannedBatch& batch,
                      double busy_until, std::vector<Response>& out);

  const Dataset* dataset_;
  ServeOptions opts_;
  std::unique_ptr<SimContext> sim_;
  std::unique_ptr<FeatureStore> store_;
  std::unique_ptr<NeighborSampler> sampler_;
  std::vector<std::unique_ptr<GnnModel>> models_;  ///< one frozen replica per worker
  std::vector<PartId> partition_;
  /// Per-Run latency series (null = telemetry off). Set by Run, recorded
  /// from ExecuteBatch on worker threads (TimeSeries::Record is
  /// thread-safe and order-independent).
  obs::TimeSeries* telem_latency_ = nullptr;
};

}  // namespace apt::serve
