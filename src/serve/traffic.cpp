#include "serve/traffic.h"

#include <cmath>

#include "core/error.h"
#include "core/random.h"
#include "graph/generators.h"

namespace apt::serve {

const char* ToString(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kBursty:
      return "bursty";
  }
  return "?";
}

namespace {

/// Exponential inter-arrival draw; 1-u keeps log's argument in (0, 1].
double ExpDraw(Rng& rng, double rate) {
  return -std::log(1.0 - rng.NextDouble()) / rate;
}

}  // namespace

std::vector<Request> GenerateTraffic(const TrafficConfig& config) {
  APT_CHECK_GT(config.rate_qps, 0.0);
  APT_CHECK_GT(config.duration_s, 0.0);
  APT_CHECK_GT(config.num_nodes, 0);

  Rng base(config.seed);
  Rng arrival_rng = base.Fork(0);
  Rng seed_rng = base.Fork(1);
  const ZipfSampler popularity(config.num_nodes, config.zipf_alpha,
                               config.zipf_offset);

  std::vector<Request> out;
  out.reserve(static_cast<std::size_t>(config.rate_qps * config.duration_s));

  double t = 0.0;
  if (config.kind == ArrivalKind::kPoisson) {
    for (;;) {
      t += ExpDraw(arrival_rng, config.rate_qps);
      if (t >= config.duration_s) break;
      out.push_back({static_cast<RequestId>(out.size()),
                     popularity.Sample(seed_rng), t});
    }
  } else {
    APT_CHECK_GT(config.burst_period_s, 0.0);
    APT_CHECK(config.burst_duty > 0.0 && config.burst_duty <= 1.0);
    const double on_s = config.burst_period_s * config.burst_duty;
    const double on_rate = config.rate_qps / config.burst_duty;
    for (;;) {
      // Position within the current period; draws outside the on-window
      // jump to the next period's window start (off-phase emits nothing).
      // Jump via the period index, not `t += period - phase`: when fmod
      // lands just below the period, that increment is sub-ulp and t would
      // never advance.
      const double phase = std::fmod(t, config.burst_period_s);
      if (phase >= on_s) {
        const double next = (std::floor(t / config.burst_period_s) + 1.0) *
                            config.burst_period_s;
        t = next > t ? next : t + config.burst_period_s;
        continue;
      }
      t += ExpDraw(arrival_rng, on_rate);
      if (t >= config.duration_s) break;
      if (std::fmod(t, config.burst_period_s) >= on_s) continue;  // crossed out
      out.push_back({static_cast<RequestId>(out.size()),
                     popularity.Sample(seed_rng), t});
    }
  }
  return out;
}

}  // namespace apt::serve
