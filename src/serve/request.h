// Request/response types of the online inference serving engine.
//
// A request is one user query: "classify seed node v". The engine samples
// v's k-hop subgraph, gathers input features, and runs a forward pass on
// frozen parameters; the response carries the seed's class logits plus the
// timing the tail-latency reports are built from. All times are SIMULATED
// seconds on the modeled cluster (the same virtual clocks training charges),
// so every latency number is deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace apt::serve {

using RequestId = std::int64_t;

struct Request {
  RequestId id = 0;
  NodeId seed = 0;
  double arrival_s = 0.0;  ///< open-loop arrival on the simulated clock
};

/// Typed rejection causes (admission control / failure handling). A shed
/// request always gets a response — never a hang.
enum class ShedReason : int {
  kNone = 0,
  kQueueFull = 1,  ///< admission control: queue exceeded its bound
  kPoisoned = 2,   ///< barrier poisoned (cluster fault); fail fast
};

const char* ToString(ShedReason r);

struct Response {
  RequestId id = 0;
  NodeId seed = 0;
  double arrival_s = 0.0;
  double done_s = 0.0;     ///< completion time; == arrival_s when shed
  double latency_s = 0.0;  ///< done_s - arrival_s
  bool shed = false;
  ShedReason shed_reason = ShedReason::kNone;
  std::int64_t batch_rows = 0;  ///< seed rows of the batch that served it
  DeviceId worker = -1;
  std::vector<float> logits;  ///< class scores (empty when shed)
};

}  // namespace apt::serve
