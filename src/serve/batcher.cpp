#include "serve/batcher.h"

#include <algorithm>
#include <deque>

#include "core/error.h"

namespace apt::serve {

namespace {

/// Rows of closed batches no worker has picked up yet. Entries are few —
/// the backlog is capped by queue_bound plus one in-flight wave — so linear
/// pruning is fine.
class PendingRows {
 public:
  void Add(double start_s, std::int64_t rows) {
    pending_.push_back({start_s, rows});
    rows_ += rows;
  }

  /// Drops batches already started by time `t` and returns the remainder.
  std::int64_t RowsAt(double t) {
    for (std::size_t i = 0; i < pending_.size();) {
      if (pending_[i].start_s <= t) {
        rows_ -= pending_[i].rows;
        pending_[i] = pending_.back();
        pending_.pop_back();
      } else {
        ++i;
      }
    }
    return rows_;
  }

 private:
  struct Entry {
    double start_s;
    std::int64_t rows;
  };
  std::vector<Entry> pending_;
  std::int64_t rows_ = 0;
};

}  // namespace

BatchPlan PlanBatches(std::span<const Request> arrivals,
                      const BatchPolicy& policy, const DispatchFn& dispatch) {
  APT_CHECK_GE(policy.max_batch, 1);
  APT_CHECK_GE(policy.max_delay_s, 0.0);
  APT_CHECK_GE(policy.queue_bound, 1);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    APT_CHECK_GE(arrivals[i].arrival_s, arrivals[i - 1].arrival_s)
        << "arrivals must be sorted";
  }

  BatchPlan plan;
  std::deque<Request> queue;
  PendingRows pending;
  const auto max_batch = static_cast<std::size_t>(policy.max_batch);
  std::size_t next = 0;

  // Admission: shed while the backlog — rows already queued plus rows of
  // closed batches still waiting for a worker — has reached the bound.
  const auto admit = [&](const Request& r) {
    const std::int64_t backlog =
        pending.RowsAt(r.arrival_s) + static_cast<std::int64_t>(queue.size());
    if (backlog >= policy.queue_bound) {
      plan.shed.push_back(r);
    } else {
      queue.push_back(r);
    }
  };

  while (next < arrivals.size() || !queue.empty()) {
    if (queue.empty()) {
      admit(arrivals[next++]);
      continue;
    }
    // The pending batch's deadline; take everything that arrives before it,
    // or until the size cap.
    const double deadline = queue.front().arrival_s + policy.max_delay_s;
    while (queue.size() < max_batch && next < arrivals.size() &&
           arrivals[next].arrival_s <= deadline) {
      admit(arrivals[next++]);
    }
    const std::size_t take = std::min(queue.size(), max_batch);
    PlannedBatch batch;
    batch.requests.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.requests.push_back(queue.front());
      queue.pop_front();
    }
    // Size-closed: ready the moment its last request arrived. Deadline-
    // closed: ready at the deadline. Close times are monotone because
    // arrivals are sorted, and every arrival processed later is at or after
    // this close (size: last taken arrival <= next arrival; deadline: the
    // window up to the deadline was drained above) — which is what lets
    // PendingRows prune by scanning forward in time.
    batch.close_s =
        take == max_batch ? batch.requests.back().arrival_s : deadline;
    const double start_s = dispatch ? dispatch(batch) : batch.close_s;
    APT_CHECK_GE(start_s, batch.close_s) << "dispatch before batch close";
    if (start_s > batch.close_s) {
      pending.Add(start_s, static_cast<std::int64_t>(batch.requests.size()));
    }
    plan.batches.push_back(std::move(batch));
  }
  return plan;
}

}  // namespace apt::serve
