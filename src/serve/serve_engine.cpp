#include "serve/serve_engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/error.h"
#include "core/random.h"
#include "feature/cache_policy.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel_for.h"
#include "sampling/frequency.h"
#include "sampling/merge_batches.h"

namespace apt::serve {

const char* ToString(ShedReason r) {
  switch (r) {
    case ShedReason::kNone:
      return "none";
    case ShedReason::kQueueFull:
      return "queue_full";
    case ShedReason::kPoisoned:
      return "poisoned";
  }
  return "?";
}

namespace {

/// Multiset expansion-tree size of one request's block stack — identical
/// accounting to the trainer's (engine/exec_common.cpp SampleTreeEdges),
/// restated here so the serving library does not depend on the training
/// engine: each dst's multiplicity propagates to its sampled neighbors and
/// every (frontier entry, sampled slot) pair is one UVA topology read.
double TreeEdges(const SampledBatch& batch) {
  double tree_edges = 0.0;
  std::vector<double> mult;
  for (auto it = batch.blocks.rbegin(); it != batch.blocks.rend(); ++it) {
    const Block& b = *it;
    if (mult.empty()) {
      mult.assign(static_cast<std::size_t>(b.num_dst), 1.0);
    }
    std::vector<double> next(static_cast<std::size_t>(b.num_src()), 0.0);
    for (std::int64_t i = 0; i < b.num_dst; ++i) {
      const double m_i = mult[static_cast<std::size_t>(i)];
      next[static_cast<std::size_t>(i)] += m_i;
      tree_edges += m_i * static_cast<double>(
                              b.indptr[static_cast<std::size_t>(i) + 1] -
                              b.indptr[static_cast<std::size_t>(i)]);
      for (std::int64_t e = b.indptr[static_cast<std::size_t>(i)];
           e < b.indptr[static_cast<std::size_t>(i) + 1]; ++e) {
        next[static_cast<std::size_t>(b.col[static_cast<std::size_t>(e)])] +=
            m_i;
      }
    }
    mult = std::move(next);
  }
  return tree_edges;
}

/// Nearest-rank percentile over an ascending-sorted latency vector.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

Response MakeShedResponse(const Request& r, ShedReason reason, double done_s) {
  Response resp;
  resp.id = r.id;
  resp.seed = r.seed;
  resp.arrival_s = r.arrival_s;
  resp.done_s = done_s;
  resp.latency_s = done_s - r.arrival_s;
  resp.shed = true;
  resp.shed_reason = reason;
  return resp;
}

}  // namespace

ServeEngine::ServeEngine(const Dataset& dataset, ClusterSpec cluster,
                         ModelConfig model, ServeOptions options)
    : dataset_(&dataset), opts_(std::move(options)) {
  sim_ = std::make_unique<SimContext>(std::move(cluster));
  const NodeId n = dataset.graph.num_nodes();
  APT_CHECK_GT(n, 0);
  const std::int32_t devices = sim_->num_devices();

  // Contiguous block partition: only feature placement depends on it in
  // serving (which machine's CPU shard holds each row).
  partition_.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    partition_[static_cast<std::size_t>(v)] =
        static_cast<PartId>((v * devices) / n);
  }
  store_ = std::make_unique<FeatureStore>(
      dataset.features, FeaturePlacementFromPartition(partition_, sim_->cluster()),
      *sim_);
  sampler_ = std::make_unique<NeighborSampler>(dataset.graph, opts_.fanouts);

  // Warm the GPU caches from the POPULARITY distribution: dry-run sampling
  // over Zipf-drawn seeds, frequency counts, then the GDP cache rule (every
  // worker serves the same request mix, so the globally-hottest rule is the
  // right one — there is no per-device partition affinity in serving).
  if (opts_.cache_bytes_per_device > 0) {
    FrequencyCollector freq(n);
    Rng warm(opts_.warmup_seed);
    Rng seed_rng = warm.Fork(0);
    Rng sample_rng = warm.Fork(1);
    const ZipfSampler popularity(n, opts_.popularity_alpha,
                                 opts_.popularity_offset);
    for (int b = 0; b < opts_.warmup_batches; ++b) {
      std::vector<NodeId> seeds(
          static_cast<std::size_t>(opts_.warmup_batch_size));
      for (NodeId& s : seeds) s = popularity.Sample(seed_rng);
      Rng rng = sample_rng.Fork(static_cast<std::uint64_t>(b));
      freq.Record(sampler_->Sample(seeds, rng));
    }
    CachePolicyInput in;
    in.strategy = Strategy::kGDP;
    in.budget_bytes_per_device = opts_.cache_bytes_per_device;
    in.feature_dim = store_->feature_dim();
    in.num_devices = devices;
    in.hotness = freq.counts();
    in.partition = partition_;
    in.graph = &dataset.graph;
    const CacheConfig cache = ConfigureCache(in);
    store_->ConfigureCaches(cache.cache_nodes,
                            store_->CachedRowBytes(store_->feature_dim()));
  }

  if (model.input_dim == 0) model.input_dim = dataset.features.cols();
  if (model.num_classes == 0) model.num_classes = dataset.num_classes;
  models_.reserve(static_cast<std::size_t>(devices));
  for (std::int32_t d = 0; d < devices; ++d) {
    models_.push_back(std::make_unique<GnnModel>(model));
    sim_->AllocPersistent(d, models_.back()->ParamBytes());
  }
}

void ServeEngine::LoadParams(GnnModel& src) {
  std::vector<Param*> from = src.Params();
  for (auto& model : models_) {
    std::vector<Param*> to = model->Params();
    APT_CHECK_EQ(to.size(), from.size()) << "LoadParams across different models";
    for (std::size_t i = 0; i < to.size(); ++i) {
      APT_CHECK(to[i]->value.SameShape(from[i]->value))
          << "LoadParams shape mismatch for " << to[i]->name;
      to[i]->value = from[i]->value;
    }
  }
}

SampledBatch ServeEngine::SampleRequest(const Request& request) const {
  // The fork is keyed by the REQUEST id, never by batch position: sampling
  // must not depend on which batch the request landed in (batch invariance).
  Rng rng = Rng(opts_.sample_seed).Fork(static_cast<std::uint64_t>(request.id));
  const NodeId seed = request.seed;
  return sampler_->Sample(std::span<const NodeId>(&seed, 1), rng);
}

double ServeEngine::ExecuteBatch(DeviceId dev, const PlannedBatch& batch,
                                 double busy_until,
                                 std::vector<Response>& out) {
  const auto rows = static_cast<std::int64_t>(batch.requests.size());
  const double rows_arg = static_cast<double>(rows);
  const double busy0 = sim_->Now(dev);

  // Sampling cost, charged as the trainer charges a training batch
  // (engine/exec_common.cpp): one UVA edge read per expansion-tree edge —
  // per-request work that never amortizes — plus per-HOP kernel launches,
  // charged once per batch: the merged batch's frontier expands with one
  // fused kernel per layer no matter how many requests it carries. The
  // launch amortization is most of why micro-batching wins.
  std::vector<SampledBatch> parts;
  parts.reserve(batch.requests.size());
  double sample_s = 0.0;
  const double edge_s =
      sim_->cluster().machine(sim_->cluster().MachineOf(dev)).cpu_sample_edge_s;
  const double launch_s = sim_->cluster().device(dev).kernel_launch_s;
  std::size_t hops = 0;
  for (const Request& r : batch.requests) {
    parts.push_back(SampleRequest(r));
    sample_s += TreeEdges(parts.back()) * edge_s;
    hops = std::max(hops, parts.back().blocks.size());
  }
  sample_s += static_cast<double>(hops) * launch_s;
  sim_->AdvanceLabeled(dev, sample_s, Phase::kSample, "serve.sample",
                       {{"rows", rows_arg}});

  std::vector<const SampledBatch*> part_ptrs;
  part_ptrs.reserve(parts.size());
  for (const SampledBatch& p : parts) part_ptrs.push_back(&p);
  const MergedBatch merged = MergeSampledBatches(part_ptrs);

  const std::span<const NodeId> input_nodes = merged.batch.input_nodes();
  const std::int64_t dim = store_->feature_dim();
  Tensor feats(static_cast<std::int64_t>(input_nodes.size()), dim);
  store_->Gather(dev, input_nodes, 0, dim, feats);  // charges Phase::kLoad

  GnnModel& model = *models_[static_cast<std::size_t>(dev)];
  sim_->AdvanceLabeled(dev,
                       sim_->ComputeSeconds(dev, model.ForwardFlops(merged.batch.blocks)),
                       Phase::kTrain, "serve.forward", {{"rows", rows_arg}});
  const Tensor logits = model.ForwardFrom(0, merged.batch.blocks, feats, nullptr);

  // Virtual timing: the device clock is a BUSY-time accumulator (it never
  // idles between batches), so wall completion = when the batch could start
  // (close time, or the worker still draining its previous batch) plus this
  // batch's busy time.
  const double service_s = sim_->Now(dev) - busy0;
  const double start_s = std::max(batch.close_s, busy_until);
  const double done_s = start_s + service_s;

  if (obs::TracingEnabled()) {
    obs::EmitSimSpan(sim_->ObsPid(), sim_->ObsStepLane(), start_s, done_s,
                     "batch", "serve",
                     {{"rows", rows_arg}, {"service_s", service_s}});
  }

  obs::Histogram& latency_hist = obs::Metrics::Global().histogram("serve.latency_s");
  for (std::size_t r = 0; r < batch.requests.size(); ++r) {
    const Request& req = batch.requests[r];
    Response resp;
    resp.id = req.id;
    resp.seed = req.seed;
    resp.arrival_s = req.arrival_s;
    resp.done_s = done_s;
    resp.latency_s = done_s - req.arrival_s;
    resp.batch_rows = rows;
    resp.worker = dev;
    latency_hist.Record(resp.latency_s);
    if (telem_latency_ != nullptr) {
      telem_latency_->Record(done_s, resp.latency_s);
    }
    if (opts_.collect_logits) {
      const std::int64_t lo = merged.seed_offsets[r];
      const std::int64_t hi = lo + merged.seed_counts[r];
      resp.logits.reserve(static_cast<std::size_t>((hi - lo) * logits.cols()));
      for (std::int64_t row = lo; row < hi; ++row) {
        const auto span = logits.row_span(row);
        resp.logits.insert(resp.logits.end(), span.begin(), span.end());
      }
    }
    out.push_back(std::move(resp));
  }
  return done_s;
}

ServeReport ServeEngine::Run(std::span<const Request> arrivals) {
  const std::int32_t workers = num_workers();

  // Online telemetry: latencies land at done_s (from worker threads inside
  // ExecuteBatch), batch occupancies at close_s (here, single-threaded),
  // shed rejections at arrival_s (report assembly).
  telem_latency_ = nullptr;
  obs::TimeSeries* telem_rows = nullptr;
  obs::TimeSeries* telem_shed = nullptr;
  if (opts_.telemetry_window_s > 0.0 && obs::Telemetry::Enabled()) {
    auto& telemetry = obs::Telemetry::Global();
    telem_latency_ = &telemetry.series("serve.latency_s", opts_.telemetry_window_s);
    telem_rows = &telemetry.series("serve.batch.rows", opts_.telemetry_window_s);
    telem_shed = &telemetry.series("serve.shed", opts_.telemetry_window_s);
  }

  // Admission control reads `policy.queue_bound` per arrival through the
  // const ref, so the watchdog's tightening below takes effect on every
  // subsequent admission decision of THIS plan.
  BatchPolicy policy = opts_.batch;
  const bool slo_on = telem_latency_ != nullptr && !opts_.slo_rules.empty();
  obs::SloWatchdog watchdog(opts_.slo_rules);
  watchdog.set_callback([this, &policy](const obs::SloViolation&) {
    const std::int64_t next = std::max<std::int64_t>(
        opts_.slo_queue_bound_floor,
        static_cast<std::int64_t>(static_cast<double>(policy.queue_bound) *
                                  opts_.slo_queue_tighten_factor));
    if (next >= policy.queue_bound) return;
    policy.queue_bound = next;
    auto& m = obs::Metrics::Global();
    m.counter("serve.slo.queue_bound_tightened").Increment();
    m.gauge("serve.queue_bound").Set(static_cast<double>(next));
  });

  // Execution interleaves with batching in round-robin WAVES: batch i goes
  // to worker i % W, and once W batches have closed the whole wave executes
  // concurrently (one real thread per worker; each simulated cost lands on
  // the worker's own clock, so the numbers are bit-identical to a serial
  // run). Wave-synchronous execution is what makes admission control both
  // real and deterministic: when the batcher closes a batch, its worker's
  // previous batch (last wave) has already executed, so the dispatch
  // callback can answer with the true start time and the batcher sheds on
  // the actual closed-but-unstarted backlog. The VIRTUAL timeline carries no
  // wave barrier — each worker's batch starts at max(close, own previous
  // completion), exactly as an asynchronous round-robin server would.
  struct WaveSlot {
    PlannedBatch batch;
    double start_s = 0.0;
  };
  std::vector<WaveSlot> wave;
  wave.reserve(static_cast<std::size_t>(workers));
  std::vector<double> busy(static_cast<std::size_t>(workers), 0.0);
  std::vector<std::vector<Response>> per_worker(
      static_cast<std::size_t>(workers));

  const auto execute_wave = [&]() {
    ParallelFor(
        0, static_cast<std::int64_t>(wave.size()),
        [&](std::int64_t w) {
          const WaveSlot& slot = wave[static_cast<std::size_t>(w)];
          auto& out = per_worker[static_cast<std::size_t>(w)];
          if (sim_->BarrierPoisoned()) {
            // Fail fast, never hang: every request of a batch dispatched
            // after the cluster poisoned gets a typed rejection at its
            // batch's close time.
            for (const Request& r : slot.batch.requests) {
              if (telem_shed != nullptr) {
                telem_shed->Record(slot.batch.close_s, 1.0);
              }
              out.push_back(
                  MakeShedResponse(r, ShedReason::kPoisoned, slot.batch.close_s));
            }
            return;
          }
          busy[static_cast<std::size_t>(w)] = ExecuteBatch(
              static_cast<DeviceId>(w), slot.batch, busy[static_cast<std::size_t>(w)],
              out);
        },
        /*grain=*/1);
    wave.clear();
  };

  const DispatchFn dispatch = [&](const PlannedBatch& batch) -> double {
    const std::size_t w = wave.size();
    const double start_s = std::max(batch.close_s, busy[w]);
    if (telem_rows != nullptr) {
      telem_rows->Record(batch.close_s,
                         static_cast<double>(batch.requests.size()));
    }
    wave.push_back({batch, start_s});
    if (wave.size() == static_cast<std::size_t>(workers)) {
      execute_wave();
      // Deterministic watchdog point: the wave has fully executed (join
      // above) and close times are monotone, so every window before
      // WindowOf(close_s) is final — later batches complete at
      // done_s >= their close_s >= this close_s and can only land in
      // windows the cursor has not passed yet.
      if (slo_on) watchdog.Evaluate(batch.close_s);
    }
    return start_s;
  };

  const BatchPlan plan = PlanBatches(arrivals, policy, dispatch);
  execute_wave();  // final partial wave

  ServeReport report;
  report.offered = static_cast<std::int64_t>(arrivals.size());
  report.responses.reserve(arrivals.size());
  for (const Request& r : plan.shed) {
    if (telem_shed != nullptr) telem_shed->Record(r.arrival_s, 1.0);
    report.responses.push_back(
        MakeShedResponse(r, ShedReason::kQueueFull, r.arrival_s));
  }
  if (slo_on) {
    // Close out the tail: one final evaluation strictly past the last
    // completion so the last windows with data become visible.
    double end_s = 0.0;
    for (const double b : busy) end_s = std::max(end_s, b);
    watchdog.Evaluate(end_s + opts_.telemetry_window_s);
  }
  telem_latency_ = nullptr;
  for (auto& worker_responses : per_worker) {
    for (Response& resp : worker_responses) {
      report.responses.push_back(std::move(resp));
    }
  }
  std::sort(report.responses.begin(), report.responses.end(),
            [](const Response& a, const Response& b) {
              return a.arrival_s != b.arrival_s ? a.arrival_s < b.arrival_s
                                                : a.id < b.id;
            });

  std::vector<double> latencies;
  double last_completion = 0.0;
  for (const Response& resp : report.responses) {
    if (resp.shed) {
      ++report.shed;
      if (resp.shed_reason == ShedReason::kQueueFull) ++report.shed_queue_full;
      if (resp.shed_reason == ShedReason::kPoisoned) ++report.shed_poisoned;
      continue;
    }
    ++report.served;
    latencies.push_back(resp.latency_s);
    report.mean_latency_s += resp.latency_s;
    report.max_latency_s = std::max(report.max_latency_s, resp.latency_s);
    last_completion = std::max(last_completion, resp.done_s);
  }
  std::sort(latencies.begin(), latencies.end());
  if (report.served > 0) {
    report.mean_latency_s /= static_cast<double>(report.served);
    report.p50_s = Percentile(latencies, 0.50);
    report.p95_s = Percentile(latencies, 0.95);
    report.p99_s = Percentile(latencies, 0.99);
  }
  if (last_completion > 0.0) {
    report.completed_qps = static_cast<double>(report.served) / last_completion;
  }
  if (report.offered > 0) {
    report.shed_rate =
        static_cast<double>(report.shed) / static_cast<double>(report.offered);
  }
  report.batches = static_cast<std::int64_t>(plan.batches.size());
  std::int64_t batch_rows = 0;
  for (const PlannedBatch& b : plan.batches) {
    const auto rows = static_cast<std::int64_t>(b.requests.size());
    batch_rows += rows;
    report.max_batch_rows = std::max(report.max_batch_rows, rows);
  }
  if (report.batches > 0) {
    report.mean_batch_rows = static_cast<double>(batch_rows) /
                             static_cast<double>(report.batches);
  }

  auto& metrics = obs::Metrics::Global();
  metrics.counter("serve.requests.offered").Add(report.offered);
  metrics.counter("serve.requests.served").Add(report.served);
  metrics.counter("serve.requests.shed").Add(report.shed);
  metrics.counter("serve.shed.queue_full").Add(report.shed_queue_full);
  metrics.counter("serve.shed.poisoned").Add(report.shed_poisoned);
  metrics.counter("serve.batches.closed").Add(report.batches);
  metrics.counter("serve.batch.rows").Add(batch_rows);
  metrics.gauge("serve.latency.p50_s").Set(report.p50_s);
  metrics.gauge("serve.latency.p95_s").Set(report.p95_s);
  metrics.gauge("serve.latency.p99_s").Set(report.p99_s);
  metrics.gauge("serve.latency.mean_s").Set(report.mean_latency_s);
  metrics.gauge("serve.qps.completed").Set(report.completed_qps);
  metrics.gauge("serve.shed.rate").Set(report.shed_rate);
  metrics.gauge("serve.batch.mean_rows").Set(report.mean_batch_rows);

  if (obs::TracingEnabled()) {
    const std::int32_t pid = sim_->ObsPid();
    const std::int32_t lane = sim_->ObsStepLane();
    for (const Response& resp : report.responses) {
      if (resp.shed) {
        obs::EmitSimSpan(pid, lane, resp.arrival_s, resp.done_s, "shed",
                         "serve", {{"reason", 0.0, ToString(resp.shed_reason)}});
      } else {
        obs::EmitSimSpan(pid, lane, resp.arrival_s, resp.done_s, "request",
                         "serve",
                         {{"rows", static_cast<double>(resp.batch_rows)}});
      }
    }
  }
  return report;
}

Tensor ServeEngine::ServeSolo(const Request& request, DeviceId worker) {
  const SampledBatch part = SampleRequest(request);
  const std::int64_t dim = store_->feature_dim();
  Tensor feats(static_cast<std::int64_t>(part.input_nodes().size()), dim);
  store_->Gather(worker, part.input_nodes(), 0, dim, feats);
  GnnModel& model = *models_[static_cast<std::size_t>(worker)];
  return model.ForwardFrom(0, part.blocks, feats, nullptr);
}

}  // namespace apt::serve
