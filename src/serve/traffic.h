// Synthetic open-loop request traffic on the simulated clock.
//
// Open loop: arrival times are drawn from the process independently of how
// fast the server drains them (the load-testing discipline that exposes
// queueing collapse; a closed loop would self-throttle and hide it). Two
// arrival processes — Poisson and bursty on/off — with per-user seed
// popularity drawn from the same shifted-Zipf family the graph generators
// use for access skew, so the request mix exercises the cache the way
// Table 3's skew numbers predict.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "serve/request.h"

namespace apt::serve {

enum class ArrivalKind : int {
  kPoisson = 0,  ///< exponential inter-arrivals at rate_qps
  kBursty = 1,   ///< on/off modulated Poisson (same mean rate)
};

const char* ToString(ArrivalKind k);

struct TrafficConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate_qps = 1000.0;  ///< mean offered load over the whole run
  double duration_s = 1.0;   ///< arrivals fall in [0, duration_s)

  /// Bursty shape: within each period, arrivals only during the first
  /// `burst_duty` fraction, at rate rate_qps / burst_duty — the mean rate
  /// matches the Poisson config, the peaks stress the batcher and queue.
  double burst_period_s = 0.02;
  double burst_duty = 0.25;

  /// Seed popularity: user r of the popularity ranking queries node r;
  /// rank weights follow (rank+1+offset)^-alpha over num_nodes.
  NodeId num_nodes = 0;
  double zipf_alpha = 0.8;
  double zipf_offset = 0.0;

  std::uint64_t seed = 1;  ///< one stream for arrivals, one for seeds
};

/// Generates the full arrival sequence, sorted by arrival time, with
/// request ids 0..n-1 in arrival order. Deterministic given the config.
std::vector<Request> GenerateTraffic(const TrafficConfig& config);

}  // namespace apt::serve
