// Dynamic micro-batcher with admission control.
//
// Queued requests coalesce into micro-batches under a latency budget: a
// batch closes when it reaches `max_batch` requests OR when the OLDEST
// queued request has waited `max_delay_s`, whichever comes first — the
// standard deadline/size rule (TensorFlow Serving's shared batcher, Triton's
// dynamic batcher).
//
// Admission control sheds arrivals with a typed rejection once the server's
// BACKLOG — the open queue plus every closed batch still waiting for a
// worker — reaches `queue_bound` rows: under overload an open-loop queue
// grows without limit, and shedding early keeps the latency of ADMITTED
// requests bounded (fail fast beats queueing forever). Backlog is the one
// place batching touches execution state, and it enters through a single
// seam: the `dispatch` callback, which the caller invokes per closed batch
// and answers with the batch's start time (when a worker actually picks it
// up). Batch GROUPING and close times stay a pure function of arrivals and
// policy; only admission reads the callback's answers. Without a callback
// every batch starts at its close time — infinitely many workers, zero
// backlog, nothing shed — which is the pure-batching core the unit tests
// exercise.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "serve/request.h"

namespace apt::serve {

struct BatchPolicy {
  int max_batch = 32;          ///< close on size
  double max_delay_s = 1e-3;   ///< close when the oldest request waited this
  /// Shed arrivals while backlog (queued + closed-but-unstarted rows)
  /// is at least this many rows.
  std::int64_t queue_bound = 256;
};

/// One closed micro-batch: dispatchable at close_s.
struct PlannedBatch {
  double close_s = 0.0;
  std::vector<Request> requests;
};

struct BatchPlan {
  std::vector<PlannedBatch> batches;  ///< in close-time order
  std::vector<Request> shed;          ///< queue-full rejections
};

/// Answers "when does this closed batch start executing?". The callback may
/// run the batch (the serving engine executes in round-robin waves inside
/// it); it must return a start time >= the batch's close_s.
using DispatchFn = std::function<double(const PlannedBatch&)>;

/// Runs the batcher over an arrival-sorted request stream. `dispatch` (may
/// be empty) feeds worker start times back into the admission backlog.
BatchPlan PlanBatches(std::span<const Request> arrivals,
                      const BatchPolicy& policy,
                      const DispatchFn& dispatch = {});

}  // namespace apt::serve
