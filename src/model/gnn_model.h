// A K-layer GNN model (uniform layer type) with ReLU between layers.
//
// Layer 0 is the *first layer of computation* in the paper's sense (the one
// the parallelization strategies distribute); the final layer emits class
// logits for the seed nodes. The engine may execute layer 0 itself (with
// strategy-specific communication) and use ForwardFrom/BackwardTo for the
// data-parallel remainder — activations are applied at the *entry* of every
// layer k >= 1, so a strategy only needs to produce layer 0's raw output.
#pragma once

#include <memory>
#include <vector>

#include "core/random.h"
#include "model/gat_layer.h"
#include "model/gnn_layer.h"
#include "model/sage_layer.h"
#include "sampling/block.h"
#include "tensor/codec.h"

namespace apt {

enum class ModelKind { kSage, kGat };

const char* ToString(ModelKind kind);

struct ModelConfig {
  ModelKind kind = ModelKind::kSage;
  int num_layers = 3;
  std::int64_t input_dim = 0;
  std::int64_t hidden_dim = 32;   ///< per-head for GAT
  std::int64_t num_classes = 0;
  std::int64_t gat_heads = 4;     ///< heads for hidden GAT layers
  std::uint64_t init_seed = 2024; ///< same seed => identical replicas
};

/// Per-step saved state for one device's forward pass.
struct ModelTape {
  std::vector<std::unique_ptr<LayerContext>> layer_ctx;  ///< per layer
  std::vector<Tensor> pre_activation;  ///< raw layer outputs (for ReLU bwd)
};

class GnnModel {
 public:
  explicit GnnModel(const ModelConfig& config);

  int num_layers() const { return static_cast<int>(layers_.size()); }
  GnnLayer& layer(int i) { return *layers_[static_cast<std::size_t>(i)]; }
  const GnnLayer& layer(int i) const { return *layers_[static_cast<std::size_t>(i)]; }
  const ModelConfig& config() const { return config_; }

  /// Runs layers [first_layer, K) on the block stack. `input` is layer
  /// first_layer's raw input ([blocks[first_layer].num_src, in_dim]); for
  /// first_layer >= 1 the entry ReLU is applied internally. Returns the
  /// logits for blocks.back()'s destination (seed) nodes.
  /// first_layer == K is allowed and returns `input` unchanged (single-layer
  /// models whose only layer a strategy executed itself).
  Tensor ForwardFrom(int first_layer, std::span<const Block> blocks,
                     const Tensor& input, ModelTape* tape);

  /// Backward counterpart; returns the gradient w.r.t. `input` as passed to
  /// ForwardFrom (i.e. including the entry-ReLU backward for layers >= 1).
  Tensor BackwardTo(int first_layer, std::span<const Block> blocks,
                    const ModelTape& tape, const Tensor& grad_logits);

  /// Boundary codec for quantized training (lossy wire codecs). When set,
  /// the layer-0/layer-1 boundary tensors are rounded to the codec grid in
  /// a FIXED canonical place — layer 1's entry, in both directions — so the
  /// rounding is identical whether a strategy computed layer 0 locally
  /// (GDP: ForwardFrom(0)/BackwardTo(0..1)) or assembled it from shipped
  /// rows (DNP/NFP/SNP: ForwardFrom(1)/BackwardTo(1)). Rounding is per-row
  /// / per-element, so it commutes with how rows are batched across devices
  /// (DESIGN.md invariant 8).
  void set_boundary_codec(Codec codec) { boundary_codec_ = codec; }
  Codec boundary_codec() const { return boundary_codec_; }

  std::vector<Param*> Params();
  void ZeroGrad();
  std::int64_t ParamBytes() const;

  /// Total flops of a full forward+backward over the block stack, for the
  /// simulator's compute-time model.
  double StepFlops(std::span<const Block> blocks) const;

  /// Forward-only flops over the block stack: what an inference pass costs
  /// (the serving engine's compute-time model).
  double ForwardFlops(std::span<const Block> blocks) const;

 private:
  ModelConfig config_;
  std::vector<std::unique_ptr<GnnLayer>> layers_;
  Codec boundary_codec_ = Codec::kIdentity;
};

}  // namespace apt
