#include "model/gnn_model.h"
#include <algorithm>

#include "core/error.h"
#include "tensor/ops.h"

namespace apt {

const char* ToString(ModelKind kind) {
  switch (kind) {
    case ModelKind::kSage:
      return "GraphSAGE";
    case ModelKind::kGat:
      return "GAT";
  }
  return "?";
}

GnnModel::GnnModel(const ModelConfig& config) : config_(config) {
  APT_CHECK_GT(config.num_layers, 0);
  APT_CHECK_GT(config.input_dim, 0);
  APT_CHECK_GT(config.num_classes, 1);
  Rng rng(config.init_seed);
  for (int k = 0; k < config.num_layers; ++k) {
    const bool last = k == config.num_layers - 1;
    Rng layer_rng = rng.Fork(static_cast<std::uint64_t>(k));
    if (config.kind == ModelKind::kSage) {
      const std::int64_t in = k == 0 ? config.input_dim : config.hidden_dim;
      const std::int64_t out = last ? config.num_classes : config.hidden_dim;
      layers_.push_back(std::make_unique<SageLayer>(in, out, layer_rng));
    } else {
      // Hidden GAT layers concatenate heads; the final layer uses one head
      // sized to the class count.
      const std::int64_t in =
          k == 0 ? config.input_dim : config.hidden_dim * config.gat_heads;
      const std::int64_t head_dim = last ? config.num_classes : config.hidden_dim;
      const std::int64_t heads = last ? 1 : config.gat_heads;
      layers_.push_back(std::make_unique<GatLayer>(in, head_dim, heads, layer_rng));
    }
  }
}

Tensor GnnModel::ForwardFrom(int first_layer, std::span<const Block> blocks,
                             const Tensor& input, ModelTape* tape) {
  APT_CHECK_EQ(static_cast<int>(blocks.size()), num_layers());
  // first_layer == num_layers is the single-layer-model case: a strategy
  // computed the whole network itself and this call is an identity.
  APT_CHECK(first_layer >= 0 && first_layer <= num_layers());
  if (tape != nullptr) {
    tape->layer_ctx.resize(static_cast<std::size_t>(num_layers()));
    tape->pre_activation.resize(static_cast<std::size_t>(num_layers()));
  }
  Tensor h = input;
  for (int k = first_layer; k < num_layers(); ++k) {
    if (k >= 1) {
      // Quantized boundary: round the layer-0 raw output ONCE at layer 1's
      // entry, before it is saved or activated. Every strategy funnels
      // through this point with the same row values, so the rounded tensor
      // is identical across strategies.
      if (k == 1) CodecRoundRows(boundary_codec_, h);
      // Entry activation: ReLU on the previous layer's raw output. Save the
      // raw values for the backward pass.
      if (tape != nullptr) {
        tape->pre_activation[static_cast<std::size_t>(k)] = h;
      }
      Tensor activated(h.rows(), h.cols());
      Relu(h, activated);
      h = std::move(activated);
    }
    const Block& b = blocks[static_cast<std::size_t>(k)];
    APT_CHECK_EQ(h.rows(), b.num_src()) << "layer " << k << " input rows";
    std::unique_ptr<LayerContext> ctx;
    h = layers_[static_cast<std::size_t>(k)]->Forward(
        b.csr(), b.num_dst, h, tape != nullptr ? &ctx : nullptr);
    if (tape != nullptr) {
      tape->layer_ctx[static_cast<std::size_t>(k)] = std::move(ctx);
    }
  }
  return h;
}

Tensor GnnModel::BackwardTo(int first_layer, std::span<const Block> blocks,
                            const ModelTape& tape, const Tensor& grad_logits) {
  APT_CHECK_EQ(static_cast<int>(blocks.size()), num_layers());
  Tensor grad = grad_logits;
  for (int k = num_layers() - 1; k >= first_layer; --k) {
    const Block& b = blocks[static_cast<std::size_t>(k)];
    grad = layers_[static_cast<std::size_t>(k)]->Backward(
        b.csr(), b.num_dst, *tape.layer_ctx[static_cast<std::size_t>(k)], grad);
    if (k >= 1) {
      const Tensor& raw = tape.pre_activation[static_cast<std::size_t>(k)];
      Tensor grad_raw(raw.rows(), raw.cols());
      ReluBackward(raw, grad, grad_raw);
      grad = std::move(grad_raw);
      // Quantized boundary, backward direction: the gradient handed across
      // the layer-1/layer-0 boundary is rounded once here — the same value
      // whether the caller continues into layer 0 locally (GDP) or ships
      // the rows back to their owners (DNP).
      if (k == 1) CodecRoundRows(boundary_codec_, grad);
    }
  }
  return grad;
}

std::vector<Param*> GnnModel::Params() {
  std::vector<Param*> out;
  for (auto& l : layers_) l->CollectParams(out);
  return out;
}

void GnnModel::ZeroGrad() {
  for (Param* p : Params()) p->ZeroGrad();
}

std::int64_t GnnModel::ParamBytes() const {
  std::int64_t bytes = 0;
  for (auto& l : layers_) {
    std::vector<Param*> params;
    l->CollectParams(params);
    for (const Param* p : params) bytes += p->bytes();
  }
  return bytes;
}

double GnnModel::ForwardFlops(std::span<const Block> blocks) const {
  APT_CHECK_EQ(static_cast<int>(blocks.size()), num_layers());
  double flops = 0.0;
  for (int k = 0; k < num_layers(); ++k) {
    const Block& b = blocks[static_cast<std::size_t>(k)];
    flops += layers_[static_cast<std::size_t>(k)]->ForwardFlops(
        b.num_src(), b.num_dst, b.num_edges());
  }
  return flops;
}

double GnnModel::StepFlops(std::span<const Block> blocks) const {
  APT_CHECK_EQ(static_cast<int>(blocks.size()), num_layers());
  double flops = 0.0;
  for (int k = 0; k < num_layers(); ++k) {
    const Block& b = blocks[static_cast<std::size_t>(k)];
    flops += layers_[static_cast<std::size_t>(k)]->ForwardFlops(
                 b.num_src(), b.num_dst, b.num_edges()) +
             layers_[static_cast<std::size_t>(k)]->BackwardFlops(
                 b.num_src(), b.num_dst, b.num_edges());
  }
  return flops;
}

}  // namespace apt
