// Optimizers operating on Param lists (per device replica; DDP keeps the
// replicas identical because gradients are allreduced before Step).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "model/param.h"

namespace apt {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual void Step(const std::vector<Param*>& params) = 0;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(float lr, float weight_decay = 0.0f)
      : lr_(lr), weight_decay_(weight_decay) {}
  void Step(const std::vector<Param*>& params) override;

 private:
  float lr_;
  float weight_decay_;
};

class Adam final : public Optimizer {
 public:
  Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f);
  void Step(const std::vector<Param*>& params) override;

 private:
  struct State {
    Tensor m;
    Tensor v;
  };
  float lr_, beta1_, beta2_, eps_;
  std::int64_t t_ = 0;
  std::unordered_map<const Param*, State> state_;
};

}  // namespace apt
