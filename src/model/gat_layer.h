// Graph attention layer (GAT, Velickovic et al.) with multi-head attention
// and concatenated head outputs:
//   z_i = W^T h_i;  e_uv = LeakyReLU(a_l . z_u + a_r . z_v);
//   alpha = softmax over v's in-edges;  out_v = ||_heads sum_u alpha_uv z_u.
//
// Attention needs every destination to see *all* of its source nodes'
// projected embeddings before the softmax — the reason the paper finds SNP
// and NFP pay extra communication for GAT (Fig 10). To support those paths
// the projection (Project/ProjectBackward) and the attention block
// (AttentionForward/AttentionBackward) are exposed separately, so the
// engine can insert communication between them.
#pragma once

#include "core/random.h"
#include "model/gnn_layer.h"

namespace apt {

/// Saved activations of the attention block (public: the engine stores these
/// across the distributed communication boundary).
struct GatAttentionContext final : LayerContext {
  Tensor z;                          ///< [num_src, heads*head_dim]
  std::vector<std::vector<float>> alpha;      ///< per head, per edge
  std::vector<std::vector<float>> score_raw;  ///< pre-LeakyReLU logits
};

class GatLayer final : public GnnLayer {
 public:
  GatLayer(std::int64_t in_dim, std::int64_t head_dim, std::int64_t num_heads,
           Rng& rng);

  // --- monolithic interface (GDP / DNP local execution) -----------------
  Tensor Forward(const CsrView& csr, std::int64_t num_dst, const Tensor& input,
                 std::unique_ptr<LayerContext>* saved) override;
  Tensor Backward(const CsrView& csr, std::int64_t num_dst, const LayerContext& saved,
                  const Tensor& grad_out) override;
  void CollectParams(std::vector<Param*>& out) override;
  std::int64_t in_dim() const override { return in_dim_; }
  std::int64_t out_dim() const override { return num_heads_ * head_dim_; }
  double ForwardFlops(std::int64_t num_src, std::int64_t num_dst,
                      std::int64_t num_edges) const override;
  double BackwardFlops(std::int64_t num_src, std::int64_t num_dst,
                       std::int64_t num_edges) const override;

  // --- split interface (SNP / NFP distributed execution) ----------------

  /// z = input W  ([rows, heads*head_dim]).
  Tensor Project(const Tensor& input) const;
  /// Accumulates grad_W (+nothing else); returns grad_input.
  Tensor ProjectBackward(const Tensor& input, const Tensor& grad_z);

  /// Attention given already-projected sources. The dst prefix convention
  /// applies to z as it does to input rows.
  Tensor AttentionForward(const CsrView& csr, std::int64_t num_dst, const Tensor& z,
                          std::unique_ptr<GatAttentionContext>* saved) const;
  /// Returns grad_z; accumulates attention-vector and bias grads.
  Tensor AttentionBackward(const CsrView& csr, std::int64_t num_dst,
                           const GatAttentionContext& saved, const Tensor& grad_out);

  std::int64_t num_heads() const { return num_heads_; }
  std::int64_t head_dim() const { return head_dim_; }
  Param& w() { return w_; }

  static constexpr float kLeakySlope = 0.2f;

 private:
  std::int64_t in_dim_;
  std::int64_t head_dim_;
  std::int64_t num_heads_;
  Param w_;          ///< [in_dim, heads*head_dim]
  Param attn_src_;   ///< [heads, head_dim]
  Param attn_dst_;   ///< [heads, head_dim]
  Param bias_;       ///< [1, heads*head_dim]
};

}  // namespace apt
