// Abstract GNN layer interface consumed by the unified execution engine.
//
// A layer computes destination embeddings for one bipartite Block from
// source embeddings. Forward returns a per-call context object holding the
// saved activations Backward needs, so a single layer replica can be driven
// over many blocks per step (the engine runs one replica per device).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "model/param.h"
#include "tensor/segment_ops.h"
#include "tensor/tensor.h"

namespace apt {

/// Opaque saved-activation holder; each layer defines its own subclass.
class LayerContext {
 public:
  virtual ~LayerContext() = default;
};

class GnnLayer {
 public:
  virtual ~GnnLayer() = default;

  /// input is [num_src, in_dim]; the first num_dst rows are the destination
  /// nodes' own embeddings (Block prefix convention). Returns
  /// [num_dst, out_dim]; `saved` receives the context for Backward.
  virtual Tensor Forward(const CsrView& csr, std::int64_t num_dst,
                         const Tensor& input,
                         std::unique_ptr<LayerContext>* saved) = 0;

  /// Returns grad_input [num_src, in_dim]; accumulates parameter grads.
  virtual Tensor Backward(const CsrView& csr, std::int64_t num_dst,
                          const LayerContext& saved, const Tensor& grad_out) = 0;

  virtual void CollectParams(std::vector<Param*>& out) = 0;

  virtual std::int64_t in_dim() const = 0;
  virtual std::int64_t out_dim() const = 0;

  /// Approximate flop counts for the simulator's compute-time model.
  virtual double ForwardFlops(std::int64_t num_src, std::int64_t num_dst,
                              std::int64_t num_edges) const = 0;
  virtual double BackwardFlops(std::int64_t num_src, std::int64_t num_dst,
                               std::int64_t num_edges) const = 0;
};

}  // namespace apt
