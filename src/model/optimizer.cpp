#include "model/optimizer.h"

#include <cmath>

namespace apt {

void Sgd::Step(const std::vector<Param*>& params) {
  for (Param* p : params) {
    float* v = p->value.data();
    const float* g = p->grad.data();
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      v[i] -= lr_ * (g[i] + weight_decay_ * v[i]);
    }
  }
}

Adam::Adam(float lr, float beta1, float beta2, float eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void Adam::Step(const std::vector<Param*>& params) {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (Param* p : params) {
    auto [it, inserted] = state_.try_emplace(p);
    if (inserted) {
      it->second.m = Tensor(p->value.rows(), p->value.cols());
      it->second.v = Tensor(p->value.rows(), p->value.cols());
    }
    float* value = p->value.data();
    const float* g = p->grad.data();
    float* m = it->second.m.data();
    float* v = it->second.v.data();
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      value[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace apt
