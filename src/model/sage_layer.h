// GraphSAGE layer with mean aggregation (paper's default model):
//   out_d = W_self^T h_d + W_neigh^T mean_{u in N(d)} h_u + bias.
//
// Besides the monolithic Forward/Backward used for non-distributed layers,
// the class exposes the partial-computation pieces the engine composes for
// NFP (dimension-sliced projection) and SNP (source-side partial
// aggregation): mean aggregation commutes with the linear projection, which
// is exactly why those strategies are semantically equivalent to GDP.
#pragma once

#include <span>

#include "core/random.h"
#include "model/gnn_layer.h"

namespace apt {

class SageLayer final : public GnnLayer {
 public:
  SageLayer(std::int64_t in_dim, std::int64_t out_dim, Rng& rng);

  Tensor Forward(const CsrView& csr, std::int64_t num_dst, const Tensor& input,
                 std::unique_ptr<LayerContext>* saved) override;
  Tensor Backward(const CsrView& csr, std::int64_t num_dst, const LayerContext& saved,
                  const Tensor& grad_out) override;
  void CollectParams(std::vector<Param*>& out) override;
  std::int64_t in_dim() const override { return in_dim_; }
  std::int64_t out_dim() const override { return out_dim_; }
  double ForwardFlops(std::int64_t num_src, std::int64_t num_dst,
                      std::int64_t num_edges) const override;
  double BackwardFlops(std::int64_t num_src, std::int64_t num_dst,
                       std::int64_t num_edges) const override;

  // --- canonical quantized backward (parameter grads only) --------------
  //
  // Quantized training needs layer-0 parameter gradients that are invariant
  // to HOW dst rows are grouped across devices (GDP groups by origin, DNP
  // by owner). Each dst row's contribution to a parameter entry is a single
  // product; BackwardQuantized computes it in double, rounds it to a shared
  // power-of-two grid, and accumulates in double — every partial sum is an
  // exact multiple of the grid step well inside double's 53-bit mantissa,
  // so addition is exact and the total is identical under any regrouping
  // (DESIGN.md invariant 8). Input gradients are NOT produced: the callers
  // only need parameter grads at layer 0.

  /// Length of the double accumulator: w_self then w_neigh (row-major,
  /// in_dim x out_dim each) then bias (out_dim).
  std::int64_t QuantizedAccumSize() const {
    return 2 * in_dim_ * out_dim_ + out_dim_;
  }
  /// maxabs over this block's layer-0 backward consumables: the dst-prefix
  /// input rows and the aggregated neighbor rows.
  double QuantizedInputMaxAbs(std::int64_t num_dst,
                              const LayerContext& saved) const;
  /// Accumulates the grid-rounded parameter-grad contributions of this
  /// block's dst rows onto `acc`. `grid_w` / `grid_b` must be powers of two
  /// shared by every participating block (see QuantizedLayer0Backward).
  void BackwardQuantized(std::int64_t num_dst, const LayerContext& saved,
                         const Tensor& grad_out, double grid_w, double grid_b,
                         std::span<double> acc) const;

  Param& w_self() { return w_self_; }
  Param& w_neigh() { return w_neigh_; }
  Param& bias() { return bias_; }
  const Param& w_self() const { return w_self_; }
  const Param& w_neigh() const { return w_neigh_; }
  const Param& bias() const { return bias_; }

 private:
  std::int64_t in_dim_;
  std::int64_t out_dim_;
  Param w_self_;   ///< [in_dim, out_dim]
  Param w_neigh_;  ///< [in_dim, out_dim]
  Param bias_;     ///< [1, out_dim]
};

}  // namespace apt
