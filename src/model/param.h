// Trainable parameter: value + gradient accumulator.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace apt {

struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param() = default;
  Param(std::string n, std::int64_t rows, std::int64_t cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}

  void ZeroGrad() { grad.Zero(); }
  std::int64_t bytes() const { return value.bytes(); }
};

}  // namespace apt
