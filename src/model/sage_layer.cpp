#include "model/sage_layer.h"
#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "runtime/parallel_for.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace apt {

namespace {

struct SageContext final : LayerContext {
  Tensor input;  ///< [num_src, in_dim]
  Tensor agg;    ///< [num_dst, in_dim] mean-aggregated neighbors
};

}  // namespace

SageLayer::SageLayer(std::int64_t in_dim, std::int64_t out_dim, Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      w_self_("sage.w_self", in_dim, out_dim),
      w_neigh_("sage.w_neigh", in_dim, out_dim),
      bias_("sage.bias", 1, out_dim) {
  XavierUniform(w_self_.value, rng);
  XavierUniform(w_neigh_.value, rng);
}

Tensor SageLayer::Forward(const CsrView& csr, std::int64_t num_dst, const Tensor& input,
                          std::unique_ptr<LayerContext>* saved) {
  APT_CHECK_EQ(input.cols(), in_dim_);
  APT_CHECK_GE(input.rows(), num_dst);
  auto ctx = std::make_unique<SageContext>();
  ctx->agg = Tensor(num_dst, in_dim_);
  SpmmMean(csr, input, ctx->agg);

  Tensor out(num_dst, out_dim_);
  // Self term: only the dst prefix of the input participates.
  Tensor self_rows(num_dst, in_dim_);
  std::copy_n(input.data(), num_dst * in_dim_, self_rows.data());
  Matmul(self_rows, w_self_.value, out);
  Matmul(ctx->agg, w_neigh_.value, out, 1.0f, 1.0f);
  AddBiasRows(out, bias_.value);

  if (saved != nullptr) {
    ctx->input = input;
    *saved = std::move(ctx);
  }
  return out;
}

Tensor SageLayer::Backward(const CsrView& csr, std::int64_t num_dst,
                           const LayerContext& saved, const Tensor& grad_out) {
  const auto& ctx = dynamic_cast<const SageContext&>(saved);
  APT_CHECK_EQ(grad_out.rows(), num_dst);
  APT_CHECK_EQ(grad_out.cols(), out_dim_);
  const std::int64_t num_src = ctx.input.rows();

  // Parameter grads.
  Tensor self_rows(num_dst, in_dim_);
  std::copy_n(ctx.input.data(), num_dst * in_dim_, self_rows.data());
  MatmulTN(self_rows, grad_out, w_self_.grad, 1.0f, 1.0f);
  MatmulTN(ctx.agg, grad_out, w_neigh_.grad, 1.0f, 1.0f);
  Tensor gb(1, out_dim_);
  BiasGradRows(grad_out, gb);
  Axpy(1.0f, gb, bias_.grad);

  // Input grads.
  Tensor grad_input(num_src, in_dim_);
  // Through the neighbor path: grad_agg = grad_out W_neigh^T, then SpMM^T.
  Tensor grad_agg(num_dst, in_dim_);
  MatmulNT(grad_out, w_neigh_.value, grad_agg);
  SpmmMeanBackward(csr, grad_agg, grad_input);
  // Through the self path: adds into the dst prefix rows.
  Tensor grad_self(num_dst, in_dim_);
  MatmulNT(grad_out, w_self_.value, grad_self);
  for (std::int64_t i = 0; i < num_dst; ++i) {
    float* dst = grad_input.row(i);
    const float* src = grad_self.row(i);
    for (std::int64_t j = 0; j < in_dim_; ++j) dst[j] += src[j];
  }
  return grad_input;
}

double SageLayer::QuantizedInputMaxAbs(std::int64_t num_dst,
                                       const LayerContext& saved) const {
  const auto& ctx = dynamic_cast<const SageContext&>(saved);
  double m = 0.0;
  const float* self = ctx.input.data();
  for (std::int64_t i = 0; i < num_dst * in_dim_; ++i) {
    m = std::max(m, static_cast<double>(std::fabs(self[i])));
  }
  const float* agg = ctx.agg.data();
  for (std::int64_t i = 0; i < ctx.agg.numel(); ++i) {
    m = std::max(m, static_cast<double>(std::fabs(agg[i])));
  }
  return m;
}

void SageLayer::BackwardQuantized(std::int64_t num_dst, const LayerContext& saved,
                                  const Tensor& grad_out, double grid_w,
                                  double grid_b, std::span<double> acc) const {
  const auto& ctx = dynamic_cast<const SageContext&>(saved);
  APT_CHECK_EQ(grad_out.rows(), num_dst);
  APT_CHECK_EQ(grad_out.cols(), out_dim_);
  APT_CHECK_EQ(static_cast<std::int64_t>(acc.size()), QuantizedAccumSize());
  APT_CHECK_GT(grid_w, 0.0);
  APT_CHECK_GT(grid_b, 0.0);
  // Grids are powers of two: their reciprocals are exact, so the rounded
  // term nearbyint(c/grid)*grid is bit-identical however it is computed.
  const double inv_w = 1.0 / grid_w;
  const double inv_b = 1.0 / grid_b;
  double* w_self_acc = acc.data();
  double* w_neigh_acc = acc.data() + in_dim_ * out_dim_;
  double* bias_acc = acc.data() + 2 * in_dim_ * out_dim_;
  // Parallel over input dims: each lane owns disjoint accumulator rows, and
  // every addition is exact, so the split cannot change results.
  const std::int64_t out = out_dim_;
  ParallelFor(
      0, in_dim_,
      [&](std::int64_t m) {
        double* self_row = w_self_acc + m * out;
        double* neigh_row = w_neigh_acc + m * out;
        for (std::int64_t r = 0; r < num_dst; ++r) {
          const double a_self = static_cast<double>(ctx.input.row(r)[m]);
          const double a_agg = static_cast<double>(ctx.agg.row(r)[m]);
          const float* g = grad_out.row(r);
          for (std::int64_t n = 0; n < out; ++n) {
            const double gn = static_cast<double>(g[n]);
            self_row[n] += std::nearbyint(a_self * gn * inv_w) * grid_w;
            neigh_row[n] += std::nearbyint(a_agg * gn * inv_w) * grid_w;
          }
        }
      },
      /*grain=*/std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(1, out)));
  for (std::int64_t r = 0; r < num_dst; ++r) {
    const float* g = grad_out.row(r);
    for (std::int64_t n = 0; n < out; ++n) {
      bias_acc[n] += std::nearbyint(static_cast<double>(g[n]) * inv_b) * grid_b;
    }
  }
}

void SageLayer::CollectParams(std::vector<Param*>& out) {
  out.push_back(&w_self_);
  out.push_back(&w_neigh_);
  out.push_back(&bias_);
}

double SageLayer::ForwardFlops(std::int64_t num_src, std::int64_t num_dst,
                               std::int64_t num_edges) const {
  (void)num_src;
  const double proj = 4.0 * static_cast<double>(num_dst) * in_dim_ * out_dim_;
  const double agg = 2.0 * static_cast<double>(num_edges) * in_dim_;
  return proj + agg;
}

double SageLayer::BackwardFlops(std::int64_t num_src, std::int64_t num_dst,
                                std::int64_t num_edges) const {
  (void)num_src;
  // Two GEMMs per weight (param grad + input grad) plus the SpMM transpose.
  const double proj = 8.0 * static_cast<double>(num_dst) * in_dim_ * out_dim_;
  const double agg = 2.0 * static_cast<double>(num_edges) * in_dim_;
  return proj + agg;
}

}  // namespace apt
