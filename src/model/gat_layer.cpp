#include "model/gat_layer.h"

#include <algorithm>

#include <cmath>

#include "core/error.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace apt {

namespace {

struct GatFullContext final : LayerContext {
  Tensor input;
  std::unique_ptr<GatAttentionContext> attn;
};

/// Extracts one head's column slice of z into a contiguous tensor.
Tensor HeadSlice(const Tensor& z, std::int64_t head, std::int64_t head_dim) {
  Tensor out(z.rows(), head_dim);
  const std::int64_t lo = head * head_dim;
  for (std::int64_t i = 0; i < z.rows(); ++i) {
    std::copy_n(z.row(i) + lo, head_dim, out.row(i));
  }
  return out;
}

void AddHeadSlice(Tensor& z, std::int64_t head, std::int64_t head_dim,
                  const Tensor& slice) {
  const std::int64_t lo = head * head_dim;
  for (std::int64_t i = 0; i < z.rows(); ++i) {
    float* dst = z.row(i) + lo;
    const float* src = slice.row(i);
    for (std::int64_t j = 0; j < head_dim; ++j) dst[j] += src[j];
  }
}

}  // namespace

GatLayer::GatLayer(std::int64_t in_dim, std::int64_t head_dim, std::int64_t num_heads,
                   Rng& rng)
    : in_dim_(in_dim),
      head_dim_(head_dim),
      num_heads_(num_heads),
      w_("gat.w", in_dim, num_heads * head_dim),
      attn_src_("gat.attn_src", num_heads, head_dim),
      attn_dst_("gat.attn_dst", num_heads, head_dim),
      bias_("gat.bias", 1, num_heads * head_dim) {
  XavierUniform(w_.value, rng);
  XavierUniform(attn_src_.value, rng);
  XavierUniform(attn_dst_.value, rng);
}

Tensor GatLayer::Project(const Tensor& input) const {
  APT_CHECK_EQ(input.cols(), in_dim_);
  Tensor z(input.rows(), out_dim());
  Matmul(input, w_.value, z);
  return z;
}

Tensor GatLayer::ProjectBackward(const Tensor& input, const Tensor& grad_z) {
  APT_CHECK_EQ(grad_z.rows(), input.rows());
  MatmulTN(input, grad_z, w_.grad, 1.0f, 1.0f);
  Tensor grad_input(input.rows(), in_dim_);
  MatmulNT(grad_z, w_.value, grad_input);
  return grad_input;
}

Tensor GatLayer::AttentionForward(const CsrView& csr, std::int64_t num_dst,
                                  const Tensor& z,
                                  std::unique_ptr<GatAttentionContext>* saved) const {
  APT_CHECK_EQ(z.cols(), out_dim());
  APT_CHECK_GE(z.rows(), num_dst);
  const std::int64_t e = csr.num_edges();
  auto ctx = std::make_unique<GatAttentionContext>();
  ctx->alpha.resize(static_cast<std::size_t>(num_heads_));
  ctx->score_raw.resize(static_cast<std::size_t>(num_heads_));

  Tensor out(num_dst, out_dim());
  for (std::int64_t h = 0; h < num_heads_; ++h) {
    const Tensor zh = HeadSlice(z, h, head_dim_);
    // Per-node attention scalars.
    std::vector<float> a_src(static_cast<std::size_t>(z.rows()), 0.0f);
    std::vector<float> a_dst(static_cast<std::size_t>(num_dst), 0.0f);
    const float* al = attn_src_.value.row(h);
    const float* ar = attn_dst_.value.row(h);
    for (std::int64_t i = 0; i < z.rows(); ++i) {
      const float* zr = zh.row(i);
      float acc = 0.0f;
      for (std::int64_t j = 0; j < head_dim_; ++j) acc += al[j] * zr[j];
      a_src[static_cast<std::size_t>(i)] = acc;
    }
    for (std::int64_t i = 0; i < num_dst; ++i) {
      const float* zr = zh.row(i);
      float acc = 0.0f;
      for (std::int64_t j = 0; j < head_dim_; ++j) acc += ar[j] * zr[j];
      a_dst[static_cast<std::size_t>(i)] = acc;
    }
    // Edge logits -> LeakyReLU -> segment softmax.
    auto& raw = ctx->score_raw[static_cast<std::size_t>(h)];
    raw.assign(static_cast<std::size_t>(e), 0.0f);
    SddmmAdd(csr, a_src, a_dst, raw);
    std::vector<float> activated(static_cast<std::size_t>(e));
    for (std::int64_t i = 0; i < e; ++i) {
      const float v = raw[static_cast<std::size_t>(i)];
      activated[static_cast<std::size_t>(i)] = v > 0.0f ? v : kLeakySlope * v;
    }
    auto& alpha = ctx->alpha[static_cast<std::size_t>(h)];
    alpha.assign(static_cast<std::size_t>(e), 0.0f);
    SegmentSoftmax(csr, activated, alpha);
    // Weighted aggregation into the head's output slice.
    Tensor head_out(num_dst, head_dim_);
    SpmmWeightedSum(csr, alpha, zh, head_out);
    AddHeadSlice(out, h, head_dim_, head_out);
  }
  ctx->z = z;
  AddBiasRows(out, bias_.value);
  if (saved != nullptr) *saved = std::move(ctx);
  return out;
}

Tensor GatLayer::AttentionBackward(const CsrView& csr, std::int64_t num_dst,
                                   const GatAttentionContext& saved,
                                   const Tensor& grad_out) {
  const Tensor& z = saved.z;
  const std::int64_t e = csr.num_edges();
  APT_CHECK_EQ(grad_out.rows(), num_dst);
  APT_CHECK_EQ(grad_out.cols(), out_dim());

  Tensor gb(1, out_dim());
  BiasGradRows(grad_out, gb);
  Axpy(1.0f, gb, bias_.grad);

  Tensor grad_z(z.rows(), out_dim());
  for (std::int64_t h = 0; h < num_heads_; ++h) {
    const Tensor zh = HeadSlice(z, h, head_dim_);
    const Tensor grad_out_h = HeadSlice(grad_out, h, head_dim_);
    const auto& alpha = saved.alpha[static_cast<std::size_t>(h)];
    const auto& raw = saved.score_raw[static_cast<std::size_t>(h)];

    // Through the weighted aggregation.
    std::vector<float> grad_alpha(static_cast<std::size_t>(e), 0.0f);
    Tensor grad_zh(z.rows(), head_dim_);
    SpmmWeightedSumBackward(csr, alpha, zh, grad_out_h, grad_alpha, &grad_zh);

    // Through the softmax.
    std::vector<float> grad_act(static_cast<std::size_t>(e), 0.0f);
    SegmentSoftmaxBackward(csr, alpha, grad_alpha, grad_act);

    // Through LeakyReLU.
    std::vector<float> grad_raw(static_cast<std::size_t>(e));
    for (std::int64_t i = 0; i < e; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i);
      grad_raw[idx] = raw[idx] > 0.0f ? grad_act[idx] : kLeakySlope * grad_act[idx];
    }

    // Through the additive logit: per-node scalar grads.
    std::vector<float> grad_a_src(static_cast<std::size_t>(z.rows()), 0.0f);
    std::vector<float> grad_a_dst(static_cast<std::size_t>(num_dst), 0.0f);
    SddmmAddBackward(csr, grad_raw, grad_a_src, grad_a_dst);

    // a_src_i = <attn_src_h, z_i>: accumulate both directions.
    float* gal = attn_src_.grad.row(h);
    const float* al = attn_src_.value.row(h);
    for (std::int64_t i = 0; i < z.rows(); ++i) {
      const float g = grad_a_src[static_cast<std::size_t>(i)];
      if (g == 0.0f) continue;
      const float* zr = zh.row(i);
      float* gz = grad_zh.row(i);
      for (std::int64_t j = 0; j < head_dim_; ++j) {
        gal[j] += g * zr[j];
        gz[j] += g * al[j];
      }
    }
    float* gar = attn_dst_.grad.row(h);
    const float* ar = attn_dst_.value.row(h);
    for (std::int64_t i = 0; i < num_dst; ++i) {
      const float g = grad_a_dst[static_cast<std::size_t>(i)];
      if (g == 0.0f) continue;
      const float* zr = zh.row(i);
      float* gz = grad_zh.row(i);
      for (std::int64_t j = 0; j < head_dim_; ++j) {
        gar[j] += g * zr[j];
        gz[j] += g * ar[j];
      }
    }
    AddHeadSlice(grad_z, h, head_dim_, grad_zh);
  }
  return grad_z;
}

Tensor GatLayer::Forward(const CsrView& csr, std::int64_t num_dst, const Tensor& input,
                         std::unique_ptr<LayerContext>* saved) {
  auto ctx = std::make_unique<GatFullContext>();
  const Tensor z = Project(input);
  Tensor out = AttentionForward(csr, num_dst, z, &ctx->attn);
  if (saved != nullptr) {
    ctx->input = input;
    *saved = std::move(ctx);
  }
  return out;
}

Tensor GatLayer::Backward(const CsrView& csr, std::int64_t num_dst,
                          const LayerContext& saved, const Tensor& grad_out) {
  const auto& ctx = dynamic_cast<const GatFullContext&>(saved);
  const Tensor grad_z = AttentionBackward(csr, num_dst, *ctx.attn, grad_out);
  return ProjectBackward(ctx.input, grad_z);
}

void GatLayer::CollectParams(std::vector<Param*>& out) {
  out.push_back(&w_);
  out.push_back(&attn_src_);
  out.push_back(&attn_dst_);
  out.push_back(&bias_);
}

double GatLayer::ForwardFlops(std::int64_t num_src, std::int64_t num_dst,
                              std::int64_t num_edges) const {
  (void)num_dst;
  const double proj = 2.0 * static_cast<double>(num_src) * in_dim_ * out_dim();
  const double attn = 6.0 * static_cast<double>(num_edges) * head_dim_ * num_heads_ +
                      2.0 * static_cast<double>(num_src) * out_dim();
  return proj + attn;
}

double GatLayer::BackwardFlops(std::int64_t num_src, std::int64_t num_dst,
                               std::int64_t num_edges) const {
  return 2.0 * ForwardFlops(num_src, num_dst, num_edges);
}

}  // namespace apt
