// Blocking data-parallel loop over an index range, OpenMP-static style.
//
// The range [begin, end) is split into one contiguous chunk per worker.
// Exceptions thrown by the body are captured and rethrown on the caller
// thread (first one wins). Falls back to a serial loop for tiny ranges so
// kernels stay cheap on small inputs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <latch>

#include "runtime/thread_pool.h"

namespace apt {

/// Calls body(i) for every i in [begin, end). `grain` is the minimum chunk
/// size below which the loop runs serially on the calling thread.
template <typename Body>
void ParallelFor(std::int64_t begin, std::int64_t end, const Body& body,
                 std::int64_t grain = 1024) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  ThreadPool& pool = ThreadPool::Global();
  const std::int64_t max_chunks =
      static_cast<std::int64_t>(pool.NumThreads());
  if (n <= grain || max_chunks <= 1) {
    for (std::int64_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::int64_t chunks = std::min(max_chunks, (n + grain - 1) / grain);
  const std::int64_t chunk_size = (n + chunks - 1) / chunks;
  std::latch done(chunks);
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t lo = begin + c * chunk_size;
    const std::int64_t hi = std::min(end, lo + chunk_size);
    pool.Submit([&, lo, hi] {
      try {
        if (!failed.load(std::memory_order_relaxed)) {
          for (std::int64_t i = lo; i < hi; ++i) body(i);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!failed.exchange(true)) error = std::current_exception();
      }
      done.count_down();
    });
  }
  done.wait();
  if (failed.load()) std::rethrow_exception(error);
}

}  // namespace apt
