// Blocking data-parallel loops over an index range, built on the fork-join
// pool (see thread_pool.h).
//
// ParallelFor / ParallelForChunks split [begin, end) into one contiguous
// chunk per lane, OpenMP-static style. Chunk boundaries depend only on the
// range and lane count — never on which thread claims which chunk — so any
// kernel whose writes are disjoint per index stays deterministic.
//
// ParallelForDynamic / ParallelForChunksDynamic split the range into many
// grain-sized chunks claimed greedily from the shared cursor: lanes that
// draw cheap chunks keep pulling more, which load-balances skewed per-index
// work (SpMM rows under power-law degree distributions).
//
// All variants: the body runs inline on the calling thread for ranges at or
// below `grain` (no pool traffic); exceptions thrown by the body are
// rethrown on the calling thread (first one wins); nested calls run
// serially on the calling lane.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

#include "runtime/thread_pool.h"

namespace apt {

namespace detail {

inline std::int64_t& MaxParallelismSlot() {
  thread_local std::int64_t limit = std::numeric_limits<std::int64_t>::max();
  return limit;
}

inline std::int64_t Lanes(const ThreadPool& pool) {
  return std::max<std::int64_t>(
      1, std::min(pool.ParallelismDegree(), MaxParallelismSlot()));
}

// Bridges a typed range body into the pool's type-erased ChunkFn without
// allocating: the context points at the caller's stack.
template <typename RangeBody>
void ForkJoinRanges(std::int64_t begin, std::int64_t end,
                    std::int64_t chunk_size, std::int64_t num_chunks,
                    const RangeBody& body) {
  struct Ctx {
    const RangeBody* body;
    std::int64_t begin;
    std::int64_t end;
    std::int64_t chunk_size;
  } ctx{&body, begin, end, chunk_size};
  ThreadPool::Global().ForkJoin(
      num_chunks,
      [](void* p, std::int64_t c) {
        auto* cx = static_cast<Ctx*>(p);
        const std::int64_t lo = cx->begin + c * cx->chunk_size;
        const std::int64_t hi = std::min(cx->end, lo + cx->chunk_size);
        (*cx->body)(lo, hi);
      },
      &ctx);
}

}  // namespace detail

/// Caps the fork-join width seen by ParallelFor* on this thread while alive
/// (1 = force serial). Lets benchmarks measure thread scaling in-process
/// without rebuilding the global pool.
class ScopedParallelismLimit {
 public:
  explicit ScopedParallelismLimit(std::int64_t limit)
      : prev_(detail::MaxParallelismSlot()) {
    detail::MaxParallelismSlot() = std::max<std::int64_t>(1, limit);
  }
  ~ScopedParallelismLimit() { detail::MaxParallelismSlot() = prev_; }
  ScopedParallelismLimit(const ScopedParallelismLimit&) = delete;
  ScopedParallelismLimit& operator=(const ScopedParallelismLimit&) = delete;

 private:
  std::int64_t prev_;
};

/// Calls body(lo, hi) over disjoint subranges covering [begin, end), one
/// contiguous chunk per lane. `grain` is the minimum chunk size below which
/// the loop runs serially on the calling thread.
template <typename RangeBody>
void ParallelForChunks(std::int64_t begin, std::int64_t end,
                       const RangeBody& body, std::int64_t grain = 1024) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  const std::int64_t lanes = detail::Lanes(ThreadPool::Global());
  if (n <= grain || lanes <= 1 || ThreadPool::InParallelRegion()) {
    body(begin, end);
    return;
  }
  const std::int64_t chunks =
      std::min(lanes, (n + grain - 1) / std::max<std::int64_t>(1, grain));
  const std::int64_t chunk_size = (n + chunks - 1) / chunks;
  detail::ForkJoinRanges(begin, end, chunk_size, chunks, body);
}

/// Like ParallelForChunks, but splits into grain-sized chunks claimed
/// greedily from the shared cursor (work-stealing-style load balance).
template <typename RangeBody>
void ParallelForChunksDynamic(std::int64_t begin, std::int64_t end,
                              const RangeBody& body, std::int64_t grain = 256) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t lanes = detail::Lanes(ThreadPool::Global());
  if (n <= grain || lanes <= 1 || ThreadPool::InParallelRegion()) {
    body(begin, end);
    return;
  }
  detail::ForkJoinRanges(begin, end, grain, (n + grain - 1) / grain, body);
}

/// Calls body(i) for every i in [begin, end), statically chunked.
template <typename Body>
void ParallelFor(std::int64_t begin, std::int64_t end, const Body& body,
                 std::int64_t grain = 1024) {
  ParallelForChunks(
      begin, end,
      [&body](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) body(i);
      },
      grain);
}

/// Calls body(i) for every i in [begin, end), dynamically chunked: use when
/// per-index cost is skewed.
template <typename Body>
void ParallelForDynamic(std::int64_t begin, std::int64_t end, const Body& body,
                        std::int64_t grain = 256) {
  ParallelForChunksDynamic(
      begin, end,
      [&body](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) body(i);
      },
      grain);
}

}  // namespace apt
