#include "runtime/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>

#include "core/error.h"
#include "obs/trace.h"

namespace apt {

namespace {

// Threads inside a ForkJoin chunk, and pool workers in general, must not
// fork again: the pool has exactly one region slot, so nesting runs serially.
thread_local int tl_region_depth = 0;
thread_local bool tl_is_worker = false;

std::size_t EnvThreadOverride() {
  const char* env = std::getenv("APT_NUM_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || v <= 0) return 0;
  return static_cast<std::size_t>(v);
}

}  // namespace

// One fork-join region. Lives on the forking thread's stack: workers only
// touch it between the epoch handshake (under the pool mutex) and their
// matching active_ decrement, and ForkJoin unpublishes the job and waits for
// active_ == 0 before the frame dies. The cursor sits on its own cache line
// so chunk claiming does not false-share with the read-only job fields.
struct ThreadPool::Job {
  ChunkFn fn;
  void* ctx;
  std::int64_t num_chunks;
  alignas(64) std::atomic<std::int64_t> cursor{0};
  alignas(64) std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr error;

  Job(ChunkFn f, void* c, std::int64_t n) : fn(f), ctx(c), num_chunks(n) {}
};

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = EnvThreadOverride();
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    APT_CHECK(!stopping_) << "ThreadPool::Submit on a stopped pool";
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::InParallelRegion() {
  return tl_is_worker || tl_region_depth > 0;
}

void ThreadPool::RunChunks(Job& job) {
  ++tl_region_depth;
  for (;;) {
    const std::int64_t c = job.cursor.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.num_chunks) break;
    // After a failure, keep claiming (to drain the cursor fast) but skip the
    // bodies: ParallelFor promises at-most-once execution per chunk anyway.
    if (job.failed.load(std::memory_order_relaxed)) continue;
    try {
      job.fn(job.ctx, c);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mu);
      if (!job.error) job.error = std::current_exception();
      job.failed.store(true, std::memory_order_relaxed);
    }
  }
  --tl_region_depth;
}

void ThreadPool::ForkJoin(std::int64_t num_chunks, ChunkFn fn, void* ctx) {
  if (num_chunks <= 0) return;
  if (workers_.empty() || InParallelRegion()) {
    // Serial: exceptions propagate straight to the caller (for a nested
    // region, that is the enclosing chunk's catch block).
    for (std::int64_t c = 0; c < num_chunks; ++c) fn(ctx, c);
    return;
  }
  APT_OBS_SCOPE("fork_join", "runtime",
                {{"chunks", static_cast<double>(num_chunks), nullptr}});
  std::lock_guard<std::mutex> fork_lock(fork_mutex_);
  Job job(fn, ctx, num_chunks);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++epoch_;
  }
  cv_.notify_all();
  RunChunks(job);  // the forking thread is one of the lanes
  {
    // Unpublish first so no further worker can enter, then wait out the ones
    // already inside: `job` lives on this stack frame.
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = nullptr;
  }
  for (;;) {
    const std::int64_t a = active_.load(std::memory_order_acquire);
    if (a == 0) break;
    active_.wait(a, std::memory_order_acquire);
  }
  if (job.failed.load(std::memory_order_relaxed)) {
    std::rethrow_exception(job.error);
  }
}

void ThreadPool::WorkerLoop() {
  tl_is_worker = true;
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::function<void()> task;
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] {
        return stopping_ || !tasks_.empty() ||
               (job_ != nullptr && epoch_ != seen_epoch);
      });
      if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop();
      } else if (job_ != nullptr && epoch_ != seen_epoch) {
        job = job_;
        seen_epoch = epoch_;
        // Register inside the lock: ForkJoin clears job_ under the same
        // lock, so it either sees this worker in active_ or the worker
        // never entered.
        active_.fetch_add(1, std::memory_order_relaxed);
      } else if (stopping_) {
        return;
      } else {
        continue;  // spurious wake
      }
    }
    if (task) {
      task();
    } else {
      RunChunks(*job);
      active_.fetch_sub(1, std::memory_order_release);
      active_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace apt
