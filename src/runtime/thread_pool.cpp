#include "runtime/thread_pool.h"

#include <algorithm>

namespace apt {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace apt
