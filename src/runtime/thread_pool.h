// A small fixed-size thread pool with a shared FIFO task queue.
//
// Used by parallel_for for data-parallel loops (tensor kernels, per-device
// compute in the simulator). One global pool is shared process-wide to avoid
// oversubscription, per the structured-parallelism guidance of the C++ Core
// Guidelines (CP.*): tasks are plain callables, joined via futures/latches,
// and no detached threads exist.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace apt {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 means hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; it runs on some worker thread.
  void Submit(std::function<void()> task);

  std::size_t NumThreads() const { return workers_.size(); }

  /// Process-wide shared pool.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace apt
