// A persistent fork-join thread pool.
//
// Two entry points:
//  - ForkJoin(): the data-parallel fast path behind ParallelFor. The forking
//    thread publishes one shared (function pointer, context) pair plus an
//    atomic chunk cursor; parked workers wake, claim chunk indices with
//    fetch_add, and call the body directly. Steady-state dispatch performs
//    no heap allocation and takes no queue mutex per chunk.
//  - Submit(): a plain FIFO task queue for irregular background work.
//
// One global pool is shared process-wide to avoid oversubscription, per the
// structured-parallelism guidance of the C++ Core Guidelines (CP.*): regions
// are joined before returning and no detached threads exist.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace apt {

class ThreadPool {
 public:
  /// Chunked kernel: fn(ctx, c) is called once for each c in [0, num_chunks).
  using ChunkFn = void (*)(void* ctx, std::int64_t chunk);

  /// Creates `num_threads` workers. 0 means: the APT_NUM_THREADS environment
  /// variable if set to a positive integer, else hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Joins all workers. Any still-queued Submit() tasks run before exit;
  /// Submit() itself must not race with destruction (asserted when the race
  /// is observable).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; it runs on some worker thread.
  void Submit(std::function<void()> task);

  std::size_t NumThreads() const { return workers_.size(); }

  /// Width of a fork-join region: every worker plus the forking thread.
  std::int64_t ParallelismDegree() const {
    return static_cast<std::int64_t>(workers_.size()) + 1;
  }

  /// Runs fn(ctx, c) for every c in [0, num_chunks), cooperatively on the
  /// calling thread and any idle workers, and returns once all chunks are
  /// done. Exceptions thrown by fn are rethrown here (first one wins; later
  /// chunks are skipped). Nested calls — from inside a chunk or from a pool
  /// worker — run the whole chunk range serially on the calling thread.
  void ForkJoin(std::int64_t num_chunks, ChunkFn fn, void* ctx);

  /// True on pool worker threads and inside a ForkJoin chunk on any thread.
  /// ParallelFor uses this to serialize nested parallelism.
  static bool InParallelRegion();

  /// Process-wide shared pool.
  static ThreadPool& Global();

 private:
  struct Job;

  void WorkerLoop();
  static void RunChunks(Job& job);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;  ///< guards tasks_, job_, epoch_, stopping_
  std::condition_variable cv_;
  Job* job_ = nullptr;       ///< currently published fork-join region
  std::uint64_t epoch_ = 0;  ///< bumped per region so each worker joins once
  std::atomic<std::int64_t> active_{0};  ///< workers currently inside job_
  std::mutex fork_mutex_;                ///< serializes top-level regions
  bool stopping_ = false;
};

}  // namespace apt
