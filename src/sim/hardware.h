// Hardware description of the simulated training platform.
//
// Substitution for the paper's testbed (8x NVIDIA T4 per machine, PCIe 3.0,
// 100 Gbps Ethernet between machines). Numbers below are published
// specifications with typical achievable efficiencies, not measurements —
// the reproduction's result *shapes* depend only on their ratios.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace apt {

/// A point-to-point transfer channel: time(bytes) = latency + bytes / bandwidth.
struct LinkSpec {
  double bandwidth_bytes_per_s = 0.0;
  double latency_s = 0.0;

  double TransferSeconds(std::int64_t bytes) const {
    return latency_s + (bandwidth_bytes_per_s > 0
                            ? static_cast<double>(bytes) / bandwidth_bytes_per_s
                            : 0.0);
  }
};

/// One GPU worker.
struct DeviceSpec {
  double fp32_flops = 8.1e12;          ///< T4 peak fp32
  double achievable_fraction = 0.35;   ///< typical SpMM/GEMM efficiency mix
  std::int64_t memory_bytes = 16LL << 30;  ///< 16 GB
  double mem_bandwidth_bytes_per_s = 300e9;
  double kernel_launch_s = 8e-6;

  double EffectiveFlops() const { return fp32_flops * achievable_fraction; }
};

struct MachineSpec {
  std::int32_t num_gpus = 8;
  DeviceSpec gpu;
  LinkSpec pcie{12.0e9, 6e-6};        ///< GPU <-> host and GPU <-> GPU via PCIe 3.0 x16
  bool has_nvlink = false;
  LinkSpec nvlink{45.0e9, 3e-6};      ///< used between peer GPUs when present
  std::int64_t cpu_memory_bytes = 378LL << 30;
  double host_mem_bandwidth_bytes_per_s = 80e9;
  double cpu_sample_edge_s = 1.2e-8;  ///< per sampled edge cost via UVA sampling
};

struct ClusterSpec {
  std::vector<MachineSpec> machines;
  LinkSpec network{11.0e9, 3e-5};     ///< 100 Gbps Ethernet, effective

  std::int32_t num_machines() const { return static_cast<std::int32_t>(machines.size()); }
  std::int32_t num_devices() const;

  /// Global device id -> owning machine.
  MachineId MachineOf(DeviceId dev) const;
  /// Global device id -> index within its machine.
  std::int32_t LocalIndex(DeviceId dev) const;

  /// Builds the O(1) device -> machine lookup used by MachineOf/LocalIndex.
  /// Without it both fall back to an O(num_machines) scan — fine at bench
  /// scale, quadratic death inside 1000-device collectives. SimContext calls
  /// this once at construction (single-threaded); call it again if the
  /// machine list is mutated afterwards.
  void EnsureDeviceIndex() const;

  const MachineSpec& machine(MachineId m) const { return machines[static_cast<std::size_t>(m)]; }
  const DeviceSpec& device(DeviceId dev) const { return machine(MachineOf(dev)).gpu; }

  /// The channel used for a device-to-device transfer.
  LinkSpec LinkBetween(DeviceId a, DeviceId b) const;
  /// The channel used for a device reading from machine m's CPU memory.
  LinkSpec LinkToCpu(DeviceId dev, MachineId m) const;

 private:
  // Flat lookup tables built by EnsureDeviceIndex. Mutable: the index is a
  // cache over `machines`, not part of the spec's value (copies start empty
  // and rebuild on demand via EnsureDeviceIndex).
  mutable std::vector<MachineId> device_machine_;
  mutable std::vector<std::int32_t> device_local_;
};

/// Paper platform: one machine with 8 T4 GPUs on PCIe 3.0.
ClusterSpec SingleMachineCluster(std::int32_t num_gpus = 8, bool nvlink = false);
/// Paper distributed platform: 4 machines x 4 GPUs, 100 Gbps Ethernet.
ClusterSpec MultiMachineCluster(std::int32_t num_machines = 4,
                                std::int32_t gpus_per_machine = 4,
                                bool nvlink = false);

std::string DescribeCluster(const ClusterSpec& cluster);

}  // namespace apt
