#include "sim/sim_context.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "runtime/parallel_for.h"

namespace apt {

namespace {

/// Metric names per traffic class, resolved once (registry handles are
/// stable for the process lifetime).
obs::Counter& TrafficCounter(TrafficClass c) {
  static obs::Counter* counters[static_cast<std::size_t>(TrafficClass::kNumClasses)] = {
      &obs::Metrics::Global().counter("sim.traffic.local_cpu_gpu.bytes"),
      &obs::Metrics::Global().counter("sim.traffic.peer_gpu.bytes"),
      &obs::Metrics::Global().counter("sim.traffic.cross_machine.bytes"),
  };
  return *counters[static_cast<std::size_t>(c)];
}

obs::Counter& TrafficWireCounter(TrafficClass c) {
  static obs::Counter* counters[static_cast<std::size_t>(TrafficClass::kNumClasses)] = {
      &obs::Metrics::Global().counter("sim.traffic.local_cpu_gpu.wire_bytes"),
      &obs::Metrics::Global().counter("sim.traffic.peer_gpu.wire_bytes"),
      &obs::Metrics::Global().counter("sim.traffic.cross_machine.wire_bytes"),
  };
  return *counters[static_cast<std::size_t>(c)];
}

/// Counter-track key for the wire series of a class. Trace events keep the
/// key by pointer, so these live for the process lifetime.
const char* WireKey(TrafficClass c) {
  static const char* keys[static_cast<std::size_t>(TrafficClass::kNumClasses)] = {
      "local_cpu_gpu.wire", "peer_gpu.wire", "cross_machine.wire"};
  return keys[static_cast<std::size_t>(c)];
}

}  // namespace

const char* ToString(Phase p) {
  switch (p) {
    case Phase::kSample:
      return "sample";
    case Phase::kLoad:
      return "load";
    case Phase::kTrain:
      return "train";
  }
  return "?";
}

const char* ToString(TrafficClass c) {
  switch (c) {
    case TrafficClass::kLocalCpuGpu:
      return "local_cpu_gpu";
    case TrafficClass::kPeerGpu:
      return "peer_gpu";
    case TrafficClass::kCrossMachine:
      return "cross_machine";
    case TrafficClass::kNumClasses:
      break;
  }
  return "?";
}

SimContext::SimContext(ClusterSpec cluster, SimOptions options)
    : cluster_(std::move(cluster)), options_(options) {
  const auto n = static_cast<std::size_t>(cluster_.num_devices());
  APT_CHECK_GT(n, 0u);
  // Built here (single-threaded) so concurrent consumers — serving workers,
  // the scale-mode parallel clock advance — never race a lazy build.
  cluster_.EnsureDeviceIndex();
  clocks_.assign(n, 0.0);
  phase_time_.assign(n, {});
  comm_time_.assign(n, {});
  comm_stream_time_.assign(n, {});
  persistent_bytes_.assign(n, 0);
  peak_bytes_.assign(n, 0);
}

std::string SimContext::ObsTrackLabel() const {
  return std::to_string(cluster_.num_machines()) + "m x " +
         std::to_string(num_devices() / cluster_.num_machines()) + "gpu";
}

std::int32_t SimContext::ObsPid() const {
  // Concurrent serving workers may race to the first emission; a mutex keeps
  // the registration single-shot (the id itself is published atomically).
  std::int32_t pid = obs_pid_.load(std::memory_order_acquire);
  if (pid >= 0) return pid;
  static std::mutex register_mutex;
  std::lock_guard<std::mutex> lock(register_mutex);
  pid = obs_pid_.load(std::memory_order_acquire);
  if (pid >= 0) return pid;
  std::vector<std::string> lanes;
  lanes.reserve(2 * static_cast<std::size_t>(num_devices()) + 1);
  for (DeviceId d = 0; d < num_devices(); ++d) {
    lanes.push_back("gpu" + std::to_string(d));
  }
  for (DeviceId d = 0; d < num_devices(); ++d) {
    lanes.push_back("gpu" + std::to_string(d) + ".comm");  // ObsCommLane
  }
  lanes.push_back("steps");  // ObsStepLane: engine markers
  pid = obs::Tracer::Global().RegisterSimTrack(
      ObsTrackLabel(), 2 * num_devices() + 1, std::move(lanes));
  obs_pid_.store(pid, std::memory_order_release);
  return pid;
}

void SimContext::AdvanceInternal(DeviceId dev, double dt, Phase phase,
                                 const char* label,
                                 std::initializer_list<obs::TraceArg> args,
                                 bool comm) {
  APT_CHECK_GE(dt, 0.0) << "negative time step";
  const std::size_t i = Check(dev);
  if (RecordingStep()) {
    // Recorded BEFORE the pipeline-capture branch: fast-forward replays the
    // op into a re-opened pipelined scope (kBeginPipelined), reproducing the
    // capture-then-replay scheduling of the real step.
    StepTapeOp op;
    op.kind = StepTapeOp::Kind::kAdvance;
    op.dev = dev;
    op.dt = dt;
    op.phase = phase;
    op.comm = comm;
    op.label = label;
    record_tape_.ops.push_back(std::move(op));
  }
  if (pipeline_depth_ > 1) {
    // Capturing: defer to the micro-batch replay at EndPipelinedStep.
    PipelineOp op;
    op.dev = dev;
    op.dt = dt;
    op.phase = phase;
    op.label = label;
    op.comm = comm;
    for (const obs::TraceArg& a : args) {
      if (op.num_args == obs::kMaxTraceArgs) break;
      op.args[static_cast<std::size_t>(op.num_args++)] = a;
    }
    pipeline_tape_.push_back(op);
    return;
  }
  const double t0 = clocks_[i];
  clocks_[i] += dt;
  phase_time_[i][static_cast<std::size_t>(phase)] += dt;
  if (comm) comm_time_[i][static_cast<std::size_t>(phase)] += dt;
  if (obs::TracingEnabled() && dt > 0.0) {
    obs::EmitSimSpan(ObsPid(), dev, t0, clocks_[i],
                     label != nullptr ? label : ToString(phase), ToString(phase),
                     args);
  }
#ifndef NDEBUG
  // Only the advanced device: concurrent phases advance different devices
  // from different threads, so the all-device sweep would read torn state.
  DebugCheckClockInvariant(dev);
#endif
}

void SimContext::BarrierAll(Phase phase) {
  if (poisoned_) {
    throw BarrierPoisonedError("barrier poisoned: " + poison_reason_);
  }
  if (RecordingStep()) {
    StepTapeOp op;
    op.kind = StepTapeOp::Kind::kBarrier;
    op.phase = phase;
    record_tape_.ops.push_back(std::move(op));
  }
  if (pipeline_depth_ > 1) {
    // Capturing: the barrier becomes a per-micro-batch stream-sync point
    // (poison still throws above — it must surface immediately).
    PipelineOp op;
    op.dev = -1;
    op.phase = phase;
    pipeline_tape_.push_back(op);
    return;
  }
  const double target = MaxNow();
  const bool tracing = obs::TracingEnabled();
  const auto wait_one = [&](std::size_t i) {
    const double wait = target - clocks_[i];
    phase_time_[i][static_cast<std::size_t>(phase)] += wait;
    comm_time_[i][static_cast<std::size_t>(phase)] += wait;
    if (tracing && wait > 0.0) {
      obs::EmitSimSpan(ObsPid(), static_cast<std::int32_t>(i), clocks_[i], target,
                       "wait", ToString(phase));
    }
    clocks_[i] = target;
  };
  if (options_.scale_mode == ScaleMode::kScale && clocks_.size() >= 64) {
    // Scale mode: per-device waits are disjoint writes, so the commit
    // batches through the fork-join pool. Values are bit-identical to the
    // serial loop (no cross-device arithmetic).
    ParallelForChunks(0, static_cast<std::int64_t>(clocks_.size()),
                      [&](std::int64_t lo, std::int64_t hi) {
                        for (std::int64_t i = lo; i < hi; ++i) {
                          wait_one(static_cast<std::size_t>(i));
                        }
                      });
  } else {
    for (std::size_t i = 0; i < clocks_.size(); ++i) wait_one(i);
  }
#ifndef NDEBUG
  DebugCheckClockInvariant();
#endif
}

double SimContext::MaxNow() const {
  return *std::max_element(clocks_.begin(), clocks_.end());
}

void SimContext::ResetClocks() {
  std::fill(clocks_.begin(), clocks_.end(), 0.0);
  for (auto& p : phase_time_) p.fill(0.0);
  for (auto& p : comm_time_) p.fill(0.0);
  for (auto& p : comm_stream_time_) p.fill(0.0);
}

double SimContext::PhaseTotal(Phase phase) const {
  double t = 0.0;
  for (const auto& p : phase_time_) t += p[static_cast<std::size_t>(phase)];
  return t;
}

double SimContext::PhaseMax(Phase phase) const {
  double t = 0.0;
  for (const auto& p : phase_time_) {
    t = std::max(t, p[static_cast<std::size_t>(phase)]);
  }
  return t;
}

double SimContext::PhaseOf(DeviceId dev, Phase phase) const {
  return phase_time_[Check(dev)][static_cast<std::size_t>(phase)];
}

double SimContext::CommOf(DeviceId dev, Phase phase) const {
  return comm_time_[Check(dev)][static_cast<std::size_t>(phase)];
}

double SimContext::CommMax(Phase phase) const {
  double t = 0.0;
  for (const auto& p : comm_time_) {
    t = std::max(t, p[static_cast<std::size_t>(phase)]);
  }
  return t;
}

double SimContext::CommStreamOf(DeviceId dev, Phase phase) const {
  return comm_stream_time_[Check(dev)][static_cast<std::size_t>(phase)];
}

double SimContext::CommStreamMax(Phase phase) const {
  double t = 0.0;
  for (const auto& p : comm_stream_time_) {
    t = std::max(t, p[static_cast<std::size_t>(phase)]);
  }
  return t;
}

void SimContext::DebugCheckClockInvariant() const {
  for (DeviceId d = 0; d < num_devices(); ++d) DebugCheckClockInvariant(d);
}

void SimContext::DebugCheckClockInvariant(DeviceId dev) const {
  const std::size_t i = Check(dev);
  double phase_sum = 0.0, comm_sum = 0.0;
  for (int p = 0; p < kNumPhases; ++p) {
    phase_sum += phase_time_[i][static_cast<std::size_t>(p)];
    comm_sum += comm_time_[i][static_cast<std::size_t>(p)];
  }
  const double tol = 1e-9 * std::max(1.0, std::abs(clocks_[i]));
  APT_CHECK(std::abs(phase_sum - clocks_[i]) <= tol)
      << "device " << i << ": phase times sum to " << phase_sum
      << " but clock is " << clocks_[i];
  APT_CHECK(comm_sum <= phase_sum + tol)
      << "device " << i << ": comm time " << comm_sum
      << " exceeds total phase time " << phase_sum;
}

double SimContext::ComputeSeconds(DeviceId dev, double flops) const {
  const DeviceSpec& spec = cluster_.device(dev);
  const double healthy = spec.kernel_launch_s + flops / spec.EffectiveFlops();
  if (faults_.stragglers.empty()) return healthy;
  const double t = clocks_[Check(dev)];
  double factor = 1.0;
  for (std::size_t i = 0; i < faults_.stragglers.size(); ++i) {
    const StragglerFault& s = faults_.stragglers[i];
    if (s.device != dev || !s.ActiveAt(t)) continue;
    factor *= s.slowdown;
    NoteStragglerObserved(i, dev, t);
  }
  return healthy * factor;
}

void SimContext::ChargeCompute(DeviceId dev, double flops) {
  if (RecordingStep()) {
    // Structured op: replay calls ChargeCompute again, so straggler factors
    // re-evaluate at the REPLAY-time clock, not the recorded one.
    StepTapeOp op;
    op.kind = StepTapeOp::Kind::kCompute;
    op.dev = dev;
    op.flops = flops;
    record_tape_.ops.push_back(std::move(op));
    RecordSuppressScope suppress(*this);
    AdvanceLabeled(dev, ComputeSeconds(dev, flops), Phase::kTrain, "compute",
                   {{"flops", flops, nullptr}});
    return;
  }
  AdvanceLabeled(dev, ComputeSeconds(dev, flops), Phase::kTrain, "compute",
                 {{"flops", flops, nullptr}});
}

// --- step tape recording ----------------------------------------------------

void SimContext::BeginStepRecord() {
  APT_CHECK(!recording_) << "step record scopes cannot nest";
  APT_CHECK_EQ(record_suppress_, 0);
  recording_ = true;
  record_tape_.ops.clear();
}

void SimContext::AbortStepRecord() {
  recording_ = false;
  record_suppress_ = 0;
  record_tape_.ops.clear();
}

StepTape SimContext::EndStepRecord() {
  APT_CHECK(recording_) << "EndStepRecord without BeginStepRecord";
  APT_CHECK_EQ(record_suppress_, 0);
  recording_ = false;
  StepTape out;
  std::swap(out, record_tape_);
  return out;
}

void SimContext::RecordAllToAll(std::vector<std::vector<std::int64_t>> bytes,
                                std::vector<std::vector<std::int64_t>> wire_bytes,
                                Phase phase) {
  StepTapeOp op;
  op.kind = StepTapeOp::Kind::kAllToAll;
  op.phase = phase;
  op.a2a_bytes = std::move(bytes);
  op.a2a_wire = std::move(wire_bytes);
  record_tape_.ops.push_back(std::move(op));
}

void SimContext::RecordRing(std::int64_t total_bytes, std::int64_t wire_bytes,
                            double factor, Phase phase, const char* label) {
  StepTapeOp op;
  op.kind = StepTapeOp::Kind::kRing;
  op.phase = phase;
  op.bytes = total_bytes;
  op.wire_bytes = wire_bytes;
  op.factor = factor;
  op.label = label;
  record_tape_.ops.push_back(std::move(op));
}

TrafficClass SimContext::ClassifyDeviceLink(DeviceId a, DeviceId b) const {
  if (cluster_.MachineOf(a) != cluster_.MachineOf(b)) return TrafficClass::kCrossMachine;
  return TrafficClass::kPeerGpu;
}

TrafficClass SimContext::ClassifyCpuLink(DeviceId dev, MachineId m) const {
  if (cluster_.MachineOf(dev) != m) return TrafficClass::kCrossMachine;
  return TrafficClass::kLocalCpuGpu;
}

void SimContext::CountTraffic(TrafficClass c, std::int64_t bytes,
                              std::int64_t wire_bytes) {
  if (RecordingStep()) {
    // Recorded AND counted: the probe step's own traffic is real; replay
    // re-issues the count so fast-forwarded steps accumulate identically.
    StepTapeOp op;
    op.kind = StepTapeOp::Kind::kTraffic;
    op.cls = c;
    op.bytes = bytes;
    op.wire_bytes = wire_bytes;
    record_tape_.ops.push_back(std::move(op));
  }
  const std::size_t i = static_cast<std::size_t>(c);
  const std::int64_t total =
      traffic_bytes_[i].fetch_add(bytes, std::memory_order_relaxed) + bytes;
  const std::int64_t wire_total =
      traffic_wire_bytes_[i].fetch_add(wire_bytes, std::memory_order_relaxed) +
      wire_bytes;
  if (bytes > 0 || wire_bytes > 0) {
    if (bytes > 0) TrafficCounter(c).Add(bytes);
    if (wire_bytes > 0) TrafficWireCounter(c).Add(wire_bytes);
    if (obs::TracingEnabled()) {
      obs::EmitSimCounter(
          ObsPid(), MaxNow(), "traffic_bytes",
          {{ToString(c), static_cast<double>(total), nullptr},
           {WireKey(c), static_cast<double>(wire_total), nullptr}});
    }
  }
}

void SimContext::AllocPersistent(DeviceId dev, std::int64_t bytes) {
  const std::size_t i = Check(dev);
  persistent_bytes_[i] += bytes;
  peak_bytes_[i] = std::max(peak_bytes_[i], persistent_bytes_[i]);
}

void SimContext::NoteTransient(DeviceId dev, std::int64_t bytes) {
  const std::size_t i = Check(dev);
  peak_bytes_[i] = std::max(peak_bytes_[i], persistent_bytes_[i] + bytes);
}

std::int64_t SimContext::PeakMemory(DeviceId dev) const { return peak_bytes_[Check(dev)]; }

bool SimContext::AnyOom() const { return !OomDevices().empty(); }

std::vector<DeviceId> SimContext::OomDevices() const {
  std::vector<DeviceId> out;
  for (DeviceId d = 0; d < num_devices(); ++d) {
    if (peak_bytes_[static_cast<std::size_t>(d)] > cluster_.device(d).memory_bytes) {
      out.push_back(d);
    }
  }
  return out;
}

void SimContext::ResetMemory() {
  std::fill(persistent_bytes_.begin(), persistent_bytes_.end(), 0);
  std::fill(peak_bytes_.begin(), peak_bytes_.end(), 0);
}

// --- fault injection --------------------------------------------------------

namespace {

obs::Counter& FaultCounter(const char* name) {
  return obs::Metrics::Global().counter(name);
}

}  // namespace

void SimContext::InstallFaults(FaultPlan plan) {
  faults_ = std::move(plan);
  next_collective_fault_ = 0;
  // vector<atomic> has no assign; a fresh value-initialized vector zeroes
  // every flag.
  straggler_seen_ =
      std::vector<std::atomic<std::uint8_t>>(faults_.stragglers.size());
  link_seen_ = std::vector<std::atomic<std::uint8_t>>(faults_.links.size());
}

void SimContext::NoteStragglerObserved(std::size_t fault_index, DeviceId dev,
                                       double at_s) const {
  // exchange keeps the emission one-shot under concurrent observers.
  if (straggler_seen_[fault_index].exchange(1, std::memory_order_relaxed)) {
    return;
  }
  faults_observed_.fetch_add(1, std::memory_order_relaxed);
  FaultCounter("fault.straggler.observed").Increment();
  if (obs::TracingEnabled()) {
    const StragglerFault& s = faults_.stragglers[fault_index];
    obs::EmitSimSpan(ObsPid(), dev, at_s, at_s, "fault.straggler", "fault",
                     {{"slowdown", s.slowdown, nullptr}});
  }
}

void SimContext::NoteLinkObserved(std::size_t fault_index, double at_s) const {
  if (link_seen_[fault_index].exchange(1, std::memory_order_relaxed)) return;
  faults_observed_.fetch_add(1, std::memory_order_relaxed);
  FaultCounter("fault.link.observed").Increment();
  if (obs::TracingEnabled()) {
    const LinkFault& l = faults_.links[fault_index];
    obs::EmitSimSpan(ObsPid(), 0, at_s, at_s, "fault.link", "fault",
                     {{"class", 0.0, ToString(static_cast<TrafficClass>(l.link_class))},
                      {"bandwidth_factor", l.bandwidth_factor, nullptr}});
  }
}

LinkSpec SimContext::DegradedLink(LinkSpec base, TrafficClass cls, double at_s) const {
  if (faults_.links.empty()) return base;
  const int c = static_cast<int>(cls);
  for (std::size_t i = 0; i < faults_.links.size(); ++i) {
    const LinkFault& l = faults_.links[i];
    if (l.link_class != c || !l.ActiveAt(at_s)) continue;
    base.bandwidth_bytes_per_s *= l.bandwidth_factor;
    base.latency_s += l.extra_latency_s;
    NoteLinkObserved(i, at_s);
  }
  return base;
}

LinkSpec SimContext::EffectiveLinkBetween(DeviceId a, DeviceId b) const {
  const LinkSpec base = cluster_.LinkBetween(a, b);
  if (faults_.links.empty()) return base;
  const double t = std::max(clocks_[Check(a)], clocks_[Check(b)]);
  return DegradedLink(base, ClassifyDeviceLink(a, b), t);
}

LinkSpec SimContext::EffectiveLinkToCpu(DeviceId dev, MachineId m) const {
  const LinkSpec base = cluster_.LinkToCpu(dev, m);
  if (faults_.links.empty()) return base;
  return DegradedLink(base, ClassifyCpuLink(dev, m), clocks_[Check(dev)]);
}

std::optional<double> SimContext::CollectiveFailureFraction(std::int64_t call_bytes) {
  APT_CHECK_GE(call_bytes, 0);
  if (next_collective_fault_ < faults_.collectives.size()) {
    const std::int64_t threshold =
        faults_.collectives[next_collective_fault_].after_bytes;
    if (threshold < collective_bytes_ + call_bytes) {
      ++next_collective_fault_;
      ++faults_observed_;
      FaultCounter("fault.collective.injected").Increment();
      // The collective completed the bytes up to the threshold, then died.
      const double fraction =
          call_bytes > 0
              ? static_cast<double>(std::max<std::int64_t>(0, threshold - collective_bytes_)) /
                    static_cast<double>(call_bytes)
              : 0.0;
      // Arm the next retry with the bytes that DID complete, so an identical
      // retry passes this threshold (each fault fires exactly once).
      collective_bytes_ += std::max<std::int64_t>(0, threshold - collective_bytes_);
      return fraction;
    }
  }
  collective_bytes_ += call_bytes;
  return std::nullopt;
}

void SimContext::PoisonBarrier(const std::string& reason) {
  poisoned_ = true;
  poison_reason_ = reason;
  FaultCounter("fault.barrier.poisoned").Increment();
  // The (dynamic) reason string travels in the flight dump's header via
  // PoisonReason(); the ring event itself only carries literals.
  obs::Flight().Record("barrier.poisoned", nullptr, MaxNow());
  if (obs::TracingEnabled()) {
    const double t = MaxNow();
    obs::EmitSimSpan(ObsPid(), 0, t, t, "fault.barrier_poisoned", "fault");
  }
}

}  // namespace apt
