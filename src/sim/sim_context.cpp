#include "sim/sim_context.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace apt {

namespace {

/// Metric names per traffic class, resolved once (registry handles are
/// stable for the process lifetime).
obs::Counter& TrafficCounter(TrafficClass c) {
  static obs::Counter* counters[static_cast<std::size_t>(TrafficClass::kNumClasses)] = {
      &obs::Metrics::Global().counter("sim.traffic.local_cpu_gpu.bytes"),
      &obs::Metrics::Global().counter("sim.traffic.peer_gpu.bytes"),
      &obs::Metrics::Global().counter("sim.traffic.cross_machine.bytes"),
  };
  return *counters[static_cast<std::size_t>(c)];
}

}  // namespace

const char* ToString(Phase p) {
  switch (p) {
    case Phase::kSample:
      return "sample";
    case Phase::kLoad:
      return "load";
    case Phase::kTrain:
      return "train";
  }
  return "?";
}

const char* ToString(TrafficClass c) {
  switch (c) {
    case TrafficClass::kLocalCpuGpu:
      return "local_cpu_gpu";
    case TrafficClass::kPeerGpu:
      return "peer_gpu";
    case TrafficClass::kCrossMachine:
      return "cross_machine";
    case TrafficClass::kNumClasses:
      break;
  }
  return "?";
}

SimContext::SimContext(ClusterSpec cluster) : cluster_(std::move(cluster)) {
  const auto n = static_cast<std::size_t>(cluster_.num_devices());
  APT_CHECK_GT(n, 0u);
  clocks_.assign(n, 0.0);
  phase_time_.assign(n, {});
  comm_time_.assign(n, {});
  persistent_bytes_.assign(n, 0);
  peak_bytes_.assign(n, 0);
}

std::int32_t SimContext::ObsPid() {
  if (obs_pid_ < 0) {
    obs_pid_ = obs::Tracer::Global().RegisterSimTrack(
        std::to_string(cluster_.num_machines()) + "m x " +
            std::to_string(num_devices() / cluster_.num_machines()) + "gpu",
        num_devices());
  }
  return obs_pid_;
}

void SimContext::AdvanceInternal(DeviceId dev, double dt, Phase phase,
                                 const char* label,
                                 std::initializer_list<obs::TraceArg> args,
                                 bool comm) {
  APT_CHECK_GE(dt, 0.0) << "negative time step";
  const std::size_t i = Check(dev);
  const double t0 = clocks_[i];
  clocks_[i] += dt;
  phase_time_[i][static_cast<std::size_t>(phase)] += dt;
  if (comm) comm_time_[i][static_cast<std::size_t>(phase)] += dt;
  if (obs::TracingEnabled() && dt > 0.0) {
    obs::EmitSimSpan(ObsPid(), dev, t0, clocks_[i],
                     label != nullptr ? label : ToString(phase), ToString(phase),
                     args);
  }
#ifndef NDEBUG
  DebugCheckClockInvariant();
#endif
}

void SimContext::BarrierAll(Phase phase) {
  const double target = MaxNow();
  const bool tracing = obs::TracingEnabled();
  for (std::size_t i = 0; i < clocks_.size(); ++i) {
    const double wait = target - clocks_[i];
    phase_time_[i][static_cast<std::size_t>(phase)] += wait;
    comm_time_[i][static_cast<std::size_t>(phase)] += wait;
    if (tracing && wait > 0.0) {
      obs::EmitSimSpan(ObsPid(), static_cast<std::int32_t>(i), clocks_[i], target,
                       "wait", ToString(phase));
    }
    clocks_[i] = target;
  }
#ifndef NDEBUG
  DebugCheckClockInvariant();
#endif
}

double SimContext::MaxNow() const {
  return *std::max_element(clocks_.begin(), clocks_.end());
}

void SimContext::ResetClocks() {
  std::fill(clocks_.begin(), clocks_.end(), 0.0);
  for (auto& p : phase_time_) p.fill(0.0);
  for (auto& p : comm_time_) p.fill(0.0);
}

double SimContext::PhaseTotal(Phase phase) const {
  double t = 0.0;
  for (const auto& p : phase_time_) t += p[static_cast<std::size_t>(phase)];
  return t;
}

double SimContext::PhaseMax(Phase phase) const {
  double t = 0.0;
  for (const auto& p : phase_time_) {
    t = std::max(t, p[static_cast<std::size_t>(phase)]);
  }
  return t;
}

double SimContext::PhaseOf(DeviceId dev, Phase phase) const {
  return phase_time_[Check(dev)][static_cast<std::size_t>(phase)];
}

double SimContext::CommOf(DeviceId dev, Phase phase) const {
  return comm_time_[Check(dev)][static_cast<std::size_t>(phase)];
}

double SimContext::CommMax(Phase phase) const {
  double t = 0.0;
  for (const auto& p : comm_time_) {
    t = std::max(t, p[static_cast<std::size_t>(phase)]);
  }
  return t;
}

void SimContext::DebugCheckClockInvariant() const {
  for (std::size_t i = 0; i < clocks_.size(); ++i) {
    double phase_sum = 0.0, comm_sum = 0.0;
    for (int p = 0; p < kNumPhases; ++p) {
      phase_sum += phase_time_[i][static_cast<std::size_t>(p)];
      comm_sum += comm_time_[i][static_cast<std::size_t>(p)];
    }
    const double tol = 1e-9 * std::max(1.0, std::abs(clocks_[i]));
    APT_CHECK(std::abs(phase_sum - clocks_[i]) <= tol)
        << "device " << i << ": phase times sum to " << phase_sum
        << " but clock is " << clocks_[i];
    APT_CHECK(comm_sum <= phase_sum + tol)
        << "device " << i << ": comm time " << comm_sum
        << " exceeds total phase time " << phase_sum;
  }
}

double SimContext::ComputeSeconds(DeviceId dev, double flops) const {
  const DeviceSpec& spec = cluster_.device(dev);
  return spec.kernel_launch_s + flops / spec.EffectiveFlops();
}

void SimContext::ChargeCompute(DeviceId dev, double flops) {
  AdvanceLabeled(dev, ComputeSeconds(dev, flops), Phase::kTrain, "compute",
                 {{"flops", flops, nullptr}});
}

TrafficClass SimContext::ClassifyDeviceLink(DeviceId a, DeviceId b) const {
  if (cluster_.MachineOf(a) != cluster_.MachineOf(b)) return TrafficClass::kCrossMachine;
  return TrafficClass::kPeerGpu;
}

TrafficClass SimContext::ClassifyCpuLink(DeviceId dev, MachineId m) const {
  if (cluster_.MachineOf(dev) != m) return TrafficClass::kCrossMachine;
  return TrafficClass::kLocalCpuGpu;
}

void SimContext::CountTraffic(TrafficClass c, std::int64_t bytes) {
  const std::size_t i = static_cast<std::size_t>(c);
  traffic_bytes_[i] += bytes;
  if (bytes > 0) {
    TrafficCounter(c).Add(bytes);
    if (obs::TracingEnabled()) {
      obs::EmitSimCounter(
          ObsPid(), MaxNow(), "traffic_bytes",
          {{ToString(c), static_cast<double>(traffic_bytes_[i]), nullptr}});
    }
  }
}

void SimContext::AllocPersistent(DeviceId dev, std::int64_t bytes) {
  const std::size_t i = Check(dev);
  persistent_bytes_[i] += bytes;
  peak_bytes_[i] = std::max(peak_bytes_[i], persistent_bytes_[i]);
}

void SimContext::NoteTransient(DeviceId dev, std::int64_t bytes) {
  const std::size_t i = Check(dev);
  peak_bytes_[i] = std::max(peak_bytes_[i], persistent_bytes_[i] + bytes);
}

std::int64_t SimContext::PeakMemory(DeviceId dev) const { return peak_bytes_[Check(dev)]; }

bool SimContext::AnyOom() const { return !OomDevices().empty(); }

std::vector<DeviceId> SimContext::OomDevices() const {
  std::vector<DeviceId> out;
  for (DeviceId d = 0; d < num_devices(); ++d) {
    if (peak_bytes_[static_cast<std::size_t>(d)] > cluster_.device(d).memory_bytes) {
      out.push_back(d);
    }
  }
  return out;
}

void SimContext::ResetMemory() {
  std::fill(persistent_bytes_.begin(), persistent_bytes_.end(), 0);
  std::fill(peak_bytes_.begin(), peak_bytes_.end(), 0);
}

}  // namespace apt
