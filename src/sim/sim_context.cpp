#include "sim/sim_context.h"

#include <algorithm>

namespace apt {

const char* ToString(Phase p) {
  switch (p) {
    case Phase::kSample:
      return "sample";
    case Phase::kLoad:
      return "load";
    case Phase::kTrain:
      return "train";
  }
  return "?";
}

SimContext::SimContext(ClusterSpec cluster) : cluster_(std::move(cluster)) {
  const auto n = static_cast<std::size_t>(cluster_.num_devices());
  APT_CHECK_GT(n, 0u);
  clocks_.assign(n, 0.0);
  phase_time_.assign(n, {});
  persistent_bytes_.assign(n, 0);
  peak_bytes_.assign(n, 0);
}

void SimContext::Advance(DeviceId dev, double dt, Phase phase) {
  APT_CHECK_GE(dt, 0.0) << "negative time step";
  const std::size_t i = Check(dev);
  clocks_[i] += dt;
  phase_time_[i][static_cast<std::size_t>(phase)] += dt;
}

void SimContext::BarrierAll(Phase phase) {
  const double target = MaxNow();
  for (std::size_t i = 0; i < clocks_.size(); ++i) {
    phase_time_[i][static_cast<std::size_t>(phase)] += target - clocks_[i];
    clocks_[i] = target;
  }
}

double SimContext::MaxNow() const {
  return *std::max_element(clocks_.begin(), clocks_.end());
}

void SimContext::ResetClocks() {
  std::fill(clocks_.begin(), clocks_.end(), 0.0);
  for (auto& p : phase_time_) p.fill(0.0);
}

double SimContext::PhaseTotal(Phase phase) const {
  double t = 0.0;
  for (const auto& p : phase_time_) t += p[static_cast<std::size_t>(phase)];
  return t;
}

double SimContext::PhaseMax(Phase phase) const {
  double t = 0.0;
  for (const auto& p : phase_time_) {
    t = std::max(t, p[static_cast<std::size_t>(phase)]);
  }
  return t;
}

double SimContext::PhaseOf(DeviceId dev, Phase phase) const {
  return phase_time_[Check(dev)][static_cast<std::size_t>(phase)];
}

double SimContext::ComputeSeconds(DeviceId dev, double flops) const {
  const DeviceSpec& spec = cluster_.device(dev);
  return spec.kernel_launch_s + flops / spec.EffectiveFlops();
}

void SimContext::ChargeCompute(DeviceId dev, double flops) {
  Advance(dev, ComputeSeconds(dev, flops), Phase::kTrain);
}

TrafficClass SimContext::ClassifyDeviceLink(DeviceId a, DeviceId b) const {
  if (cluster_.MachineOf(a) != cluster_.MachineOf(b)) return TrafficClass::kCrossMachine;
  return TrafficClass::kPeerGpu;
}

TrafficClass SimContext::ClassifyCpuLink(DeviceId dev, MachineId m) const {
  if (cluster_.MachineOf(dev) != m) return TrafficClass::kCrossMachine;
  return TrafficClass::kLocalCpuGpu;
}

void SimContext::AllocPersistent(DeviceId dev, std::int64_t bytes) {
  const std::size_t i = Check(dev);
  persistent_bytes_[i] += bytes;
  peak_bytes_[i] = std::max(peak_bytes_[i], persistent_bytes_[i]);
}

void SimContext::NoteTransient(DeviceId dev, std::int64_t bytes) {
  const std::size_t i = Check(dev);
  peak_bytes_[i] = std::max(peak_bytes_[i], persistent_bytes_[i] + bytes);
}

std::int64_t SimContext::PeakMemory(DeviceId dev) const { return peak_bytes_[Check(dev)]; }

bool SimContext::AnyOom() const { return !OomDevices().empty(); }

std::vector<DeviceId> SimContext::OomDevices() const {
  std::vector<DeviceId> out;
  for (DeviceId d = 0; d < num_devices(); ++d) {
    if (peak_bytes_[static_cast<std::size_t>(d)] > cluster_.device(d).memory_bytes) {
      out.push_back(d);
    }
  }
  return out;
}

void SimContext::ResetMemory() {
  std::fill(persistent_bytes_.begin(), persistent_bytes_.end(), 0);
  std::fill(peak_bytes_.begin(), peak_bytes_.end(), 0);
}

}  // namespace apt
