// Simulation context: per-device virtual clocks, phase-attributed time,
// memory accounting, and traffic counters.
//
// Every cost in the reproduction — compute, feature loads, collective
// shuffles — is charged here. The engine advances a device's clock as it
// performs that device's (real, CPU-executed) work; collectives synchronize
// clocks to the latest participant, exactly like a blocking NCCL call.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/types.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "sim/hardware.h"
#include "sim/scale.h"

namespace apt {

/// Epoch-time components reported by the paper's stacked bars:
/// sampling (incl. shuffling sampled subgraphs), feature loading, and
/// training (incl. shuffling hidden embeddings).
enum class Phase : int { kSample = 0, kLoad = 1, kTrain = 2 };
inline constexpr int kNumPhases = 3;

const char* ToString(Phase p);

/// Traffic classes tracked for the cost model and reports.
enum class TrafficClass : int {
  kLocalCpuGpu = 0,   ///< PCIe: device <-> its machine's CPU memory
  kPeerGpu = 1,       ///< intra-machine device <-> device
  kCrossMachine = 2,  ///< Ethernet
  kNumClasses = 3,
};

const char* ToString(TrafficClass c);

// --- step tape (scale mode) -------------------------------------------------
//
// Scale mode's sampled execution records one really-executed training step as
// a tape of timing-relevant operations, then fast-forwards the remaining
// steps of the period by replaying the tape through the virtual clocks
// (Communicator::FastForwardStep). The tape is a STRUCTURED record: advances
// and barriers replay literally, while collectives and compute replay through
// the SAME charging code the real step used — so link degradation, straggler
// inflation, and wire-byte fault thresholds re-evaluate at the replay-time
// clocks exactly as a real step would evaluate them.

struct StepTapeOp {
  enum class Kind : std::uint8_t {
    kAdvance = 0,         ///< flat clock advance (dev, dt, phase, comm)
    kBarrier = 1,         ///< BarrierAll(phase)
    kCompute = 2,         ///< ChargeCompute(dev, flops): straggler re-eval
    kAllToAll = 3,        ///< Communicator all-to-all charge (byte matrices)
    kRing = 4,            ///< Communicator ring charge (totals + factor)
    kTraffic = 5,         ///< CountTraffic outside a collective (gathers)
    kBeginPipelined = 6,  ///< BeginPipelinedStep(depth)
    kEndPipelined = 7,    ///< EndPipelinedStep()
  };
  Kind kind = Kind::kAdvance;
  DeviceId dev = -1;
  Phase phase = Phase::kTrain;
  bool comm = false;
  double dt = 0.0;
  double flops = 0.0;
  const char* label = nullptr;  ///< string literal (TraceArg lifetime rule)
  int depth = 1;                ///< kBeginPipelined
  std::int64_t bytes = 0;       ///< kRing totals / kTraffic logical bytes
  std::int64_t wire_bytes = 0;
  double factor = 1.0;          ///< kRing volume factor
  TrafficClass cls = TrafficClass::kLocalCpuGpu;  ///< kTraffic
  /// kAllToAll: per-lane logical / wire byte matrices (empty otherwise).
  std::vector<std::vector<std::int64_t>> a2a_bytes;
  std::vector<std::vector<std::int64_t>> a2a_wire;
};

struct StepTape {
  std::vector<StepTapeOp> ops;
  bool empty() const { return ops.empty(); }
};

class SimContext {
 public:
  explicit SimContext(ClusterSpec cluster, SimOptions options = {});

  const SimOptions& options() const { return options_; }
  ScaleMode scale_mode() const { return options_.scale_mode; }

  const ClusterSpec& cluster() const { return cluster_; }
  std::int32_t num_devices() const { return static_cast<std::int32_t>(clocks_.size()); }

  // --- clocks ---------------------------------------------------------

  double Now(DeviceId dev) const { return clocks_[Check(dev)]; }

  /// Advances dev's clock by dt seconds, attributing the time to `phase`.
  /// When tracing is enabled the advance becomes one slice on dev's trace
  /// lane, named after the phase.
  void Advance(DeviceId dev, double dt, Phase phase) {
    AdvanceInternal(dev, dt, phase, nullptr, {}, /*comm=*/false);
  }

  /// Advance with an explicit trace-slice name and annotations (e.g.
  /// "gather" with byte counts). Accounting is identical to Advance.
  void AdvanceLabeled(DeviceId dev, double dt, Phase phase, const char* label,
                      std::initializer_list<obs::TraceArg> args = {}) {
    AdvanceInternal(dev, dt, phase, label, args, /*comm=*/false);
  }

  /// Advance that additionally attributes the time to dev's COMMUNICATION
  /// budget for `phase` (collective busy time). CommOf/CommMax expose the
  /// totals so measured shuffle cost is separable from compute — the
  /// quantity the cost model's T_shuffle / graph-shuffle terms predict.
  void AdvanceComm(DeviceId dev, double dt, Phase phase, const char* label,
                   std::initializer_list<obs::TraceArg> args = {}) {
    AdvanceInternal(dev, dt, phase, label, args, /*comm=*/true);
  }

  /// Synchronizes all devices to the maximum clock (a blocking collective's
  /// exit point). The wait time each device spends is attributed to `phase`
  /// and to its communication budget (waiting inside a collective IS
  /// communication time), and traced as a "wait" slice.
  void BarrierAll(Phase phase);

  /// Max clock over all devices (the simulated wall time so far).
  double MaxNow() const;

  /// Resets clocks plus phase and communication accounting. Deliberately
  /// PRESERVES traffic counters and memory accounting: traffic byte totals
  /// are cumulative per-class transfer volumes (reset only via
  /// ResetTraffic), and memory high-water marks must survive epoch
  /// boundaries for OOM detection (reset only via ResetMemory).
  void ResetClocks();

  /// Seconds attributed to `phase`, summed over devices / max over devices.
  double PhaseTotal(Phase phase) const;
  double PhaseMax(Phase phase) const;
  /// Per-device attributed time.
  double PhaseOf(DeviceId dev, Phase phase) const;

  /// Per-device / max-over-devices time spent in collectives (busy + barrier
  /// wait) attributed to `phase`. Always <= the matching phase time.
  double CommOf(DeviceId dev, Phase phase) const;
  double CommMax(Phase phase) const;

  /// Invariant: each device's per-phase times sum to its clock (every clock
  /// mutation funnels through Advance/BarrierAll, which update both).
  /// Checked after every advance in debug builds; callable from tests.
  /// The single-device overload is what the per-advance debug check uses —
  /// concurrent phases (the serving engine runs devices on different
  /// threads) must not read other devices' in-flight state.
  void DebugCheckClockInvariant() const;
  void DebugCheckClockInvariant(DeviceId dev) const;

  // --- pipelined micro-batch execution ---------------------------------
  //
  // Each logical GPU owns TWO virtual timelines: the compute stream (the
  // device clock above) and a communication stream. In serial mode
  // (depth 1) the comm stream is unused and every advance lands on the
  // device clock exactly as before. In pipelined mode the engine wraps one
  // training step in Begin/EndPipelinedStep(depth): advances issued inside
  // the scope are CAPTURED to a tape instead of moving clocks, then the
  // scope exit replays the tape as `depth` micro-batches. Each captured op
  // is split into `depth` equal chunks; chunks whose op was a collective
  // (AdvanceComm) or a feature gather (Phase::kLoad) are scheduled on the
  // comm stream, everything else on the compute stream. Micro-batch m's
  // chunks chain in program order; across micro-batches the two streams
  // overlap freely, subject to (a) stream serialization (one op at a time
  // per stream), (b) double buffering (micro-batch m's communication waits
  // for micro-batch m-2's compute to release its buffer), and (c) barriers,
  // which join all devices' chains of the SAME micro-batch — the explicit
  // stream-sync points.
  //
  // Accounting: the device clock remains the COMPUTE timeline. Compute
  // chunks charge their phase as usual; comm chunks charge the separate
  // comm-stream accounting (CommStreamOf/CommStreamMax) and a "gpuN.comm"
  // trace lane. Gaps where the compute stream sits waiting on communication
  // are charged as phase + comm time and traced as "pipeline.stall" — so
  // the clock invariant holds unchanged and CommOf/CommMax report the
  // EXPOSED (non-overlapped) communication.
  //
  // Modeling deviation (documented, deliberate): durations and fault
  // evaluation use the clocks frozen at the step start, because the real
  // arithmetic still executes serially — pipelining is purely a timing
  // model. Model parameters are therefore bit-identical at every depth.

  /// Starts capturing one pipelined step. depth >= 2; scopes cannot nest.
  void BeginPipelinedStep(int depth);
  /// Replays the captured tape as `depth` micro-batches, advancing clocks,
  /// phase/comm accounting and comm-stream time. Safe to call with an
  /// exception in flight (the engine's fault path): partial tapes replay so
  /// partially-charged faults still land on the clocks.
  void EndPipelinedStep();
  bool PipelineCapturing() const { return pipeline_depth_ > 1; }
  /// Depth of the step being captured; 1 outside a pipelined scope.
  int PipelineDepth() const { return pipeline_depth_; }

  /// RAII wrapper for Begin/EndPipelinedStep; no-op at depth <= 1, and
  /// replays on destruction even when the step throws (collective faults).
  class PipelinedStepScope {
   public:
    PipelinedStepScope(SimContext& sim, int depth)
        : sim_(depth > 1 ? &sim : nullptr) {
      if (sim_ != nullptr) sim_->BeginPipelinedStep(depth);
    }
    ~PipelinedStepScope() {
      if (sim_ != nullptr) sim_->EndPipelinedStep();
    }
    PipelinedStepScope(const PipelinedStepScope&) = delete;
    PipelinedStepScope& operator=(const PipelinedStepScope&) = delete;

   private:
    SimContext* sim_;
  };

  /// Comm-stream busy seconds (overlapped communication) per device / max
  /// over devices, attributed to `phase`. Zero unless pipelined steps ran.
  double CommStreamOf(DeviceId dev, Phase phase) const;
  double CommStreamMax(Phase phase) const;

  // --- step tape recording (scale mode) --------------------------------
  //
  // While recording, every clock mutation and traffic count appends a
  // structured op to the tape IN ADDITION to executing normally — the
  // recorded step itself is bit-identical to an unrecorded one. Compound
  // charges (collectives, ChargeCompute) record ONE structured op and
  // suppress the flat advances their implementation issues, so replay
  // re-runs the charging math instead of replaying stale numbers.

  /// Starts recording; any partial previous tape is discarded.
  void BeginStepRecord();
  /// Discards the partial tape (fault path: the replayable unit is a
  /// completed step, a faulted attempt is re-executed for real on retry).
  void AbortStepRecord();
  /// Stops recording and returns the completed tape.
  StepTape EndStepRecord();
  bool RecordingStep() const {
    return recording_ && record_suppress_ == 0;
  }
  /// Appends a structured collective op (called by the Communicator, which
  /// then suppresses + executes the real charge).
  void RecordAllToAll(std::vector<std::vector<std::int64_t>> bytes,
                      std::vector<std::vector<std::int64_t>> wire_bytes,
                      Phase phase);
  void RecordRing(std::int64_t total_bytes, std::int64_t wire_bytes,
                  double factor, Phase phase, const char* label);
  /// Replays one flat advance from a tape (empty annotations; accounting
  /// identical to the recorded advance).
  void ReplayAdvance(DeviceId dev, double dt, Phase phase, const char* label,
                     bool comm) {
    AdvanceInternal(dev, dt, phase, label, {}, comm);
  }

  /// Suppresses recording for a scope: flat advances issued inside a
  /// compound charge do not land on the tape (the compound op does).
  class RecordSuppressScope {
   public:
    explicit RecordSuppressScope(SimContext& sim) : sim_(sim) {
      ++sim_.record_suppress_;
    }
    ~RecordSuppressScope() { --sim_.record_suppress_; }
    RecordSuppressScope(const RecordSuppressScope&) = delete;
    RecordSuppressScope& operator=(const RecordSuppressScope&) = delete;

   private:
    SimContext& sim_;
  };

  /// Trace pid of this context's simulated track (one lane per device plus
  /// one marker lane, see ObsStepLane), registered with the global tracer on
  /// first use (const: lazy registration is observability, not simulation
  /// state).
  std::int32_t ObsPid() const;

  /// Lane on this context's track for dev's COMM stream ("gpuN.comm").
  /// Only pipelined replay emits here; the lane is idle in serial runs.
  std::int32_t ObsCommLane(DeviceId dev) const {
    return num_devices() + static_cast<std::int32_t>(Check(dev));
  }

  /// Lane on this context's track reserved for engine-level markers (step /
  /// epoch spans with strategy annotations). Device slices never land here,
  /// so markers can overlap device activity without corrupting lanes — and
  /// the trace analyzer uses them to delimit steps and label strategies.
  std::int32_t ObsStepLane() const { return 2 * num_devices(); }

  /// Display label of this context's trace track ("2m x 4gpu").
  std::string ObsTrackLabel() const;

  // --- compute cost helpers -------------------------------------------

  /// Time for `flops` of dense/sparse math on dev (one kernel launch).
  /// Includes any active straggler slowdown from the installed fault plan.
  double ComputeSeconds(DeviceId dev, double flops) const;
  /// Advance dev by a compute of `flops`, attributed to kTrain.
  void ChargeCompute(DeviceId dev, double flops);

  // --- fault injection --------------------------------------------------
  //
  // The plan is consumed deterministically: straggler factors apply inside
  // ComputeSeconds, link degradation inside EffectiveLink*/DegradedLink
  // (evaluated at the consuming devices' CURRENT virtual clocks), and
  // collective faults inside the Communicator via CollectiveFailureFraction.
  // With no plan installed — or an Empty() one — every path returns the
  // exact same numbers as before this subsystem existed (asserted by the
  // zero-fault-overhead tests).

  /// Installs (replaces) the fault plan. Collective faults are re-armed.
  void InstallFaults(FaultPlan plan);
  const FaultPlan& faults() const { return faults_; }
  bool HasFaults() const { return !faults_.Empty(); }

  /// Cluster link for a device pair / CPU read, degraded by any active link
  /// fault at the participants' current simulated time.
  LinkSpec EffectiveLinkBetween(DeviceId a, DeviceId b) const;
  LinkSpec EffectiveLinkToCpu(DeviceId dev, MachineId m) const;
  /// Applies active link faults of `cls` to an externally chosen base link
  /// at time `at_s` (FeatureStore tiers pick their own base links).
  LinkSpec DegradedLink(LinkSpec base, TrafficClass cls, double at_s) const;

  /// Called by the Communicator with each collective's total wire bytes
  /// BEFORE charging time. If an armed CollectiveFault's threshold falls
  /// within this call's byte range, the fault is consumed and the completed
  /// fraction of the call (in [0,1)) is returned; the caller must charge
  /// that fraction of the time, PoisonBarrier(), and throw CollectiveError.
  /// Returns nullopt (and accumulates the bytes) when no fault fires.
  std::optional<double> CollectiveFailureFraction(std::int64_t call_bytes);
  /// Cumulative wire bytes of completed collectives (monotone; drives the
  /// CollectiveFault thresholds).
  std::int64_t CollectiveBytesDone() const { return collective_bytes_; }

  /// Total fault activations observed so far (each straggler/link fault
  /// counts once on first observation; each collective fault on firing).
  std::int64_t FaultsObserved() const {
    return faults_observed_.load(std::memory_order_relaxed);
  }

  // --- barrier poisoning ------------------------------------------------
  //
  // When a participant fails inside a collective, its peers must not be
  // left silently blocked (the deadlock a real NCCL abort causes). The
  // failing path poisons the barrier; every subsequent BarrierAll throws
  // BarrierPoisonedError until recovery clears the poison.

  void PoisonBarrier(const std::string& reason);
  bool BarrierPoisoned() const { return poisoned_; }
  const std::string& PoisonReason() const { return poison_reason_; }
  void ClearBarrierPoison() { poisoned_ = false; poison_reason_.clear(); }

  // --- traffic ----------------------------------------------------------

  TrafficClass ClassifyDeviceLink(DeviceId a, DeviceId b) const;
  TrafficClass ClassifyCpuLink(DeviceId dev, MachineId m) const;

  /// Adds to the cumulative per-class byte totals (also mirrored into the
  /// global obs metrics registry and, when tracing, a counter track).
  /// `bytes` is the LOGICAL fp32 volume; `wire_bytes` is what actually
  /// crossed the link after any codec (== bytes when uncompressed). Wire
  /// bytes are what transfer time and fault thresholds charge; the
  /// logical/wire pair is what reports derive compression ratios from.
  void CountTraffic(TrafficClass c, std::int64_t bytes,
                    std::int64_t wire_bytes);
  void CountTraffic(TrafficClass c, std::int64_t bytes) {
    CountTraffic(c, bytes, bytes);
  }
  std::int64_t TrafficBytes(TrafficClass c) const {
    return traffic_bytes_[static_cast<std::size_t>(c)].load(
        std::memory_order_relaxed);
  }
  std::int64_t TrafficWireBytes(TrafficClass c) const {
    return traffic_wire_bytes_[static_cast<std::size_t>(c)].load(
        std::memory_order_relaxed);
  }
  void ResetTraffic() {
    for (auto& b : traffic_bytes_) b.store(0, std::memory_order_relaxed);
    for (auto& b : traffic_wire_bytes_) b.store(0, std::memory_order_relaxed);
  }

  // --- memory -----------------------------------------------------------

  /// Registers a persistent allocation (cache, parameters) on dev.
  void AllocPersistent(DeviceId dev, std::int64_t bytes);
  /// Tracks transient peak usage: call with the live transient bytes.
  void NoteTransient(DeviceId dev, std::int64_t bytes);
  std::int64_t PeakMemory(DeviceId dev) const;
  /// True if any device's peak exceeded its capacity.
  bool AnyOom() const;
  std::vector<DeviceId> OomDevices() const;
  void ResetMemory();

 private:
  std::size_t Check(DeviceId dev) const {
    APT_CHECK(dev >= 0 && dev < num_devices()) << "device " << dev;
    return static_cast<std::size_t>(dev);
  }

  void AdvanceInternal(DeviceId dev, double dt, Phase phase, const char* label,
                       std::initializer_list<obs::TraceArg> args, bool comm);

  /// One captured advance (dev >= 0) or barrier (dev < 0) on the pipeline
  /// tape. Labels/arg strings are literals (same lifetime rule as TraceArg).
  struct PipelineOp {
    DeviceId dev = -1;
    double dt = 0.0;
    Phase phase = Phase::kTrain;
    const char* label = nullptr;
    bool comm = false;
    std::int8_t num_args = 0;
    std::array<obs::TraceArg, obs::kMaxTraceArgs> args{};
  };

  /// Schedules the tape as `depth` micro-batches over the compute + comm
  /// streams and commits the resulting times (see sim_pipeline.cpp).
  void ReplayPipeline(const std::vector<PipelineOp>& tape, int depth);

  /// One-shot fault.* metric + trace emission when a straggler/link fault is
  /// first seen active (const: observation does not change simulation state).
  void NoteStragglerObserved(std::size_t fault_index, DeviceId dev,
                             double at_s) const;
  void NoteLinkObserved(std::size_t fault_index, double at_s) const;

  ClusterSpec cluster_;
  SimOptions options_;
  bool recording_ = false;    ///< step-tape recording active
  int record_suppress_ = 0;   ///< >0 inside a compound charge
  StepTape record_tape_;
  std::vector<double> clocks_;
  std::vector<std::array<double, kNumPhases>> phase_time_;
  std::vector<std::array<double, kNumPhases>> comm_time_;
  /// Comm-STREAM busy time (overlapped communication, pipelined replay
  /// only); deliberately outside the clock invariant — the device clock
  /// tracks the compute timeline.
  std::vector<std::array<double, kNumPhases>> comm_stream_time_;
  int pipeline_depth_ = 1;  ///< >1 while capturing a pipelined step
  std::vector<PipelineOp> pipeline_tape_;
  // Traffic totals and fault-observation flags are atomic: concurrent
  // serving workers gather features (CountTraffic) and evaluate link /
  // straggler faults (NoteObserved) from different threads. Everything else
  // is per-device state touched only by that device's thread, or
  // bookkeeping confined to single-threaded sections.
  std::array<std::atomic<std::int64_t>,
             static_cast<std::size_t>(TrafficClass::kNumClasses)>
      traffic_bytes_{};
  std::array<std::atomic<std::int64_t>,
             static_cast<std::size_t>(TrafficClass::kNumClasses)>
      traffic_wire_bytes_{};
  std::vector<std::int64_t> persistent_bytes_;
  std::vector<std::int64_t> peak_bytes_;
  mutable std::atomic<std::int32_t> obs_pid_{-1};  ///< lazy trace track

  FaultPlan faults_;
  std::size_t next_collective_fault_ = 0;  ///< index into faults_.collectives
  std::int64_t collective_bytes_ = 0;
  bool poisoned_ = false;
  std::string poison_reason_;
  mutable std::atomic<std::int64_t> faults_observed_{0};
  mutable std::vector<std::atomic<std::uint8_t>> straggler_seen_;  ///< flags
  mutable std::vector<std::atomic<std::uint8_t>> link_seen_;
};

}  // namespace apt
