// Simulation context: per-device virtual clocks, phase-attributed time,
// memory accounting, and traffic counters.
//
// Every cost in the reproduction — compute, feature loads, collective
// shuffles — is charged here. The engine advances a device's clock as it
// performs that device's (real, CPU-executed) work; collectives synchronize
// clocks to the latest participant, exactly like a blocking NCCL call.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/types.h"
#include "sim/hardware.h"

namespace apt {

/// Epoch-time components reported by the paper's stacked bars:
/// sampling (incl. shuffling sampled subgraphs), feature loading, and
/// training (incl. shuffling hidden embeddings).
enum class Phase : int { kSample = 0, kLoad = 1, kTrain = 2 };
inline constexpr int kNumPhases = 3;

const char* ToString(Phase p);

/// Traffic classes tracked for the cost model and reports.
enum class TrafficClass : int {
  kLocalCpuGpu = 0,   ///< PCIe: device <-> its machine's CPU memory
  kPeerGpu = 1,       ///< intra-machine device <-> device
  kCrossMachine = 2,  ///< Ethernet
  kNumClasses = 3,
};

class SimContext {
 public:
  explicit SimContext(ClusterSpec cluster);

  const ClusterSpec& cluster() const { return cluster_; }
  std::int32_t num_devices() const { return static_cast<std::int32_t>(clocks_.size()); }

  // --- clocks ---------------------------------------------------------

  double Now(DeviceId dev) const { return clocks_[Check(dev)]; }

  /// Advances dev's clock by dt seconds, attributing the time to `phase`.
  void Advance(DeviceId dev, double dt, Phase phase);

  /// Synchronizes all devices to the maximum clock (a blocking collective's
  /// exit point). The wait time each device spends is attributed to `phase`.
  void BarrierAll(Phase phase);

  /// Max clock over all devices (the simulated wall time so far).
  double MaxNow() const;

  /// Resets clocks and phase accounting (not memory or traffic).
  void ResetClocks();

  /// Seconds attributed to `phase`, summed over devices / max over devices.
  double PhaseTotal(Phase phase) const;
  double PhaseMax(Phase phase) const;
  /// Per-device attributed time.
  double PhaseOf(DeviceId dev, Phase phase) const;

  // --- compute cost helpers -------------------------------------------

  /// Time for `flops` of dense/sparse math on dev (one kernel launch).
  double ComputeSeconds(DeviceId dev, double flops) const;
  /// Advance dev by a compute of `flops`, attributed to kTrain.
  void ChargeCompute(DeviceId dev, double flops);

  // --- traffic ----------------------------------------------------------

  TrafficClass ClassifyDeviceLink(DeviceId a, DeviceId b) const;
  TrafficClass ClassifyCpuLink(DeviceId dev, MachineId m) const;

  void CountTraffic(TrafficClass c, std::int64_t bytes) {
    traffic_bytes_[static_cast<std::size_t>(c)] += bytes;
  }
  std::int64_t TrafficBytes(TrafficClass c) const {
    return traffic_bytes_[static_cast<std::size_t>(c)];
  }
  void ResetTraffic() { traffic_bytes_.fill(0); }

  // --- memory -----------------------------------------------------------

  /// Registers a persistent allocation (cache, parameters) on dev.
  void AllocPersistent(DeviceId dev, std::int64_t bytes);
  /// Tracks transient peak usage: call with the live transient bytes.
  void NoteTransient(DeviceId dev, std::int64_t bytes);
  std::int64_t PeakMemory(DeviceId dev) const;
  /// True if any device's peak exceeded its capacity.
  bool AnyOom() const;
  std::vector<DeviceId> OomDevices() const;
  void ResetMemory();

 private:
  std::size_t Check(DeviceId dev) const {
    APT_CHECK(dev >= 0 && dev < num_devices()) << "device " << dev;
    return static_cast<std::size_t>(dev);
  }

  ClusterSpec cluster_;
  std::vector<double> clocks_;
  std::vector<std::array<double, kNumPhases>> phase_time_;
  std::array<std::int64_t, static_cast<std::size_t>(TrafficClass::kNumClasses)>
      traffic_bytes_{};
  std::vector<std::int64_t> persistent_bytes_;
  std::vector<std::int64_t> peak_bytes_;
};

}  // namespace apt
