#include "sim/fault.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/error.h"
#include "core/random.h"

namespace apt {

bool LinkFault::ActiveAt(double t) const {
  if (t < start_s || t >= end_s) return false;
  if (flap_period_s <= 0.0) return true;
  // Phase within the current flap period, anchored at the fault's start so
  // the first `flap_duty` fraction of the window is always degraded.
  const double phase = std::fmod(t - start_s, flap_period_s) / flap_period_s;
  return phase < flap_duty;
}

double FaultPlan::StragglerFactor(DeviceId dev, double t) const {
  double f = 1.0;
  for (const StragglerFault& s : stragglers) {
    if (s.device == dev && s.ActiveAt(t)) f *= s.slowdown;
  }
  return f;
}

LinkSpec FaultPlan::Degrade(LinkSpec base, int cls, double t) const {
  for (const LinkFault& l : links) {
    if (l.link_class != cls || !l.ActiveAt(t)) continue;
    base.bandwidth_bytes_per_s *= l.bandwidth_factor;
    base.latency_s += l.extra_latency_s;
  }
  return base;
}

bool FaultPlan::AnyDegradationAt(double t) const {
  for (const StragglerFault& s : stragglers) {
    if (s.ActiveAt(t)) return true;
  }
  for (const LinkFault& l : links) {
    // A flapping fault counts as degradation anywhere inside its window:
    // re-planning cares about the window, not the instantaneous phase.
    if (t >= l.start_s && t < l.end_s) return true;
  }
  return false;
}

FaultPlan FaultPlan::WithoutCollectiveFaults() const {
  FaultPlan p = *this;
  p.collectives.clear();
  return p;
}

std::string FaultPlan::Describe() const {
  std::ostringstream os;
  for (const StragglerFault& s : stragglers) {
    os << "straggler dev=" << s.device << " [" << s.start_s << "," << s.end_s
       << ")s x" << s.slowdown << "\n";
  }
  for (const LinkFault& l : links) {
    os << "link class=" << l.link_class << " [" << l.start_s << "," << l.end_s
       << ")s bw_factor=" << l.bandwidth_factor << " +lat=" << l.extra_latency_s;
    if (l.flap_period_s > 0.0) {
      os << " flap=" << l.flap_period_s << "s duty=" << l.flap_duty;
    }
    os << "\n";
  }
  for (const CollectiveFault& c : collectives) {
    os << "collective fail after " << c.after_bytes << " bytes\n";
  }
  return os.str();
}

FaultPlan RandomFaultPlan(std::uint64_t seed, const ClusterSpec& cluster,
                          double horizon_s, double intensity) {
  APT_CHECK_GT(horizon_s, 0.0);
  APT_CHECK(intensity > 0.0 && intensity <= 1.0) << "intensity " << intensity;
  Rng rng(seed);
  FaultPlan plan;
  const auto count = [&](double max_per_kind) {
    return static_cast<int>(std::llround(max_per_kind * intensity *
                                         (0.5 + rng.NextDouble())));
  };
  const std::int32_t c = cluster.num_devices();

  const int n_strag = count(2.0);
  for (int i = 0; i < n_strag; ++i) {
    StragglerFault s;
    s.device = static_cast<DeviceId>(rng.NextBelow(static_cast<std::uint64_t>(c)));
    s.start_s = rng.NextDouble() * horizon_s * 0.5;
    s.end_s = s.start_s + (0.1 + rng.NextDouble() * 0.8) * horizon_s;
    s.slowdown = 1.5 + rng.NextDouble() * 4.0;
    plan.stragglers.push_back(s);
  }

  const int n_link = count(2.0);
  for (int i = 0; i < n_link; ++i) {
    LinkFault l;
    // Cross-machine faults only make sense on multi-machine clusters.
    l.link_class = cluster.num_machines() > 1
                       ? static_cast<int>(rng.NextBelow(3))
                       : static_cast<int>(rng.NextBelow(2));
    l.start_s = rng.NextDouble() * horizon_s * 0.5;
    l.end_s = l.start_s + (0.1 + rng.NextDouble() * 0.8) * horizon_s;
    l.bandwidth_factor = 0.05 + rng.NextDouble() * 0.75;
    l.extra_latency_s = rng.NextDouble() * 1e-4;
    if (rng.NextDouble() < 0.5) {
      l.flap_period_s = horizon_s * (0.01 + rng.NextDouble() * 0.05);
      l.flap_duty = 0.2 + rng.NextDouble() * 0.6;
    }
    plan.links.push_back(l);
  }

  const int n_coll = count(1.5);
  for (int i = 0; i < n_coll; ++i) {
    CollectiveFault f;
    // Thresholds spread over a plausible per-epoch collective volume.
    f.after_bytes = static_cast<std::int64_t>(rng.NextDouble() * 64e6);
    plan.collectives.push_back(f);
  }
  std::sort(plan.collectives.begin(), plan.collectives.end(),
            [](const CollectiveFault& a, const CollectiveFault& b) {
              return a.after_bytes < b.after_bytes;
            });
  return plan;
}

}  // namespace apt
