// Pipelined micro-batch replay: the second virtual timeline per logical GPU.
//
// SimContext captures one training step's advances/barriers to a tape (see
// the capture hooks in sim_context.cpp), then this file schedules the tape
// as `depth` micro-batches over two streams per device — compute (the
// device clock) and communication — and commits the resulting times.
//
// Scheduling model:
//  * Every captured op is split into `depth` equal chunks (dt / depth), one
//    per micro-batch. The tape order is the per-micro-batch program order.
//  * Stream assignment: collective charges (AdvanceComm) and feature-load
//    charges (Phase::kLoad — the gather path) run on the comm stream;
//    everything else runs on the compute stream.
//  * Within micro-batch m, chunks chain in program order on each device
//    (the data dependency Permute -> Shuffle -> Execute -> Reshuffle).
//  * Each stream runs one chunk at a time (stream serialization), so
//    micro-batch m+1's communication overlaps micro-batch m's compute.
//  * Double buffering: micro-batch m's communication additionally waits for
//    micro-batch m-2's compute on the same device to release its buffer.
//  * A captured barrier is a stream-sync point: all devices' micro-batch-m
//    chains join at their max, and each device's comm stream is busy until
//    that join (a collective only completes when every participant has).
//
// Commit: compute chunks charge phase time on the device clock; comm chunks
// charge the separate comm-stream accounting and the "gpuN.comm" trace lane
// (annotated {"stream":"comm"} so file-loaded analyses can classify them).
// Gaps in the compute timeline are charged as phase + comm time and traced
// as "pipeline.stall": the EXPOSED communication the overlap failed to
// hide. Chunks plus stalls tile [step start, device end] exactly, so the
// clock invariant (phase sums == clock) survives unchanged.

#include <algorithm>
#include <array>
#include <vector>

#include "sim/sim_context.h"

namespace apt {

void SimContext::BeginPipelinedStep(int depth) {
  APT_CHECK_GT(depth, 1) << "pipelined scope needs depth >= 2";
  APT_CHECK_EQ(pipeline_depth_, 1) << "pipelined steps cannot nest";
  if (RecordingStep()) {
    // Step-tape hook (scale mode): fast-forward re-opens the scope so the
    // replayed ops are captured and scheduled exactly like the real step.
    // The replay commits in ReplayPipeline write clock arrays directly —
    // never through Advance/BarrierAll — so only the scope boundaries need
    // recording.
    StepTapeOp op;
    op.kind = StepTapeOp::Kind::kBeginPipelined;
    op.depth = depth;
    record_tape_.ops.push_back(std::move(op));
  }
  pipeline_depth_ = depth;
  pipeline_tape_.clear();
}

void SimContext::EndPipelinedStep() {
  if (pipeline_depth_ <= 1) return;
  if (RecordingStep()) {
    StepTapeOp op;
    op.kind = StepTapeOp::Kind::kEndPipelined;
    record_tape_.ops.push_back(std::move(op));
  }
  const int depth = pipeline_depth_;
  pipeline_depth_ = 1;  // replay below charges clocks live
  std::vector<PipelineOp> tape;
  tape.swap(pipeline_tape_);
  if (!tape.empty()) ReplayPipeline(tape, depth);
}

void SimContext::ReplayPipeline(const std::vector<PipelineOp>& tape, int depth) {
  struct Chunk {
    double t0 = 0.0;
    double t1 = 0.0;
    const PipelineOp* op = nullptr;
    int mb = 0;
  };

  const std::size_t n = clocks_.size();
  const double inv_depth = 1.0 / static_cast<double>(depth);
  const std::vector<double> start = clocks_;  // frozen step-start clocks
  std::vector<double> comp_free = clocks_;    // compute-stream availability
  std::vector<double> comm_free = clocks_;    // comm-stream availability
  std::vector<double> chain(n);               // micro-batch program chain
  // Per-device compute completion per micro-batch: micro-batch m's comm may
  // only start once m-2's compute released its half of the double buffer.
  std::vector<std::vector<double>> compute_done(static_cast<std::size_t>(depth),
                                                start);
  std::vector<std::vector<Chunk>> comp_chunks(n);
  std::vector<std::vector<Chunk>> comm_chunks(n);

  for (int m = 0; m < depth; ++m) {
    chain = start;  // every micro-batch's inputs are ready at step start
    for (const PipelineOp& op : tape) {
      if (op.dev < 0) {
        // Barrier: all devices' micro-batch-m chains join; each comm stream
        // stays busy until the join (collective exit).
        double target = 0.0;
        for (std::size_t d = 0; d < n; ++d) target = std::max(target, chain[d]);
        for (std::size_t d = 0; d < n; ++d) {
          chain[d] = target;
          comm_free[d] = std::max(comm_free[d], target);
        }
        continue;
      }
      const std::size_t d = Check(op.dev);
      const bool on_comm = op.comm || op.phase == Phase::kLoad;
      double t0 = std::max(chain[d], on_comm ? comm_free[d] : comp_free[d]);
      if (on_comm && m >= 2) {
        t0 = std::max(t0, compute_done[static_cast<std::size_t>(m - 2)][d]);
      }
      const double t1 = t0 + op.dt * inv_depth;
      chain[d] = t1;
      (on_comm ? comm_free : comp_free)[d] = t1;
      if (!on_comm) compute_done[static_cast<std::size_t>(m)][d] = t1;
      (on_comm ? comm_chunks : comp_chunks)[d].push_back(Chunk{t0, t1, &op, m});
    }
  }

  // Commit the schedule to clocks, accounting and (optionally) the trace.
  const bool tracing = obs::TracingEnabled();
  for (std::size_t di = 0; di < n; ++di) {
    const auto dev = static_cast<DeviceId>(di);
    double end = start[di];
    for (const Chunk& c : comp_chunks[di]) end = std::max(end, c.t1);
    for (const Chunk& c : comm_chunks[di]) end = std::max(end, c.t1);

    // Comm stream: busy time per phase + one slice per chunk on the comm
    // lane, tagged with its stream and micro-batch.
    for (const Chunk& c : comm_chunks[di]) {
      comm_stream_time_[di][static_cast<std::size_t>(c.op->phase)] += c.t1 - c.t0;
      if (tracing && c.t1 > c.t0) {
        std::array<obs::TraceArg, obs::kMaxTraceArgs> args{};
        int na = 0;
        args[static_cast<std::size_t>(na++)] = {"stream", 0.0, "comm"};
        args[static_cast<std::size_t>(na++)] = {"mb", static_cast<double>(c.mb),
                                                nullptr};
        for (int k = 0; k < c.op->num_args && na < obs::kMaxTraceArgs; ++k) {
          args[static_cast<std::size_t>(na++)] = c.op->args[static_cast<std::size_t>(k)];
        }
        obs::EmitSimSpan(ObsPid(), ObsCommLane(dev), c.t0, c.t1,
                         c.op->label != nullptr ? c.op->label : ToString(c.op->phase),
                         ToString(c.op->phase), args.data(), na);
      }
    }

    // Compute timeline: chunks plus stall gaps tile [start, end] exactly.
    // A stall is communication the pipeline failed to hide; it is charged
    // as phase + comm time, attributed to the comm chunk that released it
    // (the latest one ending inside the gap), falling back to the phase of
    // the op that was waiting.
    std::size_t blocker = 0;  // monotone cursor over comm_chunks[di]
    auto charge_gap = [&](double g0, double g1, Phase fallback) {
      if (!(g1 > g0)) return;
      Phase ph = fallback;
      const char* blocking_label = nullptr;
      while (blocker < comm_chunks[di].size() &&
             comm_chunks[di][blocker].t1 <= g1) {
        if (comm_chunks[di][blocker].t1 > g0) {
          ph = comm_chunks[di][blocker].op->phase;
          blocking_label = comm_chunks[di][blocker].op->label;
        }
        ++blocker;
      }
      const std::size_t p = static_cast<std::size_t>(ph);
      phase_time_[di][p] += g1 - g0;
      comm_time_[di][p] += g1 - g0;
      if (tracing) {
        if (blocking_label != nullptr) {
          obs::EmitSimSpan(ObsPid(), dev, g0, g1, "pipeline.stall", ToString(ph),
                           {{"for", 0.0, blocking_label}});
        } else {
          obs::EmitSimSpan(ObsPid(), dev, g0, g1, "pipeline.stall", ToString(ph));
        }
      }
    };

    double cursor = start[di];
    for (const Chunk& c : comp_chunks[di]) {
      charge_gap(cursor, c.t0, c.op->phase);
      phase_time_[di][static_cast<std::size_t>(c.op->phase)] += c.t1 - c.t0;
      if (tracing && c.t1 > c.t0) {
        std::array<obs::TraceArg, obs::kMaxTraceArgs> args{};
        int na = 0;
        args[static_cast<std::size_t>(na++)] = {"mb", static_cast<double>(c.mb),
                                                nullptr};
        for (int k = 0; k < c.op->num_args && na < obs::kMaxTraceArgs; ++k) {
          args[static_cast<std::size_t>(na++)] = c.op->args[static_cast<std::size_t>(k)];
        }
        obs::EmitSimSpan(ObsPid(), dev, c.t0, c.t1,
                         c.op->label != nullptr ? c.op->label : ToString(c.op->phase),
                         ToString(c.op->phase), args.data(), na);
      }
      cursor = c.t1;
    }
    Phase tail_phase = Phase::kTrain;
    if (!comm_chunks[di].empty()) {
      tail_phase = comm_chunks[di].back().op->phase;
    } else if (!comp_chunks[di].empty()) {
      tail_phase = comp_chunks[di].back().op->phase;
    }
    charge_gap(cursor, end, tail_phase);
    clocks_[di] = end;
  }
#ifndef NDEBUG
  DebugCheckClockInvariant();
#endif
}

}  // namespace apt
