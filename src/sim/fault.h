// Deterministic fault injection for the simulated cluster.
//
// A FaultPlan is a seeded, schedulable description of hardware perturbations
// — straggler devices, degraded or flapping links, collective failures —
// expressed entirely in SIMULATED time and byte counts. SimContext and the
// Communicator consume the plan at well-defined points (compute-cost
// evaluation, link-cost evaluation, collective charging), so every chaos
// scenario is bit-reproducible: the same plan on the same workload produces
// the same clocks, the same failures, and the same trace, run after run.
//
// Fault taxonomy (see DESIGN.md "Fault model & recovery"):
//   * StragglerFault  — a device's effective compute throughput drops by a
//     factor for a simulated-time window (thermal throttling, ECC retries).
//   * LinkFault       — a traffic class's bandwidth/latency degrades for a
//     window; an optional flap period makes the degradation oscillate
//     (a renegotiating NVLink or a lossy ToR uplink).
//   * CollectiveFault — the collective that crosses a cumulative wire-byte
//     threshold aborts partway through (an NCCL communicator failure). The
//     failure surfaces as a typed apt::CollectiveError and poisons the
//     context's barrier; each fault fires exactly once.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/types.h"
#include "sim/hardware.h"

namespace apt {

enum class TrafficClass : int;  // sim/sim_context.h

/// Compute-throughput degradation of one device over a time window.
struct StragglerFault {
  DeviceId device = 0;
  double start_s = 0.0;
  double end_s = std::numeric_limits<double>::infinity();
  /// Compute time multiplier while active (2.0 = half throughput). Must
  /// be >= 1: a fault never speeds hardware up.
  double slowdown = 2.0;

  bool ActiveAt(double t) const { return t >= start_s && t < end_s; }
};

/// Bandwidth/latency degradation of one traffic class over a time window,
/// optionally flapping on and off with a fixed period.
struct LinkFault {
  /// Which links degrade (kLocalCpuGpu = PCIe host links, kPeerGpu =
  /// NVLink/PCIe peer links, kCrossMachine = Ethernet).
  int link_class = 1;  ///< TrafficClass as int (header-order decoupling)
  double start_s = 0.0;
  double end_s = std::numeric_limits<double>::infinity();
  /// Remaining bandwidth fraction while active, in (0, 1].
  double bandwidth_factor = 0.5;
  /// Added one-way latency while active, seconds.
  double extra_latency_s = 0.0;
  /// When > 0 the fault flaps: within each period the fault is active for
  /// the first `flap_duty` fraction and dormant for the rest.
  double flap_period_s = 0.0;
  double flap_duty = 1.0;

  bool ActiveAt(double t) const;
};

/// Abort the collective call whose cumulative wire bytes cross `after_bytes`.
struct CollectiveFault {
  std::int64_t after_bytes = 0;
};

/// A complete, deterministic chaos schedule for one SimContext.
struct FaultPlan {
  std::vector<StragglerFault> stragglers;
  std::vector<LinkFault> links;
  std::vector<CollectiveFault> collectives;  ///< consumed in after_bytes order

  bool Empty() const {
    return stragglers.empty() && links.empty() && collectives.empty();
  }

  /// Product of every active straggler slowdown for `dev` at time `t`
  /// (1.0 when healthy).
  double StragglerFactor(DeviceId dev, double t) const;

  /// Applies every active LinkFault of `cls` to `base` at time `t`.
  /// Bandwidth factors multiply; extra latencies add. Returns `base`
  /// unchanged (bit-identical) when nothing is active.
  LinkSpec Degrade(LinkSpec base, int cls, double t) const;

  /// True if any straggler/link fault could be active at time `t` — used by
  /// re-planning to decide whether a degraded profile is worth measuring.
  bool AnyDegradationAt(double t) const;

  /// Copy without collective faults: what bandwidth re-profiling uses (a
  /// profiling trial must measure the degraded links, not trip a one-shot
  /// collective abort that belongs to the training timeline).
  FaultPlan WithoutCollectiveFaults() const;

  /// One line per fault; stable ordering (seeded-plan determinism checks
  /// compare these strings).
  std::string Describe() const;
};

/// Seeded random chaos schedule over `horizon_s` of simulated time:
/// `intensity` in (0, 1] scales how many faults of each kind are drawn.
/// Same (seed, cluster shape, horizon, intensity) => identical plan.
FaultPlan RandomFaultPlan(std::uint64_t seed, const ClusterSpec& cluster,
                          double horizon_s, double intensity = 0.5);

}  // namespace apt
