#include "sim/hardware.h"

#include <sstream>

#include "core/error.h"

namespace apt {

std::int32_t ClusterSpec::num_devices() const {
  std::int32_t n = 0;
  for (const auto& m : machines) n += m.num_gpus;
  return n;
}

void ClusterSpec::EnsureDeviceIndex() const {
  device_machine_.clear();
  device_local_.clear();
  device_machine_.reserve(static_cast<std::size_t>(num_devices()));
  device_local_.reserve(device_machine_.capacity());
  for (std::size_t m = 0; m < machines.size(); ++m) {
    for (std::int32_t g = 0; g < machines[m].num_gpus; ++g) {
      device_machine_.push_back(static_cast<MachineId>(m));
      device_local_.push_back(g);
    }
  }
}

MachineId ClusterSpec::MachineOf(DeviceId dev) const {
  APT_CHECK_GE(dev, 0);
  if (static_cast<std::size_t>(dev) < device_machine_.size()) {
    return device_machine_[static_cast<std::size_t>(dev)];
  }
  DeviceId base = 0;
  for (std::size_t m = 0; m < machines.size(); ++m) {
    if (dev < base + machines[m].num_gpus) return static_cast<MachineId>(m);
    base += machines[m].num_gpus;
  }
  throw Error("device id out of range");
}

std::int32_t ClusterSpec::LocalIndex(DeviceId dev) const {
  if (dev >= 0 && static_cast<std::size_t>(dev) < device_local_.size()) {
    return device_local_[static_cast<std::size_t>(dev)];
  }
  DeviceId base = 0;
  for (const auto& m : machines) {
    if (dev < base + m.num_gpus) return dev - base;
    base += m.num_gpus;
  }
  throw Error("device id out of range");
}

LinkSpec ClusterSpec::LinkBetween(DeviceId a, DeviceId b) const {
  const MachineId ma = MachineOf(a), mb = MachineOf(b);
  if (ma != mb) return network;
  const MachineSpec& m = machine(ma);
  return m.has_nvlink ? m.nvlink : m.pcie;
}

LinkSpec ClusterSpec::LinkToCpu(DeviceId dev, MachineId m) const {
  if (MachineOf(dev) == m) return machine(m).pcie;
  return network;
}

ClusterSpec SingleMachineCluster(std::int32_t num_gpus, bool nvlink) {
  APT_CHECK_GT(num_gpus, 0);
  ClusterSpec c;
  MachineSpec m;
  m.num_gpus = num_gpus;
  m.has_nvlink = nvlink;
  c.machines.push_back(m);
  return c;
}

ClusterSpec MultiMachineCluster(std::int32_t num_machines, std::int32_t gpus_per_machine,
                                bool nvlink) {
  APT_CHECK_GT(num_machines, 0);
  ClusterSpec c;
  for (std::int32_t i = 0; i < num_machines; ++i) {
    MachineSpec m;
    m.num_gpus = gpus_per_machine;
    m.has_nvlink = nvlink;
    c.machines.push_back(m);
  }
  return c;
}

std::string DescribeCluster(const ClusterSpec& cluster) {
  std::ostringstream os;
  os << cluster.num_machines() << " machine(s), " << cluster.num_devices()
     << " GPU(s) total; intra-machine "
     << (cluster.machines.front().has_nvlink ? "NVLink" : "PCIe 3.0")
     << ", inter-machine " << cluster.network.bandwidth_bytes_per_s / 1e9 << " GB/s";
  return os.str();
}

}  // namespace apt
