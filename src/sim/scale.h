// Scale-mode options for the simulator (ROADMAP item 2, Proteus direction).
//
// Scale mode lets the simulator sweep paper-scale clusters (100+ machines,
// 1000+ devices) and 100M-node-class graphs by removing the two costs that
// bound today's benches — O(C^2) buffer materialization inside collectives
// and real per-step compute — WITHOUT changing a single charged second:
//
//   1. analytic fast-forward collectives: ChargeRing / ChargeAllToAll
//      charge their closed-form seconds from byte matrices alone (same
//      link/codec/fault-threshold math, same per-class wire-byte counters);
//   2. sampled execution: the trainer executes 1-in-N steps for real
//      (bit-identical to an unsampled run via the per-step forked RNG) and
//      advances the remaining steps by replaying the sampled step's
//      recorded per-device stage tape through the virtual clocks;
//   3. a parallelized virtual-clock advance: per-device clock updates of
//      wide collectives and barriers batch through the fork-join pool
//      (per-device state is disjoint, so results are bit-identical).
//
// The invariant (DESIGN.md "Scale mode"): fast-forward never changes
// charged seconds or trained parameters — pinned by the golden-parity suite
// in tests/sim/scale_parity_test.cpp and the sampled-execution parity tests.
#pragma once

namespace apt {

enum class ScaleMode {
  kOff = 0,    ///< today's exact behaviour, bit-identical to before
  kScale = 1,  ///< analytic collectives + parallel clock advance enabled
};

inline const char* ToString(ScaleMode m) {
  return m == ScaleMode::kScale ? "scale" : "off";
}

/// Simulator-level options, carried by EngineOptions::sim and handed to
/// SimContext at construction.
struct SimOptions {
  ScaleMode scale_mode = ScaleMode::kOff;
};

}  // namespace apt
