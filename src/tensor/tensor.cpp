#include "tensor/tensor.h"

#include <sstream>

namespace apt {

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[" << rows_ << ", " << cols_ << "]";
  return os.str();
}

}  // namespace apt
