// Dense tensor kernels: GEMM variants, elementwise ops, activations,
// softmax cross-entropy, row gather/scatter.
//
// Every backward kernel is paired with its forward so the engine can build
// exact gradients for all four parallelization strategies.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace apt {

// ---------------------------------------------------------------------------
// GEMM. C = alpha * op(A) * op(B) + beta * C. Shapes are checked.
// ---------------------------------------------------------------------------

/// C[m,n] += A[m,k] * B[k,n]  (beta=0 overwrites).
void Matmul(const Tensor& a, const Tensor& b, Tensor& c, float alpha = 1.0f,
            float beta = 0.0f);
/// C[m,n] = A[k,m]^T * B[k,n].
void MatmulTN(const Tensor& a, const Tensor& b, Tensor& c, float alpha = 1.0f,
              float beta = 0.0f);
/// C[m,n] = A[m,k] * B[n,k]^T.
void MatmulNT(const Tensor& a, const Tensor& b, Tensor& c, float alpha = 1.0f,
              float beta = 0.0f);

// ---------------------------------------------------------------------------
// Elementwise / rows.
// ---------------------------------------------------------------------------

/// y += alpha * x (shapes must match).
void Axpy(float alpha, const Tensor& x, Tensor& y);
/// x *= alpha.
void Scale(Tensor& x, float alpha);
/// out = a + b.
void Add(const Tensor& a, const Tensor& b, Tensor& out);
/// Adds bias (1 x cols) to every row of x in place.
void AddBiasRows(Tensor& x, const Tensor& bias);
/// grad_bias (1 x cols) = column sums of grad.
void BiasGradRows(const Tensor& grad, Tensor& grad_bias);

/// ReLU forward (in place allowed via out == &x semantics using copies).
void Relu(const Tensor& x, Tensor& out);
/// grad_x = grad_y * 1[x > 0].
void ReluBackward(const Tensor& x, const Tensor& grad_y, Tensor& grad_x);

/// LeakyReLU with slope (GAT uses 0.2).
void LeakyRelu(const Tensor& x, Tensor& out, float slope);
void LeakyReluBackward(const Tensor& x, const Tensor& grad_y, Tensor& grad_x,
                       float slope);

/// Max |a - b| over all elements; shapes must match.
float MaxAbsDiff(const Tensor& a, const Tensor& b);
/// Sum of squares of all elements.
double SumSquares(const Tensor& x);

// ---------------------------------------------------------------------------
// Row gather / scatter (feature loading and shuffle packing).
// ---------------------------------------------------------------------------

/// out.row(i) = src.row(index[i]).
void GatherRows(const Tensor& src, std::span<const std::int64_t> index, Tensor& out);
/// dst.row(index[i]) += src.row(i).
void ScatterAddRows(const Tensor& src, std::span<const std::int64_t> index, Tensor& dst);
/// dst.row(index[i]) = src.row(i) (rows must be disjoint for determinism).
void ScatterRows(const Tensor& src, std::span<const std::int64_t> index, Tensor& dst);

// ---------------------------------------------------------------------------
// Loss.
// ---------------------------------------------------------------------------

/// Softmax cross-entropy over rows of logits against integer labels.
/// Returns mean loss; fills grad (same shape as logits) with d(mean loss)/d logits
/// if grad != nullptr. `count_correct` (optional) gets the argmax-accuracy count.
float SoftmaxCrossEntropy(const Tensor& logits, std::span<const std::int64_t> labels,
                          Tensor* grad, std::int64_t* count_correct = nullptr);

}  // namespace apt
