#include "tensor/init.h"

#include <cmath>

namespace apt {

void XavierUniform(Tensor& w, Rng& rng) {
  const float fan_in = static_cast<float>(w.rows());
  const float fan_out = static_cast<float>(w.cols());
  const float a = std::sqrt(6.0f / (fan_in + fan_out));
  UniformInit(w, rng, -a, a);
}

void UniformInit(Tensor& w, Rng& rng, float lo, float hi) {
  float* p = w.data();
  for (std::int64_t i = 0; i < w.numel(); ++i) p[i] = rng.NextUniform(lo, hi);
}

void GaussianInit(Tensor& w, Rng& rng, float stddev) {
  float* p = w.data();
  for (std::int64_t i = 0; i < w.numel(); ++i) p[i] = stddev * rng.NextGaussian();
}

}  // namespace apt
