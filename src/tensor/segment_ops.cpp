#include "tensor/segment_ops.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "runtime/parallel_for.h"

namespace apt {

namespace {

void CheckCsr(const CsrView& csr, const Tensor& src, const Tensor& out) {
  APT_CHECK_GE(csr.num_dst(), 0);
  APT_CHECK_EQ(out.rows(), csr.num_dst());
  APT_CHECK_EQ(out.cols(), src.cols());
  APT_CHECK_EQ(csr.indptr[static_cast<std::size_t>(csr.num_dst())], csr.num_edges());
}

// Dynamic-chunk grain for source-major gathers: roughly 4k floats of row
// traffic per cursor claim, so skewed (power-law) sources rebalance.
std::int64_t SrcGrain(std::int64_t dim) {
  return std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(1, dim));
}

// Building a scratch transpose only pays off once the scatter volume beats
// the O(E + num_src) counting sort; below this the serial loop wins.
bool WorthTransposing(const CsrView& csr, std::int64_t dim) {
  return csr.num_edges() * dim >= (1 << 14);
}

// Picks the transpose for a backward scatter: the block-cached one when the
// view carries a cache, a scratch build when the problem is large enough,
// nullptr when the serial loop is cheaper.
const CsrTranspose* BackwardTranspose(const CsrView& csr, std::int64_t num_src,
                                      std::int64_t dim, CsrTranspose& scratch) {
  if (csr.tcache != nullptr) return &csr.tcache->Get(csr, num_src);
  if (!WorthTransposing(csr, dim)) return nullptr;
  scratch = BuildCsrTranspose(csr, num_src);
  return &scratch;
}

}  // namespace

CsrTranspose BuildCsrTranspose(const CsrView& csr, std::int64_t num_src) {
  APT_CHECK_GE(num_src, 0);
  const std::int64_t num_dst = csr.num_dst();
  const std::int64_t num_edges = csr.num_edges();
  CsrTranspose t;
  t.num_src = num_src;
  t.indptr.assign(static_cast<std::size_t>(num_src) + 1, 0);
  t.dst.resize(static_cast<std::size_t>(num_edges));
  t.eid.resize(static_cast<std::size_t>(num_edges));
  for (std::int64_t e = 0; e < num_edges; ++e) {
    const std::int64_t s = csr.col[static_cast<std::size_t>(e)];
    APT_CHECK(s >= 0 && s < num_src) << "col " << s << " of " << num_src;
    ++t.indptr[static_cast<std::size_t>(s) + 1];
  }
  for (std::size_t s = 0; s < static_cast<std::size_t>(num_src); ++s) {
    t.indptr[s + 1] += t.indptr[s];
  }
  std::vector<std::int64_t> cursor(t.indptr.begin(), t.indptr.end() - 1);
  for (std::int64_t d = 0; d < num_dst; ++d) {
    for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
      const std::int64_t s = csr.col[static_cast<std::size_t>(e)];
      const std::int64_t slot = cursor[static_cast<std::size_t>(s)]++;
      t.dst[static_cast<std::size_t>(slot)] = d;
      t.eid[static_cast<std::size_t>(slot)] = e;
    }
  }
  return t;
}

const CsrTranspose& CsrTransposeCache::Get(const CsrView& csr,
                                           std::int64_t num_src) const {
  if (cached_ == nullptr || cached_->num_src != num_src ||
      static_cast<std::int64_t>(cached_->dst.size()) != csr.num_edges()) {
    cached_ = std::make_shared<const CsrTranspose>(BuildCsrTranspose(csr, num_src));
  }
  return *cached_;
}

void SpmmSum(const CsrView& csr, const Tensor& src, Tensor& out) {
  CheckCsr(csr, src, out);
  const std::int64_t dim = src.cols();
  ParallelFor(0, csr.num_dst(), [&](std::int64_t d) {
    float* orow = out.data() + d * dim;
    std::fill(orow, orow + dim, 0.0f);
    for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
      const float* srow = src.row(csr.col[static_cast<std::size_t>(e)]);
      for (std::int64_t j = 0; j < dim; ++j) orow[j] += srow[j];
    }
  }, 64);
}

void SpmmSumBackward(const CsrView& csr, const Tensor& grad_out, Tensor& grad_src) {
  APT_CHECK_EQ(grad_out.rows(), csr.num_dst());
  APT_CHECK_EQ(grad_out.cols(), grad_src.cols());
  const std::int64_t dim = grad_src.cols();
  CsrTranspose scratch;
  const CsrTranspose* t = BackwardTranspose(csr, grad_src.rows(), dim, scratch);
  if (t != nullptr) {
    // Source-major parallel gather: each lane owns disjoint source rows.
    const float* g = grad_out.data();
    float* out = grad_src.data();
    ParallelForChunksDynamic(0, t->num_src, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t s = lo; s < hi; ++s) {
        float* srow = out + s * dim;
        for (std::int64_t e = t->indptr[s]; e < t->indptr[s + 1]; ++e) {
          const float* grow = g + t->dst[static_cast<std::size_t>(e)] * dim;
          for (std::int64_t j = 0; j < dim; ++j) srow[j] += grow[j];
        }
      }
    }, SrcGrain(dim));
    return;
  }
  // Tiny problems: serial over destinations (edges may share a source row).
  for (std::int64_t d = 0; d < csr.num_dst(); ++d) {
    const float* grow = grad_out.data() + d * dim;
    for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
      float* srow = grad_src.row(csr.col[static_cast<std::size_t>(e)]);
      for (std::int64_t j = 0; j < dim; ++j) srow[j] += grow[j];
    }
  }
}

void SpmmMean(const CsrView& csr, const Tensor& src, Tensor& out) {
  CheckCsr(csr, src, out);
  const std::int64_t dim = src.cols();
  ParallelFor(0, csr.num_dst(), [&](std::int64_t d) {
    float* orow = out.data() + d * dim;
    std::fill(orow, orow + dim, 0.0f);
    const std::int64_t deg = csr.indptr[d + 1] - csr.indptr[d];
    if (deg == 0) return;
    for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
      const float* srow = src.row(csr.col[static_cast<std::size_t>(e)]);
      for (std::int64_t j = 0; j < dim; ++j) orow[j] += srow[j];
    }
    const float inv = 1.0f / static_cast<float>(deg);
    for (std::int64_t j = 0; j < dim; ++j) orow[j] *= inv;
  }, 64);
}

void SpmmMeanBackward(const CsrView& csr, const Tensor& grad_out, Tensor& grad_src) {
  APT_CHECK_EQ(grad_out.rows(), csr.num_dst());
  APT_CHECK_EQ(grad_out.cols(), grad_src.cols());
  const std::int64_t dim = grad_src.cols();
  CsrTranspose scratch;
  const CsrTranspose* t = BackwardTranspose(csr, grad_src.rows(), dim, scratch);
  if (t != nullptr) {
    std::vector<float> inv_deg(static_cast<std::size_t>(csr.num_dst()));
    for (std::int64_t d = 0; d < csr.num_dst(); ++d) {
      const std::int64_t deg = csr.indptr[d + 1] - csr.indptr[d];
      inv_deg[static_cast<std::size_t>(d)] =
          deg > 0 ? 1.0f / static_cast<float>(deg) : 0.0f;
    }
    const float* g = grad_out.data();
    float* out = grad_src.data();
    ParallelForChunksDynamic(0, t->num_src, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t s = lo; s < hi; ++s) {
        float* srow = out + s * dim;
        for (std::int64_t e = t->indptr[s]; e < t->indptr[s + 1]; ++e) {
          const std::int64_t d = t->dst[static_cast<std::size_t>(e)];
          const float inv = inv_deg[static_cast<std::size_t>(d)];
          const float* grow = g + d * dim;
          for (std::int64_t j = 0; j < dim; ++j) srow[j] += inv * grow[j];
        }
      }
    }, SrcGrain(dim));
    return;
  }
  for (std::int64_t d = 0; d < csr.num_dst(); ++d) {
    const std::int64_t deg = csr.indptr[d + 1] - csr.indptr[d];
    if (deg == 0) continue;
    const float inv = 1.0f / static_cast<float>(deg);
    const float* grow = grad_out.data() + d * dim;
    for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
      float* srow = grad_src.row(csr.col[static_cast<std::size_t>(e)]);
      for (std::int64_t j = 0; j < dim; ++j) srow[j] += inv * grow[j];
    }
  }
}

void SpmmWeightedSum(const CsrView& csr, std::span<const float> edge_w,
                     const Tensor& src, Tensor& out) {
  CheckCsr(csr, src, out);
  APT_CHECK_EQ(static_cast<std::int64_t>(edge_w.size()), csr.num_edges());
  const std::int64_t dim = src.cols();
  ParallelFor(0, csr.num_dst(), [&](std::int64_t d) {
    float* orow = out.data() + d * dim;
    std::fill(orow, orow + dim, 0.0f);
    for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
      const float w = edge_w[static_cast<std::size_t>(e)];
      const float* srow = src.row(csr.col[static_cast<std::size_t>(e)]);
      for (std::int64_t j = 0; j < dim; ++j) orow[j] += w * srow[j];
    }
  }, 64);
}

void SpmmWeightedSumBackward(const CsrView& csr, std::span<const float> edge_w,
                             const Tensor& src, const Tensor& grad_out,
                             std::span<float> grad_w, Tensor* grad_src) {
  APT_CHECK_EQ(grad_out.rows(), csr.num_dst());
  APT_CHECK_EQ(static_cast<std::int64_t>(edge_w.size()), csr.num_edges());
  const std::int64_t dim = src.cols();
  if (!grad_w.empty()) {
    APT_CHECK_EQ(static_cast<std::int64_t>(grad_w.size()), csr.num_edges());
  }
  if (grad_src != nullptr) {
    APT_CHECK_EQ(grad_src->rows(), src.rows());
  }
  CsrTranspose scratch;
  const CsrTranspose* t = BackwardTranspose(csr, src.rows(), dim, scratch);
  if (t != nullptr) {
    // Each original edge appears exactly once in the transpose, so the
    // per-edge grad_w writes are race-free alongside the per-source rows.
    const float* g = grad_out.data();
    const float* sp = src.data();
    float* gsp = grad_src != nullptr ? grad_src->data() : nullptr;
    ParallelForChunksDynamic(0, t->num_src, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t s = lo; s < hi; ++s) {
        const float* srow = sp + s * dim;
        float* gsrow = gsp != nullptr ? gsp + s * dim : nullptr;
        for (std::int64_t te = t->indptr[s]; te < t->indptr[s + 1]; ++te) {
          const std::size_t e = static_cast<std::size_t>(t->eid[static_cast<std::size_t>(te)]);
          const float* grow = g + t->dst[static_cast<std::size_t>(te)] * dim;
          if (!grad_w.empty()) {
            float acc = 0.0f;
            for (std::int64_t j = 0; j < dim; ++j) acc += grow[j] * srow[j];
            grad_w[e] += acc;
          }
          if (gsrow != nullptr) {
            const float w = edge_w[e];
            for (std::int64_t j = 0; j < dim; ++j) gsrow[j] += w * grow[j];
          }
        }
      }
    }, SrcGrain(dim));
    return;
  }
  for (std::int64_t d = 0; d < csr.num_dst(); ++d) {
    const float* grow = grad_out.data() + d * dim;
    for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
      const std::int64_t s = csr.col[static_cast<std::size_t>(e)];
      if (!grad_w.empty()) {
        const float* srow = src.row(s);
        float acc = 0.0f;
        for (std::int64_t j = 0; j < dim; ++j) acc += grow[j] * srow[j];
        grad_w[static_cast<std::size_t>(e)] += acc;
      }
      if (grad_src != nullptr) {
        const float w = edge_w[static_cast<std::size_t>(e)];
        float* gsrow = grad_src->row(s);
        for (std::int64_t j = 0; j < dim; ++j) gsrow[j] += w * grow[j];
      }
    }
  }
}

void SddmmAdd(const CsrView& csr, std::span<const float> a_src,
              std::span<const float> a_dst, std::span<float> score) {
  APT_CHECK_EQ(static_cast<std::int64_t>(score.size()), csr.num_edges());
  APT_CHECK_EQ(static_cast<std::int64_t>(a_dst.size()), csr.num_dst());
  ParallelFor(0, csr.num_dst(), [&](std::int64_t d) {
    for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
      const std::int64_t s = csr.col[static_cast<std::size_t>(e)];
      score[static_cast<std::size_t>(e)] =
          a_src[static_cast<std::size_t>(s)] + a_dst[static_cast<std::size_t>(d)];
    }
  }, 256);
}

void SddmmAddBackward(const CsrView& csr, std::span<const float> grad_score,
                      std::span<float> grad_a_src, std::span<float> grad_a_dst) {
  APT_CHECK_EQ(static_cast<std::int64_t>(grad_score.size()), csr.num_edges());
  APT_CHECK_EQ(static_cast<std::int64_t>(grad_a_dst.size()), csr.num_dst());
  if (csr.tcache != nullptr) {
    const CsrTranspose& t =
        csr.tcache->Get(csr, static_cast<std::int64_t>(grad_a_src.size()));
    ParallelForChunksDynamic(0, t.num_src, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t s = lo; s < hi; ++s) {
        float acc = 0.0f;
        for (std::int64_t e = t.indptr[s]; e < t.indptr[s + 1]; ++e) {
          acc += grad_score[static_cast<std::size_t>(t.eid[static_cast<std::size_t>(e)])];
        }
        grad_a_src[static_cast<std::size_t>(s)] += acc;
      }
    }, 512);
    ParallelForChunks(0, csr.num_dst(), [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t d = lo; d < hi; ++d) {
        float acc = 0.0f;
        for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
          acc += grad_score[static_cast<std::size_t>(e)];
        }
        grad_a_dst[static_cast<std::size_t>(d)] += acc;
      }
    }, 512);
    return;
  }
  for (std::int64_t d = 0; d < csr.num_dst(); ++d) {
    for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
      const std::int64_t s = csr.col[static_cast<std::size_t>(e)];
      grad_a_src[static_cast<std::size_t>(s)] += grad_score[static_cast<std::size_t>(e)];
      grad_a_dst[static_cast<std::size_t>(d)] += grad_score[static_cast<std::size_t>(e)];
    }
  }
}

void SegmentSoftmax(const CsrView& csr, std::span<const float> score,
                    std::span<float> out) {
  APT_CHECK_EQ(score.size(), out.size());
  APT_CHECK_EQ(static_cast<std::int64_t>(score.size()), csr.num_edges());
  ParallelFor(0, csr.num_dst(), [&](std::int64_t d) {
    const std::int64_t lo = csr.indptr[d], hi = csr.indptr[d + 1];
    if (lo == hi) return;
    float maxv = score[static_cast<std::size_t>(lo)];
    for (std::int64_t e = lo + 1; e < hi; ++e) {
      maxv = std::max(maxv, score[static_cast<std::size_t>(e)]);
    }
    double denom = 0.0;
    for (std::int64_t e = lo; e < hi; ++e) {
      denom += std::exp(static_cast<double>(score[static_cast<std::size_t>(e)] - maxv));
    }
    for (std::int64_t e = lo; e < hi; ++e) {
      out[static_cast<std::size_t>(e)] = static_cast<float>(
          std::exp(static_cast<double>(score[static_cast<std::size_t>(e)] - maxv)) / denom);
    }
  }, 256);
}

void SegmentSoftmaxBackward(const CsrView& csr, std::span<const float> out,
                            std::span<const float> grad_out,
                            std::span<float> grad_score) {
  APT_CHECK_EQ(out.size(), grad_out.size());
  APT_CHECK_EQ(out.size(), grad_score.size());
  ParallelFor(0, csr.num_dst(), [&](std::int64_t d) {
    const std::int64_t lo = csr.indptr[d], hi = csr.indptr[d + 1];
    double dot = 0.0;
    for (std::int64_t e = lo; e < hi; ++e) {
      dot += static_cast<double>(out[static_cast<std::size_t>(e)]) *
             grad_out[static_cast<std::size_t>(e)];
    }
    for (std::int64_t e = lo; e < hi; ++e) {
      const std::size_t idx = static_cast<std::size_t>(e);
      grad_score[idx] = out[idx] * (grad_out[idx] - static_cast<float>(dot));
    }
  }, 256);
}

void SegmentedSpmmMean(std::span<const CsrView> segments,
                       std::span<const std::int64_t> src_offsets,
                       std::span<const std::int64_t> dst_offsets, const Tensor& src,
                       Tensor& out) {
  APT_CHECK_EQ(src_offsets.size(), segments.size() + 1);
  APT_CHECK_EQ(dst_offsets.size(), segments.size() + 1);
  const std::int64_t dim = src.cols();
  APT_CHECK_EQ(out.cols(), dim);
  // Segments write disjoint dst row ranges, so they parallelize cleanly;
  // dynamic chunking absorbs unequal segment sizes.
  ParallelForDynamic(0, static_cast<std::int64_t>(segments.size()),
                     [&](std::int64_t si) {
    const std::size_t s = static_cast<std::size_t>(si);
    const CsrView& csr = segments[s];
    const std::int64_t src_base = src_offsets[s];
    const std::int64_t dst_base = dst_offsets[s];
    APT_CHECK_EQ(dst_offsets[s + 1] - dst_base, csr.num_dst());
    for (std::int64_t d = 0; d < csr.num_dst(); ++d) {
      float* orow = out.row(dst_base + d);
      std::fill(orow, orow + dim, 0.0f);
      const std::int64_t deg = csr.indptr[d + 1] - csr.indptr[d];
      if (deg == 0) continue;
      for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
        const float* srow = src.row(src_base + csr.col[static_cast<std::size_t>(e)]);
        for (std::int64_t j = 0; j < dim; ++j) orow[j] += srow[j];
      }
      const float inv = 1.0f / static_cast<float>(deg);
      for (std::int64_t j = 0; j < dim; ++j) orow[j] *= inv;
    }
  }, /*grain=*/1);
}

void SegmentedSpmmMeanBackward(std::span<const CsrView> segments,
                               std::span<const std::int64_t> src_offsets,
                               std::span<const std::int64_t> dst_offsets,
                               const Tensor& grad_out, Tensor& grad_src) {
  APT_CHECK_EQ(src_offsets.size(), segments.size() + 1);
  APT_CHECK_EQ(dst_offsets.size(), segments.size() + 1);
  const std::int64_t dim = grad_src.cols();
  // Each segment scatters into its own disjoint src row range [src_offsets[s],
  // src_offsets[s+1]); within a segment the scatter stays serial.
  ParallelForDynamic(0, static_cast<std::int64_t>(segments.size()),
                     [&](std::int64_t si) {
    const std::size_t s = static_cast<std::size_t>(si);
    const CsrView& csr = segments[s];
    const std::int64_t src_base = src_offsets[s];
    const std::int64_t dst_base = dst_offsets[s];
    for (std::int64_t d = 0; d < csr.num_dst(); ++d) {
      const std::int64_t deg = csr.indptr[d + 1] - csr.indptr[d];
      if (deg == 0) continue;
      const float inv = 1.0f / static_cast<float>(deg);
      const float* grow = grad_out.row(dst_base + d);
      for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
        float* srow = grad_src.row(src_base + csr.col[static_cast<std::size_t>(e)]);
        for (std::int64_t j = 0; j < dim; ++j) srow[j] += inv * grow[j];
      }
    }
  }, /*grain=*/1);
}

}  // namespace apt
