#include "tensor/segment_ops.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "runtime/parallel_for.h"

namespace apt {

namespace {

void CheckCsr(const CsrView& csr, const Tensor& src, const Tensor& out) {
  APT_CHECK_GE(csr.num_dst(), 0);
  APT_CHECK_EQ(out.rows(), csr.num_dst());
  APT_CHECK_EQ(out.cols(), src.cols());
  APT_CHECK_EQ(csr.indptr[static_cast<std::size_t>(csr.num_dst())], csr.num_edges());
}

}  // namespace

void SpmmSum(const CsrView& csr, const Tensor& src, Tensor& out) {
  CheckCsr(csr, src, out);
  const std::int64_t dim = src.cols();
  ParallelFor(0, csr.num_dst(), [&](std::int64_t d) {
    float* orow = out.data() + d * dim;
    std::fill(orow, orow + dim, 0.0f);
    for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
      const float* srow = src.row(csr.col[static_cast<std::size_t>(e)]);
      for (std::int64_t j = 0; j < dim; ++j) orow[j] += srow[j];
    }
  }, 64);
}

void SpmmSumBackward(const CsrView& csr, const Tensor& grad_out, Tensor& grad_src) {
  APT_CHECK_EQ(grad_out.rows(), csr.num_dst());
  APT_CHECK_EQ(grad_out.cols(), grad_src.cols());
  const std::int64_t dim = grad_src.cols();
  // Serial over destinations: multiple edges may share a source row.
  for (std::int64_t d = 0; d < csr.num_dst(); ++d) {
    const float* grow = grad_out.data() + d * dim;
    for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
      float* srow = grad_src.row(csr.col[static_cast<std::size_t>(e)]);
      for (std::int64_t j = 0; j < dim; ++j) srow[j] += grow[j];
    }
  }
}

void SpmmMean(const CsrView& csr, const Tensor& src, Tensor& out) {
  CheckCsr(csr, src, out);
  const std::int64_t dim = src.cols();
  ParallelFor(0, csr.num_dst(), [&](std::int64_t d) {
    float* orow = out.data() + d * dim;
    std::fill(orow, orow + dim, 0.0f);
    const std::int64_t deg = csr.indptr[d + 1] - csr.indptr[d];
    if (deg == 0) return;
    for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
      const float* srow = src.row(csr.col[static_cast<std::size_t>(e)]);
      for (std::int64_t j = 0; j < dim; ++j) orow[j] += srow[j];
    }
    const float inv = 1.0f / static_cast<float>(deg);
    for (std::int64_t j = 0; j < dim; ++j) orow[j] *= inv;
  }, 64);
}

void SpmmMeanBackward(const CsrView& csr, const Tensor& grad_out, Tensor& grad_src) {
  APT_CHECK_EQ(grad_out.rows(), csr.num_dst());
  APT_CHECK_EQ(grad_out.cols(), grad_src.cols());
  const std::int64_t dim = grad_src.cols();
  for (std::int64_t d = 0; d < csr.num_dst(); ++d) {
    const std::int64_t deg = csr.indptr[d + 1] - csr.indptr[d];
    if (deg == 0) continue;
    const float inv = 1.0f / static_cast<float>(deg);
    const float* grow = grad_out.data() + d * dim;
    for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
      float* srow = grad_src.row(csr.col[static_cast<std::size_t>(e)]);
      for (std::int64_t j = 0; j < dim; ++j) srow[j] += inv * grow[j];
    }
  }
}

void SpmmWeightedSum(const CsrView& csr, std::span<const float> edge_w,
                     const Tensor& src, Tensor& out) {
  CheckCsr(csr, src, out);
  APT_CHECK_EQ(static_cast<std::int64_t>(edge_w.size()), csr.num_edges());
  const std::int64_t dim = src.cols();
  ParallelFor(0, csr.num_dst(), [&](std::int64_t d) {
    float* orow = out.data() + d * dim;
    std::fill(orow, orow + dim, 0.0f);
    for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
      const float w = edge_w[static_cast<std::size_t>(e)];
      const float* srow = src.row(csr.col[static_cast<std::size_t>(e)]);
      for (std::int64_t j = 0; j < dim; ++j) orow[j] += w * srow[j];
    }
  }, 64);
}

void SpmmWeightedSumBackward(const CsrView& csr, std::span<const float> edge_w,
                             const Tensor& src, const Tensor& grad_out,
                             std::span<float> grad_w, Tensor* grad_src) {
  APT_CHECK_EQ(grad_out.rows(), csr.num_dst());
  APT_CHECK_EQ(static_cast<std::int64_t>(edge_w.size()), csr.num_edges());
  const std::int64_t dim = src.cols();
  if (!grad_w.empty()) {
    APT_CHECK_EQ(static_cast<std::int64_t>(grad_w.size()), csr.num_edges());
  }
  for (std::int64_t d = 0; d < csr.num_dst(); ++d) {
    const float* grow = grad_out.data() + d * dim;
    for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
      const std::int64_t s = csr.col[static_cast<std::size_t>(e)];
      if (!grad_w.empty()) {
        const float* srow = src.row(s);
        float acc = 0.0f;
        for (std::int64_t j = 0; j < dim; ++j) acc += grow[j] * srow[j];
        grad_w[static_cast<std::size_t>(e)] += acc;
      }
      if (grad_src != nullptr) {
        const float w = edge_w[static_cast<std::size_t>(e)];
        float* gsrow = grad_src->row(s);
        for (std::int64_t j = 0; j < dim; ++j) gsrow[j] += w * grow[j];
      }
    }
  }
}

void SddmmAdd(const CsrView& csr, std::span<const float> a_src,
              std::span<const float> a_dst, std::span<float> score) {
  APT_CHECK_EQ(static_cast<std::int64_t>(score.size()), csr.num_edges());
  APT_CHECK_EQ(static_cast<std::int64_t>(a_dst.size()), csr.num_dst());
  ParallelFor(0, csr.num_dst(), [&](std::int64_t d) {
    for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
      const std::int64_t s = csr.col[static_cast<std::size_t>(e)];
      score[static_cast<std::size_t>(e)] =
          a_src[static_cast<std::size_t>(s)] + a_dst[static_cast<std::size_t>(d)];
    }
  }, 256);
}

void SddmmAddBackward(const CsrView& csr, std::span<const float> grad_score,
                      std::span<float> grad_a_src, std::span<float> grad_a_dst) {
  APT_CHECK_EQ(static_cast<std::int64_t>(grad_score.size()), csr.num_edges());
  APT_CHECK_EQ(static_cast<std::int64_t>(grad_a_dst.size()), csr.num_dst());
  for (std::int64_t d = 0; d < csr.num_dst(); ++d) {
    for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
      const std::int64_t s = csr.col[static_cast<std::size_t>(e)];
      grad_a_src[static_cast<std::size_t>(s)] += grad_score[static_cast<std::size_t>(e)];
      grad_a_dst[static_cast<std::size_t>(d)] += grad_score[static_cast<std::size_t>(e)];
    }
  }
}

void SegmentSoftmax(const CsrView& csr, std::span<const float> score,
                    std::span<float> out) {
  APT_CHECK_EQ(score.size(), out.size());
  APT_CHECK_EQ(static_cast<std::int64_t>(score.size()), csr.num_edges());
  ParallelFor(0, csr.num_dst(), [&](std::int64_t d) {
    const std::int64_t lo = csr.indptr[d], hi = csr.indptr[d + 1];
    if (lo == hi) return;
    float maxv = score[static_cast<std::size_t>(lo)];
    for (std::int64_t e = lo + 1; e < hi; ++e) {
      maxv = std::max(maxv, score[static_cast<std::size_t>(e)]);
    }
    double denom = 0.0;
    for (std::int64_t e = lo; e < hi; ++e) {
      denom += std::exp(static_cast<double>(score[static_cast<std::size_t>(e)] - maxv));
    }
    for (std::int64_t e = lo; e < hi; ++e) {
      out[static_cast<std::size_t>(e)] = static_cast<float>(
          std::exp(static_cast<double>(score[static_cast<std::size_t>(e)] - maxv)) / denom);
    }
  }, 256);
}

void SegmentSoftmaxBackward(const CsrView& csr, std::span<const float> out,
                            std::span<const float> grad_out,
                            std::span<float> grad_score) {
  APT_CHECK_EQ(out.size(), grad_out.size());
  APT_CHECK_EQ(out.size(), grad_score.size());
  ParallelFor(0, csr.num_dst(), [&](std::int64_t d) {
    const std::int64_t lo = csr.indptr[d], hi = csr.indptr[d + 1];
    double dot = 0.0;
    for (std::int64_t e = lo; e < hi; ++e) {
      dot += static_cast<double>(out[static_cast<std::size_t>(e)]) *
             grad_out[static_cast<std::size_t>(e)];
    }
    for (std::int64_t e = lo; e < hi; ++e) {
      const std::size_t idx = static_cast<std::size_t>(e);
      grad_score[idx] = out[idx] * (grad_out[idx] - static_cast<float>(dot));
    }
  }, 256);
}

void SegmentedSpmmMean(std::span<const CsrView> segments,
                       std::span<const std::int64_t> src_offsets,
                       std::span<const std::int64_t> dst_offsets, const Tensor& src,
                       Tensor& out) {
  APT_CHECK_EQ(src_offsets.size(), segments.size() + 1);
  APT_CHECK_EQ(dst_offsets.size(), segments.size() + 1);
  const std::int64_t dim = src.cols();
  APT_CHECK_EQ(out.cols(), dim);
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const CsrView& csr = segments[s];
    const std::int64_t src_base = src_offsets[s];
    const std::int64_t dst_base = dst_offsets[s];
    APT_CHECK_EQ(dst_offsets[s + 1] - dst_base, csr.num_dst());
    for (std::int64_t d = 0; d < csr.num_dst(); ++d) {
      float* orow = out.row(dst_base + d);
      std::fill(orow, orow + dim, 0.0f);
      const std::int64_t deg = csr.indptr[d + 1] - csr.indptr[d];
      if (deg == 0) continue;
      for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
        const float* srow = src.row(src_base + csr.col[static_cast<std::size_t>(e)]);
        for (std::int64_t j = 0; j < dim; ++j) orow[j] += srow[j];
      }
      const float inv = 1.0f / static_cast<float>(deg);
      for (std::int64_t j = 0; j < dim; ++j) orow[j] *= inv;
    }
  }
}

void SegmentedSpmmMeanBackward(std::span<const CsrView> segments,
                               std::span<const std::int64_t> src_offsets,
                               std::span<const std::int64_t> dst_offsets,
                               const Tensor& grad_out, Tensor& grad_src) {
  APT_CHECK_EQ(src_offsets.size(), segments.size() + 1);
  APT_CHECK_EQ(dst_offsets.size(), segments.size() + 1);
  const std::int64_t dim = grad_src.cols();
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const CsrView& csr = segments[s];
    const std::int64_t src_base = src_offsets[s];
    const std::int64_t dst_base = dst_offsets[s];
    for (std::int64_t d = 0; d < csr.num_dst(); ++d) {
      const std::int64_t deg = csr.indptr[d + 1] - csr.indptr[d];
      if (deg == 0) continue;
      const float inv = 1.0f / static_cast<float>(deg);
      const float* grow = grad_out.row(dst_base + d);
      for (std::int64_t e = csr.indptr[d]; e < csr.indptr[d + 1]; ++e) {
        float* srow = grad_src.row(src_base + csr.col[static_cast<std::size_t>(e)]);
        for (std::int64_t j = 0; j < dim; ++j) srow[j] += inv * grow[j];
      }
    }
  }
}

}  // namespace apt
