// Sparse kernels over bipartite CSR structures (the DGL SpMM / SDDMM
// equivalents the unified engine executes on each simulated GPU).
//
// A bipartite layer has `num_dst` destination rows; `indptr` (size
// num_dst + 1) delimits each destination's incoming edges and `col[e]`
// names the *local* source row of edge e. Features are dense Tensors.
//
// The Segmented* variants run the same kernel over a batch of independent
// bipartite graphs laid out back to back — the paper's SegmentedSpMM /
// SegmentedSDDMM used by NFP, which broadcasts every GPU's layer-1
// computation graph and executes them jointly.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace apt {

struct CsrView;

/// Transposed (source-major) copy of a bipartite CSR: edges grouped by
/// *source* row instead of destination. `dst[t]` is the destination of
/// transposed edge t and `eid[t]` its index in the original edge order, so
/// per-edge payloads (weights, scores) stay addressable. Within one source,
/// edges keep ascending destination order — the same accumulation order the
/// serial destination-major backward produced, so results are bit-identical.
struct CsrTranspose {
  std::int64_t num_src = 0;
  std::vector<std::int64_t> indptr;  ///< size num_src + 1
  std::vector<std::int64_t> dst;     ///< destination row per transposed edge
  std::vector<std::int64_t> eid;     ///< original edge id per transposed edge
};

/// Counting-sort transpose of `csr`; `num_src` must exceed every col entry.
CsrTranspose BuildCsrTranspose(const CsrView& csr, std::int64_t num_src);

/// Lazily-built, memoized transpose. A Block owns one of these so the
/// backward pass transposes each sampled CSR at most once per structure and
/// reuses it every epoch. Get() must not race with itself for the same cache
/// (in practice it runs on the single orchestrating thread of a training
/// step, before any parallel region starts); the returned reference lives as
/// long as the cache does. Copies share the built transpose — do not mutate
/// the underlying CSR after the first Get().
class CsrTransposeCache {
 public:
  const CsrTranspose& Get(const CsrView& csr, std::int64_t num_src) const;

 private:
  mutable std::shared_ptr<const CsrTranspose> cached_;
};

/// View of one bipartite adjacency (no ownership).
struct CsrView {
  std::span<const std::int64_t> indptr;  ///< size num_dst + 1
  std::span<const std::int64_t> col;     ///< size num_edges, local src ids
  /// Optional transpose cache (Block::csr() fills this in). Backward kernels
  /// use it to run scatter-style gradients as parallel source-major gathers.
  const CsrTransposeCache* tcache = nullptr;
  std::int64_t num_dst() const { return static_cast<std::int64_t>(indptr.size()) - 1; }
  std::int64_t num_edges() const { return static_cast<std::int64_t>(col.size()); }
};

// ---------------------------------------------------------------------------
// SpMM with sum / mean reduction.
// ---------------------------------------------------------------------------

/// out.row(d) = sum_{e in d} src.row(col[e]); out must be num_dst x d.
void SpmmSum(const CsrView& csr, const Tensor& src, Tensor& out);
/// grad_src.row(col[e]) += grad_out.row(d) for each edge (accumulates).
void SpmmSumBackward(const CsrView& csr, const Tensor& grad_out, Tensor& grad_src);

/// out.row(d) = mean over d's edges (empty rows produce zeros).
void SpmmMean(const CsrView& csr, const Tensor& src, Tensor& out);
/// grad_src.row(col[e]) += grad_out.row(d) / deg(d) (accumulates).
void SpmmMeanBackward(const CsrView& csr, const Tensor& grad_out, Tensor& grad_src);

// ---------------------------------------------------------------------------
// Edge-weighted SpMM (GAT aggregation after softmax).
// ---------------------------------------------------------------------------

/// out.row(d) = sum_{e in d} w[e] * src.row(col[e]). w has one value per edge.
void SpmmWeightedSum(const CsrView& csr, std::span<const float> edge_w,
                     const Tensor& src, Tensor& out);
/// Gradients of the weighted sum w.r.t. both edge weights and src features.
/// grad_w[e] += <grad_out.row(d), src.row(col[e])>;
/// grad_src.row(col[e]) += w[e] * grad_out.row(d). Either output may be null.
void SpmmWeightedSumBackward(const CsrView& csr, std::span<const float> edge_w,
                             const Tensor& src, const Tensor& grad_out,
                             std::span<float> grad_w, Tensor* grad_src);

// ---------------------------------------------------------------------------
// SDDMM: per-edge scores from node vectors (GAT attention logits).
// ---------------------------------------------------------------------------

/// score[e] = a_src[col[e]] + a_dst[d] — the additive GAT logit form, where
/// a_src / a_dst are per-node scalars (one column per head handled by caller).
void SddmmAdd(const CsrView& csr, std::span<const float> a_src,
              std::span<const float> a_dst, std::span<float> score);
/// Backward: grad_a_src[col[e]] += grad_score[e]; grad_a_dst[d] += grad_score[e].
void SddmmAddBackward(const CsrView& csr, std::span<const float> grad_score,
                      std::span<float> grad_a_src, std::span<float> grad_a_dst);

// ---------------------------------------------------------------------------
// Segment softmax over each destination's incoming edges.
// ---------------------------------------------------------------------------

/// out[e] = softmax over edges of the same destination (max-stabilized).
void SegmentSoftmax(const CsrView& csr, std::span<const float> score,
                    std::span<float> out);
/// grad_score[e] = out[e] * (grad_out[e] - sum_d(out .* grad_out)).
void SegmentSoftmaxBackward(const CsrView& csr, std::span<const float> out,
                            std::span<const float> grad_out,
                            std::span<float> grad_score);

// ---------------------------------------------------------------------------
// Segmented batch variants (NFP joint execution).
// ---------------------------------------------------------------------------

/// Runs SpmmMean over `segments` independent graphs; segment s reads rows
/// [src_offsets[s], src_offsets[s+1]) of src and writes rows
/// [dst_offsets[s], dst_offsets[s+1]) of out. Each CsrView's col indices are
/// local to its own segment.
void SegmentedSpmmMean(std::span<const CsrView> segments,
                       std::span<const std::int64_t> src_offsets,
                       std::span<const std::int64_t> dst_offsets, const Tensor& src,
                       Tensor& out);
void SegmentedSpmmMeanBackward(std::span<const CsrView> segments,
                               std::span<const std::int64_t> src_offsets,
                               std::span<const std::int64_t> dst_offsets,
                               const Tensor& grad_out, Tensor& grad_src);

}  // namespace apt
