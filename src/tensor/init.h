// Parameter initializers (deterministic given an Rng).
#pragma once

#include "core/random.h"
#include "tensor/tensor.h"

namespace apt {

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
void XavierUniform(Tensor& w, Rng& rng);

/// Uniform in [lo, hi).
void UniformInit(Tensor& w, Rng& rng, float lo, float hi);

/// i.i.d. N(0, stddev^2).
void GaussianInit(Tensor& w, Rng& rng, float stddev);

}  // namespace apt
