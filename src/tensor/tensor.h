// A minimal dense 2-D float32 tensor.
//
// This is the numeric substrate standing in for the GPU tensors that DGL /
// PyTorch provide in the original APT implementation. Row-major, owning,
// value-semantic. Kernels live in ops.h / segment_ops.h.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/error.h"

namespace apt {

class Tensor {
 public:
  Tensor() : rows_(0), cols_(0) {}

  /// Zero-initialized rows x cols tensor.
  Tensor(std::int64_t rows, std::int64_t cols)
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols), 0.0f) {
    APT_CHECK_GE(rows, 0);
    APT_CHECK_GE(cols, 0);
  }

  Tensor(std::int64_t rows, std::int64_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    APT_CHECK_EQ(static_cast<std::int64_t>(data_.size()), rows * cols);
  }

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t numel() const { return rows_ * cols_; }
  bool empty() const { return numel() == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Pointer to the beginning of row r.
  float* row(std::int64_t r) {
    APT_CHECK(r >= 0 && r < rows_) << "row " << r << " of " << rows_;
    return data_.data() + r * cols_;
  }
  const float* row(std::int64_t r) const {
    APT_CHECK(r >= 0 && r < rows_) << "row " << r << " of " << rows_;
    return data_.data() + r * cols_;
  }
  std::span<float> row_span(std::int64_t r) { return {row(r), static_cast<std::size_t>(cols_)}; }
  std::span<const float> row_span(std::int64_t r) const {
    return {row(r), static_cast<std::size_t>(cols_)};
  }

  float& at(std::int64_t r, std::int64_t c) {
    APT_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_)
        << "(" << r << "," << c << ") of (" << rows_ << "," << cols_ << ")";
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  float at(std::int64_t r, std::int64_t c) const {
    APT_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_)
        << "(" << r << "," << c << ") of (" << rows_ << "," << cols_ << ")";
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  /// Unchecked element access for hot kernels.
  float& operator()(std::int64_t r, std::int64_t c) {
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  float operator()(std::int64_t r, std::int64_t c) const {
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void Zero() { Fill(0.0f); }

  bool SameShape(const Tensor& o) const { return rows_ == o.rows_ && cols_ == o.cols_; }

  std::string ShapeString() const;

  /// Total payload size in bytes (what the simulator charges for transfers).
  std::int64_t bytes() const { return numel() * static_cast<std::int64_t>(sizeof(float)); }

 private:
  std::int64_t rows_;
  std::int64_t cols_;
  std::vector<float> data_;
};

}  // namespace apt
