#include "tensor/codec.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"
#include "runtime/parallel_for.h"

namespace apt {

namespace {

// Grain for row-parallel kernels: keep serial below ~16k elements.
std::int64_t RowGrain(std::int64_t cols) {
  return std::max<std::int64_t>(1, 16384 / std::max<std::int64_t>(1, cols));
}

// Runtime ISA dispatch, same recipe as the GEMM drivers (ops.cpp): baseline
// binary, ifunc-resolved AVX2 / AVX-512 clones, disabled under sanitizers
// because ifunc resolvers run before the sanitizer runtime is up.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define APT_CODEC_CLONES \
  __attribute__((target_clones("default", "avx2", "arch=x86-64-v4"), flatten))
#else
#define APT_CODEC_CLONES
#endif

inline std::uint32_t FloatBits(float v) {
  std::uint32_t u;
  __builtin_memcpy(&u, &v, sizeof(u));
  return u;
}

inline float BitsFloat(std::uint32_t u) {
  float v;
  __builtin_memcpy(&v, &u, sizeof(v));
  return v;
}

inline float Bf16RoundScalar(float v) {
  std::uint32_t u = FloatBits(v);
  if ((u & 0x7f800000u) == 0x7f800000u) return v;  // Inf/NaN pass through
  const std::uint32_t lsb = (u >> 16) & 1u;
  u += 0x7fffu + lsb;  // round to nearest, ties to even
  u &= 0xffff0000u;
  return BitsFloat(u);
}

APT_CODEC_CLONES void Bf16RoundRange(float* p, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) p[i] = Bf16RoundScalar(p[i]);
}

// Per-row symmetric int8: scale = maxabs/127, q = clamp(rint(v/scale)),
// v' = q*scale. The maxabs reduction is register-blocked into kLanes
// independent accumulators (max is associative, so the blocked order equals
// the serial order bit-for-bit), and the quantize loop is a straight-line
// elementwise pass the clones vectorize.
constexpr std::int64_t kLanes = 8;

APT_CODEC_CLONES void Int8RoundRowRange(float* base, std::int64_t cols,
                                        std::int64_t lo, std::int64_t hi) {
  for (std::int64_t r = lo; r < hi; ++r) {
    float* row = base + r * cols;
    float acc[kLanes] = {};
    std::int64_t j = 0;
    for (; j + kLanes <= cols; j += kLanes) {
      for (std::int64_t l = 0; l < kLanes; ++l) {
        acc[l] = std::max(acc[l], std::fabs(row[j + l]));
      }
    }
    float maxabs = 0.0f;
    for (std::int64_t l = 0; l < kLanes; ++l) maxabs = std::max(maxabs, acc[l]);
    for (; j < cols; ++j) maxabs = std::max(maxabs, std::fabs(row[j]));
    if (maxabs == 0.0f || !std::isfinite(maxabs)) continue;
    const float scale = maxabs / 127.0f;
    const float inv = 127.0f / maxabs;
    for (std::int64_t k = 0; k < cols; ++k) {
      float q = __builtin_rintf(row[k] * inv);
      q = std::min(127.0f, std::max(-127.0f, q));
      row[k] = q * scale;
    }
  }
}

std::int64_t CountNonzero(const Tensor& t) {
  const float* p = t.data();
  std::int64_t nnz = 0;
  for (std::int64_t i = 0; i < t.numel(); ++i) nnz += (p[i] != 0.0f) ? 1 : 0;
  return nnz;
}

}  // namespace

const char* ToString(Codec codec) {
  switch (codec) {
    case Codec::kIdentity: return "identity";
    case Codec::kBf16: return "bf16";
    case Codec::kInt8: return "int8";
    case Codec::kDeltaBitmask: return "delta";
  }
  return "unknown";
}

bool ParseCodec(std::string_view name, Codec* out) {
  if (name == "identity" || name == "fp32") *out = Codec::kIdentity;
  else if (name == "bf16") *out = Codec::kBf16;
  else if (name == "int8") *out = Codec::kInt8;
  else if (name == "delta" || name == "delta_bitmask") *out = Codec::kDeltaBitmask;
  else return false;
  return true;
}

std::int64_t CodecWireBytes(Codec codec, std::int64_t rows, std::int64_t cols) {
  const std::int64_t numel = rows * cols;
  switch (codec) {
    case Codec::kIdentity:
      return numel * 4;
    case Codec::kBf16:
      return numel * 2;
    case Codec::kInt8:
      return numel + rows * 4;  // 1 byte/elem + fp32 scale per row
    case Codec::kDeltaBitmask:
      // Content unknown: dense worst case (bitmap + every value).
      return numel * 4 + (numel + 7) / 8;
  }
  return numel * 4;
}

std::int64_t CodecWireBytes(Codec codec, const Tensor& t) {
  if (codec == Codec::kDeltaBitmask) {
    // Bitmap of occupied slots + packed nonzero values + a count header.
    return CountNonzero(t) * 4 + (t.numel() + 7) / 8 + 8;
  }
  return CodecWireBytes(codec, t.rows(), t.cols());
}

double CodecDenseRatio(Codec codec, std::int64_t cols) {
  if (cols <= 0) return 1.0;
  return static_cast<double>(CodecWireBytes(codec, 1, cols)) /
         static_cast<double>(cols * 4);
}

void CodecRoundRows(Codec codec, Tensor& t) {
  switch (codec) {
    case Codec::kIdentity:
    case Codec::kDeltaBitmask:
      return;  // lossless
    case Codec::kBf16: {
      float* p = t.data();
      const std::int64_t cols = std::max<std::int64_t>(1, t.cols());
      ParallelForChunks(
          0, t.numel(),
          [p](std::int64_t lo, std::int64_t hi) {
            Bf16RoundRange(p + lo, hi - lo);
          },
          RowGrain(1) * cols);
      return;
    }
    case Codec::kInt8: {
      // Scales span whole rows, so the parallel split is over rows only.
      float* p = t.data();
      const std::int64_t cols = t.cols();
      ParallelForChunks(
          0, t.rows(),
          [p, cols](std::int64_t lo, std::int64_t hi) {
            Int8RoundRowRange(p, cols, lo, hi);
          },
          RowGrain(cols));
      return;
    }
  }
}

double CodecXcodeSeconds(Codec codec, std::int64_t logical_bytes,
                         double bytes_per_s) {
  if (codec == Codec::kIdentity || logical_bytes <= 0 || bytes_per_s <= 0.0) {
    return 0.0;
  }
  // One streaming pass over the fp32 payload per encode (or decode).
  return static_cast<double>(logical_bytes) / bytes_per_s;
}

float Bf16Round(float v) { return Bf16RoundScalar(v); }

double Pow2Ceil(double x) {
  x = std::fabs(x);
  if (x == 0.0 || !std::isfinite(x)) return 1.0;
  int e = 0;
  const double m = std::frexp(x, &e);  // x = m * 2^e with m in [0.5, 1)
  return m == 0.5 ? x : std::ldexp(1.0, e);
}

}  // namespace apt
