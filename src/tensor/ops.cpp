#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "runtime/parallel_for.h"

namespace apt {

namespace {

// Grain for row-parallel kernels: keep serial below ~16k elements.
std::int64_t RowGrain(std::int64_t cols) {
  return std::max<std::int64_t>(1, 16384 / std::max<std::int64_t>(1, cols));
}

// ---------------------------------------------------------------------------
// Blocked GEMM. A register-tiled microkernel updates a kMr x kNr tile of C
// over one k-panel: the accumulators live in registers for the whole panel,
// so the inner loop issues one B load and kMr fused multiply-adds per
// element with no C traffic. Accumulation order over p is identical to the
// naive row kernel, keeping results deterministic without -ffast-math.
// ---------------------------------------------------------------------------

constexpr std::int64_t kMr = 4;  // C tile rows held in registers
constexpr std::int64_t kNr = 8;  // C tile cols: one SSE pair / one AVX lane
// k-panel length: the kMr x kKc A panel (~4 KB) and kKc x kNr B tile (~8 KB)
// stay L1-resident while a C tile is updated.
constexpr std::int64_t kKc = 256;

// kNr-wide float vector. GCC/Clang lower the element-wise ops to the widest
// ISA the target allows (one AVX register, or a pair of SSE registers on the
// x86-64 baseline) — written explicitly because the autovectorizer turns the
// equivalent scalar tile into a slow shuffle-heavy SLP form.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"  // VecNr never crosses a real ABI
                                          // boundary: every user is inlined.
typedef float VecNr __attribute__((vector_size(kNr * sizeof(float))));

// Runtime ISA dispatch for the GEMM drivers: the binary stays baseline
// x86-64, but ifunc resolution picks an AVX2+FMA or AVX-512 clone when the
// host has one. `flatten` pulls the microkernel into each clone so the
// vector code is lowered with the clone's ISA. Disabled under sanitizers:
// ifunc resolvers run during relocation, before the sanitizer runtime is
// initialized, and crash at startup.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define APT_GEMM_CLONES \
  __attribute__((target_clones("default", "avx2", "arch=x86-64-v4"), flatten))
#else
#define APT_GEMM_CLONES
#endif

inline VecNr LoadVec(const float* p) {
  VecNr v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreVec(float* p, VecNr v) { __builtin_memcpy(p, &v, sizeof(v)); }

// C[0:kMr, 0:kNr] += alpha * A-tile * B[0:kc, 0:kNr]. kTransA selects the A
// element layout: a(r, p) = a[r * lda + p] for row-major A (C = A B), or
// a[p * lda + r] when `a` points into a [k, m] matrix (C = A^T B). The
// accumulator tile lives in vector registers for the whole k-panel, so the
// inner loop issues one B load and kMr multiply-adds per vector with no C
// traffic. Per-element accumulation order over p matches the naive row
// kernel: element-wise vector ops never re-associate, so no -ffast-math.
template <bool kTransA>
inline void GemmMicroKernel(const float* a, std::int64_t lda, const float* b,
                            std::int64_t ldb, float* c, std::int64_t ldc,
                            std::int64_t kc, float alpha) {
  VecNr acc0 = {}, acc1 = {}, acc2 = {}, acc3 = {};
  static_assert(kMr == 4, "accumulator rows are hand-unrolled");
  for (std::int64_t p = 0; p < kc; ++p) {
    const VecNr bv = LoadVec(b + p * ldb);
    const float* ap = kTransA ? a + p * lda : a + p;
    const std::int64_t step = kTransA ? 1 : lda;
    acc0 += ap[0 * step] * bv;
    acc1 += ap[1 * step] * bv;
    acc2 += ap[2 * step] * bv;
    acc3 += ap[3 * step] * bv;
  }
  StoreVec(c + 0 * ldc, LoadVec(c + 0 * ldc) + alpha * acc0);
  StoreVec(c + 1 * ldc, LoadVec(c + 1 * ldc) + alpha * acc1);
  StoreVec(c + 2 * ldc, LoadVec(c + 2 * ldc) + alpha * acc2);
  StoreVec(c + 3 * ldc, LoadVec(c + 3 * ldc) + alpha * acc3);
}

// Scalar edge-tile update for the ragged rim (mr < kMr and/or nr < kNr).
template <bool kTransA>
inline void GemmEdgeTile(const float* a, std::int64_t lda, const float* b,
                         std::int64_t ldb, float* c, std::int64_t ldc,
                         std::int64_t kc, std::int64_t mr, std::int64_t nr,
                         float alpha) {
  float acc[kMr][kNr] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* brow = b + p * ldb;
    for (std::int64_t r = 0; r < mr; ++r) {
      const float av = kTransA ? a[p * lda + r] : a[r * lda + p];
      for (std::int64_t j = 0; j < nr; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (std::int64_t r = 0; r < mr; ++r) {
    float* crow = c + r * ldc;
    for (std::int64_t j = 0; j < nr; ++j) crow[j] += alpha * acc[r][j];
  }
}

// Applies beta and runs the tiled update for C rows [lo, hi). `k` is the
// contraction length; lda is k for row-major A and m (C rows) for A^T.
template <bool kTransA>
inline void GemmRowBlockImpl(const float* a, std::int64_t lda, const float* b,
                             std::int64_t n, float* c, std::int64_t k,
                             std::int64_t lo, std::int64_t hi, float alpha,
                             float beta) {
  for (std::int64_t i = lo; i < hi; ++i) {
    float* crow = c + i * n;
    if (beta == 0.0f) {
      std::fill(crow, crow + n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  for (std::int64_t p0 = 0; p0 < k; p0 += kKc) {
    const std::int64_t kc = std::min(kKc, k - p0);
    for (std::int64_t i = lo; i < hi; i += kMr) {
      const std::int64_t mr = std::min(kMr, hi - i);
      const float* atile = kTransA ? a + p0 * lda + i : a + i * lda + p0;
      std::int64_t j = 0;
      if (mr == kMr) {
        for (; j + kNr <= n; j += kNr) {
          GemmMicroKernel<kTransA>(atile, lda, b + p0 * n + j, n,
                                   c + i * n + j, n, kc, alpha);
        }
      }
      for (; j < n; j += kNr) {
        GemmEdgeTile<kTransA>(atile, lda, b + p0 * n + j, n, c + i * n + j, n,
                              kc, mr, std::min(kNr, n - j), alpha);
      }
    }
  }
}

APT_GEMM_CLONES
void GemmRowBlockNN(const float* a, const float* b, std::int64_t n, float* c,
                    std::int64_t k, std::int64_t lo, std::int64_t hi,
                    float alpha, float beta) {
  GemmRowBlockImpl<false>(a, k, b, n, c, k, lo, hi, alpha, beta);
}

APT_GEMM_CLONES
void GemmRowBlockTN(const float* a, std::int64_t m, const float* b,
                    std::int64_t n, float* c, std::int64_t k, std::int64_t lo,
                    std::int64_t hi, float alpha, float beta) {
  GemmRowBlockImpl<true>(a, m, b, n, c, k, lo, hi, alpha, beta);
}

// Row block of C = A B^T: rows of C are dot products along the contiguous k
// axis of both operands. kNr partial-sum lanes make the reduction
// vectorizable without -ffast-math reassociation; kJb B rows share each A
// load.
APT_GEMM_CLONES
void GemmRowBlockNT(const float* ap, const float* bp, float* cp,
                    std::int64_t k, std::int64_t n, std::int64_t lo,
                    std::int64_t hi, float alpha, float beta) {
  constexpr std::int64_t kLanes = kNr;
  constexpr std::int64_t kJb = 4;
  for (std::int64_t i = lo; i < hi; ++i) {
    const float* arow = ap + i * k;
    float* crow = cp + i * n;
    for (std::int64_t j0 = 0; j0 < n; j0 += kJb) {
      const std::int64_t jb = std::min(kJb, n - j0);
      VecNr lanes[kJb] = {};
      std::int64_t p = 0;
      for (; p + kLanes <= k; p += kLanes) {
        const VecNr av = LoadVec(arow + p);
        for (std::int64_t r = 0; r < jb; ++r) {
          lanes[r] += av * LoadVec(bp + (j0 + r) * k + p);
        }
      }
      for (std::int64_t r = 0; r < jb; ++r) {
        const float* brow = bp + (j0 + r) * k;
        float acc = 0.0f;
        for (std::int64_t l = 0; l < kLanes; ++l) acc += lanes[r][l];
        for (std::int64_t pt = p; pt < k; ++pt) acc += arow[pt] * brow[pt];
        const std::int64_t j = j0 + r;
        crow[j] = alpha * acc + (beta == 0.0f ? 0.0f : beta * crow[j]);
      }
    }
  }
}

#pragma GCC diagnostic pop

}  // namespace

void Matmul(const Tensor& a, const Tensor& b, Tensor& c, float alpha, float beta) {
  const std::int64_t m = a.rows(), k = a.cols(), n = b.cols();
  APT_CHECK_EQ(b.rows(), k);
  APT_CHECK_EQ(c.rows(), m);
  APT_CHECK_EQ(c.cols(), n);
  if (m == 0 || n == 0) return;
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  ParallelForChunks(0, m, [&](std::int64_t lo, std::int64_t hi) {
    GemmRowBlockNN(ap, bp, n, cp, k, lo, hi, alpha, beta);
  }, RowGrain(k + n));
}

void MatmulTN(const Tensor& a, const Tensor& b, Tensor& c, float alpha, float beta) {
  // A is [k, m]; C = A^T B is [m, n].
  const std::int64_t k = a.rows(), m = a.cols(), n = b.cols();
  APT_CHECK_EQ(b.rows(), k);
  APT_CHECK_EQ(c.rows(), m);
  APT_CHECK_EQ(c.cols(), n);
  if (m == 0 || n == 0) return;
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  ParallelForChunks(0, m, [&](std::int64_t lo, std::int64_t hi) {
    GemmRowBlockTN(ap, m, bp, n, cp, k, lo, hi, alpha, beta);
  }, RowGrain(k + n));
}

void MatmulNT(const Tensor& a, const Tensor& b, Tensor& c, float alpha, float beta) {
  // B is [n, k]; C = A B^T is [m, n].
  const std::int64_t m = a.rows(), k = a.cols(), n = b.rows();
  APT_CHECK_EQ(b.cols(), k);
  APT_CHECK_EQ(c.rows(), m);
  APT_CHECK_EQ(c.cols(), n);
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  ParallelForChunks(0, m, [&](std::int64_t lo, std::int64_t hi) {
    GemmRowBlockNT(ap, bp, cp, k, n, lo, hi, alpha, beta);
  }, RowGrain(k + n));
}

void Axpy(float alpha, const Tensor& x, Tensor& y) {
  APT_CHECK(x.SameShape(y)) << x.ShapeString() << " vs " << y.ShapeString();
  const float* xp = x.data();
  float* yp = y.data();
  const std::int64_t n = x.numel();
  ParallelFor(0, n, [&](std::int64_t i) { yp[i] += alpha * xp[i]; }, 1 << 15);
}

void Scale(Tensor& x, float alpha) {
  float* xp = x.data();
  const std::int64_t n = x.numel();
  ParallelFor(0, n, [&](std::int64_t i) { xp[i] *= alpha; }, 1 << 15);
}

void Add(const Tensor& a, const Tensor& b, Tensor& out) {
  APT_CHECK(a.SameShape(b));
  APT_CHECK(a.SameShape(out));
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out.data();
  ParallelFor(0, a.numel(), [&](std::int64_t i) { op[i] = ap[i] + bp[i]; }, 1 << 15);
}

void AddBiasRows(Tensor& x, const Tensor& bias) {
  APT_CHECK_EQ(bias.rows(), 1);
  APT_CHECK_EQ(bias.cols(), x.cols());
  const std::int64_t n = x.cols();
  const float* bp = bias.data();
  ParallelFor(0, x.rows(), [&](std::int64_t i) {
    float* xrow = x.data() + i * n;
    for (std::int64_t j = 0; j < n; ++j) xrow[j] += bp[j];
  }, RowGrain(n));
}

void BiasGradRows(const Tensor& grad, Tensor& grad_bias) {
  APT_CHECK_EQ(grad_bias.rows(), 1);
  APT_CHECK_EQ(grad_bias.cols(), grad.cols());
  grad_bias.Zero();
  float* gb = grad_bias.data();
  const std::int64_t n = grad.cols();
  for (std::int64_t i = 0; i < grad.rows(); ++i) {
    const float* grow = grad.data() + i * n;
    for (std::int64_t j = 0; j < n; ++j) gb[j] += grow[j];
  }
}

void Relu(const Tensor& x, Tensor& out) {
  APT_CHECK(x.SameShape(out));
  const float* xp = x.data();
  float* op = out.data();
  ParallelFor(0, x.numel(), [&](std::int64_t i) { op[i] = xp[i] > 0.0f ? xp[i] : 0.0f; },
              1 << 15);
}

void ReluBackward(const Tensor& x, const Tensor& grad_y, Tensor& grad_x) {
  APT_CHECK(x.SameShape(grad_y));
  APT_CHECK(x.SameShape(grad_x));
  const float* xp = x.data();
  const float* gy = grad_y.data();
  float* gx = grad_x.data();
  ParallelFor(0, x.numel(), [&](std::int64_t i) { gx[i] = xp[i] > 0.0f ? gy[i] : 0.0f; },
              1 << 15);
}

void LeakyRelu(const Tensor& x, Tensor& out, float slope) {
  APT_CHECK(x.SameShape(out));
  const float* xp = x.data();
  float* op = out.data();
  ParallelFor(0, x.numel(),
              [&](std::int64_t i) { op[i] = xp[i] > 0.0f ? xp[i] : slope * xp[i]; }, 1 << 15);
}

void LeakyReluBackward(const Tensor& x, const Tensor& grad_y, Tensor& grad_x,
                       float slope) {
  APT_CHECK(x.SameShape(grad_y));
  APT_CHECK(x.SameShape(grad_x));
  const float* xp = x.data();
  const float* gy = grad_y.data();
  float* gx = grad_x.data();
  ParallelFor(0, x.numel(),
              [&](std::int64_t i) { gx[i] = xp[i] > 0.0f ? gy[i] : slope * gy[i]; }, 1 << 15);
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  APT_CHECK(a.SameShape(b)) << a.ShapeString() << " vs " << b.ShapeString();
  float m = 0.0f;
  const float* ap = a.data();
  const float* bp = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::fabs(ap[i] - bp[i]));
  }
  return m;
}

double SumSquares(const Tensor& x) {
  double s = 0.0;
  const float* xp = x.data();
  for (std::int64_t i = 0; i < x.numel(); ++i) s += static_cast<double>(xp[i]) * xp[i];
  return s;
}

void GatherRows(const Tensor& src, std::span<const std::int64_t> index, Tensor& out) {
  APT_CHECK_EQ(out.rows(), static_cast<std::int64_t>(index.size()));
  APT_CHECK_EQ(out.cols(), src.cols());
  const std::int64_t n = src.cols();
  ParallelFor(0, out.rows(), [&](std::int64_t i) {
    const std::int64_t r = index[static_cast<std::size_t>(i)];
    APT_CHECK(r >= 0 && r < src.rows()) << "gather index " << r << " of " << src.rows();
    std::copy_n(src.data() + r * n, n, out.data() + i * n);
  }, RowGrain(n));
}

void ScatterAddRows(const Tensor& src, std::span<const std::int64_t> index, Tensor& dst) {
  APT_CHECK_EQ(src.rows(), static_cast<std::int64_t>(index.size()));
  APT_CHECK_EQ(src.cols(), dst.cols());
  const std::int64_t n = src.cols();
  // Serial: indices may repeat, so a parallel version would race.
  for (std::int64_t i = 0; i < src.rows(); ++i) {
    const std::int64_t r = index[static_cast<std::size_t>(i)];
    APT_CHECK(r >= 0 && r < dst.rows()) << "scatter index " << r << " of " << dst.rows();
    const float* srow = src.data() + i * n;
    float* drow = dst.data() + r * n;
    for (std::int64_t j = 0; j < n; ++j) drow[j] += srow[j];
  }
}

void ScatterRows(const Tensor& src, std::span<const std::int64_t> index, Tensor& dst) {
  APT_CHECK_EQ(src.rows(), static_cast<std::int64_t>(index.size()));
  APT_CHECK_EQ(src.cols(), dst.cols());
  const std::int64_t n = src.cols();
  ParallelFor(0, src.rows(), [&](std::int64_t i) {
    const std::int64_t r = index[static_cast<std::size_t>(i)];
    APT_CHECK(r >= 0 && r < dst.rows()) << "scatter index " << r << " of " << dst.rows();
    std::copy_n(src.data() + i * n, n, dst.data() + r * n);
  }, RowGrain(n));
}

float SoftmaxCrossEntropy(const Tensor& logits, std::span<const std::int64_t> labels,
                          Tensor* grad, std::int64_t* count_correct) {
  const std::int64_t m = logits.rows(), n = logits.cols();
  APT_CHECK_EQ(static_cast<std::int64_t>(labels.size()), m);
  if (grad != nullptr) {
    APT_CHECK(grad->SameShape(logits));
  }
  double total_loss = 0.0;
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = logits.data() + i * n;
    const std::int64_t label = labels[static_cast<std::size_t>(i)];
    APT_CHECK(label >= 0 && label < n) << "label " << label << " for " << n << " classes";
    float maxv = row[0];
    std::int64_t argmax = 0;
    for (std::int64_t j = 1; j < n; ++j) {
      if (row[j] > maxv) {
        maxv = row[j];
        argmax = j;
      }
    }
    if (argmax == label) ++correct;
    double denom = 0.0;
    for (std::int64_t j = 0; j < n; ++j) denom += std::exp(static_cast<double>(row[j] - maxv));
    const double log_denom = std::log(denom);
    total_loss += log_denom - static_cast<double>(row[label] - maxv);
    if (grad != nullptr) {
      float* grow = grad->data() + i * n;
      const float inv_m = 1.0f / static_cast<float>(m);
      for (std::int64_t j = 0; j < n; ++j) {
        const double p = std::exp(static_cast<double>(row[j] - maxv)) / denom;
        grow[j] = inv_m * static_cast<float>(p - (j == label ? 1.0 : 0.0));
      }
    }
  }
  if (count_correct != nullptr) *count_correct = correct;
  return m > 0 ? static_cast<float>(total_loss / m) : 0.0f;
}

}  // namespace apt
