#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "runtime/parallel_for.h"

namespace apt {

namespace {

// Grain for row-parallel kernels: keep serial below ~16k elements.
std::int64_t RowGrain(std::int64_t cols) {
  return std::max<std::int64_t>(1, 16384 / std::max<std::int64_t>(1, cols));
}

}  // namespace

void Matmul(const Tensor& a, const Tensor& b, Tensor& c, float alpha, float beta) {
  const std::int64_t m = a.rows(), k = a.cols(), n = b.cols();
  APT_CHECK_EQ(b.rows(), k);
  APT_CHECK_EQ(c.rows(), m);
  APT_CHECK_EQ(c.cols(), n);
  ParallelFor(0, m, [&](std::int64_t i) {
    float* crow = c.data() + i * n;
    if (beta == 0.0f) {
      std::fill(crow, crow + n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    const float* arow = a.data() + i * k;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = alpha * arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.data() + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }, RowGrain(k + n));
}

void MatmulTN(const Tensor& a, const Tensor& b, Tensor& c, float alpha, float beta) {
  // A is [k, m]; C = A^T B is [m, n].
  const std::int64_t k = a.rows(), m = a.cols(), n = b.cols();
  APT_CHECK_EQ(b.rows(), k);
  APT_CHECK_EQ(c.rows(), m);
  APT_CHECK_EQ(c.cols(), n);
  ParallelFor(0, m, [&](std::int64_t i) {
    float* crow = c.data() + i * n;
    if (beta == 0.0f) {
      std::fill(crow, crow + n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = alpha * a(p, i);
      if (av == 0.0f) continue;
      const float* brow = b.data() + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }, RowGrain(k + n));
}

void MatmulNT(const Tensor& a, const Tensor& b, Tensor& c, float alpha, float beta) {
  // B is [n, k]; C = A B^T is [m, n].
  const std::int64_t m = a.rows(), k = a.cols(), n = b.rows();
  APT_CHECK_EQ(b.cols(), k);
  APT_CHECK_EQ(c.rows(), m);
  APT_CHECK_EQ(c.cols(), n);
  ParallelFor(0, m, [&](std::int64_t i) {
    const float* arow = a.data() + i * k;
    float* crow = c.data() + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b.data() + j * k;
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = alpha * acc + (beta == 0.0f ? 0.0f : beta * crow[j]);
    }
  }, RowGrain(k + n));
}

void Axpy(float alpha, const Tensor& x, Tensor& y) {
  APT_CHECK(x.SameShape(y)) << x.ShapeString() << " vs " << y.ShapeString();
  const float* xp = x.data();
  float* yp = y.data();
  const std::int64_t n = x.numel();
  ParallelFor(0, n, [&](std::int64_t i) { yp[i] += alpha * xp[i]; }, 1 << 15);
}

void Scale(Tensor& x, float alpha) {
  float* xp = x.data();
  const std::int64_t n = x.numel();
  ParallelFor(0, n, [&](std::int64_t i) { xp[i] *= alpha; }, 1 << 15);
}

void Add(const Tensor& a, const Tensor& b, Tensor& out) {
  APT_CHECK(a.SameShape(b));
  APT_CHECK(a.SameShape(out));
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out.data();
  ParallelFor(0, a.numel(), [&](std::int64_t i) { op[i] = ap[i] + bp[i]; }, 1 << 15);
}

void AddBiasRows(Tensor& x, const Tensor& bias) {
  APT_CHECK_EQ(bias.rows(), 1);
  APT_CHECK_EQ(bias.cols(), x.cols());
  const std::int64_t n = x.cols();
  const float* bp = bias.data();
  ParallelFor(0, x.rows(), [&](std::int64_t i) {
    float* xrow = x.data() + i * n;
    for (std::int64_t j = 0; j < n; ++j) xrow[j] += bp[j];
  }, RowGrain(n));
}

void BiasGradRows(const Tensor& grad, Tensor& grad_bias) {
  APT_CHECK_EQ(grad_bias.rows(), 1);
  APT_CHECK_EQ(grad_bias.cols(), grad.cols());
  grad_bias.Zero();
  float* gb = grad_bias.data();
  const std::int64_t n = grad.cols();
  for (std::int64_t i = 0; i < grad.rows(); ++i) {
    const float* grow = grad.data() + i * n;
    for (std::int64_t j = 0; j < n; ++j) gb[j] += grow[j];
  }
}

void Relu(const Tensor& x, Tensor& out) {
  APT_CHECK(x.SameShape(out));
  const float* xp = x.data();
  float* op = out.data();
  ParallelFor(0, x.numel(), [&](std::int64_t i) { op[i] = xp[i] > 0.0f ? xp[i] : 0.0f; },
              1 << 15);
}

void ReluBackward(const Tensor& x, const Tensor& grad_y, Tensor& grad_x) {
  APT_CHECK(x.SameShape(grad_y));
  APT_CHECK(x.SameShape(grad_x));
  const float* xp = x.data();
  const float* gy = grad_y.data();
  float* gx = grad_x.data();
  ParallelFor(0, x.numel(), [&](std::int64_t i) { gx[i] = xp[i] > 0.0f ? gy[i] : 0.0f; },
              1 << 15);
}

void LeakyRelu(const Tensor& x, Tensor& out, float slope) {
  APT_CHECK(x.SameShape(out));
  const float* xp = x.data();
  float* op = out.data();
  ParallelFor(0, x.numel(),
              [&](std::int64_t i) { op[i] = xp[i] > 0.0f ? xp[i] : slope * xp[i]; }, 1 << 15);
}

void LeakyReluBackward(const Tensor& x, const Tensor& grad_y, Tensor& grad_x,
                       float slope) {
  APT_CHECK(x.SameShape(grad_y));
  APT_CHECK(x.SameShape(grad_x));
  const float* xp = x.data();
  const float* gy = grad_y.data();
  float* gx = grad_x.data();
  ParallelFor(0, x.numel(),
              [&](std::int64_t i) { gx[i] = xp[i] > 0.0f ? gy[i] : slope * gy[i]; }, 1 << 15);
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  APT_CHECK(a.SameShape(b)) << a.ShapeString() << " vs " << b.ShapeString();
  float m = 0.0f;
  const float* ap = a.data();
  const float* bp = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::fabs(ap[i] - bp[i]));
  }
  return m;
}

double SumSquares(const Tensor& x) {
  double s = 0.0;
  const float* xp = x.data();
  for (std::int64_t i = 0; i < x.numel(); ++i) s += static_cast<double>(xp[i]) * xp[i];
  return s;
}

void GatherRows(const Tensor& src, std::span<const std::int64_t> index, Tensor& out) {
  APT_CHECK_EQ(out.rows(), static_cast<std::int64_t>(index.size()));
  APT_CHECK_EQ(out.cols(), src.cols());
  const std::int64_t n = src.cols();
  ParallelFor(0, out.rows(), [&](std::int64_t i) {
    const std::int64_t r = index[static_cast<std::size_t>(i)];
    APT_CHECK(r >= 0 && r < src.rows()) << "gather index " << r << " of " << src.rows();
    std::copy_n(src.data() + r * n, n, out.data() + i * n);
  }, RowGrain(n));
}

void ScatterAddRows(const Tensor& src, std::span<const std::int64_t> index, Tensor& dst) {
  APT_CHECK_EQ(src.rows(), static_cast<std::int64_t>(index.size()));
  APT_CHECK_EQ(src.cols(), dst.cols());
  const std::int64_t n = src.cols();
  // Serial: indices may repeat, so a parallel version would race.
  for (std::int64_t i = 0; i < src.rows(); ++i) {
    const std::int64_t r = index[static_cast<std::size_t>(i)];
    APT_CHECK(r >= 0 && r < dst.rows()) << "scatter index " << r << " of " << dst.rows();
    const float* srow = src.data() + i * n;
    float* drow = dst.data() + r * n;
    for (std::int64_t j = 0; j < n; ++j) drow[j] += srow[j];
  }
}

void ScatterRows(const Tensor& src, std::span<const std::int64_t> index, Tensor& dst) {
  APT_CHECK_EQ(src.rows(), static_cast<std::int64_t>(index.size()));
  APT_CHECK_EQ(src.cols(), dst.cols());
  const std::int64_t n = src.cols();
  ParallelFor(0, src.rows(), [&](std::int64_t i) {
    const std::int64_t r = index[static_cast<std::size_t>(i)];
    APT_CHECK(r >= 0 && r < dst.rows()) << "scatter index " << r << " of " << dst.rows();
    std::copy_n(src.data() + i * n, n, dst.data() + r * n);
  }, RowGrain(n));
}

float SoftmaxCrossEntropy(const Tensor& logits, std::span<const std::int64_t> labels,
                          Tensor* grad, std::int64_t* count_correct) {
  const std::int64_t m = logits.rows(), n = logits.cols();
  APT_CHECK_EQ(static_cast<std::int64_t>(labels.size()), m);
  if (grad != nullptr) {
    APT_CHECK(grad->SameShape(logits));
  }
  double total_loss = 0.0;
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = logits.data() + i * n;
    const std::int64_t label = labels[static_cast<std::size_t>(i)];
    APT_CHECK(label >= 0 && label < n) << "label " << label << " for " << n << " classes";
    float maxv = row[0];
    std::int64_t argmax = 0;
    for (std::int64_t j = 1; j < n; ++j) {
      if (row[j] > maxv) {
        maxv = row[j];
        argmax = j;
      }
    }
    if (argmax == label) ++correct;
    double denom = 0.0;
    for (std::int64_t j = 0; j < n; ++j) denom += std::exp(static_cast<double>(row[j] - maxv));
    const double log_denom = std::log(denom);
    total_loss += log_denom - static_cast<double>(row[label] - maxv);
    if (grad != nullptr) {
      float* grow = grad->data() + i * n;
      const float inv_m = 1.0f / static_cast<float>(m);
      for (std::int64_t j = 0; j < n; ++j) {
        const double p = std::exp(static_cast<double>(row[j] - maxv)) / denom;
        grow[j] = inv_m * static_cast<float>(p - (j == label ? 1.0 : 0.0));
      }
    }
  }
  if (count_correct != nullptr) *count_correct = correct;
  return m > 0 ? static_cast<float>(total_loss / m) : 0.0f;
}

}  // namespace apt
