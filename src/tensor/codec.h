// Feature/gradient compression codecs: identity, bf16, int8 per-row
// symmetric quantization, and a lossless delta+bitmask form for sparse
// gradients.
//
// A codec plays two roles in the simulator:
//  - VALUE effect: CodecRoundRows applies the encode+decode round trip in
//    place ("round to the codec grid"). Lossy codecs change values; identity
//    and delta+bitmask are lossless no-ops.
//  - BYTE effect: CodecWireBytes says how many bytes the payload occupies on
//    the wire / in a cache tier, which is what transfer-time and
//    fault-injection accounting charge.
//
// Determinism contract: CodecRoundRows on identical row data yields
// bit-identical results regardless of caller, thread count, or call site —
// rounding is elementwise (bf16) or per-row with a fixed reduction order
// (int8), never dependent on how rows are batched. The strategy-equivalence
// suites rely on this.
#pragma once

#include <cstdint>
#include <string_view>

#include "tensor/tensor.h"

namespace apt {

enum class Codec : std::uint8_t {
  kIdentity = 0,      ///< fp32 on the wire; values untouched.
  kBf16 = 1,          ///< round-to-nearest-even bfloat16; 2 bytes/elem.
  kInt8 = 2,          ///< per-row symmetric int8 + one fp32 scale per row.
  kDeltaBitmask = 3,  ///< lossless sparse: bitmap + packed nonzeros.
};

inline constexpr int kNumCodecs = 4;

const char* ToString(Codec codec);

/// Parses "identity" / "bf16" / "int8" / "delta". Returns false on mismatch.
bool ParseCodec(std::string_view name, Codec* out);

/// Wire bytes for a dense `rows x cols` fp32 payload. For kDeltaBitmask,
/// which depends on content, this is the dense worst case (all nonzero);
/// use the Tensor overload when the data is at hand.
std::int64_t CodecWireBytes(Codec codec, std::int64_t rows, std::int64_t cols);

/// Wire bytes for this specific tensor (kDeltaBitmask counts nonzeros).
std::int64_t CodecWireBytes(Codec codec, const Tensor& t);

/// wire/logical byte ratio for dense payloads of width `cols`.
double CodecDenseRatio(Codec codec, std::int64_t cols);

/// Applies the encode+decode value round trip in place. No-op for lossless
/// codecs. Parallel over rows; per-element results are independent of the
/// parallel split.
void CodecRoundRows(Codec codec, Tensor& t);

/// Seconds of encode (or decode — symmetric one-pass model) compute for
/// `logical_bytes` of fp32 payload at `bytes_per_s`. 0 for identity: no
/// kernel runs at all.
double CodecXcodeSeconds(Codec codec, std::int64_t logical_bytes,
                         double bytes_per_s);

/// True when the codec changes values (bf16/int8).
inline bool CodecIsLossy(Codec codec) {
  return codec == Codec::kBf16 || codec == Codec::kInt8;
}

/// Round-to-nearest-even bfloat16 round trip of one float (Inf/NaN pass
/// through). Exposed for tests and the canonical-grid math.
float Bf16Round(float v);

/// Smallest power of two >= |x|, or 1.0 for x == 0 / non-finite x. Grids
/// built from power-of-two magnitudes make every partial sum an exact
/// multiple of the grid step, so double accumulation of grid-rounded terms
/// is order- and grouping-invariant (see DESIGN.md invariant 8).
double Pow2Ceil(double x);

}  // namespace apt
