// Fundamental identifier and size types shared across the APT library.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace apt {

/// Global node identifier in the data graph.
using NodeId = std::int64_t;
/// Edge identifier (index into CSR adjacency arrays).
using EdgeId = std::int64_t;
/// Logical GPU worker identifier, dense in [0, num_devices).
using DeviceId = std::int32_t;
/// Machine identifier, dense in [0, num_machines).
using MachineId = std::int32_t;
/// Graph-partition identifier (one partition per device for SNP/DNP).
using PartId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr DeviceId kInvalidDevice = -1;

/// The four parallelization strategies surveyed / proposed by the paper.
enum class Strategy : std::uint8_t {
  kGDP = 0,  ///< Graph data parallel: each GPU owns whole mini-batches.
  kNFP = 1,  ///< Node feature parallel: features split by dimension.
  kSNP = 2,  ///< Source node parallel: layer-1 split by source node.
  kDNP = 3,  ///< Destination node parallel: layer-1 split by dst node.
};

inline constexpr int kNumStrategies = 4;

/// All strategies, in the order the paper enumerates them.
inline constexpr Strategy kAllStrategies[kNumStrategies] = {
    Strategy::kGDP, Strategy::kNFP, Strategy::kSNP, Strategy::kDNP};

const char* ToString(Strategy s);
/// Parses "gdp"/"GDP"/... ; throws apt::Error on unknown names.
Strategy StrategyFromString(const std::string& name);

}  // namespace apt
