// Error type and checking macros (fail fast, rich messages).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace apt {

/// Exception thrown on any APT_CHECK failure or invalid-argument error.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Base class of every error raised by an *injected* hardware fault
/// (apt::sim fault plans). Recovery layers catch this type: anything else
/// escaping a step is a programming error and must propagate.
class FaultError : public Error {
 public:
  explicit FaultError(const std::string& what) : Error(what) {}
};

/// A collective operation failed mid-flight (the simulated analogue of an
/// NCCL communicator abort). The collective's SimContext barrier is left
/// POISONED; recovery must ClearBarrierPoison() before retrying.
class CollectiveError : public FaultError {
 public:
  explicit CollectiveError(const std::string& what) : FaultError(what) {}
};

/// A device tried to enter a barrier that a failed peer already poisoned.
/// Every waiter observes the same typed error instead of silently
/// synchronizing to inconsistent clocks (or hanging, on real hardware).
class BarrierPoisonedError : public FaultError {
 public:
  explicit BarrierPoisonedError(const std::string& what) : FaultError(what) {}
};

namespace internal {

/// Stream-style message builder used by the APT_CHECK macros; throws on
/// destruction-by-operator (the macro calls Fail()).
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr) {
    stream_ << file << ":" << line << " CHECK failed: " << expr << " ";
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  [[noreturn]] void Fail() const { throw Error(stream_.str()); }

 private:
  std::ostringstream stream_;
};

struct CheckFailTrigger {
  [[noreturn]] void operator&(CheckFailStream& s) { s.Fail(); }
  [[noreturn]] void operator&(CheckFailStream&& s) { s.Fail(); }
};

}  // namespace internal
}  // namespace apt

/// Always-on invariant check: APT_CHECK(cond) << "context " << value;
#define APT_CHECK(cond)                                       \
  if (cond) {                                                 \
  } else                                                      \
    ::apt::internal::CheckFailTrigger{} &                     \
        ::apt::internal::CheckFailStream(__FILE__, __LINE__, #cond)

#define APT_CHECK_EQ(a, b) APT_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define APT_CHECK_NE(a, b) APT_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define APT_CHECK_LT(a, b) APT_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define APT_CHECK_LE(a, b) APT_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define APT_CHECK_GT(a, b) APT_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define APT_CHECK_GE(a, b) APT_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
