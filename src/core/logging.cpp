#include "core/logging.h"

#include <atomic>

namespace apt {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }
void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace internal {

LogLine::~LogLine() {
  if (static_cast<int>(level_) < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << stream_.str() << "\n";
}

}  // namespace internal
}  // namespace apt
