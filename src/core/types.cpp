#include "core/types.h"

#include <algorithm>

#include "core/error.h"

namespace apt {

const char* ToString(Strategy s) {
  switch (s) {
    case Strategy::kGDP:
      return "GDP";
    case Strategy::kNFP:
      return "NFP";
    case Strategy::kSNP:
      return "SNP";
    case Strategy::kDNP:
      return "DNP";
  }
  return "?";
}

Strategy StrategyFromString(const std::string& name) {
  std::string up = name;
  std::transform(up.begin(), up.end(), up.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  if (up == "GDP") return Strategy::kGDP;
  if (up == "NFP") return Strategy::kNFP;
  if (up == "SNP") return Strategy::kSNP;
  if (up == "DNP") return Strategy::kDNP;
  throw Error("unknown strategy name: " + name);
}

}  // namespace apt
