// Deterministic, splittable random number generation.
//
// All stochastic components (graph generation, sampling, weight init) draw
// from Rng streams derived from explicit seeds, so every experiment in the
// repository is bit-reproducible across runs and thread counts.
#pragma once

#include <cstdint>
#include <vector>

namespace apt {

/// splitmix64: tiny, fast, well-distributed 64-bit generator. Used both as
/// a PRNG and as the mixing function to derive independent substreams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). n must be > 0.
  std::uint64_t NextBelow(std::uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform float in [lo, hi).
  float NextUniform(float lo, float hi) {
    return lo + static_cast<float>(NextDouble()) * (hi - lo);
  }

  /// Standard normal via Box–Muller (one value per call; simple > fast here).
  float NextGaussian();

  /// A deterministic substream: independent generator derived from this
  /// seed and the given stream id (e.g. one per thread / device / epoch).
  Rng Fork(std::uint64_t stream) const {
    Rng mixer(state_ ^ (0xd1b54a32d192ed03ULL * (stream + 1)));
    return Rng(mixer.Next());
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = NextBelow(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_;
};

}  // namespace apt
