#include "core/random.h"

#include <cmath>

namespace apt {

float Rng::NextGaussian() {
  // Box–Muller; draw until u1 is non-zero to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return static_cast<float>(r * std::cos(2.0 * M_PI * u2));
}

}  // namespace apt
