// Wall-clock timing helpers (used for host-side measurements such as the
// dry-run overhead; *simulated* time lives in sim/clock.h).
#pragma once

#include <chrono>

namespace apt {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  /// Elapsed seconds since construction / last Reset.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace apt
