// Minimal leveled logger. Thread-safe line-at-a-time output to stderr.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace apt {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogLine {
 public:
  LogLine(LogLevel level, const char* tag) : level_(level) {
    stream_ << "[" << tag << "] ";
  }
  ~LogLine();
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace apt

#define APT_LOG_DEBUG ::apt::internal::LogLine(::apt::LogLevel::kDebug, "DEBUG")
#define APT_LOG_INFO ::apt::internal::LogLine(::apt::LogLevel::kInfo, "INFO")
#define APT_LOG_WARN ::apt::internal::LogLine(::apt::LogLevel::kWarn, "WARN")
#define APT_LOG_ERROR ::apt::internal::LogLine(::apt::LogLevel::kError, "ERROR")
