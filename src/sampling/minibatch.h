// Mini-batch seed scheduling.
//
// An epoch enumerates all training seeds once, shuffled by an epoch-indexed
// Rng so every strategy sees the *same* seed order for the same epoch —
// the property the paper's semantic-equivalence claim (Fig 6) rests on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/random.h"
#include "core/types.h"

namespace apt {

/// Partition-local seed queues (DistDGL-style): each device iterates the
/// training seeds of ITS OWN graph partition, shuffled per epoch, consuming
/// `batch_size` per step — so per-step work is balanced even when partition
/// sizes differ. Returns one shuffled queue per device.
std::vector<std::vector<NodeId>> PerDeviceEpochQueues(
    std::span<const NodeId> seeds, std::span<const PartId> partition,
    std::int32_t num_devices, std::int64_t epoch, std::uint64_t seed = 1234);

/// Steps needed to drain the longest of `queues` at batch_size per step.
std::int64_t QueueStepsPerEpoch(std::span<const std::vector<NodeId>> queues,
                                std::int64_t batch_size);

/// The slice of queue `q` consumed at `step` (may be empty near the end).
std::span<const NodeId> QueueStepSlice(const std::vector<NodeId>& q,
                                       std::int64_t step, std::int64_t batch_size);

class MinibatchPlan {
 public:
  /// batch_size is *per device*, matching the paper's "mini-batch size of
  /// 1024 for each GPU": one global step consumes batch_size * num_devices
  /// seeds.
  MinibatchPlan(std::vector<NodeId> seeds, std::int64_t batch_size_per_device,
                std::int32_t num_devices, std::uint64_t seed = 1234);

  /// Seeds for this epoch, shuffled deterministically by epoch index.
  std::vector<NodeId> EpochSeeds(std::int64_t epoch) const;

  /// Number of global steps per epoch (ceil division).
  std::int64_t StepsPerEpoch() const;

  /// Seeds consumed by step `step` of an epoch (a slice of EpochSeeds).
  /// Returned as a vector because the shuffled order is epoch-local.
  std::vector<NodeId> StepSeeds(std::span<const NodeId> epoch_seeds,
                                std::int64_t step) const;

  std::int64_t batch_size_per_device() const { return batch_size_; }
  std::int32_t num_devices() const { return num_devices_; }
  std::int64_t num_seeds() const { return static_cast<std::int64_t>(seeds_.size()); }

 private:
  std::vector<NodeId> seeds_;
  std::int64_t batch_size_;
  std::int32_t num_devices_;
  std::uint64_t seed_;
};

}  // namespace apt
