// Node access-frequency collection during dry-run (paper §3.2).
//
// The planner samples one epoch without computing and counts how often each
// node's input feature would be read; the counts drive both the cache
// configuration rules and the Table 3 skew report.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.h"
#include "sampling/block.h"

namespace apt {

class FrequencyCollector {
 public:
  explicit FrequencyCollector(NodeId num_nodes)
      : counts_(static_cast<std::size_t>(num_nodes), 0) {}

  /// Counts every input-feature access of the batch: one count per sampled
  /// layer-1 EDGE endpoint plus one per destination's own (self) read. This
  /// is the multiset "how many times a node appears in the sampled
  /// subgraphs" statistic of the paper's Table 3 — per-block deduplication
  /// is deliberately not applied, because at the paper's graph scale
  /// distinct destinations rarely share sources, whereas on scaled-down
  /// graphs dedup would flatten the counts and hide the skew.
  void Record(const SampledBatch& batch) {
    const Block& b0 = batch.blocks.front();
    for (std::int64_t e = 0; e < b0.num_edges(); ++e) {
      ++counts_[static_cast<std::size_t>(
          b0.src_nodes[static_cast<std::size_t>(b0.col[static_cast<std::size_t>(e)])])];
    }
    for (std::int64_t i = 0; i < b0.num_dst; ++i) {
      ++counts_[static_cast<std::size_t>(b0.src_nodes[static_cast<std::size_t>(i)])];
    }
  }

  /// Counts an explicit node list (used when a strategy reads a different
  /// input set, e.g. DNP's per-owner gathered sources).
  void RecordNodes(std::span<const NodeId> nodes) {
    for (NodeId v : nodes) ++counts_[static_cast<std::size_t>(v)];
  }

  std::span<const std::int64_t> counts() const { return counts_; }

  /// Node ids sorted by descending count (ties by ascending id).
  std::vector<NodeId> NodesByHotness() const;

  std::int64_t TotalAccesses() const;

 private:
  std::vector<std::int64_t> counts_;
};

}  // namespace apt
