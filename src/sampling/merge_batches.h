// Order-preserving merge of independently sampled block stacks.
//
// The serving engine samples each request's k-hop subgraph with the
// request's own RNG stream, then coalesces a micro-batch of requests into
// ONE block stack so the gather and forward pass amortize across them. The
// merge must not change any request's arithmetic: batch-invariance (a
// request served in a batch of 32 produces bit-identical logits to the same
// request served alone) is the serving twin of DESIGN.md's strategy-
// equivalence invariant, and it only holds if the merge preserves
//
//   (a) each destination row's edge list and edge ORDER (aggregation order
//       per row is the accumulation order), and
//   (b) the cross-layer alignment blocks[k].src_nodes == blocks[k+1]'s
//       dst rows, index for index, so every layer's input rows line up.
//
// Naive per-layer concatenation breaks (b): request 1's extras would land
// between request 0's dst prefix and its extras. Instead the merge walks
// layers seed-side first, threading an explicit (request, local-index)
// order for each layer's dst rows, and lays out each merged layer as
// [interleaved dst prefix | request 0's extras | request 1's extras | ...],
// remapping edge endpoints through per-request index maps. Duplicate nodes
// across requests are deliberately NOT deduplicated — sharing a row would
// tie a request's arithmetic to its batch-mates.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sampling/block.h"

namespace apt {

/// One merged micro-batch plus the bookkeeping to split results back out.
struct MergedBatch {
  SampledBatch batch;
  /// Row ranges of each input batch's seeds in the merged logits:
  /// part r's logits are rows [seed_offsets[r], seed_offsets[r] +
  /// seed_counts[r]).
  std::vector<std::int64_t> seed_offsets;
  std::vector<std::int64_t> seed_counts;
};

/// Merges block stacks with identical layer counts. Seeds concatenate in
/// part order; every part's per-row computation is preserved bit-exactly.
MergedBatch MergeSampledBatches(std::span<const SampledBatch* const> parts);

}  // namespace apt
