#include "sampling/frequency.h"

#include <algorithm>
#include <numeric>

namespace apt {

std::vector<NodeId> FrequencyCollector::NodesByHotness() const {
  std::vector<NodeId> order(counts_.size());
  std::iota(order.begin(), order.end(), NodeId{0});
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return counts_[static_cast<std::size_t>(a)] > counts_[static_cast<std::size_t>(b)];
  });
  return order;
}

std::int64_t FrequencyCollector::TotalAccesses() const {
  return std::accumulate(counts_.begin(), counts_.end(), std::int64_t{0});
}

}  // namespace apt
