// Node-wise neighbor sampling with a per-layer fanout vector (paper §2).
//
// Layer k of sampling draws up to fanout[k] distinct neighbors for each
// frontier node; the resulting Block stack is consumed innermost-first by
// the execution engine. Deterministic given the Rng.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/random.h"
#include "graph/csr_graph.h"
#include "sampling/block.h"

namespace apt {

class NeighborSampler {
 public:
  /// fanouts[0] applies to the layer nearest the seeds. A fanout of
  /// [10, 5] samples 10 neighbors of each seed, then 5 of each of those.
  NeighborSampler(const CsrGraph& graph, std::vector<int> fanouts);

  /// Samples the block stack for one mini-batch of seeds.
  /// blocks[0] in the result is the *first layer of computation*
  /// (i.e. produced by the LAST sampling hop, per the paper's terminology).
  SampledBatch Sample(std::span<const NodeId> seeds, Rng& rng) const;

  int num_layers() const { return static_cast<int>(fanouts_.size()); }
  const std::vector<int>& fanouts() const { return fanouts_; }

 private:
  /// Samples one bipartite layer for the given destination frontier.
  Block SampleLayer(std::span<const NodeId> dst, int fanout, Rng& rng) const;

  const CsrGraph& graph_;
  std::vector<int> fanouts_;
};

}  // namespace apt
