#include "sampling/merge_batches.h"

#include "core/logging.h"

namespace apt {

namespace {

/// One merged dst row: part `part`'s local index `local` in that layer.
struct RowRef {
  std::int32_t part = 0;
  std::int64_t local = 0;
};

}  // namespace

MergedBatch MergeSampledBatches(std::span<const SampledBatch* const> parts) {
  APT_CHECK(!parts.empty());
  const std::size_t num_layers = parts[0]->blocks.size();
  APT_CHECK_GT(num_layers, 0u);
  for (const SampledBatch* p : parts) {
    APT_CHECK_EQ(p->blocks.size(), num_layers);
  }

  MergedBatch out;
  out.batch.blocks.resize(num_layers);
  out.seed_offsets.reserve(parts.size());
  out.seed_counts.reserve(parts.size());

  // Seed layer (blocks[K-1]) dst order: parts' seeds concatenated, so each
  // part's logits rows stay contiguous.
  std::vector<RowRef> dst_order;
  std::int64_t offset = 0;
  for (std::size_t r = 0; r < parts.size(); ++r) {
    const std::int64_t n = parts[r]->blocks[num_layers - 1].num_dst;
    out.seed_offsets.push_back(offset);
    out.seed_counts.push_back(n);
    for (std::int64_t j = 0; j < n; ++j) {
      dst_order.push_back({static_cast<std::int32_t>(r), j});
    }
    offset += n;
    out.batch.seeds.insert(out.batch.seeds.end(), parts[r]->seeds.begin(),
                           parts[r]->seeds.end());
  }

  // Walk from the seed layer toward the input layer; each merged layer's
  // src order becomes the next (shallower) layer's dst order via the
  // per-part identity blocks[k-1].dst_nodes == blocks[k].src_nodes.
  for (std::size_t k = num_layers; k-- > 0;) {
    Block& m = out.batch.blocks[k];
    m.num_dst = static_cast<std::int64_t>(dst_order.size());

    // Per-part map: local src index in parts[r]->blocks[k] -> merged src
    // index. Prefix rows (local dst) take their dst_order position; extras
    // append grouped by part.
    std::vector<std::vector<std::int64_t>> src_map(parts.size());
    for (std::size_t r = 0; r < parts.size(); ++r) {
      src_map[r].assign(
          static_cast<std::size_t>(parts[r]->blocks[k].num_src()), -1);
    }
    m.src_nodes.reserve(dst_order.size());
    std::vector<RowRef> src_order;
    for (std::size_t d = 0; d < dst_order.size(); ++d) {
      const RowRef ref = dst_order[d];
      const Block& b = parts[static_cast<std::size_t>(ref.part)]->blocks[k];
      src_map[static_cast<std::size_t>(ref.part)]
             [static_cast<std::size_t>(ref.local)] =
          static_cast<std::int64_t>(d);
      m.src_nodes.push_back(
          b.src_nodes[static_cast<std::size_t>(ref.local)]);
      src_order.push_back(ref);
    }
    for (std::size_t r = 0; r < parts.size(); ++r) {
      const Block& b = parts[r]->blocks[k];
      for (std::int64_t i = b.num_dst; i < b.num_src(); ++i) {
        src_map[r][static_cast<std::size_t>(i)] =
            static_cast<std::int64_t>(m.src_nodes.size());
        m.src_nodes.push_back(b.src_nodes[static_cast<std::size_t>(i)]);
        src_order.push_back({static_cast<std::int32_t>(r), i});
      }
    }

    // Edges: each merged dst row copies its part's edge list in order.
    m.indptr.reserve(dst_order.size() + 1);
    m.indptr.push_back(0);
    for (const RowRef ref : dst_order) {
      const Block& b = parts[static_cast<std::size_t>(ref.part)]->blocks[k];
      const std::int64_t lo = b.indptr[static_cast<std::size_t>(ref.local)];
      const std::int64_t hi =
          b.indptr[static_cast<std::size_t>(ref.local) + 1];
      for (std::int64_t e = lo; e < hi; ++e) {
        const std::int64_t mapped =
            src_map[static_cast<std::size_t>(ref.part)]
                   [static_cast<std::size_t>(b.col[static_cast<std::size_t>(e)])];
        APT_CHECK_GE(mapped, 0);
        m.col.push_back(mapped);
      }
      m.indptr.push_back(static_cast<std::int64_t>(m.col.size()));
    }

    dst_order = std::move(src_order);
  }

  return out;
}

}  // namespace apt
