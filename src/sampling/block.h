// Sampled bipartite computation blocks (DGL's "message flow graphs").
//
// A Block is one GNN layer's computation graph: `num_dst` destination nodes
// aggregate from source nodes along CSR edges. Source nodes follow the DGL
// prefix convention — src_nodes[0 .. num_dst) are exactly the destination
// nodes (so a layer can read the destination's own previous-layer embedding
// for self/root terms), followed by the newly sampled neighbors.
//
// col[e] indexes *locally* into src_nodes; src_nodes holds global NodeIds.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.h"
#include "tensor/segment_ops.h"

namespace apt {

struct Block {
  std::vector<NodeId> src_nodes;   ///< global ids; prefix = dst nodes
  std::int64_t num_dst = 0;        ///< dst nodes are src_nodes[0..num_dst)
  std::vector<std::int64_t> indptr;  ///< size num_dst + 1
  std::vector<std::int64_t> col;     ///< local src index per edge

  /// Memoized source-major transpose of the CSR: backward kernels request it
  /// (at most one build per structure) to turn gradient scatters into
  /// parallel per-source gathers. Copies of a Block share the built
  /// transpose, so don't mutate indptr/col after the first backward pass.
  CsrTransposeCache transpose_cache;

  std::int64_t num_src() const { return static_cast<std::int64_t>(src_nodes.size()); }
  std::int64_t num_edges() const { return static_cast<std::int64_t>(col.size()); }

  CsrView csr() const { return {indptr, col, &transpose_cache}; }

  std::span<const NodeId> dst_nodes() const {
    return {src_nodes.data(), static_cast<std::size_t>(num_dst)};
  }

  /// Serialized size in bytes: what Shuffle moves for this block
  /// (node ids + CSR arrays), used by T_build accounting.
  std::int64_t bytes() const {
    return static_cast<std::int64_t>(src_nodes.size() * sizeof(NodeId) +
                                     indptr.size() * sizeof(std::int64_t) +
                                     col.size() * sizeof(std::int64_t));
  }

  /// Structural sanity: indptr monotone, col in range, prefix convention.
  void Validate() const;
};

/// The sampled subgraph stack for one mini-batch: blocks[0] is the first
/// layer of computation (furthest from the seeds; its src_nodes need input
/// features), blocks.back() outputs embeddings for the seed nodes.
struct SampledBatch {
  std::vector<Block> blocks;
  std::vector<NodeId> seeds;

  /// Nodes whose input features must be loaded.
  std::span<const NodeId> input_nodes() const {
    return blocks.front().src_nodes;
  }
};

}  // namespace apt
