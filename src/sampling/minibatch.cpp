#include "sampling/minibatch.h"

#include <algorithm>

#include "core/error.h"

namespace apt {

std::vector<std::vector<NodeId>> PerDeviceEpochQueues(
    std::span<const NodeId> seeds, std::span<const PartId> partition,
    std::int32_t num_devices, std::int64_t epoch, std::uint64_t seed) {
  APT_CHECK_GT(num_devices, 0);
  std::vector<std::vector<NodeId>> queues(static_cast<std::size_t>(num_devices));
  for (NodeId s : seeds) {
    const PartId p = partition[static_cast<std::size_t>(s)];
    APT_CHECK(p >= 0 && p < num_devices) << "partition id " << p;
    queues[static_cast<std::size_t>(p)].push_back(s);
  }
  for (std::size_t d = 0; d < queues.size(); ++d) {
    Rng rng = Rng(seed).Fork(static_cast<std::uint64_t>(epoch)).Fork(d);
    rng.Shuffle(queues[d]);
  }
  return queues;
}

std::int64_t QueueStepsPerEpoch(std::span<const std::vector<NodeId>> queues,
                                std::int64_t batch_size) {
  APT_CHECK_GT(batch_size, 0);
  std::int64_t steps = 0;
  for (const auto& q : queues) {
    const auto n = static_cast<std::int64_t>(q.size());
    steps = std::max(steps, (n + batch_size - 1) / batch_size);
  }
  return steps;
}

std::span<const NodeId> QueueStepSlice(const std::vector<NodeId>& q,
                                       std::int64_t step, std::int64_t batch_size) {
  const auto n = static_cast<std::int64_t>(q.size());
  const std::int64_t lo = std::min(n, step * batch_size);
  const std::int64_t hi = std::min(n, lo + batch_size);
  return {q.data() + lo, static_cast<std::size_t>(hi - lo)};
}

MinibatchPlan::MinibatchPlan(std::vector<NodeId> seeds, std::int64_t batch_size_per_device,
                             std::int32_t num_devices, std::uint64_t seed)
    : seeds_(std::move(seeds)),
      batch_size_(batch_size_per_device),
      num_devices_(num_devices),
      seed_(seed) {
  APT_CHECK_GT(batch_size_, 0);
  APT_CHECK_GT(num_devices_, 0);
  APT_CHECK(!seeds_.empty()) << "empty seed set";
}

std::vector<NodeId> MinibatchPlan::EpochSeeds(std::int64_t epoch) const {
  std::vector<NodeId> out = seeds_;
  Rng rng = Rng(seed_).Fork(static_cast<std::uint64_t>(epoch));
  rng.Shuffle(out);
  return out;
}

std::int64_t MinibatchPlan::StepsPerEpoch() const {
  const std::int64_t global = batch_size_ * num_devices_;
  return (num_seeds() + global - 1) / global;
}

std::vector<NodeId> MinibatchPlan::StepSeeds(std::span<const NodeId> epoch_seeds,
                                             std::int64_t step) const {
  const std::int64_t global = batch_size_ * num_devices_;
  const std::int64_t lo = step * global;
  APT_CHECK(lo < static_cast<std::int64_t>(epoch_seeds.size()))
      << "step " << step << " out of range";
  const std::int64_t hi =
      std::min<std::int64_t>(lo + global, static_cast<std::int64_t>(epoch_seeds.size()));
  return {epoch_seeds.begin() + lo, epoch_seeds.begin() + hi};
}

}  // namespace apt
