#include "sampling/block.h"

#include "core/error.h"

namespace apt {

void Block::Validate() const {
  APT_CHECK_GE(num_dst, 0);
  APT_CHECK_LE(num_dst, num_src());
  APT_CHECK_EQ(static_cast<std::int64_t>(indptr.size()), num_dst + 1);
  APT_CHECK_EQ(indptr.front(), 0);
  APT_CHECK_EQ(indptr.back(), num_edges());
  for (std::size_t i = 1; i < indptr.size(); ++i) {
    APT_CHECK_GE(indptr[i], indptr[i - 1]);
  }
  for (std::int64_t c : col) {
    APT_CHECK(c >= 0 && c < num_src()) << "col " << c << " of " << num_src();
  }
}

}  // namespace apt
