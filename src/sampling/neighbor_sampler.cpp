#include "sampling/neighbor_sampler.h"

#include <algorithm>
#include <unordered_map>

#include "core/error.h"

namespace apt {

NeighborSampler::NeighborSampler(const CsrGraph& graph, std::vector<int> fanouts)
    : graph_(graph), fanouts_(std::move(fanouts)) {
  APT_CHECK(!fanouts_.empty());
  for (int f : fanouts_) APT_CHECK_GT(f, 0);
}

Block NeighborSampler::SampleLayer(std::span<const NodeId> dst, int fanout,
                                   Rng& rng) const {
  Block block;
  block.num_dst = static_cast<std::int64_t>(dst.size());
  block.src_nodes.assign(dst.begin(), dst.end());
  block.indptr.reserve(dst.size() + 1);
  block.indptr.push_back(0);

  // Local id assignment: dst nodes occupy the prefix; new sources appended.
  std::unordered_map<NodeId, std::int64_t> local;
  local.reserve(dst.size() * 2);
  for (std::size_t i = 0; i < dst.size(); ++i) {
    local.emplace(dst[i], static_cast<std::int64_t>(i));
  }
  auto local_id = [&](NodeId v) {
    auto [it, inserted] = local.try_emplace(v, block.num_src());
    if (inserted) block.src_nodes.push_back(v);
    return it->second;
  };

  std::vector<NodeId> reservoir(static_cast<std::size_t>(fanout));
  for (NodeId v : dst) {
    const auto nbrs = graph_.Neighbors(v);
    const auto deg = static_cast<std::int64_t>(nbrs.size());
    if (deg <= fanout) {
      for (NodeId u : nbrs) block.col.push_back(local_id(u));
    } else {
      // Reservoir sampling: `fanout` distinct neighbors, uniform w/o replacement.
      for (std::int64_t i = 0; i < fanout; ++i) {
        reservoir[static_cast<std::size_t>(i)] = nbrs[static_cast<std::size_t>(i)];
      }
      for (std::int64_t i = fanout; i < deg; ++i) {
        const auto j =
            static_cast<std::int64_t>(rng.NextBelow(static_cast<std::uint64_t>(i + 1)));
        if (j < fanout) {
          reservoir[static_cast<std::size_t>(j)] = nbrs[static_cast<std::size_t>(i)];
        }
      }
      for (std::int64_t i = 0; i < fanout; ++i) {
        block.col.push_back(local_id(reservoir[static_cast<std::size_t>(i)]));
      }
    }
    block.indptr.push_back(block.num_edges());
  }
  return block;
}

SampledBatch NeighborSampler::Sample(std::span<const NodeId> seeds, Rng& rng) const {
  SampledBatch batch;
  batch.seeds.assign(seeds.begin(), seeds.end());
  // Sample outward from the seeds; each hop's source set becomes the next
  // hop's destination frontier. Results are stored innermost-first.
  std::vector<Block> outward;
  std::vector<NodeId> frontier(seeds.begin(), seeds.end());
  for (int f : fanouts_) {
    Block b = SampleLayer(frontier, f, rng);
    frontier = b.src_nodes;  // includes dst prefix + new neighbors
    outward.push_back(std::move(b));
  }
  // blocks[0] must be the layer furthest from the seeds.
  batch.blocks.assign(std::make_move_iterator(outward.rbegin()),
                      std::make_move_iterator(outward.rend()));
  return batch;
}

}  // namespace apt
