// Per-strategy GPU cache configuration (paper §3.2, "Cache configuration").
//
// Given dry-run hotness counts and a byte budget per GPU:
//   * GDP / NFP cache the globally most popular nodes (NFP caches a d/C
//     dimension slice per node, so the same budget holds C x more nodes);
//   * SNP caches the most popular nodes of the GPU's own graph partition;
//   * DNP caches the most popular nodes among its partition plus their
//     1-hop neighbors (it can exploit excess memory, unlike SNP/NFP).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.h"
#include "graph/csr_graph.h"
#include "tensor/codec.h"

namespace apt {

struct CacheConfig {
  std::vector<std::vector<NodeId>> cache_nodes;  ///< one list per device
  std::int64_t bytes_per_cached_row = 0;
};

struct CachePolicyInput {
  Strategy strategy = Strategy::kGDP;
  std::int64_t budget_bytes_per_device = 0;
  std::int64_t feature_dim = 0;
  std::int32_t num_devices = 1;
  std::span<const std::int64_t> hotness;      ///< dry-run access counts per node
  std::span<const PartId> partition;          ///< per node (SNP/DNP)
  const CsrGraph* graph = nullptr;            ///< for DNP's 1-hop expansion
  /// At-rest representation of cached rows: a compressing storage codec
  /// shrinks the per-row footprint, so the same budget holds more rows.
  Codec storage_codec = Codec::kIdentity;
};

CacheConfig ConfigureCache(const CachePolicyInput& in);

}  // namespace apt
