#include "feature/cache_policy.h"

#include <algorithm>
#include <numeric>

#include "core/error.h"

namespace apt {

namespace {

/// Top nodes of `candidates` by hotness that fit in `max_rows`.
std::vector<NodeId> TopHot(std::vector<NodeId> candidates,
                           std::span<const std::int64_t> hotness,
                           std::int64_t max_rows) {
  if (max_rows <= 0) return {};
  std::stable_sort(candidates.begin(), candidates.end(), [&](NodeId a, NodeId b) {
    return hotness[static_cast<std::size_t>(a)] > hotness[static_cast<std::size_t>(b)];
  });
  if (static_cast<std::int64_t>(candidates.size()) > max_rows) {
    candidates.resize(static_cast<std::size_t>(max_rows));
  }
  return candidates;
}

}  // namespace

CacheConfig ConfigureCache(const CachePolicyInput& in) {
  APT_CHECK_GT(in.num_devices, 0);
  APT_CHECK_GT(in.feature_dim, 0);
  const auto n = static_cast<NodeId>(in.hotness.size());
  CacheConfig cfg;
  cfg.cache_nodes.resize(static_cast<std::size_t>(in.num_devices));

  // Rows are cached in their at-rest (storage-codec) representation, so a
  // compressing codec lets the same budget hold more rows (identity keeps
  // the historical d * 4 footprint exactly).
  const std::int64_t full_row_bytes =
      CodecWireBytes(in.storage_codec, 1, in.feature_dim);

  switch (in.strategy) {
    case Strategy::kGDP:
    case Strategy::kNFP: {
      // NFP co-partitions feature dimensions: each device stores d/C columns
      // of a cached node, so the per-row footprint shrinks by C.
      cfg.bytes_per_cached_row = in.strategy == Strategy::kNFP
                                     ? std::max<std::int64_t>(
                                           1, full_row_bytes / in.num_devices)
                                     : full_row_bytes;
      const std::int64_t max_rows =
          in.budget_bytes_per_device / std::max<std::int64_t>(1, cfg.bytes_per_cached_row);
      std::vector<NodeId> all(static_cast<std::size_t>(n));
      std::iota(all.begin(), all.end(), NodeId{0});
      const std::vector<NodeId> hot = TopHot(std::move(all), in.hotness, max_rows);
      for (auto& dev_nodes : cfg.cache_nodes) dev_nodes = hot;
      break;
    }
    case Strategy::kSNP:
    case Strategy::kDNP: {
      APT_CHECK_EQ(static_cast<NodeId>(in.partition.size()), n);
      cfg.bytes_per_cached_row = full_row_bytes;
      const std::int64_t max_rows =
          in.budget_bytes_per_device / std::max<std::int64_t>(1, full_row_bytes);
      // Candidate sets per device.
      std::vector<std::vector<NodeId>> candidates(
          static_cast<std::size_t>(in.num_devices));
      for (NodeId v = 0; v < n; ++v) {
        const PartId p = in.partition[static_cast<std::size_t>(v)];
        APT_CHECK(p >= 0 && p < in.num_devices) << "partition id " << p;
        candidates[static_cast<std::size_t>(p)].push_back(v);
      }
      if (in.strategy == Strategy::kDNP) {
        // Expand by 1-hop neighbors: DNP loads the sources of every
        // destination it manages, so neighbor features are cache-worthy.
        APT_CHECK(in.graph != nullptr) << "DNP cache policy needs the graph";
        std::vector<std::uint8_t> seen(static_cast<std::size_t>(n));
        for (std::int32_t d = 0; d < in.num_devices; ++d) {
          auto& cand = candidates[static_cast<std::size_t>(d)];
          std::fill(seen.begin(), seen.end(), 0);
          for (NodeId v : cand) seen[static_cast<std::size_t>(v)] = 1;
          const std::size_t base_size = cand.size();
          for (std::size_t i = 0; i < base_size; ++i) {
            for (NodeId u : in.graph->Neighbors(cand[i])) {
              if (!seen[static_cast<std::size_t>(u)]) {
                seen[static_cast<std::size_t>(u)] = 1;
                cand.push_back(u);
              }
            }
          }
        }
      }
      for (std::int32_t d = 0; d < in.num_devices; ++d) {
        cfg.cache_nodes[static_cast<std::size_t>(d)] =
            TopHot(std::move(candidates[static_cast<std::size_t>(d)]), in.hotness,
                   max_rows);
      }
      break;
    }
  }
  return cfg;
}

}  // namespace apt
