// Unified feature store over the simulated memory hierarchy (paper §4.2).
//
// Node features live in CPU memory, partitioned across machines; each GPU
// caches the rows its strategy expects to touch most. A gather request is
// served tier by tier — own GPU cache, peer GPU (NVLink only), local CPU,
// remote CPU — with real row copies plus simulated transfer time per tier.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/types.h"
#include "sim/sim_context.h"
#include "tensor/codec.h"
#include "tensor/tensor.h"

namespace apt {

/// Where a feature row was served from.
enum class FeatureTier : int {
  kGpuCache = 0,
  kPeerGpu = 1,
  kLocalCpu = 2,
  kRemoteCpu = 3,
};
inline constexpr int kNumFeatureTiers = 4;

const char* ToString(FeatureTier t);

/// Byte counts per tier for one gather (or accumulated over an epoch);
/// the raw material of the cost model's T_load. `bytes` is the LOGICAL
/// (fp32) volume; `wire_bytes` is what actually moves when the store keeps
/// rows in compressed form (== bytes under the identity codec).
struct LoadVolume {
  std::array<std::int64_t, kNumFeatureTiers> bytes{};
  std::array<std::int64_t, kNumFeatureTiers> wire_bytes{};
  std::array<std::int64_t, kNumFeatureTiers> rows{};

  void Add(const LoadVolume& o) {
    for (int i = 0; i < kNumFeatureTiers; ++i) {
      bytes[static_cast<std::size_t>(i)] += o.bytes[static_cast<std::size_t>(i)];
      wire_bytes[static_cast<std::size_t>(i)] +=
          o.wire_bytes[static_cast<std::size_t>(i)];
      rows[static_cast<std::size_t>(i)] += o.rows[static_cast<std::size_t>(i)];
    }
  }
  /// Wire bytes for a tier, falling back to logical bytes for volumes built
  /// by hand without wire tracking (wire > 0 whenever a tracked tier served
  /// any row, so the fallback never masks real compression).
  std::int64_t WireBytes(FeatureTier t) const {
    const auto i = static_cast<std::size_t>(t);
    return wire_bytes[i] > 0 ? wire_bytes[i] : bytes[i];
  }
  std::int64_t TotalBytes() const {
    std::int64_t t = 0;
    for (auto b : bytes) t += b;
    return t;
  }
  std::int64_t TotalWireBytes() const {
    std::int64_t t = 0;
    for (int i = 0; i < kNumFeatureTiers; ++i) {
      t += WireBytes(static_cast<FeatureTier>(i));
    }
    return t;
  }
  std::int64_t CpuBytes() const {
    return bytes[static_cast<std::size_t>(FeatureTier::kLocalCpu)] +
           bytes[static_cast<std::size_t>(FeatureTier::kRemoteCpu)];
  }
};

class FeatureStore {
 public:
  /// `features` must outlive the store. `node_machine[v]` names the machine
  /// whose CPU memory holds v's feature (size == num rows of features).
  FeatureStore(const Tensor& features, std::vector<MachineId> node_machine,
               SimContext& ctx);

  /// Procedural store (scale mode): no backing matrix — row v's features are
  /// generated on demand from a hash of (seed, v, col), so 100M-node-class
  /// graphs train without materializing num_nodes x dim fp32. Deterministic
  /// and batching-independent: the same (node, col) always reads the same
  /// value, and lossy storage codecs round each generated row exactly as the
  /// materialized path rounds its stored row.
  FeatureStore(NodeId num_nodes, std::int64_t feature_dim, std::uint64_t seed,
               std::vector<MachineId> node_machine, SimContext& ctx);

  /// Selects the at-rest representation for every tier (CPU shards and GPU
  /// caches alike). A lossy codec rounds each row ONCE, at the storage tier,
  /// in fixed row-major order — every consumer then observes the identical
  /// rounded values regardless of which tier served it or how the gather was
  /// batched (the producer-side half of DESIGN.md invariant 8). With
  /// `materialize` false (dry-run scratch stores) only the byte accounting
  /// changes and no rounded copy is built; Gather must not be called then.
  /// Call before ConfigureCaches / any gather.
  void SetStorageCodec(Codec codec, bool materialize = true);
  Codec storage_codec() const { return storage_codec_; }

  /// Bytes one cached row of `width` columns occupies under the storage
  /// codec (what ConfigureCaches callers should pass per cached row).
  std::int64_t CachedRowBytes(std::int64_t width) const {
    return CodecWireBytes(storage_codec_, 1, width);
  }

  /// Installs per-device cached node sets (from a CachePolicy). For NFP the
  /// cached slice is narrower; `bytes_per_cached_row` lets the caller account
  /// the true footprint. Registers the footprint with SimContext memory.
  void ConfigureCaches(const std::vector<std::vector<NodeId>>& cache_nodes,
                       std::int64_t bytes_per_cached_row);

  /// Gathers columns [col_lo, col_hi) of `nodes` into `out` (resized by the
  /// caller to nodes.size() x (col_hi - col_lo)), charging simulated load
  /// time on `dev` and returning the per-tier volume.
  LoadVolume Gather(DeviceId dev, std::span<const NodeId> nodes, std::int64_t col_lo,
                    std::int64_t col_hi, Tensor& out);

  /// Volume-only variant used by dry-run: classifies tiers and charges
  /// nothing, copies nothing.
  LoadVolume CountGather(DeviceId dev, std::span<const NodeId> nodes,
                         std::int64_t col_lo, std::int64_t col_hi) const;

  /// Converts a volume into simulated seconds for `dev` (one latency charge
  /// per non-empty tier; bandwidth from the cluster link model).
  double LoadSeconds(DeviceId dev, const LoadVolume& volume) const;

  /// True if dev's cache holds v. Membership is a binary search over the
  /// device's sorted cached-node list: O(nodes) memory per device instead of
  /// the O(num_nodes) bitmap a 100M-node procedural graph cannot afford.
  bool Cached(DeviceId dev, NodeId v) const {
    const auto& nodes = cache_sorted_[static_cast<std::size_t>(dev)];
    return std::binary_search(nodes.begin(), nodes.end(), v);
  }

  FeatureTier Classify(DeviceId dev, NodeId v) const;

  std::int64_t feature_dim() const {
    return procedural_ ? procedural_dim_ : features_->cols();
  }
  std::int64_t num_nodes() const {
    return procedural_ ? procedural_nodes_ : features_->rows();
  }
  bool procedural() const { return procedural_; }

 private:
  /// The tensor gathers copy from: the caller's fp32 features under the
  /// identity codec, the rounded copy under a lossy one.
  const Tensor& served() const {
    return rounded_.numel() > 0 ? rounded_ : *features_;
  }

  const Tensor* features_;  ///< null in procedural mode
  std::vector<MachineId> node_machine_;
  SimContext* ctx_;
  Codec storage_codec_ = Codec::kIdentity;
  Tensor rounded_;  ///< codec-rounded copy (empty when identity/unmaterialized)
  std::vector<std::vector<NodeId>> cache_sorted_;  ///< per device, sorted+deduped
  bool procedural_ = false;
  NodeId procedural_nodes_ = 0;
  std::int64_t procedural_dim_ = 0;
  std::uint64_t procedural_seed_ = 0;
};

/// Assigns features to machines: node v lives on the machine hosting the
/// device that owns v's partition. With one machine everything is local.
std::vector<MachineId> FeaturePlacementFromPartition(
    const std::vector<PartId>& part, const ClusterSpec& cluster);

}  // namespace apt
