#include "feature/feature_store.h"

#include <algorithm>

#include "core/error.h"
#include "obs/metrics.h"
#include "runtime/parallel_for.h"

namespace apt {

namespace {

/// Per-tier served-row/byte counters plus the derived cache hit rate.
/// Registry handles are stable for the process lifetime, so resolve once.
struct GatherMetrics {
  obs::Counter& gathers;
  std::array<obs::Counter*, kNumFeatureTiers> rows;
  std::array<obs::Counter*, kNumFeatureTiers> bytes;
  std::array<obs::Counter*, kNumFeatureTiers> wire_bytes;
  obs::Gauge& hit_rate;
};

GatherMetrics& FeatureMetrics() {
  auto& m = obs::Metrics::Global();
  static GatherMetrics g{
      m.counter("feature.gathers"),
      {&m.counter("feature.rows.gpu_cache"), &m.counter("feature.rows.peer_gpu"),
       &m.counter("feature.rows.local_cpu"), &m.counter("feature.rows.remote_cpu")},
      {&m.counter("feature.bytes.gpu_cache"), &m.counter("feature.bytes.peer_gpu"),
       &m.counter("feature.bytes.local_cpu"), &m.counter("feature.bytes.remote_cpu")},
      {&m.counter("feature.wire_bytes.gpu_cache"),
       &m.counter("feature.wire_bytes.peer_gpu"),
       &m.counter("feature.wire_bytes.local_cpu"),
       &m.counter("feature.wire_bytes.remote_cpu")},
      m.gauge("feature.cache.hit_rate"),
  };
  return g;
}

/// Procedural feature value for (seed, node, col): a splitmix64-style mix
/// mapped to ~[-0.5, 0.5). Element-local, so any batching of any gather
/// reads the identical value.
float ProceduralFeature(std::uint64_t seed, NodeId v, std::int64_t col) {
  std::uint64_t x = seed +
                    0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(v) + 1) +
                    0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(col) + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<float>(x >> 40) * (1.0f / 16777216.0f) - 0.5f;
}

}  // namespace

const char* ToString(FeatureTier t) {
  switch (t) {
    case FeatureTier::kGpuCache:
      return "gpu_cache";
    case FeatureTier::kPeerGpu:
      return "peer_gpu";
    case FeatureTier::kLocalCpu:
      return "local_cpu";
    case FeatureTier::kRemoteCpu:
      return "remote_cpu";
  }
  return "?";
}

FeatureStore::FeatureStore(const Tensor& features, std::vector<MachineId> node_machine,
                           SimContext& ctx)
    : features_(&features), node_machine_(std::move(node_machine)), ctx_(&ctx) {
  APT_CHECK_EQ(static_cast<std::int64_t>(node_machine_.size()), features.rows());
  cache_sorted_.assign(static_cast<std::size_t>(ctx.num_devices()), {});
}

FeatureStore::FeatureStore(NodeId num_nodes, std::int64_t feature_dim,
                           std::uint64_t seed, std::vector<MachineId> node_machine,
                           SimContext& ctx)
    : features_(nullptr),
      node_machine_(std::move(node_machine)),
      ctx_(&ctx),
      procedural_(true),
      procedural_nodes_(num_nodes),
      procedural_dim_(feature_dim),
      procedural_seed_(seed) {
  APT_CHECK_GT(num_nodes, 0);
  APT_CHECK_GT(feature_dim, 0);
  APT_CHECK_EQ(static_cast<NodeId>(node_machine_.size()), num_nodes);
  cache_sorted_.assign(static_cast<std::size_t>(ctx.num_devices()), {});
}

void FeatureStore::SetStorageCodec(Codec codec, bool materialize) {
  storage_codec_ = codec;
  rounded_ = Tensor();
  if (procedural_) return;  // rounding happens per generated row in Gather
  if (CodecIsLossy(codec) && materialize) {
    // Round once, over full rows, in the canonical storage order. Gathers
    // copy from this tensor, so a row reads back bit-identically no matter
    // which tier serves it or how requests are batched.
    rounded_ = Tensor(features_->rows(), features_->cols());
    std::copy_n(features_->data(), features_->numel(), rounded_.data());
    CodecRoundRows(codec, rounded_);
  }
}

void FeatureStore::ConfigureCaches(const std::vector<std::vector<NodeId>>& cache_nodes,
                                   std::int64_t bytes_per_cached_row) {
  APT_CHECK_EQ(cache_nodes.size(), cache_sorted_.size());
  for (std::size_t d = 0; d < cache_nodes.size(); ++d) {
    std::vector<NodeId> sorted = cache_nodes[d];
    for (NodeId v : sorted) {
      APT_CHECK(v >= 0 && v < num_nodes()) << "cache node " << v;
    }
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    cache_sorted_[d] = std::move(sorted);
    // Footprint stays the CALLER's row count (duplicates included) — same
    // memory accounting as before the sorted-membership representation.
    ctx_->AllocPersistent(static_cast<DeviceId>(d),
                          static_cast<std::int64_t>(cache_nodes[d].size()) *
                              bytes_per_cached_row);
  }
}

FeatureTier FeatureStore::Classify(DeviceId dev, NodeId v) const {
  if (Cached(dev, v)) return FeatureTier::kGpuCache;
  const ClusterSpec& cluster = ctx_->cluster();
  const MachineId m = cluster.MachineOf(dev);
  // Peer-GPU reads require fast interconnect (paper feature-map rule 1).
  if (cluster.machine(m).has_nvlink) {
    const std::int32_t local = cluster.LocalIndex(dev);
    const DeviceId base = dev - local;
    for (std::int32_t i = 0; i < cluster.machine(m).num_gpus; ++i) {
      const DeviceId peer = base + i;
      if (peer != dev && Cached(peer, v)) return FeatureTier::kPeerGpu;
    }
  }
  if (node_machine_[static_cast<std::size_t>(v)] == m) return FeatureTier::kLocalCpu;
  return FeatureTier::kRemoteCpu;
}

LoadVolume FeatureStore::CountGather(DeviceId dev, std::span<const NodeId> nodes,
                                     std::int64_t col_lo, std::int64_t col_hi) const {
  APT_CHECK(col_lo >= 0 && col_lo <= col_hi && col_hi <= feature_dim());
  const std::int64_t row_bytes =
      (col_hi - col_lo) * static_cast<std::int64_t>(sizeof(float));
  LoadVolume vol;
  for (NodeId v : nodes) {
    const auto tier = static_cast<std::size_t>(Classify(dev, v));
    vol.rows[tier] += 1;
    vol.bytes[tier] += row_bytes;
  }
  for (int tier = 0; tier < kNumFeatureTiers; ++tier) {
    const auto t = static_cast<std::size_t>(tier);
    vol.wire_bytes[t] =
        CodecWireBytes(storage_codec_, vol.rows[t], col_hi - col_lo);
  }
  return vol;
}

double FeatureStore::LoadSeconds(DeviceId dev, const LoadVolume& volume) const {
  const ClusterSpec& cluster = ctx_->cluster();
  const MachineId m = cluster.MachineOf(dev);
  const MachineSpec& machine = cluster.machine(m);
  double t = 0.0;
  // Rows move in their at-rest (possibly compressed) form: transfers charge
  // wire bytes. Under the identity codec wire == logical bytes and the
  // decode term is zero, so this is bit-identical to the uncompressed model.
  auto bytes_of = [&](FeatureTier tier) { return volume.WireBytes(tier); };
  if (bytes_of(FeatureTier::kGpuCache) > 0) {
    t += machine.gpu.kernel_launch_s +
         static_cast<double>(bytes_of(FeatureTier::kGpuCache)) /
             machine.gpu.mem_bandwidth_bytes_per_s;
  }
  // Each tier's base link is degraded by any link fault active at dev's
  // current clock (GPU-cache reads never leave the device, so they are
  // immune to link faults).
  const double now = ctx_->Now(dev);
  if (bytes_of(FeatureTier::kPeerGpu) > 0) {
    const LinkSpec link = ctx_->DegradedLink(
        machine.has_nvlink ? machine.nvlink : machine.pcie, TrafficClass::kPeerGpu,
        now);
    t += link.TransferSeconds(bytes_of(FeatureTier::kPeerGpu));
  }
  if (bytes_of(FeatureTier::kLocalCpu) > 0) {
    t += ctx_->DegradedLink(machine.pcie, TrafficClass::kLocalCpuGpu, now)
             .TransferSeconds(bytes_of(FeatureTier::kLocalCpu));
  }
  if (bytes_of(FeatureTier::kRemoteCpu) > 0) {
    t += ctx_->DegradedLink(cluster.network, TrafficClass::kCrossMachine, now)
             .TransferSeconds(bytes_of(FeatureTier::kRemoteCpu));
  }
  // Dequantize-on-device: one streaming pass over the logical volume at the
  // consumer GPU's memory bandwidth.
  t += CodecXcodeSeconds(storage_codec_, volume.TotalBytes(),
                         machine.gpu.mem_bandwidth_bytes_per_s);
  return t;
}

LoadVolume FeatureStore::Gather(DeviceId dev, std::span<const NodeId> nodes,
                                std::int64_t col_lo, std::int64_t col_hi, Tensor& out) {
  APT_CHECK_EQ(out.rows(), static_cast<std::int64_t>(nodes.size()));
  APT_CHECK_EQ(out.cols(), col_hi - col_lo);
  const LoadVolume vol = CountGather(dev, nodes, col_lo, col_hi);
  const std::int64_t width = col_hi - col_lo;
  if (procedural_) {
    // Generate each requested row on the fly. The FULL row is generated and
    // (under a lossy codec) rounded before slicing: bf16/int8 round per
    // element / per full row, so the slice matches what a materialized store
    // would have rounded at rest — slicing first would change int8's per-row
    // maxabs scale.
    const std::int64_t dim = procedural_dim_;
    ParallelForChunks(0, static_cast<std::int64_t>(nodes.size()),
                      [&](std::int64_t lo, std::int64_t hi) {
                        Tensor row_buf(1, dim);
                        float* r = row_buf.row(0);
                        const bool lossy = CodecIsLossy(storage_codec_);
                        for (std::int64_t i = lo; i < hi; ++i) {
                          const NodeId v = nodes[static_cast<std::size_t>(i)];
                          for (std::int64_t col = 0; col < dim; ++col) {
                            r[col] = ProceduralFeature(procedural_seed_, v, col);
                          }
                          if (lossy) CodecRoundRows(storage_codec_, row_buf);
                          std::copy_n(r + col_lo, width, out.row(i));
                        }
                      });
  } else {
    APT_CHECK(!CodecIsLossy(storage_codec_) || rounded_.numel() > 0)
        << "lossy storage codec was set without materializing the rounded copy";
    const Tensor& src_tensor = served();
    // The row copies are independent; this is the memory-bound half of T_load.
    ParallelFor(0, static_cast<std::int64_t>(nodes.size()), [&](std::int64_t i) {
      const float* src = src_tensor.row(nodes[static_cast<std::size_t>(i)]) + col_lo;
      std::copy_n(src, width, out.row(i));
    }, std::max<std::int64_t>(1, 16384 / std::max<std::int64_t>(1, width)));
  }
  GatherMetrics& metrics = FeatureMetrics();
  metrics.gathers.Increment();
  std::int64_t total_rows = 0;
  for (int tier = 0; tier < kNumFeatureTiers; ++tier) {
    const auto t = static_cast<std::size_t>(tier);
    metrics.rows[t]->Add(vol.rows[t]);
    metrics.bytes[t]->Add(vol.bytes[t]);
    metrics.wire_bytes[t]->Add(vol.wire_bytes[t]);
    total_rows += vol.rows[t];
  }
  // Cumulative hit rate: rows served from the device's own GPU cache over all
  // rows ever gathered (the quantity the cache policy optimizes).
  const auto hit_tier = static_cast<std::size_t>(FeatureTier::kGpuCache);
  const std::int64_t hits = metrics.rows[hit_tier]->Get();
  std::int64_t all_rows = 0;
  for (const auto* c : metrics.rows) all_rows += c->Get();
  if (all_rows > 0) {
    metrics.hit_rate.Set(static_cast<double>(hits) / static_cast<double>(all_rows));
  }
  ctx_->AdvanceLabeled(
      dev, LoadSeconds(dev, vol), Phase::kLoad, "gather",
      {{"rows", static_cast<double>(total_rows), nullptr},
       {"bytes", static_cast<double>(vol.TotalBytes()), nullptr},
       {"wire_bytes", static_cast<double>(vol.TotalWireBytes()), nullptr},
       {"cache_hit_rows", static_cast<double>(vol.rows[hit_tier]), nullptr}});
  ctx_->CountTraffic(TrafficClass::kLocalCpuGpu,
                     vol.bytes[static_cast<std::size_t>(FeatureTier::kLocalCpu)],
                     vol.WireBytes(FeatureTier::kLocalCpu));
  ctx_->CountTraffic(TrafficClass::kPeerGpu,
                     vol.bytes[static_cast<std::size_t>(FeatureTier::kPeerGpu)],
                     vol.WireBytes(FeatureTier::kPeerGpu));
  ctx_->CountTraffic(TrafficClass::kCrossMachine,
                     vol.bytes[static_cast<std::size_t>(FeatureTier::kRemoteCpu)],
                     vol.WireBytes(FeatureTier::kRemoteCpu));
  return vol;
}

std::vector<MachineId> FeaturePlacementFromPartition(const std::vector<PartId>& part,
                                                     const ClusterSpec& cluster) {
  std::vector<MachineId> placement(part.size());
  for (std::size_t v = 0; v < part.size(); ++v) {
    const auto dev = static_cast<DeviceId>(part[v]);
    placement[v] = cluster.MachineOf(dev % cluster.num_devices());
  }
  return placement;
}

}  // namespace apt
