#include "obs/trace.h"

namespace apt::obs {

Tracer& Tracer::Global() {
  // Leaked: worker threads may emit during static destruction of other
  // objects; a destroyed tracer would be a use-after-free.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::ThreadBuffer& Tracer::LocalBuffer() {
  thread_local ThreadBuffer* local = nullptr;
  if (local == nullptr) {
    auto buf = std::make_unique<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(mu_);
    buf->tid = static_cast<std::int32_t>(buffers_.size());
    local = buf.get();
    buffers_.push_back(std::move(buf));
  }
  return *local;
}

void Tracer::Emit(TraceEvent e) {
  ThreadBuffer& buf = LocalBuffer();
  if (e.domain == Domain::kReal) {
    e.pid = kHostPid;
    e.tid = buf.tid;
  }
  std::lock_guard<std::mutex> lock(buf.mu);
  if (buf.events.size() >= kMaxEventsPerThread) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events.push_back(e);
}

std::int32_t Tracer::RegisterSimTrack(std::string label, std::int32_t num_lanes,
                                      std::vector<std::string> lane_names) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::int32_t pid = next_pid_++;
  sim_tracks_.push_back({pid, std::move(label), num_lanes, std::move(lane_names)});
  return pid;
}

std::vector<TraceEvent> Tracer::Drain() {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
    buf->events.clear();
  }
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

std::vector<SimTrackInfo> Tracer::SimTracks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sim_tracks_;
}

std::int32_t Tracer::NumHostLanes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int32_t>(buffers_.size());
}

void EmitSimSpan(std::int32_t pid, std::int32_t lane, double t0_s, double t1_s,
                 const char* name, const char* cat,
                 std::initializer_list<TraceArg> args) {
#if APT_OBS_ENABLED
  TraceEvent e;
  e.ts_us = t0_s * 1e6;
  e.dur_us = (t1_s - t0_s) * 1e6;
  e.pid = pid;
  e.tid = lane;
  e.ph = 'X';
  e.domain = Domain::kSim;
  e.name = name;
  e.cat = cat;
  for (const TraceArg& a : args) {
    if (e.num_args == kMaxTraceArgs) break;
    e.args[static_cast<std::size_t>(e.num_args++)] = a;
  }
  Tracer::Global().Emit(e);
#else
  (void)pid;
  (void)lane;
  (void)t0_s;
  (void)t1_s;
  (void)name;
  (void)cat;
  (void)args;
#endif
}

void EmitSimSpan(std::int32_t pid, std::int32_t lane, double t0_s, double t1_s,
                 const char* name, const char* cat, const TraceArg* args,
                 int num_args) {
#if APT_OBS_ENABLED
  TraceEvent e;
  e.ts_us = t0_s * 1e6;
  e.dur_us = (t1_s - t0_s) * 1e6;
  e.pid = pid;
  e.tid = lane;
  e.ph = 'X';
  e.domain = Domain::kSim;
  e.name = name;
  e.cat = cat;
  for (int i = 0; i < num_args && e.num_args < kMaxTraceArgs; ++i) {
    e.args[static_cast<std::size_t>(e.num_args++)] = args[i];
  }
  Tracer::Global().Emit(e);
#else
  (void)pid;
  (void)lane;
  (void)t0_s;
  (void)t1_s;
  (void)name;
  (void)cat;
  (void)args;
  (void)num_args;
#endif
}

void EmitSimCounter(std::int32_t pid, double t_s, const char* name,
                    std::initializer_list<TraceArg> args) {
#if APT_OBS_ENABLED
  TraceEvent e;
  e.ts_us = t_s * 1e6;
  e.pid = pid;
  e.tid = 0;
  e.ph = 'C';
  e.domain = Domain::kSim;
  e.name = name;
  for (const TraceArg& a : args) {
    if (e.num_args == kMaxTraceArgs) break;
    e.args[static_cast<std::size_t>(e.num_args++)] = a;
  }
  Tracer::Global().Emit(e);
#else
  (void)pid;
  (void)t_s;
  (void)name;
  (void)args;
#endif
}

}  // namespace apt::obs
