#include "obs/metrics.h"

#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "obs/telemetry.h"

namespace apt::obs {

Metrics& Metrics::Global() {
  static Metrics* metrics = new Metrics();  // leaked; see Tracer::Global
  return *metrics;
}

Counter& Metrics::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Metrics::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Metrics::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Metrics::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

void Metrics::ResetForTest() {
  Global().ResetAll();
  Telemetry::Global().ResetAll();
}

std::vector<std::pair<std::string, std::int64_t>> Metrics::CounterSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->Get());
  return out;
}

std::vector<std::pair<std::string, double>> Metrics::GaugeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->Get());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> Metrics::HistogramRefs()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

void Metrics::WriteJson(std::ostream& os) const {
  JsonWriter w(os);
  w.BeginObject();
  w.KV("schema_version", kObsSchemaVersion);
  w.Key("meta");
  w.BeginObject();
  w.KV("generator", "apt::obs");
  w.KV("kind", "metrics");
  w.EndObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, value] : CounterSnapshot()) w.KV(name, value);
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, value] : GaugeSnapshot()) w.KV(name, value);
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, hist] : HistogramRefs()) {
    w.Key(name);
    w.BeginObject();
    w.KV("count", hist->Count());
    w.KV("sum", hist->Sum());
    w.KV("min", hist->Min());
    w.KV("max", hist->Max());
    w.KV("p50", hist->ValueAtQuantile(0.50));
    w.KV("p95", hist->ValueAtQuantile(0.95));
    w.KV("p99", hist->ValueAtQuantile(0.99));
    // Sparse bucket encoding: [index, count] pairs for non-empty buckets
    // (the fixed layout makes indices portable across processes).
    w.Key("buckets");
    w.BeginArray();
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      const std::int64_t n = hist->BucketCount(i);
      if (n == 0) continue;
      w.BeginArray();
      w.Value(static_cast<std::int64_t>(i));
      w.Value(n);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  os << "\n";
}

std::string Metrics::ToJson() const {
  std::ostringstream os;
  WriteJson(os);
  return os.str();
}

std::string Metrics::ToText() const {
  std::ostringstream os;
  for (const auto& [name, value] : CounterSnapshot()) {
    os << name << " " << value << "\n";
  }
  for (const auto& [name, value] : GaugeSnapshot()) {
    os << name << " " << value << "\n";
  }
  return os.str();
}

bool Metrics::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  WriteJson(out);
  return static_cast<bool>(out);
}

}  // namespace apt::obs
