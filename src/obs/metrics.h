// apt::obs metrics: a process-global registry of named counters and gauges,
// dumpable as JSON or aligned text.
//
// Counters are cumulative monotone int64 totals (rows gathered, bytes
// shuffled); gauges are last-write-wins doubles (cache hit rate, cost-model
// residual). Both are lock-free atomics once obtained; name lookup takes the
// registry mutex, so hot paths resolve their handles once and keep the
// reference (handles are stable for the process lifetime).
//
// Metric naming scheme: dot-separated "<subsystem>.<object>.<unit>" —
// e.g. feature.rows.gpu_cache, sim.traffic.cross_machine.bytes,
// costmodel.residual_rel. See DESIGN.md "Observability".
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace apt::obs {

class Counter {
 public:
  void Add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  std::int64_t Get() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double Get() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

class Metrics {
 public:
  /// Process-wide registry (leaked singleton).
  static Metrics& Global();

  /// Returns the counter/gauge/histogram named `name`, creating it on first
  /// use. The returned reference stays valid for the process lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Streaming distribution metric (obs/histogram.h): quantiles available
  /// in-process without trace analysis, e.g. serve.latency_s.
  Histogram& histogram(const std::string& name);

  /// Zeroes every registered metric (names stay registered).
  void ResetAll();

  /// Test-fixture hook: zeroes the global registry — counters, gauges,
  /// histograms, AND the telemetry time-series registry — so assertions are
  /// absolute instead of delta-based, making suites order-independent (the
  /// registries are process-global, so tests otherwise observe each other's
  /// increments). Greppable name: production code must never call it.
  static void ResetForTest();

  /// Sorted snapshots (copy; safe against concurrent updates).
  std::vector<std::pair<std::string, std::int64_t>> CounterSnapshot() const;
  std::vector<std::pair<std::string, double>> GaugeSnapshot() const;
  /// Name-sorted histogram refs (pointers stable; contents live).
  std::vector<std::pair<std::string, const Histogram*>> HistogramRefs() const;

  /// {"schema_version": ..., "meta": {...}, "counters": {...}, "gauges": ...}
  void WriteJson(std::ostream& os) const;
  std::string ToJson() const;
  /// One "name value" line per metric, counters first.
  std::string ToText() const;
  /// Writes the JSON dump to `path`; returns false on IO failure.
  bool WriteJsonFile(const std::string& path) const;

 private:
  Metrics() = default;

  mutable std::mutex mu_;  ///< guards the maps (not the atomics)
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace apt::obs
