// Chrome trace-event JSON export for apt::obs traces.
//
// The emitted file is the classic "trace event format" object
// ({"traceEvents": [...]}) that loads in https://ui.perfetto.dev and in
// chrome://tracing. Layout:
//   * pid 0            — "host (wall clock)", one lane (tid) per CPU thread
//                        that recorded spans;
//   * pid 1, 2, ...    — one process per SimContext ("sim[k] <label>"),
//                        one lane per simulated device, timestamps in
//                        simulated microseconds.
// Process/thread metadata ('M' events) name every lane so Perfetto shows
// "gpu0".."gpuN-1" under each simulated process.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace apt::obs {

/// Writes `events` (plus track metadata) as trace-event JSON.
void WriteChromeTraceJson(std::ostream& os, const std::vector<TraceEvent>& events,
                          const std::vector<SimTrackInfo>& sim_tracks,
                          std::int32_t num_host_lanes);

/// Drains the global tracer and writes its events to `path`.
/// Returns false on IO failure.
bool ExportChromeTrace(const std::string& path);

}  // namespace apt::obs
