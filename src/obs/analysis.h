// Trace analysis engine: turns raw apt::obs traces (in-memory events or
// exported Chrome-trace JSON files) into the quantities the paper's
// evaluation reasons about — per-stage simulated-time breakdowns, critical
// paths across device lanes, per-operation communication attribution, step
// latency percentiles — plus the comparison machinery built on top: run
// diffing with a noise threshold and the perf-regression gate consumed by CI
// (`aptperf diff` / `aptperf gate`).
//
// Analysis is offline and allocation-happy by design; the cost discipline of
// obs/trace.h applies to RECORDING, not to the tooling that reads traces.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"

namespace apt::obs {

/// One analyzed slice with OWNED strings: the common event model for live
/// Tracer events (literal pointers) and file-loaded events (parsed strings).
struct SliceRec {
  std::int32_t pid = kHostPid;
  std::int32_t lane = 0;
  double t0_s = 0.0;   ///< start, seconds in the slice's domain
  double dur_s = 0.0;  ///< duration, seconds
  Domain domain = Domain::kReal;
  std::string name;
  std::string cat;
  std::map<std::string, double> num_args;
  std::map<std::string, std::string> str_args;

  double End() const { return t0_s + dur_s; }
};

/// Aggregate over slices sharing a "cat/name" key.
struct StageSum {
  double total_s = 0.0;     ///< summed over all lanes
  double max_lane_s = 0.0;  ///< max over lanes of that lane's sum
  std::int64_t count = 0;
};

/// One segment of a reconstructed critical path (oldest first in the vector).
struct CriticalSeg {
  std::int32_t lane = 0;  ///< -1 for idle gaps (no lane active)
  double t0_s = 0.0;
  double dur_s = 0.0;
  std::string name;  ///< "idle" for gaps
  std::string cat;
};

/// Latency distribution over the step markers of one track.
struct StepTimes {
  std::int64_t count = 0;
  double mean_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double max_s = 0.0;
};

/// Serving-engine activity on one track (spans with category "serve", which
/// live on the marker lane in WALL simulated time — arrival to completion,
/// queueing included — unlike device slices, whose timestamps are busy-clock
/// accumulations). "request" spans carry end-to-end latency, "batch" spans
/// carry occupancy in their "rows" arg, "shed" spans count typed rejections.
struct ServeStats {
  StepTimes latency;  ///< distribution over "request" span durations
  std::int64_t shed = 0;
  std::int64_t batches = 0;
  double mean_batch_rows = 0.0;
  double max_batch_rows = 0.0;

  bool Any() const { return latency.count > 0 || shed > 0 || batches > 0; }
};

/// Everything the analyzer reconstructs for ONE simulated track (one
/// SimContext: one trainer's virtual cluster).
struct TraceAnalysis {
  std::int32_t pid = -1;
  std::string track_label;  ///< SimTrackInfo label / process_name
  std::string strategy;     ///< from epoch/step markers; "" when unmarked
  std::int32_t num_device_lanes = 0;

  // Window covered by device slices (simulated seconds).
  double t_begin_s = 0.0;
  double t_end_s = 0.0;
  /// t_end - t_begin: the simulated wall time of the analyzed window. For a
  /// single traced epoch this reproduces EpochStats::wall_seconds.
  double wall_s = 0.0;

  /// Per-phase (slice cat: "sample" / "load" / "train" / ...) busy time —
  /// max over device lanes, and total across lanes. Stacking the maxima
  /// reproduces EpochStats::sim_seconds.
  std::map<std::string, double> phase_max_s;
  std::map<std::string, double> phase_total_s;
  /// Communication share of each phase (collective busy + barrier wait,
  /// plus pipeline stalls — the EXPOSED communication in pipelined runs),
  /// max over lanes — reproduces SimContext::CommMax per phase.
  std::map<std::string, double> comm_max_s;

  // --- pipelined comm-stream accounting (zero in serial runs) -------------
  /// Comm-stream lanes ("gpuN.comm") that recorded any slice.
  std::int32_t num_comm_lanes = 0;
  /// Per-phase comm-STREAM busy time (slices tagged {"stream":"comm"} by
  /// the pipelined replay): max over comm lanes / total across them.
  /// Deliberately excluded from phase_max_s/phase_total_s so
  /// StackedSeconds keeps matching EpochStats::sim_seconds.
  std::map<std::string, double> comm_stream_max_s;
  std::map<std::string, double> comm_stream_total_s;
  /// Total "pipeline.stall" time on the compute lanes: communication the
  /// overlap failed to hide.
  double stall_total_s = 0.0;

  /// Per-stage sums keyed "cat/name" (e.g. "train/alltoall", "sample/gather",
  /// "load/load", "train/wait"), device lanes only.
  std::map<std::string, StageSum> by_name;
  /// Communication time by operation (alltoall / allreduce / allbroadcast /
  /// wait / fault.collective), max over lanes.
  std::map<std::string, double> comm_by_op_s;

  /// Final cumulative per-TrafficClass wire bytes from this track's
  /// "traffic_bytes" counter samples (series name -> last value).
  std::map<std::string, std::int64_t> traffic_bytes;

  /// Critical path through the device lanes: the chain of slices (and idle
  /// gaps) that determines t_end, walked backward from the last slice end.
  /// Durations sum to wall_s by construction.
  std::vector<CriticalSeg> critical_path;
  double critical_total_s = 0.0;
  /// Critical-path time attributed by slice name ("idle" for gaps).
  std::map<std::string, double> critical_by_name_s;

  /// Distribution over "step" marker spans (empty when the engine hooks were
  /// not active, e.g. traces from raw SimContext use).
  StepTimes steps;
  /// Scale mode: step markers flagged fast_forward (tape replay). When > 0,
  /// model-quality metrics of this track are EXTRAPOLATED from the probe
  /// steps; timing metrics stay exact-model. Report rows carry the flag.
  std::int64_t steps_fast_forwarded = 0;

  /// Serving-engine request/batch/shed statistics (zero when the track ran
  /// no serving).
  ServeStats serve;

  /// Sum of the sample/load/train phase maxima: EpochStats::sim_seconds for
  /// a one-epoch trace (the paper's stacked-bar total).
  double StackedSeconds() const;
  /// sample max + load max + train COMM max: the planner's comparable time
  /// (compute is identical across strategies, so only train's shuffle share
  /// participates in strategy choice).
  double ComparableSeconds() const;
  /// Fraction of comm-stream busy time hidden under compute:
  /// 1 - exposed/busy, clamped to [0, 1]. Zero when the run was serial
  /// (no comm-stream activity).
  double OverlapEfficiency() const;
};

/// Whole-file (or whole-Tracer) analysis result.
struct TraceSet {
  /// One entry per simulated track that recorded at least one device slice,
  /// in pid order.
  std::vector<TraceAnalysis> tracks;
  /// Real-domain (host) stage sums keyed "cat/name" — where the fork-join
  /// runtime actually spent wall time (permute/shuffle/execute/reshuffle
  /// stage spans, kernel scopes, ...).
  std::map<std::string, StageSum> host_stages;
  std::int64_t dropped_events = 0;

  /// First track whose strategy matches; nullptr when absent.
  const TraceAnalysis* ByStrategy(const std::string& strategy) const;
  /// Tracks that carry engine step/epoch markers (i.e. real training runs,
  /// not dry-run probes). Empty when no track is marked.
  std::vector<const TraceAnalysis*> MarkedTracks() const;
};

/// Analyzes in-memory events (as drained from Tracer::Global()) against the
/// tracer's registered sim tracks.
TraceSet AnalyzeEvents(const std::vector<TraceEvent>& events,
                       const std::vector<SimTrackInfo>& sim_tracks);

/// Loads and analyzes an exported trace file. Returns false with a
/// one-line `error` on IO/parse failure or when the file's schema_version
/// is missing or newer than kObsSchemaVersion.
bool AnalyzeTraceFile(const std::string& path, TraceSet* out, std::string* error);

/// Human-readable report (the `aptperf report` output): per-track stage
/// breakdown, communication attribution, critical path, step percentiles.
/// By default only marked (engine-run) tracks are printed when any exist;
/// `all_tracks` forces everything.
void WriteReport(std::ostream& os, const TraceSet& set, bool all_tracks = false);

// --- run diffing -----------------------------------------------------------

struct DiffLine {
  std::string metric;
  double a = 0.0;
  double b = 0.0;
  double rel = 0.0;  ///< (b - a) / max(|a|, eps)
  bool significant = false;
};

struct DiffReport {
  std::string a_label;
  std::string b_label;
  double threshold = 0.0;
  std::vector<DiffLine> lines;
  bool any_significant = false;

  void WriteMarkdown(std::ostream& os) const;
};

/// Stage-level diff of two analyzed tracks. A line is significant when the
/// relative change exceeds `threshold` AND the absolute change exceeds
/// `abs_floor_s` (noise floor for near-zero stages).
DiffReport DiffAnalyses(const TraceAnalysis& a, const TraceAnalysis& b,
                        double threshold = 0.05, double abs_floor_s = 1e-9);

// --- perf-regression gate --------------------------------------------------
//
// The gate compares bench records files (bench_util.cpp's BENCH_<name>.json):
// each record is matched by identity key between baseline and current, and
// every shared numeric metric is checked for regression. Simulated-seconds
// metrics are deterministic, so they gate tightly and portably; wall-clock
// metrics ("time_ns") are machine-dependent and get their own (looser)
// tolerance. Improvements always pass.

struct GateOptions {
  double sim_tolerance = 0.25;   ///< max allowed relative regression, sim metrics
  double wall_tolerance = 0.25;  ///< same for wall-clock metrics
  bool gate_wall = true;         ///< false: report wall deltas, never fail on them
};

struct GateFinding {
  std::string key;     ///< record identity ("op/shape" or "case:.../GDP")
  std::string metric;  ///< metric name within the record
  double base = 0.0;
  double current = 0.0;
  double rel = 0.0;  ///< (current - base) / base; positive = slower
  bool wall = false;
  bool regression = false;
};

struct GateReport {
  std::vector<GateFinding> findings;  ///< every compared metric
  std::vector<std::string> notes;     ///< unmatched records etc.
  std::int64_t compared = 0;
  std::int64_t regressions = 0;

  bool Pass() const { return regressions == 0; }
  void WriteMarkdown(std::ostream& os) const;
};

/// Loads a bench-records file, enforcing the schema header. Returns false
/// with `error` on IO/parse/schema failure.
bool LoadRecordsFile(const std::string& path, JsonValue* out, std::string* error);

/// Flattens a records document into identity-keyed numeric metrics
/// (exposed for tests; RunGate uses it on both sides).
std::map<std::string, std::map<std::string, double>> FlattenRecords(
    const JsonValue& records_doc);

/// Gates `current` against `baseline` (both parsed records documents).
GateReport RunGate(const JsonValue& baseline, const JsonValue& current,
                   const GateOptions& options);

/// Merges the "records" arrays of several parsed records files into one
/// document (meta taken from the first), so a baseline can cover multiple
/// bench binaries. Serialized back out with WriteRecordsDoc.
JsonValue MergeRecordsDocs(const std::vector<const JsonValue*>& docs);

/// Writes a records document (as produced by MergeRecordsDocs or parsed by
/// LoadRecordsFile) back to JSON with the current schema header.
void WriteRecordsDoc(std::ostream& os, const JsonValue& doc);

}  // namespace apt::obs
